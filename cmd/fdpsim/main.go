// Command fdpsim runs a single simulation and prints its metrics.
//
// Usage:
//
//	fdpsim -workload seqstream -prefetcher stream -level 5 -insts 1000000
//	fdpsim -workload chaserand -prefetcher stream -fdp
//	fdpsim -workload mixedphase -fdp -progress -timeout 30s
//	fdpsim -workload chaserand -fdp -trace-out decisions.jsonl
//	fdpsim -workload chaserand -fdp -trace-out trace.json -trace-format chrome
//	fdpsim -workload chaserand -fdp -series-out run.series.bin
//	fdpsim -spec svc.yaml -fdp -insts 2000000
//	fdpsim -workload chaserand -fdp -controller dspatch-dual
//	fdpsim -workload chaserand -fdp -controller tree -controller-model tree.json
//	fdpsim -workload chaserand -fdp -decision-log features.csv
//	fdpsim -list
//
// -controller swaps the feedback decision policy (the paper's Table 2
// logic, the default) for a registered competitor; -list names them.
// -controller-model loads a decision-tree model file for the "tree"
// controller. -decision-log writes a per-interval CSV feature dump —
// the training data for scripts/train_tree.go (see docs/CONTROLLERS.md).
//
// -spec loads a declarative WorkloadSpec (JSON or YAML; see
// docs/WORKLOADS.md), registers it alongside the built-in workloads, and
// runs it. A single-lane spec runs like any workload; a multi-lane spec
// fans its lanes out as cores on the shared bus and reports like -cores.
//
// -progress streams one line of FDP telemetry per sampling interval to
// stderr. -trace-out records the full FDP decision trace — one
// DecisionEvent per sampling interval — to a file, as JSONL or as a
// Chrome trace_event document (-trace-format chrome) loadable in Perfetto;
// see docs/OBSERVABILITY.md. -series-out records the compact columnar
// interval timeseries (the internal/series binary format) — the artifact
// fdpserved diffs at GET /v1/diff and fdptop -diff renders. A SIGINT (Ctrl-C) or an expired -timeout
// stops the run at the next interval boundary and the partial metrics
// (and a partial trace) are written, marked "(partial)". Only results go
// to stdout; listings, progress and diagnostics go to stderr.
// -cpuprofile/-memprofile write pprof artifacts covering the simulation
// (the heap profile is taken after a final GC, so it shows steady-state
// retention — the event engine's pools — not transient garbage). Exit codes
// follow the shared table in internal/cli: 0 success (including a
// -timeout stop), 2 bad usage, configuration or a -list listing, 130
// interrupted by SIGINT, 1 other errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fdpsim"
	"fdpsim/internal/cli"
	"fdpsim/internal/obs"
	"fdpsim/internal/prefetch"
	"fdpsim/internal/series"
	"fdpsim/internal/stats"
)

const tool = "fdpsim"

// emitJSON prints a machine-readable single-run result.
func emitJSON(res fdpsim.Result) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	cli.FatalIf(tool, enc.Encode(res))
}

// traceSink is what -trace-out needs from an obs sink.
type traceSink interface {
	fdpsim.Tracer
	Close() error
}

// openTrace wires -trace-out/-trace-format into the configuration and
// returns the function that finalizes the artifact after the run. A nil
// return means tracing is disabled.
func openTrace(cfg *fdpsim.Config, path, format string) func() {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	cli.FatalIf(tool, err)
	var sink traceSink
	switch format {
	case "jsonl":
		sink = obs.NewJSONL(f)
	case "chrome":
		sink = obs.NewChrome(f)
	default:
		cli.Fatalf(tool, cli.ExitUsage, "unknown -trace-format %q (want jsonl or chrome)", format)
	}
	cfg.Tracer = sink
	return func() {
		if err := sink.Close(); err != nil {
			cli.Fatalf(tool, cli.ExitError, "writing decision trace %s: %v", path, err)
		}
		cli.FatalIf(tool, f.Close())
		fmt.Fprintf(os.Stderr, "fdpsim: decision trace written to %s (%s)\n", path, format)
	}
}

// openDecisionLog wires -decision-log into the configuration: a CSV
// feature dump of every interval decision, the training input for
// scripts/train_tree.go. Composes with -trace-out.
func openDecisionLog(cfg *fdpsim.Config, path string) func() {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	cli.FatalIf(tool, err)
	sink := obs.NewDecisionCSV(f)
	cfg.Tracer = obs.Tee(cfg.Tracer, sink)
	return func() {
		if err := sink.Close(); err != nil {
			cli.Fatalf(tool, cli.ExitError, "writing decision log %s: %v", path, err)
		}
		cli.FatalIf(tool, f.Close())
		fmt.Fprintf(os.Stderr, "fdpsim: decision log written to %s (%d rows)\n", path, sink.Rows())
	}
}

// openSeries wires -series-out into the configuration: the compact
// columnar interval timeseries (the internal/series binary format), the
// same artifact fdpserved stores as a sidecar and serves at
// GET /v1/jobs/{id}/series. Composes with -trace-out and -decision-log.
func openSeries(cfg *fdpsim.Config, path string) func() {
	if path == "" {
		return nil
	}
	// Probe writability up front so a bad path fails before the run.
	f, err := os.Create(path)
	cli.FatalIf(tool, err)
	cli.FatalIf(tool, f.Close())
	rec := &series.Recorder{}
	cfg.Tracer = obs.Tee(cfg.Tracer, rec)
	return func() {
		sr := rec.Series()
		sr.Meta.Workload = cfg.Workload
		sr.Meta.Prefetcher = string(cfg.Prefetcher)
		doc, err := series.Encode(sr)
		if err != nil {
			cli.Fatalf(tool, cli.ExitError, "encoding interval series: %v", err)
		}
		if err := os.WriteFile(path, doc, 0o644); err != nil {
			cli.Fatalf(tool, cli.ExitError, "writing interval series %s: %v", path, err)
		}
		fmt.Fprintf(os.Stderr, "fdpsim: interval series written to %s (%d intervals, %d bytes)\n",
			path, sr.Len(), len(doc))
	}
}

// printAttribution renders the -attr report section: where the cycles
// went (top-down), where the bus went (per-kind occupancy), how hard the
// memory system was pressed, and how timely the prefetches were.
func printAttribution(a *stats.Attribution) {
	total := a.Cycles.Total()
	if total == 0 {
		return
	}
	pct := func(v uint64) float64 { return 100 * float64(v) / float64(total) }
	c := a.Cycles
	fmt.Printf("cycles     : retire-full %.1f%%  retire-partial %.1f%%  load-miss %.1f%%  rob-full %.1f%%  dram-bp %.1f%%  ifetch %.1f%%  frontend %.1f%%\n",
		pct(c.RetireFull), pct(c.RetirePartial), pct(c.StallLoadMiss),
		pct(c.StallROBFull), pct(c.StallDRAMBP), pct(c.StallIFetch), pct(c.StallFrontend))
	fmt.Printf("bus        : utilization %.1f%% (demand %.1f%% + prefetch %.1f%% + writeback %.1f%%)  row-hit %.1f%%\n",
		100*a.BusUtilization(), pct(a.BusDemandCycles), pct(a.BusPrefetchCycles),
		pct(a.BusWritebackCycles), 100*a.RowHitRate())
	fmt.Printf("pressure   : MSHR occupancy mean %.1f  DRAM queues mean d=%.1f p=%.1f wb=%.1f\n",
		a.MSHROcc.Mean(), a.QueueDemand.Mean(), a.QueuePrefetch.Mean(), a.QueueWriteback.Mean())
	fmt.Printf("timeliness : fill-to-use p50=%d p90=%d cycles  late-by p50=%d cycles  unused prefetches=%d\n",
		a.FillToUse.Quantile(0.5), a.FillToUse.Quantile(0.9), a.LateBy.Quantile(0.5), a.PrefUnused)
}

// progressLine prints one FDP sampling interval to stderr.
func progressLine(s fdpsim.Snapshot) {
	if s.Final {
		return
	}
	fmt.Fprintf(os.Stderr, "interval %4d: retired=%9d/%d IPC=%.3f acc=%5.1f%% late=%5.1f%% poll=%5.1f%% level=%d insert=%-5s (%.1fs)\n",
		s.Interval, s.Retired, s.Target, s.IPC,
		100*s.Accuracy, 100*s.Lateness, 100*s.Pollution, s.Level, s.Insertion, s.Elapsed.Seconds())
}

// runMulticore executes one multi-core simulation with every core using
// the already-parsed single-core configuration as its template.
func runMulticore(ctx context.Context, tmpl fdpsim.Config, workloads []string, jsonOut bool, finishTrace, stopProf func()) {
	var mc fdpsim.MultiConfig
	for _, w := range workloads {
		cfg := tmpl
		cfg.Workload = strings.TrimSpace(w)
		mc.Cores = append(mc.Cores, cfg)
	}
	res, err := fdpsim.RunMultiContext(ctx, mc)
	reportMulti(res, err, jsonOut, finishTrace, stopProf)
}

// reportMulti renders a multi-core result and exits the process. It is
// shared by -cores (named workloads) and multi-lane -spec runs.
// finishTrace, when non-nil, finalizes the -trace-out artifact (the cores
// share the template's tracer; events carry the core index). stopProf
// finalizes the -cpuprofile/-memprofile artifacts; it runs here because
// this function exits the process, skipping main's deferred copy.
func reportMulti(res fdpsim.MultiResult, err error, jsonOut bool, finishTrace, stopProf func()) {
	stopProf()
	if finishTrace != nil {
		finishTrace() // flush even a partial trace; it matches the partial result
	}
	code := cli.ExitCode(err)
	if err != nil && !errors.Is(err, fdpsim.ErrCancelled) {
		cli.Fatalf(tool, code, "%v", err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		cli.FatalIf(tool, enc.Encode(res))
		os.Exit(code)
	}
	if res.Partial {
		fmt.Println("run cancelled — partial results up to the stop cycle:")
	}
	var totalInsts uint64
	for i, c := range res.Cores {
		partial := ""
		if c.Partial {
			partial = " (partial)"
		}
		fmt.Printf("core %d %-14s IPC=%.4f BPKI=%7.1f accuracy=%5.1f%% level=%d finish=%d%s\n",
			i, c.Workload, c.IPC, c.BPKI, 100*c.Accuracy, c.FinalLevel, c.FinishCycle, partial)
		totalInsts += c.Counters.Retired
	}
	if totalInsts > 0 {
		fmt.Printf("aggregate IPC=%.4f  total bus/KI=%.1f  cycles=%d\n",
			res.AggregateIPC(), 1000*float64(res.TotalBusAccesses)/float64(totalInsts), res.Cycles)
	}
	os.Exit(code)
}

func main() {
	var (
		workloadName = flag.String("workload", "seqstream", "workload name (see -list)")
		specPath     = flag.String("spec", "", "WorkloadSpec file (JSON/YAML) to register and run (multi-lane specs fan out like -cores)")
		prefName     = flag.String("prefetcher", "stream", "prefetcher: none, stream, ghb, stride, nextline")
		level        = flag.Int("level", 5, "static aggressiveness 1..5 (ignored with -fdp)")
		fdp          = flag.Bool("fdp", false, "enable full FDP (dynamic aggressiveness + insertion)")
		dynIns       = flag.Bool("dynins", false, "enable only dynamic insertion (static level)")
		insertAt     = flag.String("insert", "MRU", "static insertion position: MRU, MID, LRU-4, LRU")
		insts        = flag.Uint64("insts", 1_000_000, "instructions to retire")
		memlat       = flag.Uint64("memlat", 0, "scale DRAM latencies to target this minimum main-memory latency (0 = baseline 500)")
		l2kb         = flag.Int("l2kb", 0, "L2 size in KB (0 = baseline 1024)")
		seed         = flag.Uint64("seed", 1, "workload seed")
		list         = flag.Bool("list", false, "list workloads and exit")
		verbose      = flag.Bool("v", false, "print raw counters")
		jsonOut      = flag.Bool("json", false, "emit the result as JSON")
		cores        = flag.String("cores", "", "comma-separated workloads for a multi-core run on a shared bus")
		configPath   = flag.String("config", "", "JSON file overriding the assembled configuration")
		dumpConfig   = flag.Bool("dumpconfig", false, "print the assembled configuration as JSON and exit")
		timeout      = flag.Duration("timeout", 0, "deadline; expiry stops the run and prints partial metrics (0 = none)")
		progress     = flag.Bool("progress", false, "stream per-FDP-interval telemetry to stderr")
		traceOut     = flag.String("trace-out", "", "write the FDP decision trace (one event per sampling interval) to this file")
		traceFormat  = flag.String("trace-format", "jsonl", "decision trace format: jsonl or chrome (Perfetto-loadable)")
		seriesOut    = flag.String("series-out", "", "write the compact columnar interval timeseries (internal/series binary) to this file")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memProfile   = flag.String("memprofile", "", "write a post-run heap profile to this file")
		attr         = flag.Bool("attr", false, "enable cycle accounting & bandwidth attribution (stall/bus breakdown in the report, per-interval samples in traces)")
		controller   = flag.String("controller", "", "feedback decision policy (see -list; empty = the paper's Table 2 policy)")
		ctrlModel    = flag.String("controller-model", "", "decision-tree model JSON file (selects -controller tree)")
		decisionLog  = flag.String("decision-log", "", "write a per-interval CSV feature dump (training data for scripts/train_tree.go)")
		version      = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		cli.PrintVersion(tool)
		return
	}

	// Load and validate the spec before anything else: a typo in the file
	// must fail with exit code 2 before any artifact is opened, and a valid
	// spec must appear in -list. Unless -workload was given explicitly, the
	// spec itself is what runs.
	var sp *fdpsim.WorkloadSpec
	if *specPath != "" {
		loaded, err := fdpsim.LoadSpec(*specPath)
		cli.FatalIf(tool, err)
		cli.FatalIf(tool, fdpsim.RegisterWorkloadSpec(loaded))
		sp = loaded
		explicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "workload" {
				explicit = true
			}
		})
		if !explicit {
			*workloadName = sp.Name
		}
	}

	if *list {
		cli.Listing(func(w io.Writer) {
			fmt.Fprintln(w, "memory-intensive (the paper's 17-benchmark set):")
			for _, name := range fdpsim.MemoryIntensiveWorkloads() {
				fmt.Fprintf(w, "  %-14s %s\n", name, fdpsim.WorkloadAbout(name))
			}
			fmt.Fprintln(w, "low-potential (Figure 14's 9 benchmarks):")
			for _, name := range fdpsim.LowPotentialWorkloads() {
				fmt.Fprintf(w, "  %-14s %s\n", name, fdpsim.WorkloadAbout(name))
			}
			if specs := fdpsim.WorkloadList(fdpsim.WorkloadTagSpec); len(specs) > 0 {
				fmt.Fprintln(w, "spec-defined (registered from -spec):")
				for _, info := range specs {
					fmt.Fprintf(w, "  %-14s %s\n", info.Name, info.About)
				}
			}
			fmt.Fprintln(w, "controllers (feedback decision policies; -controller):")
			for _, info := range fdpsim.ControllerList() {
				fmt.Fprintf(w, "  %-14s [%s] %s\n", info.Name, strings.Join(info.Tags, ","), info.Description)
			}
		})
	}

	opts := []fdpsim.Option{
		fdpsim.WithWorkload(*workloadName),
		fdpsim.WithInsts(*insts),
		fdpsim.WithSeed(*seed),
	}
	kind := fdpsim.PrefetcherKind(*prefName)
	if !*fdp && kind != fdpsim.PrefNone {
		opts = append(opts, fdpsim.WithFixedAggressiveness(*level))
	}
	if *controller != "" {
		opts = append(opts, fdpsim.WithController(*controller))
	}
	if *ctrlModel != "" {
		if *controller != "" && *controller != "tree" {
			cli.Fatalf(tool, cli.ExitUsage, "-controller-model requires -controller tree, got %q", *controller)
		}
		raw, err := os.ReadFile(*ctrlModel)
		cli.FatalIf(tool, err)
		opts = append(opts, fdpsim.WithControllerModel(raw))
	}
	if !*fdp && *insertAt != "MRU" {
		switch *insertAt {
		case "MID":
			opts = append(opts, fdpsim.WithInsertion(fdpsim.PosMID))
		case "LRU-4":
			opts = append(opts, fdpsim.WithInsertion(fdpsim.PosLRU4))
		case "LRU":
			opts = append(opts, fdpsim.WithInsertion(fdpsim.PosLRU))
		default:
			cli.Fatalf(tool, cli.ExitUsage, "unknown insertion position %q (want MRU, MID, LRU-4 or LRU)", *insertAt)
		}
	}
	cfg, err := fdpsim.NewConfig(kind, opts...)
	cli.FatalIf(tool, err)
	if *dynIns {
		cfg.FDP.DynamicInsertion = true
	}
	if *memlat != 0 {
		scale := float64(*memlat) / 500
		cfg.DRAM.RowHit = uint64(float64(cfg.DRAM.RowHit) * scale)
		cfg.DRAM.RowConflict = uint64(float64(cfg.DRAM.RowConflict) * scale)
	}
	if *l2kb != 0 {
		cfg.L2Blocks = *l2kb * 1024 / 64
	}

	if *configPath != "" {
		raw, err := os.ReadFile(*configPath)
		cli.FatalIf(tool, err)
		if err := json.Unmarshal(raw, &cfg); err != nil {
			// A config file that does not parse is bad input, not a
			// runtime failure: exit 2 like any other invalid configuration.
			cli.Fatalf(tool, cli.ExitUsage, "parsing %s: %v", *configPath, err)
		}
	}
	if *attr {
		cfg.Attribution = true
	}
	if *dumpConfig {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		cli.FatalIf(tool, enc.Encode(cfg))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *progress {
		cfg.Progress = progressLine
	}
	finishTrace := openTrace(&cfg, *traceOut, *traceFormat)
	for _, finish := range []func(){openDecisionLog(&cfg, *decisionLog), openSeries(&cfg, *seriesOut)} {
		if finish == nil {
			continue
		}
		prev, next := finishTrace, finish
		finishTrace = func() {
			if prev != nil {
				prev()
			}
			next()
		}
	}
	stopProf := cli.StartProfiles(tool, *cpuProfile, *memProfile)
	defer stopProf()

	if *cores != "" {
		runMulticore(ctx, cfg, strings.Split(*cores, ","), *jsonOut, finishTrace, stopProf)
		return
	}

	// A multi-lane spec is a multicore run: each lane becomes a core on
	// the shared bus, reported exactly like -cores.
	if sp != nil && *workloadName == sp.Name && sp.Lanes() > 1 {
		mres, merr := fdpsim.RunSpecMulti(ctx, cfg, sp)
		reportMulti(mres, merr, *jsonOut, finishTrace, stopProf)
		return
	}

	var res fdpsim.Result
	if sp != nil && *workloadName == sp.Name {
		res, err = fdpsim.RunSpec(ctx, cfg, sp)
	} else {
		res, err = fdpsim.RunContext(ctx, cfg)
	}
	stopProf() // before os.Exit below, and before report rendering
	if finishTrace != nil {
		finishTrace() // flush even a partial trace; it matches the partial result
	}
	code := cli.ExitCode(err)
	if err != nil && !errors.Is(err, fdpsim.ErrCancelled) {
		cli.Fatalf(tool, code, "%v", err)
	}
	if *jsonOut {
		emitJSON(res)
		os.Exit(code)
	}

	mode := "conventional"
	if *fdp {
		mode = "FDP (dynamic aggressiveness + dynamic insertion)"
		if res.Controller != "" && res.Controller != "fdp" {
			mode = fmt.Sprintf("FDP loop, %s controller", res.Controller)
		}
	} else if kind == fdpsim.PrefNone {
		mode = "no prefetching"
	} else {
		mode = fmt.Sprintf("conventional, %s", prefetch.LevelName(*level))
	}
	if res.Partial {
		var ce *fdpsim.CancelError
		if errors.As(err, &ce) {
			fmt.Printf("run cancelled after %d of %d instructions (%v) — partial metrics:\n",
				ce.Retired, ce.Target, ce.Cause)
		}
	}
	fmt.Printf("workload   : %s — %s\n", res.Workload, fdpsim.WorkloadAbout(res.Workload))
	fmt.Printf("prefetcher : %s (%s)\n", res.Prefetcher, mode)
	fmt.Printf("IPC        : %.4f\n", res.IPC)
	fmt.Printf("BPKI       : %.2f\n", res.BPKI)
	fmt.Printf("accuracy   : %.1f%%   lateness: %.1f%%   pollution: %.1f%%\n",
		100*res.Accuracy, 100*res.Lateness, 100*res.Pollution)
	fmt.Printf("elapsed    : %s\n", res.Elapsed.Round(time.Millisecond))
	if *fdp {
		fmt.Printf("intervals  : %d   final level: %d (%s)\n",
			res.Intervals, res.FinalLevel, prefetch.LevelName(res.FinalLevel))
		fmt.Printf("%s\n%s\n", res.LevelDist, res.InsertDist)
	}
	if res.Attribution != nil {
		printAttribution(res.Attribution)
	}
	if *verbose {
		c := res.Counters
		fmt.Printf("cycles=%d retired=%d loads=%d stores=%d\n", c.Cycles, c.Retired, c.RetiredLoads, c.RetiredStores)
		fmt.Printf("L1: %d accesses, %d misses; L2 demand: %d accesses, %d misses\n",
			c.L1Accesses, c.L1Misses, c.L2DemandAccesses, c.L2DemandMisses)
		fmt.Printf("bus: %d reads, %d prefetches, %d writebacks\n", c.BusReads, c.BusPrefetches, c.BusWritebacks)
		fmt.Printf("pref: issued=%d dropped=%d sent=%d used=%d late=%d filled=%d\n",
			c.PrefIssued, c.PrefDropped, c.PrefSent, c.PrefUsed, c.PrefLate, c.PrefetchFilled)
		fmt.Printf("pollution hits=%d useful evictions=%d\n", c.PollutionHits, c.UsefulEvicted)
	}
	os.Exit(code)
}
