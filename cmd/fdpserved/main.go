// Command fdpserved is the simulation job service daemon: an HTTP JSON
// API over a bounded worker pool, with a content-addressed on-disk result
// store so identical submissions are answered without re-simulating.
//
// Usage:
//
//	fdpserved -addr :8080 -cache-dir /var/cache/fdpsim
//	fdpserved -addr 127.0.0.1:0 -workers 4 -queue 128 -job-timeout 5m
//
// API (see the README's "Running the service" section for curl examples):
//
//	POST   /v1/jobs             submit a job (202; 200 on a cache hit;
//	                            429 + Retry-After when the queue is full)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        poll a job
//	GET    /v1/jobs/{id}/events per-FDP-interval progress via SSE
//	DELETE /v1/jobs/{id}        cancel (running jobs keep partial results)
//	GET    /metrics             Prometheus text metrics
//	GET    /healthz             liveness (503 while draining)
//
// SIGINT/SIGTERM begin a graceful shutdown: intake stops, in-flight
// simulations are cancelled at their next FDP interval boundary (their
// partial results are preserved and reported to pollers/SSE subscribers),
// and the process exits once the pool drains or -drain expires.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fdpsim/internal/cli"
	"fdpsim/internal/service"
	"fdpsim/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
		workers    = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "FIFO queue depth; submissions beyond it get 429")
		cacheDir   = flag.String("cache-dir", "", "content-addressed result store directory (empty = in-memory cache only)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job wall-clock budget; expiry cancels at the next interval boundary (0 = none)")
		drain      = flag.Duration("drain", 30*time.Second, "shutdown budget for draining in-flight simulations")
	)
	flag.Parse()

	cfg := service.Config{Workers: *workers, QueueDepth: *queue, JobTimeout: *jobTimeout}
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir)
		cli.FatalIf("fdpserved", err)
		cfg.Store = st
		log.Printf("fdpserved: result store at %s (%d entries)", st.Dir(), st.Len())
	}
	srv := service.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	cli.FatalIf("fdpserved", err)
	log.Printf("fdpserved: listening on http://%s", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		cli.FatalIf("fdpserved", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("fdpserved: draining (budget %s)…", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		cli.Fatalf("fdpserved", cli.ExitError, "drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		cli.Fatalf("fdpserved", cli.ExitError, "http shutdown: %v", err)
	}
	log.Printf("fdpserved: drained cleanly")
}
