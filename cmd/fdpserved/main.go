// Command fdpserved is the simulation job service daemon: an HTTP JSON
// API over a bounded worker pool, with a content-addressed on-disk result
// store so identical submissions are answered without re-simulating.
//
// Usage:
//
//	fdpserved -addr :8080 -cache-dir /var/cache/fdpsim
//	fdpserved -addr 127.0.0.1:0 -workers 4 -queue 128 -job-timeout 5m
//	fdpserved -log-format json -log-level debug -pprof-addr 127.0.0.1:6060
//
// API (see the README's "Running the service" section for curl examples):
//
//	POST   /v1/jobs             submit a job (202; 200 on a cache hit;
//	                            429 + Retry-After when the queue is full)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        poll a job
//	GET    /v1/jobs/{id}/events per-FDP-interval progress via SSE
//	GET    /v1/jobs/{id}/trace  FDP decision trace (JSONL; ?format=chrome)
//	GET    /v1/jobs/{id}/spans  fabric spans (?format=chrome for Perfetto)
//	DELETE /v1/jobs/{id}        cancel (running jobs keep partial results)
//	POST   /v1/sweeps           submit a parameter grid (docs/SWEEPS.md)
//	GET    /v1/sweeps/{id}/events aggregate sweep progress via SSE
//	GET    /v1/sweeps/{id}/results merged results (?format=text for tables)
//	GET    /v1/sweeps/{id}/trace whole-sweep fabric trace (Chrome/Perfetto)
//	GET    /debug/events        fabric-span flight recorder
//	GET    /metrics             Prometheus text metrics
//	GET    /healthz             liveness (503 while draining)
//
// Multi-tenant fair scheduling: -tenant name:weight[:maxrunning[:maxqueued]]
// registers scheduler tenants (repeatable); -strict-tenants closes the
// roster. Worker fleets: several fdpserved processes sharing one
// -cache-dir coordinate via -fleet-worker names and -lease claim leases so
// each configuration is simulated once fleet-wide (docs/SWEEPS.md).
//
// Logs are structured (log/slog): -log-format selects text or json,
// -log-level the floor (HTTP scrape endpoints log at debug). -pprof-addr
// serves net/http/pprof on a separate listener, off by default and best
// bound to loopback — the profiler exposes heap and goroutine internals
// and belongs on an operator port, not the public API one.
//
// SIGINT/SIGTERM begin a graceful shutdown: intake stops, in-flight
// simulations are cancelled at their next FDP interval boundary (their
// partial results are preserved and reported to pollers/SSE subscribers),
// and the process exits once the pool drains or -drain expires.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"fdpsim/internal/cli"
	"fdpsim/internal/service"
	"fdpsim/internal/store"
)

// tenantFlags collects repeated -tenant flags into a scheduler roster.
// Each value is "name:weight[:maxrunning[:maxqueued]]"; weight alone is
// enough for plain fair-sharing.
type tenantFlags map[string]service.TenantConfig

func (t tenantFlags) String() string {
	parts := make([]string, 0, len(t))
	for name, cfg := range t {
		parts = append(parts, fmt.Sprintf("%s:%d:%d:%d", name, cfg.Weight, cfg.MaxRunning, cfg.MaxQueued))
	}
	return strings.Join(parts, ",")
}

func (t tenantFlags) Set(v string) error {
	fields := strings.Split(v, ":")
	if fields[0] == "" || len(fields) > 4 {
		return fmt.Errorf("want name:weight[:maxrunning[:maxqueued]], got %q", v)
	}
	var cfg service.TenantConfig
	nums := []*int{&cfg.Weight, &cfg.MaxRunning, &cfg.MaxQueued}
	for i, f := range fields[1:] {
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 {
			return fmt.Errorf("bad number %q in %q", f, v)
		}
		*nums[i] = n
	}
	t[fields[0]] = cfg
	return nil
}

// newLogger builds the process logger from the -log-format/-log-level
// flags; unknown values are usage errors (exit 2).
func newLogger(format, level string) *slog.Logger {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		cli.Fatalf("fdpserved", cli.ExitUsage, "unknown -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts))
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	default:
		cli.Fatalf("fdpserved", cli.ExitUsage, "unknown -log-format %q (want text or json)", format)
		panic("unreachable")
	}
}

// pprofHandler mounts the net/http/pprof endpoints on an explicit mux
// (never the DefaultServeMux, which third-party imports can pollute).
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address (host:port; port 0 picks an ephemeral port)")
		workers    = flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 64, "FIFO queue depth; submissions beyond it get 429")
		cacheDir   = flag.String("cache-dir", "", "content-addressed result store directory (empty = in-memory cache only)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job wall-clock budget; expiry cancels at the next interval boundary (0 = none)")
		drain      = flag.Duration("drain", 30*time.Second, "shutdown budget for draining in-flight simulations")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled; bind to loopback)")
		version    = flag.Bool("version", false, "print build information and exit")

		strictTenants = flag.Bool("strict-tenants", false, "reject jobs and sweeps naming a tenant outside the -tenant roster")
		fleetWorker   = flag.String("fleet-worker", "", "worker name in a shared-store fleet (empty = standalone; requires -cache-dir)")
		lease         = flag.Duration("lease", 30*time.Second, "fleet claim lease; expired leases are stolen by live workers")
		claimAttempts = flag.Int("claim-attempts", 0, "bounded retries on a held fleet claim before executing locally (0 = default 32)")
		sseKeepalive  = flag.Duration("sse-keepalive", 15*time.Second, "idle interval before SSE streams emit a ': keepalive' comment frame (<=0 disables)")
		spanLimit     = flag.Int("span-limit", 0, "fabric-span flight recorder size for /debug/events (0 = default 4096)")
	)
	tenants := tenantFlags{}
	flag.Var(tenants, "tenant", "register a scheduler tenant as name:weight[:maxrunning[:maxqueued]] (repeatable)")
	flag.Parse()

	if *version {
		cli.PrintVersion("fdpserved")
		return
	}

	logger := newLogger(*logFormat, *logLevel)
	logger.Info("starting", "version", cli.Version("fdpserved"))

	cfg := service.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		JobTimeout:    *jobTimeout,
		Logger:        logger,
		Tenants:       tenants,
		StrictTenants: *strictTenants,
		FleetWorker:   *fleetWorker,
		LeaseTTL:      *lease,
		ClaimAttempts: *claimAttempts,
		SSEKeepalive:  *sseKeepalive,
		SpanLimit:     *spanLimit,
	}
	if *sseKeepalive <= 0 {
		cfg.SSEKeepalive = -1 // 0 in the Config means "default"; the flag's 0 means off
	}
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir)
		cli.FatalIf("fdpserved", err)
		cfg.Store = st
		logger.Info("result store opened", "dir", st.Dir(), "entries", st.Len())
	}
	if *fleetWorker != "" && *cacheDir == "" {
		cli.Fatalf("fdpserved", cli.ExitUsage, "-fleet-worker requires -cache-dir (the fleet coordinates through the shared store)")
	}
	srv := service.New(cfg)

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		cli.FatalIf("fdpserved", err)
		logger.Info("pprof listening", "addr", "http://"+pln.Addr().String()+"/debug/pprof/")
		go func() {
			if err := http.Serve(pln, pprofHandler()); err != nil {
				logger.Warn("pprof server stopped", "error", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	cli.FatalIf("fdpserved", err)
	logger.Info("listening", "addr", "http://"+ln.Addr().String())

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		cli.FatalIf("fdpserved", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	logger.Info("draining", "budget", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		cli.Fatalf("fdpserved", cli.ExitError, "drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		cli.Fatalf("fdpserved", cli.ExitError, "http shutdown: %v", err)
	}
	logger.Info("drained cleanly")
}
