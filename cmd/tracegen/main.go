// Command tracegen records a workload's micro-op stream to a trace file,
// and can replay a trace through the simulator to verify it.
//
// Usage:
//
//	tracegen -workload seqstream -ops 1000000 -o seqstream.trc
//	tracegen -replay seqstream.trc -prefetcher stream -level 5
package main

import (
	"flag"
	"fmt"
	"os"

	"fdpsim"
	"fdpsim/internal/trace"
	"fdpsim/internal/workload"
)

func main() {
	var (
		workloadName = flag.String("workload", "seqstream", "workload to record")
		ops          = flag.Uint64("ops", 1_000_000, "micro-ops to record")
		out          = flag.String("o", "", "output trace path (default <workload>.trc)")
		replay       = flag.String("replay", "", "replay a trace file through the simulator instead of recording")
		prefName     = flag.String("prefetcher", "stream", "prefetcher for -replay")
		level        = flag.Int("level", 5, "aggressiveness for -replay")
		seed         = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	if *replay != "" {
		f, err := os.Open(*replay)
		fatalIf(err)
		defer f.Close()
		r, err := trace.NewReader(f)
		fatalIf(err)
		r.Loop = true
		cfg := fdpsim.Conventional(fdpsim.PrefetcherKind(*prefName), *level)
		cfg.MaxInsts = uint64(r.Len())
		res, err := fdpsim.RunSource(cfg, r)
		fatalIf(err)
		fmt.Printf("replayed %s (%d ops): IPC=%.4f BPKI=%.2f accuracy=%.1f%%\n",
			r.Name(), r.Len(), res.IPC, res.BPKI, 100*res.Accuracy)
		return
	}

	src, err := workload.New(*workloadName, *seed)
	fatalIf(err)
	path := *out
	if path == "" {
		path = *workloadName + ".trc"
	}
	f, err := os.Create(path)
	fatalIf(err)
	w, err := trace.NewWriter(f, *workloadName)
	fatalIf(err)
	for i := uint64(0); i < *ops; i++ {
		fatalIf(w.Write(src.Next()))
	}
	fatalIf(w.Close())
	fatalIf(f.Close())
	st, err := os.Stat(path)
	fatalIf(err)
	fmt.Printf("recorded %d ops of %s to %s (%d bytes, %.2f bits/op)\n",
		*ops, *workloadName, path, st.Size(), 8*float64(st.Size())/float64(*ops))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
