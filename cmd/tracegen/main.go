// Command tracegen records a workload's micro-op stream to a trace file,
// and can replay a trace through the simulator to verify it.
//
// Usage:
//
//	tracegen -list
//	tracegen -workload seqstream -ops 1000000 -o seqstream.trc
//	tracegen -spec svc.yaml -ops 100000000 -o svc.trc
//	tracegen -spec svc.yaml -lane 1 -seed 7 -o svc-lane1.trc
//	tracegen -replay svc.trc -prefetcher stream -level 5
//
// -spec loads a declarative WorkloadSpec (JSON or YAML; see
// docs/WORKLOADS.md) and registers it alongside the built-in workloads —
// -list then shows it tagged "spec". Recording defaults to the spec's
// name and lane 0; -lane selects another lane of a multicore/SMT spec.
// Specs and flags are validated up front, before any file is created.
//
// Traces are written in the streaming v2 format by default (block-framed,
// CRC-protected, replayable at O(block) memory however long the trace);
// -format v1 keeps the legacy whole-file format. -replay auto-detects the
// version. Only run output goes to stdout; the -list listing is help text
// and prints to stderr. Exit codes follow the shared table in
// internal/cli: 0 success, 1 runtime error, 2 bad usage (unknown
// workload or prefetcher, invalid spec, and -list listings).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fdpsim"
	"fdpsim/internal/cli"
	"fdpsim/internal/cpu"
	"fdpsim/internal/trace"
	"fdpsim/internal/workload"
)

const tool = "tracegen"

func main() {
	var (
		workloadName = flag.String("workload", "seqstream", "workload to record (see -list)")
		specPath     = flag.String("spec", "", "WorkloadSpec file (JSON/YAML) to register and record")
		lane         = flag.Int("lane", 0, "spec lane to record (multicore/SMT specs)")
		ops          = flag.Uint64("ops", 1_000_000, "micro-ops to record")
		out          = flag.String("o", "", "output trace path (default <workload>.trc)")
		format       = flag.String("format", "v2", "trace format to write: v2 (streaming) or v1 (legacy)")
		replay       = flag.String("replay", "", "replay a trace file through the simulator instead of recording")
		prefName     = flag.String("prefetcher", "stream", "prefetcher for -replay (see -list)")
		level        = flag.Int("level", 5, "aggressiveness for -replay")
		seed         = flag.Uint64("seed", 1, "workload seed")
		list         = flag.Bool("list", false, "list recordable workloads and replay prefetchers, then exit")
		version      = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		cli.PrintVersion(tool)
		return
	}

	// Load and validate the spec before anything else: a typo in the file
	// must fail with exit code 2 and no other side effects.
	var sp *fdpsim.WorkloadSpec
	if *specPath != "" {
		loaded, err := fdpsim.LoadSpec(*specPath)
		cli.FatalIf(tool, err)
		cli.FatalIf(tool, fdpsim.RegisterWorkloadSpec(loaded))
		sp = loaded
		// Unless -workload was given explicitly, record the spec itself.
		explicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "workload" {
				explicit = true
			}
		})
		if !explicit {
			*workloadName = sp.Name
		}
	}

	if *list {
		cli.Listing(func(w io.Writer) {
			fmt.Fprintln(w, "workloads (-workload):")
			for _, info := range fdpsim.WorkloadList() {
				fmt.Fprintf(w, "  %-14s [%s] %s\n", info.Name, strings.Join(info.Tags, ","), info.About)
			}
			fmt.Fprintln(w, "prefetchers (-prefetcher, for -replay):")
			fmt.Fprintf(w, "  %s\n", joinKinds())
			fmt.Fprintln(w, "controllers (feedback decision policies, for replay under fdpsim -controller):")
			for _, info := range fdpsim.ControllerList() {
				fmt.Fprintf(w, "  %-14s [%s] %s\n", info.Name, strings.Join(info.Tags, ","), info.Description)
			}
		})
	}

	if *replay != "" {
		// Validate the prefetcher name before touching the trace file, so a
		// typo fails in milliseconds with the valid names, not mid-replay.
		cfg := fdpsim.Conventional(fdpsim.PrefetcherKind(*prefName), *level)
		if err := cfg.Validate(); err != nil {
			cli.Fatalf(tool, cli.ExitUsage, "%v\nvalid prefetchers: %s", err, joinKinds())
		}
		f, err := os.Open(*replay)
		cli.FatalIf(tool, err)
		defer f.Close()
		r, err := trace.Open(f)
		cli.FatalIf(tool, err)
		r.SetLoop(true)
		cfg.MaxInsts = r.Ops()
		res, err := fdpsim.RunSource(cfg, r)
		cli.FatalIf(tool, err)
		fmt.Printf("replayed %s (%d ops): IPC=%.4f BPKI=%.2f accuracy=%.1f%%\n",
			r.Name(), r.Ops(), res.IPC, res.BPKI, 100*res.Accuracy)
		return
	}

	if *format != "v1" && *format != "v2" {
		cli.Fatalf(tool, cli.ExitUsage, "unknown -format %q (want v1 or v2)", *format)
	}

	// Same up-front check for the workload: no half-written trace file
	// behind an unknown-name failure.
	if !workload.Exists(*workloadName) {
		cli.Fatalf(tool, cli.ExitUsage, "unknown workload %q\nvalid workloads: %s",
			*workloadName, strings.Join(fdpsim.Workloads(), ", "))
	}
	var src fdpsim.Source
	switch {
	case sp != nil && *workloadName == sp.Name:
		// Record straight from the spec so -lane can address any lane, not
		// just the registry's lane 0.
		if *lane < 0 || *lane >= sp.Lanes() {
			cli.Fatalf(tool, cli.ExitUsage, "spec %s has lanes 0..%d, not %d", sp.Name, sp.Lanes()-1, *lane)
		}
		src = sp.Source(*lane, *seed)
	default:
		if *lane != 0 {
			cli.Fatalf(tool, cli.ExitUsage, "-lane only applies when recording a -spec workload")
		}
		var err error
		src, err = workload.New(*workloadName, *seed)
		cli.FatalIf(tool, err)
	}
	path := *out
	if path == "" {
		path = *workloadName + ".trc"
	}
	f, err := os.Create(path)
	cli.FatalIf(tool, err)

	// The v2 writer streams frame by frame: recording is O(frame) memory
	// no matter how many ops -ops asks for.
	type opWriter interface {
		Write(cpu.MicroOp) error
		Close() error
	}
	var w opWriter
	if *format == "v1" {
		w, err = trace.NewWriter(f, *workloadName)
	} else {
		w, err = trace.NewWriterV2(f, *workloadName)
	}
	cli.FatalIf(tool, err)
	for i := uint64(0); i < *ops; i++ {
		cli.FatalIf(tool, w.Write(src.Next()))
	}
	cli.FatalIf(tool, w.Close())
	cli.FatalIf(tool, f.Close())
	st, err := os.Stat(path)
	cli.FatalIf(tool, err)
	fmt.Printf("recorded %d ops of %s to %s (%s, %d bytes, %.2f bits/op)\n",
		*ops, *workloadName, path, *format, st.Size(), 8*float64(st.Size())/float64(*ops))
}

func joinKinds() string {
	kinds := fdpsim.PrefetcherKinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = string(k)
	}
	return strings.Join(names, ", ")
}
