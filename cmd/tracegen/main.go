// Command tracegen records a workload's micro-op stream to a trace file,
// and can replay a trace through the simulator to verify it.
//
// Usage:
//
//	tracegen -list
//	tracegen -workload seqstream -ops 1000000 -o seqstream.trc
//	tracegen -replay seqstream.trc -prefetcher stream -level 5
//
// Only run output goes to stdout; the -list listing is help text and
// prints to stderr. Exit codes follow the shared table in internal/cli:
// 0 success, 1 runtime error, 2 bad usage (unknown workload or
// prefetcher, and -list listings).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fdpsim"
	"fdpsim/internal/cli"
	"fdpsim/internal/trace"
	"fdpsim/internal/workload"
)

const tool = "tracegen"

func main() {
	var (
		workloadName = flag.String("workload", "seqstream", "workload to record (see -list)")
		ops          = flag.Uint64("ops", 1_000_000, "micro-ops to record")
		out          = flag.String("o", "", "output trace path (default <workload>.trc)")
		replay       = flag.String("replay", "", "replay a trace file through the simulator instead of recording")
		prefName     = flag.String("prefetcher", "stream", "prefetcher for -replay (see -list)")
		level        = flag.Int("level", 5, "aggressiveness for -replay")
		seed         = flag.Uint64("seed", 1, "workload seed")
		list         = flag.Bool("list", false, "list recordable workloads and replay prefetchers, then exit")
		version      = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		cli.PrintVersion(tool)
		return
	}

	if *list {
		cli.Listing(func(w io.Writer) {
			fmt.Fprintln(w, "workloads (-workload):")
			for _, name := range fdpsim.Workloads() {
				fmt.Fprintf(w, "  %-14s %s\n", name, fdpsim.WorkloadAbout(name))
			}
			fmt.Fprintln(w, "prefetchers (-prefetcher, for -replay):")
			fmt.Fprintf(w, "  %s\n", joinKinds())
		})
	}

	if *replay != "" {
		// Validate the prefetcher name before touching the trace file, so a
		// typo fails in milliseconds with the valid names, not mid-replay.
		cfg := fdpsim.Conventional(fdpsim.PrefetcherKind(*prefName), *level)
		if err := cfg.Validate(); err != nil {
			cli.Fatalf(tool, cli.ExitUsage, "%v\nvalid prefetchers: %s", err, joinKinds())
		}
		f, err := os.Open(*replay)
		cli.FatalIf(tool, err)
		defer f.Close()
		r, err := trace.NewReader(f)
		cli.FatalIf(tool, err)
		r.Loop = true
		cfg.MaxInsts = uint64(r.Len())
		res, err := fdpsim.RunSource(cfg, r)
		cli.FatalIf(tool, err)
		fmt.Printf("replayed %s (%d ops): IPC=%.4f BPKI=%.2f accuracy=%.1f%%\n",
			r.Name(), r.Len(), res.IPC, res.BPKI, 100*res.Accuracy)
		return
	}

	// Same up-front check for the workload: no half-written trace file
	// behind an unknown-name failure.
	if !workload.Exists(*workloadName) {
		cli.Fatalf(tool, cli.ExitUsage, "unknown workload %q\nvalid workloads: %s",
			*workloadName, strings.Join(fdpsim.Workloads(), ", "))
	}
	src, err := workload.New(*workloadName, *seed)
	cli.FatalIf(tool, err)
	path := *out
	if path == "" {
		path = *workloadName + ".trc"
	}
	f, err := os.Create(path)
	cli.FatalIf(tool, err)
	w, err := trace.NewWriter(f, *workloadName)
	cli.FatalIf(tool, err)
	for i := uint64(0); i < *ops; i++ {
		cli.FatalIf(tool, w.Write(src.Next()))
	}
	cli.FatalIf(tool, w.Close())
	cli.FatalIf(tool, f.Close())
	st, err := os.Stat(path)
	cli.FatalIf(tool, err)
	fmt.Printf("recorded %d ops of %s to %s (%d bytes, %.2f bits/op)\n",
		*ops, *workloadName, path, st.Size(), 8*float64(st.Size())/float64(*ops))
}

func joinKinds() string {
	kinds := fdpsim.PrefetcherKinds()
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = string(k)
	}
	return strings.Join(names, ", ")
}
