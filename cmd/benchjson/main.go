// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark results can be archived as CI artifacts
// and diffed across commits without scraping ad-hoc text.
//
//	go test ./internal/sim -bench . -benchmem | benchjson -out BENCH.json
//	benchjson -in bench.txt
//	benchjson -diff BENCH_8.json BENCH_9.json
//	benchjson -diff -threshold 0.25 old.json new.json
//
// -diff compares two archived reports benchmark-by-benchmark (matched by
// package+name) and exits nonzero on a regression: ns/op growth beyond
// -threshold, or any allocs/op increase. Reports from different CPUs are
// compared report-only for wall time — the warning is printed and only
// the machine-independent allocs/op gate still fails the run.
//
// The parser understands the standard benchmark line shape — name,
// iteration count, then (value, unit) pairs — plus the goos/goarch/pkg/
// cpu context lines, and carries custom ReportMetric units through
// verbatim. Lines it does not recognise are ignored, so mixed test+bench
// output pipes straight in.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"fdpsim/internal/cli"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS suffix
	// stripped (it lands in Procs instead).
	Name    string `json:"name"`
	Package string `json:"package,omitempty"`
	Procs   int    `json:"procs,omitempty"`
	// Iterations is b.N for the reported run.
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
	// AllocsPerOp is only meaningful when -benchmem was set; a genuine 0
	// is distinguished from "not measured" by Metrics, which only holds
	// units that actually appeared on the line.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every (unit → value) pair verbatim, including the
	// three standard ones above and any b.ReportMetric custom units.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole document.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos,omitempty"`
	GOARCH    string `json:"goarch,omitempty"`
	CPU       string `json:"cpu,omitempty"`
	// Generated is the RFC 3339 parse time, for artifact bookkeeping.
	Generated  string      `json:"generated"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse consumes go-test benchmark output and returns the report.
// Context lines (goos:, pkg:, cpu:) apply to the benchmarks that follow
// them, matching how `go test ./...` interleaves per-package headers.
func parse(r io.Reader) (Report, error) {
	rep := Report{GoVersion: runtime.Version()}
	var pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				b.Package = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses one result line:
//
//	BenchmarkFoo-8   1000000   1056 ns/op   12 B/op   0 allocs/op   3.2 misses/op
//
// ok is false for lines that start with "Benchmark" but are not results
// (e.g. a bare name echoed by -v).
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Iterations: iters, Metrics: map[string]float64{}}
	b.Name = fields[0]
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		b.Metrics[unit] = v
		switch unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, true
}

func main() {
	var (
		in        = flag.String("in", "", "benchmark text to parse (empty = stdin)")
		out       = flag.String("out", "", "JSON output path (empty = stdout)")
		diff      = flag.Bool("diff", false, "compare two archived reports: benchjson -diff OLD.json NEW.json")
		threshold = flag.Float64("threshold", 0.10, "allowed fractional ns/op growth in -diff (0.10 = +10%)")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		cli.PrintVersion("benchjson")
		return
	}

	if *diff {
		if flag.NArg() != 2 {
			cli.Fatalf("benchjson", cli.ExitUsage, "-diff wants exactly two report paths, got %d", flag.NArg())
		}
		if *threshold < 0 {
			cli.Fatalf("benchjson", cli.ExitUsage, "-threshold must be >= 0, got %g", *threshold)
		}
		oldRep, err := loadReport(flag.Arg(0))
		cli.FatalIf("benchjson", err)
		newRep, err := loadReport(flag.Arg(1))
		cli.FatalIf("benchjson", err)
		deltas, comparable := diffReports(oldRep, newRep, *threshold)
		if regressed := renderDiff(os.Stdout, flag.Arg(0), flag.Arg(1), deltas, comparable, *threshold); regressed > 0 {
			cli.Fatalf("benchjson", cli.ExitError, "%d benchmark(s) regressed", regressed)
		}
		return
	}

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		cli.FatalIf("benchjson", err)
		defer f.Close()
		src = f
	}
	rep, err := parse(src)
	cli.FatalIf("benchjson", err)
	if len(rep.Benchmarks) == 0 {
		cli.Fatalf("benchjson", cli.ExitError, "no benchmark result lines in input")
	}
	rep.Generated = time.Now().UTC().Format(time.RFC3339)

	dst := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		cli.FatalIf("benchjson", err)
		defer func() { cli.FatalIf("benchjson", f.Close()) }()
		dst = f
	}
	enc := json.NewEncoder(dst)
	enc.SetIndent("", "  ")
	cli.FatalIf("benchjson", enc.Encode(rep))
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(rep.Benchmarks), *out)
	}
}
