package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Delta is one benchmark's old-vs-new comparison, matched by
// package+name across two archived reports.
type Delta struct {
	Package   string
	Name      string
	OldNs     float64
	NewNs     float64
	OldAllocs float64
	NewAllocs float64
	// Regression names the failed gate ("" when the benchmark passes):
	// "ns/op" for a time regression beyond the threshold, "allocs/op"
	// for any alloc-count increase.
	Regression string
}

// Ratio is new/old ns-per-op (0 when the old sample is missing a time).
func (d Delta) Ratio() float64 {
	if d.OldNs == 0 {
		return 0
	}
	return d.NewNs / d.OldNs
}

// diffReports compares two benchmark reports. threshold is the allowed
// fractional ns/op growth (0.10 = +10%). comparable reports whether the
// two reports came from the same CPU: when they did not, wall-time is
// noise, so ns/op regressions are reported but never flagged — only
// allocs/op, which is machine-independent, keeps failing the gate.
func diffReports(old, cur Report, threshold float64) (deltas []Delta, comparable bool) {
	comparable = old.CPU == "" || cur.CPU == "" || old.CPU == cur.CPU
	byKey := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		byKey[b.Package+"\x00"+b.Name] = b
	}
	for _, b := range cur.Benchmarks {
		prev, ok := byKey[b.Package+"\x00"+b.Name]
		if !ok {
			continue
		}
		d := Delta{
			Package: b.Package, Name: b.Name,
			OldNs: prev.NsPerOp, NewNs: b.NsPerOp,
			OldAllocs: prev.AllocsPerOp, NewAllocs: b.AllocsPerOp,
		}
		_, oldMeasured := prev.Metrics["allocs/op"]
		_, newMeasured := b.Metrics["allocs/op"]
		switch {
		case oldMeasured && newMeasured && d.NewAllocs > d.OldAllocs:
			d.Regression = "allocs/op"
		case comparable && d.OldNs > 0 && d.NewNs > d.OldNs*(1+threshold):
			d.Regression = "ns/op"
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Package != deltas[j].Package {
			return deltas[i].Package < deltas[j].Package
		}
		return deltas[i].Name < deltas[j].Name
	})
	return deltas, comparable
}

// loadReport reads one archived benchjson document.
func loadReport(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return rep, nil
}

// renderDiff prints the comparison table and returns how many matched
// benchmarks regressed.
func renderDiff(w io.Writer, oldPath, newPath string, deltas []Delta, comparable bool, threshold float64) int {
	fmt.Fprintf(w, "benchmark diff: %s -> %s (threshold +%.0f%% ns/op; any allocs/op growth fails)\n",
		oldPath, newPath, 100*threshold)
	if !comparable {
		fmt.Fprintln(w, "warning: reports come from different CPUs — ns/op is report-only, allocs/op still gates")
	}
	fmt.Fprintf(w, "%-32s %12s %12s %8s %10s %10s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "ratio", "old allocs", "new allocs", "verdict")
	regressed := 0
	for _, d := range deltas {
		verdict := "ok"
		if d.Regression != "" {
			verdict = "REGRESSED (" + d.Regression + ")"
			regressed++
		}
		fmt.Fprintf(w, "%-32s %12.1f %12.1f %8.3f %10.0f %10.0f  %s\n",
			d.Name, d.OldNs, d.NewNs, d.Ratio(), d.OldAllocs, d.NewAllocs, verdict)
	}
	if len(deltas) == 0 {
		fmt.Fprintln(w, "no benchmarks matched between the two reports")
	}
	return regressed
}
