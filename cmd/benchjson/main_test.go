package main

import (
	"strings"
	"testing"
)

// TestParseBenchOutput feeds a realistic -benchmem transcript (package
// headers, PASS trailer, an allocation-free line and a custom metric)
// through the parser and pins the extracted fields.
func TestParseBenchOutput(t *testing.T) {
	const out = `
goos: linux
goarch: amd64
pkg: fdpsim/internal/sim
cpu: AMD EPYC 7B13
BenchmarkIntervalBoundary-8   	 2925932	       410.8 ns/op	       0 B/op	       0 allocs/op
BenchmarkPerInstruction-8     	25990546	        45.95 ns/op	       0 B/op	       0 allocs/op
BenchmarkWithMetric-8         	     100	    104000 ns/op	        3.20 misses/op
PASS
ok  	fdpsim/internal/sim	4.611s
`
	rep, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Fatalf("context = %q/%q/%q", rep.GOOS, rep.GOARCH, rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkIntervalBoundary" || b.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.Package != "fdpsim/internal/sim" {
		t.Fatalf("package = %q", b.Package)
	}
	if b.Iterations != 2925932 || b.NsPerOp != 410.8 {
		t.Fatalf("iters/ns = %d/%g", b.Iterations, b.NsPerOp)
	}
	// allocs/op of 0 must be recorded as measured (present in Metrics),
	// not conflated with "no -benchmem".
	if v, ok := b.Metrics["allocs/op"]; !ok || v != 0 {
		t.Fatalf("allocs/op metric = %v, %v; want 0, true", v, ok)
	}
	if v := rep.Benchmarks[2].Metrics["misses/op"]; v != 3.20 {
		t.Fatalf("custom metric = %g, want 3.2", v)
	}
}

// TestParseLineRejectsNonResults pins that -v chatter starting with
// "Benchmark" (no iteration count) is skipped, not misparsed.
func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkIntervalBoundary",
		"BenchmarkFoo-8 notanumber 5 ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted a non-result line", line)
		}
	}
}

// TestParseNameWithoutProcsSuffix covers GOMAXPROCS=1 output, where go
// test omits the -N suffix entirely.
func TestParseNameWithoutProcsSuffix(t *testing.T) {
	b, ok := parseLine("BenchmarkSolo   \t 500 \t 2000 ns/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if b.Name != "BenchmarkSolo" || b.Procs != 0 {
		t.Fatalf("name/procs = %q/%d, want BenchmarkSolo/0", b.Name, b.Procs)
	}
}
