package main

import (
	"bytes"
	"strings"
	"testing"
)

// bench builds one report entry with measured time and alloc metrics.
func bench(pkg, name string, ns, allocs float64) Benchmark {
	return Benchmark{
		Name: name, Package: pkg, Iterations: 1000,
		NsPerOp: ns, AllocsPerOp: allocs,
		Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs},
	}
}

func TestDiffReports(t *testing.T) {
	old := Report{CPU: "cpu-a", Benchmarks: []Benchmark{
		bench("p", "Steady", 100, 0),
		bench("p", "Slower", 100, 0),
		bench("p", "Allocs", 100, 0),
		bench("p", "Removed", 100, 0),
	}}
	cur := Report{CPU: "cpu-a", Benchmarks: []Benchmark{
		bench("p", "Steady", 105, 0),  // +5%: inside the 10% band
		bench("p", "Slower", 150, 0),  // +50%: time regression
		bench("p", "Allocs", 90, 2),   // faster but allocating: alloc regression
		bench("p", "Added", 100, 0),   // unmatched: ignored
	}}

	deltas, comparable := diffReports(old, cur, 0.10)
	if !comparable {
		t.Fatal("same-CPU reports flagged incomparable")
	}
	if len(deltas) != 3 {
		t.Fatalf("matched %d benchmarks, want 3 (unmatched must be dropped): %+v", len(deltas), deltas)
	}
	want := map[string]string{"Steady": "", "Slower": "ns/op", "Allocs": "allocs/op"}
	for _, d := range deltas {
		if d.Regression != want[d.Name] {
			t.Errorf("%s: regression = %q, want %q", d.Name, d.Regression, want[d.Name])
		}
	}

	// A wider threshold absorbs the time regression but never the allocs.
	deltas, _ = diffReports(old, cur, 1.0)
	for _, d := range deltas {
		if d.Name == "Slower" && d.Regression != "" {
			t.Errorf("Slower regressed at +100%% threshold: %q", d.Regression)
		}
		if d.Name == "Allocs" && d.Regression != "allocs/op" {
			t.Errorf("alloc regression not enforced at wide threshold: %q", d.Regression)
		}
	}
}

// Cross-CPU reports keep the alloc gate but demote time to report-only.
func TestDiffReportsCrossCPU(t *testing.T) {
	old := Report{CPU: "cpu-a", Benchmarks: []Benchmark{
		bench("p", "Slower", 100, 0),
		bench("p", "Allocs", 100, 0),
	}}
	cur := Report{CPU: "cpu-b", Benchmarks: []Benchmark{
		bench("p", "Slower", 500, 0),
		bench("p", "Allocs", 100, 1),
	}}
	deltas, comparable := diffReports(old, cur, 0.10)
	if comparable {
		t.Fatal("different CPUs reported comparable")
	}
	for _, d := range deltas {
		switch d.Name {
		case "Slower":
			if d.Regression != "" {
				t.Errorf("cross-CPU time regression flagged: %q", d.Regression)
			}
		case "Allocs":
			if d.Regression != "allocs/op" {
				t.Errorf("cross-CPU alloc regression not flagged: %q", d.Regression)
			}
		}
	}

	var out bytes.Buffer
	n := renderDiff(&out, "old.json", "new.json", deltas, comparable, 0.10)
	if n != 1 {
		t.Fatalf("renderDiff counted %d regressions, want 1", n)
	}
	if !strings.Contains(out.String(), "different CPUs") {
		t.Fatalf("cross-CPU warning missing:\n%s", out.String())
	}
}

// Benchmarks without -benchmem (no allocs/op metric) must not trip the
// alloc gate on the zero-value AllocsPerOp.
func TestDiffReportsUnmeasuredAllocs(t *testing.T) {
	mk := func(ns float64) Benchmark {
		return Benchmark{Name: "NoMem", Package: "p", Iterations: 1,
			NsPerOp: ns, Metrics: map[string]float64{"ns/op": ns}}
	}
	old := Report{Benchmarks: []Benchmark{mk(100)}}
	cur := Report{Benchmarks: []Benchmark{mk(100)}}
	cur.Benchmarks[0].AllocsPerOp = 5 // stray value without the metric key
	deltas, _ := diffReports(old, cur, 0.10)
	if len(deltas) != 1 || deltas[0].Regression != "" {
		t.Fatalf("unmeasured allocs flagged: %+v", deltas)
	}
}
