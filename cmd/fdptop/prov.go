package main

import (
	"fmt"
	"io"

	"fdpsim/internal/store"
)

// showProvenance prints a fingerprint's provenance ledger — every
// attempt that touched the result, oldest first: who ran it, under
// which lease generation, with the wall-clock broken into queue, run
// and store time. This is the offline counterpart to the sweep pane:
// it reads the shared store directory directly, no daemon needed.
func showProvenance(w io.Writer, dir, fp string) error {
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	entries, err := st.ReadProvenance(fp)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no provenance recorded for %s in %s", fp, dir)
	}
	fmt.Fprintf(w, "provenance %s (%d attempts)\n", fp, len(entries))
	fmt.Fprintf(w, "%-20s %-10s %-10s %4s %-8s %9s %9s %9s %9s  %s\n",
		"finished", "outcome", "worker", "gen", "tenant", "queue", "run", "store", "wall", "trace")
	for _, p := range entries {
		gen := fmt.Sprintf("%d", p.LeaseGen)
		if p.LeaseGen < 0 {
			gen = "-"
		}
		if p.Stolen {
			gen += "*"
		}
		trace := p.TraceID
		if len(trace) > 12 {
			trace = trace[:12] + "…"
		}
		fmt.Fprintf(w, "%-20s %-10s %-10s %4s %-8s %9s %9s %9s %9s  %s\n",
			p.Finished.Format("2006-01-02 15:04:05"), p.Outcome, orDash(p.Worker), gen,
			orDash(p.Tenant), msCell(p.QueueWaitMS), msCell(p.RunMS),
			msCell(p.StoreMS), msCell(p.WallMS), orDash(trace))
		if p.Error != "" {
			fmt.Fprintf(w, "  error: %s\n", p.Error)
		}
	}
	fmt.Fprintln(w, "gen* = lease stolen from an expired holder")
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func msCell(ms float64) string { return fmt.Sprintf("%.1fms", ms) }
