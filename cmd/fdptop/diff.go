package main

import (
	"fmt"
	"io"
	"strings"

	"fdpsim/internal/series"
	"fdpsim/internal/store"
)

// showDiff prints a run-vs-run comparison of two fingerprints' interval
// timeseries straight from the shared store directory — the offline
// counterpart of fdpserved's GET /v1/diff. spec is "fpA,fpB". Each banded
// metric prints its residual summary and verdict; metrics that diverge
// also draw a sparkline of the per-interval |delta| so the shape of the
// drift (spike, ramp, phase shift) is visible at a glance.
func showDiff(w io.Writer, dir, spec string) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 || strings.TrimSpace(parts[0]) == "" || strings.TrimSpace(parts[1]) == "" {
		return fmt.Errorf("-diff wants two comma-separated fingerprints, got %q", spec)
	}
	fpA, fpB := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])

	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	load := func(fp string) (*series.Series, error) {
		doc, ok := st.GetSeries(fp)
		if !ok {
			return nil, fmt.Errorf("no interval series for %s in %s (run with series recording enabled)", fp, dir)
		}
		return series.Decode(doc)
	}
	a, err := load(fpA)
	if err != nil {
		return err
	}
	b, err := load(fpB)
	if err != nil {
		return err
	}

	rep := series.Diff(a, b, series.Options{IncludeDeltas: true})

	ident := func(m series.Meta) string {
		s := fmt.Sprintf("%s/%s", orDash(m.Workload), orDash(m.Prefetcher))
		if m.Controller != "" {
			s += "/" + m.Controller
		}
		return s
	}
	fmt.Fprintf(w, "diff %s (%s)  vs  %s (%s)\n", shortfp(fpA), ident(rep.MetaA), shortfp(fpB), ident(rep.MetaB))
	fmt.Fprintf(w, "aligned %d intervals (extra: a=%d b=%d)\n\n", rep.Intervals, rep.ExtraA, rep.ExtraB)
	fmt.Fprintf(w, "%-16s %9s %9s %9s %9s %6s\n", "metric", "mean-d", "max|d|", "rms", "first-div", "")
	for _, m := range rep.Metrics {
		first := "-"
		if m.FirstDivergence > 0 {
			first = fmt.Sprintf("%d", m.FirstDivergence)
		}
		tag := m.Verdict
		if m.Verdict == series.VerdictFail {
			tag = "FAIL"
		}
		fmt.Fprintf(w, "%-16s %9.4g %9.4g %9.4g %9s %6s\n",
			m.Metric, m.MeanDelta, m.MaxAbs, m.RMS, first, tag)
		if m.FirstDivergence > 0 && len(m.Delta) > 0 {
			abs := make([]float64, len(m.Delta))
			for i, d := range m.Delta {
				if d < 0 {
					d = -d
				}
				abs[i] = d
			}
			fmt.Fprintf(w, "  |d| %s\n", sparkline(abs))
		}
	}
	fmt.Fprintf(w, "\nverdict: %s", rep.Verdict)
	if len(rep.Failed) > 0 {
		fmt.Fprintf(w, " (%s)", strings.Join(rep.Failed, ", "))
	}
	fmt.Fprintln(w)
	if rep.Verdict == series.VerdictFail {
		return fmt.Errorf("runs diverge beyond tolerance on %d metric(s)", len(rep.Failed))
	}
	return nil
}

// shortfp abbreviates a fingerprint for the header line.
func shortfp(fp string) string {
	if len(fp) > 12 {
		return fp[:12] + "…"
	}
	return fp
}
