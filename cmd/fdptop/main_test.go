package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"fdpsim"
	"fdpsim/internal/obs"
	"fdpsim/internal/stats"
)

const golden = "testdata/attr_trace.jsonl"

func goldenEvents(t *testing.T) []fdpsim.DecisionEvent {
	t.Helper()
	f, err := os.Open(golden)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("golden trace has no events")
	}
	return events
}

// The checked-in golden must carry attribution samples whose stall
// buckets sum to the interval's cycle count — the dashboard's 100%
// guarantee rests on it. An interval boundary fires mid-Tick, before the
// firing cycle's bucket is recorded, so each boundary's stamp may sit one
// cycle past the classified count; the skew never accumulates.
func TestGoldenSamplesSumToCycles(t *testing.T) {
	events := goldenEvents(t)
	var prevCycle, sumTotals uint64
	for _, ev := range events {
		total := ev.Sample.Cycles.Total()
		if total == 0 {
			t.Fatalf("interval %d: no attribution sample", ev.Interval)
		}
		sumTotals += total
		if ev.Cycle > prevCycle {
			delta := ev.Cycle - prevCycle
			if diff := int64(total) - int64(delta); diff < -1 || diff > 1 {
				t.Errorf("interval %d: sample cycles %d != interval delta %d",
					ev.Interval, total, delta)
			}
		}
		prevCycle = ev.Cycle
	}
	last := events[len(events)-1].Cycle
	if diff := int64(sumTotals) - int64(last); diff < -1 || diff > 1 {
		t.Errorf("samples sum to %d cycles, last boundary at %d — skew accumulated", sumTotals, last)
	}
}

func TestReplayOnce(t *testing.T) {
	var buf strings.Builder
	if err := replayTrace(&buf, golden, true, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// One frame, not one per event.
	if n := strings.Count(out, "fdptop —"); n != 1 {
		t.Fatalf("-once rendered %d frames, want 1\n%s", n, out)
	}
	for _, want := range []string{
		"[done]", "interval", "IPC", "ipc ", "stall breakdown",
		"retire full", "rob full", "frontend",
		"bus ", "util", "row-hit", "mshr mean", "fdp ", "insert",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "no attribution samples") {
		t.Errorf("golden replay fell into the no-attribution path:\n%s", out)
	}
}

func TestReplayEveryFrame(t *testing.T) {
	events := goldenEvents(t)
	var buf strings.Builder
	if err := replayTrace(&buf, golden, false, 0); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "fdptop —"); n != len(events) {
		t.Fatalf("rendered %d frames, want one per event (%d)", n, len(events))
	}
}

func TestReplayErrors(t *testing.T) {
	if err := replayTrace(&strings.Builder{}, "testdata/absent.jsonl", true, 0); err == nil {
		t.Error("missing trace: want error")
	}
	empty := t.TempDir() + "/empty.jsonl"
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := replayTrace(&strings.Builder{}, empty, true, 0); err == nil {
		t.Error("empty trace: want error")
	}
}

// TestStallSharesSumTo100 renders every golden event and checks the
// stall pane's percentages add up to 100 within rounding slack.
func TestStallSharesSumTo100(t *testing.T) {
	for _, ev := range goldenEvents(t) {
		d := newDash("test")
		d.observe(frameFromEvent(ev))
		var buf strings.Builder
		d.render(&buf)
		var sum float64
		n := 0
		for _, line := range strings.Split(buf.String(), "\n") {
			if !strings.ContainsAny(line, "█░") { // only the stall bars use block chars
				continue
			}
			var pct float64
			if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%f%%", &pct); err == nil {
				sum += pct
				n++
			}
		}
		if n != 7 {
			t.Fatalf("interval %d: found %d stall rows, want 7\n%s", ev.Interval, n, buf.String())
		}
		if sum < 99.5 || sum > 100.5 {
			t.Errorf("interval %d: stall shares sum to %.2f%%, want 100%%", ev.Interval, sum)
		}
	}
}

func TestFrameFromEvent(t *testing.T) {
	ev := fdpsim.DecisionEvent{
		Interval: 7, Cycle: 2000, Retired: 1000,
		Accuracy: 0.5, DCCAfter: 4, Insertion: "MRU",
		Sample: stats.IntervalSample{Cycles: stats.CycleBuckets{RetireFull: 10}},
	}
	f := frameFromEvent(ev)
	if f.IPC != 0.5 {
		t.Errorf("IPC = %v, want 0.5", f.IPC)
	}
	if f.HasBPKI {
		t.Error("replayed events must not claim a BPKI")
	}
	if f.Level != 4 || f.Insertion != "MRU" || f.Sample.Cycles.RetireFull != 10 {
		t.Errorf("mapping lost fields: %+v", f)
	}
	if z := frameFromEvent(fdpsim.DecisionEvent{Retired: 5}); z.IPC != 0 {
		t.Errorf("zero-cycle event: IPC = %v, want 0", z.IPC)
	}
}

func TestScanSSE(t *testing.T) {
	stream := "event: state\ndata: {\"a\":1}\n\n" +
		": comment\n" +
		"event: progress\ndata: {\"b\":2}\n\n" +
		"event: done\ndata: {}\n\n"
	var got []string
	err := scanSSE(strings.NewReader(stream), func(event string, data []byte) error {
		got = append(got, event+"|"+string(data))
		if event == "done" {
			return errDone
		}
		return nil
	})
	if err != errDone {
		t.Fatalf("err = %v, want errDone", err)
	}
	want := []string{"state|{\"a\":1}", "progress|{\"b\":2}", "done|{}"}
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestAttachSSE drives attach against a fake fdpserved event stream and
// checks the dashboard renders the live snapshots, attribution included.
func TestAttachSSE(t *testing.T) {
	snaps := []fdpsim.Snapshot{
		{Interval: 1, Cycle: 1000, Retired: 600, IPC: 0.6, BPKI: 12.5,
			Level: 3, Sample: stats.IntervalSample{
				Cycles:          stats.CycleBuckets{RetireFull: 700, StallLoadMiss: 300},
				BusDemandCycles: 400, BusUtilization: 0.4,
				RowHits: 30, RowMisses: 10, MSHRMean: 2.5, QueueMean: 1.25,
			}},
		{Interval: 2, Cycle: 2000, Retired: 1300, IPC: 0.65, BPKI: 11.0, Level: 4,
			Sample: stats.IntervalSample{Cycles: stats.CycleBuckets{RetireFull: 1000}}},
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/j1/events" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprintf(w, "event: state\ndata: {\"id\":\"j1\"}\n\n")
		for _, s := range snaps {
			data, err := json.Marshal(s)
			if err != nil {
				t.Error(err)
				return
			}
			fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data)
		}
		fmt.Fprintf(w, "event: done\ndata: {\"id\":\"j1\"}\n\n")
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	var buf strings.Builder
	if err := attach(&buf, addr, "j1", false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Two progress frames plus the done redraw.
	if n := strings.Count(out, "fdptop —"); n != 3 {
		t.Fatalf("rendered %d frames, want 3\n%s", n, out)
	}
	for _, want := range []string{
		"job j1 @ " + addr, "[done]", "BPKI  12.50", "BPKI  11.00",
		"stall breakdown", "util  40.0%", "row-hit  75.0%",
		"mshr mean  2.50", "queue mean  1.25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// -once: only the final frame.
	buf.Reset()
	if err := attach(&buf, addr, "j1", true); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "fdptop —"); n != 1 {
		t.Fatalf("-once rendered %d frames, want 1", n)
	}
	if !strings.Contains(buf.String(), "[done]") {
		t.Errorf("-once frame not final:\n%s", buf.String())
	}

	// Unknown jobs surface the server's error.
	if err := attach(&strings.Builder{}, addr, "nope", true); err == nil {
		t.Error("unknown job: want error")
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil); !strings.Contains(got, "no samples") {
		t.Errorf("empty sparkline = %q", got)
	}
	got := sparkline([]float64{0.1, 0.5, 1.0})
	if !strings.Contains(got, "min 0.100") || !strings.Contains(got, "max 1.000") {
		t.Errorf("sparkline range labels missing: %q", got)
	}
	if !strings.ContainsRune(got, '▁') || !strings.ContainsRune(got, '█') {
		t.Errorf("sparkline should span min..max ticks: %q", got)
	}
	// Flat history renders mid-height, not bottom.
	if flat := sparkline([]float64{0.5, 0.5}); strings.ContainsRune(flat, '▁') {
		t.Errorf("flat sparkline rendered bottom ticks: %q", flat)
	}
}

func TestBar(t *testing.T) {
	if got := bar(0, 10); got != strings.Repeat("░", 10) {
		t.Errorf("bar(0) = %q", got)
	}
	if got := bar(1, 10); got != strings.Repeat("█", 10) {
		t.Errorf("bar(1) = %q", got)
	}
	if got := bar(2, 4); got != "████" {
		t.Errorf("bar clamps above 1: %q", got)
	}
	if got := bar(-1, 4); got != "░░░░" {
		t.Errorf("bar clamps below 0: %q", got)
	}
}

// The replay path must stay fast enough for CI smoke use even with the
// pacing flag set, because non-TTY writers skip the sleep entirely.
func TestReplayNonTTYSkipsPacing(t *testing.T) {
	start := time.Now()
	var buf strings.Builder
	if err := replayTrace(&buf, golden, false, 200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("non-TTY replay took %v; pacing sleep should not apply", elapsed)
	}
}
