package main

import (
	"bytes"
	"strings"
	"testing"

	"fdpsim"
	"fdpsim/internal/series"
	"fdpsim/internal/store"
)

// diffFixture runs one small simulation with a series recorder and
// persists the sidecar under fp in dir.
func diffFixture(t *testing.T, dir, fp string, seed uint64) {
	t.Helper()
	cfg, err := fdpsim.NewConfig(fdpsim.PrefStream,
		fdpsim.WithWorkload("chaserand"), fdpsim.WithInsts(120_000), fdpsim.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg.FDP.TInterval = 64
	cfg.L2Blocks = 512
	rec := &series.Recorder{}
	cfg.Tracer = rec
	if _, err := fdpsim.Run(cfg); err != nil {
		t.Fatal(err)
	}
	sr := rec.Series()
	if sr.Len() == 0 {
		t.Fatal("fixture run closed no FDP intervals")
	}
	sr.Meta.Workload = cfg.Workload
	sr.Meta.Prefetcher = string(cfg.Prefetcher)
	doc, err := series.Encode(sr)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutSeries(fp, doc); err != nil {
		t.Fatal(err)
	}
}

// TestShowDiff covers the offline diff pane: a self-diff passes with zero
// residual, two different seeds print a report (pass or fail, but always
// rendering every catalog metric), and missing fingerprints error.
func TestShowDiff(t *testing.T) {
	dir := t.TempDir()
	fpA := strings.Repeat("a", 64)
	fpB := strings.Repeat("b", 64)
	diffFixture(t, dir, fpA, 7)
	diffFixture(t, dir, fpB, 8)

	var out bytes.Buffer
	if err := showDiff(&out, dir, fpA+","+fpA); err != nil {
		t.Fatalf("self-diff: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verdict: pass") {
		t.Fatalf("self-diff did not pass:\n%s", out.String())
	}
	for _, m := range series.Catalog {
		if !strings.Contains(out.String(), m.Name) {
			t.Fatalf("diff output missing metric %s:\n%s", m.Name, out.String())
		}
	}

	out.Reset()
	err := showDiff(&out, dir, fpA+","+fpB)
	if !strings.Contains(out.String(), "verdict:") {
		t.Fatalf("cross-seed diff rendered no verdict (err=%v):\n%s", err, out.String())
	}

	if err := showDiff(&out, dir, fpA); err == nil {
		t.Fatal("malformed spec accepted")
	}
	if err := showDiff(&out, dir, fpA+","+strings.Repeat("c", 64)); err == nil {
		t.Fatal("missing fingerprint accepted")
	}
}
