package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"fdpsim/internal/obs"
	"fdpsim/internal/service"
)

// The sweep pane attaches to a sweep's aggregate SSE feed and renders
// the fabric view: cell progress on top, one lane per worker below —
// how many jobs each fleet member claimed, ran and adopted, mean queue
// and run times, and how many leases were stolen. The lane table comes
// from the sweep's span trace (GET /v1/sweeps/{id}/trace?format=json),
// refreshed at most once a second so the SSE cadence, not the span
// fetch, paces the redraw.

// spanRefresh bounds how often the sweep pane re-fetches the span trace.
const spanRefresh = time.Second

// lane is one worker's aggregated span activity within a sweep.
type lane struct {
	actor   string
	tenants map[string]bool
	claims  int
	runs    int
	adopted int
	steals  int
	queueMS float64 // summed; divide by runs+adopted for the mean
	runMS   float64
}

// sweepDash accumulates sweep SSE frames plus the span-lane summary.
type sweepDash struct {
	source  string
	last    service.SweepEvent
	lanes   []lane
	spanned int // spans folded into lanes, for the header
	frames  uint64
}

// foldSpans rebuilds the lane table from a fresh span fetch. Spans
// arrive whole (recorded at completion), so rebuilding from scratch is
// simpler and no less accurate than increments.
func (d *sweepDash) foldSpans(spans []obs.Span) {
	byActor := map[string]*lane{}
	for _, sp := range spans {
		if sp.Actor == "" {
			continue
		}
		ln, ok := byActor[sp.Actor]
		if !ok {
			ln = &lane{actor: sp.Actor, tenants: map[string]bool{}}
			byActor[sp.Actor] = ln
		}
		if sp.Lane != "" {
			ln.tenants[sp.Lane] = true
		}
		switch sp.Name {
		case "queue":
			ln.queueMS += sp.Duration().Seconds() * 1000
		case "run":
			ln.runMS += sp.Duration().Seconds() * 1000
			ln.runs++
		case "claim":
			ln.claims++
			if sp.Attrs["outcome"] == "adopted" {
				ln.adopted++
			}
			for _, ev := range sp.Events {
				if ev.Name == "lease-steal" {
					ln.steals++
				}
			}
		}
	}
	d.lanes = d.lanes[:0]
	for _, ln := range byActor {
		d.lanes = append(d.lanes, *ln)
	}
	sort.Slice(d.lanes, func(i, j int) bool { return d.lanes[i].actor < d.lanes[j].actor })
	d.spanned = len(spans)
}

func (d *sweepDash) observe(ev service.SweepEvent) {
	d.last = ev
	d.frames++
}

// render writes one sweep-pane frame: aggregate header, progress bar,
// then the per-worker fabric lanes.
func (d *sweepDash) render(w io.Writer) {
	ev := d.last
	s := ev.Summary
	fmt.Fprintf(w, "fdptop — %s  [%s]\n", d.source, ev.State)
	fmt.Fprintf(w, "cells %d  done %d  running %d  queued %d  failed %d  cancelled %d  cache-hits %d\n",
		s.Total, s.Done, s.Running, s.Queued, s.Failed, s.Cancelled, s.CacheHits)
	share := 0.0
	if s.Total > 0 {
		share = float64(s.Done+s.Failed+s.Cancelled) / float64(s.Total)
	}
	fmt.Fprintf(w, "prog  %s %5.1f%%  elapsed %s%s\n",
		bar(share, 32), 100*share, fmtSeconds(ev.ElapsedSeconds), etaCell(ev))
	fmt.Fprintf(w, "agg   mean IPC %6.3f  mean BPKI %6.2f\n", s.MeanIPC, s.MeanBPKI)
	if len(d.lanes) == 0 {
		fmt.Fprintf(w, "fabric: no spans yet (%d recorded)\n", d.spanned)
		return
	}
	fmt.Fprintf(w, "fabric lanes (%d spans)\n", d.spanned)
	fmt.Fprintf(w, "  %-12s %-10s %5s %5s %6s %6s %9s %9s\n",
		"worker", "tenants", "runs", "claim", "adopt", "steal", "q-mean", "run-mean")
	for _, ln := range d.lanes {
		fmt.Fprintf(w, "  %-12s %-10s %5d %5d %6d %6d %9s %9s\n",
			ln.actor, tenantCell(ln.tenants), ln.runs, ln.claims, ln.adopted, ln.steals,
			meanMS(ln.queueMS, ln.runs+ln.adopted), meanMS(ln.runMS, ln.runs))
	}
}

func tenantCell(ts map[string]bool) string {
	names := make([]string, 0, len(ts))
	for t := range ts {
		names = append(names, t)
	}
	sort.Strings(names)
	cell := strings.Join(names, ",")
	if len(cell) > 10 {
		cell = cell[:9] + "…"
	}
	if cell == "" {
		cell = "-"
	}
	return cell
}

func meanMS(sum float64, n int) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fms", sum/float64(n))
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(100 * time.Millisecond).String()
}

func etaCell(ev service.SweepEvent) string {
	if ev.ETASeconds <= 0 {
		return ""
	}
	return "  eta " + fmtSeconds(ev.ETASeconds)
}

// fetchSpans pulls the sweep's raw span trace for the lane table.
func fetchSpans(addr, sweepID string) ([]obs.Span, error) {
	url := fmt.Sprintf("http://%s/v1/sweeps/%s/trace?format=json", addr, sweepID)
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	var doc struct {
		Spans []obs.Span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("sweep trace: %w", err)
	}
	return doc.Spans, nil
}

// attachSweep subscribes to a sweep's aggregate SSE feed and renders a
// frame per "summary" event until "done". The span-lane table refreshes
// at most once per spanRefresh, plus once after the stream ends so the
// final frame shows the complete fabric picture.
func attachSweep(w io.Writer, addr, sweepID string, once bool) error {
	url := fmt.Sprintf("http://%s/v1/sweeps/%s/events", addr, sweepID)
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	d := &sweepDash{source: fmt.Sprintf("sweep %s @ %s", sweepID, addr)}
	tty := isTTY(w)
	var lastFetch time.Time
	draw := func() {
		if once {
			return
		}
		if tty {
			fmt.Fprint(w, clearScreen)
		}
		d.render(w)
		if !tty {
			fmt.Fprintln(w)
		}
	}

	err = scanSSE(resp.Body, func(event string, data []byte) error {
		switch event {
		case "summary":
			var ev service.SweepEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				return fmt.Errorf("summary event: %w", err)
			}
			d.observe(ev)
			if time.Since(lastFetch) >= spanRefresh {
				lastFetch = time.Now()
				if spans, err := fetchSpans(addr, sweepID); err == nil {
					d.foldSpans(spans)
				}
			}
			draw()
		case "done":
			return errDone
		}
		return nil
	})
	if err != nil && err != errDone {
		return err
	}
	if d.frames == 0 {
		return fmt.Errorf("sweep %s produced no summary events (check the sweep ID)", sweepID)
	}
	// Final refresh: the last summary can race the tail spans (store
	// writes, the sweep root) landing in the recorder.
	if spans, err := fetchSpans(addr, sweepID); err == nil {
		d.foldSpans(spans)
	}
	if d.last.State == "running" {
		d.last.State = "done"
	}
	if tty && !once {
		fmt.Fprint(w, clearScreen)
	}
	d.render(w)
	if !tty && !once {
		fmt.Fprintln(w)
	}
	return nil
}
