package main

import (
	"fmt"
	"io"
	"strings"

	"fdpsim"
	"fdpsim/internal/stats"
)

// frame is one dashboard update — the common shape both sources map to:
// an SSE "progress" Snapshot from fdpserved, or one DecisionEvent from a
// replayed JSONL decision trace.
type frame struct {
	Core     int
	Interval uint64
	Cycle    uint64
	Retired  uint64
	IPC      float64
	// BPKI is only carried by live Snapshots; replayed decision events
	// don't record bus accesses, so HasBPKI gates the header cell.
	BPKI    float64
	HasBPKI bool

	Accuracy  float64
	Lateness  float64
	Pollution float64
	Level     int
	Insertion string

	Sample stats.IntervalSample
	Final  bool
}

func frameFromSnapshot(s fdpsim.Snapshot) frame {
	return frame{
		Core:      s.Core,
		Interval:  s.Interval,
		Cycle:     s.Cycle,
		Retired:   s.Retired,
		IPC:       s.IPC,
		BPKI:      s.BPKI,
		HasBPKI:   true,
		Accuracy:  s.Accuracy,
		Lateness:  s.Lateness,
		Pollution: s.Pollution,
		Level:     s.Level,
		Insertion: s.Insertion.String(),
		Sample:    s.Sample,
		Final:     s.Final,
	}
}

func frameFromEvent(ev fdpsim.DecisionEvent) frame {
	f := frame{
		Core:      ev.Core,
		Interval:  ev.Interval,
		Cycle:     ev.Cycle,
		Retired:   ev.Retired,
		Accuracy:  ev.Accuracy,
		Lateness:  ev.Lateness,
		Pollution: ev.Pollution,
		Level:     levelFromParams(ev),
		Insertion: ev.Insertion,
		Sample:    ev.Sample,
	}
	if ev.Cycle > 0 {
		f.IPC = float64(ev.Retired) / float64(ev.Cycle)
	}
	return f
}

// levelFromParams recovers the aggressiveness level from the event's DCC
// (the counter value after the boundary's update IS the level).
func levelFromParams(ev fdpsim.DecisionEvent) int { return ev.DCCAfter }

// sparkWidth is how many interval IPC values the sparkline keeps.
const sparkWidth = 48

// dash accumulates frames and renders the dashboard. All state is plain
// values; rendering writes to an io.Writer so tests can capture frames.
type dash struct {
	source string // "job 3f2c… @ host:port" or "replay trace.jsonl"
	last   frame
	ipcs   []float64 // trailing per-interval IPC history for the sparkline
	frames uint64
}

func newDash(source string) *dash { return &dash{source: source} }

// observe folds one frame into the dashboard state. A frame without an
// attribution sample keeps the previous one: the final snapshot closes
// no interval, and the last interval's breakdown beats an empty pane.
func (d *dash) observe(f frame) {
	if f.Sample.Cycles.Total() == 0 && d.last.Sample.Cycles.Total() > 0 {
		f.Sample = d.last.Sample
	}
	d.last = f
	d.frames++
	if f.IPC > 0 {
		d.ipcs = append(d.ipcs, f.IPC)
		if len(d.ipcs) > sparkWidth {
			d.ipcs = d.ipcs[len(d.ipcs)-sparkWidth:]
		}
	}
}

// render writes one full dashboard frame.
func (d *dash) render(w io.Writer) {
	f := d.last
	state := "running"
	if f.Final {
		state = "done"
	}
	fmt.Fprintf(w, "fdptop — %s  [%s]\n", d.source, state)
	fmt.Fprintf(w, "interval %-6d cycle %-12d retired %-12d IPC %6.3f  %s\n",
		f.Interval, f.Cycle, f.Retired, f.IPC, bpkiCell(f))
	fmt.Fprintf(w, "ipc   %s\n", sparkline(d.ipcs))
	d.renderStalls(w, f.Sample.Cycles)
	d.renderBus(w, f)
	fmt.Fprintf(w, "fdp   acc %3.0f%%  late %3.0f%%  poll %3.0f%%  level %d  insert %s\n",
		100*f.Accuracy, 100*f.Lateness, 100*f.Pollution, f.Level, f.Insertion)
}

func bpkiCell(f frame) string {
	if !f.HasBPKI {
		return "BPKI     -"
	}
	return fmt.Sprintf("BPKI %6.2f", f.BPKI)
}

// renderStalls draws the top-down cycle-accounting pane: one bar per
// bucket, scaled so the shares sum to 100% of the interval's cycles.
func (d *dash) renderStalls(w io.Writer, b stats.CycleBuckets) {
	total := b.Total()
	if total == 0 {
		fmt.Fprintf(w, "stall breakdown: no attribution samples (run with attribution enabled)\n")
		return
	}
	fmt.Fprintf(w, "stall breakdown (interval, %d cycles)\n", total)
	rows := []struct {
		name string
		v    uint64
	}{
		{"retire full", b.RetireFull},
		{"retire part", b.RetirePartial},
		{"load miss", b.StallLoadMiss},
		{"rob full", b.StallROBFull},
		{"dram bp", b.StallDRAMBP},
		{"ifetch", b.StallIFetch},
		{"frontend", b.StallFrontend},
	}
	for _, r := range rows {
		share := b.Share(r.v)
		fmt.Fprintf(w, "  %-11s %s %5.1f%%\n", r.name, bar(share, 24), 100*share)
	}
}

// renderBus draws the memory-pressure pane from the interval sample.
func (d *dash) renderBus(w io.Writer, f frame) {
	s := f.Sample
	total := s.Cycles.Total()
	if total == 0 {
		return
	}
	ft := float64(total)
	fmt.Fprintf(w, "bus   util %5.1f%%  demand %4.1f%%  prefetch %4.1f%%  writeback %4.1f%%\n",
		100*s.BusUtilization,
		100*float64(s.BusDemandCycles)/ft,
		100*float64(s.BusPrefetchCycles)/ft,
		100*float64(s.BusWritebackCycles)/ft)
	fmt.Fprintf(w, "dram  row-hit %5.1f%%  mshr mean %5.2f  queue mean %5.2f\n",
		100*f.Sample.RowHitRate(), s.MSHRMean, s.QueueMean)
}

// bar renders share (0..1) as a fixed-width block bar.
func bar(share float64, width int) string {
	if share < 0 {
		share = 0
	}
	if share > 1 {
		share = 1
	}
	n := int(share*float64(width) + 0.5)
	return strings.Repeat("█", n) + strings.Repeat("░", width-n)
}

// sparkTicks are the eight block heights of a terminal sparkline.
var sparkTicks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the IPC history scaled to its own min..max (a flat
// history renders mid-height so a steady run doesn't look like zero).
func sparkline(vs []float64) string {
	if len(vs) == 0 {
		return "(no samples yet)"
	}
	lo, hi := vs[0], vs[0]
	for _, v := range vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vs {
		i := len(sparkTicks) / 2
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkTicks)-1))
		}
		b.WriteRune(sparkTicks[i])
	}
	fmt.Fprintf(&b, "  min %.3f max %.3f", lo, hi)
	return b.String()
}
