// Command fdptop is a live terminal dashboard for the simulator's
// cycle-accounting and bandwidth-attribution telemetry: per-FDP-interval
// IPC and BPKI, a top-down stall breakdown that always sums to 100% of
// the interval's cycles, bus utilization split by transaction kind, DRAM
// row-hit rate, and MSHR/queue pressure.
//
// It has four sources and one escape hatch:
//
//	fdptop -addr 127.0.0.1:8080 -job 3f2c91ab      attach to a running
//	                                               fdpserved job over SSE
//	fdptop -addr 127.0.0.1:8080 -sweep sweep-0001  sweep/fleet pane: cell
//	                                               progress + fabric lanes
//	fdptop -store /var/cache/fdpsim -prov <fp>     print a fingerprint's
//	                                               provenance ledger
//	fdptop -store /var/cache/fdpsim -diff fpA,fpB  diff two fingerprints'
//	                                               interval series
//	fdptop -replay trace.jsonl                     replay a decision trace
//	                                               recorded with -attr
//	fdptop -replay trace.jsonl -once               render the final frame
//	                                               and exit (CI, pipes)
//
// In a terminal the dashboard redraws in place (ANSI home+clear); when
// stdout is not a TTY, or with -once, frames print sequentially so the
// output stays greppable. Stall and bus panes need attribution samples:
// submit jobs with "attribution": true, or trace with fdpsim -attr.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"fdpsim"
	"fdpsim/internal/cli"
	"fdpsim/internal/obs"
)

const tool = "fdptop"

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "fdpserved address for -job and -sweep")
		job      = flag.String("job", "", "fdpserved job ID to attach to over SSE")
		sweepID  = flag.String("sweep", "", "fdpserved sweep ID: aggregate progress + per-worker fabric lanes")
		prov     = flag.String("prov", "", "print a fingerprint's provenance ledger (with -store) and exit")
		diffSpec = flag.String("diff", "", "compare two fingerprints' interval series, \"fpA,fpB\" (with -store), and exit")
		storeDir = flag.String("store", "", "result-store directory for -prov and -diff")
		replay   = flag.String("replay", "", "replay a JSONL decision trace instead of attaching")
		once     = flag.Bool("once", false, "render a single final frame and exit (no redraw)")
		rate     = flag.Duration("rate", 40*time.Millisecond, "replay frame delay in TTY mode")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		cli.PrintVersion(tool)
		return
	}
	// Build info goes to stderr so piped dashboard frames stay clean.
	fmt.Fprintf(os.Stderr, "%s\n", cli.Version(tool))

	switch {
	case *prov != "":
		if *storeDir == "" {
			cli.Fatalf(tool, cli.ExitUsage, "-prov requires -store <dir> (the shared result-store directory)")
		}
		cli.FatalIf(tool, showProvenance(os.Stdout, *storeDir, *prov))
	case *diffSpec != "":
		if *storeDir == "" {
			cli.Fatalf(tool, cli.ExitUsage, "-diff requires -store <dir> (the shared result-store directory)")
		}
		cli.FatalIf(tool, showDiff(os.Stdout, *storeDir, *diffSpec))
	case *replay != "":
		cli.FatalIf(tool, replayTrace(os.Stdout, *replay, *once, *rate))
	case *sweepID != "":
		cli.FatalIf(tool, attachSweep(os.Stdout, *addr, *sweepID, *once))
	case *job != "":
		cli.FatalIf(tool, attach(os.Stdout, *addr, *job, *once))
	default:
		cli.Fatalf(tool, cli.ExitUsage, "use -job or -sweep <id> (with -addr) to attach, -prov <fp> or -diff <fpA,fpB> with -store <dir>, or -replay <trace.jsonl>")
	}
}

// isTTY reports whether w is an interactive terminal — the gate for
// in-place redraw versus sequential frames.
func isTTY(w io.Writer) bool {
	f, ok := w.(*os.File)
	if !ok {
		return false
	}
	st, err := f.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}

// clearScreen is the ANSI home+erase sequence used between TTY frames.
const clearScreen = "\x1b[H\x1b[2J"

// replayTrace renders a recorded decision trace. With once set, only the
// cumulative final frame prints; otherwise every interval renders (paced
// by rate when drawing to a TTY, immediate when piped).
func replayTrace(w io.Writer, path string, once bool, rate time.Duration) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: no decision events", path)
	}
	d := newDash("replay " + path)
	tty := isTTY(w)
	for i, ev := range events {
		fr := frameFromEvent(ev)
		fr.Final = i == len(events)-1
		d.observe(fr)
		if once {
			continue
		}
		if tty {
			fmt.Fprint(w, clearScreen)
		}
		d.render(w)
		if !tty {
			fmt.Fprintln(w)
		}
		if tty && rate > 0 {
			time.Sleep(rate)
		}
	}
	if once {
		d.render(w)
	}
	return nil
}

// attach subscribes to a job's SSE event stream on fdpserved and renders
// every "progress" snapshot until the "done" event arrives. With once
// set, only the final frame (the last state at stream end) prints.
func attach(w io.Writer, addr, jobID string, once bool) error {
	url := fmt.Sprintf("http://%s/v1/jobs/%s/events", addr, jobID)
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	d := newDash(fmt.Sprintf("job %s @ %s", jobID, addr))
	tty := isTTY(w)
	draw := func() {
		if once {
			return
		}
		if tty {
			fmt.Fprint(w, clearScreen)
		}
		d.render(w)
		if !tty {
			fmt.Fprintln(w)
		}
	}

	err = scanSSE(resp.Body, func(event string, data []byte) error {
		switch event {
		case "progress":
			var snap fdpsim.Snapshot
			if err := json.Unmarshal(data, &snap); err != nil {
				return fmt.Errorf("progress event: %w", err)
			}
			d.observe(frameFromSnapshot(snap))
			draw()
		case "done":
			// The runner's final snapshot (Final=true) usually precedes this
			// event; redraw only if it didn't arrive, to avoid a duplicate
			// closing frame.
			if !d.last.Final {
				d.last.Final = true
				draw()
			}
			return errDone
		}
		return nil
	})
	if err != nil && err != errDone {
		return err
	}
	if d.frames == 0 {
		return fmt.Errorf("job %s produced no progress snapshots (submit with \"progress\" cadence or check the job ID)", jobID)
	}
	if once {
		d.render(w)
	}
	return nil
}

// errDone is scanSSE's internal "stream finished cleanly" sentinel.
var errDone = fmt.Errorf("done")

// scanSSE parses a Server-Sent-Events stream and calls fn once per
// complete event. Returning errDone from fn stops the scan cleanly.
func scanSSE(r io.Reader, fn func(event string, data []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var event string
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case len(line) == 0:
			if event != "" {
				if err := fn(event, data); err != nil {
					return err
				}
			}
			event, data = "", nil
		case len(line) > 7 && line[:7] == "event: ":
			event = line[7:]
		case len(line) > 6 && line[:6] == "data: ":
			data = append(data, line[6:]...)
		}
	}
	return sc.Err()
}
