// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig9
//	experiments -run fig9,fig10,table5
//	experiments -all -insts 1000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fdpsim/internal/harness"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		run     = flag.String("run", "", "comma-separated experiment IDs to run")
		all     = flag.Bool("all", false, "run every experiment")
		insts   = flag.Uint64("insts", 1_000_000, "instructions per simulation (after warmup)")
		warmup  = flag.Uint64("warmup", 250_000, "warmup instructions excluded from statistics")
		seed    = flag.Uint64("seed", 1, "workload seed")
		workers = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		tint    = flag.Uint64("tinterval", 2048, "FDP sampling interval in useful evictions (paper: 8192 at 250M insts)")
		format  = flag.String("format", "text", "output format: text, csv, or chart")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		return
	}

	var ids []string
	if *all {
		for _, e := range harness.Experiments() {
			ids = append(ids, e.ID)
		}
	} else if *run != "" {
		ids = strings.Split(*run, ",")
	} else {
		fmt.Fprintln(os.Stderr, "experiments: use -list, -run <ids>, or -all")
		os.Exit(2)
	}

	p := harness.DefaultParams()
	p.Insts = *insts
	p.Warmup = *warmup
	p.Seed = *seed
	p.TInterval = *tint
	if *workers > 0 {
		p.Workers = *workers
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := harness.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (see -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables, err := e.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		switch *format {
		case "chart":
			fmt.Printf("=== %s: %s\n\n", e.ID, e.Title)
			for i := range tables {
				tables[i].RenderChart(os.Stdout, 48)
			}
		case "csv":
			for i := range tables {
				if err := tables[i].RenderCSV(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
					os.Exit(1)
				}
				fmt.Println()
			}
		default:
			fmt.Printf("=== %s: %s  [%.1fs]\n\n", e.ID, e.Title, time.Since(start).Seconds())
			for i := range tables {
				tables[i].Render(os.Stdout)
			}
		}
	}
}
