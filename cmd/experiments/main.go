// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig9
//	experiments -run fig9,fig10,table5
//	experiments -all -insts 1000000
//	experiments -all -progress -timeout 2m
//
// A SIGINT (Ctrl-C) or an expired -timeout cancels the in-flight
// simulations at the next FDP interval boundary; tables of experiments
// already completed have been printed, so an interrupted -all run still
// exits cleanly with partial output. -progress streams per-simulation
// completions and per-FDP-interval telemetry to stderr.
//
// -cache-dir points at a content-addressed result store (shared with
// fdpserved): completed simulations are persisted there and re-runs of
// the same grid — including after a crash or across machines sharing the
// directory — are served from disk instead of re-simulating.
//
// -cpuprofile/-memprofile write pprof artifacts covering the whole grid,
// the usual way to check that a change kept the hot path allocation-free
// under every prefetcher and workload at once.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"fdpsim"
	"fdpsim/internal/cli"
	"fdpsim/internal/harness"
	"fdpsim/internal/store"
)

// reporter serializes live progress lines onto stderr.
type reporter struct {
	mu sync.Mutex
}

func (r *reporter) onRun(done, total int, spec harness.RunSpec, res fdpsim.Result, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case err == nil:
		fmt.Fprintf(os.Stderr, "  [%3d/%3d] %s/%s  IPC=%.3f BPKI=%.1f (%.2fs)\n",
			done, total, spec.Workload, spec.Config, res.IPC, res.BPKI, res.Elapsed.Seconds())
	case errors.Is(err, fdpsim.ErrCancelled):
		fmt.Fprintf(os.Stderr, "  [%3d/%3d] %s/%s  cancelled at %d insts\n",
			done, total, spec.Workload, spec.Config, res.Counters.Retired)
	default:
		fmt.Fprintf(os.Stderr, "  [%3d/%3d] %s/%s  error: %v\n",
			done, total, spec.Workload, spec.Config, err)
	}
}

func (r *reporter) onSnapshot(spec harness.RunSpec, s fdpsim.Snapshot) {
	if s.Final {
		return // the completion line comes from onRun
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(os.Stderr, "    %s/%s interval %d: retired=%d IPC=%.3f acc=%.0f%% late=%.0f%% poll=%.0f%% level=%d insert=%s\n",
		spec.Workload, spec.Config, s.Interval, s.Retired, s.IPC,
		100*s.Accuracy, 100*s.Lateness, 100*s.Pollution, s.Level, s.Insertion)
}

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		run      = flag.String("run", "", "comma-separated experiment IDs to run")
		all      = flag.Bool("all", false, "run every experiment")
		insts    = flag.Uint64("insts", 1_000_000, "instructions per simulation (after warmup)")
		warmup   = flag.Uint64("warmup", 250_000, "warmup instructions excluded from statistics")
		seed     = flag.Uint64("seed", 1, "workload seed")
		workers  = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		tint     = flag.Uint64("tinterval", 2048, "FDP sampling interval in useful evictions (paper: 8192 at 250M insts)")
		format   = flag.String("format", "text", "output format: text, csv, or chart")
		timeout  = flag.Duration("timeout", 0, "overall deadline; expiry cancels in-flight simulations (0 = none)")
		progress = flag.Bool("progress", false, "stream per-simulation completions and per-FDP-interval telemetry to stderr")
		cacheDir = flag.String("cache-dir", "", "persist results in this content-addressed store; repeat runs are served from disk")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a post-run heap profile to this file")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		cli.PrintVersion("experiments")
		return
	}

	if *list {
		cli.Listing(func(w io.Writer) {
			for _, e := range harness.Experiments() {
				fmt.Fprintf(w, "  %-12s %s\n", e.ID, e.Title)
			}
		})
	}

	var ids []string
	if *all {
		for _, e := range harness.Experiments() {
			ids = append(ids, e.ID)
		}
	} else if *run != "" {
		ids = strings.Split(*run, ",")
	} else {
		cli.Fatalf("experiments", cli.ExitUsage, "use -list, -run <ids>, or -all")
	}

	stopProf := cli.StartProfiles("experiments", *cpuProf, *memProf)
	defer stopProf() // normal return and the -timeout return; exits call it explicitly

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	p := harness.DefaultParams()
	p.Insts = *insts
	p.Warmup = *warmup
	p.Seed = *seed
	p.TInterval = *tint
	if *workers > 0 {
		p.Workers = *workers
	}
	if *progress {
		rep := &reporter{}
		p.Progress = &harness.Progress{OnRun: rep.onRun, OnSnapshot: rep.onSnapshot}
	}
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir)
		cli.FatalIf("experiments", err)
		p.Store = st
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := harness.Lookup(id)
		if !ok {
			cli.Fatalf("experiments", cli.ExitUsage, "unknown experiment %q (see -list)", id)
		}
		start := time.Now()
		tables, err := e.Run(ctx, p)
		if err != nil {
			if errors.Is(err, fdpsim.ErrCancelled) {
				fmt.Fprintf(os.Stderr, "experiments: interrupted during %s — the tables above are the completed experiments\n", id)
				if errors.Is(err, context.DeadlineExceeded) {
					return // the -timeout budget is a planned stop: exit 0
				}
				stopProf()
				os.Exit(cli.ExitInterrupted)
			}
			cli.Fatalf("experiments", cli.ExitError, "%s: %v", id, err)
		}
		switch *format {
		case "chart":
			fmt.Printf("=== %s: %s\n\n", e.ID, e.Title)
			for i := range tables {
				tables[i].RenderChart(os.Stdout, 48)
			}
		case "csv":
			for i := range tables {
				if err := tables[i].RenderCSV(os.Stdout); err != nil {
					cli.Fatalf("experiments", cli.ExitError, "%s: %v", id, err)
				}
				fmt.Println()
			}
		default:
			fmt.Printf("=== %s: %s  [%.1fs]\n\n", e.ID, e.Title, time.Since(start).Seconds())
			for i := range tables {
				tables[i].Render(os.Stdout)
			}
		}
	}
}
