// Package fdpsim is the public facade of the Feedback Directed Prefetching
// (FDP) reproduction: a cycle-level processor and memory-system simulator
// implementing the HPCA 2007 paper "Feedback Directed Prefetching:
// Improving the Performance and Bandwidth-Efficiency of Hardware
// Prefetchers" (Srinath, Mutlu, Kim, Patt), together with the stream,
// GHB C/DC and PC-stride prefetchers it evaluates and the synthetic
// workloads standing in for the SPEC CPU2000 benchmarks.
//
// Quick start:
//
//	cfg, err := fdpsim.NewConfig(fdpsim.PrefStream,
//		fdpsim.WithWorkload("seqstream"), fdpsim.WithInsts(1_000_000))
//	if err != nil { ... }
//	res, err := fdpsim.Run(cfg)
//	fmt.Printf("IPC=%.3f BPKI=%.1f accuracy=%.0f%%\n",
//		res.IPC, res.BPKI, 100*res.Accuracy)
//
// Runs are cancellable and observable: RunContext honors context
// cancellation and deadlines (returning a partial Result plus an error
// matching ErrCancelled), and WithProgress streams per-FDP-interval
// telemetry Snapshots to a caller-supplied sink while the simulation is
// in flight.
package fdpsim

import (
	"context"

	"fdpsim/internal/cache"
	"fdpsim/internal/control"
	"fdpsim/internal/core"
	"fdpsim/internal/cpu"
	"fdpsim/internal/prefetch"
	"fdpsim/internal/sim"
	"fdpsim/internal/workload"
	"fdpsim/internal/workload/spec"
)

// InsertPos names a depth in a cache set's LRU stack at which prefetched
// blocks are inserted (the paper's Section 3.3.2 policy space).
type InsertPos = cache.InsertPos

// Insertion positions, least- to most-recently-used.
const (
	PosLRU  = cache.PosLRU
	PosLRU4 = cache.PosLRU4
	PosMID  = cache.PosMID
	PosMRU  = cache.PosMRU
)

// Config is a full simulation configuration. See sim.Config.
type Config = sim.Config

// Result is a completed simulation's metrics. See sim.Result.
type Result = sim.Result

// PrefetcherKind selects the hardware prefetcher under study.
type PrefetcherKind = sim.PrefetcherKind

// Prefetcher is the interface a user-defined prefetcher implements to run
// under the simulator (and under FDP throttling) via PrefCustom.
type Prefetcher = prefetch.Prefetcher

// PrefetchEvent is the demand-access notification delivered to a
// prefetcher's Observe method.
type PrefetchEvent = prefetch.Event

// MicroOp and Source let callers supply custom instruction streams to
// RunSource.
type (
	MicroOp = cpu.MicroOp
	Source  = cpu.Source
)

// Micro-op kinds for custom sources.
const (
	OpNop   = cpu.Nop
	OpLoad  = cpu.Load
	OpStore = cpu.Store
)

// Prefetcher kinds.
const (
	PrefNone     = sim.PrefNone
	PrefStream   = sim.PrefStream
	PrefGHB      = sim.PrefGHB
	PrefStride   = sim.PrefStride
	PrefNextLine = sim.PrefNextLine
	PrefDahlgren = sim.PrefDahlgren
	PrefHybrid   = sim.PrefHybrid
	PrefCustom   = sim.PrefCustom
)

// PrefetcherKinds lists the prefetchers selectable by name (PrefCustom is
// excluded: it needs a Config.Custom instance).
func PrefetcherKinds() []PrefetcherKind { return sim.PrefetcherKinds() }

// Fingerprint returns a stable content hash of a configuration's semantic
// fields, or ok=false for configurations whose results cannot be keyed
// (custom prefetchers). Two configurations share a fingerprint exactly
// when a completed run of one is a valid result for the other; the
// harness memo and the job service's result store both key on it.
func Fingerprint(cfg Config) (fp string, ok bool) { return sim.Fingerprint(cfg) }

// Snapshot is one streaming progress record: per-FDP-interval IPC,
// accuracy/lateness/pollution, aggressiveness level and insertion
// position, plus a Final record matching the returned Result.
type Snapshot = sim.Snapshot

// ProgressFunc receives streaming Snapshots; see Config.Progress and
// WithProgress.
type ProgressFunc = sim.ProgressFunc

// DecisionEvent is one FDP interval boundary's full feedback decision:
// the raw and decayed counters, the classified metrics, the Table 2 case
// taken, the DCC transition and the resulting prefetcher configuration.
type DecisionEvent = sim.DecisionEvent

// Tracer receives a DecisionEvent at every sampling-interval boundary;
// see Config.Tracer, WithTracer and the internal/obs sinks behind the
// fdpsim CLI's -trace-out flag.
type Tracer = sim.Tracer

// CancelError carries the stop-point metadata of a cancelled run. It
// matches ErrCancelled and the context cause via errors.Is.
type CancelError = sim.CancelError

// Typed sentinels for errors.Is branching (CLI exit codes, retry logic).
var (
	// ErrUnknownWorkload reports a workload name that is not registered.
	ErrUnknownWorkload = sim.ErrUnknownWorkload
	// ErrInvalidConfig reports a configuration Validate rejected.
	ErrInvalidConfig = sim.ErrInvalidConfig
	// ErrCancelled reports a run stopped by context cancellation or
	// deadline; such errors also match context.Canceled or
	// context.DeadlineExceeded, and travel with a partial Result.
	ErrCancelled = sim.ErrCancelled
)

// Default returns the paper's Table 3 baseline with no prefetcher.
func Default() Config {
	cfg, _ := NewConfig(PrefNone)
	return cfg
}

// Conventional returns the baseline plus a conventional prefetcher pinned
// at a Table 1 aggressiveness level (1 = very conservative .. 5 = very
// aggressive).
func Conventional(kind PrefetcherKind, level int) Config {
	cfg, _ := NewConfig(kind, WithFixedAggressiveness(level))
	return cfg
}

// WithFDP returns the baseline plus a prefetcher under full FDP control
// (Dynamic Aggressiveness and Dynamic Insertion).
func WithFDP(kind PrefetcherKind) Config {
	cfg, _ := NewConfig(kind)
	return cfg
}

// MultiConfig describes a chip-multiprocessor run: several cores with
// private hierarchies sharing one memory bus. See sim.MultiConfig.
type MultiConfig = sim.MultiConfig

// MultiResult aggregates a multi-core run. See sim.MultiResult.
type MultiResult = sim.MultiResult

// CoreResult is one core's outcome within a multi-core run.
type CoreResult = sim.CoreResult

// The run matrix below has one canonical entry point per mode — the
// *Context form — and every context-free variant is exactly
// `XContext(context.Background(), ...)`: same semantics, no cancellation.
// Modes: plain (one core, named workload), Multi (cores sharing a bus),
// SMT (threads sharing a hierarchy), Source (caller-provided micro-op
// stream), Spec (declarative WorkloadSpec; context-taking only).

// Run is RunContext with a background context.
func Run(cfg Config) (Result, error) { return RunContext(context.Background(), cfg) }

// RunContext executes one simulation under a context: cancellation and
// deadlines are observed at every FDP sampling-interval boundary, the
// core drains to a retire boundary, and the partial Result is returned
// together with a *CancelError wrapping ErrCancelled and the context
// cause.
func RunContext(ctx context.Context, cfg Config) (Result, error) { return sim.RunContext(ctx, cfg) }

// RunMulti is RunMultiContext with a background context.
func RunMulti(mc MultiConfig) (MultiResult, error) { return RunMultiContext(context.Background(), mc) }

// RunMultiContext executes a multi-core simulation on a shared memory
// bus under a context; Snapshot.Core identifies each streaming core.
func RunMultiContext(ctx context.Context, mc MultiConfig) (MultiResult, error) {
	return sim.RunMultiContext(ctx, mc)
}

// SMTConfig describes hardware threads sharing one cache hierarchy,
// prefetcher and FDP engine (the paper's Section 4.3 shared-L2 setting).
type SMTConfig = sim.SMTConfig

// SMTResult aggregates an SMT run.
type SMTResult = sim.SMTResult

// RunSMT is RunSMTContext with a background context.
func RunSMT(cfg SMTConfig) (SMTResult, error) { return RunSMTContext(context.Background(), cfg) }

// RunSMTContext executes threads over one shared hierarchy under a
// context.
func RunSMTContext(ctx context.Context, cfg SMTConfig) (SMTResult, error) {
	return sim.RunSMTContext(ctx, cfg)
}

// RunSource is RunSourceContext with a background context.
func RunSource(cfg Config, src cpu.Source) (Result, error) {
	return RunSourceContext(context.Background(), cfg, src)
}

// RunSourceContext executes one simulation over a caller-provided
// micro-op source under a context, enabling custom workloads and trace
// replay, with RunContext's cancellation, deadline and
// progress-streaming semantics.
func RunSourceContext(ctx context.Context, cfg Config, src cpu.Source) (Result, error) {
	return sim.RunSourceContext(ctx, cfg, src)
}

// WorkloadSpec is a declarative, seeded, fully reproducible workload: a
// sequence of phases, each a weighted mixture of heterogeneous clients
// (stride, pointer-chase, random and hot-set patterns with bursts and
// skewed rates) composed onto one or more multicore/SMT lanes. Construct
// it in Go or load it from JSON/YAML with LoadSpec/ParseSpec; the same
// (spec, seed) always generates the identical micro-op stream. See
// docs/WORKLOADS.md for the schema reference.
type WorkloadSpec = spec.Spec

// Component types for constructing WorkloadSpecs in Go.
type (
	SpecPhase   = spec.Phase
	SpecClient  = spec.Client
	SpecPattern = spec.Pattern
	SpecStride  = spec.Stride
)

// Pattern kinds for SpecPattern.Kind.
const (
	SpecKindStride = spec.KindStride
	SpecKindChase  = spec.KindChase
	SpecKindRandom = spec.KindRandom
	SpecKindHotset = spec.KindHotset
)

// ErrInvalidSpec is the sentinel wrapped by every WorkloadSpec validation
// failure; callers branch with errors.Is (CLIs map it to exit code 2).
var ErrInvalidSpec = spec.ErrInvalid

// LoadSpec reads, parses and validates a WorkloadSpec file (JSON or the
// YAML subset documented in docs/WORKLOADS.md).
func LoadSpec(path string) (*WorkloadSpec, error) { return spec.Load(path) }

// ParseSpec parses and validates a WorkloadSpec from JSON or YAML bytes.
func ParseSpec(data []byte) (*WorkloadSpec, error) { return spec.Parse(data) }

// RunSpec executes a single-lane WorkloadSpec on one core under a
// context, with RunContext's cancellation, deadline and
// progress-streaming semantics; cfg.Workload is overwritten with the
// spec's name. Multi-lane specs run through RunSpecMulti or RunSpecSMT.
func RunSpec(ctx context.Context, cfg Config, sp *WorkloadSpec) (Result, error) {
	return sim.RunSpecContext(ctx, cfg, sp)
}

// RunSpecMulti runs each lane of a WorkloadSpec on its own core — all
// cores configured from tmpl — contending for one shared memory bus.
func RunSpecMulti(ctx context.Context, tmpl Config, sp *WorkloadSpec) (MultiResult, error) {
	return sim.RunSpecMultiContext(ctx, tmpl, sp)
}

// RunSpecSMT runs each lane of a WorkloadSpec as one hardware thread
// over a shared hierarchy configured from base.
func RunSpecSMT(ctx context.Context, base Config, sp *WorkloadSpec) (SMTResult, error) {
	return sim.RunSpecSMTContext(ctx, base, sp)
}

// SpecFingerprint is Fingerprint for spec-driven runs: a stable content
// hash over the configuration's semantic fields plus the spec's
// canonical form. Specs that differ only in spelled-out defaults hash
// identically, and a spec fingerprint never aliases a named-workload
// one.
func SpecFingerprint(cfg Config, sp *WorkloadSpec) (fp string, ok bool) {
	return sim.FingerprintSpec(cfg, sp)
}

// RegisterWorkloadSpec adds a WorkloadSpec to the workload registry
// (tagged "spec"), making it runnable by name anywhere a built-in
// workload is: cfg.Workload = sp.Name. The registered generator is the
// spec's lane 0; multi-lane specs attach their remaining lanes through
// RunSpecMulti/RunSpecSMT.
func RegisterWorkloadSpec(sp *WorkloadSpec) error { return workload.RegisterSpec(sp) }

// WorkloadInfo describes one registered workload: the name Config.Workload
// keys on, the registry tags, and a one-line description.
type WorkloadInfo = workload.Info

// Workload registry tags for WorkloadList filtering.
const (
	// WorkloadTagBuiltin marks the hand-coded kernel generators.
	WorkloadTagBuiltin = workload.TagBuiltin
	// WorkloadTagMemIntensive marks the paper's 17-benchmark set.
	WorkloadTagMemIntensive = workload.TagMemIntensive
	// WorkloadTagLowPotential marks the 9 low-potential benchmarks.
	WorkloadTagLowPotential = workload.TagLowPotential
	// WorkloadTagSpec marks workloads registered from a WorkloadSpec.
	WorkloadTagSpec = workload.TagSpec
)

// WorkloadList returns the workloads carrying every one of the given
// tags — all workloads when called with none — sorted by name. This is
// the registry's one listing entry point; the deprecated name-list
// functions below are thin views over it.
func WorkloadList(tags ...string) []WorkloadInfo { return workload.List(tags...) }

// Workloads returns all registered workload names.
//
// Deprecated: use WorkloadList, which also carries tags and
// descriptions. Retained so existing callers keep compiling.
func Workloads() []string { return workload.Names() }

// MemoryIntensiveWorkloads returns the paper's 17-benchmark evaluation set.
//
// Deprecated: use WorkloadList(WorkloadTagMemIntensive).
func MemoryIntensiveWorkloads() []string { return workload.MemoryIntensive() }

// LowPotentialWorkloads returns the remaining 9 benchmarks (Figure 14).
//
// Deprecated: use WorkloadList(WorkloadTagLowPotential).
func LowPotentialWorkloads() []string { return workload.LowPotential() }

// WorkloadAbout returns the one-line description of a workload.
//
// Deprecated: use WorkloadList and read Info.About.
func WorkloadAbout(name string) string { return workload.About(name) }

// Controller is a pluggable feedback decision policy: the seam the FDP
// engine consults at every sampling-interval boundary. The registry
// behind ControllerList holds the paper's Table 2 policy ("fdp", the
// default), static baselines, and learned competitors; select one with
// Config.Controller or WithController. See docs/CONTROLLERS.md.
type Controller = control.Controller

// ControllerSignals is the per-interval observation a Controller
// decides on; ControllerDecision its output.
type (
	ControllerSignals  = control.Signals
	ControllerDecision = control.Decision
)

// ControllerInfo describes one registered controller for listings.
type ControllerInfo = control.Info

// ErrInvalidController is the sentinel wrapped by controller-registry
// and tree-model-file failures; callers branch with errors.Is (CLIs map
// it to exit code 2).
var ErrInvalidController = control.ErrInvalid

// ControllerList returns every registered feedback controller in
// registry order, with tags ("paper", "static", "learned") and one-line
// descriptions.
func ControllerList() []ControllerInfo { return control.List() }

// LoadTreeModel parses and validates a decision-tree model file (the
// docs/CONTROLLERS.md JSON schema) and returns the "tree" controller
// over it; malformed models report errors matching ErrInvalidController.
func LoadTreeModel(model []byte, th Thresholds) (Controller, error) {
	return control.LoadTree(model, th)
}

// Thresholds are the FDP classification thresholds (Section 4.3).
type Thresholds = core.Thresholds

// DefaultThresholds returns the paper's classification thresholds (with
// this simulator's recalibrated pollution cutoffs; see DESIGN.md).
func DefaultThresholds() Thresholds { return core.DefaultThresholds() }
