// Package fdpsim is the public facade of the Feedback Directed Prefetching
// (FDP) reproduction: a cycle-level processor and memory-system simulator
// implementing the HPCA 2007 paper "Feedback Directed Prefetching:
// Improving the Performance and Bandwidth-Efficiency of Hardware
// Prefetchers" (Srinath, Mutlu, Kim, Patt), together with the stream,
// GHB C/DC and PC-stride prefetchers it evaluates and the synthetic
// workloads standing in for the SPEC CPU2000 benchmarks.
//
// Quick start:
//
//	cfg, err := fdpsim.NewConfig(fdpsim.PrefStream,
//		fdpsim.WithWorkload("seqstream"), fdpsim.WithInsts(1_000_000))
//	if err != nil { ... }
//	res, err := fdpsim.Run(cfg)
//	fmt.Printf("IPC=%.3f BPKI=%.1f accuracy=%.0f%%\n",
//		res.IPC, res.BPKI, 100*res.Accuracy)
//
// Runs are cancellable and observable: RunContext honors context
// cancellation and deadlines (returning a partial Result plus an error
// matching ErrCancelled), and WithProgress streams per-FDP-interval
// telemetry Snapshots to a caller-supplied sink while the simulation is
// in flight.
package fdpsim

import (
	"context"

	"fdpsim/internal/cache"
	"fdpsim/internal/cpu"
	"fdpsim/internal/prefetch"
	"fdpsim/internal/sim"
	"fdpsim/internal/workload"
)

// InsertPos names a depth in a cache set's LRU stack at which prefetched
// blocks are inserted (the paper's Section 3.3.2 policy space).
type InsertPos = cache.InsertPos

// Insertion positions, least- to most-recently-used.
const (
	PosLRU  = cache.PosLRU
	PosLRU4 = cache.PosLRU4
	PosMID  = cache.PosMID
	PosMRU  = cache.PosMRU
)

// Config is a full simulation configuration. See sim.Config.
type Config = sim.Config

// Result is a completed simulation's metrics. See sim.Result.
type Result = sim.Result

// PrefetcherKind selects the hardware prefetcher under study.
type PrefetcherKind = sim.PrefetcherKind

// Prefetcher is the interface a user-defined prefetcher implements to run
// under the simulator (and under FDP throttling) via PrefCustom.
type Prefetcher = prefetch.Prefetcher

// PrefetchEvent is the demand-access notification delivered to a
// prefetcher's Observe method.
type PrefetchEvent = prefetch.Event

// MicroOp and Source let callers supply custom instruction streams to
// RunSource.
type (
	MicroOp = cpu.MicroOp
	Source  = cpu.Source
)

// Micro-op kinds for custom sources.
const (
	OpNop   = cpu.Nop
	OpLoad  = cpu.Load
	OpStore = cpu.Store
)

// Prefetcher kinds.
const (
	PrefNone     = sim.PrefNone
	PrefStream   = sim.PrefStream
	PrefGHB      = sim.PrefGHB
	PrefStride   = sim.PrefStride
	PrefNextLine = sim.PrefNextLine
	PrefDahlgren = sim.PrefDahlgren
	PrefHybrid   = sim.PrefHybrid
	PrefCustom   = sim.PrefCustom
)

// PrefetcherKinds lists the prefetchers selectable by name (PrefCustom is
// excluded: it needs a Config.Custom instance).
func PrefetcherKinds() []PrefetcherKind { return sim.PrefetcherKinds() }

// Fingerprint returns a stable content hash of a configuration's semantic
// fields, or ok=false for configurations whose results cannot be keyed
// (custom prefetchers). Two configurations share a fingerprint exactly
// when a completed run of one is a valid result for the other; the
// harness memo and the job service's result store both key on it.
func Fingerprint(cfg Config) (fp string, ok bool) { return sim.Fingerprint(cfg) }

// Snapshot is one streaming progress record: per-FDP-interval IPC,
// accuracy/lateness/pollution, aggressiveness level and insertion
// position, plus a Final record matching the returned Result.
type Snapshot = sim.Snapshot

// ProgressFunc receives streaming Snapshots; see Config.Progress and
// WithProgress.
type ProgressFunc = sim.ProgressFunc

// DecisionEvent is one FDP interval boundary's full feedback decision:
// the raw and decayed counters, the classified metrics, the Table 2 case
// taken, the DCC transition and the resulting prefetcher configuration.
type DecisionEvent = sim.DecisionEvent

// Tracer receives a DecisionEvent at every sampling-interval boundary;
// see Config.Tracer, WithTracer and the internal/obs sinks behind the
// fdpsim CLI's -trace-out flag.
type Tracer = sim.Tracer

// CancelError carries the stop-point metadata of a cancelled run. It
// matches ErrCancelled and the context cause via errors.Is.
type CancelError = sim.CancelError

// Typed sentinels for errors.Is branching (CLI exit codes, retry logic).
var (
	// ErrUnknownWorkload reports a workload name that is not registered.
	ErrUnknownWorkload = sim.ErrUnknownWorkload
	// ErrInvalidConfig reports a configuration Validate rejected.
	ErrInvalidConfig = sim.ErrInvalidConfig
	// ErrCancelled reports a run stopped by context cancellation or
	// deadline; such errors also match context.Canceled or
	// context.DeadlineExceeded, and travel with a partial Result.
	ErrCancelled = sim.ErrCancelled
)

// Default returns the paper's Table 3 baseline with no prefetcher.
func Default() Config {
	cfg, _ := NewConfig(PrefNone)
	return cfg
}

// Conventional returns the baseline plus a conventional prefetcher pinned
// at a Table 1 aggressiveness level (1 = very conservative .. 5 = very
// aggressive).
func Conventional(kind PrefetcherKind, level int) Config {
	cfg, _ := NewConfig(kind, WithFixedAggressiveness(level))
	return cfg
}

// WithFDP returns the baseline plus a prefetcher under full FDP control
// (Dynamic Aggressiveness and Dynamic Insertion).
func WithFDP(kind PrefetcherKind) Config {
	cfg, _ := NewConfig(kind)
	return cfg
}

// MultiConfig describes a chip-multiprocessor run: several cores with
// private hierarchies sharing one memory bus. See sim.MultiConfig.
type MultiConfig = sim.MultiConfig

// MultiResult aggregates a multi-core run. See sim.MultiResult.
type MultiResult = sim.MultiResult

// CoreResult is one core's outcome within a multi-core run.
type CoreResult = sim.CoreResult

// Run executes one simulation to completion.
func Run(cfg Config) (Result, error) { return sim.Run(cfg) }

// RunContext executes one simulation under a context: cancellation and
// deadlines are observed at every FDP sampling-interval boundary, the
// core drains to a retire boundary, and the partial Result is returned
// together with a *CancelError wrapping ErrCancelled and the context
// cause.
func RunContext(ctx context.Context, cfg Config) (Result, error) { return sim.RunContext(ctx, cfg) }

// RunMulti executes a multi-core simulation on a shared memory bus.
func RunMulti(mc MultiConfig) (MultiResult, error) { return sim.RunMulti(mc) }

// RunMultiContext is RunMulti under a context; Snapshot.Core identifies
// each streaming core.
func RunMultiContext(ctx context.Context, mc MultiConfig) (MultiResult, error) {
	return sim.RunMultiContext(ctx, mc)
}

// SMTConfig describes hardware threads sharing one cache hierarchy,
// prefetcher and FDP engine (the paper's Section 4.3 shared-L2 setting).
type SMTConfig = sim.SMTConfig

// SMTResult aggregates an SMT run.
type SMTResult = sim.SMTResult

// RunSMT executes threads over one shared hierarchy.
func RunSMT(cfg SMTConfig) (SMTResult, error) { return sim.RunSMT(cfg) }

// RunSMTContext is RunSMT under a context.
func RunSMTContext(ctx context.Context, cfg SMTConfig) (SMTResult, error) {
	return sim.RunSMTContext(ctx, cfg)
}

// RunSource executes one simulation over a caller-provided micro-op
// source, enabling custom workloads and trace replay.
func RunSource(cfg Config, src cpu.Source) (Result, error) { return sim.RunSource(cfg, src) }

// RunSourceContext is RunSource under a context, with RunContext's
// cancellation, deadline and progress-streaming semantics.
func RunSourceContext(ctx context.Context, cfg Config, src cpu.Source) (Result, error) {
	return sim.RunSourceContext(ctx, cfg, src)
}

// Workloads returns all registered workload names.
func Workloads() []string { return workload.Names() }

// MemoryIntensiveWorkloads returns the paper's 17-benchmark evaluation set.
func MemoryIntensiveWorkloads() []string { return workload.MemoryIntensive() }

// LowPotentialWorkloads returns the remaining 9 benchmarks (Figure 14).
func LowPotentialWorkloads() []string { return workload.LowPotential() }

// WorkloadAbout returns the one-line description of a workload.
func WorkloadAbout(name string) string { return workload.About(name) }
