package fdpsim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// The event-engine refactor (see DESIGN.md "The event engine") must be
// behaviour-preserving: same cycle counts, same miss counts, same FDP
// decisions, bit-identical Results. This test pins every workload ×
// prefetcher pair (plus static-level, prefetch-cache, multi-core and SMT
// variants) to fingerprints captured from the pre-refactor seed engine.
// A mismatch means the engine changed the model, not just its speed.
//
// Regenerate (only for deliberate model changes) with:
//
//	go test -run TestEngineGolden -update
var updateEngineGolden = flag.Bool("update", false, "rewrite testdata/engine_golden.json from the current engine")

const engineGoldenPath = "testdata/engine_golden.json"

// goldenBase is the shared small-scale configuration: caches sized so the
// working sets spill, TInterval shrunk so dozens of FDP intervals close
// within the 20k-instruction budget (both aggressiveness and insertion
// decisions get exercised), warmup on so the counter-reset path is pinned.
func goldenBase(kind PrefetcherKind, workload string) Config {
	cfg := WithFDP(kind)
	cfg.Workload = workload
	cfg.MaxInsts = 20_000
	cfg.WarmupInsts = 5_000
	cfg.L1Blocks = 256
	cfg.L1Ways = 4
	cfg.L1IBlocks = 256
	cfg.L1IWays = 4
	cfg.L2Blocks = 1024
	cfg.L2Ways = 16
	cfg.MSHRs = 32
	cfg.PrefQueueCap = 32
	cfg.FDP.TInterval = 64
	return cfg
}

// fingerprintJSON hashes the canonical JSON of v. Wall-clock fields must
// be zeroed by the caller; everything else in a Result is deterministic.
func fingerprintJSON(t *testing.T, v any) string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:16])
}

// goldenCase is one pinned configuration; run executes it and returns the
// fingerprint of its (Elapsed-zeroed) result.
type goldenCase struct {
	name string
	run  func(t *testing.T) string
}

func singleCase(name string, cfg Config) goldenCase {
	return goldenCase{name: name, run: func(t *testing.T) string {
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		res.Elapsed = 0
		return fingerprintJSON(t, res)
	}}
}

func engineGoldenCases() []goldenCase {
	kinds := []PrefetcherKind{PrefNone, PrefStream, PrefGHB, PrefStride, PrefNextLine, PrefDahlgren, PrefHybrid}
	var cases []goldenCase
	for _, w := range Workloads() {
		for _, k := range kinds {
			// Full FDP control: dynamic aggressiveness + dynamic insertion.
			cases = append(cases, singleCase(fmt.Sprintf("%s/%s/fdp", w, k), goldenBase(k, w)))
			if k == PrefNone {
				continue
			}
			// Conventional prefetching at a fixed Table 1 level: exercises
			// the static path (no DCC updates, MRU insertion).
			cfg := goldenBase(k, w)
			cfg.StaticLevel = 4
			cfg.FDP.DynamicAggressiveness = false
			cfg.FDP.DynamicInsertion = false
			cases = append(cases, singleCase(fmt.Sprintf("%s/%s/static4", w, k), cfg))
		}
		// Prefetch-cache variant (Section 5.7): fills bypass the L2 and
		// demand hits migrate, a separate fill/lookup path worth pinning.
		pc := goldenBase(PrefStream, w)
		pc.PrefCacheBlocks = 64
		pc.PrefCacheWays = 0
		cases = append(cases, singleCase(w+"/stream/pcache", pc))
	}

	// Multi-core: private hierarchies, shared bus, mixed workloads.
	cases = append(cases, goldenCase{name: "multi/seqstream+chaserand/stream", run: func(t *testing.T) string {
		mc := MultiConfig{Cores: []Config{
			goldenBase(PrefStream, "seqstream"),
			goldenBase(PrefStream, "chaserand"),
		}}
		res, err := RunMulti(mc)
		if err != nil {
			t.Fatalf("RunMulti: %v", err)
		}
		for i := range res.Cores {
			res.Cores[i].Elapsed = 0
		}
		return fingerprintJSON(t, res)
	}})
	cases = append(cases, goldenCase{name: "multi/multistream+scanmod/ghb", run: func(t *testing.T) string {
		mc := MultiConfig{Cores: []Config{
			goldenBase(PrefGHB, "multistream"),
			goldenBase(PrefGHB, "scanmod"),
		}}
		res, err := RunMulti(mc)
		if err != nil {
			t.Fatalf("RunMulti: %v", err)
		}
		for i := range res.Cores {
			res.Cores[i].Elapsed = 0
		}
		return fingerprintJSON(t, res)
	}})

	// SMT: two hardware threads sharing one hierarchy, prefetcher and FDP
	// engine — the path where completion events must carry a thread id.
	smtBase := func(kind PrefetcherKind) Config {
		cfg := goldenBase(kind, "")
		cfg.WarmupInsts = 0 // unsupported in SMT mode
		return cfg
	}
	cases = append(cases, goldenCase{name: "smt/multistream+mixedphase/stream", run: func(t *testing.T) string {
		sc := SMTConfig{
			Base:      smtBase(PrefStream),
			Workloads: []string{"multistream", "mixedphase"},
		}
		res, err := RunSMT(sc)
		if err != nil {
			t.Fatalf("RunSMT: %v", err)
		}
		return fingerprintJSON(t, res)
	}})
	cases = append(cases, goldenCase{name: "smt/seqstream+chaseseq/hybrid", run: func(t *testing.T) string {
		sc := SMTConfig{
			Base:      smtBase(PrefHybrid),
			Workloads: []string{"seqstream", "chaseseq"},
		}
		res, err := RunSMT(sc)
		if err != nil {
			t.Fatalf("RunSMT: %v", err)
		}
		return fingerprintJSON(t, res)
	}})
	return cases
}

// TestEngineGolden cross-checks the engine against fingerprints captured
// from the seed (pre-refactor) engine: every workload × prefetcher pair
// under FDP and at a static level, plus prefetch-cache, multi-core and
// SMT variants. Any drift in any Result field fails the pair's subtest.
func TestEngineGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~400 small simulations; skipped with -short")
	}
	cases := engineGoldenCases()

	if *updateEngineGolden {
		got := make(map[string]string, len(cases))
		for _, c := range cases {
			got[c.name] = c.run(t)
		}
		raw, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatalf("marshal golden: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(engineGoldenPath), 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(engineGoldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		t.Logf("wrote %d fingerprints to %s", len(got), engineGoldenPath)
		return
	}

	raw, err := os.ReadFile(engineGoldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if len(want) != len(cases) {
		names := make(map[string]bool, len(cases))
		for _, c := range cases {
			names[c.name] = true
		}
		var stale []string
		for name := range want {
			if !names[name] {
				stale = append(stale, name)
			}
		}
		sort.Strings(stale)
		t.Errorf("golden has %d entries, test has %d cases (stale: %v); regenerate with -update",
			len(want), len(cases), stale)
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			wantFP, ok := want[c.name]
			if !ok {
				t.Fatalf("no golden fingerprint for %q; regenerate with -update", c.name)
			}
			if got := c.run(t); got != wantFP {
				t.Errorf("Result fingerprint drifted from seed engine: got %s want %s", got, wantFP)
			}
		})
	}
}
