# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test test-short test-race check bench experiments fuzz clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

test-short:
	go test -short ./...

test-race:
	go test -race ./...

# What CI runs: a full build, vet, and the race-enabled test suite (the
# progress sinks cross goroutine boundaries, so -race is load-bearing).
check: build vet test-race

# One benchmark per paper table/figure (see bench_test.go).
bench:
	go test -bench=. -benchmem

# Regenerate every table and figure at the documented scale.
experiments:
	go run ./cmd/experiments -all -insts 1000000 -warmup 250000

fuzz:
	go test ./internal/trace -run xxx -fuzz FuzzReader -fuzztime 30s

clean:
	go clean ./...
