# Convenience targets; everything is plain `go` underneath.

.PHONY: all build build-cmds vet lint test test-short test-race fleet-e2e check bench bench-core bench-trace bench-json bench-diff controller-equivalence trace-smoke series-smoke experiments serve fuzz fuzz-smoke clean

all: build vet test

build:
	go build ./...

# Build every binary explicitly (what CI ships); plain `go build ./...`
# compiles main packages but discards them.
build-cmds:
	go build -o bin/ ./cmd/...

vet:
	go vet ./...

# Static analysis: go vet always; staticcheck when installed (CI installs
# it, local machines may not — the gate degrades to vet, not to a failure).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; ran go vet only (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	go test ./...

test-short:
	go test -short ./...

test-race:
	go test -race ./...

# The sweep-fabric acceptance smoke: the two-worker fleet e2e (shared
# store, claim/lease/steal coordination, exactly-once execution) and the
# 18-cell sweep e2e, under the race detector. test-race covers both too;
# -count=1 here defeats the test cache so `make check` always exercises
# the cross-process claim protocol for real.
fleet-e2e:
	go test -race -count=1 -run 'TestFleetTwoWorkers|TestSweepEndToEnd' ./internal/service

# What CI runs: a full build, vet, the race-enabled test suite (the
# progress sinks cross goroutine boundaries, so -race is load-bearing),
# the uncached fleet/sweep e2e smoke, and the interval-timeseries smoke.
check: build vet test-race fleet-e2e series-smoke

# One benchmark per paper table/figure (see bench_test.go).
bench:
	go test -bench=. -benchmem

# The event-engine contract: the warmed cycle loop allocates nothing.
# Runs the cycle-loop benchmarks with -benchmem and fails if either
# BenchmarkIntervalBoundary or BenchmarkPerInstruction reports a nonzero
# allocs/op. To compare throughput across commits, save this target's
# output on both and feed them to benchstat (not vendored; the target
# only points at it so nothing here needs network access):
#   make bench-core > old.txt   # on the base commit
#   make bench-core > new.txt   # on your branch
#   benchstat old.txt new.txt
bench-core:
	@out=$$(go test ./internal/sim -run xxx -bench 'BenchmarkIntervalBoundary|BenchmarkPerInstruction' -benchmem); \
	status=$$?; echo "$$out"; \
	if [ $$status -ne 0 ]; then exit $$status; fi; \
	if echo "$$out" | grep -E 'Benchmark(IntervalBoundary|PerInstruction).* [1-9][0-9]* allocs/op' >/dev/null; then \
		echo "bench-core: hot-path benchmark allocated (want 0 allocs/op)"; exit 1; \
	fi
	@command -v benchstat >/dev/null 2>&1 || \
		echo "benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest) — single run only, no comparison"

# Machine-readable benchmark snapshot: runs the core hot-path
# benchmarks and archives them as BENCH_9.json at the repo root (CI
# uploads the same file as a build artifact). The JSON carries goos/
# goarch/cpu context, so snapshots from different machines are
# distinguishable; compare like with like.
bench-json:
	go test ./internal/sim -run xxx -bench 'BenchmarkIntervalBoundary|BenchmarkPerInstruction' -benchmem \
		| go run ./cmd/benchjson -out BENCH_9.json

# Compare the freshly archived snapshot against the previous PR's
# (BENCH_8.json, checked in), matched by package+benchmark name. Any
# allocs/op growth fails outright — that gate is machine-independent and
# is the real contract. Shared runners make wall time noisy even on an
# identical CPU model (2-3x swings between runs an hour apart are in the
# archives), so the ns/op threshold here is deliberately loose; tighten
# it locally (-threshold 0.1) when comparing runs on a quiet machine.
bench-diff: bench-json
	go run ./cmd/benchjson -diff -threshold 3.0 BENCH_8.json BENCH_9.json

# The controller-refactor equivalence gate: the engine goldens, plus the
# same single-core FDP suite rerun with the Table 2 policy selected
# explicitly through the internal/control registry. -count=1 defeats the
# test cache so the gate always simulates for real.
controller-equivalence:
	go test . -run 'TestEngineGolden|TestControllerEquivalence' -count=1

# The tracer hot-path guard: the interval boundary must stay
# allocation-free with tracing disabled (and with a no-op tracer).
# -benchtime=1x is a smoke run — CI uses it to catch compile/wiring rot;
# use the default benchtime locally for real numbers.
bench-trace:
	go test ./internal/sim -run xxx -bench BenchmarkIntervalBoundary -benchmem -benchtime=1x

# End-to-end fabric-tracing smoke: boot fdpserved with a store, run a
# tiny sweep, validate the Chrome trace export, the provenance ledgers
# and the /metrics span families (scripts/trace-smoke.sh).
trace-smoke: build-cmds
	sh scripts/trace-smoke.sh

# End-to-end interval-timeseries smoke: boot fdpserved with a store, run
# one series-recorded job, fetch the series (JSON + CSV + downsampled),
# check the sidecar landed on disk, self-diff the fingerprint expecting
# zero residual, and check the /metrics families
# (scripts/series-smoke.sh).
series-smoke: build-cmds
	sh scripts/series-smoke.sh

# Regenerate every table and figure at the documented scale. Results
# persist in .fdpcache, so a re-run only simulates what changed.
experiments:
	go run ./cmd/experiments -all -insts 1000000 -warmup 250000 -cache-dir .fdpcache

# Run the simulation job service on :8080 with an on-disk result cache.
serve:
	go run ./cmd/fdpserved -addr :8080 -cache-dir .fdpcache

# go test runs one fuzz target per invocation, so the decoders fuzz back
# to back (patterns anchored: "FuzzReader" alone would match both trace
# targets and go test refuses an ambiguous -fuzz). FuzzTreeModel hammers
# the controller model loader: malformed JSON must return ErrInvalid,
# never panic, and a model that loads must never decide out of range.
fuzz:
	go test ./internal/trace -run xxx -fuzz 'FuzzReader$$' -fuzztime 30s
	go test ./internal/trace -run xxx -fuzz 'FuzzReaderV2$$' -fuzztime 30s
	go test ./internal/control -run xxx -fuzz 'FuzzTreeModel$$' -fuzztime 30s
	go test ./internal/series -run xxx -fuzz 'FuzzDecode$$' -fuzztime 30s

# The 10-second-per-target slice CI runs on every PR, so decoder and
# model-loader fuzz regressions surface before merge, not in nightlies.
fuzz-smoke:
	go test ./internal/trace -run xxx -fuzz 'FuzzReader$$' -fuzztime 10s
	go test ./internal/trace -run xxx -fuzz 'FuzzReaderV2$$' -fuzztime 10s
	go test ./internal/control -run xxx -fuzz 'FuzzTreeModel$$' -fuzztime 10s
	go test ./internal/series -run xxx -fuzz 'FuzzDecode$$' -fuzztime 10s

clean:
	go clean ./...
	rm -rf bin
