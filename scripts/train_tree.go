// Command train_tree fits a decision-tree controller model from one or
// more fdpsim -decision-log CSV feature dumps and writes it as the JSON
// schema internal/control.LoadTree consumes (docs/CONTROLLERS.md).
//
// Usage:
//
//	fdpsim -workload chaserand -fdp -insts 2000000 -decision-log chaserand.csv
//	fdpsim -workload scanmod  -fdp -insts 2000000 -decision-log scanmod.csv
//	go run ./scripts -out tree.json chaserand.csv scanmod.csv
//	fdpsim -workload chaserand -fdp -controller tree -controller-model tree.json
//
// By default the tree imitates the logged controller's decisions (the
// delta and insertion columns). -features selects which feature columns
// the tree may split on; -max-depth and -min-leaf bound its size. The
// emitted model always passes LoadTree validation. Exit codes: 0
// success, 2 bad usage or malformed input, 1 I/O errors.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"fdpsim/internal/cli"
	"fdpsim/internal/control"
)

const tool = "train_tree"

func main() {
	var (
		out      = flag.String("out", "tree.json", "output model file")
		features = flag.String("features", "accuracy,lateness,pollution,bus_util,level", "comma-separated feature columns the tree may split on")
		maxDepth = flag.Int("max-depth", 6, "maximum tree depth")
		minLeaf  = flag.Int("min-leaf", 8, "minimum samples per leaf")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		cli.Fatalf(tool, cli.ExitUsage, "no input CSVs (run fdpsim -decision-log first); usage: train_tree [-out tree.json] a.csv [b.csv ...]")
	}

	feats := strings.Split(*features, ",")
	for i := range feats {
		feats[i] = strings.TrimSpace(feats[i])
	}

	var samples []control.Sample
	for _, path := range flag.Args() {
		s, err := readSamples(path, feats)
		cli.FatalIf(tool, err)
		samples = append(samples, s...)
	}
	fmt.Fprintf(os.Stderr, "%s: %d samples from %d file(s)\n", tool, len(samples), flag.NArg())

	model, err := control.FitTree(samples, feats, control.FitOptions{MaxDepth: *maxDepth, MinLeaf: *minLeaf})
	cli.FatalIf(tool, err)

	blob, err := json.MarshalIndent(model, "", "  ")
	cli.FatalIf(tool, err)
	blob = append(blob, '\n')
	cli.FatalIf(tool, os.WriteFile(*out, blob, 0o644))

	// Self-check: the file we just wrote must load.
	if _, err := control.LoadTree(blob, control.Params{}.Thresholds); err != nil {
		cli.Fatalf(tool, cli.ExitError, "emitted model fails validation: %v", err)
	}
	fmt.Fprintf(os.Stderr, "%s: wrote %s (%d nodes, depth<=%d)\n", tool, *out, len(model.Nodes), *maxDepth)
}

// readSamples parses one -decision-log CSV into training samples,
// selecting the requested feature columns by header name and labeling
// each row with its delta and insertion columns.
func readSamples(path string, feats []string) ([]control.Sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("%s: reading header: %w", path, err)
	}
	col := make(map[string]int, len(header))
	for i, name := range header {
		col[name] = i
	}
	featIdx := make([]int, len(feats))
	for i, name := range feats {
		idx, ok := col[name]
		if !ok {
			return nil, fmt.Errorf("%s: no column %q (have %v)", path, name, header)
		}
		featIdx[i] = idx
	}
	deltaIdx, ok := col["delta"]
	if !ok {
		return nil, fmt.Errorf("%s: no delta column", path)
	}
	insIdx, ok := col["insertion"]
	if !ok {
		return nil, fmt.Errorf("%s: no insertion column", path)
	}

	var samples []control.Sample
	for line := 2; ; line++ {
		row, err := r.Read()
		if err == io.EOF {
			return samples, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		s := control.Sample{Features: make([]float64, len(feats))}
		for i, idx := range featIdx {
			v, err := strconv.ParseFloat(row[idx], 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: column %q: %w", path, line, feats[i], err)
			}
			s.Features[i] = v
		}
		d, err := strconv.Atoi(row[deltaIdx])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: delta: %w", path, line, err)
		}
		s.Delta = d
		s.Insertion = row[insIdx]
		samples = append(samples, s)
	}
}
