#!/bin/sh
# trace-smoke.sh — end-to-end fabric-tracing smoke test.
#
# Boots fdpserved with an on-disk store, submits a tiny sweep, waits for
# it to finish, then validates the observability surface the daemon is
# supposed to expose:
#   1. the whole-sweep Chrome trace has complete ("X") events,
#   2. the submit response echoes the X-Fdp-Trace header,
#   3. the provenance ledger beside the store has entries for the sweep,
#   4. /metrics carries the build-info and span families.
#
# No dependencies beyond a POSIX shell and curl; JSON checks fall back
# from python3 to grep so the script runs in minimal CI images.
set -eu

die() { echo "trace-smoke: FAIL: $*" >&2; exit 1; }

ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"

WORK=$(mktemp -d)
PORT=${TRACE_SMOKE_PORT:-18095}
ADDR="127.0.0.1:$PORT"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    [ -n "$PID" ] && wait "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

[ -x bin/fdpserved ] || go build -o bin/ ./cmd/fdpserved

bin/fdpserved -addr "$ADDR" -cache-dir "$WORK/store" -fleet-worker smoke-a \
    -log-level warn >"$WORK/served.log" 2>&1 &
PID=$!

# Wait for the daemon to answer.
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && { cat "$WORK/served.log" >&2; die "daemon did not come up on $ADDR"; }
    sleep 0.1
done

# Submit a 2-cell sweep under an explicit trace ID so propagation is
# checkable end to end.
TRACE="deadbeefdeadbeefdeadbeefdeadbeef"
curl -fsS -D "$WORK/headers" -o "$WORK/sweep.json" \
    -H "X-Fdp-Trace: $TRACE" \
    -H 'Content-Type: application/json' \
    -d '{"name":"trace-smoke","workloads":["seqstream"],"configs":[{"fdp":true},{"level":2}],"insts":20000}' \
    "http://$ADDR/v1/sweeps" || { cat "$WORK/served.log" >&2; die "sweep submission failed"; }

grep -i "x-fdp-trace: $TRACE" "$WORK/headers" >/dev/null \
    || die "submit response did not echo X-Fdp-Trace"

SWEEP=$(sed -n 's/.*"id": *"\(sweep-[0-9]*\)".*/\1/p' "$WORK/sweep.json" | head -1)
[ -n "$SWEEP" ] || die "no sweep ID in submit response"

# Poll until the sweep is terminal.
i=0
while :; do
    STATE=$(curl -fsS "http://$ADDR/v1/sweeps/$SWEEP" | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' | head -1)
    [ "$STATE" = done ] && break
    [ "$STATE" = failed ] || [ "$STATE" = cancelled ] && die "sweep ended $STATE"
    i=$((i + 1))
    [ "$i" -gt 300 ] && die "sweep did not finish (state: ${STATE:-unknown})"
    sleep 0.2
done

# 1. Chrome trace: valid JSON with >0 complete events, all on our trace.
curl -fsS "http://$ADDR/v1/sweeps/$SWEEP/trace" >"$WORK/trace.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$WORK/trace.json" "$TRACE" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
xs = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
assert xs, "no complete (X) events in Chrome trace"
ids = {e["args"]["trace_id"] for e in xs if "args" in e}
assert ids == {sys.argv[2]}, f"trace IDs {ids} != submitted header"
names = {e["name"] for e in xs}
for want in ("job", "queue", "run"):
    assert want in names, f"missing {want!r} span (have {sorted(names)})"
print(f"trace-smoke: {len(xs)} complete events on trace {sys.argv[2][:12]}...")
EOF
else
    grep -o '"ph":"X"' "$WORK/trace.json" >/dev/null || die "no complete events in Chrome trace"
    grep -o "$TRACE" "$WORK/trace.json" >/dev/null || die "submitted trace ID absent from export"
fi

# 2. Provenance ledger: one .prov.jsonl per distinct fingerprint, each
# with an executed/cache_hit line carrying our trace ID.
LEDGERS=$(find "$WORK/store" -name '*.prov.jsonl' | wc -l)
[ "$LEDGERS" -ge 2 ] || die "expected >=2 provenance ledgers, found $LEDGERS"
# Plain grep (not -q) so the pipe is read to EOF — -q would SIGPIPE cat.
find "$WORK/store" -name '*.prov.jsonl' -exec cat {} + | grep "$TRACE" >/dev/null \
    || die "provenance ledgers do not carry the submitted trace ID"

# 3. Metrics: build info + span accounting present.
curl -fsS "http://$ADDR/metrics" >"$WORK/metrics"
for family in fdpserved_build_info fdpserved_spans_recorded_total fdpserved_tenant_queue_wait_seconds; do
    grep -q "$family" "$WORK/metrics" || die "/metrics missing $family"
done

echo "trace-smoke: PASS ($SWEEP, $LEDGERS ledgers)"
