#!/bin/sh
# series-smoke.sh — end-to-end interval-timeseries smoke test.
#
# Boots fdpserved with an on-disk store, submits one series-recorded job,
# waits for it to finish, then validates the timeseries surface:
#   1. GET /v1/jobs/{id}/series returns the full catalog, one value per
#      closed interval, and honours metric selection + downsampling,
#   2. the sidecar landed in the store (<fp>.series.bin),
#   3. a self-diff of the fingerprint (GET /v1/diff?a=fp&b=fp) passes
#      with zero residual on every metric,
#   4. /metrics carries the series and diff families.
#
# No dependencies beyond a POSIX shell and curl; JSON checks fall back
# from python3 to grep so the script runs in minimal CI images.
set -eu

die() { echo "series-smoke: FAIL: $*" >&2; exit 1; }

ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"

WORK=$(mktemp -d)
PORT=${SERIES_SMOKE_PORT:-18096}
ADDR="127.0.0.1:$PORT"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    [ -n "$PID" ] && wait "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

[ -x bin/fdpserved ] || go build -o bin/ ./cmd/fdpserved

bin/fdpserved -addr "$ADDR" -cache-dir "$WORK/store" \
    -log-level warn >"$WORK/served.log" 2>&1 &
PID=$!

# Wait for the daemon to answer.
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && { cat "$WORK/served.log" >&2; die "daemon did not come up on $ADDR"; }
    sleep 0.1
done

# Submit one series-recorded FDP job. The sampling interval ends on L2
# useful-block evictions, so the budget must stream well past the L2's
# capacity before intervals close — 2M instructions closes hundreds.
curl -fsS -o "$WORK/job.json" \
    -H 'Content-Type: application/json' \
    -d '{"workload":"seqstream","fdp":true,"insts":2000000,"seed":7,"tinterval":64,"series":true}' \
    "http://$ADDR/v1/jobs" || { cat "$WORK/served.log" >&2; die "job submission failed"; }

JOB=$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$WORK/job.json" | head -1)
[ -n "$JOB" ] || die "no job ID in submit response"

# Poll until the job is terminal.
i=0
while :; do
    curl -fsS "http://$ADDR/v1/jobs/$JOB" >"$WORK/status.json"
    STATE=$(sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p' "$WORK/status.json" | head -1)
    [ "$STATE" = done ] && break
    [ "$STATE" = failed ] || [ "$STATE" = cancelled ] && { cat "$WORK/served.log" >&2; die "job ended $STATE"; }
    i=$((i + 1))
    [ "$i" -gt 300 ] && die "job did not finish (state: ${STATE:-unknown})"
    sleep 0.2
done

FP=$(sed -n 's/.*"fingerprint": *"\([0-9a-f]*\)".*/\1/p' "$WORK/status.json" | head -1)
[ -n "$FP" ] || die "no fingerprint in job status"

# 1. The series artifact: full catalog, one value per interval; selection
# and downsampling answer 200.
curl -fsS "http://$ADDR/v1/jobs/$JOB/series" >"$WORK/series.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$WORK/series.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
n = doc["meta"]["intervals"]
assert n > 0, "no intervals recorded"
names = [m["name"] for m in doc["metrics"]]
for want in ("ipc", "bpki", "accuracy", "dcc_level", "bus_util"):
    assert want in names, f"catalog missing {want!r}"
for m in doc["metrics"]:
    assert len(m["values"]) == n, f"{m['name']}: {len(m['values'])} values over {n} intervals"
print(f"series-smoke: {len(names)} metrics x {n} intervals")
EOF
else
    grep -q '"ipc"' "$WORK/series.json" || die "series response missing the ipc metric"
    grep -q '"dcc_level"' "$WORK/series.json" || die "series response missing the dcc_level metric"
fi
curl -fsS "http://$ADDR/v1/jobs/$JOB/series?metrics=ipc,bpki&step=8" >/dev/null \
    || die "metric selection + downsampling failed"
# Download to a file first: piping into head would SIGPIPE curl.
curl -fsS "http://$ADDR/v1/jobs/$JOB/series?format=csv" >"$WORK/series.csv"
head -1 "$WORK/series.csv" | grep -q '^interval,' || die "CSV export has no header row"

# 2. The sidecar is on disk next to the result.
[ -f "$WORK/store/$(echo "$FP" | cut -c1-2)/$FP.series.bin" ] \
    || die "no $FP.series.bin sidecar in the store"

# 3. Self-diff: zero residual, pass verdict on every metric.
curl -fsS "http://$ADDR/v1/diff?a=$FP&b=$FP" >"$WORK/diff.json"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$WORK/diff.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["verdict"] == "pass", f"self-diff verdict {rep['verdict']}"
for m in rep["metrics"]:
    assert m["max_abs"] == 0, f"{m['metric']}: residual {m['max_abs']}"
    assert m["first_divergence"] == 0, f"{m['metric']}: diverges at {m['first_divergence']}"
print(f"series-smoke: self-diff pass over {rep['intervals']} intervals, {len(rep['metrics'])} metrics")
EOF
else
    grep -q '"verdict": *"pass"' "$WORK/diff.json" || die "self-diff did not pass"
fi

# 4. Metrics: series volume + diff verdict families present.
curl -fsS "http://$ADDR/metrics" >"$WORK/metrics"
for family in sim_series_points_total sim_series_bytes_total fdpserved_diff_requests_total; do
    grep -q "$family" "$WORK/metrics" || die "/metrics missing $family"
done
grep -q 'fdpserved_diff_requests_total{verdict="pass"} 1' "$WORK/metrics" \
    || die "diff verdict counter did not count the pass"

echo "series-smoke: PASS ($JOB, fp ${FP%"${FP#????????????}"}...)"
