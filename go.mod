module fdpsim

go 1.22
