package fdpsim

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark executes the corresponding harness experiment end-to-end
// (workload x configuration sweep), so `go test -bench=.` regenerates
// every result at benchmark scale; `cmd/experiments` prints the full
// tables at larger instruction counts.
//
// The harness memoizes identical simulations, so each benchmark iteration
// after the first measures only unmemoized work; ResetMemo keeps the
// measurements honest.

import (
	"context"
	"testing"

	"fdpsim/internal/harness"
)

// benchParams sizes experiments for benchmarking: large enough that every
// mechanism (training, intervals, pollution) engages, small enough to
// iterate.
func benchParams() harness.Params {
	return harness.Params{Insts: 60_000, TInterval: 512, Seed: 1, Workers: 2}
}

func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		harness.ResetMemo()
		tables, err := e.Run(context.Background(), benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// BenchmarkFig1Aggressiveness regenerates Figure 1: IPC of the stream
// prefetcher at four static aggressiveness levels over the 17
// memory-intensive workloads.
func BenchmarkFig1Aggressiveness(b *testing.B) { benchmarkExperiment(b, "fig1") }

// BenchmarkFig2Accuracy regenerates Figure 2: IPC plus whole-run prefetch
// accuracy per configuration.
func BenchmarkFig2Accuracy(b *testing.B) { benchmarkExperiment(b, "fig2") }

// BenchmarkFig3Lateness regenerates Figure 3: IPC plus whole-run prefetch
// lateness per configuration.
func BenchmarkFig3Lateness(b *testing.B) { benchmarkExperiment(b, "fig3") }

// BenchmarkFig5DynamicAggressiveness regenerates Figure 5: Dynamic
// Aggressiveness vs. the four static configurations.
func BenchmarkFig5DynamicAggressiveness(b *testing.B) { benchmarkExperiment(b, "fig5") }

// BenchmarkFig6CounterDistribution regenerates Figure 6: the distribution
// of the Dynamic Configuration Counter across sampling intervals.
func BenchmarkFig6CounterDistribution(b *testing.B) { benchmarkExperiment(b, "fig6") }

// BenchmarkFig7InsertionPolicy regenerates Figure 7: static insertion
// positions vs. Dynamic Insertion under a very aggressive prefetcher.
func BenchmarkFig7InsertionPolicy(b *testing.B) { benchmarkExperiment(b, "fig7") }

// BenchmarkFig8InsertionDistribution regenerates Figure 8: where Dynamic
// Insertion placed prefetched blocks.
func BenchmarkFig8InsertionDistribution(b *testing.B) { benchmarkExperiment(b, "fig8") }

// BenchmarkFig9Overall regenerates Figure 9: the paper's headline
// comparison of FDP against conventional prefetching.
func BenchmarkFig9Overall(b *testing.B) { benchmarkExperiment(b, "fig9") }

// BenchmarkFig10Bandwidth regenerates Figure 10: BPKI per configuration.
func BenchmarkFig10Bandwidth(b *testing.B) { benchmarkExperiment(b, "fig10") }

// BenchmarkFig11PrefetchCache regenerates Figure 11: prefetch caches of
// 2 KB - 1 MB vs. FDP prefetching into the L2 (performance).
func BenchmarkFig11PrefetchCache(b *testing.B) { benchmarkExperiment(b, "fig11") }

// BenchmarkFig12PrefetchCacheBandwidth regenerates Figure 12: the same
// comparison in BPKI.
func BenchmarkFig12PrefetchCacheBandwidth(b *testing.B) { benchmarkExperiment(b, "fig12") }

// BenchmarkFig13GHB regenerates Figure 13: FDP on the GHB C/DC
// delta-correlation prefetcher.
func BenchmarkFig13GHB(b *testing.B) { benchmarkExperiment(b, "fig13") }

// BenchmarkStrideFDP regenerates Section 5.8: FDP on the PC-based stride
// prefetcher.
func BenchmarkStrideFDP(b *testing.B) { benchmarkExperiment(b, "stride") }

// BenchmarkFig14LowPotential regenerates Figure 14: the nine low-potential
// benchmarks where FDP must do no harm.
func BenchmarkFig14LowPotential(b *testing.B) { benchmarkExperiment(b, "fig14") }

// BenchmarkTable4PrefetchCounts regenerates Table 4: prefetches sent by a
// very aggressive stream prefetcher on all 26 workloads.
func BenchmarkTable4PrefetchCounts(b *testing.B) { benchmarkExperiment(b, "table4") }

// BenchmarkTable5Summary regenerates Table 5: average IPC and BPKI across
// conventional configurations and FDP.
func BenchmarkTable5Summary(b *testing.B) { benchmarkExperiment(b, "table5") }

// BenchmarkTable7Sensitivity regenerates Table 7: sensitivity of FDP's
// wins to L2 size and memory latency.
func BenchmarkTable7Sensitivity(b *testing.B) { benchmarkExperiment(b, "table7") }

// BenchmarkAccuracyOnlyAblation regenerates Section 5.6: throttling on
// accuracy alone vs. the comprehensive three-metric feedback.
func BenchmarkAccuracyOnlyAblation(b *testing.B) { benchmarkExperiment(b, "accuracyonly") }

// BenchmarkMulticoreExtension regenerates the shared-bus CMP extension.
func BenchmarkMulticoreExtension(b *testing.B) { benchmarkExperiment(b, "multicore") }

// BenchmarkDahlgrenComparison regenerates the FDP vs. adaptive sequential
// prefetching comparison (related work, Section 6.1).
func BenchmarkDahlgrenComparison(b *testing.B) { benchmarkExperiment(b, "dahlgren") }

// BenchmarkHybridPrefetcher regenerates the stream+stride hybrid study.
func BenchmarkHybridPrefetcher(b *testing.B) { benchmarkExperiment(b, "hybrid") }

// BenchmarkSharedL2 regenerates the Section 4.3 shared-L2 threshold study.
func BenchmarkSharedL2(b *testing.B) { benchmarkExperiment(b, "sharedl2") }

// BenchmarkPerStreamRamp regenerates the footnote-8 per-stream study.
func BenchmarkPerStreamRamp(b *testing.B) { benchmarkExperiment(b, "perstream") }

// BenchmarkAblationThresholds regenerates the Section 4.3 threshold
// sensitivity ablation.
func BenchmarkAblationThresholds(b *testing.B) { benchmarkExperiment(b, "thresholds") }

// BenchmarkAblationInterval regenerates the sampling-interval ablation.
func BenchmarkAblationInterval(b *testing.B) { benchmarkExperiment(b, "tinterval") }

// BenchmarkAblationFilterSize regenerates the pollution-filter size
// ablation.
func BenchmarkAblationFilterSize(b *testing.B) { benchmarkExperiment(b, "filtersize") }

// BenchmarkAblationBusWidth regenerates the bandwidth-constrained
// threshold ablation.
func BenchmarkAblationBusWidth(b *testing.B) { benchmarkExperiment(b, "buswidth") }

// BenchmarkSimulatorCyclesPerSecond measures raw simulator throughput:
// cycles simulated per wall-clock second on a bus-saturated stream.
func BenchmarkSimulatorCyclesPerSecond(b *testing.B) {
	cfg := Conventional(PrefStream, 5)
	cfg.Workload = "seqstream"
	cfg.MaxInsts = 200_000
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Counters.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkSingleRunFDP measures one full FDP simulation (the unit of work
// every experiment fans out).
func BenchmarkSingleRunFDP(b *testing.B) {
	cfg := WithFDP(PrefStream)
	cfg.Workload = "mixedphase"
	cfg.MaxInsts = 100_000
	cfg.FDP.TInterval = 1024
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInstsPerSecond measures end-to-end simulator throughput in
// retired instructions per wall-clock second on representative
// memory-intensive workloads (the number the event-engine refactor is
// judged by; compare runs with benchstat). Each iteration is one full
// simulation, so allocs/op includes one-time construction — the
// steady-state zero-allocation guarantee is enforced separately by
// TestPerInstructionAllocs and BenchmarkPerInstruction in internal/sim.
func BenchmarkInstsPerSecond(b *testing.B) {
	const insts = 200_000
	for _, w := range []string{"seqstream", "mixedphase", "chaserand"} {
		b.Run(w, func(b *testing.B) {
			cfg := WithFDP(PrefStream)
			cfg.Workload = w
			cfg.MaxInsts = insts
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*insts/b.Elapsed().Seconds(), "insts/s")
		})
	}
}
