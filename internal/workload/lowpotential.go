package workload

import "fdpsim/internal/cpu"

// The 9 low-potential workloads (Figure 14): programs whose working sets
// largely fit in the cache hierarchy, so even a very aggressive prefetcher
// stays nearly idle. The paper's requirement here is that FDP performs as
// well as the best conventional configuration and never hurts.

func init() {
	register("cachefit", false,
		"sequential loop over an L2-resident 512 KB array (crafty-like)", newCacheFit)
	register("tinyloop", false,
		"tight loop over an L1-resident 16 KB array (eon-like)", newTinyLoop)
	register("computebound", false,
		"1 memory op per 50 instructions (perlbmk-like)", newComputeBound)
	register("smallrand", false,
		"random loads over an L2-resident 192 KB set (gzip-like)", newSmallRand)
	register("codewalk", false,
		"large instruction footprint walking 384 KB of code through the unified L2 (gcc-like)", newCodeWalk)
	register("stackwalk", false,
		"up-down walk over a 32 KB stack region (fma3d-like)", newStackWalk)
	register("blockedmm", false,
		"blocked matrix kernel: tile-resident with rare tile switches (apsi-like)", newBlockedMM)
	register("binsearch", false,
		"dependent binary searches over an 8 MB array, top levels cached", newBinSearch)
	register("mostlyhit", false,
		"repeated sweep over a 640 KB region that fits the L2", newMostlyHit)
}

func newCacheFit(seed uint64) cpu.Source {
	const region = 512 * kb
	cur := uint64(0)
	g := &gen{name: "cachefit"}
	g.fill = func(g *gen) {
		for i := 0; i < 64; i++ {
			g.load(cur, pc(0))
			cur = (cur + 8) % region
			g.nops(3)
		}
	}
	return g
}

func newTinyLoop(seed uint64) cpu.Source {
	const region = 16 * kb
	cur := uint64(0)
	g := &gen{name: "tinyloop"}
	g.fill = func(g *gen) {
		for i := 0; i < 64; i++ {
			g.load(cur, pc(0))
			cur = (cur + 8) % region
			g.nops(1)
		}
	}
	return g
}

func newComputeBound(seed uint64) cpu.Source {
	const region = 2 * mb
	cur := uint64(0)
	g := &gen{name: "computebound"}
	g.fill = func(g *gen) {
		for i := 0; i < 8; i++ {
			g.load(cur, pc(0))
			cur = (cur + 8) % region
			g.nops(49)
		}
	}
	return g
}

func newSmallRand(seed uint64) cpu.Source {
	const region = 192 * kb
	r := newRNG(seed ^ 0x51a)
	g := &gen{name: "smallrand"}
	g.fill = func(g *gen) {
		for i := 0; i < 32; i++ {
			g.load(hashAddr(r.next(), region), pc(0))
			g.nops(5)
		}
	}
	return g
}

func newCodeWalk(seed uint64) cpu.Source {
	// gcc-like (Section 5.9): the instruction working set (384 KB, far
	// beyond the 64 KB L1I) lives in the unified L2, so the front end
	// depends on L2 hits. The data side mixes a cache-resident hot set
	// with occasional short cold runs — the pattern whose prefetcher junk
	// evicts instruction blocks and idles the processor; FDP detects the
	// pollution and throttles.
	const (
		codeBase  = uint64(0x10000000)
		funcBytes = 256 // 64 four-byte instructions
		funcs     = 1536
		hotData   = 64 * kb
		coldData  = uint64(1) << 34
		coldSpan  = 32 * mb
	)
	r := newRNG(seed ^ 0xc0de)
	fn := uint64(0)
	hot := uint64(0)
	call := uint64(0)
	g := &gen{name: "codewalk"}
	emitAt := func(kind cpu.Kind, addr, fpc uint64, dep int) {
		g.emit(cpu.MicroOp{Kind: kind, Addr: addr, PC: fpc, Dep: dep})
	}
	g.fill = func(g *gen) {
		// One "function call": 64 sequential instructions at the
		// function's address, mixing compute with a few data accesses.
		base := codeBase + (fn%funcs)*funcBytes
		fn++ // straight-line walk: code fetch forms a long stream
		call++
		for i := uint64(0); i < 64; i++ {
			fpc := base + i*4
			switch {
			case i == 8 || i == 24 || i == 40:
				emitAt(cpu.Load, hot, fpc, 0)
				hot = (hot + 72) % hotData
			case i == 56 && call%6 == 0:
				// Cold three-block run: the prefetcher bait.
				cold := coldData + hashAddr(r.next(), coldSpan)
				emitAt(cpu.Load, cold, fpc, 0)
				emitAt(cpu.Load, cold+BlockBytes, fpc+4, 0)
				emitAt(cpu.Load, cold+2*BlockBytes, fpc+8, 0)
			default:
				emitAt(cpu.Nop, 0, fpc, 0)
			}
		}
	}
	return g
}

func newStackWalk(seed uint64) cpu.Source {
	const region = 32 * kb
	cur := uint64(0)
	up := true
	g := &gen{name: "stackwalk"}
	g.fill = func(g *gen) {
		for i := 0; i < 32; i++ {
			g.load(cur, pc(0))
			g.store(cur, pc(1))
			if up {
				cur += 8
				if cur >= region {
					cur = region - 8
					up = false
				}
			} else {
				if cur >= 8 {
					cur -= 8
				} else {
					up = true
				}
			}
			g.nops(2)
		}
	}
	return g
}

func newBlockedMM(seed uint64) cpu.Source {
	const tile = 64 * kb
	const space = 8 * mb
	r := newRNG(seed ^ 0xb10c)
	tileBase := uint64(0)
	cur := uint64(0)
	pass := 0
	g := &gen{name: "blockedmm"}
	g.fill = func(g *gen) {
		for i := 0; i < 64; i++ {
			g.load(tileBase+cur, pc(0))
			cur += 8
			if cur >= tile {
				cur = 0
				pass++
				if pass == 8 { // reuse the tile 8 times, then move on
					pass = 0
					tileBase = hashAddr(r.next(), space-tile)
				}
			}
			g.nops(4)
		}
	}
	return g
}

func newBinSearch(seed uint64) cpu.Source {
	const array = 8 * mb
	r := newRNG(seed ^ 0xb54c)
	g := &gen{name: "binsearch"}
	g.fill = func(g *gen) {
		lo, hi := uint64(0), array/8
		target := r.n(array / 8)
		for lo < hi {
			mid := (lo + hi) / 2
			g.loadDep(mid*8, pc(0), 1)
			g.nops(6)
			if mid < target {
				lo = mid + 1
			} else if mid > target {
				hi = mid
			} else {
				break
			}
		}
		g.nops(8)
	}
	return g
}

func newMostlyHit(seed uint64) cpu.Source {
	const region = 640 * kb
	cur := uint64(0)
	g := &gen{name: "mostlyhit"}
	g.fill = func(g *gen) {
		for i := 0; i < 64; i++ {
			g.load(cur, pc(0))
			cur = (cur + 8) % region
			g.nops(2)
		}
	}
	return g
}
