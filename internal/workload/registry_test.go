package workload

import (
	"errors"
	"sort"
	"testing"

	"fdpsim/internal/workload/spec"
)

func TestListTags(t *testing.T) {
	all := List()
	if len(all) < 26 {
		t.Fatalf("List() returned %d workloads, want >= 26", len(all))
	}
	if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Name < all[j].Name }) {
		t.Fatal("List() is not sorted by name")
	}
	mem := List(TagMemIntensive)
	low := List(TagLowPotential)
	if len(mem) != 17 || len(low) != 9 {
		t.Fatalf("mem=%d low=%d, want 17/9", len(mem), len(low))
	}
	// Tag filters are AND-composed.
	if got := List(TagBuiltin, TagMemIntensive); len(got) != 17 {
		t.Fatalf("AND filter returned %d, want 17", len(got))
	}
	if got := List("no-such-tag"); len(got) != 0 {
		t.Fatalf("unknown tag returned %d entries", len(got))
	}
	// The derived views agree with the tag filters.
	if names := MemoryIntensive(); len(names) != len(mem) {
		t.Fatalf("MemoryIntensive()=%d, List(mem)=%d", len(names), len(mem))
	}
	for _, info := range all {
		if len(info.Tags) == 0 {
			t.Fatalf("workload %q has no tags", info.Name)
		}
		if info.About == "" {
			t.Fatalf("workload %q has no About", info.Name)
		}
	}
}

func TestRegisterSpec(t *testing.T) {
	sp := &spec.Spec{
		Name:  "regtest.stream",
		About: "registry test spec",
		Phases: []spec.Phase{{Clients: []spec.Client{
			{Pattern: spec.Pattern{Kind: spec.KindStride, FootprintKB: 256, Gap: 2}},
		}}},
	}
	if err := RegisterSpec(sp); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { unregister("regtest.stream") })
	if !Exists("regtest.stream") {
		t.Fatal("registered spec not found")
	}
	if About("regtest.stream") != "registry test spec" {
		t.Fatalf("About = %q", About("regtest.stream"))
	}
	found := false
	for _, info := range List(TagSpec) {
		if info.Name == "regtest.stream" {
			found = true
		}
	}
	if !found {
		t.Fatal("List(TagSpec) does not include the registered spec")
	}
	// Spec workloads must not leak into the paper's benchmark sets.
	for _, n := range append(MemoryIntensive(), LowPotential()...) {
		if n == "regtest.stream" {
			t.Fatal("spec workload leaked into a benchmark set")
		}
	}
	// It is runnable by name and deterministic; the generator matches the
	// spec's lane 0 stream.
	src, err := New("regtest.stream", 5)
	if err != nil {
		t.Fatal(err)
	}
	direct := sp.Source(0, 5)
	for i := 0; i < 10000; i++ {
		if a, b := src.Next(), direct.Next(); a != b {
			t.Fatalf("op %d: registry %+v != direct %+v", i, a, b)
		}
	}
	// Duplicates and invalid specs are rejected.
	if err := RegisterSpec(sp); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := RegisterSpec(&spec.Spec{Name: "bad"}); !errors.Is(err, spec.ErrInvalid) {
		t.Fatalf("invalid spec: got %v, want ErrInvalid", err)
	}
}
