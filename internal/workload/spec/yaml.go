package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// yamlToValue parses the YAML subset workload specs need — nested block
// mappings, block sequences ("- " items, including inline "key: value"
// starts), scalars (strings, numbers, booleans, null), '#' comments —
// into the map[string]any / []any / scalar shape json.Marshal accepts.
// No external dependency: the repo's no-new-deps rule rules out a full
// YAML library, and specs never need anchors, flow collections,
// multi-line strings or type tags. Anything outside the subset fails
// loudly rather than parsing wrong.

type yamlLine struct {
	indent int
	text   string // content with indentation stripped
	num    int    // 1-based source line, for errors
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

func yamlToValue(data []byte) (any, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, " \t\r")
		stripped := stripComment(line)
		trimmed := strings.TrimLeft(stripped, " ")
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "\t") {
			return nil, fmt.Errorf("yaml line %d: tabs are not allowed in indentation", i+1)
		}
		lines = append(lines, yamlLine{indent: len(stripped) - len(trimmed), text: trimmed, num: i + 1})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, fmt.Errorf("yaml line %d: unexpected content %q (bad indentation?)", p.lines[p.pos].num, p.lines[p.pos].text)
	}
	return v, nil
}

// stripComment removes a trailing "#..." that is not inside quotes.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i, r := range s {
		switch {
		case r == '\'' && !inDouble:
			inSingle = !inSingle
		case r == '"' && !inSingle:
			inDouble = !inDouble
		case r == '#' && !inSingle && !inDouble:
			// YAML requires whitespace (or line start) before a comment.
			if i == 0 || s[i-1] == ' ' || s[i-1] == '\t' {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses the run of lines at exactly the given indent as a
// mapping or a sequence.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, fmt.Errorf("yaml: unexpected end of document")
	}
	if strings.HasPrefix(p.lines[p.pos].text, "- ") || p.lines[p.pos].text == "-" {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *yamlParser) parseSequence(indent int) (any, error) {
	var out []any
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent || !(strings.HasPrefix(ln.text, "- ") || ln.text == "-") {
			break
		}
		p.pos++
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		switch {
		case rest == "":
			// Item body on the following, deeper-indented lines.
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				out = append(out, nil)
				continue
			}
			item, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out = append(out, item)
		case isMappingStart(rest):
			// "- key: value" — the item is a mapping whose first entry is
			// inline; continuation keys sit two columns deeper, aligned
			// with the inline key. Splice a virtual line and reparse.
			virtual := yamlLine{indent: indent + 2, text: rest, num: ln.num}
			p.lines = append(p.lines[:p.pos], append([]yamlLine{virtual}, p.lines[p.pos:]...)...)
			item, err := p.parseMapping(indent + 2)
			if err != nil {
				return nil, err
			}
			out = append(out, item)
		default:
			out = append(out, parseScalar(rest))
		}
	}
	return out, nil
}

func (p *yamlParser) parseMapping(indent int) (any, error) {
	out := map[string]any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent {
			break
		}
		key, rest, ok := splitKey(ln.text)
		if !ok {
			return nil, fmt.Errorf("yaml line %d: expected \"key: value\", got %q", ln.num, ln.text)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("yaml line %d: duplicate key %q", ln.num, key)
		}
		p.pos++
		if rest != "" {
			out[key] = parseScalar(rest)
			continue
		}
		// Value is the following deeper-indented block (or null).
		if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
			out[key] = nil
			continue
		}
		v, err := p.parseBlock(p.lines[p.pos].indent)
		if err != nil {
			return nil, err
		}
		out[key] = v
	}
	return out, nil
}

// isMappingStart reports whether a sequence item's inline text begins a
// mapping entry ("key: value" or "key:").
func isMappingStart(s string) bool {
	_, _, ok := splitKey(s)
	return ok
}

// splitKey splits "key: value" (or "key:") into key and trimmed value.
// Keys are plain scalars: no quotes, no colons.
func splitKey(s string) (key, value string, ok bool) {
	i := strings.Index(s, ":")
	if i <= 0 {
		return "", "", false
	}
	if i+1 < len(s) && s[i+1] != ' ' {
		return "", "", false // "a:b" is a scalar, not a mapping
	}
	key = strings.TrimSpace(s[:i])
	if key == "" || strings.ContainsAny(key, "\"'{}[],") {
		return "", "", false
	}
	return key, strings.TrimSpace(s[i+1:]), true
}

// parseScalar interprets an unquoted or quoted scalar.
func parseScalar(s string) any {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	switch s {
	case "true", "True":
		return true
	case "false", "False":
		return false
	case "null", "~":
		return nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
