package spec

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"fdpsim/internal/cpu"
)

// twoPhase is a representative spec exercising every pattern kind, two
// lanes, bursts, skewed weights and an empirical stride distribution.
func twoPhase() *Spec {
	return &Spec{
		Name:  "svc.mixed",
		About: "two-phase mixed service",
		Phases: []Phase{
			{
				Name: "scan",
				Ops:  20000,
				Clients: []Client{
					{Name: "stream", Lane: 0, Weight: 3, Pattern: Pattern{
						Kind: KindStride, FootprintKB: 4096,
						Strides: []Stride{{Bytes: 64, Weight: 9}, {Bytes: -128, Weight: 1}},
					}},
					{Name: "pointer", Lane: 1, BurstOn: 4, BurstOff: 8, Pattern: Pattern{
						Kind: KindChase, FootprintKB: 2048, RunBlocks: 2,
					}},
				},
			},
			{
				Name: "serve",
				Ops:  20000,
				Clients: []Client{
					{Name: "rand", Lane: 0, Pattern: Pattern{
						Kind: KindRandom, FootprintKB: 8192, RunBlocks: 3, StoreEvery: 4,
					}},
					{Name: "hot", Lane: 1, Weight: 2, Pattern: Pattern{
						Kind: KindHotset, WorkingSetKB: 256, Gap: 2, GapJitter: 3, StoreEvery: 8,
					}},
				},
			},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := twoPhase().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "name"},
		{"upper name", func(s *Spec) { s.Name = "Bad" }, "name"},
		{"no phases", func(s *Spec) { s.Phases = nil }, "no phases"},
		{"zero ops multi-phase", func(s *Spec) { s.Phases[0].Ops = 0 }, "ops is required"},
		{"no clients", func(s *Spec) { s.Phases[0].Clients = nil }, "no clients"},
		{"negative lane", func(s *Spec) { s.Phases[0].Clients[0].Lane = -1 }, "lane"},
		{"lane too high", func(s *Spec) { s.Phases[0].Clients[0].Lane = MaxLanes }, "lane"},
		{"negative weight", func(s *Spec) { s.Phases[0].Clients[0].Weight = -1 }, "weight"},
		{"negative burst", func(s *Spec) { s.Phases[0].Clients[1].BurstOff = -1 }, "burst"},
		{"missing kind", func(s *Spec) { s.Phases[0].Clients[0].Pattern.Kind = "" }, "kind is required"},
		{"unknown kind", func(s *Spec) { s.Phases[0].Clients[0].Pattern.Kind = "zigzag" }, "unknown pattern kind"},
		{"negative gap", func(s *Spec) { s.Phases[0].Clients[0].Pattern.Gap = -1 }, "non-negative"},
		{"run_blocks too high", func(s *Spec) { s.Phases[0].Clients[1].Pattern.RunBlocks = 65 }, "run_blocks"},
		{"zero stride", func(s *Spec) { s.Phases[0].Clients[0].Pattern.Strides[0].Bytes = 0 }, "zero bytes"},
		{"negative stride weight", func(s *Spec) { s.Phases[0].Clients[0].Pattern.Strides[0].Weight = -2 }, "negative weight"},
		{"strides on chase", func(s *Spec) {
			s.Phases[0].Clients[1].Pattern.Strides = []Stride{{Bytes: 64}}
		}, "only apply to stride"},
		{"working set on stride", func(s *Spec) {
			s.Phases[0].Clients[0].Pattern.WorkingSetKB = 64
		}, "working_set_kb"},
		{"footprint on hotset", func(s *Spec) {
			s.Phases[1].Clients[1].Pattern.FootprintKB = 64
		}, "working_set_kb"},
		{"lane gap", func(s *Spec) {
			for pi := range s.Phases {
				for ci := range s.Phases[pi].Clients {
					if s.Phases[pi].Clients[ci].Lane == 1 {
						s.Phases[pi].Clients[ci].Lane = 2
					}
				}
			}
		}, "contiguous"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := twoPhase()
			tc.mut(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("error %v does not wrap ErrInvalid", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLanes(t *testing.T) {
	s := twoPhase()
	if got := s.Lanes(); got != 2 {
		t.Fatalf("Lanes() = %d, want 2", got)
	}
	single := &Spec{Name: "one", Phases: []Phase{{Clients: []Client{
		{Pattern: Pattern{Kind: KindStride}},
	}}}}
	if got := single.Lanes(); got != 1 {
		t.Fatalf("Lanes() = %d, want 1", got)
	}
}

// TestCanonicalDefaults: a spec spelling out defaults and one omitting
// them must share canonical bytes, since they generate identical streams.
func TestCanonicalDefaults(t *testing.T) {
	implicit := &Spec{Name: "w", Phases: []Phase{{Clients: []Client{
		{Pattern: Pattern{Kind: KindStride}},
	}}}}
	explicit := &Spec{Name: "w", Phases: []Phase{{Clients: []Client{
		{Weight: 1, BurstOn: 1, Pattern: Pattern{
			Kind:        KindStride,
			FootprintKB: defaultFootprintKB,
			Strides:     []Stride{{Bytes: BlockBytes, Weight: 1}},
		}},
	}}}}
	a, err := implicit.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := explicit.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical forms differ:\n%s\n%s", a, b)
	}
	// Canonical must reject invalid specs.
	if _, err := (&Spec{}).Canonical(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Canonical on zero spec: got %v, want ErrInvalid", err)
	}
}

// TestSourceDeterminism: two generators built from the same (spec, seed)
// must produce identical micro-op streams; a different seed must not.
func TestSourceDeterminism(t *testing.T) {
	s := twoPhase()
	const n = 200000
	for lane := 0; lane < s.Lanes(); lane++ {
		a := s.Source(lane, 42)
		b := s.Source(lane, 42)
		c := s.Source(lane, 43)
		differ := false
		for i := 0; i < n; i++ {
			opA, opB, opC := a.Next(), b.Next(), c.Next()
			if opA != opB {
				t.Fatalf("lane %d op %d: same seed diverged: %+v vs %+v", lane, i, opA, opB)
			}
			if opA != opC {
				differ = true
			}
		}
		if !differ {
			t.Fatalf("lane %d: seeds 42 and 43 produced identical %d-op streams", lane, n)
		}
	}
}

// TestSourceShape checks the generated stream's gross structure: every
// pattern kind emits memory ops, addresses stay inside each client's
// private 16 GB window, stores appear when store_every asks for them, and
// chase loads carry dependence distances within the load-ring bound.
func TestSourceShape(t *testing.T) {
	s := twoPhase()
	const n = 100000
	for lane := 0; lane < s.Lanes(); lane++ {
		src := s.Source(lane, 7)
		if src.Name() != s.Name {
			t.Fatalf("Name() = %q, want %q", src.Name(), s.Name)
		}
		var loads, stores, deps int
		for i := 0; i < n; i++ {
			op := src.Next()
			switch op.Kind {
			case cpu.Load:
				loads++
				if op.Dep < 0 || op.Dep > loadRingDeps {
					t.Fatalf("lane %d: dep %d outside [0,%d]", lane, op.Dep, loadRingDeps)
				}
				if op.Dep > 0 {
					deps++
				}
			case cpu.Store:
				stores++
			}
			if op.Kind != cpu.Nop && op.Addr>>34 == 0 {
				t.Fatalf("lane %d: address %#x below the first client window", lane, op.Addr)
			}
		}
		if loads == 0 {
			t.Fatalf("lane %d emitted no loads in %d ops", lane, n)
		}
		if stores == 0 {
			t.Fatalf("lane %d emitted no stores in %d ops (store_every clients present)", lane, n)
		}
		if lane == 1 && deps == 0 {
			t.Fatal("lane 1 has a chase client but no dependent loads")
		}
	}
}

// TestSourcesLanes: Sources returns one generator per lane and a
// single-lane spec still works end to end.
func TestSourcesLanes(t *testing.T) {
	s := twoPhase()
	srcs := s.Sources(1)
	if len(srcs) != 2 {
		t.Fatalf("Sources returned %d lanes, want 2", len(srcs))
	}
	for i, src := range srcs {
		if src == nil {
			t.Fatalf("lane %d source is nil", i)
		}
		src.Next() // must not hang or panic
	}
}

// TestIdleLanePhase: a lane with no client in one phase idles through it
// and resumes in the next — the generator must keep making progress.
func TestIdleLanePhase(t *testing.T) {
	s := &Spec{Name: "idle", Phases: []Phase{
		{Ops: 1000, Clients: []Client{
			{Lane: 0, Pattern: Pattern{Kind: KindStride}},
			{Lane: 1, Pattern: Pattern{Kind: KindStride}},
		}},
		{Ops: 1000, Clients: []Client{
			{Lane: 0, Pattern: Pattern{Kind: KindRandom}},
		}},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	src := s.Source(1, 3)
	var mem int
	for i := 0; i < 10000; i++ {
		if op := src.Next(); op.Kind != cpu.Nop {
			mem++
		}
	}
	if mem == 0 {
		t.Fatal("lane 1 never issued memory ops despite being active in phase 0")
	}
}

func TestParseJSON(t *testing.T) {
	data := []byte(`{
		"name": "j.simple",
		"phases": [{"clients": [
			{"lane": 0, "pattern": {"kind": "stride", "strides": [{"bytes": 64}]}}
		]}]
	}`)
	s, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "j.simple" || len(s.Phases) != 1 {
		t.Fatalf("unexpected parse result: %+v", s)
	}
	// Typos must surface as errors, not silent defaults.
	bad := []byte(`{"name": "j", "phases": [{"clients": [
		{"pattern": {"kind": "stride", "footprintkb": 64}}
	]}]}`)
	if _, err := Parse(bad); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unknown field: got %v, want ErrInvalid", err)
	}
}

func TestString(t *testing.T) {
	got := twoPhase().String()
	for _, want := range []string{"svc.mixed", "2 phase(s)", "2 lane(s)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("String() = %q, missing %q", got, want)
		}
	}
}
