// Package spec provides declarative, seeded, fully reproducible workload
// specifications: instead of picking one of the hand-coded kernel
// generators by name, a caller (or a JSON/YAML file) describes a workload
// as a sequence of phases, each a mixture of heterogeneous "clients" with
// skewed rates, bursty scheduling and empirical stride/working-set/
// footprint distributions, composed onto one or more multicore/SMT lanes.
//
// Generation is purely a function of (spec, seed): the same pair always
// yields the identical micro-op stream, so spec runs fingerprint, memoize
// and sweep exactly like the built-in kernels, and a recorded trace is
// bit-equivalent to regenerating in memory. See docs/WORKLOADS.md for the
// schema reference and worked examples.
package spec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ErrInvalid is the sentinel wrapped by every spec validation failure;
// callers branch with errors.Is (the CLIs map it to exit code 2).
var ErrInvalid = errors.New("spec: invalid workload spec")

// BlockBytes is the cache-block size shared with the memory hierarchy.
const BlockBytes = 64

// MaxLanes bounds the number of multicore/SMT lanes a spec may target.
const MaxLanes = 64

// Pattern kinds.
const (
	// KindStride draws each access's stride from an empirical weighted
	// distribution over a footprint: unit streams, element strides,
	// descending streams, transpose walks and any mixture thereof.
	KindStride = "stride"
	// KindChase is a dependent pointer chase over a pseudo-random heap:
	// each hop's address comes from hashing the previous one, and the
	// load cannot issue until its producer completes.
	KindChase = "chase"
	// KindRandom touches short independent runs at uniformly random
	// block-aligned positions — enough to train a prefetcher, too short
	// for its prefetches to help.
	KindRandom = "random"
	// KindHotset cycles through a small resident working set with a
	// prefetcher-hostile stride — the reuse that pollution destroys.
	KindHotset = "hotset"
)

// Spec is a declarative workload: phases executed in order (cycling back
// to the first when the last completes), each phase a weighted mixture of
// clients composed onto lanes. The zero value is invalid; construct in Go
// or load from JSON/YAML and call Validate.
type Spec struct {
	// Name identifies the workload (registry key, Result.Workload, trace
	// header). Lowercase letters, digits, '.', '_' and '-' only.
	Name string `json:"name"`
	// About is an optional one-line description shown by -list.
	About string `json:"about,omitempty"`
	// Phases execute in order and wrap around, so a spec describes an
	// unbounded instruction stream no matter the run's retire target.
	Phases []Phase `json:"phases"`
}

// Phase is one program phase: a client mixture active for Ops micro-ops
// per lane before the next phase takes over.
type Phase struct {
	// Name is optional, for documentation and tooling.
	Name string `json:"name,omitempty"`
	// Ops is the phase length in micro-ops per lane. It may be 0 only in
	// a single-phase spec, where it means "for the whole run".
	Ops uint64 `json:"ops,omitempty"`
	// Clients are the access generators active in this phase.
	Clients []Client `json:"clients"`
}

// Client is one heterogeneous traffic source within a phase: a memory
// access pattern scheduled onto a lane at a relative rate, optionally in
// bursts.
type Client struct {
	// Name is optional, for documentation and tooling.
	Name string `json:"name,omitempty"`
	// Lane assigns the client to a hardware lane: core index in a
	// multicore composition, thread index in an SMT one, always 0 for a
	// single-core run. Lanes must be contiguous from 0.
	Lane int `json:"lane,omitempty"`
	// Weight is the client's relative share of its lane's scheduling
	// turns within the phase (skewed rates). Zero means 1.
	Weight float64 `json:"weight,omitempty"`
	// BurstOn is how many accesses the client issues per scheduling turn
	// (burstiness). Zero means 1: a steady interleave.
	BurstOn int `json:"burst_on,omitempty"`
	// BurstOff inserts that many idle micro-ops after each burst — the
	// think time between a bursty client's episodes.
	BurstOff int `json:"burst_off,omitempty"`
	// Pattern is the client's memory access pattern.
	Pattern Pattern `json:"pattern"`
}

// Pattern describes how a client generates addresses.
type Pattern struct {
	// Kind selects the generator: stride, chase, random or hotset.
	Kind string `json:"kind"`
	// FootprintKB is the address range the pattern roams (stride, chase,
	// random). Zero means 65536 (64 MB).
	FootprintKB uint64 `json:"footprint_kb,omitempty"`
	// WorkingSetKB sizes the resident set of a hotset pattern. Zero
	// means 512.
	WorkingSetKB uint64 `json:"working_set_kb,omitempty"`
	// Strides is the empirical stride distribution of a stride pattern:
	// each access's advance is drawn from it by weight. Empty means one
	// unit (64-byte) stride.
	Strides []Stride `json:"strides,omitempty"`
	// Gap inserts that many non-memory micro-ops after every access —
	// the pattern's compute intensity.
	Gap int `json:"gap,omitempty"`
	// GapJitter adds a seeded uniform extra of [0, GapJitter) idle ops
	// per access, de-synchronizing otherwise lock-step clients.
	GapJitter int `json:"gap_jitter,omitempty"`
	// StoreEvery makes every Nth access a store (writeback traffic).
	// Zero means loads only.
	StoreEvery int `json:"store_every,omitempty"`
	// RunBlocks is how many consecutive blocks a chase or random pattern
	// touches per node visit (default 1, maximum 64). The first access
	// of a chase visit is the dependent pointer load; the rest are
	// payload reads of the node.
	RunBlocks int `json:"run_blocks,omitempty"`
}

// Stride is one weighted entry of an empirical stride distribution.
// Negative strides walk downward.
type Stride struct {
	Bytes  int64   `json:"bytes"`
	Weight float64 `json:"weight,omitempty"` // zero means 1
}

// Defaults (applied by normalize; Canonical hashes the normalized form so
// explicit defaults and omitted fields fingerprint identically).
const (
	defaultFootprintKB  = 64 * 1024
	defaultWorkingSetKB = 512
	maxRunBlocks        = 64
	// weightScale converts float weights to fixed point once, at
	// generator construction, so scheduling never does float arithmetic.
	weightScale = 1000
)

// Lanes returns the number of hardware lanes the spec composes onto:
// one more than the highest client lane index.
func (s *Spec) Lanes() int {
	lanes := 1
	for _, ph := range s.Phases {
		for _, c := range ph.Clients {
			if c.Lane+1 > lanes {
				lanes = c.Lane + 1
			}
		}
	}
	return lanes
}

// validName reports whether a spec name is usable as a registry key and
// file name.
func validName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Validate checks the spec's structure; every failure wraps ErrInvalid.
func (s *Spec) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
	}
	if !validName(s.Name) {
		return fail("name %q must be 1-64 chars of [a-z0-9._-]", s.Name)
	}
	if len(s.Phases) == 0 {
		return fail("spec %s has no phases", s.Name)
	}
	laneSeen := make(map[int]bool)
	for pi, ph := range s.Phases {
		if ph.Ops == 0 && len(s.Phases) > 1 {
			return fail("phase %d (%s): ops is required when a spec has multiple phases", pi, ph.Name)
		}
		if len(ph.Clients) == 0 {
			return fail("phase %d (%s) has no clients", pi, ph.Name)
		}
		for ci, c := range ph.Clients {
			where := fmt.Sprintf("phase %d client %d (%s)", pi, ci, c.Name)
			if c.Lane < 0 || c.Lane >= MaxLanes {
				return fail("%s: lane %d out of range 0..%d", where, c.Lane, MaxLanes-1)
			}
			laneSeen[c.Lane] = true
			if c.Weight < 0 {
				return fail("%s: negative weight %g", where, c.Weight)
			}
			if c.BurstOn < 0 || c.BurstOff < 0 {
				return fail("%s: negative burst_on/burst_off", where)
			}
			p := c.Pattern
			switch p.Kind {
			case KindStride, KindChase, KindRandom, KindHotset:
			case "":
				return fail("%s: pattern.kind is required (stride, chase, random or hotset)", where)
			default:
				return fail("%s: unknown pattern kind %q (want stride, chase, random or hotset)", where, p.Kind)
			}
			if p.Gap < 0 || p.GapJitter < 0 || p.StoreEvery < 0 {
				return fail("%s: gap, gap_jitter and store_every must be non-negative", where)
			}
			if p.RunBlocks < 0 || p.RunBlocks > maxRunBlocks {
				return fail("%s: run_blocks %d out of range 0..%d", where, p.RunBlocks, maxRunBlocks)
			}
			if p.Kind == KindStride {
				for si, st := range p.Strides {
					if st.Weight < 0 {
						return fail("%s: stride %d has negative weight", where, si)
					}
					if st.Bytes == 0 {
						return fail("%s: stride %d is zero bytes (the pattern would never advance)", where, si)
					}
				}
			} else if len(p.Strides) > 0 {
				return fail("%s: strides only apply to stride patterns", where)
			}
			if p.Kind != KindHotset && p.WorkingSetKB != 0 {
				return fail("%s: working_set_kb only applies to hotset patterns", where)
			}
			if p.Kind == KindHotset && p.FootprintKB != 0 {
				return fail("%s: hotset patterns size themselves with working_set_kb, not footprint_kb", where)
			}
		}
	}
	// Lanes must be contiguous: a lane no client ever targets would
	// simulate an empty core forever.
	for lane := 0; lane < s.Lanes(); lane++ {
		if !laneSeen[lane] {
			return fail("no client targets lane %d (lanes must be contiguous from 0)", lane)
		}
	}
	return nil
}

// normalize returns a deep copy with every defaulted field made explicit,
// so Canonical — and therefore fingerprints — cannot distinguish a spec
// that spells out a default from one that omits it.
func (s *Spec) normalize() Spec {
	out := Spec{Name: s.Name, About: s.About, Phases: make([]Phase, len(s.Phases))}
	for pi, ph := range s.Phases {
		np := Phase{Name: ph.Name, Ops: ph.Ops, Clients: make([]Client, len(ph.Clients))}
		for ci, c := range ph.Clients {
			if c.Weight == 0 {
				c.Weight = 1
			}
			if c.BurstOn == 0 {
				c.BurstOn = 1
			}
			p := &c.Pattern
			switch p.Kind {
			case KindHotset:
				if p.WorkingSetKB == 0 {
					p.WorkingSetKB = defaultWorkingSetKB
				}
			default:
				if p.FootprintKB == 0 {
					p.FootprintKB = defaultFootprintKB
				}
			}
			if p.Kind == KindStride && len(p.Strides) == 0 {
				p.Strides = []Stride{{Bytes: BlockBytes}}
			}
			for si := range p.Strides {
				if p.Strides[si].Weight == 0 {
					p.Strides[si].Weight = 1
				}
			}
			if (p.Kind == KindChase || p.Kind == KindRandom) && p.RunBlocks == 0 {
				p.RunBlocks = 1
			}
			np.Clients[ci] = c
		}
		out.Phases[pi] = np
	}
	return out
}

// Canonical returns the spec's canonical JSON: the normalized form with
// every default explicit, marshaled with a fixed field order. Two specs
// share canonical bytes exactly when they generate identical streams for
// every seed; fingerprints and the content-addressed store key on it.
func (s *Spec) Canonical() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.normalize()
	return json.Marshal(&n)
}

// Parse decodes a spec from JSON (first non-space byte '{') or the YAML
// subset (see yaml.go), applies strict field checking so typos surface as
// errors rather than silent defaults, and validates.
func Parse(data []byte) (*Spec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var raw []byte
	if len(trimmed) > 0 && trimmed[0] == '{' {
		raw = data
	} else {
		v, err := yamlToValue(data)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		j, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		raw = j
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a spec file; .json parses as JSON, anything else
// (.yaml, .yml) through the YAML-subset path — Parse sniffs either way,
// so the extension only matters for error wording.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return s, nil
}

// String summarizes the spec for logs and listings.
func (s *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "spec %s: %d phase(s), %d lane(s)", s.Name, len(s.Phases), s.Lanes())
	return b.String()
}
