package spec

import (
	"fdpsim/internal/cpu"
)

// The generator turns a validated Spec into per-lane cpu.Sources. All
// randomness flows from xorshift64* states seeded by splitmix64 over
// (seed, lane, phase, client), so the stream is a pure function of
// (spec, seed) — stable across Go releases and platforms. The hot path
// reuses one micro-op queue per lane and allocates nothing in steady
// state, matching the built-in kernel generators.

// rng is the same xorshift64* generator the built-in workloads use.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// n returns a value in [0, n).
func (r *rng) n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// mix folds values into a non-zero rng seed (splitmix64 finalizer).
func mix(vals ...uint64) uint64 {
	x := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		x += v + 0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
	}
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	return x
}

// hashAddr maps a value to a block-aligned address inside a footprint —
// the deterministic stand-in for a pointer field or an index lookup.
func hashAddr(a, footprint uint64) uint64 {
	x := a
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return (x % (footprint / BlockBytes)) * BlockBytes
}

// loadRingDeps bounds the dependence distance a chase client may express:
// the CPU's load ring tracks 4096 recent loads, so reach-backs are clamped
// well below it.
const loadRingDeps = 4000

// clientState is one client's persistent generation state. It survives
// phase wrap-around, so a stream resumes where it left off — like a real
// program returning to a phase.
type clientState struct {
	// schedule
	weight   uint64
	burstOn  int
	burstOff int

	// pattern
	kind       string
	footprint  uint64 // bytes (working set for hotset)
	gap        int
	gapJitter  int
	storeEvery int
	runBlocks  int

	// stride
	strideCum []uint64 // cumulative fixed-point stride weights
	strideVal []int64
	strideTot uint64
	pos       int64 // current offset within the footprint

	// chase
	ptr           uint64 // current node address (offset in footprint)
	lastChaseLoad uint64 // global lane load count at the last hop

	// hotset
	hot uint64

	base     uint64 // private address-space base
	pcBase   uint64 // private PC range (prefetcher training state)
	accesses uint64 // for store_every
	r        rng
}

// laneGen composes the clients of one lane across all phases into an
// unbounded micro-op stream. It reuses the refillable-queue chassis of the
// built-in kernels: Next drains a queue that fill() tops up one scheduling
// turn at a time.
type laneGen struct {
	name  string
	queue []cpu.MicroOp
	qi    int

	phases   []phaseState
	phaseIdx int
	phaseOps uint64 // micro-ops emitted within the current phase
	sched    rng    // scheduling picks (client selection)

	loads uint64 // loads emitted so far, for chase dependence distances
}

type phaseState struct {
	ops     uint64
	clients []*clientState
	cum     []uint64 // cumulative weights for O(log n)-free linear pick
	total   uint64
}

// Source builds the generator for one lane. The lane must be in
// [0, s.Lanes()); the spec must be valid (Validate or Parse first —
// Source assumes normalized semantics and applies the same defaults).
func (s *Spec) Source(lane int, seed uint64) cpu.Source {
	n := s.normalize()
	g := &laneGen{name: n.Name, sched: rng{s: mix(seed, uint64(lane), 0x5ced)}}
	// Client identity spans phases by (phase, index): the same logical
	// client listed in two phases is two states — specs wanting continuity
	// express it as one phase with bursty clients instead.
	clientIdx := 0
	for pi, ph := range n.Phases {
		ps := phaseState{ops: ph.Ops}
		for ci, c := range ph.Clients {
			clientIdx++
			if c.Lane != lane {
				continue
			}
			cs := &clientState{
				weight:     fixedWeight(c.Weight),
				burstOn:    c.BurstOn,
				burstOff:   c.BurstOff,
				kind:       c.Pattern.Kind,
				gap:        c.Pattern.Gap,
				gapJitter:  c.Pattern.GapJitter,
				storeEvery: c.Pattern.StoreEvery,
				runBlocks:  c.Pattern.RunBlocks,
				base:       uint64(clientIdx) << 34, // 16 GB per client
				pcBase:     0x400000 + uint64(clientIdx)<<12,
				r:          rng{s: mix(seed, uint64(lane), uint64(pi), uint64(ci))},
			}
			switch cs.kind {
			case KindHotset:
				cs.footprint = c.Pattern.WorkingSetKB << 10
			default:
				cs.footprint = c.Pattern.FootprintKB << 10
			}
			if cs.footprint < BlockBytes {
				cs.footprint = BlockBytes
			}
			if cs.kind == KindStride {
				for _, st := range c.Pattern.Strides {
					cs.strideTot += fixedWeight(st.Weight)
					cs.strideCum = append(cs.strideCum, cs.strideTot)
					cs.strideVal = append(cs.strideVal, st.Bytes)
				}
			}
			if cs.kind == KindChase {
				cs.ptr = hashAddr(cs.r.next(), cs.footprint)
			}
			ps.clients = append(ps.clients, cs)
			ps.total += cs.weight
			ps.cum = append(ps.cum, ps.total)
		}
		g.phases = append(g.phases, ps)
	}
	return g
}

// Sources builds one generator per lane, ready to attach to the cores or
// hardware threads of a multicore/SMT composition.
func (s *Spec) Sources(seed uint64) []cpu.Source {
	out := make([]cpu.Source, s.Lanes())
	for lane := range out {
		out[lane] = s.Source(lane, seed)
	}
	return out
}

// fixedWeight converts a (already defaulted, non-negative) float weight
// to fixed point so scheduling is integer-only and bit-reproducible.
func fixedWeight(w float64) uint64 {
	fw := uint64(w*weightScale + 0.5)
	if fw == 0 {
		fw = 1
	}
	return fw
}

// Name implements cpu.Source.
func (g *laneGen) Name() string { return g.name }

// Next implements cpu.Source.
func (g *laneGen) Next() cpu.MicroOp {
	for g.qi >= len(g.queue) {
		g.queue = g.queue[:0]
		g.qi = 0
		g.fill()
	}
	op := g.queue[g.qi]
	g.qi++
	return op
}

// fill emits one scheduling turn: pick a client of the current phase by
// weight, let it issue a burst, then advance the phase clock.
func (g *laneGen) fill() {
	ph := &g.phases[g.phaseIdx]
	if len(ph.clients) == 0 {
		// No client targets this lane in this phase: the lane idles
		// through it (a compute phase from the memory system's view).
		idle := ph.ops - g.phaseOps
		if idle > 256 {
			idle = 256
		}
		if idle == 0 {
			idle = 1 // defensive: always make progress
		}
		for i := uint64(0); i < idle; i++ {
			g.emit(cpu.MicroOp{Kind: cpu.Nop})
		}
		g.advance(idle)
		return
	}
	pick := g.sched.n(ph.total)
	var c *clientState
	for i, cum := range ph.cum {
		if pick < cum {
			c = ph.clients[i]
			break
		}
	}
	before := len(g.queue)
	for b := 0; b < c.burstOn; b++ {
		g.emitAccess(c)
	}
	for i := 0; i < c.burstOff; i++ {
		g.emit(cpu.MicroOp{Kind: cpu.Nop})
	}
	g.advance(uint64(len(g.queue) - before))
}

// advance moves the phase clock and wraps to the next phase when the
// current one's per-lane op budget is spent.
func (g *laneGen) advance(emitted uint64) {
	g.phaseOps += emitted
	ph := &g.phases[g.phaseIdx]
	if ph.ops > 0 && g.phaseOps >= ph.ops {
		g.phaseOps = 0
		g.phaseIdx++
		if g.phaseIdx == len(g.phases) {
			g.phaseIdx = 0
		}
	}
}

func (g *laneGen) emit(op cpu.MicroOp) {
	if op.Kind == cpu.Load {
		g.loads++
	}
	g.queue = append(g.queue, op)
}

// gapNops emits a client's inter-access think time.
func (g *laneGen) gapNops(c *clientState) {
	n := c.gap
	if c.gapJitter > 0 {
		n += int(c.r.n(uint64(c.gapJitter)))
	}
	for i := 0; i < n; i++ {
		g.emit(cpu.MicroOp{Kind: cpu.Nop})
	}
}

// isStore consults the client's store_every cadence.
func (c *clientState) isStore() bool {
	return c.storeEvery > 0 && c.accesses%uint64(c.storeEvery) == uint64(c.storeEvery-1)
}

// emitAccess issues one pattern access (which may touch several blocks).
func (g *laneGen) emitAccess(c *clientState) {
	switch c.kind {
	case KindStride:
		// Draw the advance from the empirical distribution; the position
		// wraps within the footprint in both directions.
		addr := c.base + uint64(c.pos)
		if c.isStore() {
			g.emit(cpu.MicroOp{Kind: cpu.Store, Addr: addr, PC: c.pcBase + 4})
		} else {
			g.emit(cpu.MicroOp{Kind: cpu.Load, Addr: addr, PC: c.pcBase})
		}
		c.accesses++
		pick := c.r.n(c.strideTot)
		for i, cum := range c.strideCum {
			if pick < cum {
				c.pos += c.strideVal[i]
				break
			}
		}
		fp := int64(c.footprint)
		for c.pos < 0 {
			c.pos += fp
		}
		for c.pos >= fp {
			c.pos -= fp
		}
		g.gapNops(c)

	case KindChase:
		// The hop load depends on the previous hop: its producer is the
		// lane's lastChaseLoad-th load, Dep counts loads back from this
		// one. Payload reads of the node depend on the hop itself.
		next := hashAddr(c.ptr+0x9e3779b97f4a7c15, c.footprint)
		dep := 0
		if c.lastChaseLoad > 0 {
			d := g.loads + 1 - c.lastChaseLoad
			if d > loadRingDeps {
				d = loadRingDeps
			}
			dep = int(d)
		}
		g.emit(cpu.MicroOp{Kind: cpu.Load, Addr: c.base + next, PC: c.pcBase, Dep: dep})
		c.lastChaseLoad = g.loads
		c.ptr = next
		c.accesses++
		for r := 1; r < c.runBlocks; r++ {
			g.emit(cpu.MicroOp{Kind: cpu.Load, Addr: c.base + next + uint64(r)*BlockBytes,
				PC: c.pcBase + uint64(r)*4, Dep: r})
		}
		g.gapNops(c)

	case KindRandom:
		// Independent short run at a random block: trains stream entries
		// whose prefetches never pay off.
		node := hashAddr(c.r.next(), c.footprint)
		for r := 0; r < c.runBlocks; r++ {
			addr := c.base + node + uint64(r)*BlockBytes
			pc := c.pcBase + uint64(r)*4
			if r == 0 && c.isStore() {
				g.emit(cpu.MicroOp{Kind: cpu.Store, Addr: addr, PC: pc})
			} else {
				g.emit(cpu.MicroOp{Kind: cpu.Load, Addr: addr, PC: pc})
			}
		}
		c.accesses++
		g.gapNops(c)

	case KindHotset:
		// A 9-block stride defeats sequential prefetching while cycling
		// the resident set (the built-in hotcold idiom).
		addr := c.base + c.hot
		if c.isStore() {
			g.emit(cpu.MicroOp{Kind: cpu.Store, Addr: addr, PC: c.pcBase + 4})
		} else {
			g.emit(cpu.MicroOp{Kind: cpu.Load, Addr: addr, PC: c.pcBase})
		}
		c.accesses++
		c.hot = (c.hot + 9*BlockBytes) % c.footprint
		g.gapNops(c)
	}
}
