package spec

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// TestYAMLJSONEquivalence: the worked example from docs/WORKLOADS.md in
// both syntaxes must parse to identical canonical bytes.
func TestYAMLJSONEquivalence(t *testing.T) {
	yamlSrc := []byte(`
# A two-phase service: streaming scan, then pointer-heavy serving.
name: svc.example
about: "scan then serve"
phases:
  - name: scan
    ops: 50000
    clients:
      - name: stream
        lane: 0
        weight: 3.5
        pattern:
          kind: stride
          footprint_kb: 4096
          strides:
            - bytes: 64
              weight: 9
            - bytes: -128   # occasional back-step
  - name: serve
    ops: 50000
    clients:
      - name: pointer
        lane: 0
        burst_on: 4
        burst_off: 16
        pattern:
          kind: chase
          footprint_kb: 2048
          run_blocks: 2
`)
	jsonSrc := []byte(`{
		"name": "svc.example",
		"about": "scan then serve",
		"phases": [
			{"name": "scan", "ops": 50000, "clients": [
				{"name": "stream", "lane": 0, "weight": 3.5, "pattern": {
					"kind": "stride", "footprint_kb": 4096,
					"strides": [{"bytes": 64, "weight": 9}, {"bytes": -128}]
				}}
			]},
			{"name": "serve", "ops": 50000, "clients": [
				{"name": "pointer", "lane": 0, "burst_on": 4, "burst_off": 16, "pattern": {
					"kind": "chase", "footprint_kb": 2048, "run_blocks": 2
				}}
			]}
		]
	}`)
	fromYAML, err := Parse(yamlSrc)
	if err != nil {
		t.Fatalf("yaml parse: %v", err)
	}
	fromJSON, err := Parse(jsonSrc)
	if err != nil {
		t.Fatalf("json parse: %v", err)
	}
	a, err := fromYAML.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := fromJSON.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical forms differ:\nyaml: %s\njson: %s", a, b)
	}
}

func TestYAMLValues(t *testing.T) {
	v, err := yamlToValue([]byte(`
str: plain
quoted: "a: b # not a comment"
single: 'x'
int: -42
float: 2.5
yes: true
no: False
nil: null
tilde: ~
list:
  - 1
  - two
  - true
nested:
  inner: 3
`))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"str":    "plain",
		"quoted": "a: b # not a comment",
		"single": "x",
		"int":    int64(-42),
		"float":  2.5,
		"yes":    true,
		"no":     false,
		"nil":    nil,
		"tilde":  nil,
		"list":   []any{int64(1), "two", true},
		"nested": map[string]any{"inner": int64(3)},
	}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("yamlToValue = %#v\nwant %#v", v, want)
	}
}

func TestYAMLSequenceOfMaps(t *testing.T) {
	v, err := yamlToValue([]byte(`
items:
  - name: a
    value: 1
  - name: b
    value: 2
  - plain
`))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{"items": []any{
		map[string]any{"name": "a", "value": int64(1)},
		map[string]any{"name": "b", "value": int64(2)},
		"plain",
	}}
	if !reflect.DeepEqual(v, want) {
		t.Fatalf("yamlToValue = %#v\nwant %#v", v, want)
	}
}

func TestYAMLErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"comment only", "# nothing here\n"},
		{"tab indent", "a:\n\tb: 1\n"},
		{"duplicate key", "a: 1\na: 2\n"},
		{"bare scalar line in map", "a: 1\njust-a-scalar\n"},
		{"dedent confusion", "a:\n    b: 1\n  c: 2\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := yamlToValue([]byte(tc.src)); err == nil {
				t.Fatalf("expected error for %q", tc.src)
			}
		})
	}
	// And through Parse: YAML errors must wrap ErrInvalid.
	if _, err := Parse([]byte("a:\n\tb: 1\n")); !errors.Is(err, ErrInvalid) {
		t.Fatalf("Parse tab-indent: got %v, want ErrInvalid", err)
	}
}

// TestLoadExampleSpec pins the checked-in docs/WORKLOADS.md worked
// example: it must keep loading, and generating from it must stay
// deterministic.
func TestLoadExampleSpec(t *testing.T) {
	sp, err := Load("testdata/svc.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "svc.mixed" || sp.Lanes() != 1 || len(sp.Phases) != 2 {
		t.Fatalf("example spec: name=%q lanes=%d phases=%d", sp.Name, sp.Lanes(), len(sp.Phases))
	}
	a, b := sp.Source(0, 7), sp.Source(0, 7)
	for i := 0; i < 50_000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("example spec not deterministic at op %d", i)
		}
	}
}
