package workload

import "fdpsim/internal/cpu"

// The 17 memory-intensive workloads (the paper's main evaluation set).
// Each generator documents the SPEC CPU2000 archetype it stands in for
// and the prefetcher behaviour it is designed to elicit.

const (
	kb = uint64(1) << 10
	mb = uint64(1) << 20
)

func init() {
	register("seqstream", true,
		"one long ascending unit-stride stream (swim-like; prefetch-friendly)",
		newSeqStream)
	register("multistream", true,
		"8 dense concurrent streams saturating the bus (accurate but late prefetches)",
		newMultiStream)
	register("revstream", true,
		"4 descending streams (equake-like; tests direction training)",
		newRevStream)
	register("elemstride", true,
		"40-byte element stride touching every block (mgrid-like; prefetch-friendly)",
		newElemStride)
	register("stride3", true,
		"3-block stride; stream prefetcher overfetches 3x (bandwidth-waste case, mild gain)",
		newStride3)
	register("stencil3", true,
		"3 row-offset streams advancing together (facerec-like)",
		newStencil3)
	register("transpose", true,
		"column-major walk, 8-block stride (stream-hostile, stride/GHB-friendly)",
		newTranspose)
	register("scanmod", true,
		"read-modify-write sweep generating writeback traffic (swim store side)",
		newScanMod)
	register("burststream", true,
		"streaming bursts separated by compute phases (galgel-like)",
		newBurstStream)
	register("shortstream", true,
		"many short 64-block streams, one load per block (ramp-limited; rewards degree)",
		newShortStream)
	register("spmv", true,
		"CSR sparse mat-vec: two index streams plus random x[] (equake-like)",
		newSpmv)
	register("chaseseq", true,
		"dependent pointer chase over a sequential heap (serial but streamable)",
		newChaseSeq)
	register("chaserand", true,
		"dependent chase over a random heap with a hot set (mcf-like; big prefetch loser)",
		newChaseRand)
	register("randsparse", true,
		"independent short random runs plus hot set (ammp-like; prefetch loser)",
		newRandSparse)
	register("mixedphase", true,
		"alternating streaming and hostile phases (tests FDP adaptation)",
		newMixedPhase)
	register("hotcold", true,
		"hot cache-resident set disturbed by cold random runs (twolf/vpr-like)",
		newHotCold)
	register("regionwalk", true,
		"repeated ascending sweeps over a 4 MB region (bzip2/vortex-like)",
		newRegionWalk)
}

func newSeqStream(seed uint64) cpu.Source {
	const footprint = 256 * mb
	cur := uint64(0)
	g := &gen{name: "seqstream"}
	g.fill = func(g *gen) {
		for i := 0; i < 64; i++ {
			g.load(cur%footprint, pc(0))
			cur += 8
			g.nops(3)
		}
	}
	return g
}

func newMultiStream(seed uint64) cpu.Source {
	const streams = 8
	cur := make([]uint64, streams)
	for i := range cur {
		// Stagger the bases by an odd block count so the streams are not
		// set-aligned in the caches.
		cur[i] = uint64(i)*32*mb + uint64(i)*97*BlockBytes
	}
	g := &gen{name: "multistream"}
	g.fill = func(g *gen) {
		for s := 0; s < streams; s++ {
			g.load(cur[s], pc(s))
			cur[s] += 8
			g.nops(1)
		}
	}
	return g
}

func newRevStream(seed uint64) cpu.Source {
	const streams = 4
	cur := make([]uint64, streams)
	for i := range cur {
		// Odd block stagger keeps the streams out of set alignment.
		cur[i] = uint64(i+1)*48*mb + uint64(i)*53*BlockBytes
	}
	g := &gen{name: "revstream"}
	g.fill = func(g *gen) {
		for s := 0; s < streams; s++ {
			g.load(cur[s], pc(s))
			if cur[s] >= 8 {
				cur[s] -= 8
			}
			g.nops(3)
		}
	}
	return g
}

func newElemStride(seed uint64) cpu.Source {
	const footprint = 512 * mb
	cur := uint64(0)
	g := &gen{name: "elemstride"}
	g.fill = func(g *gen) {
		for i := 0; i < 16; i++ {
			g.load(cur%footprint, pc(0))
			cur += 40 // 5 eight-byte elements: every block is touched
			g.nops(20)
		}
	}
	return g
}

func newStride3(seed uint64) cpu.Source {
	const footprint = 512 * mb
	cur := uint64(0)
	g := &gen{name: "stride3"}
	g.fill = func(g *gen) {
		for i := 0; i < 16; i++ {
			g.load(cur%footprint, pc(0))
			cur += 3 * BlockBytes
			g.nops(48)
		}
	}
	return g
}

func newStencil3(seed uint64) cpu.Source {
	const row = 4*mb + 37*BlockBytes // odd block count: no set alignment
	cur := uint64(0)
	g := &gen{name: "stencil3"}
	g.fill = func(g *gen) {
		for i := 0; i < 16; i++ {
			g.load(cur, pc(0))
			g.load(cur+row, pc(1))
			g.load(cur+2*row, pc(2))
			cur = (cur + 8) % row
			g.nops(9)
		}
	}
	return g
}

func newTranspose(seed uint64) cpu.Source {
	const rowBytes = 8 * BlockBytes // column walk jumps 8 blocks per element
	const rows = 4096
	cur, col := uint64(0), uint64(0)
	rowIdx := 0
	g := &gen{name: "transpose"}
	g.fill = func(g *gen) {
		for i := 0; i < 16; i++ {
			g.load(cur+col*8, pc(0))
			cur += rowBytes
			rowIdx++
			if rowIdx == rows {
				rowIdx = 0
				cur = 0
				col = (col + 1) % 8
			}
			g.nops(12)
		}
	}
	return g
}

func newScanMod(seed uint64) cpu.Source {
	const footprint = 256 * mb
	cur := uint64(0)
	g := &gen{name: "scanmod"}
	g.fill = func(g *gen) {
		for i := 0; i < 32; i++ {
			g.load(cur%footprint, pc(0))
			g.store(cur%footprint, pc(1))
			cur += 8
			g.nops(4)
		}
	}
	return g
}

func newBurstStream(seed uint64) cpu.Source {
	const footprint = 256 * mb
	cur := uint64(0)
	g := &gen{name: "burststream"}
	g.fill = func(g *gen) {
		for i := 0; i < 512; i++ {
			g.load(cur%footprint, pc(0))
			cur += 8
			g.nops(1)
		}
		g.nops(3072)
	}
	return g
}

func newShortStream(seed uint64) cpu.Source {
	// One load per block over streams of 64 blocks that restart at random
	// bases. With a single trigger per block, a degree-N prefetcher's
	// frontier only grows N-1 blocks per access, so conservative configs
	// never escape the demand stream (all-late prefetches) while
	// aggressive ones ramp ahead within a few accesses — the paper's
	// timeliness motivation for aggressiveness.
	const footprint = 512 * mb
	const streamBlocks = 160
	r := newRNG(seed ^ 0x5057)
	cur := uint64(0)
	left := 0
	g := &gen{name: "shortstream"}
	g.fill = func(g *gen) {
		for i := 0; i < 16; i++ {
			if left == 0 {
				cur = hashAddr(r.next(), footprint)
				left = streamBlocks
			}
			g.load(cur, pc(0))
			cur += BlockBytes
			left--
			g.nops(50)
		}
	}
	return g
}

func newSpmv(seed uint64) cpu.Source {
	const xFootprint = 4 * mb
	const xBase = 1 << 33
	const ciBase = 1 << 32
	rp, ci := uint64(0), uint64(0)
	r := newRNG(seed ^ 0x5b3d)
	g := &gen{name: "spmv"}
	g.fill = func(g *gen) {
		for row := 0; row < 4; row++ {
			g.load(rp, pc(0)) // row pointer stream
			rp += 8
			g.nops(2)
			for k := 0; k < 4; k++ {
				g.load(ciBase+ci, pc(1)) // column index stream
				ci += 8
				g.loadDep(xBase+hashAddr(r.next(), xFootprint), pc(2), 1)
				g.nops(2)
			}
		}
	}
	return g
}

func newChaseSeq(seed uint64) cpu.Source {
	const footprint = 256 * mb
	cur := uint64(0)
	g := &gen{name: "chaseseq"}
	g.fill = func(g *gen) {
		for i := 0; i < 16; i++ {
			g.loadDep(cur%footprint, pc(0), 1)    // follow the next pointer
			g.loadDep(cur%footprint+8, pc(1), 1)  // payload reads depend on
			g.loadDep(cur%footprint+16, pc(2), 1) // the pointer load's block
			cur += BlockBytes
			g.nops(12)
		}
	}
	return g
}

func newChaseRand(seed uint64) cpu.Source {
	// mcf-like: several concurrent dependent chases over a random 64 MB
	// heap. Each node visit touches a short ascending three-block run —
	// exactly enough to train a stream tracking entry whose prefetches are
	// then all junk — while a 512 KB hot set provides the reuse that junk
	// destroys. Aggressive conventional prefetching loses heavily here;
	// FDP must throttle down and insert at LRU.
	const heap = 64 * mb
	const hotBytes = 512 * kb
	const hotBase = 1 << 34
	const chains = 4
	cur := [chains]uint64{0, 1 * mb, 2 * mb, 3 * mb}
	hot := uint64(0)
	hop := uint64(0)
	g := &gen{name: "chaserand"}
	g.fill = func(g *gen) {
		// One round advances every chain one hop. Loads per round:
		// chains*3 chase/payload + 16 hot = 28; the chase load of chain c
		// reaches back exactly one round of loads to its own predecessor.
		for c := 0; c < chains; c++ {
			next := hashAddr(cur[c]+hop*0x9e37+uint64(c)*0x7f4a, heap)
			g.loadDep(next, pc(c), chains*3+16)
			g.loadDep(next+BlockBytes, pc(chains+c), 1)
			g.loadDep(next+2*BlockBytes, pc(2*chains+c), 2)
			cur[c] = next
		}
		for h := 0; h < 16; h++ {
			g.load(hotBase+hot, pc(3*chains+h))
			// A 9-block stride cycles through the whole hot set (gcd with
			// the block count is 1) while defeating sequential prefetching.
			hot = (hot + 9*BlockBytes) % hotBytes
		}
		// Enough compute that the no-prefetch baseline leaves bus headroom
		// (mcf is latency-, not bandwidth-, bound without a prefetcher).
		g.nops(64)
		hop++
	}
	return g
}

func newRandSparse(seed uint64) cpu.Source {
	const footprint = 64 * mb
	const hotBytes = 128 * kb
	const hotBase = 1 << 34
	r := newRNG(seed ^ 0xa11ce)
	hot := uint64(0)
	g := &gen{name: "randsparse"}
	g.fill = func(g *gen) {
		for i := 0; i < 8; i++ {
			base := hashAddr(r.next(), footprint)
			// Independent three-block run: enough to train a stream entry,
			// far too short for its prefetches to be useful.
			g.load(base, pc(0))
			g.load(base+BlockBytes, pc(1))
			g.load(base+2*BlockBytes, pc(2))
			g.load(hotBase+hot, pc(3))
			g.load(hotBase+(hot+hotBytes/2)%hotBytes, pc(4))
			hot = (hot + 3*BlockBytes) % hotBytes
			// Leave bus headroom at the no-prefetch baseline so the loss
			// under aggressive prefetching is a prefetching effect.
			g.nops(56)
		}
	}
	return g
}

func newMixedPhase(seed uint64) cpu.Source {
	// Streaming phases are three times as long as the hostile ones, as in
	// programs whose pointer-heavy phases are a minority of execution —
	// aggressive prefetching still loses overall, and FDP must ride the
	// transitions.
	const streamOps = 300000
	const hostileOps = 100000
	streamGen := newSeqStream(seed).(*gen)
	hostileGen := newChaseRand(seed).(*gen)
	emitted := 0
	inStream := true
	g := &gen{name: "mixedphase"}
	g.fill = func(g *gen) {
		src, limit := hostileGen, hostileOps
		if inStream {
			src, limit = streamGen, streamOps
		}
		for i := 0; i < 64; i++ {
			g.emit(src.Next())
			emitted++
			if emitted >= limit {
				emitted = 0
				inStream = !inStream
				return
			}
		}
	}
	return g
}

func newHotCold(seed uint64) cpu.Source {
	const hotBytes = 512 * kb
	const coldFootprint = 32 * mb
	const coldBase = 1 << 34
	r := newRNG(seed ^ 0xb0)
	hot := uint64(0)
	g := &gen{name: "hotcold"}
	g.fill = func(g *gen) {
		for i := 0; i < 8; i++ {
			for h := 0; h < 12; h++ {
				g.load(hot, pc(h))
				hot = (hot + 9*BlockBytes) % hotBytes
				g.nops(2)
			}
			base := coldBase + hashAddr(r.next(), coldFootprint)
			g.load(base, pc(8))
			g.load(base+BlockBytes, pc(9))
			g.load(base+2*BlockBytes, pc(10))
			g.nops(27)
		}
	}
	return g
}

func newRegionWalk(seed uint64) cpu.Source {
	const region = 4 * mb
	cur := uint64(0)
	g := &gen{name: "regionwalk"}
	g.fill = func(g *gen) {
		for i := 0; i < 64; i++ {
			g.load(cur, pc(0))
			cur = (cur + 8) % region
			g.nops(3)
		}
	}
	return g
}
