// Package workload provides the synthetic benchmark programs driving the
// simulator. The paper evaluates 17 memory-intensive SPEC CPU2000
// benchmarks plus the remaining 9 low-potential ones; the SPEC binaries
// and the authors' traces are unavailable, so each benchmark is replaced
// by a deterministic micro-op generator reproducing the archetypal memory
// behaviour the paper's analysis depends on (DESIGN.md Section 7 maps
// every workload to the SPEC behaviour it stands in for): long unit-stride
// streams, many concurrent streams, descending streams, non-unit strides,
// dependent pointer chases over sequential and randomized heaps, indexed
// gathers, sparse matrix-vector products, phase-alternating mixes,
// pollution-sensitive hot sets, and cache-resident loops.
package workload

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"fdpsim/internal/cpu"
	"fdpsim/internal/workload/spec"
)

// ErrUnknown is the sentinel wrapped by New when asked for a workload
// name that is not registered. Callers branch with errors.Is.
var ErrUnknown = errors.New("workload: unknown workload")

// BlockBytes is the cache-block size shared with the memory hierarchy.
const BlockBytes = 64

// rng is a xorshift64* generator: tiny, fast and stable across Go
// releases so workloads are bit-reproducible.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// n returns a value in [0, n).
func (r *rng) n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// hashAddr maps an address to a pseudo-random successor inside a footprint
// — the deterministic stand-in for following a pointer field.
func hashAddr(a, footprint uint64) uint64 {
	x := a
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return (x % (footprint / BlockBytes)) * BlockBytes
}

// gen is the common chassis: Next drains a refillable micro-op queue.
type gen struct {
	name  string
	queue []cpu.MicroOp
	qi    int
	fill  func(g *gen)
}

// Name implements cpu.Source.
func (g *gen) Name() string { return g.name }

// Next implements cpu.Source.
func (g *gen) Next() cpu.MicroOp {
	for g.qi >= len(g.queue) {
		g.queue = g.queue[:0]
		g.qi = 0
		g.fill(g)
	}
	op := g.queue[g.qi]
	g.qi++
	return op
}

func (g *gen) emit(op cpu.MicroOp) { g.queue = append(g.queue, op) }

func (g *gen) nops(n int) {
	for i := 0; i < n; i++ {
		g.emit(cpu.MicroOp{Kind: cpu.Nop})
	}
}

func (g *gen) load(addr, pc uint64) {
	g.emit(cpu.MicroOp{Kind: cpu.Load, Addr: addr, PC: pc})
}

func (g *gen) loadDep(addr, pc uint64, dep int) {
	g.emit(cpu.MicroOp{Kind: cpu.Load, Addr: addr, PC: pc, Dep: dep})
}

func (g *gen) store(addr, pc uint64) {
	g.emit(cpu.MicroOp{Kind: cpu.Store, Addr: addr, PC: pc})
}

// pc builds a distinct program-counter value for a static load site so the
// PC-indexed prefetchers see stable instruction addresses.
func pc(site int) uint64 { return 0x400000 + uint64(site)*4 }

// Well-known registry tags. Every workload carries either TagBuiltin (the
// hand-coded kernels) or TagSpec (declarative specs registered at run
// time); builtins additionally carry the paper's benchmark-set split.
const (
	TagBuiltin = "builtin"
	// TagMemIntensive marks the paper's 17-benchmark evaluation set.
	TagMemIntensive = "memintensive"
	// TagLowPotential marks the remaining 9 benchmarks of Figure 14.
	TagLowPotential = "lowpotential"
	// TagSpec marks workloads registered from a declarative WorkloadSpec.
	TagSpec = "spec"
)

// Spec describes a registered workload.
type Spec struct {
	Name string
	// MemoryIntensive marks membership in the paper's 17-benchmark set;
	// the rest form the 9 low-potential benchmarks of Figure 14.
	MemoryIntensive bool
	// About is a one-line description with the SPEC archetype.
	About string
	// Tags classify the workload for List filtering.
	Tags []string
	make func(seed uint64) cpu.Source
}

// Info is the listing view of a registered workload: the name keyed by
// sim.Config.Workload, the registry tags, and the one-line description.
type Info struct {
	Name  string   `json:"name"`
	Tags  []string `json:"tags"`
	About string   `json:"about,omitempty"`
}

var (
	regMu    sync.RWMutex
	registry []Spec
)

func register(name string, memIntensive bool, about string, make func(seed uint64) cpu.Source) {
	tags := []string{TagBuiltin, TagLowPotential}
	if memIntensive {
		tags = []string{TagBuiltin, TagMemIntensive}
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry = append(registry, Spec{Name: name, MemoryIntensive: memIntensive, About: about, Tags: tags, make: make})
}

// RegisterSpec makes a declarative spec runnable by name anywhere a
// built-in workload is (cfg.Workload = sp.Name), tagged "spec". The
// registered generator is the spec's lane 0; multi-lane specs attach
// their remaining lanes through the multicore/SMT spec entry points.
func RegisterSpec(sp *spec.Spec) error {
	if err := sp.Validate(); err != nil {
		return err
	}
	if Exists(sp.Name) {
		return fmt.Errorf("workload: %q is already registered", sp.Name)
	}
	s := *sp // copy: the registry must not alias caller-owned memory
	regMu.Lock()
	defer regMu.Unlock()
	registry = append(registry, Spec{
		Name:  s.Name,
		About: s.About,
		Tags:  []string{TagSpec},
		make:  func(seed uint64) cpu.Source { return s.Source(0, seed) },
	})
	return nil
}

// unregister removes a workload by name; tests use it to restore the
// registry after exercising RegisterSpec.
func unregister(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	for i, s := range registry {
		if s.Name == name {
			registry = append(registry[:i], registry[i+1:]...)
			return
		}
	}
}

// List returns the workloads carrying every one of the given tags (all
// workloads when none are given), sorted by name. This is the one
// listing entry point; Names, MemoryIntensive and LowPotential are
// derived views kept for compatibility.
func List(tags ...string) []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []Info
	for _, s := range registry {
		if !hasAll(s.Tags, tags) {
			continue
		}
		out = append(out, Info{Name: s.Name, Tags: append([]string(nil), s.Tags...), About: s.About})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func hasAll(have, want []string) bool {
	for _, w := range want {
		found := false
		for _, h := range have {
			if h == w {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Names returns all workload names, memory-intensive first, the rest
// (low-potential builtins, then registered specs) alphabetical after.
func Names() []string {
	specs := specsSorted()
	out := make([]string, 0, len(specs))
	for _, s := range specs {
		out = append(out, s.Name)
	}
	return out
}

// MemoryIntensive returns the paper's 17-benchmark evaluation set.
func MemoryIntensive() []string {
	var out []string
	for _, i := range List(TagMemIntensive) {
		out = append(out, i.Name)
	}
	return out
}

// LowPotential returns the remaining 9 benchmarks (Figure 14).
func LowPotential() []string {
	var out []string
	for _, i := range List(TagLowPotential) {
		out = append(out, i.Name)
	}
	return out
}

func specsSorted() []Spec {
	regMu.RLock()
	specs := make([]Spec, len(registry))
	copy(specs, registry)
	regMu.RUnlock()
	sort.Slice(specs, func(i, j int) bool {
		if specs[i].MemoryIntensive != specs[j].MemoryIntensive {
			return specs[i].MemoryIntensive
		}
		return specs[i].Name < specs[j].Name
	})
	return specs
}

// Lookup returns the spec for a workload name.
func Lookup(name string) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// New instantiates a workload by name with a seed for its randomized
// aspects (the structure is deterministic; the seed varies addresses).
func New(name string, seed uint64) (cpu.Source, error) {
	s, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w %q (have %v)", ErrUnknown, name, Names())
	}
	return s.make(seed), nil
}

// Exists reports whether a workload name is registered.
func Exists(name string) bool {
	_, ok := Lookup(name)
	return ok
}

// About returns the registered description for a workload.
func About(name string) string {
	if s, ok := Lookup(name); ok {
		return s.About
	}
	return ""
}
