package workload

import (
	"testing"
	"testing/quick"

	"fdpsim/internal/cpu"
)

func TestRegistryShape(t *testing.T) {
	if got := len(MemoryIntensive()); got != 17 {
		t.Fatalf("memory-intensive set has %d workloads, want the paper's 17", got)
	}
	if got := len(LowPotential()); got != 9 {
		t.Fatalf("low-potential set has %d workloads, want the paper's 9", got)
	}
	if got := len(Names()); got != 26 {
		t.Fatalf("total workloads = %d, want 26", got)
	}
}

func TestNamesUniqueAndDescribed(t *testing.T) {
	seen := make(map[string]bool)
	for _, n := range Names() {
		if seen[n] {
			t.Errorf("duplicate workload name %q", n)
		}
		seen[n] = true
		if About(n) == "" {
			t.Errorf("workload %q has no description", n)
		}
	}
	if About("nonexistent") != "" {
		t.Error("About of unknown workload non-empty")
	}
}

func TestNewUnknownErrors(t *testing.T) {
	if _, err := New("nope", 1); err == nil {
		t.Fatal("New of unknown workload did not error")
	}
}

func TestDeterminism(t *testing.T) {
	for _, n := range Names() {
		a, _ := New(n, 42)
		b, _ := New(n, 42)
		for i := 0; i < 5000; i++ {
			if a.Next() != b.Next() {
				t.Errorf("%s: op %d differs for identical seeds", n, i)
				break
			}
		}
	}
}

func TestAllWorkloadsEmitValidOps(t *testing.T) {
	for _, n := range Names() {
		src, err := New(n, 1)
		if err != nil {
			t.Fatalf("New(%s): %v", n, err)
		}
		if src.Name() != n {
			t.Errorf("%s: Name() = %q", n, src.Name())
		}
		loads, stores, totalMem := 0, 0, 0
		for i := 0; i < 20000; i++ {
			op := src.Next()
			switch op.Kind {
			case cpu.Load:
				loads++
				totalMem++
			case cpu.Store:
				stores++
				totalMem++
			case cpu.Nop:
			default:
				t.Fatalf("%s: invalid op kind %d", n, op.Kind)
			}
			if op.Kind != cpu.Nop && op.PC == 0 {
				t.Fatalf("%s: memory op with zero PC", n)
			}
			if op.Dep < 0 || op.Dep > 64 {
				t.Fatalf("%s: unreasonable dep distance %d", n, op.Dep)
			}
		}
		if loads == 0 {
			t.Errorf("%s: no loads in 20000 ops", n)
		}
		if totalMem == 20000 {
			t.Errorf("%s: no compute at all", n)
		}
	}
}

func TestSeqStreamAscendingUnitStride(t *testing.T) {
	src, _ := New("seqstream", 1)
	var last uint64
	first := true
	for i := 0; i < 4000; i++ {
		op := src.Next()
		if op.Kind != cpu.Load {
			continue
		}
		if !first && op.Addr != last+8 {
			t.Fatalf("seqstream addr %d after %d, want +8", op.Addr, last)
		}
		first = false
		last = op.Addr
	}
}

func TestRevStreamDescends(t *testing.T) {
	src, _ := New("revstream", 1)
	lastByPC := make(map[uint64]uint64)
	for i := 0; i < 4000; i++ {
		op := src.Next()
		if op.Kind != cpu.Load {
			continue
		}
		if prev, ok := lastByPC[op.PC]; ok && op.Addr >= prev {
			t.Fatalf("revstream pc %#x addr %d did not descend from %d", op.PC, op.Addr, prev)
		}
		lastByPC[op.PC] = op.Addr
	}
}

func TestChaseWorkloadsHaveDependences(t *testing.T) {
	for _, n := range []string{"chaseseq", "chaserand", "spmv", "binsearch"} {
		src, _ := New(n, 1)
		deps := 0
		for i := 0; i < 5000; i++ {
			if op := src.Next(); op.Kind == cpu.Load && op.Dep > 0 {
				deps++
			}
		}
		if deps == 0 {
			t.Errorf("%s: no dependent loads", n)
		}
	}
}

func TestScanModEmitsStores(t *testing.T) {
	src, _ := New("scanmod", 1)
	stores := 0
	for i := 0; i < 5000; i++ {
		if src.Next().Kind == cpu.Store {
			stores++
		}
	}
	if stores == 0 {
		t.Fatal("scanmod emitted no stores")
	}
}

func TestLowPotentialFootprints(t *testing.T) {
	// Every low-potential workload must touch fewer distinct blocks than
	// the L2 holds (16384) over a long window — that is what makes it
	// low-potential.
	for _, n := range LowPotential() {
		if n == "binsearch" || n == "blockedmm" {
			continue // these intentionally spill a little
		}
		src, _ := New(n, 1)
		blocks := make(map[uint64]bool)
		for i := 0; i < 200000; i++ {
			op := src.Next()
			if op.Kind != cpu.Nop {
				blocks[op.Addr>>6] = true
			}
		}
		if len(blocks) > 16384 {
			t.Errorf("%s touches %d blocks, larger than the L2", n, len(blocks))
		}
	}
}

func TestMemoryIntensiveFootprints(t *testing.T) {
	// Memory-intensive workloads must overflow the L2 (or at least come
	// close) to generate sustained misses.
	for _, n := range MemoryIntensive() {
		src, _ := New(n, 1)
		blocks := make(map[uint64]bool)
		for i := 0; i < 400000; i++ {
			op := src.Next()
			if op.Kind != cpu.Nop {
				blocks[op.Addr>>6] = true
			}
		}
		if len(blocks) < 2000 {
			t.Errorf("%s touches only %d blocks in 400k ops", n, len(blocks))
		}
	}
}

func TestRNGDeterministicAndNonZero(t *testing.T) {
	r1, r2 := newRNG(7), newRNG(7)
	for i := 0; i < 100; i++ {
		a, b := r1.next(), r2.next()
		if a != b {
			t.Fatal("rng not deterministic")
		}
		if a == 0 {
			t.Fatal("xorshift emitted zero")
		}
	}
	if newRNG(0).next() == 0 {
		t.Fatal("zero seed not remapped")
	}
	if newRNG(1).n(1) != 0 {
		t.Fatal("n(1) must be 0")
	}
	if newRNG(1).n(0) != 0 {
		t.Fatal("n(0) must be 0, not panic")
	}
}

// TestHashAddrInFootprint: hashAddr always lands block-aligned inside the
// footprint.
func TestHashAddrInFootprint(t *testing.T) {
	f := func(a uint64, fpRaw uint16) bool {
		fp := (uint64(fpRaw%64) + 1) * 1 << 20
		h := hashAddr(a, fp)
		return h < fp && h%BlockBytes == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMixedPhaseAlternates(t *testing.T) {
	src, _ := New("mixedphase", 1)
	// Drain past one phase boundary and check both behaviours appear:
	// strictly ascending unit-stride loads (stream) and dependent loads
	// (chase).
	sawDep, sawStream := false, false
	var lastSeq uint64
	streak := 0
	for i := 0; i < 450000; i++ {
		op := src.Next()
		if op.Kind != cpu.Load {
			continue
		}
		if op.Dep > 0 {
			sawDep = true
		}
		if op.Addr == lastSeq+8 {
			streak++
			if streak > 100 {
				sawStream = true
			}
		} else {
			streak = 0
		}
		lastSeq = op.Addr
	}
	if !sawDep || !sawStream {
		t.Fatalf("mixedphase phases missing: dep=%v stream=%v", sawDep, sawStream)
	}
}
