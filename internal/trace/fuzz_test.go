package trace

import (
	"bytes"
	"testing"

	"fdpsim/internal/cpu"
)

// FuzzReader ensures arbitrary byte streams never panic the decoder: they
// either parse as a valid trace or return an error.
func FuzzReader(f *testing.F) {
	// Seed with a valid trace and a few corruptions of it.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "seed")
	w.Write(cpu.MicroOp{Kind: cpu.Nop})
	w.Write(cpu.MicroOp{Kind: cpu.Load, Addr: 4096, PC: 64, Dep: 2})
	w.Write(cpu.MicroOp{Kind: cpu.Store, Addr: 128, PC: 68})
	w.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("FDPTRC\x00\x01"))
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 10 {
		mutated[10] ^= 0xFF
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine
		}
		// Accepted traces must be safely replayable.
		for i := 0; i < r.Len()+4; i++ {
			op := r.Next()
			if op.Kind != cpu.Nop && op.Kind != cpu.Load && op.Kind != cpu.Store {
				t.Fatalf("decoded invalid op kind %d", op.Kind)
			}
		}
	})
}
