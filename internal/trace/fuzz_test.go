package trace

import (
	"bytes"
	"io"
	"testing"

	"fdpsim/internal/cpu"
)

// FuzzReader ensures arbitrary byte streams never panic the decoder: they
// either parse as a valid trace or return an error.
func FuzzReader(f *testing.F) {
	// Seed with a valid trace and a few corruptions of it.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "seed")
	w.Write(cpu.MicroOp{Kind: cpu.Nop})
	w.Write(cpu.MicroOp{Kind: cpu.Load, Addr: 4096, PC: 64, Dep: 2})
	w.Write(cpu.MicroOp{Kind: cpu.Store, Addr: 128, PC: 68})
	w.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("FDPTRC\x00\x01"))
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 10 {
		mutated[10] ^= 0xFF
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine
		}
		// Accepted traces must be safely replayable.
		for i := 0; i < r.Len()+4; i++ {
			op := r.Next()
			if op.Kind != cpu.Nop && op.Kind != cpu.Load && op.Kind != cpu.Store {
				t.Fatalf("decoded invalid op kind %d", op.Kind)
			}
		}
	})
}

// FuzzReaderV2 ensures the streaming v2 decoder never panics or
// over-allocates on arbitrary bytes: malformed frames must error. Both
// the seekable path (footer pre-read) and the plain-stream path run.
func FuzzReaderV2(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriterV2(&buf, "seed")
	for i := 0; i < 3*frameTargetOps/2; i++ {
		switch i % 5 {
		case 0, 1:
			w.Write(cpu.MicroOp{Kind: cpu.Nop})
		case 2:
			w.Write(cpu.MicroOp{Kind: cpu.Load, Addr: uint64(i) * 64, PC: 0x400000, Dep: i % 3})
		case 3:
			w.Write(cpu.MicroOp{Kind: cpu.Store, Addr: uint64(i) * 128, PC: 0x400004})
		case 4:
			w.Write(cpu.MicroOp{Kind: cpu.Load, Addr: 1 << 40, PC: 0x400008})
		}
	}
	w.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-footerLen]) // footer sheared off
	f.Add([]byte{})
	f.Add([]byte("FDPTRC\x00\x02"))
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 40 {
		mutated[40] ^= 0xFF // corrupt a payload byte: CRC must catch it
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, seekable := range []bool{true, false} {
			var in io.Reader = bytes.NewReader(data)
			if !seekable {
				in = io.MultiReader(in)
			}
			r, err := NewReaderV2(in)
			if err != nil {
				continue // rejected: fine
			}
			// Accepted traces must be safely drainable with bounded
			// memory, whatever the frame headers claim.
			for i := 0; i < 2*frameTargetOps && !r.Exhausted(); i++ {
				op := r.Next()
				if op.Kind != cpu.Nop && op.Kind != cpu.Load && op.Kind != cpu.Store {
					t.Fatalf("decoded invalid op kind %d", op.Kind)
				}
				if cap(r.ops) > maxFrameOps || cap(r.payload) > maxFramePayload {
					t.Fatalf("decoder over-allocated: ops cap %d, payload cap %d", cap(r.ops), cap(r.payload))
				}
			}
		}
	})
}
