package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"fdpsim/internal/cpu"
)

// Trace format v2: the same varint/zigzag record encoding as v1, but
// block-framed so billion-access traces stream at O(frame) memory instead
// of being decoded whole:
//
//	header  := magicV2  uvarint(len(name))  name
//	frames  := frame*  uvarint(0)
//	frame   := uvarint(payloadLen)  uvarint(opCount)  crc32le  payload
//	footer  := uint64le(totalOps)  endMagicV2
//
// payload holds opCount micro-ops in the v1 record encoding with the
// delta state (lastAddr, lastPC) reset at the frame boundary, so every
// frame decodes independently and corruption is contained to one frame.
// The zero-length-frame terminator separates the frame stream from the
// fixed 16-byte footer, which lets a seekable reader learn the op count
// with one seek instead of a full scan, and lets Loop rewind precisely.

// magicV2 identifies v2 trace files (same prefix as v1, version byte 2).
var magicV2 = [8]byte{'F', 'D', 'P', 'T', 'R', 'C', 0, 2}

// endMagicV2 terminates the fixed footer.
var endMagicV2 = [8]byte{'F', 'D', 'P', 'E', 'N', 'D', 0, 2}

// Frame limits. The writer targets frameTargetOps ops per frame; the
// reader accepts up to the max* bounds so malformed or foreign files can
// never demand unbounded allocations.
const (
	frameTargetOps  = 8192
	maxFrameOps     = 1 << 16
	maxFramePayload = 1 << 22
	footerLen       = 16
)

// ReplaySource is the interface shared by both trace format readers;
// Open returns it so replay code handles either version uniformly.
type ReplaySource interface {
	cpu.Source
	// Ops is the recorded micro-op count: exact for v1 and for seekable
	// v2 inputs, 0 for a non-seekable v2 stream until it is exhausted.
	Ops() uint64
	// SetLoop makes the source restart instead of padding Nops when the
	// recording runs out. A v2 reader can only loop over an io.Seeker.
	SetLoop(bool)
	// Exhausted reports that a non-looping source ran past its recording.
	Exhausted() bool
}

// Open sniffs the version byte and returns the matching reader. The
// seekable requirement is what replay needs anyway: op counts up front
// and the ability to loop.
func Open(r io.ReadSeeker) (ReplaySource, error) {
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	switch m {
	case magic:
		return NewReader(r)
	case magicV2:
		return NewReaderV2(r)
	default:
		return nil, errors.New("trace: bad magic (not a trace file)")
	}
}

// WriterV2 encodes micro-ops to a v2 stream. Memory use is one frame
// buffer regardless of trace length.
type WriterV2 struct {
	w        *bufio.Writer
	buf      bytes.Buffer // current frame payload
	nops     uint64
	lastAddr int64
	lastPC   int64
	frameOps uint64
	count    uint64
	closed   bool
}

// NewWriterV2 starts a v2 trace with the given workload name.
func NewWriterV2(w io.Writer, name string) (*WriterV2, error) {
	if len(name) > maxNameLen {
		return nil, fmt.Errorf("trace: name length %d exceeds limit %d", len(name), maxNameLen)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magicV2[:]); err != nil {
		return nil, err
	}
	writeUvarint(bw, uint64(len(name)))
	if _, err := bw.WriteString(name); err != nil {
		return nil, err
	}
	return &WriterV2{w: bw}, nil
}

// Write appends one micro-op.
func (t *WriterV2) Write(op cpu.MicroOp) error {
	if t.closed {
		return errors.New("trace: write after Close")
	}
	t.count++
	t.frameOps++
	if op.Kind == cpu.Nop {
		t.nops++
	} else {
		t.flushNops()
		tag := uint64(tagLoad)
		if op.Kind == cpu.Store {
			tag = tagStore
		}
		bufUvarint(&t.buf, tag)
		bufVarint(&t.buf, int64(op.Addr)-t.lastAddr)
		bufVarint(&t.buf, int64(op.PC)-t.lastPC)
		if op.Kind == cpu.Load {
			bufUvarint(&t.buf, uint64(op.Dep))
		}
		t.lastAddr = int64(op.Addr)
		t.lastPC = int64(op.PC)
	}
	if t.frameOps >= frameTargetOps {
		return t.flushFrame()
	}
	return nil
}

func (t *WriterV2) flushNops() {
	if t.nops > 0 {
		bufUvarint(&t.buf, tagNops)
		bufUvarint(&t.buf, t.nops)
		t.nops = 0
	}
}

func (t *WriterV2) flushFrame() error {
	if t.frameOps == 0 {
		return nil
	}
	t.flushNops()
	payload := t.buf.Bytes()
	writeUvarint(t.w, uint64(len(payload)))
	writeUvarint(t.w, t.frameOps)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := t.w.Write(crc[:]); err != nil {
		return err
	}
	if _, err := t.w.Write(payload); err != nil {
		return err
	}
	t.buf.Reset()
	t.frameOps = 0
	t.lastAddr = 0
	t.lastPC = 0
	return nil
}

// Count returns the number of micro-ops written so far.
func (t *WriterV2) Count() uint64 { return t.count }

// Close flushes the final frame and writes the terminator and footer.
// The underlying writer is not closed.
func (t *WriterV2) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	if err := t.flushFrame(); err != nil {
		return err
	}
	writeUvarint(t.w, 0) // frame-stream terminator
	var footer [footerLen]byte
	binary.LittleEndian.PutUint64(footer[:8], t.count)
	copy(footer[8:], endMagicV2[:])
	if _, err := t.w.Write(footer[:]); err != nil {
		return err
	}
	return t.w.Flush()
}

// ReaderV2 streams a v2 trace, holding one decoded frame at a time, and
// implements cpu.Source. When the trace is exhausted it pads with Nops,
// or — over an io.Seeker with Loop set — rewinds to the first frame and
// replays identically. Frame corruption (bad CRC, malformed records)
// stops the stream; Err reports it.
type ReaderV2 struct {
	r       *bufio.Reader
	rs      io.ReadSeeker // non-nil when the input can rewind
	name    string
	bodyOff int64  // file offset of the first frame
	total   uint64 // footer op count (0 for non-seekable until exhausted)
	seen    uint64 // ops decoded since construction or last rewind

	ops     []cpu.MicroOp // current frame, reused
	pos     int
	payload []byte // frame payload buffer, reused

	loop  bool
	ended bool
	err   error
}

// NewReaderV2 opens a v2 trace for streaming. If r is an io.ReadSeeker
// the footer is read up front, so Ops is exact before the first Next.
func NewReaderV2(r io.Reader) (*ReaderV2, error) {
	t := &ReaderV2{}
	if rs, ok := r.(io.ReadSeeker); ok {
		total, err := readFooter(rs)
		if err != nil {
			return nil, err
		}
		t.rs = rs
		t.total = total
	}
	t.r = bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(t.r, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magicV2 {
		return nil, errors.New("trace: bad magic (not a v2 trace file)")
	}
	nameLen, err := binary.ReadUvarint(t.r)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("trace: name length %d exceeds limit %d", nameLen, maxNameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(t.r, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	t.name = string(nameBuf)
	var scratch [binary.MaxVarintLen64]byte
	t.bodyOff = int64(len(magicV2)) + int64(binary.PutUvarint(scratch[:], nameLen)) + int64(nameLen)
	return t, nil
}

// readFooter validates the fixed footer and returns the total op count,
// leaving the seek position at the start of the file.
func readFooter(rs io.ReadSeeker) (uint64, error) {
	if _, err := rs.Seek(-footerLen, io.SeekEnd); err != nil {
		return 0, fmt.Errorf("trace: seeking footer: %w", err)
	}
	var footer [footerLen]byte
	if _, err := io.ReadFull(rs, footer[:]); err != nil {
		return 0, fmt.Errorf("trace: reading footer: %w", err)
	}
	if !bytes.Equal(footer[8:], endMagicV2[:]) {
		return 0, errors.New("trace: bad footer magic (truncated or corrupt v2 trace)")
	}
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(footer[:8]), nil
}

// Name implements cpu.Source.
func (t *ReaderV2) Name() string { return t.name }

// Ops implements ReplaySource.
func (t *ReaderV2) Ops() uint64 { return t.total }

// SetLoop implements ReplaySource. Looping needs an io.Seeker; over a
// plain stream the reader ends as if Loop were unset.
func (t *ReaderV2) SetLoop(loop bool) { t.loop = loop }

// Exhausted implements ReplaySource.
func (t *ReaderV2) Exhausted() bool { return t.ended }

// Err returns the decode error that stopped the stream, if any. An
// exhausted reader with a nil Err consumed the recording cleanly.
func (t *ReaderV2) Err() error { return t.err }

// Next implements cpu.Source.
func (t *ReaderV2) Next() cpu.MicroOp {
	for t.pos >= len(t.ops) {
		if t.ended {
			return cpu.MicroOp{Kind: cpu.Nop}
		}
		err := t.readFrame()
		switch {
		case err == nil:
		case errors.Is(err, io.EOF):
			// Clean end of the frame stream.
			if t.total == 0 {
				t.total = t.seen
			}
			if t.loop && t.rs != nil && t.seen > 0 {
				if serr := t.rewind(); serr != nil {
					t.fail(serr)
					return cpu.MicroOp{Kind: cpu.Nop}
				}
				continue
			}
			t.ended = true
			return cpu.MicroOp{Kind: cpu.Nop}
		default:
			t.fail(err)
			return cpu.MicroOp{Kind: cpu.Nop}
		}
	}
	op := t.ops[t.pos]
	t.pos++
	return op
}

func (t *ReaderV2) fail(err error) {
	t.err = err
	t.ended = true
	t.ops = t.ops[:0]
	t.pos = 0
}

// rewind seeks back to the first frame for another Loop pass.
func (t *ReaderV2) rewind() error {
	if _, err := t.rs.Seek(t.bodyOff, io.SeekStart); err != nil {
		return fmt.Errorf("trace: rewinding: %w", err)
	}
	t.r.Reset(t.rs)
	t.seen = 0
	return nil
}

// readFrame reads and decodes the next frame into t.ops. It returns
// io.EOF exactly at the zero-length terminator.
func (t *ReaderV2) readFrame() error {
	payloadLen, err := binary.ReadUvarint(t.r)
	if err != nil {
		return fmt.Errorf("trace: reading frame header: %w", noEOF(err))
	}
	if payloadLen == 0 {
		return io.EOF
	}
	if payloadLen > maxFramePayload {
		return fmt.Errorf("trace: frame payload %d exceeds the %d-byte limit", payloadLen, maxFramePayload)
	}
	opCount, err := binary.ReadUvarint(t.r)
	if err != nil {
		return fmt.Errorf("trace: reading frame header: %w", noEOF(err))
	}
	if opCount == 0 || opCount > maxFrameOps {
		return fmt.Errorf("trace: frame op count %d outside 1..%d", opCount, maxFrameOps)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(t.r, crcBuf[:]); err != nil {
		return fmt.Errorf("trace: reading frame crc: %w", noEOF(err))
	}
	if uint64(cap(t.payload)) < payloadLen {
		t.payload = make([]byte, payloadLen)
	}
	t.payload = t.payload[:payloadLen]
	if _, err := io.ReadFull(t.r, t.payload); err != nil {
		return fmt.Errorf("trace: reading frame payload: %w", noEOF(err))
	}
	if got, want := crc32.ChecksumIEEE(t.payload), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return fmt.Errorf("trace: frame crc mismatch (got %#x, want %#x)", got, want)
	}
	if err := t.decodeFrame(opCount); err != nil {
		return err
	}
	t.seen += opCount
	t.pos = 0
	return nil
}

// decodeFrame expands the payload's records into t.ops, enforcing that
// the record stream yields exactly the declared op count.
func (t *ReaderV2) decodeFrame(opCount uint64) error {
	t.ops = t.ops[:0]
	buf, off := t.payload, 0
	var lastAddr, lastPC int64
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return 0, errors.New("trace: malformed uvarint in frame")
		}
		off += n
		return v, nil
	}
	sv := func() (int64, error) {
		v, n := binary.Varint(buf[off:])
		if n <= 0 {
			return 0, errors.New("trace: malformed varint in frame")
		}
		off += n
		return v, nil
	}
	for off < len(buf) {
		tag, err := uv()
		if err != nil {
			return err
		}
		switch tag {
		case tagNops:
			n, err := uv()
			if err != nil {
				return err
			}
			if n == 0 || uint64(len(t.ops))+n > opCount {
				return fmt.Errorf("trace: nop run of %d overflows the frame's %d ops", n, opCount)
			}
			for i := uint64(0); i < n; i++ {
				t.ops = append(t.ops, cpu.MicroOp{Kind: cpu.Nop})
			}
		case tagLoad, tagStore:
			if uint64(len(t.ops)) >= opCount {
				return fmt.Errorf("trace: frame exceeds its declared %d ops", opCount)
			}
			da, err := sv()
			if err != nil {
				return err
			}
			dp, err := sv()
			if err != nil {
				return err
			}
			lastAddr += da
			lastPC += dp
			op := cpu.MicroOp{Addr: uint64(lastAddr), PC: uint64(lastPC)}
			if tag == tagLoad {
				dep, err := uv()
				if err != nil {
					return err
				}
				op.Kind = cpu.Load
				op.Dep = int(dep)
			} else {
				op.Kind = cpu.Store
			}
			t.ops = append(t.ops, op)
		default:
			return fmt.Errorf("trace: unknown record tag %d", tag)
		}
	}
	if uint64(len(t.ops)) != opCount {
		return fmt.Errorf("trace: frame decoded %d ops, header declared %d", len(t.ops), opCount)
	}
	return nil
}

// noEOF upgrades a bare EOF to ErrUnexpectedEOF: inside a frame, running
// out of bytes is always truncation, never a clean end.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

func bufUvarint(b *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	b.Write(buf[:n])
}

func bufVarint(b *bytes.Buffer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	b.Write(buf[:n])
}
