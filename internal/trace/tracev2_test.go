package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"fdpsim/internal/cpu"
	"fdpsim/internal/workload"
)

func encodeV2(t *testing.T, name string, ops []cpu.MicroOp) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriterV2(&buf, name)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := w.Write(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(ops)) {
		t.Fatalf("Count() = %d, want %d", w.Count(), len(ops))
	}
	return buf.Bytes()
}

func sampleOps(n int) []cpu.MicroOp {
	src, _ := workload.New("mixedphase", 11)
	ops := make([]cpu.MicroOp, n)
	for i := range ops {
		ops[i] = src.Next()
	}
	return ops
}

// TestV2RoundTrip: encode → decode → encode must reproduce both the op
// stream and the exact file bytes (the encoder is deterministic).
func TestV2RoundTrip(t *testing.T) {
	// Long enough to span several frames.
	ops := sampleOps(3*frameTargetOps + 1234)
	raw := encodeV2(t, "mixedphase", ops)

	r, err := NewReaderV2(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "mixedphase" {
		t.Fatalf("Name() = %q", r.Name())
	}
	if r.Ops() != uint64(len(ops)) {
		t.Fatalf("Ops() = %d, want %d", r.Ops(), len(ops))
	}
	decoded := make([]cpu.MicroOp, len(ops))
	for i := range decoded {
		decoded[i] = r.Next()
	}
	for i, want := range ops {
		if decoded[i] != want {
			t.Fatalf("op %d = %+v, want %+v", i, decoded[i], want)
		}
	}
	if r.Exhausted() {
		t.Fatal("reader exhausted before the padding Nop")
	}
	if op := r.Next(); op.Kind != cpu.Nop || !r.Exhausted() {
		t.Fatalf("expected Nop padding + exhaustion, got %+v exhausted=%v", op, r.Exhausted())
	}
	if r.Err() != nil {
		t.Fatalf("clean trace reported error: %v", r.Err())
	}

	// Re-encode the decoded stream: byte-identical file.
	raw2 := encodeV2(t, "mixedphase", decoded)
	if !bytes.Equal(raw, raw2) {
		t.Fatal("encode → decode → encode is not byte-identical")
	}
}

// TestV2Streaming: decoding through a plain (non-seekable) reader works
// and learns the op count at exhaustion.
func TestV2Streaming(t *testing.T) {
	ops := sampleOps(2 * frameTargetOps)
	raw := encodeV2(t, "s", ops)
	r, err := NewReaderV2(io.MultiReader(bytes.NewReader(raw))) // hides Seeker
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops() != 0 {
		t.Fatalf("non-seekable Ops() = %d before exhaustion, want 0", r.Ops())
	}
	for i, want := range ops {
		if got := r.Next(); got != want {
			t.Fatalf("op %d = %+v, want %+v", i, got, want)
		}
	}
	r.Next() // pad
	if r.Ops() != uint64(len(ops)) {
		t.Fatalf("Ops() after exhaustion = %d, want %d", r.Ops(), len(ops))
	}
}

// TestV2Loop: a looping seekable reader replays the recording
// identically, frame boundaries included.
func TestV2Loop(t *testing.T) {
	ops := sampleOps(frameTargetOps + 100) // two frames
	raw := encodeV2(t, "l", ops)
	r, err := NewReaderV2(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	r.SetLoop(true)
	for pass := 0; pass < 3; pass++ {
		for i, want := range ops {
			if got := r.Next(); got != want {
				t.Fatalf("pass %d op %d = %+v, want %+v", pass, i, got, want)
			}
		}
	}
	if r.Exhausted() {
		t.Fatal("looping reader reported exhaustion")
	}
}

// TestV2EmptyTrace: a zero-op trace is valid and ends immediately, even
// with Loop set.
func TestV2EmptyTrace(t *testing.T) {
	raw := encodeV2(t, "empty", nil)
	r, err := NewReaderV2(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	r.SetLoop(true)
	if op := r.Next(); op.Kind != cpu.Nop || !r.Exhausted() {
		t.Fatalf("empty trace: got %+v exhausted=%v", op, r.Exhausted())
	}
}

// TestV2CorruptionDetected: flipping any payload byte must surface as a
// CRC error, not silent corruption.
func TestV2CorruptionDetected(t *testing.T) {
	ops := sampleOps(500)
	raw := encodeV2(t, "c", ops)
	// Flip a byte inside the first frame payload (past header+frame header).
	mutated := append([]byte(nil), raw...)
	mutated[len(mutated)/2] ^= 0x40
	r, err := NewReaderV2(bytes.NewReader(mutated))
	if err != nil {
		return // header-level rejection also counts
	}
	for i := 0; i < len(ops)+4 && !r.Exhausted(); i++ {
		r.Next()
	}
	if r.Err() == nil {
		// The flipped byte might land in the untouched second half ops; be
		// strict anyway: a full drain of a mutated payload must either
		// error or still match where untouched.
		t.Fatal("corrupted frame decoded without error")
	}
}

// TestV2TruncatedRejected: cutting the file off loses the footer, which a
// seekable open detects up front.
func TestV2TruncatedRejected(t *testing.T) {
	raw := encodeV2(t, "t", sampleOps(100))
	if _, err := NewReaderV2(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncated v2 trace accepted via seekable open")
	}
	// Non-seekable: the truncation surfaces as a decode error mid-stream.
	r, err := NewReaderV2(io.MultiReader(bytes.NewReader(raw[:len(raw)-footerLen-1])))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200 && !r.Exhausted(); i++ {
		r.Next()
	}
	if r.Err() == nil {
		t.Fatal("truncated stream drained without error")
	}
}

// TestV2CompressionReasonable: the framing overhead stays small — a
// streaming workload still encodes well under 4 bytes per op.
func TestV2CompressionReasonable(t *testing.T) {
	src, _ := workload.New("seqstream", 1)
	var buf bytes.Buffer
	w, _ := NewWriterV2(&buf, "seqstream")
	const n = 100000
	for i := 0; i < n; i++ {
		w.Write(src.Next())
	}
	w.Close()
	if perOp := float64(buf.Len()) / n; perOp > 4 {
		t.Fatalf("%.2f bytes/op, want < 4", perOp)
	}
}

// TestOpenSniffsVersions: Open dispatches on the version byte.
func TestOpenSniffsVersions(t *testing.T) {
	ops := sampleOps(64)

	var v1 bytes.Buffer
	w1, _ := NewWriter(&v1, "w")
	for _, op := range ops {
		w1.Write(op)
	}
	w1.Close()
	v2 := encodeV2(t, "w", ops)

	for _, raw := range [][]byte{v1.Bytes(), v2} {
		r, err := Open(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if r.Name() != "w" || r.Ops() != uint64(len(ops)) {
			t.Fatalf("Open: name=%q ops=%d", r.Name(), r.Ops())
		}
		for i, want := range ops {
			if got := r.Next(); got != want {
				t.Fatalf("op %d = %+v, want %+v", i, got, want)
			}
		}
	}
	if _, err := Open(bytes.NewReader([]byte("garbage bytes here"))); err == nil {
		t.Fatal("Open accepted garbage")
	}
	// v1 NewReader names the fix when handed a v2 file.
	if _, err := NewReader(bytes.NewReader(v2)); err == nil {
		t.Fatal("v1 reader accepted a v2 file")
	}
}

// TestV2BoundedMemory: the reader's working set is one frame, not the
// whole trace — a multi-frame decode must never grow the ops buffer past
// the frame cap.
func TestV2BoundedMemory(t *testing.T) {
	raw := encodeV2(t, "m", sampleOps(10*frameTargetOps))
	r, err := NewReaderV2(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for !r.Exhausted() {
		r.Next()
		if cap(r.ops) > maxFrameOps {
			t.Fatalf("ops buffer grew to %d (> %d): not streaming", cap(r.ops), maxFrameOps)
		}
	}
}

// TestV2FooterLayout pins the footer wire format: 8-byte LE count then
// the end magic, as documented in docs/WORKLOADS.md.
func TestV2FooterLayout(t *testing.T) {
	raw := encodeV2(t, "f", sampleOps(7))
	footer := raw[len(raw)-footerLen:]
	if got := binary.LittleEndian.Uint64(footer[:8]); got != 7 {
		t.Fatalf("footer count = %d, want 7", got)
	}
	if !bytes.Equal(footer[8:], endMagicV2[:]) {
		t.Fatal("footer end magic mismatch")
	}
}
