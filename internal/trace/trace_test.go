package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"fdpsim/internal/cpu"
	"fdpsim/internal/workload"
)

func roundTrip(t *testing.T, name string, ops []cpu.MicroOp) *Reader {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, name)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := w.Write(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRoundTripMixed(t *testing.T) {
	ops := []cpu.MicroOp{
		{Kind: cpu.Nop},
		{Kind: cpu.Nop},
		{Kind: cpu.Load, Addr: 4096, PC: 0x400000, Dep: 1},
		{Kind: cpu.Store, Addr: 64, PC: 0x400004},
		{Kind: cpu.Nop},
		{Kind: cpu.Load, Addr: 1 << 40, PC: 0x400008},
	}
	r := roundTrip(t, "mix", ops)
	if r.Name() != "mix" || r.Len() != len(ops) {
		t.Fatalf("name=%q len=%d", r.Name(), r.Len())
	}
	for i, want := range ops {
		if got := r.Next(); got != want {
			t.Fatalf("op %d = %+v, want %+v", i, got, want)
		}
	}
}

func TestReaderPadsWithNops(t *testing.T) {
	r := roundTrip(t, "pad", []cpu.MicroOp{{Kind: cpu.Load, Addr: 64, PC: 1}})
	r.Next()
	if op := r.Next(); op.Kind != cpu.Nop {
		t.Fatalf("exhausted reader returned %+v", op)
	}
	if !r.Exhausted() {
		t.Fatal("Exhausted() false after running out")
	}
}

func TestReaderLoops(t *testing.T) {
	r := roundTrip(t, "loop", []cpu.MicroOp{
		{Kind: cpu.Load, Addr: 64, PC: 1},
		{Kind: cpu.Store, Addr: 128, PC: 2},
	})
	r.Loop = true
	for i := 0; i < 7; i++ {
		r.Next()
	}
	if op := r.Next(); op.Kind != cpu.Store || op.Addr != 128 {
		t.Fatalf("looped op = %+v", op)
	}
	if r.Exhausted() {
		t.Fatal("looping reader reported exhaustion")
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedStreamRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "t")
	w.Write(cpu.MicroOp{Kind: cpu.Load, Addr: 64, PC: 1})
	w.Close()
	raw := buf.Bytes()
	if _, err := NewReader(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "t")
	w.Close()
	if err := w.Write(cpu.MicroOp{}); err == nil {
		t.Fatal("write after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("double Close errored: %v", err)
	}
}

func TestWorkloadRoundTrip(t *testing.T) {
	// Record a real workload prefix and verify bit-exact replay.
	src, _ := workload.New("spmv", 3)
	var ops []cpu.MicroOp
	for i := 0; i < 10000; i++ {
		ops = append(ops, src.Next())
	}
	r := roundTrip(t, "spmv", ops)
	for i, want := range ops {
		if got := r.Next(); got != want {
			t.Fatalf("spmv op %d = %+v, want %+v", i, got, want)
		}
	}
}

func TestCompressionReasonable(t *testing.T) {
	// Streaming workloads must encode compactly (delta + RLE): well under
	// 4 bytes per op.
	src, _ := workload.New("seqstream", 1)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "seqstream")
	const n = 100000
	for i := 0; i < n; i++ {
		w.Write(src.Next())
	}
	w.Close()
	if perOp := float64(buf.Len()) / n; perOp > 4 {
		t.Fatalf("%.2f bytes/op, want < 4", perOp)
	}
}

// TestRoundTripProperty: arbitrary op sequences survive encoding.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		var ops []cpu.MicroOp
		for _, r := range raw {
			op := cpu.MicroOp{}
			switch r % 3 {
			case 0:
				op.Kind = cpu.Nop
			case 1:
				op = cpu.MicroOp{Kind: cpu.Load, Addr: uint64(r) * 13, PC: uint64(r % 997), Dep: int(r % 5)}
			case 2:
				op = cpu.MicroOp{Kind: cpu.Store, Addr: uint64(r) * 7, PC: uint64(r % 31)}
			}
			ops = append(ops, op)
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, "q")
		if err != nil {
			return false
		}
		for _, op := range ops {
			if w.Write(op) != nil {
				return false
			}
		}
		if w.Close() != nil {
			return false
		}
		if w.Count() != uint64(len(ops)) {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil || r.Len() != len(ops) {
			return false
		}
		for _, want := range ops {
			if r.Next() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
