// Package trace provides a compact binary format for recording and
// replaying micro-op streams, giving the simulator an execution-driven
// front end that can be decoupled from the workload generators: record a
// generator once with cmd/tracegen, then replay the identical instruction
// stream across configurations.
//
// Format: a magic header, a name, then one varint-encoded record per
// micro-op. Non-memory ops are run-length encoded; memory-op addresses are
// delta-encoded per kind, which keeps streaming traces near one byte per
// skipped instruction.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"fdpsim/internal/cpu"
)

// magic identifies trace files; the trailing byte versions the format.
var magic = [8]byte{'F', 'D', 'P', 'T', 'R', 'C', 0, 1}

// Record tags.
const (
	tagNops  = 0 // followed by count
	tagLoad  = 1 // followed by zigzag addr delta, pc delta, dep
	tagStore = 2 // followed by zigzag addr delta, pc delta
	tagEnd   = 3
)

// Decode limits: untrusted trace files must not be able to demand
// unbounded allocations.
const (
	maxNameLen = 4096
	maxOps     = 1 << 30
)

// Writer encodes micro-ops to an output stream.
type Writer struct {
	w        *bufio.Writer
	nops     uint64
	lastAddr int64
	lastPC   int64
	count    uint64
	closed   bool
}

// NewWriter starts a trace with the given workload name.
func NewWriter(w io.Writer, name string) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	writeUvarint(bw, uint64(len(name)))
	if _, err := bw.WriteString(name); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one micro-op.
func (t *Writer) Write(op cpu.MicroOp) error {
	if t.closed {
		return errors.New("trace: write after Close")
	}
	t.count++
	if op.Kind == cpu.Nop {
		t.nops++
		return nil
	}
	t.flushNops()
	tag := uint64(tagLoad)
	if op.Kind == cpu.Store {
		tag = tagStore
	}
	writeUvarint(t.w, tag)
	writeVarint(t.w, int64(op.Addr)-t.lastAddr)
	writeVarint(t.w, int64(op.PC)-t.lastPC)
	if op.Kind == cpu.Load {
		writeUvarint(t.w, uint64(op.Dep))
	}
	t.lastAddr = int64(op.Addr)
	t.lastPC = int64(op.PC)
	return nil
}

func (t *Writer) flushNops() {
	if t.nops > 0 {
		writeUvarint(t.w, tagNops)
		writeUvarint(t.w, t.nops)
		t.nops = 0
	}
}

// Count returns the number of micro-ops written so far.
func (t *Writer) Count() uint64 { return t.count }

// Close finalizes the trace. The underlying writer is not closed.
func (t *Writer) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	t.flushNops()
	writeUvarint(t.w, tagEnd)
	return t.w.Flush()
}

// Reader decodes a trace and implements cpu.Source. When the trace is
// exhausted the reader pads with Nops if Loop is false, or restarts from
// the recorded ops if Loop is true (addresses repeat identically).
type Reader struct {
	name string
	ops  []cpu.MicroOp
	pos  int
	// Loop restarts the trace when exhausted instead of emitting Nops.
	Loop  bool
	ended bool
}

// NewReader fully decodes a trace (traces are bounded by construction).
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		if m == magicV2 {
			return nil, errors.New("trace: this is a v2 trace; use trace.Open or trace.NewReaderV2")
		}
		return nil, errors.New("trace: bad magic (not a trace file or wrong version)")
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("trace: name length %d exceeds limit %d", nameLen, maxNameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	t := &Reader{name: string(nameBuf)}
	var lastAddr, lastPC int64
	for {
		tag, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: truncated stream: %w", err)
		}
		switch tag {
		case tagEnd:
			return t, nil
		case tagNops:
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if n > maxOps || uint64(len(t.ops))+n > maxOps {
				return nil, fmt.Errorf("trace: nop run of %d exceeds the %d-op decode limit", n, maxOps)
			}
			for i := uint64(0); i < n; i++ {
				t.ops = append(t.ops, cpu.MicroOp{Kind: cpu.Nop})
			}
		case tagLoad, tagStore:
			da, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			dp, err := binary.ReadVarint(br)
			if err != nil {
				return nil, err
			}
			lastAddr += da
			lastPC += dp
			op := cpu.MicroOp{Addr: uint64(lastAddr), PC: uint64(lastPC)}
			if tag == tagLoad {
				dep, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				op.Kind = cpu.Load
				op.Dep = int(dep)
			} else {
				op.Kind = cpu.Store
			}
			t.ops = append(t.ops, op)
		default:
			return nil, fmt.Errorf("trace: unknown record tag %d", tag)
		}
	}
}

// Name implements cpu.Source.
func (t *Reader) Name() string { return t.name }

// Len returns the number of recorded micro-ops.
func (t *Reader) Len() int { return len(t.ops) }

// Ops implements ReplaySource.
func (t *Reader) Ops() uint64 { return uint64(len(t.ops)) }

// SetLoop implements ReplaySource.
func (t *Reader) SetLoop(loop bool) { t.Loop = loop }

// Exhausted reports whether a non-looping reader has run past its ops.
func (t *Reader) Exhausted() bool { return t.ended }

// Next implements cpu.Source.
func (t *Reader) Next() cpu.MicroOp {
	if t.pos >= len(t.ops) {
		if t.Loop && len(t.ops) > 0 {
			t.pos = 0
		} else {
			t.ended = true
			return cpu.MicroOp{Kind: cpu.Nop}
		}
	}
	op := t.ops[t.pos]
	t.pos++
	return op
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}
