package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGeometry(t *testing.T) {
	c := New("L2", 16384, 16)
	if c.NumSets() != 1024 || c.Ways() != 16 || c.Blocks() != 16384 {
		t.Fatalf("geometry: sets=%d ways=%d blocks=%d", c.NumSets(), c.Ways(), c.Blocks())
	}
}

func TestNewFullyAssociative(t *testing.T) {
	c := New("pc", 32, 0)
	if c.NumSets() != 1 || c.Ways() != 32 {
		t.Fatalf("fully associative: sets=%d ways=%d", c.NumSets(), c.Ways())
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, tc := range []struct{ blocks, ways int }{{100, 16}, {48, 16}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.blocks, tc.ways)
				}
			}()
			New("bad", tc.blocks, tc.ways)
		}()
	}
}

func TestInsertPosDepth(t *testing.T) {
	// The paper's definitions for a 16-way set: LRU=0, LRU-4=floor(16/4),
	// MID=floor(16/2), MRU=15.
	cases := []struct {
		pos  InsertPos
		want int
	}{{PosLRU, 0}, {PosLRU4, 4}, {PosMID, 8}, {PosMRU, 15}}
	for _, tc := range cases {
		if got := tc.pos.Depth(16); got != tc.want {
			t.Errorf("%v.Depth(16) = %d, want %d", tc.pos, got, tc.want)
		}
	}
	if PosMID.Depth(4) != 2 || PosLRU4.Depth(4) != 1 {
		t.Errorf("4-way depths wrong: MID=%d LRU4=%d", PosMID.Depth(4), PosLRU4.Depth(4))
	}
}

func TestInsertPosString(t *testing.T) {
	want := map[InsertPos]string{PosLRU: "LRU", PosLRU4: "LRU-4", PosMID: "MID", PosMRU: "MRU"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
}

func TestAccessHitMiss(t *testing.T) {
	c := New("t", 16, 4) // 4 sets of 4
	if c.Access(1) != nil {
		t.Fatal("access of empty cache hit")
	}
	c.Insert(1, PosMRU, false, false)
	if c.Access(1) == nil {
		t.Fatal("access after insert missed")
	}
	if c.Accesses() != 2 || c.Misses() != 1 {
		t.Fatalf("counters: accesses=%d misses=%d", c.Accesses(), c.Misses())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New("t", 4, 4) // one set
	var evicted []Addr
	c.OnEvict = func(ev Evicted) { evicted = append(evicted, ev.Block.Tag) }
	for b := Addr(0); b < 4; b++ {
		c.Insert(b*4, PosMRU, false, false) // same set (4 sets? no: 1 set)
	}
	// All four resident; insert a fifth evicts the LRU (block 0).
	c.Insert(16, PosMRU, false, false)
	if len(evicted) != 1 || evicted[0] != 0 {
		t.Fatalf("evicted %v, want [0]", evicted)
	}
	// Touching block 4 protects it; next eviction is block 8.
	c.Access(4)
	c.Insert(20, PosMRU, false, false)
	if len(evicted) != 2 || evicted[1] != 8 {
		t.Fatalf("evicted %v, want [0 8]", evicted)
	}
}

func TestInsertAtDepths(t *testing.T) {
	c := New("t", 8, 8) // one 8-way set
	for b := Addr(0); b < 8; b++ {
		c.Insert(b, PosMRU, false, false)
	}
	// Stack LRU->MRU: 0..7. Insert 100 at MID (depth 4): evicts 0, then
	// the stack is 1,2,3,100,4,...? Eviction shifts everything down, then
	// 100 lands at index 4.
	c.Insert(100, PosMID, false, false)
	got := c.StackPositions(0)
	want := []Addr{1, 2, 3, 4, 100, 5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stack after MID insert = %v, want %v", got, want)
		}
	}
	// LRU insert goes to position 0.
	c.Insert(200, PosLRU, false, false)
	got = c.StackPositions(0)
	if got[0] != 200 {
		t.Fatalf("stack after LRU insert = %v, want 200 first", got)
	}
}

func TestInsertLRUEvictedFirst(t *testing.T) {
	// A block inserted at LRU is the first victim — the mechanism Dynamic
	// Insertion relies on to make junk prefetches evict themselves.
	c := New("t", 4, 4)
	c.Insert(1, PosMRU, false, false)
	c.Insert(2, PosMRU, false, false)
	c.Insert(3, PosMRU, false, false)
	c.Insert(9, PosLRU, true, false)
	var evicted []Addr
	c.OnEvict = func(ev Evicted) { evicted = append(evicted, ev.Block.Tag) }
	c.Insert(4, PosMRU, false, false)
	if len(evicted) != 1 || evicted[0] != 9 {
		t.Fatalf("evicted %v, want the LRU-inserted prefetch 9", evicted)
	}
}

func TestDuplicateInsertMergesState(t *testing.T) {
	c := New("t", 4, 4)
	c.Insert(1, PosMRU, false, false)
	if _, evicted := c.Insert(1, PosLRU, true, true); evicted {
		t.Fatal("duplicate insert evicted")
	}
	b := c.Lookup(1)
	if b == nil || !b.Pref || !b.Dirty {
		t.Fatalf("duplicate insert did not merge flags: %+v", b)
	}
	if got := len(c.StackPositions(0)); got != 1 {
		t.Fatalf("duplicate insert created %d entries", got)
	}
}

func TestEvictedByPrefetchFlag(t *testing.T) {
	c := New("t", 2, 2)
	c.Insert(0, PosMRU, false, false)
	c.Insert(2, PosMRU, false, false)
	var byPref []bool
	c.OnEvict = func(ev Evicted) { byPref = append(byPref, ev.ByPrefetch) }
	c.Insert(4, PosMRU, true, false)  // prefetch fill evicts
	c.Insert(6, PosMRU, false, false) // demand fill evicts
	if len(byPref) != 2 || !byPref[0] || byPref[1] {
		t.Fatalf("ByPrefetch flags = %v, want [true false]", byPref)
	}
}

func TestInvalidateAndSetDirty(t *testing.T) {
	c := New("t", 4, 4)
	c.Insert(7, PosMRU, false, false)
	if !c.SetDirty(7) {
		t.Fatal("SetDirty missed resident block")
	}
	b, ok := c.Invalidate(7)
	if !ok || !b.Dirty {
		t.Fatalf("Invalidate = %+v, %v", b, ok)
	}
	if c.Contains(7) {
		t.Fatal("block still resident after Invalidate")
	}
	if c.SetDirty(7) {
		t.Fatal("SetDirty hit after Invalidate")
	}
	if _, ok := c.Invalidate(7); ok {
		t.Fatal("double Invalidate reported a block")
	}
}

func TestTouchPromotes(t *testing.T) {
	c := New("t", 4, 4)
	for b := Addr(0); b < 4; b++ {
		c.Insert(b, PosMRU, false, false)
	}
	if !c.Touch(0) {
		t.Fatal("Touch missed resident block")
	}
	got := c.StackPositions(0)
	if got[len(got)-1] != 0 {
		t.Fatalf("Touch did not promote: %v", got)
	}
	if c.Touch(99) {
		t.Fatal("Touch hit absent block")
	}
	if c.Accesses() != 0 {
		t.Fatal("Touch counted as access")
	}
}

func TestPrefBitLifecycle(t *testing.T) {
	c := New("t", 4, 4)
	c.Insert(1, PosMRU, true, false)
	if c.CountPref() != 1 {
		t.Fatalf("CountPref = %d", c.CountPref())
	}
	b := c.Access(1)
	if b == nil || !b.Pref {
		t.Fatal("prefetched block lost its pref bit before first use")
	}
	b.Pref = false // the hierarchy clears it on first demand use
	if c.CountPref() != 0 {
		t.Fatalf("CountPref after clear = %d", c.CountPref())
	}
}

// TestStackInvariants drives random operations and checks structural
// invariants: no duplicate tags in a set, size bounded by ways, and every
// inserted block findable until evicted.
func TestStackInvariants(t *testing.T) {
	f := func(seed int64, ops []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New("q", 64, 4)
		resident := make(map[Addr]bool)
		c.OnEvict = func(ev Evicted) { delete(resident, ev.Block.Tag) }
		for _, op := range ops {
			block := Addr(rng.Intn(128))
			switch op % 4 {
			case 0:
				c.Insert(block, InsertPos(rng.Intn(4)), rng.Intn(2) == 0, false)
				resident[block] = true
			case 1:
				hit := c.Access(block) != nil
				if hit != resident[block] {
					return false
				}
			case 2:
				c.Touch(block)
			case 3:
				if _, ok := c.Invalidate(block); ok != resident[block] {
					return false
				}
				delete(resident, block)
			}
		}
		// Structural check: every set duplicate-free and bounded.
		for s := 0; s < c.NumSets(); s++ {
			tags := c.StackPositions(s)
			if len(tags) > c.Ways() {
				return false
			}
			seen := make(map[Addr]bool)
			for _, tag := range tags {
				if seen[tag] || int(tag)%c.NumSets() != s {
					return false
				}
				seen[tag] = true
			}
		}
		// Consistency with the shadow model.
		for b := range resident {
			if !c.Contains(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
