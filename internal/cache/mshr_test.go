package cache

import "testing"

func TestMSHRAllocateLookupRelease(t *testing.T) {
	m := NewMSHRFile(2)
	e := m.Allocate(10, true, 100)
	if e == nil || !e.Pref || e.AllocCycle != 100 {
		t.Fatalf("Allocate = %+v", e)
	}
	if m.Lookup(10) != e {
		t.Fatal("Lookup missed allocated entry")
	}
	if m.Lookup(11) != nil {
		t.Fatal("Lookup hit absent entry")
	}
	if got := m.Release(10); got != e {
		t.Fatal("Release returned wrong entry")
	}
	if m.Release(10) != nil {
		t.Fatal("double Release returned an entry")
	}
	if m.Used() != 0 {
		t.Fatalf("Used = %d after release", m.Used())
	}
}

func TestMSHRFull(t *testing.T) {
	m := NewMSHRFile(2)
	m.Allocate(1, false, 0)
	m.Allocate(2, false, 0)
	if !m.Full() {
		t.Fatal("not full at capacity")
	}
	if m.Allocate(3, false, 0) != nil {
		t.Fatal("Allocate succeeded when full")
	}
	m.Release(1)
	if m.Full() {
		t.Fatal("still full after release")
	}
	if m.Allocate(3, false, 0) == nil {
		t.Fatal("Allocate failed with space available")
	}
}

func TestMSHRNoDuplicateAllocation(t *testing.T) {
	m := NewMSHRFile(4)
	if m.Allocate(5, false, 0) == nil {
		t.Fatal("first Allocate failed")
	}
	if m.Allocate(5, true, 0) != nil {
		t.Fatal("duplicate Allocate succeeded; callers must merge via Lookup")
	}
}

func TestMSHRMergeSemantics(t *testing.T) {
	// The FDP late-prefetch protocol: a demand finding a pref-bit entry
	// clears the bit and merges a waiter.
	m := NewMSHRFile(4)
	if m.Allocate(7, true, 0) == nil {
		t.Fatal("Allocate failed")
	}
	if got := m.Lookup(7); got != nil && got.Pref {
		got.Pref = false
		got.DemandMerged = true
	}
	rel := m.Release(7)
	if rel == nil || rel.Pref || !rel.DemandMerged {
		t.Fatalf("merge state: %+v", rel)
	}
}

func TestMSHRPeak(t *testing.T) {
	m := NewMSHRFile(8)
	for b := Addr(0); b < 5; b++ {
		m.Allocate(b, false, 0)
	}
	for b := Addr(0); b < 5; b++ {
		m.Release(b)
	}
	if m.Peak() != 5 {
		t.Fatalf("Peak = %d, want 5", m.Peak())
	}
}
