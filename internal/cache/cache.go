// Package cache implements the set-associative cache models used by the
// simulator: true-LRU stacks with arbitrary insertion depth (needed for the
// paper's MID/LRU-4/LRU prefetch insertion policies), per-block pref-bits
// (the FDP accuracy mechanism), dirty bits for writeback traffic, and the
// L2 miss-status holding registers (MSHRs) with pref-bits for lateness
// detection.
package cache

import "fmt"

// Addr is a cache-block address: the byte address shifted right by the
// block-offset bits. All structures in this package operate on block
// addresses; the owner performs the shift once at the edge.
type Addr = uint64

// InsertPos names a depth in a set's LRU stack at which a filled block is
// inserted. The paper defines, for an n-way set: MID = floor(n/2)-th
// least-recently-used position, LRU-4 = floor(n/4)-th, LRU = position 0,
// MRU = position n-1.
type InsertPos int

// Insertion positions, least- to most-recently-used. NumInsertPos bounds
// the enum for callers that index per-position tables (e.g. the service's
// insertion-policy counters).
const (
	PosLRU InsertPos = iota
	PosLRU4
	PosMID
	PosMRU
	NumInsertPos
)

// String returns the paper's name for the position.
func (p InsertPos) String() string {
	switch p {
	case PosLRU:
		return "LRU"
	case PosLRU4:
		return "LRU-4"
	case PosMID:
		return "MID"
	case PosMRU:
		return "MRU"
	}
	return fmt.Sprintf("InsertPos(%d)", int(p))
}

// Depth returns the LRU-stack index (0 = LRU end) this position maps to in
// a cache with the given associativity.
func (p InsertPos) Depth(ways int) int {
	switch p {
	case PosLRU:
		return 0
	case PosLRU4:
		return ways / 4
	case PosMID:
		return ways / 2
	default:
		return ways - 1
	}
}

// Block is one cache line's tag-store state.
type Block struct {
	Tag   Addr // full block address (serves as the tag; sets re-derive index)
	Valid bool
	Dirty bool
	// Pref is the paper's pref-bit: set when the block is filled by a
	// prefetch, cleared the first time a demand request touches it.
	Pref bool
	// DemandFill records the fill's origin: true when the block was
	// brought in by a demand miss. The pollution filter only tracks
	// demand-filled victims (Section 3.1.3), so this must survive the
	// pref-bit being cleared on first use.
	DemandFill bool
}

// set holds blocks in LRU order: index 0 is the least recently used.
type set struct {
	blocks []Block
}

// EvictionInfo describes a block displaced by an insertion, delivered to
// the cache's eviction hook.
type Evicted struct {
	Block Block
	// ByPrefetch is true when the incoming fill that displaced this block
	// was a prefetch — the trigger for the pollution filter.
	ByPrefetch bool
}

// Cache is a set-associative, true-LRU cache model. It is a pure storage
// and replacement model: latencies, ports and queueing belong to the owner.
type Cache struct {
	name     string
	ways     int
	numSets  int
	setMask  uint64
	sets     []set
	OnEvict  func(ev Evicted) // optional; called for every valid eviction
	accesses uint64
	misses   uint64
}

// New constructs a cache holding totalBlocks blocks with the given
// associativity. totalBlocks must be a multiple of ways and the resulting
// set count must be a power of two. A ways value of 0 requests a fully
// associative cache (one set).
func New(name string, totalBlocks, ways int) *Cache {
	if ways <= 0 || ways > totalBlocks {
		ways = totalBlocks
	}
	numSets := totalBlocks / ways
	if numSets*ways != totalBlocks {
		panic(fmt.Sprintf("cache %s: %d blocks not divisible by %d ways", name, totalBlocks, ways))
	}
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", name, numSets))
	}
	c := &Cache{
		name:    name,
		ways:    ways,
		numSets: numSets,
		setMask: uint64(numSets - 1),
		sets:    make([]set, numSets),
	}
	for i := range c.sets {
		c.sets[i].blocks = make([]Block, 0, ways)
	}
	return c
}

// Name returns the label the cache was constructed with.
func (c *Cache) Name() string { return c.name }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

// Blocks returns the total block capacity.
func (c *Cache) Blocks() int { return c.numSets * c.ways }

func (c *Cache) setFor(block Addr) *set { return &c.sets[block&c.setMask] }

func (s *set) find(block Addr) int {
	for i := range s.blocks {
		if s.blocks[i].Valid && s.blocks[i].Tag == block {
			return i
		}
	}
	return -1
}

// Lookup probes for the block without changing replacement state. It
// returns a pointer into the set that is invalidated by the next mutating
// call, so callers must consume it immediately.
func (c *Cache) Lookup(block Addr) *Block {
	s := c.setFor(block)
	if i := s.find(block); i >= 0 {
		return &s.blocks[i]
	}
	return nil
}

// Contains reports whether the block is resident.
func (c *Cache) Contains(block Addr) bool { return c.Lookup(block) != nil }

// Access performs a demand reference: on a hit the block is promoted to
// MRU and returned (its Pref bit is left for the caller to inspect and
// clear); on a miss nil is returned. Hit/miss statistics are updated.
func (c *Cache) Access(block Addr) *Block {
	c.accesses++
	s := c.setFor(block)
	i := s.find(block)
	if i < 0 {
		c.misses++
		return nil
	}
	// Promote to MRU: move to the end of the stack.
	b := s.blocks[i]
	copy(s.blocks[i:], s.blocks[i+1:])
	s.blocks[len(s.blocks)-1] = b
	return &s.blocks[len(s.blocks)-1]
}

// Touch promotes the block to MRU if present, without counting an access.
func (c *Cache) Touch(block Addr) bool {
	s := c.setFor(block)
	i := s.find(block)
	if i < 0 {
		return false
	}
	b := s.blocks[i]
	copy(s.blocks[i:], s.blocks[i+1:])
	s.blocks[len(s.blocks)-1] = b
	return true
}

// Insert fills the block at the given LRU-stack position, evicting the LRU
// block if the set is full. The eviction hook fires before the new block is
// placed. If the block is already resident, its state is updated in place
// (pref/dirty are ORed in) without reordering the stack, and no eviction
// occurs. Insert returns the evicted block by value (evicted reports
// whether there was one), so the per-fill path stays allocation-free.
func (c *Cache) Insert(block Addr, pos InsertPos, pref, dirty bool) (ev Evicted, evicted bool) {
	s := c.setFor(block)
	if i := s.find(block); i >= 0 {
		// Duplicate fill (e.g. prefetch raced a demand fill): merge state.
		s.blocks[i].Dirty = s.blocks[i].Dirty || dirty
		s.blocks[i].Pref = s.blocks[i].Pref || pref
		return Evicted{}, false
	}
	if len(s.blocks) == c.ways {
		victim := s.blocks[0]
		copy(s.blocks, s.blocks[1:])
		s.blocks = s.blocks[:len(s.blocks)-1]
		ev, evicted = Evicted{Block: victim, ByPrefetch: pref}, true
		if c.OnEvict != nil {
			c.OnEvict(ev)
		}
	}
	depth := pos.Depth(c.ways)
	if depth > len(s.blocks) {
		depth = len(s.blocks)
	}
	nb := Block{Tag: block, Valid: true, Dirty: dirty, Pref: pref, DemandFill: !pref}
	s.blocks = append(s.blocks, Block{})
	copy(s.blocks[depth+1:], s.blocks[depth:])
	s.blocks[depth] = nb
	return ev, evicted
}

// Invalidate removes the block if present and returns its prior state.
func (c *Cache) Invalidate(block Addr) (Block, bool) {
	s := c.setFor(block)
	i := s.find(block)
	if i < 0 {
		return Block{}, false
	}
	b := s.blocks[i]
	copy(s.blocks[i:], s.blocks[i+1:])
	s.blocks = s.blocks[:len(s.blocks)-1]
	return b, true
}

// SetDirty marks the block dirty if present, reporting whether it was found.
func (c *Cache) SetDirty(block Addr) bool {
	if b := c.Lookup(block); b != nil {
		b.Dirty = true
		return true
	}
	return false
}

// Accesses returns the number of demand references seen by Access.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of demand references that missed.
func (c *Cache) Misses() uint64 { return c.misses }

// StackPositions returns, for testing, the block addresses of a set ordered
// LRU to MRU. The set index is block&setMask of any resident address.
func (c *Cache) StackPositions(setIndex int) []Addr {
	s := &c.sets[setIndex]
	out := make([]Addr, 0, len(s.blocks))
	for _, b := range s.blocks {
		if b.Valid {
			out = append(out, b.Tag)
		}
	}
	return out
}

// CountPref returns the number of resident blocks with the pref-bit set,
// used by tests and the hardware-cost accounting.
func (c *Cache) CountPref() int {
	n := 0
	for i := range c.sets {
		for _, b := range c.sets[i].blocks {
			if b.Valid && b.Pref {
				n++
			}
		}
	}
	return n
}
