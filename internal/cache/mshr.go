package cache

// MSHREntry tracks one in-flight miss. The paper adds a pref-bit to each L2
// MSHR entry: when a demand request hits an entry whose pref-bit is set,
// the prefetch is late (Section 3.1.2).
type MSHREntry struct {
	Block Addr
	// Pref is set while the in-flight request is still "a prefetch", i.e.
	// no demand has asked for the block yet.
	Pref bool
	// DemandMerged is true once at least one demand request merged into
	// this entry; the fill then completes those demands.
	DemandMerged bool
	// Waiters are completion callbacks for merged demand requests.
	Waiters []func()
	// Issued is true once the request has been handed to the bus queue.
	Issued bool
	// AllocCycle records when the entry was allocated (for tests/debug).
	AllocCycle uint64
}

// MSHRFile models a fully associative miss-status holding register file
// with merging: one entry per in-flight block.
type MSHRFile struct {
	cap     int
	entries map[Addr]*MSHREntry
	// peakUsed tracks the high-water mark for statistics.
	peakUsed int
}

// NewMSHRFile creates an MSHR file with the given entry capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	return &MSHRFile{cap: capacity, entries: make(map[Addr]*MSHREntry, capacity)}
}

// Lookup returns the in-flight entry for the block, or nil.
func (m *MSHRFile) Lookup(block Addr) *MSHREntry { return m.entries[block] }

// Full reports whether no further entries can be allocated.
func (m *MSHRFile) Full() bool { return len(m.entries) >= m.cap }

// Used returns the number of live entries.
func (m *MSHRFile) Used() int { return len(m.entries) }

// Peak returns the high-water mark of live entries.
func (m *MSHRFile) Peak() int { return m.peakUsed }

// Allocate creates an entry for the block. It returns nil when the file is
// full or the block already has an entry (callers must Lookup first to
// merge instead).
func (m *MSHRFile) Allocate(block Addr, pref bool, cycle uint64) *MSHREntry {
	if m.Full() {
		return nil
	}
	if _, ok := m.entries[block]; ok {
		return nil
	}
	e := &MSHREntry{Block: block, Pref: pref, AllocCycle: cycle}
	m.entries[block] = e
	if len(m.entries) > m.peakUsed {
		m.peakUsed = len(m.entries)
	}
	return e
}

// Release removes the entry for the block (on fill) and returns it, or nil
// if no entry existed.
func (m *MSHRFile) Release(block Addr) *MSHREntry {
	e, ok := m.entries[block]
	if !ok {
		return nil
	}
	delete(m.entries, block)
	return e
}
