package cache

// MSHREntry tracks one in-flight miss. The paper adds a pref-bit to each L2
// MSHR entry: when a demand request hits an entry whose pref-bit is set,
// the prefetch is late (Section 3.1.2).
//
// Completion wake-ups are not stored here: same-block demand requests merge
// in the hierarchy's L1-miss table before they ever reach the L2, so an
// MSHR entry has at most one continuation — "fill the L1" — and exactly
// when DemandMerged is set. The owner schedules that continuation itself,
// which keeps the entry a small plain value that can live in a slab.
type MSHREntry struct {
	Block Addr
	// Pref is set while the in-flight request is still "a prefetch", i.e.
	// no demand has asked for the block yet.
	Pref bool
	// DemandMerged is true once at least one demand request merged into
	// this entry; the fill then completes those demands.
	DemandMerged bool
	// Issued is true once the request has been handed to the bus queue.
	Issued bool
	// AllocCycle records when the entry was allocated (for tests/debug).
	AllocCycle uint64
}

// MSHRFile models a fully associative miss-status holding register file
// with merging: one entry per in-flight block. Entries live in a slab
// sized at construction, so the allocate/release cycle of the simulator's
// steady state touches no heap memory.
type MSHRFile struct {
	cap     int
	slab    []MSHREntry
	free    []int32
	entries map[Addr]int32
	// peakUsed tracks the high-water mark for statistics.
	peakUsed int
}

// NewMSHRFile creates an MSHR file with the given entry capacity.
func NewMSHRFile(capacity int) *MSHRFile {
	m := &MSHRFile{
		cap:     capacity,
		slab:    make([]MSHREntry, capacity),
		free:    make([]int32, capacity),
		entries: make(map[Addr]int32, capacity),
	}
	for i := range m.free {
		m.free[i] = int32(capacity - 1 - i)
	}
	return m
}

// Lookup returns the in-flight entry for the block, or nil. The pointer is
// into the slab: it stays valid while the entry is live, and its contents
// only until the slot is released and reallocated.
func (m *MSHRFile) Lookup(block Addr) *MSHREntry {
	i, ok := m.entries[block]
	if !ok {
		return nil
	}
	return &m.slab[i]
}

// Full reports whether no further entries can be allocated.
func (m *MSHRFile) Full() bool { return len(m.entries) >= m.cap }

// Used returns the number of live entries.
func (m *MSHRFile) Used() int { return len(m.entries) }

// Peak returns the high-water mark of live entries.
func (m *MSHRFile) Peak() int { return m.peakUsed }

// Allocate creates an entry for the block. It returns nil when the file is
// full or the block already has an entry (callers must Lookup first to
// merge instead).
func (m *MSHRFile) Allocate(block Addr, pref bool, cycle uint64) *MSHREntry {
	if m.Full() {
		return nil
	}
	if _, ok := m.entries[block]; ok {
		return nil
	}
	i := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.slab[i] = MSHREntry{Block: block, Pref: pref, AllocCycle: cycle}
	m.entries[block] = i
	if len(m.entries) > m.peakUsed {
		m.peakUsed = len(m.entries)
	}
	return &m.slab[i]
}

// Release removes the entry for the block (on fill) and returns it, or nil
// if no entry existed. The returned pointer's contents are valid until the
// next Allocate reuses the slot.
func (m *MSHRFile) Release(block Addr) *MSHREntry {
	i, ok := m.entries[block]
	if !ok {
		return nil
	}
	delete(m.entries, block)
	m.free = append(m.free, i)
	return &m.slab[i]
}
