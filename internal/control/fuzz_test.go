package control

import (
	"errors"
	"testing"

	"fdpsim/internal/core"
)

// FuzzTreeModel drives LoadTree with arbitrary bytes: any outcome other
// than a clean load or an error matching ErrInvalid (in particular any
// panic, and any non-terminating or out-of-range evaluation of a model
// that did load) is a bug. Wired into `make fuzz-smoke` and CI.
func FuzzTreeModel(f *testing.F) {
	f.Add([]byte(`{`))
	f.Add([]byte(`{"version":1,"features":["accuracy"],"nodes":[{"leaf":true}]}`))
	f.Add([]byte(`{"version":1,"features":["accuracy"],"nodes":[{"feature":0,"threshold":0.5,"left":1,"right":2},{"leaf":true,"delta":1},{"leaf":true,"delta":-1,"insertion":"lru"}]}`))
	f.Add([]byte(`{"version":1,"features":["accuracy"],"nodes":[{"feature":0,"threshold":1,"left":0,"right":0}]}`))
	f.Add([]byte(`{"version":1,"features":["bus_util","polluting"],"nodes":[{"feature":1,"threshold":0.5,"left":1,"right":1},{"leaf":true,"delta":4,"insertion":"mru"}]}`))
	f.Add(defaultTreeModel)

	f.Fuzz(func(t *testing.T, model []byte) {
		c, err := LoadTree(model, core.DefaultThresholds())
		if err != nil {
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("LoadTree error does not match ErrInvalid: %v", err)
			}
			return
		}
		// A model that validated must evaluate safely on any signals.
		for _, s := range []Signals{
			{},
			{Accuracy: 1, Lateness: 1, Pollution: 1, AccClass: core.AccHigh, Late: true, Polluting: true, Level: 5, BusUtilization: 1},
			{Accuracy: 0.5, Pollution: 0.2, AccClass: core.AccMedium, Level: 1, BusUtilization: 0.5},
		} {
			d := c.Decide(s)
			if d.Level < core.MinLevel || d.Level > core.MaxLevel {
				t.Fatalf("loaded model decided out-of-range level %d", d.Level)
			}
		}
	})
}
