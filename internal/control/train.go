package control

import (
	"fmt"
	"sort"
)

// Sample is one training example for FitTree: the feature vector of an
// interval (in the caller-declared feature order) and the labeled
// decision taken on it — the aggressiveness delta and insertion policy.
// fdpsim -decision-log emits rows in exactly this shape; see
// docs/CONTROLLERS.md for the worked train/eval example.
type Sample struct {
	Features  []float64
	Delta     int
	Insertion string // "mid", "lru-4", "lru", "mru", or "paper"
}

// FitOptions bounds the CART fit.
type FitOptions struct {
	MaxDepth  int // default 6
	MinLeaf   int // minimum samples per leaf, default 8
	MaxSplits int // candidate thresholds considered per feature, default 32
}

func (o FitOptions) withDefaults() FitOptions {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 6
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 8
	}
	if o.MaxSplits <= 0 {
		o.MaxSplits = 32
	}
	return o
}

// label is the joint (delta, insertion) class a leaf predicts.
type label struct {
	delta     int
	insertion string
}

// FitTree fits a CART decision tree (Gini impurity, axis-aligned splits)
// over the joint (delta, insertion) label and returns it as a TreeModel
// ready to serialize or load. features names each column of the sample
// vectors and must be drawn from FeatureNames(). The returned model
// always passes LoadTree's validation (this is tested).
func FitTree(samples []Sample, features []string, opts FitOptions) (*TreeModel, error) {
	opts = opts.withDefaults()
	if len(samples) == 0 {
		return nil, fmt.Errorf("%w: fit: no samples", ErrInvalid)
	}
	for _, name := range features {
		if _, ok := featureByName(name); !ok {
			return nil, fmt.Errorf("%w: fit: unknown feature %q (have %v)", ErrInvalid, name, FeatureNames())
		}
	}
	for i, s := range samples {
		if len(s.Features) != len(features) {
			return nil, fmt.Errorf("%w: fit: sample %d has %d features, want %d", ErrInvalid, i, len(s.Features), len(features))
		}
		if _, ok := insertionNames[s.Insertion]; !ok {
			return nil, fmt.Errorf("%w: fit: sample %d: unknown insertion %q", ErrInvalid, i, s.Insertion)
		}
		if s.Delta < -4 || s.Delta > 4 {
			return nil, fmt.Errorf("%w: fit: sample %d: delta %d out of range [-4, 4]", ErrInvalid, i, s.Delta)
		}
	}

	m := &TreeModel{Version: 1, Features: features}
	f := fitter{opts: opts, model: m}
	f.grow(samples, 0)
	return m, nil
}

type fitter struct {
	opts  FitOptions
	model *TreeModel
}

// grow appends the subtree for samples to the model and returns its root
// index. Children are appended after their parent, so the emitted model
// is topologically ordered (and therefore trivially acyclic).
func (f *fitter) grow(samples []Sample, depth int) int {
	idx := len(f.model.Nodes)
	maj := majority(samples)
	if depth >= f.opts.MaxDepth || len(samples) < 2*f.opts.MinLeaf || gini(samples) == 0 {
		f.model.Nodes = append(f.model.Nodes, TreeNode{Leaf: true, Delta: maj.delta, Insertion: maj.insertion})
		return idx
	}
	feat, thresh, ok := f.bestSplit(samples)
	if !ok {
		f.model.Nodes = append(f.model.Nodes, TreeNode{Leaf: true, Delta: maj.delta, Insertion: maj.insertion})
		return idx
	}
	var left, right []Sample
	for _, s := range samples {
		if s.Features[feat] < thresh {
			left = append(left, s)
		} else {
			right = append(right, s)
		}
	}
	// Reserve the internal node's slot, then fill in the child indices
	// once the recursion has appended them.
	f.model.Nodes = append(f.model.Nodes, TreeNode{Feature: feat, Threshold: thresh})
	l := f.grow(left, depth+1)
	r := f.grow(right, depth+1)
	f.model.Nodes[idx].Left = l
	f.model.Nodes[idx].Right = r
	return idx
}

// bestSplit scans every feature's candidate thresholds for the split
// with the largest Gini impurity decrease that leaves at least MinLeaf
// samples on each side.
func (f *fitter) bestSplit(samples []Sample) (feat int, thresh float64, ok bool) {
	base := gini(samples)
	best := 0.0
	nf := len(samples[0].Features)
	vals := make([]float64, 0, len(samples))
	for fi := 0; fi < nf; fi++ {
		vals = vals[:0]
		for _, s := range samples {
			vals = append(vals, s.Features[fi])
		}
		sort.Float64s(vals)
		// Distinct values only: midpoints between consecutive distinct
		// neighbors are the candidate thresholds, subsampled down to
		// MaxSplits when the feature is high-cardinality.
		uniq := vals[:0]
		for i, v := range vals {
			if i == 0 || v != uniq[len(uniq)-1] {
				uniq = append(uniq, v)
			}
		}
		step := 1
		if len(uniq) > f.opts.MaxSplits {
			step = len(uniq) / f.opts.MaxSplits
		}
		for i := step; i < len(uniq); i += step {
			t := (uniq[i] + uniq[i-1]) / 2
			var left, right []Sample
			for _, s := range samples {
				if s.Features[fi] < t {
					left = append(left, s)
				} else {
					right = append(right, s)
				}
			}
			if len(left) < f.opts.MinLeaf || len(right) < f.opts.MinLeaf {
				continue
			}
			n := float64(len(samples))
			gain := base - float64(len(left))/n*gini(left) - float64(len(right))/n*gini(right)
			if gain > best {
				best, feat, thresh, ok = gain, fi, t, true
			}
		}
	}
	return feat, thresh, ok
}

func gini(samples []Sample) float64 {
	counts := map[label]int{}
	for _, s := range samples {
		counts[label{s.Delta, s.Insertion}]++
	}
	n := float64(len(samples))
	g := 1.0
	for _, c := range counts {
		p := float64(c) / n
		g -= p * p
	}
	return g
}

func majority(samples []Sample) label {
	counts := map[label]int{}
	for _, s := range samples {
		counts[label{s.Delta, s.Insertion}]++
	}
	var best label
	bestN := -1
	for l, c := range counts {
		// Deterministic tie-break on the label itself.
		if c > bestN || (c == bestN && less(l, best)) {
			best, bestN = l, c
		}
	}
	return best
}

func less(a, b label) bool {
	if a.delta != b.delta {
		return a.delta < b.delta
	}
	return a.insertion < b.insertion
}
