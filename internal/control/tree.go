package control

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"math"

	"fdpsim/internal/cache"
	"fdpsim/internal/core"
)

// defaultTreeModel is the checked-in model for the "tree" controller:
// fitted by scripts/train_tree from a -decision-log feature dump (see
// docs/CONTROLLERS.md for the worked example that regenerates it).
//
//go:embed model_default.json
var defaultTreeModel []byte

// Feature identifiers a tree model may split on. The model file names
// features as strings; they are compiled down to this enum at load time
// so evaluation never touches the name table.
type feature uint8

const (
	fAccuracy feature = iota
	fLateness
	fPollution
	fBusUtil
	fLevel
	fAccClass
	fLate
	fPolluting
	numFeatures
)

var featureNames = [numFeatures]string{
	"accuracy", "lateness", "pollution", "bus_util",
	"level", "acc_class", "late", "polluting",
}

// FeatureNames returns the feature identifiers a model file may use, in
// canonical order — the same order the -decision-log dump emits them.
func FeatureNames() []string {
	out := make([]string, numFeatures)
	copy(out, featureNames[:])
	return out
}

func featureByName(name string) (feature, bool) {
	for i, n := range featureNames {
		if n == name {
			return feature(i), true
		}
	}
	return 0, false
}

// Extract returns the named feature's value from a Signals reading.
// Booleans map to 0/1 and AccuracyClass to its ordinal (Low=0, Medium=1,
// High=2), so every feature is a plain float comparison in the tree.
func extract(s Signals, f feature) float64 {
	switch f {
	case fAccuracy:
		return s.Accuracy
	case fLateness:
		return s.Lateness
	case fPollution:
		return s.Pollution
	case fBusUtil:
		return s.BusUtilization
	case fLevel:
		return float64(s.Level)
	case fAccClass:
		return float64(s.AccClass)
	case fLate:
		if s.Late {
			return 1
		}
		return 0
	default: // fPolluting
		if s.Polluting {
			return 1
		}
		return 0
	}
}

// TreeModel is the on-disk schema of a decision-tree model file
// (docs/CONTROLLERS.md documents it with an example). Nodes form an
// index-linked binary tree rooted at node 0: internal nodes route
// feature < threshold to Left and feature >= threshold to Right; leaves
// carry the decision. LoadTree validates the whole structure — feature
// names, index ranges, acyclicity, leaf payloads — before any Decide
// call can run it.
type TreeModel struct {
	Version  int        `json:"version"`
	Features []string   `json:"features"`
	Nodes    []TreeNode `json:"nodes"`
}

// TreeNode is one node of a TreeModel. Exactly one of the two shapes is
// valid: an internal node (Leaf false) with Feature/Threshold/Left/
// Right, or a leaf (Leaf true) with Delta and Insertion.
type TreeNode struct {
	// Internal nodes.
	Feature   int     `json:"feature,omitempty"`   // index into Features
	Threshold float64 `json:"threshold,omitempty"` // split value
	Left      int     `json:"left,omitempty"`      // node index when feature < threshold
	Right     int     `json:"right,omitempty"`     // node index when feature >= threshold

	// Leaves.
	Leaf      bool   `json:"leaf,omitempty"`
	Delta     int    `json:"delta,omitempty"`     // aggressiveness level change
	Insertion string `json:"insertion,omitempty"` // "mid", "lru-4", "lru", "mru", or "paper"
}

// maxTreeNodes bounds model size: far above any real fitted tree, low
// enough that hostile inputs cannot balloon validation or memory.
const maxTreeNodes = 1 << 15

// compiled node: feature enum resolved, insertion pre-decoded
// (insPaper = use the pollution-directed policy), leaf reason string
// pre-formatted so Decide never allocates.
type treeNode struct {
	feat        feature
	thresh      float64
	left, right int32
	leaf        bool
	delta       int8
	insertion   int8
	pc          core.PolicyCase
}

const insPaper int8 = -1

var insertionNames = map[string]int8{
	"lru":   int8(cache.PosLRU),
	"lru-4": int8(cache.PosLRU4),
	"mid":   int8(cache.PosMID),
	"mru":   int8(cache.PosMRU),
	"paper": insPaper,
	"":      insPaper, // omitted = defer to the paper insertion policy
}

// treeController evaluates a compiled decision tree. The struct is held
// by pointer behind the Controller interface; Decide walks the node
// slice iteratively and allocates nothing.
type treeController struct {
	nodes []treeNode
	th    core.Thresholds
}

// LoadTree parses and validates a tree model file and returns the
// "tree" controller over it. Every malformation — bad JSON, unknown
// version or feature, out-of-range node indices, cyclic references,
// out-of-range leaf deltas, unknown insertion names — is reported as an
// error matching ErrInvalid; LoadTree never panics on hostile input
// (FuzzTreeModel enforces this).
func LoadTree(model []byte, th core.Thresholds) (Controller, error) {
	var m TreeModel
	if err := json.Unmarshal(model, &m); err != nil {
		return nil, fmt.Errorf("%w: tree model: %v", ErrInvalid, err)
	}
	c, err := compileTree(&m, th)
	if err != nil {
		return nil, err
	}
	return c, nil
}

func compileTree(m *TreeModel, th core.Thresholds) (*treeController, error) {
	if m.Version != 1 {
		return nil, fmt.Errorf("%w: tree model: unsupported version %d", ErrInvalid, m.Version)
	}
	if len(m.Nodes) == 0 {
		return nil, fmt.Errorf("%w: tree model: no nodes", ErrInvalid)
	}
	if len(m.Nodes) > maxTreeNodes {
		return nil, fmt.Errorf("%w: tree model: %d nodes exceeds limit %d", ErrInvalid, len(m.Nodes), maxTreeNodes)
	}
	feats := make([]feature, len(m.Features))
	seen := make(map[string]bool, len(m.Features))
	for i, name := range m.Features {
		f, ok := featureByName(name)
		if !ok {
			return nil, fmt.Errorf("%w: tree model: unknown feature %q (have %v)", ErrInvalid, name, FeatureNames())
		}
		if seen[name] {
			return nil, fmt.Errorf("%w: tree model: duplicate feature %q", ErrInvalid, name)
		}
		seen[name] = true
		feats[i] = f
	}

	nodes := make([]treeNode, len(m.Nodes))
	for i, n := range m.Nodes {
		if n.Leaf {
			if n.Delta < -4 || n.Delta > 4 {
				return nil, fmt.Errorf("%w: tree model: node %d: leaf delta %d out of range [-4, 4]", ErrInvalid, i, n.Delta)
			}
			ins, ok := insertionNames[n.Insertion]
			if !ok {
				return nil, fmt.Errorf("%w: tree model: node %d: unknown insertion %q", ErrInvalid, i, n.Insertion)
			}
			nodes[i] = treeNode{
				leaf:      true,
				delta:     int8(n.Delta),
				insertion: ins,
				pc: core.PolicyCase{
					Update: core.CounterUpdate(clampUpdate(n.Delta)),
					Reason: fmt.Sprintf("tree leaf %d: delta %+d, insertion %s", i, n.Delta, insName(ins)),
				},
			}
			continue
		}
		if n.Feature < 0 || n.Feature >= len(feats) {
			return nil, fmt.Errorf("%w: tree model: node %d: feature index %d out of range (model has %d features)", ErrInvalid, i, n.Feature, len(feats))
		}
		if math.IsNaN(n.Threshold) || math.IsInf(n.Threshold, 0) {
			return nil, fmt.Errorf("%w: tree model: node %d: threshold is not finite", ErrInvalid, i)
		}
		if n.Left < 0 || n.Left >= len(m.Nodes) || n.Right < 0 || n.Right >= len(m.Nodes) {
			return nil, fmt.Errorf("%w: tree model: node %d: child index out of range [0, %d)", ErrInvalid, i, len(m.Nodes))
		}
		nodes[i] = treeNode{
			feat:   feats[n.Feature],
			thresh: n.Threshold,
			left:   int32(n.Left),
			right:  int32(n.Right),
		}
	}

	// DFS from the root rejects cyclic references (a node on the current
	// path reached again) so evaluation is guaranteed to terminate.
	const (
		white = 0 // unvisited
		grey  = 1 // on the current DFS path
		black = 2 // fully explored
	)
	color := make([]uint8, len(nodes))
	var visit func(i int32) error
	visit = func(i int32) error {
		switch color[i] {
		case grey:
			return fmt.Errorf("%w: tree model: cyclic reference through node %d", ErrInvalid, i)
		case black:
			return nil
		}
		color[i] = grey
		if !nodes[i].leaf {
			if err := visit(nodes[i].left); err != nil {
				return err
			}
			if err := visit(nodes[i].right); err != nil {
				return err
			}
		}
		color[i] = black
		return nil
	}
	if err := visit(0); err != nil {
		return nil, err
	}

	return &treeController{nodes: nodes, th: th}, nil
}

func clampUpdate(d int) int {
	if d < -1 {
		return -1
	}
	if d > 1 {
		return 1
	}
	return d
}

func insName(ins int8) string {
	if ins == insPaper {
		return "paper"
	}
	return cache.InsertPos(ins).String()
}

func (c *treeController) Name() string { return "tree" }
func (c *treeController) Describe() string {
	return fmt.Sprintf("trained decision tree (%d nodes) over interval signals", len(c.nodes))
}

func (c *treeController) Decide(s Signals) Decision {
	i := int32(0)
	// Acyclicity was proven at load; the bound is belt and braces.
	for steps := 0; steps <= len(c.nodes); steps++ {
		n := &c.nodes[i]
		if n.leaf {
			ins := cache.InsertPos(n.insertion)
			if n.insertion == insPaper {
				ins = core.InsertionFor(s.Pollution, c.th.PLow, c.th.PHigh)
			}
			return Decision{
				Level:     core.ClampLevel(s.Level + int(n.delta)),
				Insertion: ins,
				Case:      n.pc,
			}
		}
		if extract(s, n.feat) < n.thresh {
			i = n.left
		} else {
			i = n.right
		}
	}
	// Unreachable: compileTree rejects cycles.
	panic("control: tree evaluation did not terminate")
}
