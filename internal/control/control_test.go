package control

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"fdpsim/internal/cache"
	"fdpsim/internal/core"
)

func params() Params {
	return Params{Thresholds: core.DefaultThresholds()}
}

// signalsGrid enumerates a broad sweep of Signals values: every
// classification cell crossed with a range of metric values, levels, and
// bus utilizations.
func signalsGrid() []Signals {
	var out []Signals
	var interval uint64
	for _, acc := range []float64{0, 0.2, 0.41, 0.6, 0.76, 1} {
		for _, lat := range []float64{0, 0.005, 0.02, 0.5} {
			for _, pol := range []float64{0, 0.05, 0.09, 0.2, 0.5} {
				for level := core.MinLevel; level <= core.MaxLevel; level++ {
					for _, bus := range []float64{0, 0.3, 0.5, 0.9} {
						th := core.DefaultThresholds()
						var ac core.AccuracyClass
						switch {
						case acc >= th.AHigh:
							ac = core.AccHigh
						case acc >= th.ALow:
							ac = core.AccMedium
						default:
							ac = core.AccLow
						}
						interval++
						out = append(out, Signals{
							Interval:       interval,
							Accuracy:       acc,
							Lateness:       lat,
							Pollution:      pol,
							AccClass:       ac,
							Late:           lat >= th.TLateness,
							Polluting:      pol >= th.TPollution,
							Level:          level,
							Insertion:      cache.PosMID,
							BusUtilization: bus,
						})
					}
				}
			}
		}
	}
	return out
}

// TestFDPControllerEquivalence pins the tentpole's bit-identity claim at
// the unit level: the registry's "fdp" controller and core.PaperDecision
// agree on every cell of the signals grid, for both the full policy and
// the accuracy-only ablation.
func TestFDPControllerEquivalence(t *testing.T) {
	for _, ablation := range []bool{false, true} {
		p := params()
		p.AccuracyOnly = ablation
		c, err := Build("fdp", p)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range signalsGrid() {
			got := c.Decide(s)
			want := core.PaperDecision(s, p.Thresholds, ablation)
			if got != want {
				t.Fatalf("ablation=%v signals=%+v: controller=%+v paper=%+v", ablation, s, got, want)
			}
		}
	}
}

func TestRegistry(t *testing.T) {
	infos := List()
	want := []string{"fdp", "static-1", "static-2", "static-3", "static-4", "static-5", "dspatch-dual", "tree"}
	if len(infos) != len(want) {
		t.Fatalf("List() returned %d controllers, want %d", len(infos), len(want))
	}
	for i, w := range want {
		if infos[i].Name != w {
			t.Errorf("List()[%d].Name = %q, want %q", i, infos[i].Name, w)
		}
		if len(infos[i].Tags) == 0 || infos[i].Description == "" {
			t.Errorf("%s: missing tags or description", w)
		}
		if !Known(w) {
			t.Errorf("Known(%q) = false", w)
		}
		c, err := Build(w, params())
		if err != nil {
			t.Fatalf("Build(%q): %v", w, err)
		}
		if c.Name() != w {
			t.Errorf("Build(%q).Name() = %q", w, c.Name())
		}
		if c.Describe() == "" {
			t.Errorf("%s: empty Describe()", w)
		}
	}
	if !Known("") {
		t.Error("Known(\"\") = false, want true (alias for fdp)")
	}
	if Known("nope") {
		t.Error("Known(\"nope\") = true")
	}
	if c, err := Build("", params()); err != nil || c.Name() != "fdp" {
		t.Errorf("Build(\"\") = %v, %v; want fdp controller", c, err)
	}
	if _, err := Build("nope", params()); !errors.Is(err, ErrInvalid) {
		t.Errorf("Build(\"nope\") error = %v, want ErrInvalid", err)
	}
}

func TestStaticControllers(t *testing.T) {
	for level := 1; level <= 5; level++ {
		c, err := Build(fmt.Sprintf("static-%d", level), params())
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range signalsGrid() {
			d := c.Decide(s)
			if d.Level != level {
				t.Fatalf("static-%d decided level %d", level, d.Level)
			}
			th := core.DefaultThresholds()
			if want := core.InsertionFor(s.Pollution, th.PLow, th.PHigh); d.Insertion != want {
				t.Fatalf("static-%d insertion %v, want paper policy %v", level, d.Insertion, want)
			}
		}
	}
}

func TestDSPatchModes(t *testing.T) {
	c, err := Build("dspatch-dual", params())
	if err != nil {
		t.Fatal(err)
	}
	base := Signals{AccClass: core.AccMedium, Level: 3, Accuracy: 0.5}

	s := base
	s.BusUtilization = 0.1
	if d := c.Decide(s); d.Level != 4 {
		t.Errorf("headroom: level %d, want 4 (coverage bias increments)", d.Level)
	}
	s.AccClass = core.AccLow
	if d := c.Decide(s); d.Level != 3 {
		t.Errorf("headroom + low accuracy: level %d, want 3 (hold)", d.Level)
	}

	s = base
	s.BusUtilization = 0.9
	if d := c.Decide(s); d.Level != 2 {
		t.Errorf("saturated: level %d, want 2 (accuracy bias decrements)", d.Level)
	}
	s.AccClass = core.AccHigh
	if d := c.Decide(s); d.Level != 3 {
		t.Errorf("saturated + accurate clean: level %d, want 3 (hold)", d.Level)
	}

	// Middle band defers to the paper policy exactly.
	for _, sig := range signalsGrid() {
		if sig.BusUtilization < headroomUtil || sig.BusUtilization >= saturatedUtil {
			continue
		}
		if got, want := c.Decide(sig), core.PaperDecision(sig, core.DefaultThresholds(), false); got != want {
			t.Fatalf("middle band diverged from paper: %+v vs %+v", got, want)
		}
	}
}

func TestDefaultTreeModelLoads(t *testing.T) {
	c, err := Build("tree", params())
	if err != nil {
		t.Fatalf("embedded default model failed to load: %v", err)
	}
	for _, s := range signalsGrid() {
		d := c.Decide(s)
		if d.Level < core.MinLevel || d.Level > core.MaxLevel {
			t.Fatalf("tree decided out-of-range level %d", d.Level)
		}
	}
}

func TestLoadTreeRejects(t *testing.T) {
	cases := map[string]string{
		"bad json":          `{`,
		"bad version":       `{"version":2,"features":["accuracy"],"nodes":[{"leaf":true}]}`,
		"no nodes":          `{"version":1,"features":["accuracy"],"nodes":[]}`,
		"unknown feature":   `{"version":1,"features":["vibes"],"nodes":[{"leaf":true}]}`,
		"duplicate feature": `{"version":1,"features":["accuracy","accuracy"],"nodes":[{"leaf":true}]}`,
		"feature oob":       `{"version":1,"features":["accuracy"],"nodes":[{"feature":3,"threshold":1,"left":1,"right":1},{"leaf":true}]}`,
		"child oob":         `{"version":1,"features":["accuracy"],"nodes":[{"feature":0,"threshold":1,"left":5,"right":1},{"leaf":true}]}`,
		"negative child":    `{"version":1,"features":["accuracy"],"nodes":[{"feature":0,"threshold":1,"left":-1,"right":1},{"leaf":true}]}`,
		"self cycle":        `{"version":1,"features":["accuracy"],"nodes":[{"feature":0,"threshold":1,"left":0,"right":0}]}`,
		"two cycle":         `{"version":1,"features":["accuracy"],"nodes":[{"feature":0,"threshold":1,"left":1,"right":1},{"feature":0,"threshold":2,"left":0,"right":0}]}`,
		"delta oob":         `{"version":1,"features":["accuracy"],"nodes":[{"leaf":true,"delta":9}]}`,
		"bad insertion":     `{"version":1,"features":["accuracy"],"nodes":[{"leaf":true,"insertion":"front"}]}`,
	}
	for name, model := range cases {
		if _, err := LoadTree([]byte(model), core.DefaultThresholds()); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: error = %v, want ErrInvalid", name, err)
		}
	}
}

// TestDecideAllocs enforces the tentpole's hot-path requirement: every
// registered controller's Decide is allocation-free.
func TestDecideAllocs(t *testing.T) {
	grid := signalsGrid()
	for _, info := range List() {
		c, err := Build(info.Name, params())
		if err != nil {
			t.Fatal(err)
		}
		var sink Decision
		avg := testing.AllocsPerRun(200, func() {
			for _, s := range grid[:50] {
				sink = c.Decide(s)
			}
		})
		if avg != 0 {
			t.Errorf("%s: Decide allocates %.1f objects per 50 calls, want 0", info.Name, avg)
		}
		_ = sink
	}
}

// TestFitTreeRoundTrip fits a tree on labeled samples generated by the
// paper policy, checks the emitted model validates and loads, and that
// the fitted controller reproduces the majority behavior it was
// trained on.
func TestFitTreeRoundTrip(t *testing.T) {
	features := []string{"acc_class", "late", "polluting", "pollution"}
	th := core.DefaultThresholds()
	var samples []Sample
	var sigs []Signals
	for _, s := range signalsGrid() {
		d := core.PaperDecision(s, th, false)
		// Label with the unclamped Table 2 update: the clamped delta
		// depends on the level, which is deliberately not a feature here.
		samples = append(samples, Sample{
			Features:  []float64{float64(s.AccClass), b2f(s.Late), b2f(s.Polluting), s.Pollution},
			Delta:     int(core.LookupPolicy(s.AccClass, s.Late, s.Polluting).Update),
			Insertion: strings.ToLower(d.Insertion.String()),
		})
		sigs = append(sigs, s)
	}
	m, err := FitTree(samples, features, FitOptions{MaxDepth: 8, MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	c, err := LoadTree(blob, th)
	if err != nil {
		t.Fatalf("fitted model does not load: %v", err)
	}
	agree := 0
	for i, s := range sigs {
		d := c.Decide(s)
		if d.Level == core.ClampLevel(s.Level+samples[i].Delta) {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(sigs)); frac < 0.9 {
		t.Errorf("fitted tree agrees with its training labels on only %.1f%% of samples", frac*100)
	}
}

func TestFitTreeRejects(t *testing.T) {
	if _, err := FitTree(nil, []string{"accuracy"}, FitOptions{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("no samples: %v, want ErrInvalid", err)
	}
	if _, err := FitTree([]Sample{{Features: []float64{1}}}, []string{"vibes"}, FitOptions{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("unknown feature: %v, want ErrInvalid", err)
	}
	if _, err := FitTree([]Sample{{Features: []float64{1, 2}}}, []string{"accuracy"}, FitOptions{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("arity mismatch: %v, want ErrInvalid", err)
	}
	if _, err := FitTree([]Sample{{Features: []float64{1}, Insertion: "front"}}, []string{"accuracy"}, FitOptions{}); !errors.Is(err, ErrInvalid) {
		t.Errorf("bad insertion label: %v, want ErrInvalid", err)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
