// Package control is the registry of pluggable feedback controllers:
// decision policies that map the per-interval Signals measured by the
// core FDP engine (accuracy, lateness, pollution, bandwidth occupancy)
// to a Decision (next aggressiveness level, prefetch insertion
// position). The paper's Table 2 policy is the default "fdp" controller;
// static baselines, a DSPatch-style dual-mode switcher, and a trained
// decision tree compete against it through the same interface. See
// docs/CONTROLLERS.md for the contract and the model-file schema.
package control

import (
	"errors"
	"fmt"
	"sort"

	"fdpsim/internal/core"
)

// Signals and Decision are the core engine's types, re-exported so
// controller implementations and their callers need only this package.
type (
	Signals  = core.Signals
	Decision = core.Decision
)

// ErrInvalid reports an unknown controller name or a malformed
// decision-tree model file. It matches via errors.Is.
var ErrInvalid = errors.New("control: invalid")

// Controller is a named decision policy. Decide is called synchronously
// at every sampling-interval boundary and must be cheap and
// allocation-free (enforced by TestDecideAllocs); Name and Describe feed
// the registry listing, result labeling, and config fingerprints.
type Controller interface {
	core.Decider
	Name() string
	Describe() string
}

// Params carries the per-run inputs a controller build may consume: the
// classification thresholds in effect (controllers that reuse the paper
// policy respect them), the Section 5.6 accuracy-only ablation flag, and
// the serialized decision-tree model for the "tree" controller (nil
// selects the embedded default model).
type Params struct {
	Thresholds   core.Thresholds
	AccuracyOnly bool
	Model        []byte
}

// Info describes one registered controller for listings.
type Info struct {
	Name        string
	Tags        []string // "paper", "static", "learned"
	Description string
}

type entry struct {
	info  Info
	build func(p Params) (Controller, error)
}

// The registry is a fixed ordered table: deterministic listings, no
// init-order or mutation concerns.
var registry = []entry{
	{
		info: Info{
			Name:        "fdp",
			Tags:        []string{"paper"},
			Description: "Table 2 feedback policy + pollution-directed insertion (the paper; default)",
		},
		build: func(p Params) (Controller, error) {
			return fdpController{th: p.Thresholds, accuracyOnly: p.AccuracyOnly}, nil
		},
	},
	{
		info: Info{
			Name:        "static-1",
			Tags:        []string{"static"},
			Description: "fixed aggressiveness level 1 (Very Conservative), paper insertion",
		},
		build: staticBuilder(1),
	},
	{
		info: Info{
			Name:        "static-2",
			Tags:        []string{"static"},
			Description: "fixed aggressiveness level 2 (Conservative), paper insertion",
		},
		build: staticBuilder(2),
	},
	{
		info: Info{
			Name:        "static-3",
			Tags:        []string{"static"},
			Description: "fixed aggressiveness level 3 (Middle-of-the-Road), paper insertion",
		},
		build: staticBuilder(3),
	},
	{
		info: Info{
			Name:        "static-4",
			Tags:        []string{"static"},
			Description: "fixed aggressiveness level 4 (Aggressive), paper insertion",
		},
		build: staticBuilder(4),
	},
	{
		info: Info{
			Name:        "static-5",
			Tags:        []string{"static"},
			Description: "fixed aggressiveness level 5 (Very Aggressive), paper insertion",
		},
		build: staticBuilder(5),
	},
	{
		info: Info{
			Name:        "dspatch-dual",
			Tags:        []string{"paper"},
			Description: "DSPatch-style dual mode: coverage-biased under bus headroom, accuracy-biased when saturated",
		},
		build: func(p Params) (Controller, error) {
			return dspatchController{th: p.Thresholds, accuracyOnly: p.AccuracyOnly}, nil
		},
	},
	{
		info: Info{
			Name:        "tree",
			Tags:        []string{"learned"},
			Description: "trained decision tree (Puppeteer-style) from a JSON model file",
		},
		build: func(p Params) (Controller, error) {
			model := p.Model
			if len(model) == 0 {
				model = defaultTreeModel
			}
			return LoadTree(model, p.Thresholds)
		},
	},
}

// List returns every registered controller in registry order.
func List() []Info {
	out := make([]Info, len(registry))
	for i, e := range registry {
		out[i] = e.info
	}
	return out
}

// Names returns the registered controller names, sorted.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.info.Name
	}
	sort.Strings(out)
	return out
}

// Known reports whether name is a registered controller. The empty
// string is accepted as an alias for the default "fdp" controller.
func Known(name string) bool {
	if name == "" {
		return true
	}
	for _, e := range registry {
		if e.info.Name == name {
			return true
		}
	}
	return false
}

// Build constructs a fresh controller instance by name. The empty string
// builds the default "fdp" controller. Unknown names and malformed model
// files report errors matching ErrInvalid.
func Build(name string, p Params) (Controller, error) {
	if name == "" {
		name = "fdp"
	}
	for _, e := range registry {
		if e.info.Name == name {
			return e.build(p)
		}
	}
	return nil, fmt.Errorf("%w: unknown controller %q (have %v)", ErrInvalid, name, Names())
}
