package control

import (
	"fmt"

	"fdpsim/internal/core"
)

// fdpController is the paper's policy behind the Controller interface.
// It delegates to core.PaperDecision — the same function the bare engine
// uses when no controller is injected — so selecting "fdp" explicitly is
// bit-identical to the default path (TestFDPControllerEquivalence pins
// this, and the engine-golden suite pins it end to end).
type fdpController struct {
	th           core.Thresholds
	accuracyOnly bool
}

func (c fdpController) Name() string { return "fdp" }
func (c fdpController) Describe() string {
	return "Table 2 feedback policy + pollution-directed insertion (the paper)"
}

func (c fdpController) Decide(s Signals) Decision {
	return core.PaperDecision(s, c.th, c.accuracyOnly)
}

// staticController pins the aggressiveness level — the paper's Section 5
// static baselines (Very Conservative .. Very Aggressive) — while
// keeping the pollution-directed insertion policy, so a static-N run
// isolates the aggressiveness axis from the insertion axis.
type staticController struct {
	level int
	th    core.Thresholds
	pc    core.PolicyCase
}

func staticBuilder(level int) func(p Params) (Controller, error) {
	return func(p Params) (Controller, error) {
		return staticController{
			level: level,
			th:    p.Thresholds,
			pc: core.PolicyCase{
				Update: core.NoChange,
				Reason: fmt.Sprintf("static baseline: hold level %d", level),
			},
		}, nil
	}
}

func (c staticController) Name() string { return fmt.Sprintf("static-%d", c.level) }
func (c staticController) Describe() string {
	return fmt.Sprintf("fixed aggressiveness level %d, paper insertion", c.level)
}

func (c staticController) Decide(s Signals) Decision {
	return Decision{
		Level:     c.level,
		Insertion: core.InsertionFor(s.Pollution, c.th.PLow, c.th.PHigh),
		Case:      c.pc,
	}
}

// dspatchController adapts DSPatch's central idea (Bera et al., MICRO
// 2019) to aggressiveness throttling: maintain two biases — a
// coverage-biased mode that ramps the prefetcher up while memory
// bandwidth has headroom, and an accuracy-biased mode that throttles
// down when the bus is near saturation — and switch between them on the
// measured bus occupancy. In the middle band it defers to the paper's
// Table 2 policy, so it degrades gracefully to FDP when bandwidth
// pressure is unremarkable (or unobserved: standalone core use reports
// zero utilization, which lands in coverage mode only if genuinely
// idle... zero reads as headroom, matching DSPatch's optimistic default).
type dspatchController struct {
	th           core.Thresholds
	accuracyOnly bool
}

// Bus-occupancy mode thresholds. DSPatch switches bias on DRAM bandwidth
// quartiles; with a single shared bus we use the measured busy fraction:
// below headroomUtil the bus is considered idle enough to chase
// coverage, above saturatedUtil accuracy is all that matters.
const (
	headroomUtil  = 0.40
	saturatedUtil = 0.75
)

var (
	dspatchCoverageCase = core.PolicyCase{
		Update: core.Increment,
		Reason: "coverage bias: bus headroom",
	}
	dspatchCoverageHoldCase = core.PolicyCase{
		Update: core.NoChange,
		Reason: "coverage bias: holding (low accuracy)",
	}
	dspatchAccuracyCase = core.PolicyCase{
		Update: core.Decrement,
		Reason: "accuracy bias: bus saturated",
	}
	dspatchAccuracyHoldCase = core.PolicyCase{
		Update: core.NoChange,
		Reason: "accuracy bias: holding (accurate, clean)",
	}
)

func (c dspatchController) Name() string { return "dspatch-dual" }
func (c dspatchController) Describe() string {
	return "dual coverage/accuracy bias switched on bus occupancy; Table 2 in the middle band"
}

func (c dspatchController) Decide(s Signals) Decision {
	ins := core.InsertionFor(s.Pollution, c.th.PLow, c.th.PHigh)
	switch {
	case s.BusUtilization < headroomUtil:
		// Coverage-biased: bandwidth is cheap, so ramp up unless the
		// prefetcher is demonstrably wasting it.
		if s.AccClass == core.AccLow && !s.Late {
			return Decision{Level: s.Level, Insertion: ins, Case: dspatchCoverageHoldCase}
		}
		return Decision{Level: core.ClampLevel(s.Level + 1), Insertion: ins, Case: dspatchCoverageCase}
	case s.BusUtilization >= saturatedUtil:
		// Accuracy-biased: every wasted transfer delays a demand. Only a
		// highly accurate, non-polluting prefetcher keeps its level.
		if s.AccClass == core.AccHigh && !s.Polluting {
			return Decision{Level: s.Level, Insertion: ins, Case: dspatchAccuracyHoldCase}
		}
		return Decision{Level: core.ClampLevel(s.Level - 1), Insertion: ins, Case: dspatchAccuracyCase}
	default:
		return core.PaperDecision(s, c.th, c.accuracyOnly)
	}
}
