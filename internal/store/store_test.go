package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fdpsim/internal/sim"
	"fdpsim/internal/stats"
)

func testResult(ipc float64) sim.Result {
	return sim.Result{
		Workload:   "seqstream",
		Prefetcher: "stream",
		IPC:        ipc,
		BPKI:       12.5,
		Counters:   stats.Counters{Cycles: 1000, Retired: uint64(1000 * ipc)},
		LevelDist:  stats.NewDistribution("level", "1", "2", "3", "4", "5"),
	}
}

func fp(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := testResult(1.5)
	if err := s.Put(fp(0), want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(fp(0))
	if !ok {
		t.Fatal("Get missed a just-Put entry")
	}
	if got.IPC != want.IPC || got.Workload != want.Workload || got.Counters.Cycles != want.Counters.Cycles {
		t.Fatalf("round trip mismatch: got %+v", got)
	}
	if got.LevelDist == nil || got.LevelDist.Label != "level" {
		t.Fatalf("distribution lost in round trip: %+v", got.LevelDist)
	}
	if _, ok := s.Get(fp(1)); ok {
		t.Fatal("Get hit an absent fingerprint")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	if err := s.Put(fp(0), testResult(2.0)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(fp(0)); !ok || got.IPC != 2.0 {
		t.Fatalf("reopened store missed the entry: ok=%v got=%+v", ok, got)
	}
}

// TestCorruptEntriesDiscarded is the satellite requirement: a truncated or
// garbage entry is a miss (and is removed), never a parse failure
// propagated to the caller.
func TestCorruptEntriesDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)

	corrupt := func(name string, mutate func(path string)) {
		t.Helper()
		if err := s.Put(fp(0), testResult(1.0)); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fp(0)[:2], fp(0)+".json")
		mutate(path)
		if _, ok := s.Get(fp(0)); ok {
			t.Fatalf("%s: corrupt entry served as a hit", name)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("%s: corrupt entry not unlinked (err=%v)", name, err)
		}
		// The store must still accept a fresh Put for the same key.
		if err := s.Put(fp(0), testResult(3.0)); err != nil {
			t.Fatalf("%s: Put after corruption: %v", name, err)
		}
		if got, ok := s.Get(fp(0)); !ok || got.IPC != 3.0 {
			t.Fatalf("%s: store did not recover: ok=%v got=%+v", name, ok, got)
		}
		os.Remove(path)
	}

	corrupt("truncated", func(p string) {
		raw, _ := os.ReadFile(p)
		os.WriteFile(p, raw[:len(raw)/2], 0o644)
	})
	corrupt("garbage", func(p string) {
		os.WriteFile(p, []byte("not json at all \x00\xff"), 0o644)
	})
	corrupt("bit-flip", func(p string) {
		raw, _ := os.ReadFile(p)
		// Flip a byte inside the payload (past the envelope prefix) so the
		// JSON still parses but the checksum no longer matches.
		raw[len(raw)/2] ^= 0x20
		os.WriteFile(p, raw, 0o644)
	})
}

func TestVersionSkewIsMissNotDeletion(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	if err := s.Put(fp(0), testResult(1.0)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fp(0)[:2], fp(0)+".json")
	raw, _ := os.ReadFile(path)
	skewed := []byte(`{"version":99,` + string(raw[len(`{"version":1,`):]))
	os.WriteFile(path, skewed, 0o644)
	if _, ok := s.Get(fp(0)); ok {
		t.Fatal("version-skewed entry served as a hit")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("version skew should not unlink (a newer binary may own it): %v", err)
	}
}

func TestRejectsPartialAndBadKeys(t *testing.T) {
	s, _ := Open(t.TempDir())
	partial := testResult(1.0)
	partial.Partial = true
	if err := s.Put(fp(0), partial); err == nil {
		t.Fatal("Put accepted a partial result")
	}
	for _, bad := range []string{"", "short", "../../../../etc/passwd", "ABCDEF0123456789", "0123456789abcdef/../x"} {
		if err := s.Put(bad, testResult(1.0)); err == nil {
			t.Fatalf("Put accepted fingerprint %q", bad)
		}
		if _, ok := s.Get(bad); ok {
			t.Fatalf("Get hit fingerprint %q", bad)
		}
	}
}

// TestConcurrentReadersWriters hammers one store with concurrent Put and
// Get across overlapping keys; run under -race (make test-race / CI) this
// is the satellite's concurrency check. Readers must only ever observe a
// complete entry or a miss.
func TestConcurrentReadersWriters(t *testing.T) {
	s, _ := Open(t.TempDir())
	const keys = 8
	const writers = 4
	const readers = 8
	const rounds = 50

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := fp(i % keys)
				if err := s.Put(k, testResult(float64(i%keys)+1)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds*2; i++ {
				k := fp(i % keys)
				if res, ok := s.Get(k); ok {
					// Entries are internally consistent: IPC encodes the key.
					if want := float64(i%keys) + 1; res.IPC != want {
						t.Errorf("torn read: key %d has IPC %v, want %v", i%keys, res.IPC, want)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
}
