package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"testing"

	"fdpsim/internal/series"
)

// futureVersionDoc patches a series document's meta frame to a future
// format version, repairing the frame CRC so only the version gate trips.
func futureVersionDoc(t *testing.T, doc []byte) []byte {
	t.Helper()
	const magicLen = 8 // "FDPSERS1"
	body := doc[magicLen:]
	size, n := binary.Uvarint(body)
	payload := append([]byte(nil), body[n+4:n+4+int(size)]...)
	patched := bytes.Replace(payload, []byte(`"version":1`), []byte(`"version":9`), 1)
	if bytes.Equal(patched, payload) {
		t.Fatal("version field not found in meta payload")
	}
	out := append([]byte(nil), doc[:magicLen+n]...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(patched))
	out = append(out, patched...)
	return append(out, body[n+4+int(size):]...)
}

const seriesFP = "fe98dc76ba54fe98dc76ba54fe98dc76ba54fe98dc76ba54fe98dc76ba54fe98"

// encodedSeries builds a small valid series document.
func encodedSeries(t *testing.T, n int) []byte {
	t.Helper()
	rec := &series.Recorder{}
	doc, err := series.Encode(rec.Series())
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		return doc
	}
	s := rec.Series()
	s.Meta.Intervals = n
	s.Meta.Workload = "chaserand"
	for i := range s.Columns {
		col := make([]float64, n)
		for j := range col {
			col[j] = float64(i*n + j)
		}
		s.Columns[i] = col
	}
	doc, err = series.Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestSeriesRoundTrip(t *testing.T) {
	s := traceStore(t)
	doc := encodedSeries(t, 8)
	if err := s.PutSeries(seriesFP, doc); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetSeries(seriesFP)
	if !ok || !bytes.Equal(got, doc) {
		t.Fatalf("GetSeries returned (%d bytes, %v), want the stored document", len(got), ok)
	}

	// Replacement is atomic and total.
	next := encodedSeries(t, 3)
	if err := s.PutSeries(seriesFP, next); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.GetSeries(seriesFP); !bytes.Equal(got, next) {
		t.Fatal("replacement not visible")
	}
}

func TestSeriesMissAndInvalidKeys(t *testing.T) {
	s := traceStore(t)
	if _, ok := s.GetSeries(seriesFP); ok {
		t.Fatal("hit on an empty store")
	}
	if err := s.PutSeries("../escape", encodedSeries(t, 1)); err == nil {
		t.Fatal("PutSeries accepted a path-escaping key")
	}
	if _, ok := s.GetSeries("../escape"); ok {
		t.Fatal("GetSeries accepted a path-escaping key")
	}
	if err := s.PutSeries(seriesFP, []byte("not a series document")); err == nil {
		t.Fatal("PutSeries accepted an undecodable document")
	}
}

// TestSeriesTruncationDiscarded tears the sidecar at several points: each
// torn file must miss and be unlinked (the trace sidecar contract).
func TestSeriesTruncationDiscarded(t *testing.T) {
	s := traceStore(t)
	doc := encodedSeries(t, 16)
	for _, cut := range []int{0, 4, len(doc) / 2, len(doc) - 1} {
		if err := s.PutSeries(seriesFP, doc); err != nil {
			t.Fatal(err)
		}
		path := s.seriesPath(seriesFP)
		if err := os.WriteFile(path, doc[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.GetSeries(seriesFP); ok {
			t.Fatalf("torn sidecar (cut %d) served", cut)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("torn sidecar (cut %d) not unlinked", cut)
		}
	}
}

// TestSeriesBitFlipsDiscarded flips bits across the document: any flip
// that breaks decoding must miss and unlink. (A flip inside the JSON meta
// frame is caught by that frame's CRC, payload flips by theirs.)
func TestSeriesBitFlipsDiscarded(t *testing.T) {
	s := traceStore(t)
	doc := encodedSeries(t, 16)
	for i := 0; i < len(doc); i += 7 {
		if err := s.PutSeries(seriesFP, doc); err != nil {
			t.Fatal(err)
		}
		path := s.seriesPath(seriesFP)
		mut := append([]byte(nil), doc...)
		mut[i] ^= 0x10
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := s.GetSeries(seriesFP); ok {
			// The only acceptable hit is a mutation Decode genuinely
			// accepts — and then the served bytes must be the file's.
			if _, err := series.Decode(got); err != nil {
				t.Fatalf("bit flip at %d served an undecodable document", i)
			}
			continue
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("bit flip at %d missed without unlinking", i)
		}
	}
}

// TestSeriesVersionSkewLeavesFile: a future-version document is a miss
// but stays on disk for newer readers — damage is unlinked, skew is not.
func TestSeriesVersionSkewLeavesFile(t *testing.T) {
	s := traceStore(t)
	if err := s.PutSeries(seriesFP, encodedSeries(t, 2)); err != nil {
		t.Fatal(err)
	}
	path := s.seriesPath(seriesFP)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	skewed := futureVersionDoc(t, raw)
	if err := os.WriteFile(path, skewed, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetSeries(seriesFP); ok {
		t.Fatal("future-version sidecar served")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal("version-skewed sidecar was unlinked; should be left for newer readers")
	}
}

// TestSeriesNotCountedByLen pins the extension choice, like traces.
func TestSeriesNotCountedByLen(t *testing.T) {
	s := traceStore(t)
	if err := s.PutSeries(seriesFP, encodedSeries(t, 1)); err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len = %d after storing only a series, want 0", got)
	}
}
