package store

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const traceFP = "ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12cd34ef56ab12"

func traceStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTraceRoundTrip(t *testing.T) {
	s := traceStore(t)
	payload := []byte("{\"interval\":1}\n{\"interval\":2}\n")
	if err := s.PutTrace(traceFP, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.GetTrace(traceFP)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("GetTrace = (%q, %v), want the stored payload", got, ok)
	}

	// Replacement is atomic and total.
	next := []byte("{\"interval\":1}\n")
	if err := s.PutTrace(traceFP, next); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.GetTrace(traceFP); !bytes.Equal(got, next) {
		t.Fatalf("after replace GetTrace = %q", got)
	}
}

func TestTraceMissAndInvalidKeys(t *testing.T) {
	s := traceStore(t)
	if _, ok := s.GetTrace(traceFP); ok {
		t.Fatal("hit on an empty store")
	}
	if err := s.PutTrace("../escape", []byte("x")); err == nil {
		t.Fatal("PutTrace accepted a path-escaping key")
	}
	if _, ok := s.GetTrace("../escape"); ok {
		t.Fatal("GetTrace accepted a path-escaping key")
	}
}

func TestTraceCorruptionDiscarded(t *testing.T) {
	s := traceStore(t)
	if err := s.PutTrace(traceFP, []byte("{\"interval\":1}\n")); err != nil {
		t.Fatal(err)
	}
	path := s.tracePath(traceFP)

	// Flip payload bytes: checksum mismatch → miss and unlink.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetTrace(traceFP); ok {
		t.Fatal("corrupt trace served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt trace not unlinked")
	}

	// Garbled header → miss and unlink.
	if err := os.MkdirAll(strings.TrimSuffix(path, "/"+traceFP+".trace.jsonl"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("not a header"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetTrace(traceFP); ok {
		t.Fatal("headerless trace served")
	}
}

// TestTraceNotCountedByLen pins the extension choice: traces are a
// sidecar artifact and must not inflate the store's Result count.
func TestTraceNotCountedByLen(t *testing.T) {
	s := traceStore(t)
	if err := s.PutTrace(traceFP, []byte("{}\n")); err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len = %d after storing only a trace, want 0", got)
	}
}
