package store

import (
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

const ledgerFP = "aabbccdd00112233"

func provAt(t *testing.T, worker string, queue, run, wall float64) Provenance {
	t.Helper()
	now := time.Now().UTC().Truncate(time.Millisecond)
	return Provenance{
		Fingerprint: ledgerFP,
		TraceID:     "trace-" + worker,
		Worker:      worker,
		LeaseGen:    0,
		Outcome:     OutcomeExecuted,
		Submitted:   now.Add(-time.Duration(wall) * time.Millisecond),
		Finished:    now,
		QueueWaitMS: queue,
		RunMS:       run,
		WallMS:      wall,
	}
}

func TestLedgerAppendRead(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Empty history reads as empty, not an error.
	if got, err := s.ReadProvenance(ledgerFP); err != nil || len(got) != 0 {
		t.Fatalf("empty ledger: got %d entries, err %v", len(got), err)
	}
	for i, w := range []string{"worker-a", "worker-b", "worker-a"} {
		p := provAt(t, w, 5, 20, 30)
		p.LeaseGen = i
		if err := s.AppendProvenance(p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.ReadProvenance(ledgerFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("ledger entries = %d, want 3", len(got))
	}
	// Oldest-first order and round-tripped fields.
	for i, want := range []string{"worker-a", "worker-b", "worker-a"} {
		if got[i].Worker != want || got[i].LeaseGen != i {
			t.Fatalf("entry %d = %+v, want worker %q gen %d", i, got[i], want, i)
		}
	}
	if got[0].Outcome != OutcomeExecuted || got[0].TraceID != "trace-worker-a" {
		t.Fatalf("round-trip lost fields: %+v", got[0])
	}
	if got[0].QueueWaitMS+got[0].RunMS > got[0].WallMS {
		t.Fatalf("duration invariant violated in round-trip: %+v", got[0])
	}
}

func TestLedgerRejectsInvalidFP(t *testing.T) {
	s, _ := Open(t.TempDir())
	if err := s.AppendProvenance(Provenance{Fingerprint: "../escape"}); err == nil {
		t.Fatal("append accepted a path-escaping fingerprint")
	}
	if _, err := s.ReadProvenance("NOPE"); err == nil {
		t.Fatal("read accepted an invalid fingerprint")
	}
}

// TestLedgerSkipsTornTail simulates a crash mid-append: the reader must
// return the intact prefix and skip the torn line.
func TestLedgerSkipsTornTail(t *testing.T) {
	s, _ := Open(t.TempDir())
	if err := s.AppendProvenance(provAt(t, "worker-a", 1, 2, 4)); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(s.ledgerPath(ledgerFP), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"version":1,"fingerprint":"aabb`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := s.ReadProvenance(ledgerFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Worker != "worker-a" {
		t.Fatalf("torn tail not skipped: %+v", got)
	}
}

// TestLedgerConcurrentAppend drives parallel appenders (the multi-worker
// fleet case, same-process flavor) and checks no line is torn.
func TestLedgerConcurrentAppend(t *testing.T) {
	s, _ := Open(t.TempDir())
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p := provAt(t, "w", 1, 2, 4)
				// Pad to make torn interleavings detectable.
				p.Error = strings.Repeat("x", 100+w)
				p.Outcome = OutcomeFailed
				if err := s.AppendProvenance(p); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got, err := s.ReadProvenance(ledgerFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*per {
		t.Fatalf("ledger entries = %d, want %d (torn or lost lines)", len(got), writers*per)
	}
}

// TestClaimTracePropagation checks the claim file carries the trace ID
// to other workers, and Gen reflects steals.
func TestClaimTracePropagation(t *testing.T) {
	s, _ := Open(t.TempDir())
	fp := "00112233aabbccdd"
	st, info, err := s.ClaimTrace(fp, "worker-a", 50*time.Millisecond, "trace-xyz")
	if err != nil || st != ClaimAcquired {
		t.Fatalf("claim: %v %v", st, err)
	}
	if info.Gen() != 0 || info.Stolen {
		t.Fatalf("fresh claim gen/stolen = %d/%v", info.Gen(), info.Stolen)
	}
	// A second worker sees the holder's trace while the lease is live.
	st2, held, err := s.Claim(fp, "worker-b", 50*time.Millisecond)
	if err != nil || st2 != ClaimHeld {
		t.Fatalf("second claim: %v %v", st2, err)
	}
	if held.Trace != "trace-xyz" {
		t.Fatalf("held claim trace = %q, want trace-xyz", held.Trace)
	}
	// After expiry, the thief joins the same trace via its own claim and
	// the generation advances.
	time.Sleep(60 * time.Millisecond)
	st3, stolen, err := s.ClaimTrace(fp, "worker-b", 50*time.Millisecond, held.Trace)
	if err != nil || st3 != ClaimAcquired {
		t.Fatalf("steal: %v %v", st3, err)
	}
	if !stolen.Stolen || stolen.Gen() != 1 || stolen.Trace != "trace-xyz" {
		t.Fatalf("steal info = %+v (gen %d)", stolen, stolen.Gen())
	}
}
