package store

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Claims turn the content-addressed store into a work-coordination
// surface for a fleet of fdpserved processes sharing one directory: a
// worker that wants to execute a fingerprint first claims it, so the
// common path runs every fingerprint exactly once across the fleet, and
// fingerprint idempotency (atomic Put, deterministic simulations) makes
// the uncommon paths — a stolen lease whose original owner was merely
// slow, a crash between Put and Release — harmless duplicate work rather
// than wrong results. The protocol is exactly-once results over
// at-least-once execution.
//
// A claim is a generation-numbered sidecar file
// <dir>/<fp[:2]>/<fp>.claim<gen> holding the owner, a random nonce and a
// lease expiry. Ownership belongs to the highest generation with a live
// lease, and every ownership transition is an O_CREATE|O_EXCL create —
// the one primitive POSIX serializes — so two racing workers can never
// both acquire:
//
//   - fresh acquire: create generation 0 exclusively;
//   - steal (highest generation expired, or torn by a crash mid-write):
//     create generation highest+1 exclusively — concurrent thieves race
//     one O_EXCL create and exactly one wins;
//   - renew/release: rewrite or remove only one's own generation file,
//     which no thief ever touches (thieves only create the next one).
//
// Lease expiry is wall-clock, so fleet machines need loosely synchronized
// clocks (skew well under the lease, which NTP is for the default 30s).

// ClaimState is the outcome of a Claim call.
type ClaimState int

const (
	// ClaimAcquired: the caller now owns the fingerprint and must execute
	// it, Put the result, and Release the claim.
	ClaimAcquired ClaimState = iota
	// ClaimHeld: another live worker owns the lease; back off until
	// ClaimInfo.Expires (a result may appear sooner).
	ClaimHeld
	// ClaimDone: a result for the fingerprint is already on disk; read it
	// with Get instead of executing.
	ClaimDone
)

// String makes test failures and log lines readable.
func (c ClaimState) String() string {
	switch c {
	case ClaimAcquired:
		return "acquired"
	case ClaimHeld:
		return "held"
	case ClaimDone:
		return "done"
	}
	return fmt.Sprintf("ClaimState(%d)", int(c))
}

// ClaimInfo describes a claim's holder.
type ClaimInfo struct {
	Version int       `json:"version"`
	Owner   string    `json:"owner"`
	Nonce   string    `json:"nonce"`
	Expires time.Time `json:"expires"`
	// Trace carries the fabric trace ID of the job the owner is executing,
	// so a worker adopting or waiting on this claim can link its spans to
	// the same trace as the executor's.
	Trace string `json:"trace,omitempty"`

	// Stolen marks an acquisition that superseded an expired or corrupt
	// claim rather than creating a fresh one. Not persisted.
	Stolen bool `json:"-"`
	gen    int
}

// Gen returns the claim's generation number: 0 for a fresh acquire,
// incremented by each steal. The lease generation in provenance ledger
// entries is this value.
func (c ClaimInfo) Gen() int { return c.gen }

const claimSuffix = ".claim"

func (s *Store) claimPath(fp string, gen int) string {
	return filepath.Join(s.dir, fp[:2], fp+claimSuffix+strconv.Itoa(gen))
}

// highestClaim finds the current generation: the largest <fp>.claim<gen>
// in the bucket. gen is -1 when no claim file exists.
func (s *Store) highestClaim(fp string) (gen int, info ClaimInfo, valid bool) {
	gen = -1
	entries, err := os.ReadDir(filepath.Join(s.dir, fp[:2]))
	if err != nil {
		return -1, ClaimInfo{}, false
	}
	prefix := fp + claimSuffix
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		g, err := strconv.Atoi(name[len(prefix):])
		if err != nil || g < 0 {
			continue
		}
		if g > gen {
			gen = g
		}
	}
	if gen < 0 {
		return -1, ClaimInfo{}, false
	}
	info, valid = s.readClaim(fp, gen)
	info.gen = gen
	return gen, info, valid
}

// newNonce returns a random identity for one claim file, letting Renew
// verify it is extending its own lease and not a same-named successor's.
func newNonce() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("store: nonce: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// Claim attempts to take ownership of a fingerprint for ttl. The caller
// identifies itself as owner (fleet worker names must be unique). See
// ClaimState for the three outcomes.
func (s *Store) Claim(fp, owner string, ttl time.Duration) (ClaimState, ClaimInfo, error) {
	return s.ClaimTrace(fp, owner, ttl, "")
}

// ClaimTrace is Claim carrying a fabric trace ID, persisted in the claim
// file so other workers touching this fingerprint can join the trace.
func (s *Store) ClaimTrace(fp, owner string, ttl time.Duration, trace string) (ClaimState, ClaimInfo, error) {
	if !validFP(fp) {
		return ClaimHeld, ClaimInfo{}, fmt.Errorf("store: invalid fingerprint %q", fp)
	}
	if ttl <= 0 {
		return ClaimHeld, ClaimInfo{}, fmt.Errorf("store: claim ttl must be positive")
	}
	// A result on disk outranks any claim: the work is already done.
	// Stat, not Get: Claim runs in polling loops and must stay cheap. If
	// the entry turns out corrupt, the caller's Get discards it and the
	// next Claim no longer sees it.
	if _, err := os.Stat(s.path(fp)); err == nil {
		return ClaimDone, ClaimInfo{}, nil
	}

	gen, cur, valid := s.highestClaim(fp)
	if valid && time.Now().Before(cur.Expires) {
		return ClaimHeld, cur, nil // live lease
	}
	// No claim, an expired lease, or a crash-torn file: race the
	// exclusive create of the next generation. Exactly one contender wins.
	next := gen + 1
	info, err := s.createClaim(fp, next, owner, ttl, trace)
	switch {
	case err == nil:
		// Re-check for a result now that the claim is ours: the opening
		// stat and the exclusive create are not atomic, so a finishing
		// worker can Put and Release entirely between them — leaving no
		// claim to observe and no result at stat time. The re-check is
		// authoritative in that direction: Put always precedes Release,
		// so any claim acquired after a Release sees the result here.
		// This turns the common adopt-after-finish race from duplicate
		// execution into ClaimDone.
		if _, serr := os.Stat(s.path(fp)); serr == nil {
			os.Remove(s.claimPath(fp, next))
			return ClaimDone, ClaimInfo{}, nil
		}
		info.Stolen = gen >= 0
		if info.Stolen {
			// The superseded generations are dead weight; removing them is
			// safe (ownership is defined by the highest generation, which
			// is ours) and keeps the bucket from accumulating files.
			for g := 0; g < next; g++ {
				os.Remove(s.claimPath(fp, g))
			}
		}
		return ClaimAcquired, info, nil
	case errors.Is(err, fs.ErrExist):
		// A racing worker won the create. Report whatever now holds the
		// claim; a torn or vanished winner reads as expiring immediately,
		// which just sends the caller around the loop again.
		if _, w, ok := s.highestClaim(fp); ok {
			return ClaimHeld, w, nil
		}
		return ClaimHeld, ClaimInfo{Expires: time.Now()}, nil
	default:
		return ClaimHeld, ClaimInfo{}, err
	}
}

// createClaim exclusively creates one generation file.
func (s *Store) createClaim(fp string, gen int, owner string, ttl time.Duration, trace string) (ClaimInfo, error) {
	nonce, err := newNonce()
	if err != nil {
		return ClaimInfo{}, err
	}
	info := ClaimInfo{Version: entryVersion, Owner: owner, Nonce: nonce, Expires: time.Now().Add(ttl), Trace: trace, gen: gen}
	raw, err := json.Marshal(info)
	if err != nil {
		return ClaimInfo{}, fmt.Errorf("store: %w", err)
	}
	path := s.claimPath(fp, gen)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return ClaimInfo{}, fmt.Errorf("store: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return ClaimInfo{}, err // fs.ErrExist = lost the race (not wrapped: callers errors.Is it)
	}
	if _, werr := f.Write(raw); werr != nil {
		f.Close()
		os.Remove(path)
		return ClaimInfo{}, fmt.Errorf("store: %w", werr)
	}
	if cerr := f.Close(); cerr != nil {
		os.Remove(path)
		return ClaimInfo{}, fmt.Errorf("store: %w", cerr)
	}
	return info, nil
}

// readClaim parses one generation file; ok is false for a missing, torn
// or version-skewed claim (all of which a Claim caller may steal).
func (s *Store) readClaim(fp string, gen int) (ClaimInfo, bool) {
	raw, err := os.ReadFile(s.claimPath(fp, gen))
	if err != nil {
		return ClaimInfo{}, false
	}
	var c ClaimInfo
	if err := json.Unmarshal(raw, &c); err != nil || c.Version != entryVersion || c.Expires.IsZero() {
		return ClaimInfo{}, false
	}
	c.gen = gen
	return c, true
}

// Renew extends a held lease by ttl from now. It reports false when the
// caller no longer owns the claim (its lease expired and a thief created
// a higher generation, or the claim was released): the caller may keep
// executing — a duplicated run is idempotent — but should know its lease
// protection is gone.
func (s *Store) Renew(fp, owner string, ttl time.Duration) bool {
	if !validFP(fp) || ttl <= 0 {
		return false
	}
	gen, cur, ok := s.highestClaim(fp)
	if !ok || cur.Owner != owner {
		return false
	}
	cur.Expires = time.Now().Add(ttl)
	raw, err := json.Marshal(cur)
	if err != nil {
		return false
	}
	// Rewriting our own generation file races no thief: thieves only ever
	// create the next generation. If one did exactly that concurrently,
	// the follow-up highestClaim read reports it and we return false.
	if err := writeAtomic(s.claimPath(fp, gen), fp, raw); err != nil {
		return false
	}
	g, after, ok := s.highestClaim(fp)
	return ok && g == gen && after.Nonce == cur.Nonce
}

// Release drops the caller's claim. Owner-checked and best-effort: a
// claim stolen from the caller (its lease expired mid-run) is left for
// the thief, and a missed removal costs a steal's worth of latency for
// the next claimant, never correctness.
func (s *Store) Release(fp, owner string) {
	if !validFP(fp) {
		return
	}
	gen, cur, ok := s.highestClaim(fp)
	if !ok || cur.Owner != owner {
		return
	}
	for g := gen; g >= 0; g-- {
		os.Remove(s.claimPath(fp, g))
	}
}
