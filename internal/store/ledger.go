package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// The provenance ledger is the durable "who ran this and how" record
// beside each result: an append-only JSONL sidecar
// <dir>/<fp[:2]>/<fp>.prov.jsonl with one line per attempt that touched
// the fingerprint — executions, cache hits, fleet adoptions, failures.
// Where the result entry answers "what came out", the ledger answers
// "where did the wall-clock go, on which worker, under which lease" —
// the calibration data the sampled-sim and analytical-twin roadmap items
// need, and the audit trail for exactly-once-results debugging.
//
// Writes are a single O_APPEND write per line. POSIX makes small
// appenders atomic with respect to each other, so several fleet workers
// sharing the directory interleave whole lines, never torn ones. Readers
// skip lines that fail to parse (a torn tail after a crash) instead of
// failing the whole file.

// Provenance outcomes.
const (
	// OutcomeExecuted: this process ran the simulation and stored the result.
	OutcomeExecuted = "executed"
	// OutcomeCacheHit: the result was already in the store at submit time.
	OutcomeCacheHit = "cache_hit"
	// OutcomeAdopted: another fleet worker executed it; this process
	// adopted the stored result after waiting on the claim.
	OutcomeAdopted = "adopted"
	// OutcomeFailed: the run errored; no result was stored.
	OutcomeFailed = "failed"
	// OutcomeCancelled: the run was cancelled or timed out.
	OutcomeCancelled = "cancelled"
)

// Provenance is one ledger line: a single attempt's identity, outcome
// and duration breakdown. Durations are reported in milliseconds and
// satisfy QueueWaitMS + RunMS + StoreMS <= WallMS (within scheduling
// noise the invariant the e2e suite checks).
type Provenance struct {
	Version     int       `json:"version"`
	Fingerprint string    `json:"fingerprint"`
	TraceID     string    `json:"trace_id,omitempty"`
	JobID       string    `json:"job_id,omitempty"`
	SweepID     string    `json:"sweep_id,omitempty"`
	Tenant      string    `json:"tenant,omitempty"`
	// Worker is the executing process's identity (fleet worker name, or
	// "local" for a standalone daemon).
	Worker string `json:"worker,omitempty"`
	// LeaseGen is the claim generation the work ran under: 0 for a fresh
	// acquire, higher after steals, -1 outside fleet mode.
	LeaseGen int  `json:"lease_gen"`
	Stolen   bool `json:"stolen,omitempty"`
	// Outcome is one of the Outcome* constants.
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
	// GoVersion and Build record the toolchain and module version that
	// produced the result, for reproducibility audits.
	GoVersion string `json:"go_version,omitempty"`
	Build     string `json:"build,omitempty"`

	Submitted time.Time `json:"submitted"`
	Finished  time.Time `json:"finished"`
	// Duration breakdown, milliseconds.
	QueueWaitMS float64 `json:"queue_wait_ms"`
	RunMS       float64 `json:"run_ms"`
	StoreMS     float64 `json:"store_ms"`
	WallMS      float64 `json:"wall_ms"`
}

const ledgerSuffix = ".prov.jsonl"

func (s *Store) ledgerPath(fp string) string {
	return s.path(fp)[:len(s.path(fp))-len(".json")] + ledgerSuffix
}

// AppendProvenance appends one line to a fingerprint's ledger. The write
// is a single append, so concurrent workers (goroutines or processes)
// never tear each other's lines. Ledger writes are observability, not
// correctness: callers should log failures, not fail the job.
func (s *Store) AppendProvenance(p Provenance) error {
	if !validFP(p.Fingerprint) {
		return fmt.Errorf("store: invalid fingerprint %q", p.Fingerprint)
	}
	p.Version = entryVersion
	raw, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("store: provenance: %w", err)
	}
	path := s.ledgerPath(p.Fingerprint)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: provenance: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: provenance: %w", err)
	}
	if _, err := f.Write(append(raw, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("store: provenance: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: provenance: %w", err)
	}
	return nil
}

// ReadProvenance returns a fingerprint's ledger, oldest line first. A
// missing ledger is an empty history, not an error; unparsable lines (a
// crash-torn tail, a future schema) are skipped.
func (s *Store) ReadProvenance(fp string) ([]Provenance, error) {
	if !validFP(fp) {
		return nil, fmt.Errorf("store: invalid fingerprint %q", fp)
	}
	f, err := os.Open(s.ledgerPath(fp))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: provenance: %w", err)
	}
	defer f.Close()
	var out []Provenance
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var p Provenance
		if err := json.Unmarshal(line, &p); err != nil || p.Version != entryVersion {
			continue
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("store: provenance: %w", err)
	}
	return out, nil
}
