package store

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"fdpsim/internal/sim"
)

// testFP returns a syntactically valid fingerprint for claim tests.
func testFP(i int) string {
	return fmt.Sprintf("%064x", 0xfeed0000+i)
}

// twoHandles opens two independent Store handles on one directory — the
// in-process stand-in for two fdpserved processes sharing a fleet store.
func twoHandles(t *testing.T) (*Store, *Store) {
	t.Helper()
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestClaimLifecycle(t *testing.T) {
	a, b := twoHandles(t)
	fp := testFP(1)

	st, info, err := a.Claim(fp, "w1", time.Minute)
	if err != nil || st != ClaimAcquired {
		t.Fatalf("first claim = %v, %v, want acquired", st, err)
	}
	if info.Owner != "w1" || info.Nonce == "" {
		t.Fatalf("claim info incomplete: %+v", info)
	}

	// A second worker sees the live lease with the holder's identity.
	st, held, err := b.Claim(fp, "w2", time.Minute)
	if err != nil || st != ClaimHeld {
		t.Fatalf("contended claim = %v, %v, want held", st, err)
	}
	if held.Owner != "w1" || !held.Expires.After(time.Now()) {
		t.Fatalf("held info: %+v", held)
	}

	// Renewal extends the lease; a non-owner cannot renew.
	if !a.Renew(fp, "w1", time.Minute) {
		t.Fatal("owner renewal failed")
	}
	if b.Renew(fp, "w2", time.Minute) {
		t.Fatal("non-owner renewal succeeded")
	}

	// Once the result lands, every claim resolves to done.
	res := sim.Result{Workload: "seqstream", IPC: 1.5}
	if err := a.Put(fp, res); err != nil {
		t.Fatal(err)
	}
	a.Release(fp, "w1")
	st, _, err = b.Claim(fp, "w2", time.Minute)
	if err != nil || st != ClaimDone {
		t.Fatalf("claim after put = %v, %v, want done", st, err)
	}
	if got, ok := b.Get(fp); !ok || got.IPC != res.IPC {
		t.Fatalf("result not readable after done claim: %+v %v", got, ok)
	}
}

func TestClaimStealAfterExpiry(t *testing.T) {
	a, b := twoHandles(t)
	fp := testFP(2)

	if st, _, _ := a.Claim(fp, "ghost", 10*time.Millisecond); st != ClaimAcquired {
		t.Fatalf("ghost claim = %v", st)
	}
	// Before expiry the lease holds.
	if st, _, _ := b.Claim(fp, "w2", time.Minute); st != ClaimHeld {
		t.Fatalf("pre-expiry claim = %v, want held", st)
	}
	time.Sleep(20 * time.Millisecond)

	st, info, err := b.Claim(fp, "w2", time.Minute)
	if err != nil || st != ClaimAcquired {
		t.Fatalf("post-expiry claim = %v, %v, want acquired", st, err)
	}
	if !info.Stolen {
		t.Fatal("post-expiry acquisition not marked stolen")
	}
	// The ghost's renewal must now fail: its claim was replaced.
	if a.Renew(fp, "ghost", time.Minute) {
		t.Fatal("ghost renewed a stolen claim")
	}
}

func TestClaimCorruptRecovery(t *testing.T) {
	a, b := twoHandles(t)
	fp := testFP(3)

	// A crash mid-acquire leaves a torn claim file; the next worker must
	// steal it rather than wedge.
	path := a.claimPath(fp, 0)
	if err := os.MkdirAll(dirOf(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(`{"version":1,"owner":"torn`), 0o644); err != nil {
		t.Fatal(err)
	}
	st, info, err := b.Claim(fp, "w2", time.Minute)
	if err != nil || st != ClaimAcquired || !info.Stolen {
		t.Fatalf("claim over corrupt file = %v (stolen=%v), %v, want stolen acquisition", st, info.Stolen, err)
	}
}

func dirOf(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[:i]
		}
	}
	return "."
}

// TestClaimRaceExclusive drives many goroutines across two handles at the
// same fingerprint: exactly one acquisition per fingerprint, everyone
// else held. Run under -race in CI, this is the multi-process claim
// correctness test.
func TestClaimRaceExclusive(t *testing.T) {
	a, b := twoHandles(t)
	handles := []*Store{a, b}

	for round := 0; round < 8; round++ {
		fp := testFP(100 + round)
		const racers = 16
		var wg sync.WaitGroup
		acquired := make(chan string, racers)
		for i := 0; i < racers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				owner := fmt.Sprintf("w%d", i)
				st, _, err := handles[i%2].Claim(fp, owner, time.Minute)
				if err != nil {
					t.Errorf("claim: %v", err)
					return
				}
				if st == ClaimAcquired {
					acquired <- owner
				}
			}(i)
		}
		wg.Wait()
		close(acquired)
		var winners []string
		for w := range acquired {
			winners = append(winners, w)
		}
		if len(winners) != 1 {
			t.Fatalf("round %d: %d workers acquired the same claim: %v", round, len(winners), winners)
		}
	}
}

// TestClaimStealRace races several thieves over one expired claim:
// exactly one steal must win.
func TestClaimStealRace(t *testing.T) {
	a, b := twoHandles(t)
	handles := []*Store{a, b}
	fp := testFP(200)

	if st, _, _ := a.Claim(fp, "ghost", time.Nanosecond); st != ClaimAcquired {
		t.Fatal("seeding expired claim failed")
	}
	time.Sleep(time.Millisecond)

	const thieves = 12
	var wg sync.WaitGroup
	acquired := make(chan string, thieves)
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			owner := fmt.Sprintf("thief%d", i)
			st, _, err := handles[i%2].Claim(fp, owner, time.Minute)
			if err != nil {
				t.Errorf("claim: %v", err)
				return
			}
			if st == ClaimAcquired {
				acquired <- owner
			}
		}(i)
	}
	wg.Wait()
	close(acquired)
	n := 0
	for range acquired {
		n++
	}
	if n != 1 {
		t.Fatalf("%d thieves stole one expired claim, want exactly 1", n)
	}
}

// TestStorePutGetRace races two handles writing and reading the same
// fingerprint (the fleet's redundant-execution case): every Get must see
// either a miss or a fully valid entry, never a torn one.
func TestStorePutGetRace(t *testing.T) {
	a, b := twoHandles(t)
	fp := testFP(300)
	res := sim.Result{Workload: "seqstream", IPC: 2.0, BPKI: 7.5}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := a
			if i%2 == 1 {
				h = b
			}
			for k := 0; k < 50; k++ {
				if err := h.Put(fp, res); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if got, ok := h.Get(fp); ok && (got.IPC != res.IPC || got.BPKI != res.BPKI) {
					t.Errorf("torn read: %+v", got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got, ok := a.Get(fp); !ok || got.IPC != res.IPC {
		t.Fatalf("final read: %+v %v", got, ok)
	}
}
