// Package store is the content-addressed on-disk result store: completed
// simulation Results keyed by their configuration fingerprint
// (sim.Fingerprint). Identical submissions — across processes and across
// restarts — are served from disk instead of re-simulating.
//
// Layout: <dir>/<fp[:2]>/<fp>.json, one entry per fingerprint. Entries are
// written atomically (temp file + rename in the same directory), so a
// concurrent reader sees either the old entry, the new entry, or a miss —
// never a torn write. Every entry embeds a checksum of its payload;
// truncated, garbled or version-skewed entries are discarded on read (and
// unlinked) rather than returned or treated as fatal, so a crash mid-write
// or a corrupted disk costs a re-simulation, not an outage.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"fdpsim/internal/sim"
)

// entryVersion guards the on-disk schema. A reader that finds a different
// version discards the entry (forward and backward: both re-simulate).
const entryVersion = 1

// entry is the on-disk envelope around one Result.
type entry struct {
	Version  int             `json:"version"`
	Checksum string          `json:"checksum"` // sha256 hex of Result's raw JSON
	Result   json.RawMessage `json:"result"`
}

// Store is a content-addressed result store rooted at one directory. The
// zero value is not usable; call Open. A Store is safe for concurrent use
// by multiple goroutines and — thanks to atomic renames — by multiple
// processes sharing the directory.
type Store struct {
	dir string
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validFP reports whether fp is safe to use as a file name: non-empty
// lowercase hex, as produced by sim.Fingerprint. Anything else (path
// separators, "..", uppercase) is rejected so a hostile key cannot escape
// the store directory.
func validFP(fp string) bool {
	if len(fp) < 8 {
		return false
	}
	for _, c := range fp {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(fp string) string {
	return filepath.Join(s.dir, fp[:2], fp+".json")
}

// Get returns the stored Result for a fingerprint. A missing, truncated,
// garbled, checksum-mismatched or version-skewed entry is a miss; corrupt
// entries are additionally unlinked so they are not re-parsed on every
// lookup.
func (s *Store) Get(fp string) (sim.Result, bool) {
	if !validFP(fp) {
		return sim.Result{}, false
	}
	raw, err := os.ReadFile(s.path(fp))
	if err != nil {
		return sim.Result{}, false
	}
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil {
		s.discard(fp)
		return sim.Result{}, false
	}
	if e.Version != entryVersion {
		return sim.Result{}, false // schema skew: stale, not corrupt — leave it
	}
	sum := sha256.Sum256(e.Result)
	if hex.EncodeToString(sum[:]) != e.Checksum {
		s.discard(fp)
		return sim.Result{}, false
	}
	var res sim.Result
	if err := json.Unmarshal(e.Result, &res); err != nil {
		s.discard(fp)
		return sim.Result{}, false
	}
	return res, true
}

// discard removes a corrupt entry; best-effort (a racing Put may have
// already replaced it, and losing the race is fine).
func (s *Store) discard(fp string) { os.Remove(s.path(fp)) }

// Put stores a Result under a fingerprint, atomically replacing any
// previous entry. Partial results are refused: a cancelled run's metrics
// are valid but are not the answer for the configuration's full target.
func (s *Store) Put(fp string, res sim.Result) error {
	if !validFP(fp) {
		return fmt.Errorf("store: invalid fingerprint %q", fp)
	}
	if res.Partial {
		return fmt.Errorf("store: refusing to cache a partial result")
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sum := sha256.Sum256(payload)
	raw, err := json.Marshal(entry{
		Version:  entryVersion,
		Checksum: hex.EncodeToString(sum[:]),
		Result:   payload,
	})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return writeAtomic(s.path(fp), fp, raw)
}

// writeAtomic lands raw at dst via write-to-temp + rename in the same
// directory, so concurrent readers (and other processes) never observe a
// half-written entry.
func writeAtomic(dst, fp string, raw []byte) error {
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "."+fp+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Len walks the store and counts valid-looking entries (by name, without
// parsing). Intended for metrics and tests, not hot paths.
func (s *Store) Len() int {
	n := 0
	filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n
}
