package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"fdpsim/internal/series"
)

// Interval-timeseries sidecars (internal/series binary documents) are
// stored next to their Result under <dir>/<fp[:2]>/<fp>.series.bin,
// following the trace sidecar's contract: an optional artifact, never
// served without verifying, discarded on damage. Unlike traces, the
// document is self-checking (magic, per-frame CRC-32, footer), so no
// extra header wraps it — the file is the series.Encode output verbatim
// and GetSeries bytes stream straight out of an HTTP handler.

func (s *Store) seriesPath(fp string) string {
	return filepath.Join(s.dir, fp[:2], fp+".series.bin")
}

// PutSeries stores an encoded interval-timeseries document under a
// fingerprint, atomically replacing any previous one. The document must
// decode — a caller cannot persist bytes GetSeries would then discard.
func (s *Store) PutSeries(fp string, doc []byte) error {
	if !validFP(fp) {
		return fmt.Errorf("store: invalid fingerprint %q", fp)
	}
	if _, err := series.Decode(doc); err != nil {
		return fmt.Errorf("store: refusing to persist series: %w", err)
	}
	return writeAtomic(s.seriesPath(fp), fp, doc)
}

// GetSeries returns the stored series document for a fingerprint. A
// missing, torn, or CRC-failed sidecar is a miss; corrupt files are
// unlinked like corrupt Results and traces. A document from a future
// format version is a miss without the unlink (stale reader, not
// damage — a newer build can still serve it).
func (s *Store) GetSeries(fp string) ([]byte, bool) {
	if !validFP(fp) {
		return nil, false
	}
	raw, err := os.ReadFile(s.seriesPath(fp))
	if err != nil {
		return nil, false
	}
	if _, err := series.Decode(raw); err != nil {
		if errors.Is(err, series.ErrCorrupt) {
			s.discardSeries(fp)
		}
		return nil, false
	}
	return raw, true
}

func (s *Store) discardSeries(fp string) { os.Remove(s.seriesPath(fp)) }
