package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Decision traces (internal/obs JSONL) are stored next to their Result
// under <dir>/<fp[:2]>/<fp>.trace.jsonl. They are an optional artifact:
// a Result entry may exist without a trace (the job was not submitted
// with tracing) and a trace is never served without its checksum
// verifying, mirroring the Result envelope's corruption policy. The
// ".trace.jsonl" extension keeps Len, which counts ".json" entries,
// honest about how many Results the store holds.
//
// On-disk format: a one-line JSON header (version + sha256 of the
// payload), a newline, then the raw JSONL payload. Keeping the payload
// verbatim — rather than embedding it in a JSON envelope — means GetTrace
// returns bytes that stream straight out of an HTTP handler.

// traceHeader is the first line of a trace file.
type traceHeader struct {
	Version  int    `json:"version"`
	Checksum string `json:"checksum"` // sha256 hex of the JSONL payload
}

func (s *Store) tracePath(fp string) string {
	return filepath.Join(s.dir, fp[:2], fp+".trace.jsonl")
}

// PutTrace stores a JSONL decision trace under a fingerprint, atomically
// replacing any previous trace.
func (s *Store) PutTrace(fp string, jsonl []byte) error {
	if !validFP(fp) {
		return fmt.Errorf("store: invalid fingerprint %q", fp)
	}
	sum := sha256.Sum256(jsonl)
	header, err := json.Marshal(traceHeader{Version: entryVersion, Checksum: hex.EncodeToString(sum[:])})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	raw := make([]byte, 0, len(header)+1+len(jsonl))
	raw = append(raw, header...)
	raw = append(raw, '\n')
	raw = append(raw, jsonl...)
	return writeAtomic(s.tracePath(fp), fp, raw)
}

// GetTrace returns the stored JSONL decision trace for a fingerprint. A
// missing, truncated, garbled, checksum-mismatched or version-skewed
// trace is a miss; corrupt traces are unlinked like corrupt Results.
func (s *Store) GetTrace(fp string) ([]byte, bool) {
	if !validFP(fp) {
		return nil, false
	}
	raw, err := os.ReadFile(s.tracePath(fp))
	if err != nil {
		return nil, false
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		s.discardTrace(fp)
		return nil, false
	}
	var h traceHeader
	if err := json.Unmarshal(raw[:nl], &h); err != nil {
		s.discardTrace(fp)
		return nil, false
	}
	if h.Version != entryVersion {
		return nil, false // schema skew: stale, not corrupt — leave it
	}
	payload := raw[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != h.Checksum {
		s.discardTrace(fp)
		return nil, false
	}
	return payload, true
}

func (s *Store) discardTrace(fp string) { os.Remove(s.tracePath(fp)) }
