package cpu

import "testing"

// fetchModel simulates an L1I with a fixed miss latency: blocks become
// resident after their first (stalling) fetch, and arrivals unblock the
// CPU under test via CompleteFetch (set c before the first tick).
type fetchModel struct {
	resident map[uint64]bool
	latency  int
	c        *CPU
	pending  []int
	misses   int
}

func (m *fetchModel) fetch(pc uint64) bool {
	block := pc >> 6
	if m.resident[block] {
		return true
	}
	m.misses++
	m.resident[block] = true
	m.pending = append(m.pending, m.latency)
	return false
}

func (m *fetchModel) tick() {
	keep := m.pending[:0]
	for _, left := range m.pending {
		left--
		if left <= 0 {
			m.c.CompleteFetch()
		} else {
			keep = append(keep, left)
		}
	}
	m.pending = keep
}

// pcSource emits nops with explicit sequential PCs spanning many blocks.
type pcSource struct{ pc uint64 }

func (s *pcSource) Name() string { return "pcsource" }
func (s *pcSource) Next() MicroOp {
	op := MicroOp{Kind: Nop, PC: 0x1000 + s.pc}
	s.pc += 4
	return op
}

func TestFetchStallGatesDispatch(t *testing.T) {
	fm := &fetchModel{resident: map[uint64]bool{}, latency: 50}
	mem := &fixedMem{latency: 1}
	c := New(DefaultConfig(), &pcSource{}, mem.access)
	c.SetFetch(fm.fetch)
	fm.c, mem.c = c, c
	target := uint64(1600) // 100 blocks of 16 ops
	var cycles uint64
	for cycles = 0; c.Retired() < target && cycles < 100000; cycles++ {
		mem.tick()
		fm.tick()
		c.Tick()
	}
	if c.Retired() < target {
		t.Fatal("did not finish")
	}
	// 100 block misses at 50 cycles each, serialized: at least 5000 cycles.
	if cycles < 5000 {
		t.Fatalf("finished in %d cycles; fetch stalls not applied", cycles)
	}
	if c.FetchMisses() < 99 {
		t.Fatalf("fetch misses = %d, want ~100", c.FetchMisses())
	}
	if c.StallFetch() == 0 {
		t.Fatal("no fetch-stall cycles recorded")
	}
}

func TestFetchHitsDoNotStall(t *testing.T) {
	fm := &fetchModel{resident: map[uint64]bool{}, latency: 1}
	// Pre-populate every block the source will touch.
	for b := uint64(0); b < 4096; b++ {
		fm.resident[b] = true
	}
	mem := &fixedMem{latency: 1}
	c := New(DefaultConfig(), &pcSource{}, mem.access)
	c.SetFetch(fm.fetch)
	fm.c, mem.c = c, c
	var cycles uint64
	for cycles = 0; c.Retired() < 8000 && cycles < 10000; cycles++ {
		mem.tick()
		fm.tick()
		c.Tick()
	}
	ipc := float64(c.Retired()) / float64(cycles)
	if ipc < 7.5 {
		t.Fatalf("IPC %.2f with resident code, want ~8", ipc)
	}
	if fm.misses != 0 || c.FetchMisses() != 0 {
		t.Fatal("unexpected fetch misses")
	}
}

func TestFetchSequentialDefaultPC(t *testing.T) {
	// Ops without a PC fetch sequentially after the last explicit PC: a
	// single mem op per 64 nops keeps resetting the cursor, so the code
	// footprint stays tiny and fetch never misses beyond the first block.
	fm := &fetchModel{resident: map[uint64]bool{}, latency: 10}
	mem := &fixedMem{latency: 1}
	src := &scriptSource{}
	for i := 0; i < 100; i++ {
		src.ops = append(src.ops, MicroOp{Kind: Load, Addr: uint64(i) * 8, PC: 0x400000})
		src.ops = append(src.ops, nops(63)...)
	}
	c := New(DefaultConfig(), src, mem.access)
	c.SetFetch(fm.fetch)
	fm.c, mem.c = c, c
	for cycles := 0; c.Retired() < 6000 && cycles < 50000; cycles++ {
		mem.tick()
		fm.tick()
		c.Tick()
	}
	// 64 ops after PC 0x400000 span 5 blocks; all runs revisit them.
	if fm.misses > 8 {
		t.Fatalf("sequential-PC footprint leaked: %d distinct block misses", fm.misses)
	}
}
