// Package cpu models the out-of-order execution core of the baseline
// processor (Table 3): 8-wide dispatch and retire, a 128-entry reorder
// buffer, a limited number of data-cache ports, loads that block
// retirement until their data returns, and dependent loads that cannot
// issue until their producer completes. Non-memory work is assumed fully
// pipelined, so performance is governed — as in the paper — by the memory
// behaviour of the instruction stream: independent misses overlap up to
// the ROB/MSHR limits, dependent misses serialize.
package cpu

import "fdpsim/internal/stats"

// Kind classifies a micro-op.
type Kind uint8

// Micro-op kinds.
const (
	Nop Kind = iota
	Load
	Store
)

// MicroOp is one instruction as seen by the timing model.
type MicroOp struct {
	Kind Kind
	Addr uint64 // byte address, for loads and stores
	PC   uint64 // program counter, used by the PC-indexed prefetchers
	// Dep, when positive, makes this op's issue wait for the Dep-th most
	// recent load (1 = immediately preceding load) to complete — the
	// mechanism workloads use to express pointer-chasing dependence.
	Dep int
}

// Source supplies an unbounded micro-op stream.
type Source interface {
	Name() string
	Next() MicroOp
}

// MemFunc submits a memory access to the hierarchy. Loads carry their ROB
// index (robIdx >= 0) and load sequence number; the hierarchy answers by
// calling CompleteLoad(robIdx, seq) when the data is available — never
// synchronously. Stores pass robIdx < 0 and expect no completion.
type MemFunc func(addr, pc uint64, store bool, robIdx int32, seq uint64)

// FetchFunc asks the hierarchy for the instruction block containing pc.
// It returns true when the block is immediately available (an L1I hit —
// fetch is pipelined, so no stall); on a miss it returns false and the
// hierarchy calls CompleteFetch when the block arrives, at which point
// dispatch resumes.
type FetchFunc func(pc uint64) bool

// Config sizes the core.
type Config struct {
	Width     int // dispatch/retire width (8)
	ROB       int // reorder buffer entries (128)
	LoadPorts int // L1D load accesses per cycle (4)
}

// DefaultConfig returns the Table 3 core.
func DefaultConfig() Config { return Config{Width: 8, ROB: 128, LoadPorts: 4} }

type robEntry struct {
	kind      Kind
	addr      uint64
	pc        uint64
	completed bool
	loadSeq   uint64 // this entry's load number, when kind == Load
}

// loadRing tracks completion of recent loads so dependents can resolve.
// Slots are recycled; a slot holding a different sequence number than the
// one queried refers to a load so old it must have completed.
const loadRingSize = 4096

// CPU is the core timing model. Tick once per cycle.
type CPU struct {
	cfg Config
	src Source
	mem MemFunc

	rob        []robEntry
	head, tail int
	count      int

	loadsDispatched uint64
	ringSeq         [loadRingSize]uint64
	ringDone        [loadRingSize]bool
	// Waiters blocked on each load form an intrusive FIFO list threaded
	// through ROB indices: waiterHead/waiterTail per ring slot, waiterNext
	// per ROB entry (-1 terminated). A ROB entry waits on at most one
	// producer, so one link per entry suffices — and, unlike per-slot
	// slices, the arrays never allocate as random dependence patterns walk
	// the ring.
	waiterHead [loadRingSize]int32
	waiterTail [loadRingSize]int32
	waiterNext []int32

	// readyQ holds ROB indices of loads ready to issue, in a fixed ring:
	// at most one queue entry per ROB slot, so ROB-many slots suffice.
	readyQ     []int32
	readyHead  int
	readyCount int

	retired       uint64
	retiredLoads  uint64
	retiredStores uint64
	dispatched    uint64
	halted        bool

	// stallROBFull counts cycles dispatch made no progress with a full ROB.
	stallROBFull uint64

	// Instruction-fetch state (active when fetch is non-nil): ops dispatch
	// from the block at curFetchBlock; crossing into an uncached block
	// stalls dispatch until the hierarchy delivers it. Ops without an
	// explicit PC fetch sequentially after the previous instruction.
	fetch          FetchFunc
	pendingOp      MicroOp
	havePending    bool
	nextPC         uint64
	curFetchBlock  uint64
	fetchStalled   bool
	stallFetch     uint64 // cycles dispatch was blocked on instruction fetch
	fetchMissCount uint64

	// Attribution (optional): when attr is non-nil, every Tick classifies
	// the cycle into exactly one CycleBuckets field. memBP reports whether
	// the memory system is backpressured (demand requests queued behind a
	// full MSHR file), splitting load-miss stalls by bottleneck.
	attr  *stats.CycleBuckets
	memBP func() bool
}

// New builds a core over the given micro-op source and memory interface.
func New(cfg Config, src Source, mem MemFunc) *CPU {
	if cfg.Width <= 0 {
		cfg.Width = 8
	}
	if cfg.ROB <= 0 {
		cfg.ROB = 128
	}
	if cfg.LoadPorts <= 0 {
		cfg.LoadPorts = 4
	}
	qcap := 1
	for qcap < cfg.ROB {
		qcap <<= 1
	}
	c := &CPU{cfg: cfg, src: src, mem: mem,
		rob: make([]robEntry, cfg.ROB), readyQ: make([]int32, qcap),
		waiterNext: make([]int32, cfg.ROB)}
	for i := range c.waiterHead {
		c.waiterHead[i] = -1
		c.waiterTail[i] = -1
	}
	return c
}

// Retired returns the number of retired micro-ops.
func (c *CPU) Retired() uint64 { return c.retired }

// RetiredLoads returns retired load count.
func (c *CPU) RetiredLoads() uint64 { return c.retiredLoads }

// RetiredStores returns retired store count.
func (c *CPU) RetiredStores() uint64 { return c.retiredStores }

// StallROBFull returns cycles in which a full ROB blocked all dispatch.
func (c *CPU) StallROBFull() uint64 { return c.stallROBFull }

// SetFetch enables instruction-fetch modeling through the given hierarchy
// entry point. Must be called before the first Tick.
func (c *CPU) SetFetch(f FetchFunc) { c.fetch = f }

// Halt stops dispatch so the pipeline can drain: subsequent Ticks keep
// issuing and retiring in-flight instructions but admit no new ones.
// Together with InFlight this lets a runner stop the simulation at a
// retire boundary — every counted instruction fully executed — instead of
// truncating mid-flight work.
func (c *CPU) Halt() { c.halted = true }

// Halted reports whether dispatch has been stopped by Halt.
func (c *CPU) Halted() bool { return c.halted }

// InFlight returns the number of instructions occupying the ROB.
func (c *CPU) InFlight() int { return c.count }

// StallFetch returns cycles in which dispatch was blocked waiting for an
// instruction block.
func (c *CPU) StallFetch() uint64 { return c.stallFetch }

// FetchMisses returns how many instruction blocks stalled dispatch.
func (c *CPU) FetchMisses() uint64 { return c.fetchMissCount }

// SetAttribution enables top-down cycle accounting: each Tick records the
// cycle into exactly one bucket of b. backpressured reports whether the
// memory system is refusing new demand work this cycle (used to split
// load-miss stalls into a DRAM-backpressure bucket). Purely observational
// — timing and counters other than b are unaffected. Must be called
// before the first Tick; pass nil to disable.
func (c *CPU) SetAttribution(b *stats.CycleBuckets, backpressured func() bool) {
	c.attr = b
	c.memBP = backpressured
}

// Tick advances the core one cycle: retire, issue ready loads, dispatch.
func (c *CPU) Tick() {
	if c.attr == nil {
		c.retire()
		c.issue()
		c.dispatch()
		return
	}
	before := c.retired
	c.retire()
	c.classify(c.retired - before)
	c.issue()
	c.dispatch()
}

// classify attributes the current cycle to one bucket, given how many ops
// just retired. Precedence is documented on stats.CycleBuckets. The
// ROB-occupied cases rely on an invariant of this core: only loads ever
// sit incomplete in the ROB (nops and stores complete at dispatch), so a
// non-retiring occupied ROB always means the head is a load awaiting data.
func (c *CPU) classify(ret uint64) {
	b := c.attr
	switch {
	case ret >= uint64(c.cfg.Width):
		b.RetireFull++
	case ret > 0:
		b.RetirePartial++
	case c.count > 0:
		switch {
		case c.count == len(c.rob):
			b.StallROBFull++
		case c.memBP != nil && c.memBP():
			b.StallDRAMBP++
		default:
			b.StallLoadMiss++
		}
	case c.fetchStalled:
		b.StallIFetch++
	default:
		b.StallFrontend++
	}
}

func (c *CPU) retire() {
	for n := 0; n < c.cfg.Width && c.count > 0; n++ {
		e := &c.rob[c.head]
		if !e.completed {
			break
		}
		switch e.kind {
		case Load:
			c.retiredLoads++
		case Store:
			c.retiredStores++
		}
		c.retired++
		c.head = (c.head + 1) % len(c.rob)
		c.count--
	}
}

func (c *CPU) pushReady(idx int32) {
	c.readyQ[(c.readyHead+c.readyCount)&(len(c.readyQ)-1)] = idx
	c.readyCount++
}

func (c *CPU) popReady() int32 {
	idx := c.readyQ[c.readyHead]
	c.readyHead = (c.readyHead + 1) & (len(c.readyQ) - 1)
	c.readyCount--
	return idx
}

func (c *CPU) issue() {
	ports := c.cfg.LoadPorts
	for ports > 0 && c.readyCount > 0 {
		idx := c.popReady()
		e := &c.rob[idx]
		c.mem(e.addr, e.pc, false, idx, e.loadSeq)
		ports--
	}
}

func (c *CPU) dispatch() {
	if c.halted {
		return
	}
	progressed := false
	for n := 0; n < c.cfg.Width && c.count < len(c.rob); n++ {
		if c.fetchStalled {
			c.stallFetch++
			break
		}
		if !c.havePending {
			c.pendingOp = c.src.Next()
			c.havePending = true
		}
		op := c.pendingOp
		if c.fetch != nil && !c.tryFetch(op) {
			c.stallFetch++
			break // the op stays pending until its block arrives
		}
		c.havePending = false
		idx := int32(c.tail)
		e := &c.rob[idx]
		*e = robEntry{kind: op.Kind, addr: op.Addr, pc: op.PC}
		c.tail = (c.tail + 1) % len(c.rob)
		c.count++
		c.dispatched++
		progressed = true

		switch op.Kind {
		case Nop:
			e.completed = true
		case Store:
			// Stores complete into the store buffer immediately; the write
			// traffic still flows through the hierarchy.
			e.completed = true
			c.mem(op.Addr, op.PC, true, -1, 0)
		case Load:
			c.loadsDispatched++
			seq := c.loadsDispatched
			e.loadSeq = seq
			slot := seq % loadRingSize
			c.ringSeq[slot] = seq
			c.ringDone[slot] = false
			c.waiterHead[slot], c.waiterTail[slot] = -1, -1
			if dep := c.depSeq(op.Dep, seq); dep != 0 && !c.loadComplete(dep) {
				ds := dep % loadRingSize
				c.waiterNext[idx] = -1
				if c.waiterTail[ds] < 0 {
					c.waiterHead[ds] = idx
				} else {
					c.waiterNext[c.waiterTail[ds]] = idx
				}
				c.waiterTail[ds] = idx
			} else {
				c.pushReady(idx)
			}
		}
	}
	if !progressed && c.count == len(c.rob) {
		c.stallROBFull++
	}
}

// tryFetch resolves the instruction block for op, returning false (and
// arming the stall) when the block must come from the memory hierarchy.
func (c *CPU) tryFetch(op MicroOp) bool {
	fpc := op.PC
	if fpc == 0 {
		fpc = c.nextPC
	}
	fblock := fpc >> 6
	if fblock == c.curFetchBlock {
		c.nextPC = fpc + 4
		return true
	}
	// A stalled attempt must not advance the sequential-PC cursor: the
	// same op retries after the block arrives.
	if c.fetch(fpc) {
		c.curFetchBlock = fblock
		c.nextPC = fpc + 4
		return true
	}
	c.curFetchBlock = fblock // the arriving block satisfies the retry
	c.fetchMissCount++
	c.fetchStalled = true
	return false
}

// depSeq converts a relative dependence distance into an absolute load
// sequence number; 0 means no dependence.
func (c *CPU) depSeq(dep int, self uint64) uint64 {
	if dep <= 0 {
		return 0
	}
	if uint64(dep) >= self {
		return 0
	}
	return self - uint64(dep)
}

// loadComplete reports whether load seq has completed. Loads whose ring
// slot has been recycled are, by construction, long retired.
func (c *CPU) loadComplete(seq uint64) bool {
	slot := seq % loadRingSize
	if c.ringSeq[slot] != seq {
		return true
	}
	return c.ringDone[slot]
}

// CompleteLoad delivers the data for the load in ROB slot robIdx with
// sequence number seq, waking any dependents. Called by the hierarchy.
func (c *CPU) CompleteLoad(robIdx int32, seq uint64) {
	c.rob[robIdx].completed = true
	slot := seq % loadRingSize
	if c.ringSeq[slot] == seq {
		c.ringDone[slot] = true
		for w := c.waiterHead[slot]; w >= 0; w = c.waiterNext[w] {
			c.pushReady(w)
		}
		c.waiterHead[slot], c.waiterTail[slot] = -1, -1
	}
}

// CompleteFetch unblocks dispatch after an instruction-fetch miss. Called
// by the hierarchy.
func (c *CPU) CompleteFetch() { c.fetchStalled = false }
