package cpu

import (
	"testing"
)

// scriptSource replays a fixed op list, then pads with nops.
type scriptSource struct {
	ops []MicroOp
	pos int
}

func (s *scriptSource) Name() string { return "script" }
func (s *scriptSource) Next() MicroOp {
	if s.pos >= len(s.ops) {
		return MicroOp{Kind: Nop}
	}
	op := s.ops[s.pos]
	s.pos++
	return op
}

// fixedMem completes every load a fixed number of ticks later by calling
// CompleteLoad on the CPU under test (set before the first tick).
type fixedMem struct {
	latency int
	c       *CPU
	pending []struct {
		left   int
		robIdx int32
		seq    uint64
	}
	issues   int
	perCycle []int
	cycleNow int
}

func (m *fixedMem) access(addr, pc uint64, store bool, robIdx int32, seq uint64) {
	m.issues++
	for len(m.perCycle) <= m.cycleNow {
		m.perCycle = append(m.perCycle, 0)
	}
	m.perCycle[m.cycleNow]++
	if robIdx >= 0 {
		m.pending = append(m.pending, struct {
			left   int
			robIdx int32
			seq    uint64
		}{m.latency, robIdx, seq})
	}
}

func (m *fixedMem) tick() {
	m.cycleNow++
	keep := m.pending[:0]
	for _, p := range m.pending {
		p.left--
		if p.left <= 0 {
			m.c.CompleteLoad(p.robIdx, p.seq)
		} else {
			keep = append(keep, p)
		}
	}
	m.pending = keep
}

// run drives the CPU until target retirements, returning elapsed cycles.
func run(t *testing.T, c *CPU, m *fixedMem, target uint64, maxCycles int) uint64 {
	t.Helper()
	m.c = c
	for i := 0; i < maxCycles; i++ {
		m.tick()
		c.Tick()
		if c.Retired() >= target {
			return uint64(i + 1)
		}
	}
	t.Fatalf("did not retire %d ops in %d cycles (retired %d)", target, maxCycles, c.Retired())
	return 0
}

func nops(n int) []MicroOp {
	ops := make([]MicroOp, n)
	return ops
}

func TestNopIPCEqualsWidth(t *testing.T) {
	m := &fixedMem{latency: 1}
	c := New(Config{Width: 8, ROB: 128, LoadPorts: 4}, &scriptSource{ops: nops(0)}, m.access)
	cycles := run(t, c, m, 8000, 2000)
	ipc := float64(c.Retired()) / float64(cycles)
	if ipc < 7.5 {
		t.Fatalf("nop IPC = %.2f, want ~8", ipc)
	}
}

func TestLoadBlocksRetirement(t *testing.T) {
	m := &fixedMem{latency: 100}
	ops := append([]MicroOp{{Kind: Load, Addr: 64}}, nops(7)...)
	c := New(DefaultConfig(), &scriptSource{ops: ops}, m.access)
	cycles := run(t, c, m, 8, 1000)
	if cycles < 100 {
		t.Fatalf("8 ops retired in %d cycles; the 100-cycle load did not gate retirement", cycles)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	m := &fixedMem{latency: 100}
	var ops []MicroOp
	for i := 0; i < 8; i++ {
		ops = append(ops, MicroOp{Kind: Load, Addr: uint64(i) * 64})
	}
	c := New(DefaultConfig(), &scriptSource{ops: ops}, m.access)
	cycles := run(t, c, m, 8, 1000)
	if cycles > 120 {
		t.Fatalf("8 independent loads took %d cycles; they must overlap (~100)", cycles)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	m := &fixedMem{latency: 50}
	var ops []MicroOp
	for i := 0; i < 4; i++ {
		ops = append(ops, MicroOp{Kind: Load, Addr: uint64(i) * 64, Dep: 1})
	}
	c := New(DefaultConfig(), &scriptSource{ops: ops}, m.access)
	cycles := run(t, c, m, 4, 1000)
	if cycles < 4*50 {
		t.Fatalf("4 chained loads took %d cycles, want >= 200 (serialized)", cycles)
	}
}

func TestDepDistanceTwoSkipsOne(t *testing.T) {
	// Two interleaved chains with Dep=2 each: pairs overlap, so 4 loads
	// take ~2 serial latencies, not 4.
	m := &fixedMem{latency: 50}
	var ops []MicroOp
	for i := 0; i < 4; i++ {
		ops = append(ops, MicroOp{Kind: Load, Addr: uint64(i) * 64, Dep: 2})
	}
	c := New(DefaultConfig(), &scriptSource{ops: ops}, m.access)
	cycles := run(t, c, m, 4, 1000)
	if cycles >= 4*50 || cycles < 2*50 {
		t.Fatalf("two Dep=2 chains took %d cycles, want ~100", cycles)
	}
}

func TestLoadPortLimit(t *testing.T) {
	m := &fixedMem{latency: 10}
	var ops []MicroOp
	for i := 0; i < 64; i++ {
		ops = append(ops, MicroOp{Kind: Load, Addr: uint64(i) * 64})
	}
	c := New(Config{Width: 8, ROB: 128, LoadPorts: 4}, &scriptSource{ops: ops}, m.access)
	run(t, c, m, 64, 1000)
	for cyc, n := range m.perCycle {
		if n > 4 {
			t.Fatalf("cycle %d issued %d loads, port limit is 4", cyc, n)
		}
	}
}

func TestStoresDoNotBlockRetirement(t *testing.T) {
	m := &fixedMem{latency: 500}
	var ops []MicroOp
	for i := 0; i < 16; i++ {
		ops = append(ops, MicroOp{Kind: Store, Addr: uint64(i) * 64})
	}
	c := New(DefaultConfig(), &scriptSource{ops: ops}, m.access)
	cycles := run(t, c, m, 16, 100)
	if cycles > 10 {
		t.Fatalf("16 stores took %d cycles; stores must retire through the store buffer", cycles)
	}
	if c.RetiredStores() != 16 {
		t.Fatalf("retired stores = %d", c.RetiredStores())
	}
}

func TestROBLimitsMLP(t *testing.T) {
	// With a 16-entry ROB and 15 nops after each load, at most ~1 load is
	// in flight: N loads take ~N*latency.
	m := &fixedMem{latency: 100}
	var ops []MicroOp
	for i := 0; i < 4; i++ {
		ops = append(ops, MicroOp{Kind: Load, Addr: uint64(i) * 64})
		ops = append(ops, nops(15)...)
	}
	c := New(Config{Width: 8, ROB: 16, LoadPorts: 4}, &scriptSource{ops: ops}, m.access)
	cycles := run(t, c, m, 64, 10000)
	if cycles < 350 {
		t.Fatalf("ROB-limited loads took %d cycles, want ~400", cycles)
	}
	if c.StallROBFull() == 0 {
		t.Fatal("no ROB-full stalls recorded")
	}
}

func TestRetiredLoadCount(t *testing.T) {
	m := &fixedMem{latency: 3}
	ops := []MicroOp{{Kind: Load, Addr: 1}, {Kind: Store, Addr: 2}, {Kind: Nop}}
	c := New(DefaultConfig(), &scriptSource{ops: ops}, m.access)
	run(t, c, m, 3, 100)
	if c.RetiredLoads() != 1 || c.RetiredStores() != 1 {
		t.Fatalf("loads=%d stores=%d", c.RetiredLoads(), c.RetiredStores())
	}
}

func TestDepOnNonexistentLoadIssuesImmediately(t *testing.T) {
	m := &fixedMem{latency: 10}
	ops := []MicroOp{{Kind: Load, Addr: 64, Dep: 5}} // no 5-back load exists
	c := New(DefaultConfig(), &scriptSource{ops: ops}, m.access)
	cycles := run(t, c, m, 1, 100)
	if cycles > 20 {
		t.Fatalf("orphan-dep load took %d cycles", cycles)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Width != 8 || cfg.ROB != 128 || cfg.LoadPorts != 4 {
		t.Fatalf("default config = %+v", cfg)
	}
	// Zero values are replaced by defaults in New.
	c := New(Config{}, &scriptSource{}, (&fixedMem{latency: 1}).access)
	if len(c.rob) != 128 {
		t.Fatalf("zero-config ROB = %d", len(c.rob))
	}
}
