package cli

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartProfilesWritesBothArtifacts(t *testing.T) {
	dir := t.TempDir()
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")
	stop := StartProfiles("test", cpuPath, memPath)
	// Burn a little CPU and heap so the profiles have something to say.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1<<12))
	}
	_ = sink
	stop()
	stop() // idempotent: the second call must not rewrite or fail
	for _, p := range []string{cpuPath, memPath} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestStartProfilesDisabled(t *testing.T) {
	stop := StartProfiles("test", "", "")
	stop() // nothing armed: must be a clean no-op
}
