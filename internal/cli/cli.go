// Package cli holds the helpers shared by the fdpsim, experiments,
// tracegen and fdpserved commands: the documented exit-code table and the
// fatal-error plumbing, so every binary reports failures identically.
//
// Exit codes (stable; scripts may rely on them):
//
//	0    success — including a planned stop, such as an expired -timeout
//	     deadline (the run was bounded on purpose, its output is valid)
//	1    runtime error (I/O failure, simulation fault, internal error)
//	2    bad usage: unknown flag value, invalid configuration, unknown
//	     workload or prefetcher name — and -list listings, which are help
//	     text and print to stderr (see Listing)
//	130  interrupted by SIGINT (128 + signal 2, the shell convention)
package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"fdpsim/internal/sim"
	"fdpsim/internal/sweep"
	"fdpsim/internal/workload/spec"
)

// Exit codes by name; see the package comment for the table.
const (
	ExitOK          = 0
	ExitError       = 1
	ExitUsage       = 2
	ExitInterrupted = 130
)

// ExitCode maps an error from the simulator stack to the documented exit
// code. A nil error and a deadline-stop both mean success.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, context.DeadlineExceeded):
		return ExitOK // a -timeout stop is planned, not a failure
	case errors.Is(err, sim.ErrCancelled):
		return ExitInterrupted
	case errors.Is(err, sim.ErrUnknownWorkload), errors.Is(err, sim.ErrInvalidConfig),
		errors.Is(err, spec.ErrInvalid), errors.Is(err, sweep.ErrInvalid):
		// sweep.ErrInvalid covers sweep-grid validation — a bad axis, an
		// empty grid, an unknown tenant (sweep.ErrUnknownTenant wraps it).
		return ExitUsage
	default:
		return ExitError
	}
}

// FatalIf exits with the error's mapped exit code after printing
// "tool: err" to stderr; a nil error is a no-op.
func FatalIf(tool string, err error) {
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(ExitCode(err))
}

// Fatalf prints "tool: message" to stderr and exits with the given code.
func Fatalf(tool string, code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, fmt.Sprintf(format, args...))
	os.Exit(code)
}

// Listing renders a -list flag's output to stderr and exits with
// ExitUsage. Listings are help text, not program output: like the flag
// package's own -h handling they belong on stderr with exit code 2, so a
// pipeline consuming a tool's stdout (JSON, CSV, trace bytes) never sees
// them and scripts can tell "printed a listing" from a successful run.
func Listing(render func(w io.Writer)) {
	render(os.Stderr)
	os.Exit(ExitUsage)
}
