package cli

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles arms the -cpuprofile/-memprofile plumbing shared by the
// commands. An empty path disables that profile. The returned stop
// function finishes both artifacts — it stops the CPU profile and writes
// a post-GC heap profile — and is idempotent, so callers can both defer
// it and invoke it explicitly before an os.Exit (which would skip the
// defer). Call stop as soon as the measured work completes: the heap
// profile then reflects the simulation's steady state, not the
// report-rendering epilogue.
func StartProfiles(tool, cpuPath, memPath string) (stop func()) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		FatalIf(tool, err)
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			Fatalf(tool, ExitError, "starting CPU profile: %v", err)
		}
		cpuFile = f
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			FatalIf(tool, cpuFile.Close())
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			FatalIf(tool, err)
			runtime.GC() // publish final retained sizes, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				Fatalf(tool, ExitError, "writing heap profile: %v", err)
			}
			FatalIf(tool, f.Close())
		}
	}
}
