package cli

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// Version returns a one-line build identification for the running binary:
// module version (or "devel"), VCS revision and dirty state when the
// binary was built inside a checkout, and the Go toolchain. It reads
// runtime/debug.ReadBuildInfo, so it is accurate for `go build` and
// `go install` alike with no ldflags plumbing.
func Version(tool string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", tool, moduleVersion())
	if rev, dirty, ok := vcsInfo(); ok {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " (%s", rev)
		if dirty {
			b.WriteString("-dirty")
		}
		b.WriteString(")")
	}
	fmt.Fprintf(&b, " %s %s/%s", runtime.Version(), runtime.GOOS, runtime.GOARCH)
	return b.String()
}

func moduleVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

func vcsInfo() (revision string, dirty, ok bool) {
	bi, found := debug.ReadBuildInfo()
	if !found {
		return "", false, false
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision, ok = s.Value, true
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	return revision, dirty, ok
}

// PrintVersion writes the Version line to stdout (the -version flag's
// action in every CLI).
func PrintVersion(tool string) { fmt.Println(Version(tool)) }
