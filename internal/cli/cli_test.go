package cli

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"fdpsim/internal/sim"
	"fdpsim/internal/sweep"
	"fdpsim/internal/workload/spec"
)

func TestExitCodeTable(t *testing.T) {
	cancelErr := &sim.CancelError{Cause: context.Canceled, Cycle: 1, Retired: 1, Target: 2}
	deadlineErr := &sim.CancelError{Cause: context.DeadlineExceeded, Cycle: 1, Retired: 1, Target: 2}
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, ExitOK},
		{"deadline (planned stop)", deadlineErr, ExitOK},
		{"bare deadline", context.DeadlineExceeded, ExitOK},
		{"sigint cancel", cancelErr, ExitInterrupted},
		{"wrapped cancel", fmt.Errorf("outer: %w", cancelErr), ExitInterrupted},
		{"unknown workload", fmt.Errorf("x: %w", sim.ErrUnknownWorkload), ExitUsage},
		{"invalid config", fmt.Errorf("x: %w", sim.ErrInvalidConfig), ExitUsage},
		{"invalid spec", fmt.Errorf("x: %w", spec.ErrInvalid), ExitUsage},
		{"invalid sweep grid", fmt.Errorf("x: %w", sweep.ErrInvalid), ExitUsage},
		{"unknown sweep tenant", fmt.Errorf("x: %w", sweep.ErrUnknownTenant), ExitUsage},
		{"other", errors.New("disk on fire"), ExitError},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("%s: ExitCode = %d, want %d", c.name, got, c.want)
		}
	}
}
