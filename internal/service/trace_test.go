package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"fdpsim/internal/obs"
	"fdpsim/internal/store"
)

// traceBody builds a submit body with the trace flag set.
func traceBody(t *testing.T, cfg JobRequest) *bytes.Reader {
	t.Helper()
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(raw)
}

// getBody fetches a URL and returns status code plus body bytes.
func getBody(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp.Header
}

// TestTraceEndpoint covers the decision-trace artifact end to end: a
// traced job serves JSONL whose event count matches the run's interval
// count, the chrome format renders a loadable trace_event document, an
// untraced job 404s, and an unknown format 400s.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	cfg := fastConfig(200_000, 7)
	var st JobStatus
	code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs",
		traceBody(t, JobRequest{Config: &cfg, Trace: true}), &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	jobURL := ts.URL + "/v1/jobs/" + st.ID

	// While queued/running the artifact is not ready: 409, not 404.
	if c, _, _ := getBody(t, jobURL+"/trace"); c != http.StatusConflict && c != http.StatusOK {
		// The run may already be done on a fast machine; both are legal.
		t.Fatalf("trace before terminal = %d, want 409 (or 200 if already done)", c)
	}

	final := pollUntil(t, ts.Client(), jobURL, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("job finished %s (%s)", final.State, final.Error)
	}
	if !final.Trace {
		t.Fatal("terminal status does not advertise the trace artifact")
	}

	code, raw, hdr := getBody(t, jobURL+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET trace = %d (%s)", code, raw)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace Content-Type = %q", ct)
	}
	events, err := obs.ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("served trace is not valid JSONL: %v", err)
	}
	if final.Result == nil || uint64(len(events)) != final.Result.Intervals {
		t.Fatalf("trace has %d events, result closed %d intervals", len(events), final.Result.Intervals)
	}
	if last := events[len(events)-1]; last.DCCAfter != final.Result.FinalLevel {
		t.Fatalf("trace ends at DCC %d, result FinalLevel %d", last.DCCAfter, final.Result.FinalLevel)
	}

	// Chrome export: one valid JSON document.
	code, raw, hdr = getBody(t, jobURL+"/trace?format=chrome")
	if code != http.StatusOK {
		t.Fatalf("GET trace?format=chrome = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("chrome Content-Type = %q", ct)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}

	if code, _, _ := getBody(t, jobURL+"/trace?format=protobuf"); code != http.StatusBadRequest {
		t.Fatalf("unknown format = %d, want 400", code)
	}

	// A job submitted without tracing has no artifact.
	code = doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs",
		traceBody(t, JobRequest{Config: &cfg}), &st)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("untraced submit = %d", code)
	}
	untracedURL := ts.URL + "/v1/jobs/" + st.ID
	pollUntil(t, ts.Client(), untracedURL, func(s JobStatus) bool { return s.State.Terminal() })
	if code, _, _ := getBody(t, untracedURL+"/trace"); code != http.StatusNotFound {
		t.Fatalf("trace of untraced job = %d, want 404", code)
	}
}

// TestTraceCacheHit checks the persisted-trace path: with a store, a
// second identical traced submission is a cache hit that still serves the
// first run's trace.
func TestTraceCacheHit(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1, Store: st})

	cfg := fastConfig(150_000, 11)
	var first JobStatus
	doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs",
		traceBody(t, JobRequest{Config: &cfg, Trace: true}), &first)
	final := pollUntil(t, ts.Client(), ts.URL+"/v1/jobs/"+first.ID,
		func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("first run finished %s (%s)", final.State, final.Error)
	}
	_, want, _ := getBody(t, ts.URL+"/v1/jobs/"+first.ID+"/trace")

	var second JobStatus
	code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs",
		traceBody(t, JobRequest{Config: &cfg, Trace: true}), &second)
	if code != http.StatusOK {
		t.Fatalf("identical resubmission = %d, want 200 (cache hit)", code)
	}
	if !second.CacheHit || !second.Trace {
		t.Fatalf("cache hit did not carry the trace (cache_hit=%v trace=%v)", second.CacheHit, second.Trace)
	}
	code, got, _ := getBody(t, ts.URL+"/v1/jobs/"+second.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("cache-hit trace = %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cache-hit trace differs from the original run's trace")
	}
}
