package service

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"fdpsim/internal/sweep"
)

func qjob(tenant string, priority int, id string) *Job {
	return &Job{id: id, tenant: tenant, priority: priority, state: StateQueued}
}

// TestFairQueueWeightedRatio checks the acceptance criterion directly: a
// 10:1 weight split yields a 10:1 pop split while both tenants have
// work. Smooth WRR is deterministic, so the ratio is exact, well within
// the required 20%.
func TestFairQueueWeightedRatio(t *testing.T) {
	q := newFairQueue(1024, false, map[string]TenantConfig{
		"heavy": {Weight: 10},
		"light": {Weight: 1},
	})
	for i := 0; i < 100; i++ {
		if err := q.push(qjob("heavy", 0, fmt.Sprintf("h%d", i)), true); err != nil {
			t.Fatal(err)
		}
		if err := q.push(qjob("light", 0, fmt.Sprintf("l%d", i)), true); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]int{}
	for i := 0; i < 110; i++ {
		j, ok := q.tryPop()
		if !ok {
			t.Fatalf("pop %d: queue empty early", i)
		}
		counts[j.tenant]++
		q.release(j.tenant)
	}
	ratio := float64(counts["heavy"]) / float64(counts["light"])
	if ratio < 8 || ratio > 12 { // 10 ± 20%
		t.Fatalf("pop split heavy=%d light=%d (ratio %.2f), want ~10:1",
			counts["heavy"], counts["light"], ratio)
	}
	// Fairness must also interleave, not batch: the light tenant appears
	// within the first 11 pops. Verify via per-tenant popped counters.
	for _, ts := range q.snapshot() {
		switch ts.Name {
		case "heavy":
			if ts.Popped != uint64(counts["heavy"]) {
				t.Fatalf("heavy popped counter %d, want %d", ts.Popped, counts["heavy"])
			}
		case "light":
			if ts.Popped == 0 {
				t.Fatal("light tenant starved")
			}
		}
	}
}

// TestFairQueueRunningQuota checks the MaxRunning invariant: a
// quota-capped tenant never has more jobs running than its cap, and a
// release opens exactly one slot.
func TestFairQueueRunningQuota(t *testing.T) {
	q := newFairQueue(1024, false, map[string]TenantConfig{
		"capped": {Weight: 1, MaxRunning: 2},
	})
	for i := 0; i < 5; i++ {
		if err := q.push(qjob("capped", 0, fmt.Sprintf("j%d", i)), false); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := q.tryPop(); !ok {
		t.Fatal("first pop blocked below quota")
	}
	if _, ok := q.tryPop(); !ok {
		t.Fatal("second pop blocked below quota")
	}
	if j, ok := q.tryPop(); ok {
		t.Fatalf("pop %s exceeded MaxRunning=2", j.id)
	}
	q.release("capped")
	if _, ok := q.tryPop(); !ok {
		t.Fatal("pop blocked after release opened a slot")
	}
	if _, ok := q.tryPop(); ok {
		t.Fatal("pop exceeded quota after one release")
	}

	// After close the queue drains regardless of the running quota.
	q.close()
	for i := 0; i < 2; i++ {
		if _, ok := q.tryPop(); !ok {
			t.Fatalf("drain pop %d blocked after close", i)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop returned a job from a drained closed queue")
	}
}

// TestFairQueueQueuedQuota checks admission: per-tenant MaxQueued and the
// global depth bound direct submissions, and sweep jobs bypass both.
func TestFairQueueQueuedQuota(t *testing.T) {
	q := newFairQueue(3, false, map[string]TenantConfig{
		"small": {Weight: 1, MaxQueued: 2},
	})
	if err := q.push(qjob("small", 0, "a"), false); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("small", 0, "b"), false); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("small", 0, "c"), false); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("tenant quota breach = %v, want ErrQueueFull", err)
	}
	// Another tenant still has global headroom...
	if err := q.push(qjob("other", 0, "d"), false); err != nil {
		t.Fatal(err)
	}
	// ...until the global depth is reached.
	if err := q.push(qjob("other", 0, "e"), false); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("global depth breach = %v, want ErrQueueFull", err)
	}
	// Sweep jobs bypass both bounds (admission was bounded at expansion).
	if err := q.push(qjob("small", 0, "f"), true); err != nil {
		t.Fatalf("sweep push rejected: %v", err)
	}
	if got := q.depthUsed(); got != 4 { // a, b, d, f
		t.Fatalf("depthUsed = %d, want 4", got)
	}
}

// TestFairQueueStrictTenancy checks the roster modes: open tenancy
// auto-registers at weight 1; a strict roster rejects unknown tenants
// with sweep.ErrUnknownTenant (a usage error: exit code 2, HTTP 400).
func TestFairQueueStrictTenancy(t *testing.T) {
	open := newFairQueue(16, false, nil)
	if err := open.push(qjob("walk-in", 0, "a"), false); err != nil {
		t.Fatalf("open tenancy rejected a new tenant: %v", err)
	}
	found := false
	for _, ts := range open.snapshot() {
		if ts.Name == "walk-in" && ts.Weight == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("auto-registered tenant missing from snapshot")
	}

	strict := newFairQueue(16, true, map[string]TenantConfig{"alice": {Weight: 2}})
	if err := strict.push(qjob("alice", 0, "a"), false); err != nil {
		t.Fatalf("rostered tenant rejected: %v", err)
	}
	if err := strict.push(qjob("", 0, "b"), false); err != nil {
		t.Fatalf("default tenant rejected under strict roster: %v", err)
	}
	err := strict.push(qjob("mallory", 0, "c"), false)
	if !errors.Is(err, sweep.ErrUnknownTenant) || !errors.Is(err, sweep.ErrInvalid) {
		t.Fatalf("unknown tenant error = %v, want sweep.ErrUnknownTenant", err)
	}
	if err := strict.validateTenant("mallory"); !errors.Is(err, sweep.ErrUnknownTenant) {
		t.Fatalf("validateTenant = %v, want sweep.ErrUnknownTenant", err)
	}
	if err := strict.validateTenant("alice"); err != nil {
		t.Fatalf("validateTenant(alice) = %v", err)
	}
}

// TestFairQueuePriorityOrder checks within-tenant ordering: higher
// priority first, FIFO within a priority.
func TestFairQueuePriorityOrder(t *testing.T) {
	q := newFairQueue(16, false, nil)
	for _, j := range []*Job{
		qjob("t", 0, "p0-first"),
		qjob("t", 5, "p5-first"),
		qjob("t", 5, "p5-second"),
		qjob("t", 1, "p1"),
	} {
		if err := q.push(j, false); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for {
		j, ok := q.tryPop()
		if !ok {
			break
		}
		got = append(got, j.id)
		q.release(j.tenant)
	}
	want := []string{"p5-first", "p5-second", "p1", "p0-first"}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// TestFairQueueBlockingPop checks the sync.Cond handoff: a pop blocked on
// an empty queue wakes on push, and close unblocks it with ok=false.
func TestFairQueueBlockingPop(t *testing.T) {
	q := newFairQueue(16, false, nil)
	popped := make(chan *Job, 1)
	go func() {
		j, ok := q.pop()
		if !ok {
			popped <- nil
			return
		}
		popped <- j
	}()
	time.Sleep(10 * time.Millisecond) // let the popper block
	if err := q.push(qjob("t", 0, "wake"), false); err != nil {
		t.Fatal(err)
	}
	select {
	case j := <-popped:
		if j == nil || j.id != "wake" {
			t.Fatalf("blocked pop returned %v", j)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("push did not wake the blocked popper")
	}

	done := make(chan bool, 1)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("close handed the popper a job from an empty queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not wake the blocked popper")
	}
	if err := q.push(qjob("t", 0, "late"), false); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("push after close = %v, want ErrShuttingDown", err)
	}
}
