package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"fdpsim/internal/store"
	"fdpsim/internal/sweep"
)

// sweepBody marshals a sweep request for POST /v1/sweeps.
func sweepBody(t *testing.T, req sweep.Request) *bytes.Reader {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(raw)
}

// testSweep is the acceptance grid: 3 axes, 2×3×3 = 18 cells, all
// distinct fingerprints.
func testSweep(name string) sweep.Request {
	return sweep.Request{
		Name:      name,
		Workloads: []string{"seqstream", "chaserand"},
		Configs: []sweep.ConfigAxis{
			{Prefetcher: "stream", Level: 5},
			{Prefetcher: "stream", FDP: true},
			{Prefetcher: "none"},
		},
		Seeds: []uint64{1, 2, 3},
		Insts: 20_000,
	}
}

// TestSweepEndToEnd drives the acceptance scenario over HTTP: a 3-axis
// 18-job sweep completes with a merged results table, the aggregate SSE
// feed reaches a terminal frame, and resubmitting the identical sweep is
// answered ≥90% from cache.
func TestSweepEndToEnd(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 8, Store: st})
	client := ts.Client()

	var sws SweepStatus
	code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/sweeps",
		sweepBody(t, testSweep("acceptance")), &sws)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit = %d, want 202", code)
	}
	if sws.Cells != 18 || sws.Jobs != 18 {
		t.Fatalf("sweep expanded to %d cells / %d jobs, want 18/18", sws.Cells, sws.Jobs)
	}
	if sws.Tenant != "default" || sws.State != "running" {
		t.Fatalf("sweep status = %+v", sws)
	}

	// The aggregate SSE feed ends with a "done" frame whose counts add up.
	msgs := readSSE(t, client, ts.URL+"/v1/sweeps/"+sws.ID+"/events")
	last := msgs[len(msgs)-1]
	if last.Event != "done" {
		t.Fatalf("sweep SSE ended with %q", last.Event)
	}
	var final SweepStatus
	if err := json.Unmarshal([]byte(last.Data), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || final.Summary.Done != 18 || final.Summary.Failed != 0 {
		t.Fatalf("final sweep frame: %+v", final)
	}
	// Intermediate summary frames carry consistent aggregate counts.
	for _, m := range msgs[:len(msgs)-1] {
		if m.Event != "summary" {
			t.Fatalf("unexpected sweep SSE event %q", m.Event)
		}
		var ev SweepEvent
		if err := json.Unmarshal([]byte(m.Data), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Summary.Total != 18 {
			t.Fatalf("summary frame total = %d", ev.Summary.Total)
		}
	}

	// Merged results: JSON cells all done with real metrics...
	var res sweepResults
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/sweeps/"+sws.ID+"/results", nil, &res); code != http.StatusOK {
		t.Fatalf("results = %d", code)
	}
	if len(res.Cells) != 18 {
		t.Fatalf("results cells = %d", len(res.Cells))
	}
	fps := map[string]bool{}
	for _, c := range res.Cells {
		if c.State != "done" || c.JobID == "" || c.Fingerprint == "" {
			t.Fatalf("cell not done: %+v", c)
		}
		if c.IPC <= 0 {
			t.Fatalf("cell without IPC: %+v", c)
		}
		fps[c.Fingerprint] = true
	}
	if len(fps) != 18 {
		t.Fatalf("distinct fingerprints = %d, want 18", len(fps))
	}

	// ...and the text rendering is the harness-style merged table.
	resp, err := client.Get(ts.URL + "/v1/sweeps/" + sws.ID + "/results?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"acceptance — IPC", "acceptance — BPKI",
		"stream-L5", "stream-fdp", "none", "seqstream/s2", "chaserand/s3"} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("text results lack %q:\n%s", want, text)
		}
	}

	// The listing surfaces the sweep's jobs with sweep ID and state filter.
	var jobs []JobStatus
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs?sweep="+sws.ID+"&state=done", nil, &jobs); code != http.StatusOK {
		t.Fatalf("job listing = %d", code)
	}
	if len(jobs) != 18 {
		t.Fatalf("sweep job listing = %d jobs, want 18", len(jobs))
	}
	for _, j := range jobs {
		if j.Sweep != sws.ID || j.Tenant != "default" || j.State != StateDone {
			t.Fatalf("listed job: %+v", j)
		}
	}

	// Resubmission: the identical grid answers ≥90% from cache (here 100%:
	// every fingerprint is memoized and on disk).
	var again SweepStatus
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/sweeps",
		sweepBody(t, testSweep("acceptance")), &again); code != http.StatusAccepted {
		t.Fatalf("resubmit = %d", code)
	}
	fin := pollSweep(t, client, ts.URL+"/v1/sweeps/"+again.ID, func(s SweepStatus) bool {
		return s.State != "running"
	})
	if fin.Summary.CacheHits < 17 { // ≥90% of 18
		t.Fatalf("resubmitted sweep cache hits = %d/18, want ≥17", fin.Summary.CacheHits)
	}

	if got := srv.Executions(); got != 18 {
		t.Fatalf("server executed %d simulations for 36 cells, want 18", got)
	}
	if v := metricValue(t, client, ts.URL, "sim_sweep_submitted_total"); v != 2 {
		t.Fatalf("sim_sweep_submitted_total = %v, want 2", v)
	}
	if v := metricValue(t, client, ts.URL, "sim_sweep_cells_total"); v != 36 {
		t.Fatalf("sim_sweep_cells_total = %v, want 36", v)
	}
}

// TestSweepControllerAxis drives the controller head-to-head over HTTP:
// one sweep, three workloads, every registered decision policy as its own
// config axis, attribution on. The merged text tables gain one column per
// controller and a bus-util table, and /metrics labels the insertion and
// DCC-level series by controller.
func TestSweepControllerAxis(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 8})
	client := ts.Client()

	req := sweep.Request{
		Name:      "controllers",
		Workloads: []string{"seqstream", "chaserand", "mixedphase"},
		Configs: []sweep.ConfigAxis{
			{FDP: true, Controller: "fdp"},
			{FDP: true, Controller: "static-1"},
			{FDP: true, Controller: "static-2"},
			{FDP: true, Controller: "static-3"},
			{FDP: true, Controller: "static-4"},
			{FDP: true, Controller: "static-5"},
			{FDP: true, Controller: "dspatch-dual"},
			{FDP: true, Controller: "tree"},
		},
		Insts: 20_000, TInterval: 64, Attribution: true,
	}
	var sws SweepStatus
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/sweeps", sweepBody(t, req), &sws); code != http.StatusAccepted {
		t.Fatalf("controller sweep submit = %d, want 202", code)
	}
	if sws.Cells != 24 {
		t.Fatalf("controller sweep expanded to %d cells, want 24 (3 workloads x 8 controllers)", sws.Cells)
	}
	fin := pollSweep(t, client, ts.URL+"/v1/sweeps/"+sws.ID, func(s SweepStatus) bool {
		return s.Summary.Terminal()
	})
	if fin.Summary.Done != 24 || fin.Summary.Failed != 0 {
		t.Fatalf("controller sweep finished %+v", fin.Summary)
	}

	// The merged tables carry one column per controller, and attribution
	// adds the bus-util table alongside IPC and BPKI.
	resp, err := client.Get(ts.URL + "/v1/sweeps/" + sws.ID + "/results?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"controllers — IPC", "controllers — BPKI", "controllers — bus-util",
		"stream-fdp", "stream-static-1", "stream-static-2", "stream-static-3",
		"stream-static-4", "stream-static-5", "stream-dspatch-dual", "stream-tree",
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("controller sweep text results lack %q:\n%s", want, text)
		}
	}

	// The scrape labels the decision-policy series by controller.
	resp, err = client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`fdpserved_insertion_policy_total{controller="fdp",position=`,
		`fdpserved_dcc_level_jobs{controller=`,
	} {
		if !strings.Contains(string(scrape), want) {
			t.Fatalf("metrics scrape lacks %q", want)
		}
	}
}

// pollSweep polls a sweep until pred accepts its status.
func pollSweep(t *testing.T, client *http.Client, url string, pred func(SweepStatus) bool) SweepStatus {
	t.Helper()
	for i := 0; i < 6000; i++ {
		var s SweepStatus
		if code := doJSON(t, client, http.MethodGet, url, nil, &s); code != http.StatusOK {
			t.Fatalf("GET %s = %d", url, code)
		}
		if pred(s) {
			return s
		}
		sleepMillis(5)
	}
	t.Fatalf("poll deadline passed for %s", url)
	return SweepStatus{}
}

// TestSweepValidationAndTenancy checks the admission errors: invalid
// grids are 400s with no sweep created, and a strict roster rejects
// sweeps from unknown tenants.
func TestSweepValidationAndTenancy(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4,
		Tenants:       map[string]TenantConfig{"alice": {Weight: 2}},
		StrictTenants: true,
	})
	client := ts.Client()

	bad := []sweep.Request{
		{Configs: []sweep.ConfigAxis{{}}},  // no workloads
		{Workloads: []string{"seqstream"}}, // no configs
		{Workloads: []string{"no-such"}, Configs: []sweep.ConfigAxis{{}}},
		{Workloads: []string{"seqstream"}, Configs: []sweep.ConfigAxis{{Prefetcher: "warp"}}},
		{Workloads: []string{"seqstream"}, Configs: []sweep.ConfigAxis{{FDP: true, Level: 3}}},
		{Workloads: []string{"seqstream"}, Configs: []sweep.ConfigAxis{{}}, Tenant: "mallory"},
	}
	for i, req := range bad {
		var e struct {
			Error string `json:"error"`
		}
		if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/sweeps", sweepBody(t, req), &e); code != http.StatusBadRequest {
			t.Fatalf("bad sweep %d = %d (%s), want 400", i, code, e.Error)
		}
	}
	var list []SweepStatus
	doJSON(t, client, http.MethodGet, ts.URL+"/v1/sweeps", nil, &list)
	if len(list) != 0 {
		t.Fatalf("rejected sweeps left %d entries", len(list))
	}

	// A rostered tenant's sweep is admitted and attributed.
	req := sweep.Request{Name: "ok", Tenant: "alice", Workloads: []string{"seqstream"},
		Configs: []sweep.ConfigAxis{{Prefetcher: "stream", FDP: true}}, Insts: 20_000}
	var sws SweepStatus
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/sweeps", sweepBody(t, req), &sws); code != http.StatusAccepted {
		t.Fatalf("rostered sweep = %d", code)
	}
	if sws.Tenant != "alice" {
		t.Fatalf("sweep tenant = %q", sws.Tenant)
	}
	pollSweep(t, client, ts.URL+"/v1/sweeps/"+sws.ID, func(s SweepStatus) bool { return s.State == "done" })
}

// TestListStateFilterAndIdempotency covers the satellite listing and
// idempotency-key semantics on the single-job API.
func TestListStateFilterAndIdempotency(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	client := ts.Client()

	var st JobStatus
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
		submitBody(t, fastConfig(30_000, 7)), &st); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	done := pollUntil(t, client, ts.URL+"/v1/jobs/"+st.ID, func(s JobStatus) bool {
		return s.State.Terminal()
	})
	if done.Tenant != "default" {
		t.Fatalf("job tenant = %q, want default", done.Tenant)
	}

	// ?state= filtering: done lists the job, queued does not, junk is 400.
	var listed []JobStatus
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs?state=done", nil, &listed); code != http.StatusOK || len(listed) != 1 {
		t.Fatalf("state=done listing = %d (%d jobs)", code, len(listed))
	}
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs?state=queued", nil, &listed); code != http.StatusOK || len(listed) != 0 {
		t.Fatalf("state=queued listing = %d (%d jobs)", code, len(listed))
	}
	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs?state=bogus", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("state=bogus = %d, want 400", code)
	}

	// A retry echoing the fingerprint is answered with the existing job.
	cfg := fastConfig(30_000, 7)
	raw, _ := json.Marshal(JobRequest{Config: &cfg, IdempotencyKey: done.Fingerprint})
	var retry JobStatus
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(raw), &retry); code != http.StatusOK {
		t.Fatalf("idempotent retry = %d, want 200", code)
	}
	if retry.ID != done.ID {
		t.Fatalf("idempotent retry created a new job: %s vs %s", retry.ID, done.ID)
	}

	// A key that does not match the request's fingerprint is a conflict.
	other := fastConfig(30_000, 8)
	raw, _ = json.Marshal(JobRequest{Config: &other, IdempotencyKey: done.Fingerprint})
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(raw), nil); code != http.StatusConflict {
		t.Fatalf("mismatched idempotency key = %d, want 409", code)
	}
}

// TestRetryAfterJitter checks the 429 hint is within the documented
// 1–3s jitter window.
func TestRetryAfterJitter(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	client := ts.Client()
	defer drainServer(t, srv)

	// One running + one queued fills the service; the next submission
	// sheds with a jittered Retry-After.
	for i := 0; i < 2; i++ {
		if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
			submitBody(t, slowConfig(uint64(100+i))), nil); code != http.StatusAccepted {
			t.Fatalf("fill submit %d = %d", i, code)
		}
	}
	sawJitter := false
	for i := 0; i < 20; i++ {
		cfg := slowConfig(uint64(200 + i))
		resp, err := client.Post(ts.URL+"/v1/jobs", "application/json",
			bytes.NewReader(mustJSON(t, JobRequest{Config: &cfg})))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overload submit = %d (%s)", resp.StatusCode, body)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || ra < 1 || ra > 3 {
			t.Fatalf("Retry-After = %q, want 1..3", resp.Header.Get("Retry-After"))
		}
		if ra > 1 {
			sawJitter = true
		}
	}
	if !sawJitter {
		t.Fatal("20 rejections all answered Retry-After: 1; jitter missing")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// drainServer cancels everything so slow jobs do not hold shutdown.
func drainServer(t *testing.T, srv *Server) {
	t.Helper()
	for _, j := range srv.Jobs() {
		srv.Cancel(j.ID()) //nolint:errcheck
	}
}

func sleepMillis(ms int) { time.Sleep(time.Duration(ms) * time.Millisecond) }
