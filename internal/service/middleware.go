package service

import (
	"net/http"
	"time"
)

// statusRecorder captures the response status and size for the request
// log. It forwards Flush so SSE streaming (handleEvents) keeps working
// behind the middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

func (r *statusRecorder) Flush() {
	if fl, ok := r.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// withObservability instruments every request: a duration observation on
// the http_request_duration_seconds histogram and one structured log line
// carrying a server-unique request ID. Scrape and liveness endpoints log
// at Debug so an aggressive Prometheus interval does not drown the job
// lifecycle log.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.reqSeq.Add(1)
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)

		s.m.httpDur.observe(elapsed.Seconds())
		if rec.status == 0 {
			rec.status = http.StatusOK // handler wrote nothing (e.g. aborted SSE)
		}
		log := s.log.Info
		if r.URL.Path == "/metrics" || r.URL.Path == "/healthz" {
			log = s.log.Debug
		}
		log("http request", "req", id, "method", r.Method, "path", r.URL.Path,
			"status", rec.status, "bytes", rec.bytes, "duration", elapsed)
	})
}
