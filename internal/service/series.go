package service

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"fdpsim/internal/series"
)

// The interval-timeseries endpoints: per-job series queries (windowed
// downsampling, metric selection, JSON or CSV), the sweep-level merged
// series, and the run-diff endpoint — the HTTP face of internal/series.

// seriesMetricJSON is one column of a GET .../series JSON response:
// either raw per-interval values (step=1) or downsampled buckets.
type seriesMetricJSON struct {
	Name    string          `json:"name"`
	Unit    string          `json:"unit,omitempty"`
	Values  []float64       `json:"values,omitempty"`
	Buckets []series.Bucket `json:"buckets,omitempty"`
}

// seriesResponse is the GET .../series JSON body.
type seriesResponse struct {
	Meta    series.Meta        `json:"meta"`
	Step    int                `json:"step"`
	Metrics []seriesMetricJSON `json:"metrics"`
}

// seriesQuery parses the shared ?metrics= and ?step= parameters against a
// decoded series, returning the selected column indexes.
func seriesQuery(r *http.Request, sr *series.Series) (cols []int, step int, err error) {
	q := r.URL.Query()
	step = 1
	if raw := q.Get("step"); raw != "" {
		step, err = strconv.Atoi(raw)
		if err != nil || step < 1 {
			return nil, 0, fmt.Errorf("invalid step %q (want a positive integer)", raw)
		}
	}
	if raw := q.Get("metrics"); raw != "" {
		for _, name := range strings.Split(raw, ",") {
			name = strings.TrimSpace(name)
			idx := -1
			for i, m := range sr.Meta.Metrics {
				if m == name {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, 0, fmt.Errorf("unknown metric %q (see the catalog in docs/OBSERVABILITY.md)", name)
			}
			cols = append(cols, idx)
		}
	} else {
		for i := range sr.Meta.Metrics {
			cols = append(cols, i)
		}
	}
	return cols, step, nil
}

// metricUnit looks a metric's unit up in the catalog ("" for unknown or
// unitless metrics).
func metricUnit(name string) string {
	if i := series.MetricIndex(name); i >= 0 {
		return series.Catalog[i].Unit
	}
	return ""
}

// writeSeries renders a decoded series with the shared query grammar:
// ?metrics= column selection, ?step= downsampling, ?format=json|csv.
func writeSeries(w http.ResponseWriter, r *http.Request, sr *series.Series, filename string) {
	cols, step, err := seriesQuery(r, sr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		resp := seriesResponse{Meta: sr.Meta, Step: step}
		for _, ci := range cols {
			mj := seriesMetricJSON{Name: sr.Meta.Metrics[ci], Unit: metricUnit(sr.Meta.Metrics[ci])}
			if step == 1 {
				mj.Values = sr.Columns[ci]
			} else {
				mj.Buckets = series.Downsample(sr.Columns[ci], step)
			}
			resp.Metrics = append(resp.Metrics, mj)
		}
		writeJSON(w, http.StatusOK, resp)
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", filename))
		w.WriteHeader(http.StatusOK)
		writeSeriesCSV(w, sr, cols, step)
	default:
		writeError(w, http.StatusBadRequest, "unknown series format %q (want json or csv)", format)
	}
}

// writeSeriesCSV streams the selected columns as CSV: one row per
// interval at step 1, or one row per window (with min/mean/max/p95 per
// metric) when downsampling.
func writeSeriesCSV(w http.ResponseWriter, sr *series.Series, cols []int, step int) {
	if step == 1 {
		fmt.Fprint(w, "interval")
		for _, ci := range cols {
			fmt.Fprintf(w, ",%s", sr.Meta.Metrics[ci])
		}
		fmt.Fprintln(w)
		for i := 0; i < sr.Len(); i++ {
			fmt.Fprintf(w, "%d", i+1)
			for _, ci := range cols {
				fmt.Fprintf(w, ",%g", sr.Columns[ci][i])
			}
			fmt.Fprintln(w)
		}
		return
	}
	fmt.Fprint(w, "start,n")
	for _, ci := range cols {
		name := sr.Meta.Metrics[ci]
		fmt.Fprintf(w, ",%s_min,%s_mean,%s_max,%s_p95", name, name, name, name)
	}
	fmt.Fprintln(w)
	buckets := make([][]series.Bucket, len(cols))
	for k, ci := range cols {
		buckets[k] = series.Downsample(sr.Columns[ci], step)
	}
	if len(buckets) == 0 || len(buckets[0]) == 0 {
		return
	}
	for bi := range buckets[0] {
		fmt.Fprintf(w, "%d,%d", buckets[0][bi].Start, buckets[0][bi].N)
		for k := range cols {
			b := buckets[k][bi]
			fmt.Fprintf(w, ",%g,%g,%g,%g", b.Min, b.Mean, b.Max, b.P95)
		}
		fmt.Fprintln(w)
	}
}

// jobSeries loads and decodes a terminal job's sidecar. The error string
// is already client-facing.
func (s *Server) jobSeries(job *Job) (*series.Series, error) {
	doc, ok := job.SeriesData()
	if !ok {
		return nil, fmt.Errorf("job %s has no interval series; submit with \"series\": true", job.ID())
	}
	sr, err := series.Decode(doc)
	if err != nil {
		return nil, fmt.Errorf("stored series is unreadable: %v", err)
	}
	return sr, nil
}

// handleSeries serves a terminal job's interval timeseries.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !job.Status().State.Terminal() {
		writeError(w, http.StatusConflict,
			"job %s has not finished; the series is available once the job is terminal", job.ID())
		return
	}
	sr, err := s.jobSeries(job)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeSeries(w, r, sr, job.ID()+".series.csv")
}

// handleSweepSeries serves the element-wise mean of every distinct
// terminal cell's series — the sweep's average per-interval trajectory.
// Cells without a series (not recorded, or evicted from the store) are
// skipped; a sweep with none reports 404.
func (s *Server) handleSweepSeries(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.Sweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	sw.mu.Lock()
	jobs := sw.jobs
	sw.mu.Unlock()
	var runs []*series.Series
	seen := map[string]bool{}
	for _, j := range jobs {
		if j == nil || seen[j.id] {
			continue
		}
		seen[j.id] = true
		if !j.Status().State.Terminal() {
			continue
		}
		if sr, err := s.jobSeries(j); err == nil && sr.Len() > 0 {
			runs = append(runs, sr)
		}
	}
	if len(runs) == 0 {
		writeError(w, http.StatusNotFound,
			"sweep %s has no cell series; submit the sweep with \"series\": true and wait for cells to finish", sw.ID())
		return
	}
	merged := series.Merge(runs...)
	merged.Meta.Workload = fmt.Sprintf("%d cells", len(runs))
	writeSeries(w, r, merged, sw.ID()+".series.csv")
}

// seriesByFingerprint resolves a fingerprint to a decoded series: the
// store sidecar first (survives restarts), then any in-memory job for the
// fingerprint (storeless servers, tests).
func (s *Server) seriesByFingerprint(fp string) (*series.Series, bool) {
	if s.cfg.Store != nil {
		if doc, ok := s.cfg.Store.GetSeries(fp); ok {
			if sr, err := series.Decode(doc); err == nil {
				return sr, true
			}
		}
	}
	if job, ok := s.jobByFingerprint(fp); ok {
		if doc, ok := job.SeriesData(); ok {
			if sr, err := series.Decode(doc); err == nil {
				return sr, true
			}
		}
	}
	return nil, false
}

// handleDiff aligns two fingerprints' series and reports per-metric
// residuals with a verdict against the default tolerance bands
// (series.DefaultTolerances). ?skip_a= / ?skip_b= drop leading intervals
// (warmup offsets); ?deltas=1 attaches the full per-interval delta
// series to each metric.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	fpA, fpB := q.Get("a"), q.Get("b")
	if fpA == "" || fpB == "" {
		s.m.countDiff("error")
		writeError(w, http.StatusBadRequest, "diff needs ?a= and ?b= fingerprints")
		return
	}
	var opts series.Options
	var err error
	if raw := q.Get("skip_a"); raw != "" {
		if opts.SkipA, err = strconv.Atoi(raw); err != nil || opts.SkipA < 0 {
			s.m.countDiff("error")
			writeError(w, http.StatusBadRequest, "invalid skip_a %q", raw)
			return
		}
	}
	if raw := q.Get("skip_b"); raw != "" {
		if opts.SkipB, err = strconv.Atoi(raw); err != nil || opts.SkipB < 0 {
			s.m.countDiff("error")
			writeError(w, http.StatusBadRequest, "invalid skip_b %q", raw)
			return
		}
	}
	opts.IncludeDeltas = q.Get("deltas") == "1"

	srA, okA := s.seriesByFingerprint(fpA)
	if !okA {
		s.m.countDiff("error")
		writeError(w, http.StatusNotFound, "no series for fingerprint %s", shortFP(fpA))
		return
	}
	srB, okB := s.seriesByFingerprint(fpB)
	if !okB {
		s.m.countDiff("error")
		writeError(w, http.StatusNotFound, "no series for fingerprint %s", shortFP(fpB))
		return
	}
	rep := series.Diff(srA, srB, opts)
	s.m.countDiff(rep.Verdict)
	writeJSON(w, http.StatusOK, rep)
}
