package service

import (
	"bytes"
	"math"
	"net/http"
	"reflect"
	"regexp"
	"strconv"
	"testing"
	"time"

	"fdpsim/internal/cache"
)

// TestHistogramInitSortsAndDedupes pins the registration-time cleanup:
// out-of-order and duplicated bucket bounds would otherwise render a
// histogram Prometheus rejects (buckets must be strictly increasing).
func TestHistogramInitSortsAndDedupes(t *testing.T) {
	var h histogram
	h.init([]float64{10, 0.1, 1, 0.1, 10, math.NaN(), math.Inf(+1), 0.001})
	want := []float64{0.001, 0.1, 1, 10}
	if !reflect.DeepEqual(h.bounds, want) {
		t.Fatalf("bounds = %v, want %v", h.bounds, want)
	}
	if len(h.counts) != len(want)+1 {
		t.Fatalf("counts has %d slots, want %d (bounds + +Inf)", len(h.counts), len(want)+1)
	}

	// Observations land in the right (deduplicated) buckets.
	h.observe(0.05) // ≤ 0.1
	h.observe(0.05)
	h.observe(5)   // ≤ 10
	h.observe(100) // +Inf
	cum, sum, count := h.snapshot()
	if count != 4 || sum != 105.1 {
		t.Fatalf("count=%d sum=%g, want 4 and 105.1", count, sum)
	}
	if got := []uint64{cum[0], cum[1], cum[2], cum[3], cum[4]}; !reflect.DeepEqual(got, []uint64{0, 2, 2, 3, 4}) {
		t.Fatalf("cumulative buckets = %v, want [0 2 2 3 4]", got)
	}
}

// TestQueueWaitBucketsConfig checks the misconfiguration end to end: a
// server configured with unsorted, duplicated queue-wait buckets must
// scrape with sorted, unique le= bounds.
func TestQueueWaitBucketsConfig(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueWaitBuckets: []float64{5, 0.5, 5, 0.05}})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck

	re := regexp.MustCompile(`fdpserved_queue_wait_seconds_bucket\{le="([^"]+)"\}`)
	var got []string
	for _, m := range re.FindAllStringSubmatch(buf.String(), -1) {
		got = append(got, m[1])
	}
	want := []string{"0.05", "0.5", "5", "+Inf"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rendered le bounds = %v, want %v", got, want)
	}
}

// TestMetricsNewSeries checks the observability additions render: the
// interval counter and rate, the per-position insertion counters, the DCC
// distribution gauges, the trace counters and the HTTP histogram.
func TestMetricsNewSeries(t *testing.T) {
	var m metrics
	m.init(nil)
	for i := 0; i < 7; i++ {
		m.observeSnapshot(intervalSample{insertion: cache.PosMID})
	}
	m.observeSnapshot(intervalSample{insertion: cache.PosMRU})
	m.observeSnapshot(intervalSample{final: true, insertion: cache.PosMRU})                // ignored
	m.observeSnapshot(intervalSample{controller: "dspatch-dual", insertion: cache.PosLRU}) // own series
	m.httpDur.observe(0.002)

	var buf bytes.Buffer
	m.render(&buf, 0, 10*time.Second, map[string][6]int{
		"fdp":  {0, 0, 1, 0, 0, 2},
		"tree": {0, 1, 0, 0, 0, 0},
	}, nil, 0, 0, 0)
	out := buf.String()

	for _, want := range []string{
		"fdpserved_sim_intervals_total 9",
		"fdpserved_sim_intervals_per_second 0.9",
		`fdpserved_insertion_policy_total{controller="fdp",position="MID"} 7`,
		`fdpserved_insertion_policy_total{controller="fdp",position="MRU"} 1`,
		`fdpserved_insertion_policy_total{controller="fdp",position="LRU"} 0`,
		`fdpserved_insertion_policy_total{controller="dspatch-dual",position="LRU"} 1`,
		`fdpserved_dcc_level_jobs{controller="fdp",level="2"} 1`,
		`fdpserved_dcc_level_jobs{controller="fdp",level="5"} 2`,
		`fdpserved_dcc_level_jobs{controller="tree",level="1"} 1`,
		"fdpserved_traces_collected_total 0",
		"fdpserved_http_request_duration_seconds_count 1",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Histogram buckets must parse and be ascending for every family.
	re := regexp.MustCompile(`_bucket\{le="([^"]+)"\}`)
	prev := -1.0
	for _, match := range re.FindAllStringSubmatch(out, -1) {
		if match[1] == "+Inf" {
			prev = -1.0 // next family starts over
			continue
		}
		v, err := strconv.ParseFloat(match[1], 64)
		if err != nil {
			t.Fatalf("unparsable bucket bound %q", match[1])
		}
		if v <= prev {
			t.Fatalf("bucket bound %g not ascending (previous %g)", v, prev)
		}
		prev = v
	}
}
