package service

import (
	"testing"
	"time"

	"fdpsim/internal/sim"
	"fdpsim/internal/store"
)

// TestFleetTwoWorkers is the fleet acceptance smoke: two in-process
// servers share one content-addressed store as fleet workers, every
// configuration is submitted to both, and claim coordination ensures
// each fingerprint is simulated exactly once fleet-wide. One fingerprint
// is pre-claimed by a "ghost" — a worker that died mid-job — whose lease
// the live fleet must wait out and steal.
func TestFleetTwoWorkers(t *testing.T) {
	dir := t.TempDir()
	stA, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(st *store.Store, name string) *Server {
		srv := New(Config{
			Workers: 2, QueueDepth: 64, Store: st,
			FleetWorker: name, LeaseTTL: time.Second,
		})
		t.Cleanup(func() {
			ctx, cancel := testContext(30 * time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck
		})
		return srv
	}
	srvA := mk(stA, "worker-a")
	srvB := mk(stB, "worker-b")

	const n = 12
	configs := make([]sim.Config, n)
	for i := range configs {
		configs[i] = fastConfig(20_000, uint64(1000+i))
	}

	// Injected worker kill: a ghost claimed configs[0] and died without
	// releasing. Its unexpired lease must be waited out, then stolen.
	fp0, ok := sim.Fingerprint(configs[0])
	if !ok {
		t.Fatal("config 0 not fingerprintable")
	}
	if state, _, err := stA.Claim(fp0, "ghost", 400*time.Millisecond); err != nil || state != store.ClaimAcquired {
		t.Fatalf("seeding ghost claim: %v, %v", state, err)
	}

	// Every configuration goes to both servers, interleaved, so nearly
	// every fingerprint is contended across the fleet.
	var jobs []*Job
	for i, cfg := range configs {
		first, second := srvA, srvB
		if i%2 == 1 {
			first, second = srvB, srvA
		}
		j1, err := first.Submit(cfg)
		if err != nil {
			t.Fatalf("submit %d to first: %v", i, err)
		}
		j2, err := second.Submit(cfg)
		if err != nil {
			t.Fatalf("submit %d to second: %v", i, err)
		}
		jobs = append(jobs, j1, j2)
	}
	for _, j := range jobs {
		select {
		case <-j.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("job %s never finished", j.ID())
		}
		st := j.Status()
		if st.State != StateDone || st.Result == nil {
			t.Fatalf("job %s = %s (%s)", st.ID, st.State, st.Error)
		}
	}

	// Exactly-once execution fleet-wide: the two servers' execution
	// counters sum to the number of distinct fingerprints, even though
	// every fingerprint was submitted twice.
	execA, execB := srvA.Executions(), srvB.Executions()
	if execA+execB != n {
		t.Fatalf("fleet executed %d simulations (A=%d, B=%d) for %d distinct configs, want exactly %d",
			execA+execB, execA, execB, n, n)
	}
	if execA == 0 || execB == 0 {
		t.Logf("note: one-sided execution split (A=%d, B=%d); coordination still exact", execA, execB)
	}

	// The ghost's claim was recovered by a lease-steal, not abandoned.
	if stolen := srvA.m.claimsStolen.Load() + srvB.m.claimsStolen.Load(); stolen < 1 {
		t.Fatal("ghost claim was never stolen")
	}

	// Every result is durable in the shared store and consistent across
	// both handles.
	for i, cfg := range configs {
		fp, _ := sim.Fingerprint(cfg)
		ra, okA := stA.Get(fp)
		rb, okB := stB.Get(fp)
		if !okA || !okB {
			t.Fatalf("config %d missing from shared store (A=%v, B=%v)", i, okA, okB)
		}
		if ra.IPC != rb.IPC || ra.IPC <= 0 {
			t.Fatalf("config %d store mismatch: %v vs %v", i, ra.IPC, rb.IPC)
		}
	}

	// No claim files should be left behind once every job released.
	for _, cfg := range configs {
		fp, _ := sim.Fingerprint(cfg)
		if state, info, err := stA.Claim(fp, "probe", time.Minute); err != nil || state != store.ClaimDone {
			t.Fatalf("post-run claim for %s = %v (%+v), %v, want done", shortFP(fp), state, info, err)
		}
	}
}
