package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fdpsim/internal/sim"
)

// fastConfig is a snapshot-rich simulation that finishes in tens of
// milliseconds: a small L2 makes the stream workload close FDP sampling
// intervals every ~3k instructions.
func fastConfig(insts, seed uint64) sim.Config {
	cfg := sim.WithFDP(sim.PrefStream)
	cfg.Workload = "seqstream"
	cfg.MaxInsts = insts
	cfg.WarmupInsts = 0
	cfg.Seed = seed
	cfg.FDP.TInterval = 64
	cfg.L2Blocks = 512
	cfg.L2Ways = 8
	return cfg
}

// slowConfig runs for ~10s of wall clock — long enough to observe and
// cancel deterministically.
func slowConfig(seed uint64) sim.Config {
	return fastConfig(50_000_000, seed)
}

func submitBody(t *testing.T, cfg sim.Config) *bytes.Reader {
	t.Helper()
	raw, err := json.Marshal(JobRequest{Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(raw)
}

// doJSON performs a request and decodes the JSON response into out.
func doJSON(t *testing.T, client *http.Client, method, url string, body *bytes.Reader, out any) int {
	t.Helper()
	var req *http.Request
	var err error
	if body != nil {
		req, err = http.NewRequest(method, url, body)
	} else {
		req, err = http.NewRequest(method, url, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// pollUntil polls a job until pred accepts its status (or the deadline
// passes, failing the test).
func pollUntil(t *testing.T, client *http.Client, url string, pred func(JobStatus) bool) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := doJSON(t, client, http.MethodGet, url, nil, &st); code != http.StatusOK {
			t.Fatalf("GET %s = %d", url, code)
		}
		if pred(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("poll deadline passed for %s", url)
	return JobStatus{}
}

type sseMsg struct {
	Event string
	Data  string
}

// readSSE consumes an SSE stream until the "done" event (or maxEvents).
func readSSE(t *testing.T, client *http.Client, url string) []sseMsg {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	var msgs []sseMsg
	var cur sseMsg
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.Event != "" {
				msgs = append(msgs, cur)
				if cur.Event == "done" {
					return msgs
				}
				cur = sseMsg{}
			}
		}
		if len(msgs) > 10_000 {
			t.Fatal("SSE stream never ended")
		}
	}
	t.Fatalf("SSE stream closed without a done event (err=%v, got %d events)", sc.Err(), len(msgs))
	return nil
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := testContext(30 * time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // double-shutdown in tests is fine
		ts.Close()
	})
	return srv, ts
}

func TestSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	var st JobStatus
	code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, fastConfig(60_000, 1)), &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	if st.ID == "" || st.State == "" {
		t.Fatalf("submit response incomplete: %+v", st)
	}

	final := pollUntil(t, ts.Client(), ts.URL+"/v1/jobs/"+st.ID, func(s JobStatus) bool {
		return s.State.Terminal()
	})
	if final.State != StateDone {
		t.Fatalf("job ended %s (%s), want done", final.State, final.Error)
	}
	if final.Result == nil || final.Result.IPC <= 0 {
		t.Fatalf("done job has no result: %+v", final.Result)
	}
	if final.Result.Partial {
		t.Fatal("completed job marked partial")
	}
	if final.CacheHit {
		t.Fatal("first submission reported as cache hit")
	}
}

func TestSSEStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	var st JobStatus
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, fastConfig(400_000, 2)), &st); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	msgs := readSSE(t, ts.Client(), ts.URL+"/v1/jobs/"+st.ID+"/events")

	progress := 0
	var doneMsg *sseMsg
	for i := range msgs {
		switch msgs[i].Event {
		case "progress":
			progress++
			var snap sim.Snapshot
			if err := json.Unmarshal([]byte(msgs[i].Data), &snap); err != nil {
				t.Fatalf("progress payload: %v", err)
			}
		case "done":
			doneMsg = &msgs[i]
		}
	}
	if progress < 1 {
		t.Fatalf("saw %d progress events, want >= 1 (events: %+v)", progress, msgs)
	}
	if doneMsg == nil {
		t.Fatal("no done event")
	}
	var final JobStatus
	if err := json.Unmarshal([]byte(doneMsg.Data), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("done event carries %+v", final)
	}

	// A subscriber joining after completion gets the done event immediately.
	late := readSSE(t, ts.Client(), ts.URL+"/v1/jobs/"+st.ID+"/events")
	if last := late[len(late)-1]; last.Event != "done" {
		t.Fatalf("late subscription ended with %q, want done", last.Event)
	}
}

func TestCancelRunningJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	var st JobStatus
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, slowConfig(3)), &st); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	url := ts.URL + "/v1/jobs/" + st.ID
	pollUntil(t, ts.Client(), url, func(s JobStatus) bool { return s.State == StateRunning })

	if code := doJSON(t, ts.Client(), http.MethodDelete, url, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel = %d", code)
	}
	final := pollUntil(t, ts.Client(), url, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	if final.Result == nil || !final.Result.Partial {
		t.Fatalf("cancelled job should carry a partial result, got %+v", final.Result)
	}
	if final.Result.Counters.Retired == 0 {
		t.Fatal("partial result retired nothing; cancellation did not drain")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	var running JobStatus
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, slowConfig(4)), &running); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	pollUntil(t, ts.Client(), ts.URL+"/v1/jobs/"+running.ID, func(s JobStatus) bool { return s.State == StateRunning })

	var queued JobStatus
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, slowConfig(5)), &queued); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	var cancelled JobStatus
	if code := doJSON(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil, &cancelled); code != http.StatusOK {
		t.Fatalf("cancel = %d", code)
	}
	if cancelled.State != StateCancelled {
		t.Fatalf("queued job cancel → %s, want cancelled immediately", cancelled.State)
	}
	// Unblock the worker.
	doJSON(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil, nil)
}

func TestBackpressure429(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	var first JobStatus
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, slowConfig(10)), &first); code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	// Wait until the worker holds the first job so the queue slot is free.
	pollUntil(t, ts.Client(), ts.URL+"/v1/jobs/"+first.ID, func(s JobStatus) bool { return s.State == StateRunning })

	var second JobStatus
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, slowConfig(11)), &second); code != http.StatusAccepted {
		t.Fatalf("second submit = %d", code)
	}

	// Worker busy + queue full: the third submission must shed.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, slowConfig(12)))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var apiErr apiError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Error == "" {
		t.Fatalf("429 body: %v %+v", err, apiErr)
	}

	// The rejected job must not linger in the job table.
	var listing []JobStatus
	if code := doJSON(t, ts.Client(), http.MethodGet, ts.URL+"/v1/jobs", nil, &listing); code != http.StatusOK {
		t.Fatalf("list = %d", code)
	}
	if len(listing) != 2 {
		t.Fatalf("job table holds %d entries after a 429, want 2", len(listing))
	}

	for _, id := range []string{first.ID, second.ID} {
		doJSON(t, ts.Client(), http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil, nil)
	}
}

func TestValidationAndNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	client := ts.Client()

	post := func(body string) (int, apiError) {
		resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e apiError
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		return resp.StatusCode, e
	}

	if code, e := post(`{"workload":"no-such-workload"}`); code != http.StatusBadRequest || !strings.Contains(e.Error, "no-such-workload") {
		t.Fatalf("unknown workload: %d %q", code, e.Error)
	}
	if code, e := post(`{"prefetcher":"warp-drive"}`); code != http.StatusBadRequest || !strings.Contains(e.Error, "warp-drive") {
		t.Fatalf("unknown prefetcher: %d %q", code, e.Error)
	}
	if code, _ := post(`{not json`); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d", code)
	}
	if code, _ := post(`{"bogus_field":1}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", code)
	}

	if code := doJSON(t, client, http.MethodGet, ts.URL+"/v1/jobs/job-999999", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown job poll = %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-999999", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job cancel = %d", resp.StatusCode)
	}

	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

// metricValue extracts one series' value from /metrics.
func metricValue(t *testing.T, client *http.Client, url, name string) float64 {
	t.Helper()
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}
