package service

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"fdpsim/internal/harness"
	"fdpsim/internal/obs"
	"fdpsim/internal/sweep"
)

// Sweep is one admitted parameter grid: the expanded units plus the jobs
// executing them. Units with the same fingerprint share one job, so a
// sweep over overlapping axes costs one simulation per distinct
// configuration, not one per cell.
type Sweep struct {
	id      string
	name    string
	tenant  string
	created time.Time

	// traceID threads every job the sweep expands (and, via claim files,
	// every fleet worker that touches them) into one fabric trace;
	// rootSpan is the sweep's own span, the parent of each job span, and
	// parentSpan links it under a submitter's span (X-Fdp-Trace header).
	traceID    string
	rootSpan   string
	parentSpan string

	units []sweep.Unit

	mu         sync.Mutex
	jobs       []*Job // parallel to units; shared jobs repeat
	state      string // running, done, cancelled
	finishedAt time.Time
	subs       map[int]chan SweepEvent
	nextSub    int
	done       chan struct{}
}

// ID returns the sweep's identifier.
func (sw *Sweep) ID() string { return sw.id }

// TraceID returns the fabric trace threading the sweep's jobs.
func (sw *Sweep) TraceID() string { return sw.traceID }

// Done returns a channel closed when every cell is terminal.
func (sw *Sweep) Done() <-chan struct{} { return sw.done }

// SweepEvent is one frame of a sweep's aggregate SSE feed.
type SweepEvent struct {
	ID             string        `json:"id"`
	State          string        `json:"state"`
	Summary        sweep.Summary `json:"summary"`
	ElapsedSeconds float64       `json:"elapsed_seconds"`
	// ETASeconds extrapolates the remaining cells from the completed
	// ones' pace; 0 until the first cell completes or once terminal.
	ETASeconds float64 `json:"eta_seconds,omitempty"`
}

// SweepStatus is the JSON shape of a sweep.
type SweepStatus struct {
	ID         string        `json:"id"`
	Name       string        `json:"name,omitempty"`
	Tenant     string        `json:"tenant"`
	State      string        `json:"state"`
	CreatedAt  time.Time     `json:"created_at"`
	FinishedAt *time.Time    `json:"finished_at,omitempty"`
	Cells      int           `json:"cells"`
	Jobs       int           `json:"jobs"` // distinct simulations
	Summary    sweep.Summary `json:"summary"`
	ETASeconds float64       `json:"eta_seconds,omitempty"`
}

// SubmitSweep expands, validates and admits a sweep: every distinct
// fingerprint in the grid becomes one job on the sweep's tenant (bypassing
// queued quotas — the grid is bounded by sweep.MaxJobs at expansion).
// Expansion failures wrap sweep.ErrInvalid (HTTP 400, exit code 2).
func (s *Server) SubmitSweep(req sweep.Request) (*Sweep, error) {
	return s.SubmitSweepTrace(req, "", "")
}

// SubmitSweepTrace is SubmitSweep joining an existing fabric trace (from
// the X-Fdp-Trace submission header). Empty traceID starts a fresh one.
func (s *Server) SubmitSweepTrace(req sweep.Request, traceID, parentSpan string) (*Sweep, error) {
	units, err := req.Expand()
	if err != nil {
		return nil, err
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = defaultTenant
	}
	if err := s.sched.validateTenant(tenant); err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	s.nextSweep++
	sw := &Sweep{
		id:       fmt.Sprintf("sweep-%04d", s.nextSweep),
		name:     req.Name,
		tenant:   tenant,
		created:  time.Now(),
		traceID:  traceID,
		rootSpan: obs.NewSpanID(),
		units:    units,
		state:    "running",
		subs:     make(map[int]chan SweepEvent),
		done:     make(chan struct{}),
	}
	sw.parentSpan = parentSpan
	s.sweeps[sw.id] = sw
	s.mu.Unlock()

	byFP := make(map[string]*Job, len(units))
	jobs := make([]*Job, len(units))
	var distinct []*Job
	for i, u := range units {
		fp, _ := u.Fingerprint()
		if j, ok := byFP[fp]; ok {
			jobs[i] = j
			continue
		}
		opts := []SubmitOption{WithTenant(tenant), WithPriority(req.Priority), forSweep(sw.id),
			WithTraceContext(sw.traceID, sw.rootSpan)}
		if u.Spec != nil {
			opts = append(opts, WithWorkloadSpec(u.Spec))
		}
		if req.Series {
			opts = append(opts, WithSeriesRecording())
		}
		j, err := s.Submit(u.Cfg, opts...)
		if err != nil {
			// Unreachable except for a shutdown racing the admission:
			// validation happened at Expand and sweep jobs bypass quotas.
			// Leave already-submitted jobs to the shutdown drain and hand
			// back a partially-submitted, cancelled sweep.
			sw.mu.Lock()
			sw.jobs = jobs[:i]
			sw.finishLocked("cancelled")
			sw.mu.Unlock()
			return nil, err
		}
		byFP[fp] = j
		jobs[i] = j
		distinct = append(distinct, j)
	}
	sw.mu.Lock()
	sw.jobs = jobs
	sw.mu.Unlock()

	s.m.sweepsSubmitted.Add(1)
	s.m.sweepCells.Add(uint64(len(units)))
	s.log.Info("sweep submitted", "sweep", sw.id, "name", req.Name, "tenant", tenant,
		"cells", len(units), "jobs", len(distinct))

	for _, j := range distinct {
		go func(j *Job) {
			<-j.Done()
			s.sweepTick(sw)
		}(j)
	}
	if len(distinct) == 0 {
		s.sweepTick(sw)
	}
	return sw, nil
}

// Sweep looks up a sweep by ID.
func (s *Server) Sweep(id string) (*Sweep, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// Sweeps returns every sweep (callers sort by CreatedAt).
func (s *Server) Sweeps() []*Sweep {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Sweep, 0, len(s.sweeps))
	for _, sw := range s.sweeps {
		out = append(out, sw)
	}
	return out
}

// activeSweeps counts sweeps not yet terminal, for the metrics gauge.
func (s *Server) activeSweeps() int {
	n := 0
	for _, sw := range s.Sweeps() {
		sw.mu.Lock()
		if sw.state == "running" {
			n++
		}
		sw.mu.Unlock()
	}
	return n
}

// CancelSweep cancels every non-terminal job the sweep owns. Cells
// already done keep their results; the merged table renders the rest
// as "x".
func (s *Server) CancelSweep(id string) (*Sweep, error) {
	sw, ok := s.Sweep(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	sw.mu.Lock()
	jobs := sw.jobs
	sw.mu.Unlock()
	seen := map[string]bool{}
	for _, j := range jobs {
		if j == nil || seen[j.id] {
			continue
		}
		seen[j.id] = true
		_, _ = s.Cancel(j.id)
	}
	s.log.Info("sweep cancel requested", "sweep", sw.id)
	return sw, nil
}

// Cells snapshots the sweep's grid for aggregation and rendering.
func (sw *Sweep) Cells() []sweep.Cell {
	sw.mu.Lock()
	jobs := sw.jobs
	sw.mu.Unlock()
	cells := make([]sweep.Cell, len(sw.units))
	for i, u := range sw.units {
		c := sweep.Cell{Workload: u.Workload, Config: u.Config, Seed: u.Seed, State: string(StateQueued)}
		if i < len(jobs) && jobs[i] != nil {
			st := jobs[i].Status()
			c.JobID = st.ID
			c.Fingerprint = st.Fingerprint
			c.State = string(st.State)
			c.CacheHit = st.CacheHit
			c.Error = st.Error
			if st.State == StateDone && st.Result != nil {
				c.IPC = st.Result.IPC
				c.BPKI = st.Result.BPKI
				if st.Result.Attribution != nil {
					c.BusUtil = st.Result.Attribution.BusUtilization()
				}
			}
		}
		cells[i] = c
	}
	return cells
}

// Tables renders the sweep's merged results the way the harness renders
// an experiment grid.
func (sw *Sweep) Tables() []harness.Table {
	title := sw.name
	if title == "" {
		title = sw.id
	}
	return sweep.Tables(title, sw.Cells())
}

// Status snapshots the sweep for serialization.
func (sw *Sweep) Status() SweepStatus {
	cells := sw.Cells()
	sum := sweep.Summarize(cells)
	jobs := map[string]bool{}
	for _, c := range cells {
		if c.JobID != "" {
			jobs[c.JobID] = true
		}
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	st := SweepStatus{
		ID:        sw.id,
		Name:      sw.name,
		Tenant:    sw.tenant,
		State:     sw.state,
		CreatedAt: sw.created,
		Cells:     len(cells),
		Jobs:      len(jobs),
		Summary:   sum,
	}
	if !sw.finishedAt.IsZero() {
		t := sw.finishedAt
		st.FinishedAt = &t
	}
	if sw.state == "running" {
		st.ETASeconds = etaSeconds(sum, time.Since(sw.created))
	}
	return st
}

// etaSeconds extrapolates remaining work from the completed cells' pace.
func etaSeconds(sum sweep.Summary, elapsed time.Duration) float64 {
	finished := sum.Done + sum.Failed + sum.Cancelled
	if finished == 0 || finished >= sum.Total {
		return 0
	}
	perCell := elapsed.Seconds() / float64(finished)
	return perCell * float64(sum.Total-finished)
}

// event builds one SSE frame from the sweep's current state.
func (sw *Sweep) event() SweepEvent {
	cells := sw.Cells()
	sum := sweep.Summarize(cells)
	sw.mu.Lock()
	defer sw.mu.Unlock()
	ev := SweepEvent{ID: sw.id, State: sw.state, Summary: sum,
		ElapsedSeconds: time.Since(sw.created).Seconds()}
	if sw.state == "running" {
		ev.ETASeconds = etaSeconds(sum, time.Since(sw.created))
	}
	return ev
}

// subscribe registers an SSE listener; the caller immediately sends the
// returned current event so late joiners see the sweep's position.
func (sw *Sweep) subscribe() (id int, ch chan SweepEvent) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	ch = make(chan SweepEvent, 16)
	id = sw.nextSub
	sw.nextSub++
	sw.subs[id] = ch
	return id, ch
}

func (sw *Sweep) unsubscribe(id int) {
	sw.mu.Lock()
	delete(sw.subs, id)
	sw.mu.Unlock()
}

// finishLocked moves the sweep to a terminal state. Caller holds sw.mu.
func (sw *Sweep) finishLocked(state string) {
	if sw.state != "running" {
		return
	}
	sw.state = state
	sw.finishedAt = time.Now()
	close(sw.done)
}

// sweepTick recomputes the aggregate after a job completes, fans the
// frame out to SSE subscribers (drop-not-block, like job progress), and
// finalizes the sweep when the last cell lands.
func (s *Server) sweepTick(sw *Sweep) {
	cells := sw.Cells()
	sum := sweep.Summarize(cells)

	sw.mu.Lock()
	if sum.Terminal() && sw.state == "running" {
		state := "done"
		if sum.Done == 0 && sum.Cancelled > 0 {
			state = "cancelled"
		}
		sw.finishLocked(state)
	}
	ev := SweepEvent{ID: sw.id, State: sw.state, Summary: sum,
		ElapsedSeconds: time.Since(sw.created).Seconds()}
	if sw.state == "running" {
		ev.ETASeconds = etaSeconds(sum, time.Since(sw.created))
	}
	for _, ch := range sw.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	state := sw.state
	created, finished := sw.created, sw.finishedAt
	sw.mu.Unlock()

	if state != "running" {
		// The sweep's root span completes when its last cell lands; every
		// job span already parents onto it via WithTraceContext.
		s.spans.RecordSpan(obs.Span{
			TraceID: sw.traceID, SpanID: sw.rootSpan, Parent: sw.parentSpan,
			Name: "sweep", Actor: s.actor(), Lane: sw.tenant,
			Start: created, End: finished,
			Attrs: map[string]string{
				"sweep": sw.id, "outcome": state,
				"cells": strconv.Itoa(sum.Total), "done": strconv.Itoa(sum.Done),
			}})
		s.m.spansRecorded.Add(1)
		s.log.Info("sweep finished", "sweep", sw.id, "state", state,
			"done", sum.Done, "failed", sum.Failed, "cancelled", sum.Cancelled,
			"cache_hits", sum.CacheHits)
	}
}

// Spans gathers the sweep's fabric spans: the sweep root (once terminal)
// plus every distinct job's spans, for GET /v1/sweeps/{id}/trace. The
// root span is synthesized live for a still-running sweep so a partial
// trace still renders.
func (s *Server) sweepSpans(sw *Sweep) []obs.Span {
	sw.mu.Lock()
	jobs := sw.jobs
	state := sw.state
	created, finished := sw.created, sw.finishedAt
	sw.mu.Unlock()
	if finished.IsZero() {
		finished = time.Now()
	}
	out := []obs.Span{{
		TraceID: sw.traceID, SpanID: sw.rootSpan, Parent: sw.parentSpan,
		Name: "sweep", Actor: s.actor(), Lane: sw.tenant,
		Start: created, End: finished,
		Attrs: map[string]string{"sweep": sw.id, "outcome": state},
	}}
	seen := map[string]bool{}
	for _, j := range jobs {
		if j == nil || seen[j.id] {
			continue
		}
		seen[j.id] = true
		out = append(out, j.Spans()...)
	}
	return out
}
