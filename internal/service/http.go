package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"time"

	"fdpsim/internal/obs"
	"fdpsim/internal/sim"
	"fdpsim/internal/sweep"
	"fdpsim/internal/workload/spec"
)

// JobRequest is the POST /v1/jobs body. Either set the simple fields —
// they assemble a configuration exactly like the fdpsim CLI's flags — or
// supply a complete sim.Config under "config" for full control; the
// simple sizing fields (insts, warmup, seed, tinterval) still apply on
// top of an explicit config when non-zero.
type JobRequest struct {
	Workload         string `json:"workload"`
	Prefetcher       string `json:"prefetcher"`           // default "stream"
	Level            int    `json:"level"`                // static aggressiveness 1..5; 0 with fdp
	FDP              bool   `json:"fdp"`                  // dynamic aggressiveness + insertion
	DynamicInsertion bool   `json:"dynamic_insertion"`    // dynamic insertion only
	Controller       string `json:"controller,omitempty"` // feedback decision policy (internal/control names)
	Insts            uint64 `json:"insts"`                // default 1,000,000
	Warmup           uint64 `json:"warmup"`
	Seed             uint64 `json:"seed"`
	TInterval        uint64 `json:"tinterval"`

	// Trace makes the job collect its FDP decision trace, downloadable at
	// GET /v1/jobs/{id}/trace once the job is terminal.
	Trace bool `json:"trace,omitempty"`

	// Series makes the job record its interval timeseries, queryable at
	// GET /v1/jobs/{id}/series once the job is terminal and diffable
	// against another run at GET /v1/diff.
	Series bool `json:"series,omitempty"`

	// Tenant attributes the job to a scheduler tenant for fair queueing
	// and quotas; empty means the default tenant. Priority orders the job
	// within the tenant's queue (higher runs sooner).
	Tenant   string `json:"tenant,omitempty"`
	Priority int    `json:"priority,omitempty"`

	// IdempotencyKey, when set, must equal the configuration fingerprint
	// the server would compute for this request (the "fingerprint" field
	// of a prior submission's status). A matching key makes the POST
	// idempotent: if a job for that fingerprint already exists — queued,
	// running or finished — it is returned (200) instead of a duplicate
	// being created. A mismatched key is rejected (409) since it means
	// the client is retrying a different configuration than it believes.
	IdempotencyKey string `json:"idempotency_key,omitempty"`

	// Attribution enables the cycle-accounting and bandwidth-attribution
	// layer: the job's Result gains the Attribution block, its SSE
	// progress events and decision trace carry per-interval stall/bus
	// samples, and /metrics aggregates the stall and bus-occupancy
	// counters across attribution jobs.
	Attribution bool `json:"attribution,omitempty"`

	// Config, when present, is the full simulator configuration and takes
	// the place of the assembled baseline.
	Config *sim.Config `json:"config,omitempty"`

	// Spec, when present, is a declarative WorkloadSpec (the same schema
	// docs/WORKLOADS.md documents for spec files) the job runs instead of a
	// registered workload name; "workload" is then ignored and the job is
	// deduplicated under the spec-aware fingerprint. Only single-lane specs
	// are accepted.
	Spec *spec.Spec `json:"spec,omitempty"`
}

// BuildConfig assembles the simulation configuration. Validation happens
// in Submit (ValidateJob), not here.
func (r *JobRequest) BuildConfig() sim.Config {
	var cfg sim.Config
	switch {
	case r.Config != nil:
		cfg = *r.Config
	default:
		kind := sim.PrefetcherKind(r.Prefetcher)
		if r.Prefetcher == "" {
			kind = sim.PrefStream
		}
		switch {
		case r.FDP:
			cfg = sim.WithFDP(kind)
		case kind == sim.PrefNone:
			cfg = sim.Default()
		default:
			level := r.Level
			if level == 0 {
				level = 5
			}
			cfg = sim.Conventional(kind, level)
		}
		if r.DynamicInsertion {
			cfg.FDP.DynamicInsertion = true
		}
		if r.Workload != "" {
			cfg.Workload = r.Workload
		}
	}
	if r.Insts != 0 {
		cfg.MaxInsts = r.Insts
	}
	if r.Warmup != 0 {
		cfg.WarmupInsts = r.Warmup
	}
	if r.Seed != 0 {
		cfg.Seed = r.Seed
	}
	if r.TInterval != 0 {
		cfg.FDP.TInterval = r.TInterval
	}
	if r.Controller != "" {
		cfg.Controller = r.Controller
	}
	if r.Attribution {
		cfg.Attribution = true
	}
	return cfg
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs               submit (202; 200 on a cache hit; 429 full)
//	GET    /v1/jobs               list job statuses (?state=, ?tenant=, ?sweep=)
//	GET    /v1/jobs/{id}          poll one job
//	GET    /v1/jobs/{id}/events   SSE per-interval progress
//	GET    /v1/jobs/{id}/trace    download the FDP decision trace
//	                              (JSONL; ?format=chrome for Perfetto)
//	GET    /v1/jobs/{id}/series   interval timeseries (?metrics=, ?step=,
//	                              ?format=json|csv)
//	GET    /v1/jobs/{id}/spans    fabric spans (JSON; ?format=chrome)
//	DELETE /v1/jobs/{id}          cancel
//	POST   /v1/sweeps             submit a parameter grid (202; 400 invalid)
//	GET    /v1/sweeps             list sweep statuses
//	GET    /v1/sweeps/{id}        poll one sweep (aggregate summary + ETA)
//	GET    /v1/sweeps/{id}/events SSE aggregate progress (counts, ETA, means)
//	GET    /v1/sweeps/{id}/results merged results (JSON; ?format=text for tables)
//	GET    /v1/sweeps/{id}/trace  whole-sweep fabric trace (Chrome/Perfetto;
//	                              ?format=json for raw spans)
//	GET    /v1/sweeps/{id}/series merged (mean) interval timeseries across
//	                              the sweep's cells
//	GET    /v1/diff               run-diff two fingerprints' series
//	                              (?a=, ?b=, ?skip_a=, ?skip_b=)
//	DELETE /v1/sweeps/{id}        cancel every non-terminal cell
//	GET    /debug/events          fabric-span flight recorder (last N spans)
//	GET    /metrics               Prometheus text metrics
//	GET    /healthz               liveness
//
// Every route runs behind the observability middleware: request-duration
// metrics plus one structured log line per request with a request ID.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/series", s.handleSeries)
	mux.HandleFunc("GET /v1/jobs/{id}/spans", s.handleJobSpans)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepGet)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleSweepEvents)
	mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleSweepResults)
	mux.HandleFunc("GET /v1/sweeps/{id}/trace", s.handleSweepTrace)
	mux.HandleFunc("GET /v1/sweeps/{id}/series", s.handleSweepSeries)
	mux.HandleFunc("GET /v1/diff", s.handleDiff)
	mux.HandleFunc("GET /debug/events", s.handleDebugEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s.withObservability(mux)
}

// apiError is every non-2xx JSON body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client went away; nothing to do
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job request: %v", err)
		return
	}
	cfg := req.BuildConfig()

	// Idempotent retries: a client that saw a submission's fingerprint but
	// lost the response echoes it back; an existing job for it — in any
	// state — answers the retry instead of a duplicate being created.
	if req.IdempotencyKey != "" {
		if fp, ok := fingerprintRequest(cfg, req.Spec); ok && fp != req.IdempotencyKey {
			writeError(w, http.StatusConflict,
				"idempotency key %s does not match this request's fingerprint %s",
				shortFP(req.IdempotencyKey), shortFP(fp))
			return
		}
		if job, ok := s.jobByFingerprint(req.IdempotencyKey); ok {
			writeJSON(w, http.StatusOK, job.Status())
			return
		}
	}

	var opts []SubmitOption
	if req.Trace {
		opts = append(opts, WithDecisionTrace())
	}
	if req.Series {
		opts = append(opts, WithSeriesRecording())
	}
	if req.Spec != nil {
		opts = append(opts, WithWorkloadSpec(req.Spec))
	}
	if req.Tenant != "" {
		opts = append(opts, WithTenant(req.Tenant))
	}
	if req.Priority != 0 {
		opts = append(opts, WithPriority(req.Priority))
	}
	if traceID, parent := parseTraceHeader(r.Header.Get(TraceHeader)); traceID != "" {
		opts = append(opts, WithTraceContext(traceID, parent))
	}
	job, err := s.Submit(cfg, opts...)
	switch {
	case err == nil:
		st := job.Status()
		w.Header().Set(TraceHeader, job.TraceID())
		if st.CacheHit {
			writeJSON(w, http.StatusOK, st) // answered without simulating
			return
		}
		w.Header().Set("Location", "/v1/jobs/"+job.ID())
		writeJSON(w, http.StatusAccepted, st)
	case errors.Is(err, ErrQueueFull):
		// Backpressure: one worker will free up within roughly a run
		// length. The Retry-After hint is jittered so a herd of clients
		// that hit the full queue together does not retry in lockstep.
		retry := retryAfterSeconds()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeError(w, http.StatusTooManyRequests, "%v (retry after %ds)", err, retry)
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default: // validation (including sweep.ErrUnknownTenant)
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// retryAfterSeconds is the backoff hint sent with 429 responses: a 1–3s
// jittered window rather than a fixed constant.
func retryAfterSeconds() int { return 1 + rand.IntN(3) }

// fingerprintRequest computes the fingerprint Submit would assign,
// for idempotency-key verification. ok is false for configurations the
// fingerprint machinery rejects — Submit then reports the real error.
func fingerprintRequest(cfg sim.Config, sp *spec.Spec) (string, bool) {
	if sp != nil {
		cfg.Workload = sp.Name
		return sim.FingerprintSpec(cfg, sp)
	}
	return sim.Fingerprint(cfg)
}

// jobByFingerprint finds the most recent job for a fingerprint.
func (s *Server) jobByFingerprint(fp string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *Job
	for _, j := range s.jobs {
		if j.fp == fp && (best == nil || j.submittedAt.After(best.submittedAt)) {
			best = j
		}
	}
	return best, best != nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	stateFilter := q.Get("state")
	switch JobState(stateFilter) {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
	default:
		writeError(w, http.StatusBadRequest,
			"unknown state %q (want queued, running, done, failed or cancelled)", stateFilter)
		return
	}
	tenantFilter := q.Get("tenant")
	sweepFilter := q.Get("sweep")

	jobs := s.Jobs()
	statuses := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		st := j.Status()
		if stateFilter != "" && st.State != JobState(stateFilter) {
			continue
		}
		if tenantFilter != "" && st.Tenant != tenantFilter {
			continue
		}
		if sweepFilter != "" && st.Sweep != sweepFilter {
			continue
		}
		st.Result = nil // keep the listing small; poll the job for metrics
		statuses = append(statuses, st)
	}
	sort.Slice(statuses, func(i, k int) bool {
		return statuses[i].SubmittedAt.Before(statuses[k].SubmittedAt)
	})
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// sseEvent writes one Server-Sent Event and flushes it to the client.
func sseEvent(w http.ResponseWriter, fl http.Flusher, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
		return err
	}
	fl.Flush()
	return nil
}

// sseKeepalive writes one SSE comment frame — invisible to EventSource
// clients, but enough traffic to keep proxies and LBs from reaping an
// idle stream.
func sseKeepalive(w http.ResponseWriter, fl http.Flusher) error {
	if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
		return err
	}
	fl.Flush()
	return nil
}

// keepaliveTicker returns the idle-keepalive channel for an SSE stream
// (nil — blocking forever — when keepalives are disabled) and its stop
// function. Callers Reset the ticker whenever they send a real event so
// comment frames only fill genuine idle gaps.
func (s *Server) keepaliveTicker() (*time.Ticker, <-chan time.Time) {
	if s.cfg.SSEKeepalive <= 0 {
		return nil, nil
	}
	t := time.NewTicker(s.cfg.SSEKeepalive)
	return t, t.C
}

// handleEvents streams a job's per-FDP-interval Snapshots as SSE
// "progress" events, ending with one "done" event carrying the final
// JobStatus (result included). Subscribing to a finished job yields the
// "done" event immediately. Idle gaps are bridged with ": keepalive"
// comment frames (Config.SSEKeepalive).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	id, ch, last := job.subscribe()
	defer job.unsubscribe(id)
	ticker, keepalive := s.keepaliveTicker()
	if ticker != nil {
		defer ticker.Stop()
	}

	// Late joiners first see where the run already is.
	if err := sseEvent(w, fl, "state", job.Status()); err != nil {
		return
	}
	if last != nil {
		if err := sseEvent(w, fl, "progress", *last); err != nil {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case snap := <-ch:
			if ticker != nil {
				ticker.Reset(s.cfg.SSEKeepalive)
			}
			if err := sseEvent(w, fl, "progress", snap); err != nil {
				return
			}
		case <-keepalive:
			if err := sseKeepalive(w, fl); err != nil {
				return
			}
		case <-job.Done():
			// Trailing snapshots still in ch are superseded by the final
			// status (its Result carries the authoritative numbers).
			sseEvent(w, fl, "done", job.Status()) //nolint:errcheck
			return
		}
	}
}

// handleTrace serves a terminal job's FDP decision trace: JSONL by
// default, or the Chrome trace_event document (loadable in Perfetto /
// chrome://tracing) with ?format=chrome.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !job.Status().State.Terminal() {
		writeError(w, http.StatusConflict,
			"job %s has not finished; the trace is available once the job is terminal", job.ID())
		return
	}
	jsonl, ok := job.Trace()
	if !ok {
		writeError(w, http.StatusNotFound,
			"job %s has no decision trace; submit with \"trace\": true", job.ID())
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q", job.ID()+".trace.jsonl"))
		w.WriteHeader(http.StatusOK)
		w.Write(jsonl) //nolint:errcheck // the client went away; nothing to do
	case "chrome":
		events, err := obs.ReadJSONL(bytes.NewReader(jsonl))
		if err != nil {
			writeError(w, http.StatusInternalServerError, "stored trace is unreadable: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q", job.ID()+".trace.json"))
		w.WriteHeader(http.StatusOK)
		obs.WriteChrome(w, events) //nolint:errcheck // ditto
	default:
		writeError(w, http.StatusBadRequest, "unknown trace format %q (want jsonl or chrome)", format)
	}
}

// handleJobSpans serves a job's fabric spans: JSON by default, or the
// Chrome trace_event document with ?format=chrome. Spans accumulate as
// the job progresses, so polling a running job shows the stages so far.
func (s *Server) handleJobSpans(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	spans := job.Spans()
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, map[string]any{
			"trace_id": job.TraceID(),
			"spans":    spans,
		})
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q", job.ID()+".spans.json"))
		w.WriteHeader(http.StatusOK)
		obs.WriteSpansChrome(w, spans) //nolint:errcheck // the client went away
	default:
		writeError(w, http.StatusBadRequest, "unknown spans format %q (want json or chrome)", format)
	}
}

// handleSweepTrace serves the sweep's whole fabric trace — the sweep
// root plus every job's spans — as a Chrome trace_event document by
// default (one Perfetto lane per worker, one row per tenant), or raw
// span JSON with ?format=json. A running sweep renders its partial
// trace.
func (s *Server) handleSweepTrace(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.Sweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	spans := s.sweepSpans(sw)
	switch format := r.URL.Query().Get("format"); format {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q", sw.ID()+".trace.json"))
		w.WriteHeader(http.StatusOK)
		obs.WriteSpansChrome(w, spans) //nolint:errcheck // ditto
	case "json":
		writeJSON(w, http.StatusOK, map[string]any{
			"trace_id": sw.TraceID(),
			"spans":    spans,
		})
	default:
		writeError(w, http.StatusBadRequest, "unknown trace format %q (want chrome or json)", format)
	}
}

// handleDebugEvents serves the fabric flight recorder: the last N spans
// across all jobs and sweeps, oldest first, with the eviction count —
// the "what just happened" endpoint for incident triage.
func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"spans":   s.spans.Spans(),
		"held":    s.spans.Len(),
		"dropped": s.spans.Dropped(),
	})
}

// handleSweepSubmit admits a parameter grid: expansion and validation
// happen synchronously (400 on a bad grid), execution is asynchronous.
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	var req sweep.Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid sweep request: %v", err)
		return
	}
	traceID, parent := parseTraceHeader(r.Header.Get(TraceHeader))
	sw, err := s.SubmitSweepTrace(req, traceID, parent)
	switch {
	case err == nil:
		w.Header().Set("Location", "/v1/sweeps/"+sw.ID())
		w.Header().Set(TraceHeader, sw.TraceID())
		writeJSON(w, http.StatusAccepted, sw.Status())
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default: // sweep.ErrInvalid (incl. ErrUnknownTenant) or validation
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	sweeps := s.Sweeps()
	statuses := make([]SweepStatus, 0, len(sweeps))
	for _, sw := range sweeps {
		statuses = append(statuses, sw.Status())
	}
	sort.Slice(statuses, func(i, k int) bool {
		return statuses[i].CreatedAt.Before(statuses[k].CreatedAt)
	})
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.Sweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, sw.Status())
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	sw, err := s.CancelSweep(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, sw.Status())
}

// sweepResults is the JSON body of GET /v1/sweeps/{id}/results.
type sweepResults struct {
	SweepStatus
	Cells []sweep.Cell `json:"results"`
}

// handleSweepResults serves the merged results table: the full cell grid
// as JSON, or the harness-style aligned text tables with ?format=text.
// Partial sweeps render too — pending cells as "-", failed as "x".
func (s *Server) handleSweepResults(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.Sweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, sweepResults{SweepStatus: sw.Status(), Cells: sw.Cells()})
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		for _, t := range sw.Tables() {
			t.Render(w)
		}
	default:
		writeError(w, http.StatusBadRequest, "unknown results format %q (want json or text)", format)
	}
}

// handleSweepEvents streams the sweep's aggregate as SSE "summary"
// events — one frame per completed cell with counts, rolling IPC/BPKI
// means and an ETA — ending with one "done" event carrying the final
// status. Subscribing to a finished sweep yields "done" immediately.
func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.Sweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	id, ch := sw.subscribe()
	defer sw.unsubscribe(id)
	ticker, keepalive := s.keepaliveTicker()
	if ticker != nil {
		defer ticker.Stop()
	}

	if err := sseEvent(w, fl, "summary", sw.event()); err != nil {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-ch:
			if ticker != nil {
				ticker.Reset(s.cfg.SSEKeepalive)
			}
			if err := sseEvent(w, fl, "summary", ev); err != nil {
				return
			}
		case <-keepalive:
			if err := sseKeepalive(w, fl); err != nil {
				return
			}
		case <-sw.Done():
			sseEvent(w, fl, "done", sw.Status()) //nolint:errcheck
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.m.render(w, s.sched.depthUsed(), time.Since(s.started), s.dccDistribution(),
		s.sched.snapshot(), s.activeSweeps(), s.spans.Len(), s.spans.Dropped())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
