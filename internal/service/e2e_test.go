package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"fdpsim/internal/store"
)

func testContext(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// TestEndToEnd is the PR's acceptance scenario: serve on an ephemeral
// port, submit over HTTP, observe SSE progress, fetch the final result;
// an identical second submission is a cache hit (asserted via /metrics);
// Shutdown drains an in-flight job to a clean partial result; and the
// whole exercise leaks no goroutines (run under -race in CI).
func TestEndToEnd(t *testing.T) {
	before := runtime.NumGoroutine()

	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Workers: 2, QueueDepth: 8, Store: st})
	ts := httptest.NewServer(srv.Handler()) // ephemeral 127.0.0.1 port
	client := ts.Client()

	// 1. Submit over HTTP.
	var first JobStatus
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, fastConfig(400_000, 42)), &first); code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}

	// 2. At least one SSE progress event, then the done event.
	msgs := readSSE(t, client, ts.URL+"/v1/jobs/"+first.ID+"/events")
	progress := 0
	for _, m := range msgs {
		if m.Event == "progress" {
			progress++
		}
	}
	if progress < 1 {
		t.Fatalf("saw %d SSE progress events, want >= 1", progress)
	}

	// 3. Fetch the final result.
	final := pollUntil(t, client, ts.URL+"/v1/jobs/"+first.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != StateDone || final.Result == nil || final.Result.IPC <= 0 {
		t.Fatalf("final job: %+v", final)
	}

	// 4. Identical submission: served from cache without re-simulating.
	var second JobStatus
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, fastConfig(400_000, 42)), &second); code != http.StatusOK {
		t.Fatalf("duplicate submit = %d, want 200 (cache hit)", code)
	}
	if !second.CacheHit || second.State != StateDone || second.Result == nil {
		t.Fatalf("duplicate submission not a completed cache hit: %+v", second)
	}
	if second.Result.IPC != final.Result.IPC {
		t.Fatalf("cache served a different result: %v vs %v", second.Result.IPC, final.Result.IPC)
	}
	if hits := metricValue(t, client, ts.URL, "fdpserved_cache_hits_total"); hits != 1 {
		t.Fatalf("cache_hits_total = %v, want 1", hits)
	}
	if misses := metricValue(t, client, ts.URL, "fdpserved_cache_misses_total"); misses != 1 {
		t.Fatalf("cache_misses_total = %v, want 1", misses)
	}
	if cps := metricValue(t, client, ts.URL, "fdpserved_sim_cycles_per_second"); cps <= 0 {
		t.Fatalf("sim_cycles_per_second = %v, want > 0", cps)
	}

	// 5. The result survived to disk (a restarted daemon would hit too).
	if st.Len() != 1 {
		t.Fatalf("store holds %d entries, want 1", st.Len())
	}

	// 6. Shutdown drains an in-flight job to a clean partial result.
	var inflight JobStatus
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs", submitBody(t, slowConfig(43)), &inflight); code != http.StatusAccepted {
		t.Fatalf("in-flight submit = %d", code)
	}
	pollUntil(t, client, ts.URL+"/v1/jobs/"+inflight.ID, func(s JobStatus) bool { return s.State == StateRunning })

	sctx, cancel := testContext(30 * time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	drained := pollUntil(t, client, ts.URL+"/v1/jobs/"+inflight.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if drained.State != StateCancelled {
		t.Fatalf("in-flight job ended %s, want cancelled", drained.State)
	}
	if drained.Result == nil || !drained.Result.Partial || drained.Result.Counters.Retired == 0 {
		t.Fatalf("drained job lacks a clean partial result: %+v", drained.Result)
	}

	// 7. Post-shutdown: intake refused, health reports draining.
	resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", submitBody(t, fastConfig(60_000, 44)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown = %d, want 503", resp.StatusCode)
	}
	resp, err = client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after shutdown = %d, want 503", resp.StatusCode)
	}

	// 8. No goroutine leaks once the HTTP server is down.
	ts.Close()
	client.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines: %d before, %d after shutdown\n%s", before, runtime.NumGoroutine(), buf[:n])
}
