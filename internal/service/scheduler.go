package service

import (
	"fmt"
	"sync"
	"time"

	"fdpsim/internal/sweep"
)

// TenantConfig declares one scheduler tenant: its share of the worker
// pool and its admission quotas.
type TenantConfig struct {
	// Weight is the tenant's share of worker pops relative to the other
	// tenants with runnable work (smooth weighted round-robin). 0 means 1.
	Weight int
	// MaxRunning caps the tenant's concurrently running jobs; further work
	// stays queued until a slot frees. 0 means unlimited.
	MaxRunning int
	// MaxQueued caps the tenant's directly submitted queued jobs; beyond
	// it POST /v1/jobs answers 429. Sweep jobs bypass this quota — a sweep
	// is admitted whole (bounded by sweep.MaxJobs) and fairness, not
	// admission, spreads its load. 0 means unlimited (the global
	// QueueDepth still applies to direct submissions).
	MaxQueued int
}

// defaultTenant is the tenant unattributed submissions run under. It is
// always registered, even under a strict roster.
const defaultTenant = "default"

// tenantState is one tenant's live scheduling state. Guarded by fairQueue.mu.
type tenantState struct {
	name       string
	weight     int
	maxRunning int
	maxQueued  int

	credit  int    // smooth-WRR credit
	queue   []*Job // priority-ordered, FIFO within a priority
	running int
	popped  uint64 // jobs handed to workers, cumulative
}

// TenantSnapshot is one tenant's state as exported to metrics and tests.
type TenantSnapshot struct {
	Name    string
	Weight  int
	Queued  int
	Running int
	Popped  uint64
	// OldestWait is how long the tenant's oldest queued job has been
	// waiting (zero for an empty queue) — the starvation signal.
	OldestWait time.Duration
}

// fairQueue replaces the service's bare FIFO channel with a per-tenant
// fair scheduler: each tenant keeps its own priority-ordered queue, and
// workers pop via smooth weighted round-robin (the nginx credit scheme)
// over the tenants that have runnable work — so a 4096-job sweep from one
// tenant cannot starve another tenant's interactive single jobs, and a
// 10:1 weight split yields a 10:1 pop split while both tenants are busy.
//
// Selection is deterministic: credits make the interleaving a pure
// function of the push/pop sequence, which keeps the fairness tests exact
// rather than statistical.
type fairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	depth  int  // global bound on directly submitted queued jobs
	strict bool // roster-only tenancy: unknown tenants are rejected
	closed bool

	tenants map[string]*tenantState
	order   []string // registration order, for stable iteration
	queued  int      // total queued across tenants
}

func newFairQueue(depth int, strict bool, roster map[string]TenantConfig) *fairQueue {
	q := &fairQueue{
		depth:   depth,
		strict:  strict,
		tenants: make(map[string]*tenantState),
	}
	q.cond = sync.NewCond(&q.mu)
	q.register(defaultTenant, TenantConfig{})
	for name, cfg := range roster {
		q.register(name, cfg)
	}
	return q
}

// register adds or reconfigures a tenant. Safe to call concurrently with
// scheduling; quota changes apply to subsequent decisions.
func (q *fairQueue) register(name string, cfg TenantConfig) {
	if name == "" {
		name = defaultTenant
	}
	if cfg.Weight <= 0 {
		cfg.Weight = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	ts, ok := q.tenants[name]
	if !ok {
		ts = &tenantState{name: name}
		q.tenants[name] = ts
		q.order = append(q.order, name)
	}
	ts.weight = cfg.Weight
	ts.maxRunning = cfg.MaxRunning
	ts.maxQueued = cfg.MaxQueued
	q.cond.Broadcast()
}

// lookupLocked resolves a tenant name, auto-registering it at weight 1
// under open tenancy and rejecting it under a strict roster.
func (q *fairQueue) lookupLocked(name string) (*tenantState, error) {
	if name == "" {
		name = defaultTenant
	}
	if ts, ok := q.tenants[name]; ok {
		return ts, nil
	}
	if q.strict {
		return nil, fmt.Errorf("%w %q", sweep.ErrUnknownTenant, name)
	}
	ts := &tenantState{name: name, weight: 1}
	q.tenants[name] = ts
	q.order = append(q.order, name)
	return ts, nil
}

// validateTenant reports whether name is admissible, without registering
// it under a strict roster. Used to reject a whole sweep up front.
func (q *fairQueue) validateTenant(name string) error {
	if name == "" {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	_, ok := q.tenants[name]
	if !ok && q.strict {
		return fmt.Errorf("%w %q", sweep.ErrUnknownTenant, name)
	}
	return nil
}

// push enqueues a job under its tenant, ordered by priority (higher
// first, FIFO within a priority). Direct submissions are bounded by the
// global depth and the tenant's MaxQueued quota; sweep jobs set
// bypassQuota — their admission bound is sweep.MaxJobs at expansion.
func (q *fairQueue) push(j *Job, bypassQuota bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrShuttingDown
	}
	ts, err := q.lookupLocked(j.tenant)
	if err != nil {
		return err
	}
	if !bypassQuota {
		if q.queued >= q.depth {
			return ErrQueueFull
		}
		if ts.maxQueued > 0 && len(ts.queue) >= ts.maxQueued {
			return fmt.Errorf("%w (tenant %q at queued quota %d)", ErrQueueFull, ts.name, ts.maxQueued)
		}
	}
	i := len(ts.queue)
	for i > 0 && ts.queue[i-1].priority < j.priority {
		i--
	}
	ts.queue = append(ts.queue, nil)
	copy(ts.queue[i+1:], ts.queue[i:])
	ts.queue[i] = j
	q.queued++
	q.cond.Signal()
	return nil
}

// selectLocked runs one round of smooth weighted round-robin over the
// tenants with runnable work: every eligible tenant earns its weight in
// credit, the richest tenant wins and pays the total eligible weight
// back. After close, running quotas are ignored so the queue drains.
func (q *fairQueue) selectLocked() *tenantState {
	var eligible []*tenantState
	total := 0
	for _, name := range q.order {
		ts := q.tenants[name]
		if len(ts.queue) == 0 {
			continue
		}
		if !q.closed && ts.maxRunning > 0 && ts.running >= ts.maxRunning {
			continue
		}
		eligible = append(eligible, ts)
		total += ts.weight
	}
	if len(eligible) == 0 {
		return nil
	}
	best := eligible[0]
	for _, ts := range eligible {
		ts.credit += ts.weight
		if ts.credit > best.credit {
			best = ts
		}
	}
	best.credit -= total
	return best
}

// tryPop pops the next job without blocking. ok is false when no tenant
// has runnable work right now.
func (q *fairQueue) tryPop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.popLocked()
}

func (q *fairQueue) popLocked() (*Job, bool) {
	ts := q.selectLocked()
	if ts == nil {
		return nil, false
	}
	j := ts.queue[0]
	copy(ts.queue, ts.queue[1:])
	ts.queue[len(ts.queue)-1] = nil
	ts.queue = ts.queue[:len(ts.queue)-1]
	q.queued--
	ts.running++
	ts.popped++
	return j, true
}

// pop blocks until a job is runnable or the queue is closed and drained.
// The caller owns a running slot on the job's tenant until it calls
// release — including for jobs that turn out to be cancelled.
func (q *fairQueue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if j, ok := q.popLocked(); ok {
			return j, true
		}
		if q.closed && q.queued == 0 {
			return nil, false
		}
		q.cond.Wait()
	}
}

// release returns a running slot to the job's tenant and wakes poppers
// that may have been blocked on its MaxRunning quota.
func (q *fairQueue) release(tenant string) {
	if tenant == "" {
		tenant = defaultTenant
	}
	q.mu.Lock()
	if ts, ok := q.tenants[tenant]; ok && ts.running > 0 {
		ts.running--
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

// close stops intake and wakes every blocked popper; remaining queued
// jobs drain (quota-free) and then pop reports done.
func (q *fairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// depthUsed returns the total queued job count.
func (q *fairQueue) depthUsed() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}

// snapshot exports per-tenant state for metrics and tests, in
// registration order.
func (q *fairQueue) snapshot() []TenantSnapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(q.order))
	now := time.Now()
	for _, name := range q.order {
		ts := q.tenants[name]
		snap := TenantSnapshot{
			Name:    ts.name,
			Weight:  ts.weight,
			Queued:  len(ts.queue),
			Running: ts.running,
			Popped:  ts.popped,
		}
		// The queue is priority-ordered, not FIFO, so the oldest job can
		// sit anywhere in it; submittedAt is immutable after Submit, so
		// reading it without the job's lock is safe.
		for _, j := range ts.queue {
			if w := now.Sub(j.submittedAt); w > snap.OldestWait {
				snap.OldestWait = w
			}
		}
		out = append(out, snap)
	}
	return out
}
