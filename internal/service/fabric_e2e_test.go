package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"fdpsim/internal/obs"
	"fdpsim/internal/sim"
	"fdpsim/internal/store"
	"fdpsim/internal/sweep"
)

// TestFabricTraceTwoWorkers is the tracing acceptance e2e: two fleet
// workers share a store, one fingerprint is submitted to both under a
// single injected trace ID, and a ghost's expired lease forces a steal.
// The single trace must cover submit → queue → claim → run → store from
// both workers, export as a valid Chrome trace, and leave provenance
// ledger entries whose duration breakdown fits inside the wall clock —
// while the fleet still executes the simulation exactly once.
func TestFabricTraceTwoWorkers(t *testing.T) {
	dir := t.TempDir()
	stA, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(st *store.Store, name string) *Server {
		srv := New(Config{
			Workers: 2, QueueDepth: 16, Store: st,
			FleetWorker: name, LeaseTTL: time.Second,
		})
		t.Cleanup(func() {
			ctx, cancel := testContext(30 * time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck
		})
		return srv
	}
	srvA := mk(stA, "worker-a")
	srvB := mk(stB, "worker-b")

	cfg := fastConfig(20_000, 4242)
	fp, ok := sim.Fingerprint(cfg)
	if !ok {
		t.Fatal("config not fingerprintable")
	}
	// Injected lease steal: a ghost worker claimed the fingerprint and
	// died; whoever executes must wait out and steal this lease.
	if state, _, err := stA.Claim(fp, "ghost", 400*time.Millisecond); err != nil || state != store.ClaimAcquired {
		t.Fatalf("seeding ghost claim: %v, %v", state, err)
	}

	trace := obs.NewTraceID()
	jA, err := srvA.Submit(cfg, WithTraceContext(trace, ""))
	if err != nil {
		t.Fatal(err)
	}
	jB, err := srvB.Submit(cfg, WithTraceContext(trace, ""))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []*Job{jA, jB} {
		select {
		case <-j.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("job %s never finished", j.ID())
		}
		if st := j.Status(); st.State != StateDone || st.Result == nil {
			t.Fatalf("job %s = %s (%s)", st.ID, st.State, st.Error)
		}
	}

	// Exactly-once execution and bit-identical results despite tracing.
	if n := srvA.Executions() + srvB.Executions(); n != 1 {
		t.Fatalf("fleet executed %d times for one fingerprint, want 1", n)
	}
	ra, rb := jA.Status().Result, jB.Status().Result
	if ra.IPC != rb.IPC || ra.BPKI != rb.BPKI {
		t.Fatalf("results diverge across workers: %+v vs %+v", ra, rb)
	}

	// One trace ID spans both workers' span sets.
	spans := append(jA.Spans(), jB.Spans()...)
	actors := map[string]bool{}
	names := map[string]bool{}
	sawSteal := false
	for _, sp := range spans {
		if sp.TraceID != trace {
			t.Fatalf("span %s/%s carries trace %s, want %s", sp.Actor, sp.Name, sp.TraceID, trace)
		}
		actors[sp.Actor] = true
		names[sp.Name] = true
		for _, ev := range sp.Events {
			if ev.Name == "lease-steal" {
				sawSteal = true
			}
		}
	}
	if !actors["worker-a"] || !actors["worker-b"] {
		t.Fatalf("trace actors = %v, want both workers", actors)
	}
	for _, want := range []string{"job", "queue", "claim", "run", "store"} {
		if !names[want] {
			t.Fatalf("trace lacks a %q span (have %v)", want, names)
		}
	}
	if !sawSteal {
		t.Fatal("no lease-steal event on any claim span despite the ghost lease")
	}

	// The merged trace exports as a valid Chrome trace_event document
	// with one complete event per span.
	var buf bytes.Buffer
	if err := obs.WriteSpansChrome(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string            `json:"ph"`
			Name string            `json:"name"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	complete := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		complete++
		if ev.Args["trace_id"] != trace {
			t.Fatalf("complete event %q carries trace %q", ev.Name, ev.Args["trace_id"])
		}
	}
	if complete != len(spans) {
		t.Fatalf("Chrome export has %d complete events for %d spans", complete, len(spans))
	}

	// Provenance: the ledger records both the execution and the adoption
	// under the same trace, and each entry's duration breakdown fits
	// inside its wall clock.
	entries, err := stA.ReadProvenance(fp)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := map[string]int{}
	for _, p := range entries {
		outcomes[p.Outcome]++
		if p.TraceID != trace {
			t.Fatalf("ledger entry %s carries trace %q, want %s", p.Outcome, p.TraceID, trace)
		}
		if parts := p.QueueWaitMS + p.RunMS + p.StoreMS; parts > p.WallMS+1 {
			t.Fatalf("%s entry: queue %.1f + run %.1f + store %.1f ms exceeds wall %.1f ms",
				p.Outcome, p.QueueWaitMS, p.RunMS, p.StoreMS, p.WallMS)
		}
	}
	if outcomes[store.OutcomeExecuted] != 1 || outcomes[store.OutcomeAdopted] != 1 {
		t.Fatalf("ledger outcomes = %v, want one executed and one adopted", outcomes)
	}
	executed := entries[0]
	for _, p := range entries {
		if p.Outcome == store.OutcomeExecuted {
			executed = p
		}
	}
	if executed.LeaseGen < 1 || !executed.Stolen {
		t.Fatalf("executed entry gen=%d stolen=%v, want a stolen gen>=1 lease", executed.LeaseGen, executed.Stolen)
	}
	if executed.RunMS <= 0 {
		t.Fatalf("executed entry run time = %.3f ms, want > 0", executed.RunMS)
	}
}

// sseCapture reads a raw SSE stream for roughly d and returns what
// arrived — keepalive comment frames included, which scanSSE-style
// event parsers would hide.
func sseCapture(t *testing.T, client *http.Client, url string, d time.Duration) string {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	var mu sync.Mutex
	var buf bytes.Buffer
	go func() {
		chunk := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(chunk)
			mu.Lock()
			buf.Write(chunk[:n])
			mu.Unlock()
			if err != nil {
				return
			}
		}
	}()
	time.Sleep(d)
	resp.Body.Close()
	mu.Lock()
	defer mu.Unlock()
	return buf.String()
}

// TestSSEKeepalive pins the idle keepalive on both SSE surfaces: a
// queued job's event stream and a sweep's aggregate stream emit
// ": keepalive" comment frames while nothing real is flowing, so
// proxies with idle timeouts keep long-lived subscriptions open.
func TestSSEKeepalive(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Workers: 1, QueueDepth: 8,
		SSEKeepalive: 25 * time.Millisecond,
	})
	defer drainServer(t, srv)
	client := ts.Client()

	// A slow job pins the single worker; everything behind it is idle.
	if _, err := srv.Submit(slowConfig(900)); err != nil {
		t.Fatal(err)
	}
	queued, err := srv.Submit(fastConfig(20_000, 901))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := srv.SubmitSweep(sweep.Request{
		Workloads: []string{"seqstream"},
		Configs:   []sweep.ConfigAxis{{FDP: true}},
		Insts:     20_000,
	})
	if err != nil {
		t.Fatal(err)
	}

	jobStream := sseCapture(t, client, ts.URL+"/v1/jobs/"+queued.ID()+"/events", 200*time.Millisecond)
	if n := strings.Count(jobStream, ": keepalive"); n < 2 {
		t.Fatalf("queued job stream carried %d keepalives in 200ms at a 25ms interval:\n%q", n, jobStream)
	}

	sweepStream := sseCapture(t, client, ts.URL+"/v1/sweeps/"+sw.ID()+"/events", 200*time.Millisecond)
	if !strings.Contains(sweepStream, "event: summary") {
		t.Fatalf("sweep stream missing the opening summary:\n%q", sweepStream)
	}
	if n := strings.Count(sweepStream, ": keepalive"); n < 2 {
		t.Fatalf("sweep stream carried %d keepalives in 200ms at a 25ms interval:\n%q", n, sweepStream)
	}
}

// TestSSEKeepaliveDisabled pins the off switch: a negative
// Config.SSEKeepalive must emit no comment frames at all.
func TestSSEKeepaliveDisabled(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, SSEKeepalive: -1})
	defer drainServer(t, srv)

	if _, err := srv.Submit(slowConfig(910)); err != nil {
		t.Fatal(err)
	}
	queued, err := srv.Submit(fastConfig(20_000, 911))
	if err != nil {
		t.Fatal(err)
	}
	stream := sseCapture(t, ts.Client(), ts.URL+"/v1/jobs/"+queued.ID()+"/events", 150*time.Millisecond)
	if strings.Contains(stream, ": keepalive") {
		t.Fatalf("keepalives emitted with SSEKeepalive disabled:\n%q", stream)
	}
}

// TestRetryAfterSecondsBounds pins the jitter window as a pure-function
// property: every sample lands in [1, 3] and the spread is exercised.
func TestRetryAfterSecondsBounds(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := retryAfterSeconds()
		if v < 1 || v > 3 {
			t.Fatalf("retryAfterSeconds() = %d, want 1..3", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("1000 samples hit %d distinct values %v, want all of 1..3", len(seen), seen)
	}
}

// TestIdempotentRetryInFlight covers the idempotency edge the terminal-
// state test misses: a retry against a job that is still queued or
// running is answered 200 with the live job, not a duplicate.
func TestIdempotentRetryInFlight(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	defer drainServer(t, srv)
	client := ts.Client()

	cfg := slowConfig(920)
	var first JobStatus
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs",
		submitBody(t, cfg), &first); code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}

	raw, err := json.Marshal(JobRequest{Config: &cfg, IdempotencyKey: first.Fingerprint})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight idempotent retry = %d (%s), want 200", resp.StatusCode, body)
	}
	var retry JobStatus
	if err := json.Unmarshal(body, &retry); err != nil {
		t.Fatal(err)
	}
	if retry.ID != first.ID {
		t.Fatalf("retry minted a new job %s (original %s)", retry.ID, first.ID)
	}
	if retry.State.Terminal() {
		t.Fatalf("retry against an in-flight job reported terminal state %s", retry.State)
	}

	// The mismatch conflict holds for in-flight jobs too.
	other := slowConfig(921)
	raw, err = json.Marshal(JobRequest{Config: &other, IdempotencyKey: first.Fingerprint})
	if err != nil {
		t.Fatal(err)
	}
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(raw), nil); code != http.StatusConflict {
		t.Fatalf("mismatched in-flight key = %d, want 409", code)
	}
}
