package service

import (
	"runtime/debug"
	"strings"
	"time"

	"fdpsim/internal/obs"
	"fdpsim/internal/store"
)

// Fabric tracing: every job carries one trace ID through its whole life
// — submit → tenant queue → fair-queue dispatch → fleet claim → sim run
// → store write — and each stage lands as an obs.Span in two places: the
// job itself (served by GET /v1/jobs/{id}/spans) and the server's
// flight recorder (GET /debug/events). A sweep stamps its trace ID onto
// every job it expands, and claim files carry it across fleet workers,
// so a grid fanned out over several processes stays one coherent trace.

// TraceHeader is the HTTP header that propagates trace context on
// submissions: "<trace-id>" or "<trace-id>/<parent-span-id>". Responses
// to traced submissions echo the job's trace ID back in the same header.
const TraceHeader = "X-Fdp-Trace"

// parseTraceHeader splits a TraceHeader value into its parts. Empty
// values yield empty strings (the job then starts a fresh trace).
func parseTraceHeader(v string) (traceID, parentSpan string) {
	v = strings.TrimSpace(v)
	if v == "" {
		return "", ""
	}
	if i := strings.IndexByte(v, '/'); i >= 0 {
		return v[:i], v[i+1:]
	}
	return v, ""
}

// WithTraceContext joins the job to an existing fabric trace (from the
// X-Fdp-Trace submission header, or a sweep's expansion). Empty traceID
// means "start a fresh trace", which every job gets anyway.
func WithTraceContext(traceID, parentSpan string) SubmitOption {
	return func(o *submitOptions) { o.traceID, o.parentSpan = traceID, parentSpan }
}

// actor names this process in span lanes and provenance entries.
func (s *Server) actor() string {
	if s.cfg.FleetWorker != "" {
		return s.cfg.FleetWorker
	}
	return "local"
}

// addSpan completes one span of the job's trace: it lands on the job
// (for /spans) and in the server flight recorder (for /debug/events),
// both bounded, neither blocking.
func (s *Server) addSpan(j *Job, sp obs.Span) {
	sp.TraceID = j.traceID
	if sp.SpanID == "" {
		sp.SpanID = obs.NewSpanID()
	}
	sp.Actor = s.actor()
	sp.Lane = j.tenant
	if sp.Attrs == nil {
		sp.Attrs = map[string]string{}
	}
	sp.Attrs["job"] = j.id
	sp.Attrs["fingerprint"] = shortFP(j.fp)
	j.mu.Lock()
	j.spans = append(j.spans, sp)
	j.mu.Unlock()
	s.m.spansRecorded.Add(1)
	s.spans.RecordSpan(sp)
}

// Spans returns the job's completed fabric spans so far (all of them
// once the job is terminal).
func (j *Job) Spans() []obs.Span {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]obs.Span, len(j.spans))
	copy(out, j.spans)
	return out
}

// TraceID returns the job's fabric trace identifier.
func (j *Job) TraceID() string { return j.traceID }

// buildVersion reports the module version and Go toolchain baked into
// this binary, for build_info metrics and provenance entries.
func buildVersion() (version, goVersion string) {
	version, goVersion = "devel", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		goVersion = bi.GoVersion
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" && len(kv.Value) >= 12 {
				version = kv.Value[:12]
			}
		}
	}
	return version, goVersion
}

// writeProvenance appends the job's ledger line — best-effort, like
// storeResult: observability never fails a job.
func (s *Server) writeProvenance(j *Job, outcome, errMsg string, leaseGen int, stolen bool,
	queueWait, run, storeDur time.Duration) {
	if s.cfg.Store == nil {
		return
	}
	version, goVersion := buildVersion()
	j.mu.Lock()
	submitted, finished := j.submittedAt, j.finishedAt
	j.mu.Unlock()
	wall := finished.Sub(submitted)
	p := store.Provenance{
		Fingerprint: j.fp,
		TraceID:     j.traceID,
		JobID:       j.id,
		SweepID:     j.sweepID,
		Tenant:      j.tenant,
		Worker:      s.actor(),
		LeaseGen:    leaseGen,
		Stolen:      stolen,
		Outcome:     outcome,
		Error:       errMsg,
		GoVersion:   goVersion,
		Build:       version,
		Submitted:   submitted,
		Finished:    finished,
		QueueWaitMS: float64(queueWait.Microseconds()) / 1e3,
		RunMS:       float64(run.Microseconds()) / 1e3,
		StoreMS:     float64(storeDur.Microseconds()) / 1e3,
		WallMS:      float64(wall.Microseconds()) / 1e3,
	}
	if err := s.cfg.Store.AppendProvenance(p); err != nil {
		s.log.Warn("provenance append failed", "job", j.id, "error", err)
	}
}
