package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"fdpsim/internal/sim"
	"fdpsim/internal/workload/spec"
)

// serviceSpec is a small single-lane WorkloadSpec that finishes fast
// under fastConfig's sizing.
func serviceSpec(name string) *spec.Spec {
	return &spec.Spec{
		Name: name,
		Phases: []spec.Phase{
			{Ops: 6000, Clients: []spec.Client{
				{Name: "scan", Pattern: spec.Pattern{Kind: spec.KindStride, FootprintKB: 2048, Gap: 1}},
				{Name: "serve", Weight: 2, Pattern: spec.Pattern{Kind: spec.KindChase, FootprintKB: 512}},
			}},
		},
	}
}

func TestSubmitSpecJob(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	sp := serviceSpec("svc.spec")
	cfg := fastConfig(60_000, 7)

	job, err := srv.Submit(cfg, WithWorkloadSpec(sp))
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	st := job.Status()
	if st.State != StateDone || st.Result == nil {
		t.Fatalf("spec job finished as %+v", st)
	}
	if st.Workload != "svc.spec" || st.Result.Workload != "svc.spec" {
		t.Fatalf("spec job workload = %q / %q, want the spec name", st.Workload, st.Result.Workload)
	}

	// An identical resubmission is a cache hit with the same result.
	again, err := srv.Submit(cfg, WithWorkloadSpec(sp))
	if err != nil {
		t.Fatal(err)
	}
	<-again.Done()
	st2 := again.Status()
	if !st2.CacheHit || st2.Fingerprint != st.Fingerprint {
		t.Fatalf("resubmission: cache_hit=%v fp=%s vs %s", st2.CacheHit, st2.Fingerprint, st.Fingerprint)
	}
	if st2.Result.Counters != st.Result.Counters {
		t.Fatal("cached spec result differs")
	}

	// A named job for the same workload string must not alias the spec
	// job's cache entry.
	named := cfg
	named.Workload = "seqstream"
	nj, err := srv.Submit(named)
	if err != nil {
		t.Fatal(err)
	}
	<-nj.Done()
	if nj.Status().Fingerprint == st.Fingerprint {
		t.Fatal("named and spec fingerprints alias")
	}
}

func TestSubmitSpecJobRejections(t *testing.T) {
	srv, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	cfg := fastConfig(10_000, 1)

	if _, err := srv.Submit(cfg, WithWorkloadSpec(nil)); !errors.Is(err, sim.ErrInvalidConfig) {
		t.Fatalf("nil spec: %v", err)
	}
	if _, err := srv.Submit(cfg, WithWorkloadSpec(&spec.Spec{Name: "x"})); !errors.Is(err, spec.ErrInvalid) {
		t.Fatalf("invalid spec: %v", err)
	}
	multi := serviceSpec("svc.multi")
	multi.Phases[0].Clients[1].Lane = 1
	if _, err := srv.Submit(cfg, WithWorkloadSpec(multi)); !errors.Is(err, sim.ErrInvalidConfig) {
		t.Fatalf("multi-lane spec: %v", err)
	}
}

func TestHTTPSpecJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	cfg := fastConfig(60_000, 3)
	body := func() *bytes.Reader {
		raw, err := json.Marshal(JobRequest{Config: &cfg, Spec: serviceSpec("http.spec")})
		if err != nil {
			t.Fatal(err)
		}
		return bytes.NewReader(raw)
	}

	var st JobStatus
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", body(), &st); code != http.StatusAccepted {
		t.Fatalf("spec submit = %d, want 202", code)
	}
	final := pollUntil(t, ts.Client(), ts.URL+"/v1/jobs/"+st.ID, func(s JobStatus) bool {
		return s.State.Terminal()
	})
	if final.State != StateDone || final.Workload != "http.spec" {
		t.Fatalf("spec job over HTTP: %+v", final)
	}

	// Identical spec body → 200 cache hit.
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", body(), &st); code != http.StatusOK {
		t.Fatalf("spec resubmit = %d, want 200 (cache hit)", code)
	}

	// An invalid spec is bad usage: 400, not 500.
	raw, _ := json.Marshal(JobRequest{Config: &cfg, Spec: &spec.Spec{Name: "Bad Name"}})
	var apiErr apiError
	if code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(raw), &apiErr); code != http.StatusBadRequest {
		t.Fatalf("invalid spec submit = %d, want 400", code)
	}
	if apiErr.Error == "" {
		t.Fatal("400 body carries no error message")
	}
}
