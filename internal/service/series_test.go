package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"fdpsim/internal/series"
	"fdpsim/internal/store"
	"fdpsim/internal/sweep"
)

// TestSeriesEndpoint covers the per-job series artifact: a recorded job
// serves the full catalog with one value per interval, metric selection
// and downsampling work, CSV renders, and the error surface (unknown
// metric, bad step, unknown format, unrecorded job) is precise.
func TestSeriesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	cfg := fastConfig(200_000, 7)
	var st JobStatus
	code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs",
		traceBody(t, JobRequest{Config: &cfg, Series: true}), &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	jobURL := ts.URL + "/v1/jobs/" + st.ID

	final := pollUntil(t, ts.Client(), jobURL, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("job finished %s (%s)", final.State, final.Error)
	}
	if !final.Series {
		t.Fatal("terminal status does not advertise the series artifact")
	}

	code, raw, _ := getBody(t, jobURL+"/series")
	if code != http.StatusOK {
		t.Fatalf("GET series = %d (%s)", code, raw)
	}
	var resp struct {
		Meta series.Meta `json:"meta"`
		Step int         `json:"step"`
		Metrics []struct {
			Name    string          `json:"name"`
			Values  []float64       `json:"values"`
			Buckets []series.Bucket `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("series response is not JSON: %v", err)
	}
	if final.Result == nil || uint64(resp.Meta.Intervals) != final.Result.Intervals {
		t.Fatalf("series spans %d intervals, result closed %d", resp.Meta.Intervals, final.Result.Intervals)
	}
	if len(resp.Metrics) != series.NumMetrics {
		t.Fatalf("series has %d metrics, catalog has %d", len(resp.Metrics), series.NumMetrics)
	}
	for _, m := range resp.Metrics {
		if len(m.Values) != resp.Meta.Intervals {
			t.Fatalf("metric %s has %d values over %d intervals", m.Name, len(m.Values), resp.Meta.Intervals)
		}
	}

	// Metric selection + downsampling.
	code, raw, _ = getBody(t, jobURL+"/series?metrics=ipc,dcc_level&step=8")
	if code != http.StatusOK {
		t.Fatalf("GET selected series = %d (%s)", code, raw)
	}
	resp.Metrics = nil
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Metrics) != 2 || resp.Metrics[0].Name != "ipc" || resp.Metrics[1].Name != "dcc_level" {
		t.Fatalf("metric selection returned %+v", resp.Metrics)
	}
	if resp.Step != 8 || len(resp.Metrics[0].Buckets) == 0 || len(resp.Metrics[0].Values) != 0 {
		t.Fatalf("step=8 did not downsample (step=%d buckets=%d values=%d)",
			resp.Step, len(resp.Metrics[0].Buckets), len(resp.Metrics[0].Values))
	}

	// CSV: header row names the selected columns; one row per interval.
	code, raw, hdr := getBody(t, jobURL+"/series?metrics=ipc,bpki&format=csv")
	if code != http.StatusOK {
		t.Fatalf("GET csv series = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("csv Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if lines[0] != "interval,ipc,bpki" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines)-1 != resp.Meta.Intervals {
		t.Fatalf("csv has %d rows over %d intervals", len(lines)-1, resp.Meta.Intervals)
	}

	// Windowed CSV carries min/mean/max/p95 columns.
	_, raw, _ = getBody(t, jobURL+"/series?metrics=ipc&step=16&format=csv")
	head := strings.SplitN(string(raw), "\n", 2)[0]
	if head != "start,n,ipc_min,ipc_mean,ipc_max,ipc_p95" {
		t.Fatalf("windowed csv header = %q", head)
	}

	for _, bad := range []string{"?metrics=nope", "?step=0", "?step=x", "?format=parquet"} {
		if code, _, _ := getBody(t, jobURL+"/series"+bad); code != http.StatusBadRequest {
			t.Fatalf("GET series%s = %d, want 400", bad, code)
		}
	}

	// A job submitted without series recording has no artifact.
	code = doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs",
		traceBody(t, JobRequest{Config: &cfg}), &st)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("bare submit = %d", code)
	}
	bareURL := ts.URL + "/v1/jobs/" + st.ID
	pollUntil(t, ts.Client(), bareURL, func(s JobStatus) bool { return s.State.Terminal() })
	if code, _, _ := getBody(t, bareURL+"/series"); code != http.StatusNotFound {
		t.Fatalf("series of unrecorded job = %d, want 404", code)
	}
}

// TestSeriesCacheHitAndDiff drives the acceptance scenario: with a store,
// an identical resubmission is a cache hit served from the sidecar, and a
// self-diff of the two fingerprints reports zero residual on every
// catalog metric with a pass verdict. The diff counter on /metrics moves.
func TestSeriesCacheHitAndDiff(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1, Store: st})

	cfg := fastConfig(150_000, 11)
	var first JobStatus
	doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs",
		traceBody(t, JobRequest{Config: &cfg, Series: true}), &first)
	fin := pollUntil(t, ts.Client(), ts.URL+"/v1/jobs/"+first.ID,
		func(s JobStatus) bool { return s.State.Terminal() })
	if fin.State != StateDone {
		t.Fatalf("first run finished %s (%s)", fin.State, fin.Error)
	}
	_, want, _ := getBody(t, ts.URL+"/v1/jobs/"+first.ID+"/series")

	var second JobStatus
	code := doJSON(t, ts.Client(), http.MethodPost, ts.URL+"/v1/jobs",
		traceBody(t, JobRequest{Config: &cfg, Series: true}), &second)
	if code != http.StatusOK {
		t.Fatalf("identical resubmission = %d, want 200 (cache hit)", code)
	}
	if !second.CacheHit || !second.Series {
		t.Fatalf("cache hit did not carry the series (cache_hit=%v series=%v)", second.CacheHit, second.Series)
	}
	code, got, _ := getBody(t, ts.URL+"/v1/jobs/"+second.ID+"/series")
	if code != http.StatusOK {
		t.Fatalf("cache-hit series = %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cache-hit series differs from the original run's series")
	}

	// Self-diff: identical fingerprints must have zero residual everywhere.
	code, raw, _ := getBody(t, ts.URL+"/v1/diff?a="+fin.Fingerprint+"&b="+second.Fingerprint)
	if code != http.StatusOK {
		t.Fatalf("GET diff = %d (%s)", code, raw)
	}
	var rep series.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != series.VerdictPass || len(rep.Failed) != 0 {
		t.Fatalf("self-diff verdict = %s (failed %v)", rep.Verdict, rep.Failed)
	}
	if len(rep.Metrics) != series.NumMetrics {
		t.Fatalf("diff covers %d metrics, catalog has %d", len(rep.Metrics), series.NumMetrics)
	}
	for _, m := range rep.Metrics {
		if m.MaxAbs != 0 || m.RMS != 0 || m.FirstDivergence != 0 {
			t.Fatalf("self-diff metric %s has residual (max=%g rms=%g first=%d)",
				m.Metric, m.MaxAbs, m.RMS, m.FirstDivergence)
		}
	}

	if code, _, _ := getBody(t, ts.URL + "/v1/diff?a=" + fin.Fingerprint); code != http.StatusBadRequest {
		t.Fatalf("diff without b = %d, want 400", code)
	}
	if code, _, _ := getBody(t, ts.URL + "/v1/diff?a=" + fin.Fingerprint + "&b=" + strings.Repeat("0", 64)); code != http.StatusNotFound {
		t.Fatalf("diff of unknown fingerprint = %d, want 404", code)
	}

	// The telemetry families moved: one pass verdict, two error counts,
	// and a nonzero points/bytes total from the recorded run.
	_, metrics, _ := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`fdpserved_diff_requests_total{verdict="pass"} 1`,
		`fdpserved_diff_requests_total{verdict="error"} 2`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
	for _, family := range []string{"sim_series_points_total", "sim_series_bytes_total"} {
		if strings.Contains(string(metrics), family+" 0\n") || !strings.Contains(string(metrics), family) {
			t.Fatalf("/metrics %s absent or zero after a recorded run:\n%s", family, metrics)
		}
	}
}

// TestSweepSeries checks the sweep-level merged series: every recorded
// cell contributes, and the merged document spans the catalog at the
// shortest common interval count.
func TestSweepSeries(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 8})
	client := ts.Client()

	req := sweep.Request{
		Name:      "series",
		Workloads: []string{"seqstream"},
		Configs: []sweep.ConfigAxis{
			{Prefetcher: "stream", FDP: true},
			{Prefetcher: "stream", Level: 3},
		},
		Seeds:     []uint64{1, 2},
		Insts:     2_000_000,
		TInterval: 64,
		Series:    true,
	}
	var sws SweepStatus
	if code := doJSON(t, client, http.MethodPost, ts.URL+"/v1/sweeps", sweepBody(t, req), &sws); code != http.StatusAccepted {
		t.Fatalf("sweep submit = %d", code)
	}
	pollSweep(t, client, ts.URL+"/v1/sweeps/"+sws.ID, func(s SweepStatus) bool {
		return s.State != "running"
	})

	code, raw, _ := getBody(t, ts.URL+"/v1/sweeps/"+sws.ID+"/series?metrics=ipc,accuracy")
	if code != http.StatusOK {
		t.Fatalf("GET sweep series = %d (%s)", code, raw)
	}
	var resp struct {
		Meta    series.Meta `json:"meta"`
		Metrics []struct {
			Name   string    `json:"name"`
			Values []float64 `json:"values"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Meta.Controller != "merged" || resp.Meta.Intervals == 0 {
		t.Fatalf("merged meta = %+v", resp.Meta)
	}
	if len(resp.Metrics) != 2 || len(resp.Metrics[0].Values) != resp.Meta.Intervals {
		t.Fatalf("merged series shape: %d metrics, %d values over %d intervals",
			len(resp.Metrics), len(resp.Metrics[0].Values), resp.Meta.Intervals)
	}

	// A sweep submitted without series recording has nothing to merge.
	req.Series = false
	req.Name = "bare"
	var bare SweepStatus
	doJSON(t, client, http.MethodPost, ts.URL+"/v1/sweeps", sweepBody(t, req), &bare)
	pollSweep(t, client, ts.URL+"/v1/sweeps/"+bare.ID, func(s SweepStatus) bool {
		return s.State != "running"
	})
	if code, _, _ := getBody(t, ts.URL+"/v1/sweeps/"+bare.ID+"/series"); code != http.StatusNotFound {
		t.Fatalf("series of unrecorded sweep = %d, want 404", code)
	}
}
