package service

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is the service's instrumentation: plain atomics and one
// mutex-guarded histogram, rendered in Prometheus text exposition format
// by render. No client library — the format is three lines per series.
type metrics struct {
	submitted  atomic.Uint64 // accepted submissions (including cache hits)
	rejected   atomic.Uint64 // 429 backpressure rejections
	completed  atomic.Uint64 // jobs reaching state done (incl. cache hits)
	failed     atomic.Uint64
	cancelled  atomic.Uint64
	cacheHits  atomic.Uint64
	cacheMisses atomic.Uint64

	running atomic.Int64 // gauge: simulations executing right now

	simCycles atomic.Uint64 // simulated cycles across completed runs
	simNanos  atomic.Uint64 // wall-clock nanoseconds across completed runs

	queueWait histogram
}

func (m *metrics) init() {
	// Sub-millisecond to tens of seconds: queue waits span an idle pool
	// (ns) to a saturated one (many run-lengths).
	m.queueWait.bounds = []float64{0.001, 0.01, 0.1, 1, 10}
	m.queueWait.counts = make([]uint64, len(m.queueWait.bounds)+1)
}

// histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// bucket le="x" counts observations ≤ x; the last implicit bucket is +Inf).
type histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	sum    float64
	count  uint64
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.count++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// snapshot returns cumulative bucket counts plus sum and count.
func (h *histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return cum, h.sum, h.count
}

// render writes every series. queued is sampled by the caller (it is the
// live queue length, owned by the Server).
func (m *metrics) render(w io.Writer, queued int, uptime time.Duration) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP fdpserved_%s %s\n# TYPE fdpserved_%s counter\nfdpserved_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP fdpserved_%s %s\n# TYPE fdpserved_%s gauge\nfdpserved_%s %g\n", name, help, name, name, v)
	}

	counter("jobs_submitted_total", "Accepted job submissions (including cache hits).", m.submitted.Load())
	counter("jobs_rejected_total", "Submissions rejected with 429 (queue full).", m.rejected.Load())
	counter("jobs_completed_total", "Jobs that reached state done (including cache hits).", m.completed.Load())
	counter("jobs_failed_total", "Jobs that reached state failed.", m.failed.Load())
	counter("jobs_cancelled_total", "Jobs cancelled while queued or running.", m.cancelled.Load())
	gauge("jobs_queued", "Jobs waiting in the FIFO queue.", float64(queued))
	gauge("jobs_running", "Simulations executing right now.", float64(m.running.Load()))

	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	counter("cache_hits_total", "Submissions answered from the result cache.", hits)
	counter("cache_misses_total", "Submissions that required a simulation.", misses)
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	gauge("cache_hit_ratio", "cache_hits_total / (hits + misses).", ratio)

	cycles, nanos := m.simCycles.Load(), m.simNanos.Load()
	counter("sim_cycles_total", "Simulated cycles across finished runs.", cycles)
	cps := 0.0
	if nanos > 0 {
		cps = float64(cycles) / (float64(nanos) / 1e9)
	}
	gauge("sim_cycles_per_second", "Simulation throughput: simulated cycles per wall-clock second.", cps)
	gauge("uptime_seconds", "Seconds since the server started.", uptime.Seconds())

	cum, sum, count := m.queueWait.snapshot()
	name := "queue_wait_seconds"
	fmt.Fprintf(w, "# HELP fdpserved_%s Time jobs spent waiting for a worker.\n# TYPE fdpserved_%s histogram\n", name, name)
	for i, b := range m.queueWait.bounds {
		fmt.Fprintf(w, "fdpserved_%s_bucket{le=\"%g\"} %d\n", name, b, cum[i])
	}
	fmt.Fprintf(w, "fdpserved_%s_bucket{le=\"+Inf\"} %d\n", name, cum[len(cum)-1])
	fmt.Fprintf(w, "fdpserved_%s_sum %g\n", name, sum)
	fmt.Fprintf(w, "fdpserved_%s_count %d\n", name, count)
}
