package service

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fdpsim/internal/cache"
	"fdpsim/internal/stats"
)

// metrics is the service's instrumentation: plain atomics and
// mutex-guarded histograms, rendered in Prometheus text exposition format
// by render. No client library — the format is three lines per series.
type metrics struct {
	submitted   atomic.Uint64 // accepted submissions (including cache hits)
	rejected    atomic.Uint64 // 429 backpressure rejections
	completed   atomic.Uint64 // jobs reaching state done (incl. cache hits)
	failed      atomic.Uint64
	cancelled   atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64

	running atomic.Int64 // gauge: simulations executing right now

	executions atomic.Uint64 // simulations actually executed by this process

	// Fleet coordination (multi-process shared store).
	fleetAdopted   atomic.Uint64 // jobs finished by adopting another worker's stored result
	claimsAcquired atomic.Uint64 // fingerprint claims won (fresh or stolen)
	claimsStolen   atomic.Uint64 // claims won by stealing an expired lease
	claimsWaited   atomic.Uint64 // held-claim observations (backoff waits)
	leaseLost      atomic.Uint64 // mid-run lease renewals that found the lease gone

	// Fabric tracing.
	spansRecorded atomic.Uint64 // fabric spans recorded (job + flight recorder)

	// Sweep fabric.
	sweepsSubmitted atomic.Uint64 // sweeps admitted via POST /v1/sweeps
	sweepCells      atomic.Uint64 // grid cells expanded across admitted sweeps

	simCycles atomic.Uint64 // simulated cycles across completed runs
	simNanos  atomic.Uint64 // wall-clock nanoseconds across completed runs

	intervals atomic.Uint64 // FDP sampling intervals closed across all runs

	// insertions counts interval boundaries per (controller, insertion
	// position): which policy chose which position how often. Keyed by
	// the job's controller label ("fdp" when the config leaves the
	// default); map writes are rare (one per controller name ever seen),
	// so a mutex around a plain array is cheaper than atomic maps.
	insertMu   sync.Mutex
	insertions map[string]*[cache.NumInsertPos]uint64

	traces         atomic.Uint64 // jobs that collected a decision trace
	traceEvents    atomic.Uint64 // decision events captured into job traces
	traceTruncated atomic.Uint64 // decision events dropped by per-job trace limits

	// Interval-timeseries recording and the run-diff endpoint.
	seriesPoints atomic.Uint64 // metric points (intervals × catalog width) recorded into sidecars
	seriesBytes  atomic.Uint64 // encoded sidecar bytes produced
	// diffVerdicts counts GET /v1/diff requests by report verdict
	// ("pass"/"fail", plus "error" for requests that never produced a
	// report). Writes are per-request, so a mutex over a small map is fine.
	diffMu       sync.Mutex
	diffVerdicts map[string]uint64

	// Cycle-accounting and bus-occupancy aggregates over attribution jobs
	// (zero-sample intervals from non-attribution jobs contribute nothing).
	// Indexed by stallBucketNames / busKindNames order.
	stallCycles [7]atomic.Uint64
	busCycles   [3]atomic.Uint64

	queueWait histogram
	httpDur   histogram

	// tenantWait buckets queue wait per tenant (the SLO signal the fair
	// scheduler is judged by). Tenants appear on first observation; the
	// bucket ladder is queueWait's.
	tenantMu    sync.Mutex
	tenantWait  map[string]*histogram
	waitBuckets []float64
}

// observeTenantWait records one job's queue wait under its tenant.
func (m *metrics) observeTenantWait(tenant string, seconds float64) {
	m.tenantMu.Lock()
	h, ok := m.tenantWait[tenant]
	if !ok {
		h = &histogram{}
		h.init(m.waitBuckets)
		m.tenantWait[tenant] = h
	}
	m.tenantMu.Unlock()
	h.observe(seconds)
}

// tenantWaits snapshots the per-tenant histograms in sorted-name order
// for deterministic scrape output.
func (m *metrics) tenantWaits() (names []string, hists []*histogram) {
	m.tenantMu.Lock()
	defer m.tenantMu.Unlock()
	for name := range m.tenantWait {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		hists = append(hists, m.tenantWait[name])
	}
	return names, hists
}

// stallBucketNames labels m.stallCycles in stats.CycleBuckets field order.
var stallBucketNames = [7]string{
	"retire_full", "retire_partial", "stall_load_miss",
	"stall_rob_full", "stall_dram_bp", "stall_ifetch", "stall_frontend",
}

// busKindNames labels m.busCycles (demand/prefetch/writeback).
var busKindNames = [3]string{"demand", "prefetch", "writeback"}

// defaultQueueWaitBuckets spans an idle pool (sub-millisecond) to a
// saturated one (many run-lengths).
var defaultQueueWaitBuckets = []float64{0.001, 0.01, 0.1, 1, 10}

// defaultHTTPBuckets spans in-memory handlers (tens of microseconds) to a
// long-polled SSE attach.
var defaultHTTPBuckets = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

func (m *metrics) init(queueWaitBuckets []float64) {
	if len(queueWaitBuckets) == 0 {
		queueWaitBuckets = defaultQueueWaitBuckets
	}
	m.queueWait.init(queueWaitBuckets)
	m.httpDur.init(defaultHTTPBuckets)
	m.tenantWait = make(map[string]*histogram)
	m.waitBuckets = queueWaitBuckets
	// Pre-seed the default controller so the family is present (all-zero)
	// on an idle server, matching the old unlabeled series' behavior.
	m.insertions = map[string]*[cache.NumInsertPos]uint64{defaultController: new([cache.NumInsertPos]uint64)}
	// Pre-seed the diff verdicts so the family renders (all-zero) before
	// the first GET /v1/diff.
	m.diffVerdicts = map[string]uint64{"pass": 0, "fail": 0}
}

// countDiff records one GET /v1/diff request under its report verdict.
func (m *metrics) countDiff(verdict string) {
	m.diffMu.Lock()
	m.diffVerdicts[verdict]++
	m.diffMu.Unlock()
}

// defaultController labels series from jobs that leave Config.Controller
// empty: the paper's Table 2 policy is the default decision policy.
const defaultController = "fdp"

// observeSnapshot feeds the per-interval series from a run's progress
// stream. Final snapshots close no interval and are skipped.
func (m *metrics) observeSnapshot(snap intervalSample) {
	if snap.final {
		return
	}
	m.intervals.Add(1)
	if p := int(snap.insertion); p >= 0 && p < int(cache.NumInsertPos) {
		ctl := snap.controller
		if ctl == "" {
			ctl = defaultController
		}
		m.insertMu.Lock()
		counts, ok := m.insertions[ctl]
		if !ok {
			counts = new([cache.NumInsertPos]uint64)
			m.insertions[ctl] = counts
		}
		counts[p]++
		m.insertMu.Unlock()
	}
	if c := snap.sample.Cycles; c.Total() > 0 {
		m.stallCycles[0].Add(c.RetireFull)
		m.stallCycles[1].Add(c.RetirePartial)
		m.stallCycles[2].Add(c.StallLoadMiss)
		m.stallCycles[3].Add(c.StallROBFull)
		m.stallCycles[4].Add(c.StallDRAMBP)
		m.stallCycles[5].Add(c.StallIFetch)
		m.stallCycles[6].Add(c.StallFrontend)
		m.busCycles[0].Add(snap.sample.BusDemandCycles)
		m.busCycles[1].Add(snap.sample.BusPrefetchCycles)
		m.busCycles[2].Add(snap.sample.BusWritebackCycles)
	}
}

// intervalSample is the slice of a sim.Snapshot the metrics need; a named
// struct keeps observeSnapshot testable without building full snapshots.
type intervalSample struct {
	final      bool
	controller string // decision-policy label; empty means defaultController
	insertion  cache.InsertPos
	sample     stats.IntervalSample
}

// histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// bucket le="x" counts observations ≤ x; the last implicit bucket is +Inf).
type histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	sum    float64
	count  uint64
}

// init registers the bucket bounds. Prometheus requires histogram buckets
// in increasing order with no duplicates, so misconfigured bounds are
// sorted and deduplicated here — at registration — rather than emitted
// broken on every scrape. NaN and +Inf bounds are dropped (+Inf is the
// implicit final bucket).
func (h *histogram) init(bounds []float64) {
	clean := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsNaN(b) && !math.IsInf(b, +1) {
			clean = append(clean, b)
		}
	}
	sort.Float64s(clean)
	dedup := clean[:0]
	for i, b := range clean {
		if i == 0 || b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	h.bounds = dedup
	h.counts = make([]uint64, len(h.bounds)+1)
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.count++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// snapshot returns cumulative bucket counts plus sum and count.
func (h *histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return cum, h.sum, h.count
}

// fairnessIndex computes Jain's fairness index over each tenant's
// service-per-weight ratio (popped/weight): (Σx)² / (n·Σx²). 1.0 means
// every tenant received service exactly proportional to its weight;
// 1/n means one tenant got everything. Tenants that have never been
// served and have nothing queued are skipped (an idle tenant is not
// evidence of unfairness), and fewer than two active tenants report 1.
func fairnessIndex(tenants []TenantSnapshot) float64 {
	var xs []float64
	for _, t := range tenants {
		if t.Popped == 0 && t.Queued == 0 && t.Running == 0 {
			continue
		}
		w := float64(t.Weight)
		if w <= 0 {
			w = 1
		}
		xs = append(xs, float64(t.Popped)/w)
	}
	if len(xs) < 2 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// renderHistogram writes one histogram family.
func renderHistogram(w io.Writer, h *histogram, name, help string) {
	cum, sum, count := h.snapshot()
	fmt.Fprintf(w, "# HELP fdpserved_%s %s\n# TYPE fdpserved_%s histogram\n", name, help, name)
	for i, b := range h.bounds {
		fmt.Fprintf(w, "fdpserved_%s_bucket{le=\"%g\"} %d\n", name, b, cum[i])
	}
	fmt.Fprintf(w, "fdpserved_%s_bucket{le=\"+Inf\"} %d\n", name, cum[len(cum)-1])
	fmt.Fprintf(w, "fdpserved_%s_sum %g\n", name, sum)
	fmt.Fprintf(w, "fdpserved_%s_count %d\n", name, count)
}

// render writes every series. queued is sampled by the caller (it is the
// live queue length, owned by the Server); dccLevels is the distribution
// of Dynamic Configuration Counter levels across currently running jobs,
// keyed by controller label (inner index = level 1..5; index 0 unused),
// likewise sampled by the caller, as are the flight recorder's
// held/evicted span counts.
func (m *metrics) render(w io.Writer, queued int, uptime time.Duration, dccLevels map[string][6]int, tenants []TenantSnapshot, sweepsActive int, spansHeld int, spansDropped uint64) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP fdpserved_%s %s\n# TYPE fdpserved_%s counter\nfdpserved_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP fdpserved_%s %s\n# TYPE fdpserved_%s gauge\nfdpserved_%s %g\n", name, help, name, name, v)
	}

	counter("jobs_submitted_total", "Accepted job submissions (including cache hits).", m.submitted.Load())
	counter("jobs_rejected_total", "Submissions rejected with 429 (queue full).", m.rejected.Load())
	counter("jobs_completed_total", "Jobs that reached state done (including cache hits).", m.completed.Load())
	counter("jobs_failed_total", "Jobs that reached state failed.", m.failed.Load())
	counter("jobs_cancelled_total", "Jobs cancelled while queued or running.", m.cancelled.Load())
	gauge("jobs_queued", "Jobs waiting in the FIFO queue.", float64(queued))
	gauge("jobs_running", "Simulations executing right now.", float64(m.running.Load()))

	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	counter("cache_hits_total", "Submissions answered from the result cache.", hits)
	counter("cache_misses_total", "Submissions that required a simulation.", misses)
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	gauge("cache_hit_ratio", "cache_hits_total / (hits + misses).", ratio)

	cycles, nanos := m.simCycles.Load(), m.simNanos.Load()
	counter("sim_cycles_total", "Simulated cycles across finished runs.", cycles)
	cps := 0.0
	if nanos > 0 {
		cps = float64(cycles) / (float64(nanos) / 1e9)
	}
	gauge("sim_cycles_per_second", "Simulation throughput: simulated cycles per wall-clock second.", cps)
	gauge("uptime_seconds", "Seconds since the server started.", uptime.Seconds())
	// process_start_time_seconds is a Prometheus convention name
	// (clients compute process restarts from it), so unlike everything
	// else here it is deliberately not fdpserved_-prefixed.
	fmt.Fprintf(w, "# HELP process_start_time_seconds Unix time the server started, for rate() alignment.\n")
	fmt.Fprintf(w, "# TYPE process_start_time_seconds gauge\n")
	fmt.Fprintf(w, "process_start_time_seconds %g\n", float64(time.Now().Add(-uptime).Unix()))

	version, goVersion := buildVersion()
	fmt.Fprintf(w, "# HELP fdpserved_build_info Build metadata; the value is always 1.\n")
	fmt.Fprintf(w, "# TYPE fdpserved_build_info gauge\n")
	fmt.Fprintf(w, "fdpserved_build_info{version=%q,go_version=%q} 1\n", version, goVersion)

	intervals := m.intervals.Load()
	counter("sim_intervals_total", "FDP sampling intervals closed across all runs.", intervals)
	ips := 0.0
	if sec := uptime.Seconds(); sec > 0 {
		ips = float64(intervals) / sec
	}
	gauge("sim_intervals_per_second", "FDP feedback rate: sampling intervals closed per wall-clock second of uptime.", ips)

	fmt.Fprintf(w, "# HELP fdpserved_insertion_policy_total Interval boundaries by decision policy and the insertion position it chose for the next interval's prefetch fills.\n")
	fmt.Fprintf(w, "# TYPE fdpserved_insertion_policy_total counter\n")
	m.insertMu.Lock()
	ctls := make([]string, 0, len(m.insertions))
	byCtl := make(map[string][cache.NumInsertPos]uint64, len(m.insertions))
	for ctl, counts := range m.insertions {
		ctls = append(ctls, ctl)
		byCtl[ctl] = *counts
	}
	m.insertMu.Unlock()
	sort.Strings(ctls)
	for _, ctl := range ctls {
		counts := byCtl[ctl]
		for p := range counts {
			fmt.Fprintf(w, "fdpserved_insertion_policy_total{controller=%q,position=%q} %d\n",
				ctl, cache.InsertPos(p).String(), counts[p])
		}
	}

	fmt.Fprintf(w, "# HELP fdpserved_dcc_level_jobs Running jobs by decision policy and their current Dynamic Configuration Counter level (aggressiveness 1..5).\n")
	fmt.Fprintf(w, "# TYPE fdpserved_dcc_level_jobs gauge\n")
	if len(dccLevels) == 0 {
		// An idle server still renders the family: all-zero default rows.
		dccLevels = map[string][6]int{defaultController: {}}
	}
	dccCtls := make([]string, 0, len(dccLevels))
	for ctl := range dccLevels {
		dccCtls = append(dccCtls, ctl)
	}
	sort.Strings(dccCtls)
	for _, ctl := range dccCtls {
		dist := dccLevels[ctl]
		for level := 1; level <= 5; level++ {
			fmt.Fprintf(w, "fdpserved_dcc_level_jobs{controller=%q,level=\"%d\"} %d\n", ctl, level, dist[level])
		}
	}

	counter("executions_total", "Simulations actually executed by this process (cache hits and fleet-adopted results excluded).", m.executions.Load())
	counter("fleet_results_adopted_total", "Jobs finished by adopting a result another fleet worker stored.", m.fleetAdopted.Load())
	counter("fleet_claims_acquired_total", "Fingerprint claims this worker won (fresh or stolen).", m.claimsAcquired.Load())
	counter("fleet_claims_stolen_total", "Claims won by stealing an expired lease from a dead worker.", m.claimsStolen.Load())
	counter("fleet_claim_waits_total", "Backoff waits on a claim held live by another worker.", m.claimsWaited.Load())
	counter("fleet_lease_lost_total", "Mid-run lease renewals that found the lease stolen or gone.", m.leaseLost.Load())

	counter("spans_recorded_total", "Fabric spans recorded into job traces and the flight recorder.", m.spansRecorded.Load())
	counter("spans_dropped_total", "Fabric spans evicted from the flight recorder to admit newer ones.", spansDropped)
	gauge("spans_held", "Fabric spans currently in the flight recorder (/debug/events).", float64(spansHeld))

	// Sweep families keep the sim_sweep_* naming the sweep fabric is
	// documented under (docs/SWEEPS.md) rather than the fdpserved_ prefix.
	fmt.Fprintf(w, "# HELP sim_sweep_submitted_total Sweeps admitted via POST /v1/sweeps.\n# TYPE sim_sweep_submitted_total counter\nsim_sweep_submitted_total %d\n", m.sweepsSubmitted.Load())
	fmt.Fprintf(w, "# HELP sim_sweep_cells_total Grid cells expanded across admitted sweeps.\n# TYPE sim_sweep_cells_total counter\nsim_sweep_cells_total %d\n", m.sweepCells.Load())
	fmt.Fprintf(w, "# HELP sim_sweep_active Sweeps with cells not yet in a terminal state.\n# TYPE sim_sweep_active gauge\nsim_sweep_active %d\n", sweepsActive)

	if len(tenants) > 0 {
		fmt.Fprintf(w, "# HELP fdpserved_tenant_queued Jobs waiting in each tenant's queue.\n# TYPE fdpserved_tenant_queued gauge\n")
		for _, t := range tenants {
			fmt.Fprintf(w, "fdpserved_tenant_queued{tenant=%q} %d\n", t.Name, t.Queued)
		}
		fmt.Fprintf(w, "# HELP fdpserved_tenant_running Jobs each tenant has running right now.\n# TYPE fdpserved_tenant_running gauge\n")
		for _, t := range tenants {
			fmt.Fprintf(w, "fdpserved_tenant_running{tenant=%q} %d\n", t.Name, t.Running)
		}
		fmt.Fprintf(w, "# HELP fdpserved_tenant_weight Fair-share weight in the smooth weighted round-robin scheduler.\n# TYPE fdpserved_tenant_weight gauge\n")
		for _, t := range tenants {
			fmt.Fprintf(w, "fdpserved_tenant_weight{tenant=%q} %d\n", t.Name, t.Weight)
		}
		fmt.Fprintf(w, "# HELP fdpserved_tenant_jobs_popped_total Jobs handed to workers, per tenant.\n# TYPE fdpserved_tenant_jobs_popped_total counter\n")
		for _, t := range tenants {
			fmt.Fprintf(w, "fdpserved_tenant_jobs_popped_total{tenant=%q} %d\n", t.Name, t.Popped)
		}
		// Starvation: how long each tenant's oldest queued job has waited.
		// A tenant whose oldest wait grows while others pop is being starved.
		fmt.Fprintf(w, "# HELP fdpserved_tenant_oldest_wait_seconds Age of each tenant's oldest queued job (0 when its queue is empty).\n# TYPE fdpserved_tenant_oldest_wait_seconds gauge\n")
		for _, t := range tenants {
			fmt.Fprintf(w, "fdpserved_tenant_oldest_wait_seconds{tenant=%q} %g\n", t.Name, t.OldestWait.Seconds())
		}
		gauge("scheduler_fairness", "Jain fairness index over per-tenant popped/weight ratios (1 = perfectly weight-proportional service).", fairnessIndex(tenants))
	}

	// Per-tenant queue-wait SLO histograms: one family, one series set per
	// tenant that has had a job dispatched.
	if names, hists := m.tenantWaits(); len(names) > 0 {
		fmt.Fprintf(w, "# HELP fdpserved_tenant_queue_wait_seconds Time jobs spent waiting for a worker, per tenant.\n# TYPE fdpserved_tenant_queue_wait_seconds histogram\n")
		for i, name := range names {
			h := hists[i]
			cum, sum, count := h.snapshot()
			for k, b := range h.bounds {
				fmt.Fprintf(w, "fdpserved_tenant_queue_wait_seconds_bucket{tenant=%q,le=\"%g\"} %d\n", name, b, cum[k])
			}
			fmt.Fprintf(w, "fdpserved_tenant_queue_wait_seconds_bucket{tenant=%q,le=\"+Inf\"} %d\n", name, cum[len(cum)-1])
			fmt.Fprintf(w, "fdpserved_tenant_queue_wait_seconds_sum{tenant=%q} %g\n", name, sum)
			fmt.Fprintf(w, "fdpserved_tenant_queue_wait_seconds_count{tenant=%q} %d\n", name, count)
		}
	}

	counter("traces_collected_total", "Jobs that collected an FDP decision trace.", m.traces.Load())
	counter("trace_events_total", "Decision events captured into job traces.", m.traceEvents.Load())
	counter("trace_events_truncated_total", "Decision events dropped by per-job trace limits.", m.traceTruncated.Load())

	// Series families keep the sim_* naming like sim_intervals_total: they
	// count simulation observables, not daemon mechanics.
	counter("sim_series_points_total", "Metric points (intervals x catalog width) recorded into interval-timeseries sidecars.", m.seriesPoints.Load())
	counter("sim_series_bytes_total", "Encoded interval-timeseries sidecar bytes produced.", m.seriesBytes.Load())

	fmt.Fprintf(w, "# HELP fdpserved_diff_requests_total GET /v1/diff requests by run-diff report verdict.\n# TYPE fdpserved_diff_requests_total counter\n")
	m.diffMu.Lock()
	verdicts := make([]string, 0, len(m.diffVerdicts))
	for v := range m.diffVerdicts {
		verdicts = append(verdicts, v)
	}
	byVerdict := make(map[string]uint64, len(m.diffVerdicts))
	for v, n := range m.diffVerdicts {
		byVerdict[v] = n
	}
	m.diffMu.Unlock()
	sort.Strings(verdicts)
	for _, v := range verdicts {
		fmt.Fprintf(w, "fdpserved_diff_requests_total{verdict=%q} %d\n", v, byVerdict[v])
	}

	fmt.Fprintf(w, "# HELP fdpserved_sim_stall_cycles_total Simulated core cycles by top-down cause, across attribution jobs.\n")
	fmt.Fprintf(w, "# TYPE fdpserved_sim_stall_cycles_total counter\n")
	for i, name := range stallBucketNames {
		fmt.Fprintf(w, "fdpserved_sim_stall_cycles_total{cause=%q} %d\n", name, m.stallCycles[i].Load())
	}
	fmt.Fprintf(w, "# HELP fdpserved_sim_bus_cycles_total Simulated data-bus occupancy cycles by transaction kind, across attribution jobs.\n")
	fmt.Fprintf(w, "# TYPE fdpserved_sim_bus_cycles_total counter\n")
	for i, name := range busKindNames {
		fmt.Fprintf(w, "fdpserved_sim_bus_cycles_total{kind=%q} %d\n", name, m.busCycles[i].Load())
	}

	// Go runtime health, sampled at scrape time.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge("go_goroutines", "Number of goroutines.", float64(runtime.NumGoroutine()))
	gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	gauge("go_heap_sys_bytes", "Bytes of heap memory obtained from the OS.", float64(ms.HeapSys))
	counter("go_gc_cycles_total", "Completed GC cycles.", uint64(ms.NumGC))
	gauge("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", float64(ms.PauseTotalNs)/1e9)

	renderHistogram(w, &m.queueWait, "queue_wait_seconds", "Time jobs spent waiting for a worker.")
	renderHistogram(w, &m.httpDur, "http_request_duration_seconds", "HTTP API request handling time (SSE streams count their full attachment).")
}
