// Package service is the simulation job service: a bounded worker pool
// with a FIFO queue behind an HTTP JSON API (see http.go), turning the
// one-shot simulator into a shared daemon that sweeps of prefetcher
// configurations — Puppeteer-style managers, POWER7-style reconfiguration
// studies — can drive concurrently.
//
// Jobs are deduplicated by their configuration fingerprint
// (sim.Fingerprint): an in-memory memo acts as a read-through layer over
// an optional content-addressed on-disk store (internal/store), so an
// identical submission — even across daemon restarts — completes
// immediately as a cache hit without re-simulating.
//
// Lifecycle: Submit validates and either answers from cache, enqueues, or
// reports backpressure (ErrQueueFull → HTTP 429). Cancel stops a queued
// job in place or cancels a running one at the next FDP interval boundary
// (PR 1's retire-boundary drain), preserving the partial result. Shutdown
// stops intake, cancels in-flight runs the same way, and waits for the
// workers to drain.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fdpsim/internal/obs"
	"fdpsim/internal/series"
	"fdpsim/internal/sim"
	"fdpsim/internal/store"
	"fdpsim/internal/workload/spec"
)

// Sentinel errors; the HTTP layer maps them to status codes.
var (
	// ErrQueueFull reports that the FIFO queue is at capacity (HTTP 429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrShuttingDown reports a submission after Shutdown began (HTTP 503).
	ErrShuttingDown = errors.New("service: shutting down")
	// ErrUnknownJob reports a job ID that was never issued (HTTP 404).
	ErrUnknownJob = errors.New("service: unknown job")
)

// Config sizes the service.
type Config struct {
	// Workers is the worker-pool width: at most this many simulations run
	// concurrently. 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the FIFO queue of jobs waiting for a worker;
	// submissions beyond it are rejected with ErrQueueFull so load sheds
	// at the edge instead of accumulating unboundedly. 0 means 64.
	QueueDepth int
	// Store, when non-nil, persists completed results on disk and serves
	// identical submissions across restarts. The in-memory memo reads
	// through it either way.
	Store *store.Store
	// JobTimeout, when non-zero, bounds each simulation's wall-clock run
	// time; expiry cancels it at the next interval boundary and the job
	// completes as cancelled with its partial result.
	JobTimeout time.Duration
	// Logger receives structured job-lifecycle and HTTP request logs.
	// Nil discards them.
	Logger *slog.Logger
	// QueueWaitBuckets overrides the queue-wait histogram's bucket upper
	// bounds (seconds). Bounds are sorted and deduplicated at registration,
	// so misconfigured orderings cannot produce broken scrape output.
	// Empty means the default sub-millisecond-to-tens-of-seconds ladder.
	QueueWaitBuckets []float64
	// TraceLimit caps the number of decision events retained per traced
	// job; later intervals are counted as truncated instead of growing the
	// buffer without bound. 0 means 16384 events (~5 MB of JSONL).
	TraceLimit int
	// SeriesLimit caps the interval count recorded per series-enabled job;
	// later boundaries are counted as truncated in the sidecar's Meta.
	// 0 means 65536 intervals (~13 MB of columns in memory).
	SeriesLimit int

	// Tenants is the scheduler roster: per-tenant fair-share weights and
	// quotas. Tenants absent from the roster auto-register at weight 1
	// unless StrictTenants is set.
	Tenants map[string]TenantConfig
	// StrictTenants rejects submissions naming a tenant outside the
	// roster (sweep.ErrUnknownTenant → HTTP 400) instead of
	// auto-registering it. The default tenant always exists.
	StrictTenants bool

	// FleetWorker, when non-empty, names this process in a worker fleet:
	// multiple fdpserved processes sharing one Store coordinate through
	// atomic claim files so each fingerprint is simulated once fleet-wide.
	// Requires Store; ignored without one.
	FleetWorker string
	// LeaseTTL is the fleet claim lease. A worker renews its lease while
	// simulating; a claim past its lease is stolen by the next worker
	// (the crashed-worker path). 0 means 30s.
	LeaseTTL time.Duration
	// ClaimAttempts bounds how many times a worker re-checks a held claim
	// (with backoff) before falling back to executing locally — execution
	// is at-least-once, results are exactly-once via the store's atomic
	// writes. 0 means 32.
	ClaimAttempts int

	// SpanLimit caps the fabric-span flight recorder (GET /debug/events):
	// the last N spans across all jobs, oldest evicted. 0 means 4096.
	SpanLimit int
	// SSEKeepalive is the idle interval after which the SSE handlers emit
	// a ": keepalive" comment frame so intermediaries do not drop a quiet
	// stream. 0 means 15s; negative disables keepalives.
	SSEKeepalive time.Duration
}

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states. Queued and running are transient; done, failed
// and cancelled are terminal.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one submitted simulation. All mutable fields are guarded by mu;
// done is closed exactly once when the job reaches a terminal state.
type Job struct {
	id  string
	fp  string
	cfg sim.Config
	// spec, when non-nil, is the declarative WorkloadSpec this job runs
	// instead of a registered workload name (WithWorkloadSpec). The
	// fingerprint is then sim.FingerprintSpec's domain-separated digest, so
	// spec jobs share the cache machinery without aliasing named jobs.
	spec *spec.Spec
	// tenant and priority place the job in the fair scheduler; sweepID
	// links it to the sweep that expanded it (empty for direct jobs).
	tenant   string
	priority int
	sweepID  string

	mu          sync.Mutex
	state       JobState
	cacheHit    bool
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
	result      *sim.Result
	errMsg      string
	cancel      context.CancelCauseFunc // set while running
	lastSnap    *sim.Snapshot
	subs        map[int]chan sim.Snapshot
	nextSub     int
	done        chan struct{}

	// trace, when non-nil, collects the run's FDP decision events (the
	// job was submitted with WithDecisionTrace). traceJSONL is the
	// rendered artifact, set when the job reaches a terminal state (or
	// immediately on a cache hit whose trace the store still has).
	trace      *obs.Collector
	traceJSONL []byte

	// series, when non-nil, records the run's interval timeseries (the
	// job was submitted with WithSeriesRecording). seriesBin is the
	// encoded sidecar document, set when the job reaches a terminal state
	// (or immediately on a cache hit whose sidecar the store still has).
	series    *series.Recorder
	seriesBin []byte

	// Fabric trace identity (immutable after Submit): traceID threads the
	// job's spans, rootSpan is its "job" span ID, parentSpan links it under
	// a submitter's span (sweep root, or an X-Fdp-Trace header). spans are
	// the completed fabric spans, guarded by mu.
	traceID    string
	rootSpan   string
	parentSpan string
	spans      []obs.Span
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Trace returns the job's rendered JSONL decision trace. ok is false when
// the job was not submitted with tracing, has not reached a terminal
// state yet, or completed as a cache hit whose trace the store no longer
// has.
func (j *Job) Trace() (jsonl []byte, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.traceJSONL == nil {
		return nil, false
	}
	return j.traceJSONL, true
}

// SeriesData returns the job's encoded interval-timeseries sidecar
// (internal/series binary document). ok is false when the job was not
// submitted with series recording, has not reached a terminal state yet,
// or completed as a cache hit whose sidecar the store no longer has.
func (j *Job) SeriesData() (doc []byte, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.seriesBin == nil {
		return nil, false
	}
	return j.seriesBin, true
}

// JobStatus is the JSON shape of a job, returned by poll and embedded in
// the SSE "done" event.
type JobStatus struct {
	ID          string      `json:"id"`
	State       JobState    `json:"state"`
	Workload    string      `json:"workload"`
	Prefetcher  string      `json:"prefetcher"`
	Fingerprint string      `json:"fingerprint"`
	Tenant      string      `json:"tenant"`
	Priority    int         `json:"priority,omitempty"`
	Sweep       string      `json:"sweep,omitempty"`
	CacheHit    bool        `json:"cache_hit"`
	SubmittedAt time.Time   `json:"submitted_at"`
	StartedAt   *time.Time  `json:"started_at,omitempty"`
	FinishedAt  *time.Time  `json:"finished_at,omitempty"`
	Error       string      `json:"error,omitempty"`
	Result      *sim.Result `json:"result,omitempty"`
	// Trace reports that a decision-trace artifact is downloadable at
	// GET /v1/jobs/{id}/trace.
	Trace bool `json:"trace,omitempty"`
	// Series reports that an interval-timeseries artifact is queryable at
	// GET /v1/jobs/{id}/series.
	Series bool `json:"series,omitempty"`
}

// Status snapshots the job for serialization.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.id,
		State:       j.state,
		Workload:    j.cfg.Workload,
		Prefetcher:  string(j.cfg.Prefetcher),
		Fingerprint: j.fp,
		Tenant:      j.tenant,
		Priority:    j.priority,
		Sweep:       j.sweepID,
		CacheHit:    j.cacheHit,
		SubmittedAt: j.submittedAt,
		Error:       j.errMsg,
		Result:      j.result,
		Trace:       j.traceJSONL != nil,
		Series:      j.seriesBin != nil,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		st.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		st.FinishedAt = &t
	}
	return st
}

// publish is the job's sim.ProgressFunc: it retains the latest snapshot
// for late subscribers and fans it out without blocking the simulation
// (slow subscribers drop intermediate snapshots, never stall the run).
func (j *Job) publish(s sim.Snapshot) {
	j.mu.Lock()
	snap := s
	j.lastSnap = &snap
	for _, ch := range j.subs {
		select {
		case ch <- s:
		default:
		}
	}
	j.mu.Unlock()
}

// subscribe registers an SSE listener and returns the latest snapshot so
// a late joiner sees where the run is immediately.
func (j *Job) subscribe() (id int, ch chan sim.Snapshot, last *sim.Snapshot) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch = make(chan sim.Snapshot, 16)
	id = j.nextSub
	j.nextSub++
	j.subs[id] = ch
	return id, ch, j.lastSnap
}

func (j *Job) unsubscribe(id int) {
	j.mu.Lock()
	delete(j.subs, id)
	j.mu.Unlock()
}

// finishLocked moves the job to a terminal state. Caller holds j.mu.
func (j *Job) finishLocked(state JobState, res *sim.Result, errMsg string) {
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.result = res
	j.errMsg = errMsg
	j.finishedAt = time.Now()
	close(j.done)
}

// Server owns the job table, the worker pool and the result cache.
type Server struct {
	cfg Config
	log *slog.Logger

	baseCtx    context.Context
	baseCancel context.CancelCauseFunc
	sched      *fairQueue
	wg         sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*Job
	memo      map[string]sim.Result
	sweeps    map[string]*Sweep
	nextID    uint64
	nextSweep uint64
	closed    bool

	started time.Time
	reqSeq  atomic.Uint64 // HTTP request IDs for log correlation
	m       metrics
	// spans is the fabric-span flight recorder behind /debug/events: the
	// last Config.SpanLimit spans across all jobs, drop-oldest.
	spans *obs.SpanBuffer
}

// defaultTraceLimit bounds a traced job's in-memory event buffer.
const defaultTraceLimit = 16384

// defaultSeriesLimit bounds a series-enabled job's recorded intervals.
const defaultSeriesLimit = 65536

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.TraceLimit <= 0 {
		cfg.TraceLimit = defaultTraceLimit
	}
	if cfg.SeriesLimit <= 0 {
		cfg.SeriesLimit = defaultSeriesLimit
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.ClaimAttempts <= 0 {
		cfg.ClaimAttempts = 32
	}
	if cfg.FleetWorker != "" && cfg.Store == nil {
		cfg.FleetWorker = "" // fleet coordination lives in the store
	}
	if cfg.SSEKeepalive == 0 {
		cfg.SSEKeepalive = 15 * time.Second
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:        cfg,
		log:        logger,
		baseCtx:    ctx,
		baseCancel: cancel,
		sched:      newFairQueue(cfg.QueueDepth, cfg.StrictTenants, cfg.Tenants),
		jobs:       make(map[string]*Job),
		memo:       make(map[string]sim.Result),
		sweeps:     make(map[string]*Sweep),
		started:    time.Now(),
		spans:      &obs.SpanBuffer{Limit: cfg.SpanLimit},
	}
	s.m.init(cfg.QueueWaitBuckets)
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.log.Info("service started", "workers", cfg.Workers, "queue_depth", cfg.QueueDepth,
		"store", cfg.Store != nil, "job_timeout", cfg.JobTimeout,
		"fleet_worker", cfg.FleetWorker, "strict_tenants", cfg.StrictTenants)
	return s
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job, newest last (insertion order is not preserved
// by the map; callers sort by SubmittedAt).
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	return out
}

// cacheLookup consults the memo, then the on-disk store (populating the
// memo on a store hit so the disk is read once per fingerprint).
func (s *Server) cacheLookup(fp string) (sim.Result, bool) {
	s.mu.Lock()
	res, ok := s.memo[fp]
	s.mu.Unlock()
	if ok {
		return res, true
	}
	if s.cfg.Store != nil {
		if res, ok := s.cfg.Store.Get(fp); ok {
			s.mu.Lock()
			s.memo[fp] = res
			s.mu.Unlock()
			return res, true
		}
	}
	return sim.Result{}, false
}

// storeResult writes a completed result back through both cache layers.
func (s *Server) storeResult(fp string, res sim.Result) {
	s.mu.Lock()
	s.memo[fp] = res
	s.mu.Unlock()
	if s.cfg.Store != nil {
		// Best-effort: a full disk costs future cache hits, not this job.
		_ = s.cfg.Store.Put(fp, res)
	}
}

// SubmitOption customizes one submission.
type SubmitOption func(*submitOptions)

type submitOptions struct {
	trace      bool
	series     bool
	spec       *spec.Spec
	specSet    bool // WithWorkloadSpec given, even with a nil spec (rejected)
	tenant     string
	priority   int
	sweepID    string // set by SubmitSweep; sweep jobs bypass queued quotas
	traceID    string // fabric trace to join (WithTraceContext); "" = fresh
	parentSpan string
}

// WithDecisionTrace makes the job collect its FDP decision trace (one
// event per sampling interval, bounded by Config.TraceLimit), downloadable
// at GET /v1/jobs/{id}/trace once the job is terminal. Cache hits reuse
// the persisted trace when the store still has one.
func WithDecisionTrace() SubmitOption {
	return func(o *submitOptions) { o.trace = true }
}

// WithSeriesRecording makes the job record its interval timeseries (one
// catalog row per FDP sampling interval, bounded by Config.SeriesLimit),
// queryable at GET /v1/jobs/{id}/series and diffable at GET /v1/diff once
// the job is terminal. Cache hits reuse the persisted sidecar when the
// store still has one.
func WithSeriesRecording() SubmitOption {
	return func(o *submitOptions) { o.series = true }
}

// WithWorkloadSpec makes the job run a declarative WorkloadSpec instead
// of a registered workload name: the configuration's Workload field is
// overwritten with the spec's name, validation goes through
// sim.ValidateSpecJob (single-lane specs only — a multi-lane spec needs a
// multicore run the job service does not model), and deduplication keys
// on sim.FingerprintSpec, which canonicalizes the spec so spelled-out
// defaults hit the same cache entry.
func WithWorkloadSpec(sp *spec.Spec) SubmitOption {
	return func(o *submitOptions) { o.spec, o.specSet = sp, true }
}

// WithTenant attributes the job to a scheduler tenant for fair queueing
// and quotas. Empty (or omitted) means the default tenant. Under a
// strict roster, an unknown tenant fails the submission with
// sweep.ErrUnknownTenant.
func WithTenant(name string) SubmitOption {
	return func(o *submitOptions) { o.tenant = name }
}

// WithPriority orders the job against the tenant's other queued work;
// higher runs sooner (default 0). Priority is within-tenant only — it
// never lets one tenant jump another's share.
func WithPriority(p int) SubmitOption {
	return func(o *submitOptions) { o.priority = p }
}

// forSweep links the job to a sweep and lets it bypass queued quotas
// (sweep admission is bounded at expansion by sweep.MaxJobs).
func forSweep(id string) SubmitOption {
	return func(o *submitOptions) { o.sweepID = id }
}

// Submit validates a configuration and either completes it from cache,
// enqueues it, or rejects it (ErrQueueFull, ErrShuttingDown, or a
// validation error wrapping sim.ErrInvalidConfig/sim.ErrUnknownWorkload).
//
// Two identical submissions racing before either completes both simulate;
// the store's atomic Put makes the duplicate write harmless. Deduplication
// is an at-most-once-after-completion guarantee, not an in-flight one.
func (s *Server) Submit(cfg sim.Config, opts ...SubmitOption) (*Job, error) {
	var o submitOptions
	for _, opt := range opts {
		opt(&o)
	}
	var fp string
	var ok bool
	if o.specSet {
		if err := sim.ValidateSpecJob(cfg, o.spec); err != nil {
			return nil, err
		}
		cfg.Workload = o.spec.Name
		fp, ok = sim.FingerprintSpec(cfg, o.spec)
	} else {
		if err := cfg.ValidateJob(); err != nil {
			return nil, err
		}
		fp, ok = sim.Fingerprint(cfg)
	}
	if !ok {
		// Unreachable: ValidateJob/ValidateSpecJob reject custom prefetchers.
		return nil, fmt.Errorf("%w: configuration is not fingerprintable", sim.ErrInvalidConfig)
	}
	cfg.Progress = nil // the worker installs its own sinks
	cfg.Tracer = nil

	tenant := o.tenant
	if tenant == "" {
		tenant = defaultTenant
	}
	if err := s.sched.validateTenant(tenant); err != nil {
		return nil, err
	}

	traceID := o.traceID
	if traceID == "" {
		traceID = obs.NewTraceID()
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrShuttingDown
	}
	s.nextID++
	job := &Job{
		id:          fmt.Sprintf("job-%06d", s.nextID),
		fp:          fp,
		cfg:         cfg,
		spec:        o.spec,
		tenant:      tenant,
		priority:    o.priority,
		sweepID:     o.sweepID,
		traceID:     traceID,
		rootSpan:    obs.NewSpanID(),
		parentSpan:  o.parentSpan,
		state:       StateQueued,
		submittedAt: time.Now(),
		subs:        make(map[int]chan sim.Snapshot),
		done:        make(chan struct{}),
	}
	if o.trace {
		job.trace = &obs.Collector{Limit: s.cfg.TraceLimit}
	}
	if o.series {
		job.series = &series.Recorder{Limit: s.cfg.SeriesLimit}
	}
	s.jobs[job.id] = job
	s.mu.Unlock()
	s.m.submitted.Add(1)
	s.log.Info("job submitted", "job", job.id, "fingerprint", shortFP(fp),
		"workload", cfg.Workload, "prefetcher", cfg.Prefetcher, "trace", o.trace, "series", o.series)

	if res, ok := s.cacheLookup(fp); ok {
		s.m.cacheHits.Add(1)
		s.m.completed.Add(1)
		var trace []byte
		if o.trace && s.cfg.Store != nil {
			trace, _ = s.cfg.Store.GetTrace(fp)
		}
		var seriesBin []byte
		if o.series && s.cfg.Store != nil {
			seriesBin, _ = s.cfg.Store.GetSeries(fp)
		}
		job.mu.Lock()
		job.cacheHit = true
		job.traceJSONL = trace
		job.seriesBin = seriesBin
		job.finishLocked(StateDone, &res, "")
		submitted, finished := job.submittedAt, job.finishedAt
		job.mu.Unlock()
		s.addSpan(job, obs.Span{SpanID: job.rootSpan, Parent: job.parentSpan,
			Name: "job", Start: submitted, End: finished,
			Attrs: map[string]string{"outcome": "cache_hit", "tenant": job.tenant}})
		s.writeProvenance(job, store.OutcomeCacheHit, "", -1, false, 0, 0, 0)
		s.log.Info("job done", "job", job.id, "cache_hit", true, "trace", trace != nil)
		return job, nil
	}
	s.m.cacheMisses.Add(1)

	// Sweep jobs bypass the queued quotas: the sweep was admitted whole
	// at expansion and fairness, not admission, spreads its load.
	if err := s.sched.push(job, o.sweepID != ""); err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.m.rejected.Add(1)
		}
		s.dropJob(job, err)
		return nil, err
	}
	return job, nil
}

// shortFP abbreviates a fingerprint for log lines (the full 64 hex chars
// drown the rest of the record; 12 is plenty to correlate).
func shortFP(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// dropJob removes a job that never entered the queue.
func (s *Server) dropJob(job *Job, cause error) {
	s.mu.Lock()
	delete(s.jobs, job.id)
	s.mu.Unlock()
	job.mu.Lock()
	job.finishLocked(StateFailed, nil, cause.Error())
	job.mu.Unlock()
}

// Cancel stops a job: a queued job is finalized in place, a running one
// is cancelled at the next FDP interval boundary (its partial result is
// preserved when the worker finishes it). Cancelling a terminal job is a
// no-op. Returns ErrUnknownJob for an ID that was never issued.
func (s *Server) Cancel(id string) (*Job, error) {
	job, ok := s.Job(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	job.mu.Lock()
	state := job.state
	switch job.state {
	case StateQueued:
		job.finishLocked(StateCancelled, nil, "cancelled before start")
		s.m.cancelled.Add(1)
	case StateRunning:
		// The worker observes the cause via RunContext's CancelError and
		// finalizes the job with its partial result.
		job.cancel(errors.New("cancelled by client"))
	}
	job.mu.Unlock()
	s.log.Info("job cancel requested", "job", job.id, "state", string(state))
	return job, nil
}

// QueueDepth returns the configured queue bound.
func (s *Server) QueueDepth() int { return s.cfg.QueueDepth }

// worker pops from the fair scheduler until Shutdown closes it. The pop
// holds a running slot on the job's tenant; release returns it whatever
// runJob decides (including skipping an already-cancelled job).
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		job, ok := s.sched.pop()
		if !ok {
			return
		}
		s.runJob(job)
		s.sched.release(job.tenant)
	}
}

// runJob executes one queued job end to end.
func (s *Server) runJob(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued { // cancelled while waiting
		job.mu.Unlock()
		return
	}
	if s.baseCtx.Err() != nil { // shutdown won the race: never start
		job.finishLocked(StateCancelled, nil, "server shutting down")
		job.mu.Unlock()
		s.m.cancelled.Add(1)
		return
	}
	wait := time.Since(job.submittedAt)
	job.state = StateRunning
	job.startedAt = time.Now()
	ctx, cancel := context.WithCancelCause(s.baseCtx)
	job.cancel = cancel
	job.mu.Unlock()
	defer cancel(nil)

	s.m.queueWait.observe(wait.Seconds())
	s.m.observeTenantWait(job.tenant, wait.Seconds())
	s.m.running.Add(1)
	defer s.m.running.Add(-1)
	s.log.Info("job started", "job", job.id, "queue_wait", wait)
	s.addSpan(job, obs.Span{Parent: job.rootSpan, Name: "queue",
		Start: job.submittedAt, End: job.startedAt,
		Attrs: map[string]string{"tenant": job.tenant}})

	runCtx := ctx
	if s.cfg.JobTimeout > 0 {
		var tcancel context.CancelFunc
		runCtx, tcancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer tcancel()
	}

	// Fleet coordination: claim the fingerprint before simulating. Another
	// worker may already have the result (adopt it), hold a live lease
	// (wait with backoff, steal past expiry), or have crashed mid-write
	// (the claim machinery recovers). Exhausted attempts fall back to
	// executing locally: execution is at-least-once, results are
	// exactly-once through the store's atomic Put.
	var fleetAcquired bool
	claimGen, claimStolen := -1, false
	if s.cfg.FleetWorker != "" {
		claimStart := time.Now()
		acquired, res, fromStore, info, claimEvents := s.fleetClaim(runCtx, job)
		claimSpan := obs.Span{Parent: job.rootSpan, Name: "claim",
			Start: claimStart, End: time.Now(), Events: claimEvents,
			Attrs: map[string]string{"worker": s.cfg.FleetWorker}}
		if fromStore {
			claimSpan.Attrs["outcome"] = "adopted"
			if info.Trace != "" {
				claimSpan.Attrs["executor_trace"] = info.Trace
			}
			s.addSpan(job, claimSpan)
			s.storeResult(job.fp, res)
			s.m.fleetAdopted.Add(1)
			s.m.completed.Add(1)
			job.mu.Lock()
			job.cacheHit = true
			job.finishLocked(StateDone, &res, "")
			submitted, finished := job.submittedAt, job.finishedAt
			job.mu.Unlock()
			s.addSpan(job, obs.Span{SpanID: job.rootSpan, Parent: job.parentSpan,
				Name: "job", Start: submitted, End: finished,
				Attrs: map[string]string{"outcome": "adopted", "tenant": job.tenant}})
			s.writeProvenance(job, store.OutcomeAdopted, "", -1, false, wait, 0, 0)
			s.log.Info("job finished", "job", job.id, "state", "done", "fleet_adopted", true)
			return
		}
		fleetAcquired = acquired
		if fleetAcquired {
			claimGen, claimStolen = info.Gen(), info.Stolen
			claimSpan.Attrs["outcome"] = "acquired"
			claimSpan.Attrs["lease_gen"] = strconv.Itoa(claimGen)
			if claimStolen {
				claimSpan.Attrs["stolen"] = "true"
			}
			// The claim outlives the run only until the result is stored;
			// released on every exit so a failed run frees the fingerprint.
			defer s.cfg.Store.Release(job.fp, s.cfg.FleetWorker)
		} else {
			claimSpan.Attrs["outcome"] = "local_fallback"
		}
		s.addSpan(job, claimSpan)
	}

	cfg := job.cfg
	ctl := controllerLabel(cfg)
	cfg.Progress = func(snap sim.Snapshot) {
		s.m.observeSnapshot(intervalSample{final: snap.Final, controller: ctl, insertion: snap.Insertion, sample: snap.Sample})
		job.publish(snap)
	}
	// runEvents collects in-run span events (lease renewals and losses);
	// Progress runs synchronously on this goroutine, so no lock is needed.
	var runEvents []obs.SpanEvent
	if fleetAcquired {
		// Piggyback lease renewal on progress so a live simulation never
		// loses its claim; a renewal that fails (lease stolen after a long
		// stall) is logged but the run continues — the store's atomic Put
		// keeps duplicate execution harmless.
		inner := cfg.Progress
		lastRenew := time.Now()
		cfg.Progress = func(snap sim.Snapshot) {
			inner(snap)
			if time.Since(lastRenew) >= s.cfg.LeaseTTL/3 {
				lastRenew = time.Now()
				if s.cfg.Store.Renew(job.fp, s.cfg.FleetWorker, s.cfg.LeaseTTL) {
					runEvents = append(runEvents, obs.SpanEvent{Name: "lease-renew", Time: time.Now()})
				} else {
					s.m.leaseLost.Add(1)
					runEvents = append(runEvents, obs.SpanEvent{Name: "lease-lost", Time: time.Now()})
					s.log.Warn("fleet lease lost mid-run", "job", job.id, "fingerprint", shortFP(job.fp))
				}
			}
		}
	}
	// The tracer fans out to whichever synchronous sinks the submission
	// asked for (decision-trace collector, series recorder); obs.Tee
	// collapses the common zero- and one-sink cases to no wrapper at all.
	var sinks []sim.Tracer
	if job.trace != nil {
		sinks = append(sinks, job.trace)
	}
	if job.series != nil {
		sinks = append(sinks, job.series)
	}
	cfg.Tracer = obs.Tee(sinks...)
	s.m.executions.Add(1)
	runStart := time.Now()
	var res sim.Result
	var err error
	if job.spec != nil {
		res, err = sim.RunSpecContext(runCtx, cfg, job.spec)
	} else {
		res, err = sim.RunContext(runCtx, cfg)
	}
	runDur := time.Since(runStart)

	s.m.simCycles.Add(res.Counters.Cycles)
	s.m.simNanos.Add(uint64(res.Elapsed.Nanoseconds()))

	runSpan := obs.Span{Parent: job.rootSpan, Name: "run",
		Start: runStart, End: runStart.Add(runDur), Events: runEvents,
		Attrs: map[string]string{
			"workload":  cfg.Workload,
			"intervals": strconv.FormatUint(res.Intervals, 10),
		}}
	if job.trace != nil {
		// Link the fabric span to the in-run DecisionEvent stream it wraps.
		runSpan.Attrs["decision_events"] = strconv.Itoa(len(job.trace.Events()))
	}
	s.addSpan(job, runSpan)

	// Render the decision trace before finishing so Trace() and the HTTP
	// trace endpoint see a complete artifact the moment Done() closes.
	// Cancelled runs keep their partial trace (it matches the partial
	// result) but only full runs are persisted, mirroring store.Put.
	var traceJSONL []byte
	if job.trace != nil {
		events := job.trace.Events()
		var buf bytes.Buffer
		if werr := obs.WriteJSONL(&buf, events); werr == nil {
			traceJSONL = buf.Bytes()
		}
		s.m.traces.Add(1)
		s.m.traceEvents.Add(uint64(len(events)))
		s.m.traceTruncated.Add(job.trace.Truncated())
		if truncated := job.trace.Truncated(); truncated > 0 {
			s.log.Warn("decision trace truncated", "job", job.id,
				"kept", len(events), "truncated", truncated)
		}
		if traceJSONL != nil && err == nil && s.cfg.Store != nil {
			// Best-effort, like storeResult: losing it costs a future
			// cache-hit trace, not this job.
			_ = s.cfg.Store.PutTrace(job.fp, traceJSONL)
		}
	}

	// Encode the interval-timeseries sidecar under the same contract:
	// available the moment Done() closes, persisted only for full runs.
	var seriesBin []byte
	if job.series != nil {
		sr := job.series.Series()
		sr.Meta.Workload = cfg.Workload
		sr.Meta.Prefetcher = string(cfg.Prefetcher)
		if doc, serr := series.Encode(sr); serr == nil {
			seriesBin = doc
			s.m.seriesPoints.Add(uint64(sr.Len() * len(sr.Meta.Metrics)))
			s.m.seriesBytes.Add(uint64(len(doc)))
			if err == nil && s.cfg.Store != nil {
				_ = s.cfg.Store.PutSeries(job.fp, doc)
			}
		}
		if truncated := job.series.Truncated(); truncated > 0 {
			s.log.Warn("interval series truncated", "job", job.id,
				"kept", job.series.Len(), "truncated", truncated)
		}
	}

	var storeDur time.Duration
	if err == nil {
		// Cache before finishing so a poller that sees state "done" and
		// immediately resubmits an identical config gets the hit.
		storeStart := time.Now()
		s.storeResult(job.fp, res)
		storeDur = time.Since(storeStart)
		s.addSpan(job, obs.Span{Parent: job.rootSpan, Name: "store",
			Start: storeStart, End: storeStart.Add(storeDur)})
	}
	job.mu.Lock()
	job.traceJSONL = traceJSONL
	job.seriesBin = seriesBin
	switch {
	case err == nil:
		s.m.completed.Add(1)
		job.finishLocked(StateDone, &res, "")
	case errors.Is(err, sim.ErrCancelled):
		s.m.cancelled.Add(1)
		partial := res
		job.finishLocked(StateCancelled, &partial, err.Error())
	default:
		s.m.failed.Add(1)
		job.finishLocked(StateFailed, nil, err.Error())
	}
	state, started := job.state, job.startedAt
	submitted, finished := job.submittedAt, job.finishedAt
	job.mu.Unlock()

	s.addSpan(job, obs.Span{SpanID: job.rootSpan, Parent: job.parentSpan,
		Name: "job", Start: submitted, End: finished,
		Attrs: map[string]string{"outcome": string(state), "tenant": job.tenant}})
	outcome, errMsg := store.OutcomeExecuted, ""
	switch {
	case errors.Is(err, sim.ErrCancelled):
		outcome, errMsg = store.OutcomeCancelled, err.Error()
	case err != nil:
		outcome, errMsg = store.OutcomeFailed, err.Error()
	}
	s.writeProvenance(job, outcome, errMsg, claimGen, claimStolen, wait, runDur, storeDur)

	attrs := []any{"job", job.id, "state", string(state),
		"duration", time.Since(started), "intervals", res.Intervals}
	if err != nil {
		attrs = append(attrs, "error", err.Error())
		s.log.Warn("job finished", attrs...)
		return
	}
	s.log.Info("job finished", attrs...)
}

// fleetClaim negotiates fingerprint ownership with the rest of the
// fleet. It returns fromStore with the finished result when another
// worker completed it, acquired when this worker won the claim, or
// neither when the bounded retries ran out (execute locally) or ctx
// ended (the run exits immediately anyway). info describes the claim
// outcome (the acquired lease, or the holder observed last); events are
// the negotiation's span events (waits, steals) for the claim span.
func (s *Server) fleetClaim(ctx context.Context, job *Job) (acquired bool, res sim.Result, fromStore bool, info store.ClaimInfo, events []obs.SpanEvent) {
	st := s.cfg.Store
	backoff := 25 * time.Millisecond
	for attempt := 0; attempt < s.cfg.ClaimAttempts; attempt++ {
		state, cur, err := st.ClaimTrace(job.fp, s.cfg.FleetWorker, s.cfg.LeaseTTL, job.traceID)
		if err != nil {
			s.log.Warn("fleet claim error; executing locally", "job", job.id, "error", err)
			return false, sim.Result{}, false, cur, events
		}
		switch state {
		case store.ClaimDone:
			if r, ok := st.Get(job.fp); ok {
				return false, r, true, cur, events
			}
			// The result was discarded as corrupt between Claim and Get;
			// recover by executing locally.
			return false, sim.Result{}, false, cur, events
		case store.ClaimAcquired:
			s.m.claimsAcquired.Add(1)
			if cur.Stolen {
				s.m.claimsStolen.Add(1)
				events = append(events, obs.SpanEvent{Name: "lease-steal", Time: time.Now(),
					Attrs: map[string]string{"lease_gen": strconv.Itoa(cur.Gen())}})
				s.log.Info("fleet claim stolen from expired lease", "job", job.id,
					"fingerprint", shortFP(job.fp))
			}
			return true, sim.Result{}, false, cur, events
		case store.ClaimHeld:
			s.m.claimsWaited.Add(1)
			wait := backoff
			// Never sleep far past the holder's lease: the moment it
			// expires this worker is eligible to steal.
			if until := time.Until(cur.Expires); until > 0 && until+5*time.Millisecond < wait {
				wait = until + 5*time.Millisecond
			}
			events = append(events, obs.SpanEvent{Name: "claim-wait", Time: time.Now(),
				Attrs: map[string]string{"holder": cur.Owner, "wait": wait.String()}})
			select {
			case <-ctx.Done():
				return false, sim.Result{}, false, cur, events
			case <-time.After(wait):
			}
			if backoff < 2*time.Second {
				backoff *= 2
			}
		}
	}
	s.log.Warn("fleet claim attempts exhausted; executing locally",
		"job", job.id, "fingerprint", shortFP(job.fp), "attempts", s.cfg.ClaimAttempts)
	return false, sim.Result{}, false, store.ClaimInfo{}, events
}

// Executions returns how many simulations this server actually ran
// (excluding cache hits and fleet-adopted results) — the fleet e2e's
// exactly-once bookkeeping.
func (s *Server) Executions() uint64 { return s.m.executions.Load() }

// Tenants exports the scheduler's per-tenant state.
func (s *Server) Tenants() []TenantSnapshot { return s.sched.snapshot() }

// SetTenant registers or reconfigures a scheduler tenant at runtime.
func (s *Server) SetTenant(name string, cfg TenantConfig) { s.sched.register(name, cfg) }

// controllerLabel names a configuration's decision policy for metrics
// series: the explicit Controller, or the paper default.
func controllerLabel(cfg sim.Config) string {
	if cfg.Controller != "" {
		return cfg.Controller
	}
	return defaultController
}

// dccDistribution samples, for the metrics endpoint, how many currently
// running jobs sit at each Dynamic Configuration Counter level (1..5,
// from their latest progress snapshot), grouped by the job's decision
// policy. Inner index 0 is unused.
func (s *Server) dccDistribution() map[string][6]int {
	dist := make(map[string][6]int)
	for _, job := range s.Jobs() {
		job.mu.Lock()
		if job.state == StateRunning && job.lastSnap != nil {
			if lvl := job.lastSnap.Level; lvl >= 1 && lvl <= 5 {
				ctl := controllerLabel(job.cfg)
				d := dist[ctl]
				d[lvl]++
				dist[ctl] = d
			}
		}
		job.mu.Unlock()
	}
	return dist
}

// Shutdown stops intake (submissions fail with ErrShuttingDown), cancels
// queued and in-flight jobs — running simulations stop at their next FDP
// interval boundary and keep their partial results — and waits for the
// worker pool to drain, up to ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.sched.close()
	}
	s.mu.Unlock()
	s.log.Info("shutdown: draining worker pool", "running", s.m.running.Load())
	s.baseCancel(ErrShuttingDown)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
