package harness

import (
	"context"
	"strings"

	"fdpsim/internal/control"
	"fdpsim/internal/sim"
	"fdpsim/internal/stats"
	"fdpsim/internal/workload"
)

// Controller shoot-out: every registered feedback decision policy —
// the paper's Table 2 ("fdp"), the five static levels it competes
// against, a DSPatch-style bandwidth-aware dual-mode policy, and the
// trained decision tree — head to head on the same workloads, same
// prefetcher, same sizing. The merged table answers the question the
// paper's Section 5 asks of FDP itself: does the policy buy IPC
// without spending the bus?

func init() {
	registerExperiment("controllers", "Controller shoot-out: Table 2 vs. static and learned policies", runControllers)
}

func runControllers(ctx context.Context, p Params) ([]Table, error) {
	infos := control.List()
	order := make([]string, len(infos))
	configs := make(map[string]sim.Config, len(infos))
	for i, info := range infos {
		order[i] = info.Name
		cfg := withAttr(fullFDP(sim.PrefStream))
		cfg.Controller = info.Name
		configs[info.Name] = cfg
	}
	ws := workload.MemoryIntensive()
	g, err := RunAll(ctx, labeled(ws, configs, order, p), p)
	if err != nil {
		return nil, err
	}

	ipc := metricTable("IPC by controller (stream prefetcher, full feedback loop)",
		"the paper's fdp column is the Table 2 policy; static-N pins the level, tree imitates fdp from logged decisions",
		ws, order, g, func(r sim.Result) float64 { return r.IPC }, f3, true)

	bpki := metricTable("Bus traffic by controller (BPKI: bus accesses per 1000 instructions)",
		"lower is cheaper; an aggressive policy that wins IPC here pays for it below",
		ws, order, g, func(r sim.Result) float64 { return r.BPKI }, f2, false)

	busUtil := metricTable("Bus utilization by controller (data-bus occupancy / cycles)",
		"the bandwidth-efficiency axis: dspatch-dual throttles toward accuracy as this saturates",
		ws, order, g, func(r sim.Result) float64 { return attrOf(r).BusUtilization() }, pct, false)

	// The merged head-to-head: one row per controller, workloads averaged,
	// so the IPC-vs-bandwidth trade every policy makes is one line.
	merged := Table{
		Title:  "Controller head-to-head (averaged over the memory-intensive set)",
		Note:   "gmean IPC vs. amean bandwidth: the paper's claim is fdp holds the first column while shrinking the other two",
		Header: []string{"controller", "tags", "IPC", "BPKI", "bus-util", "final-level"},
	}
	for _, info := range infos {
		var ipcs, bpkis, utils, levels []float64
		for _, w := range ws {
			r := g.MustGet(w, info.Name)
			ipcs = append(ipcs, r.IPC)
			bpkis = append(bpkis, r.BPKI)
			utils = append(utils, attrOf(r).BusUtilization())
			levels = append(levels, float64(r.FinalLevel))
		}
		merged.AddRow(info.Name, strings.Join(info.Tags, ","),
			f3(stats.GeoMean(ipcs)), f2(stats.ArithMean(bpkis)),
			pct(stats.ArithMean(utils)), f1(stats.ArithMean(levels)))
	}

	return []Table{merged, ipc, bpki, busUtil}, nil
}
