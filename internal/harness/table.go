package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment output: one of the paper's tables or the
// data series behind one of its figures.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "  (%s)\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// String renders the table as aligned text — the same output Render
// writes, as a value. Shared by the experiments CLI and the sweep
// service's merged-results endpoint, so both surfaces produce identical
// tables.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// RenderCSV writes the table in RFC-4180 CSV: a comment-style title row,
// the header, then the data rows — machine-readable output for plotting.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"# " + t.Title}); err != nil {
		return err
	}
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f2, f3, f1 and pct are tiny formatting helpers shared by experiments.
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func u64(v uint64) string  { return fmt.Sprintf("%d", v) }

// deltaPct formats a percent change of next over base.
func deltaPct(base, next float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(next-base)/base)
}
