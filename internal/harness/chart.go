package harness

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// RenderChart draws the table as horizontal ASCII bar groups, one group
// per row, one bar per numeric column — a terminal rendition of the
// paper's figures. Non-numeric cells (percent signs are accepted) are
// skipped. width is the maximum bar length in characters.
func (t *Table) RenderChart(w io.Writer, width int) {
	if width <= 0 {
		width = 48
	}
	fmt.Fprintf(w, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "  (%s)\n", t.Note)
	}

	// Find the global maximum across numeric cells for a shared scale.
	max := 0.0
	numeric := func(s string) (float64, bool) {
		s = strings.TrimSuffix(strings.TrimSpace(s), "%")
		v, err := strconv.ParseFloat(s, 64)
		return v, err == nil && v >= 0
	}
	for _, row := range t.Rows {
		for _, cell := range row[1:] {
			if v, ok := numeric(cell); ok && v > max {
				max = v
			}
		}
	}
	if max == 0 {
		fmt.Fprintln(w, "  (no numeric data to chart)")
		return
	}

	labelW := 0
	for _, h := range t.Header[1:] {
		if len(h) > labelW {
			labelW = len(h)
		}
	}
	for _, row := range t.Rows {
		fmt.Fprintf(w, "%s\n", row[0])
		for i, cell := range row[1:] {
			v, ok := numeric(cell)
			if !ok {
				continue
			}
			n := int(v / max * float64(width))
			name := ""
			if i+1 < len(t.Header) {
				name = t.Header[i+1]
			}
			fmt.Fprintf(w, "  %-*s |%s %s\n", labelW, name, strings.Repeat("#", n), strings.TrimSpace(cell))
		}
	}
	fmt.Fprintln(w)
}
