package harness

import (
	"context"
	"fmt"
	"sync"

	"fdpsim/internal/control"
	"fdpsim/internal/series"
	"fdpsim/internal/sim"
)

// Interval-timeseries shoot-out: every registered feedback decision
// policy races the paper's Table 2 policy ("fdp") interval by interval
// instead of endpoint by endpoint. The controllers experiment compares
// where each policy lands; this one compares the trajectory it took —
// how far the IPC, bandwidth and aggressiveness-level series drift from
// the reference, and at which interval they first diverge. A policy can
// match fdp's final IPC while oscillating wildly on the way there; the
// RMS columns expose that.

func init() {
	registerExperiment("seriesdiff",
		"Interval-timeseries diff: each controller's trajectory vs. the Table 2 policy",
		runSeriesDiff)
}

// seriesDiffBaseline is the reference controller every other policy is
// diffed against.
const seriesDiffBaseline = "fdp"

// seriesDiffMetrics are the catalog columns the merged table summarises.
var seriesDiffMetrics = []string{"ipc", "bpki", "accuracy", "bus_util", "dcc_level"}

func runSeriesDiff(ctx context.Context, p Params) ([]Table, error) {
	ws := []string{"seqstream", "mixedphase", "chaserand"}
	infos := control.List()

	// The memo replays no tracer events, so the cells run through
	// sim.RunContext directly with a series recorder attached — recording
	// must not depend on whether an earlier experiment already simulated
	// the same configuration.
	workers := p.Workers
	if workers <= 0 {
		workers = 1
	}
	type cellKey struct{ workload, controller string }
	recorded := make(map[cellKey]*series.Series, len(ws)*len(infos))
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	sem := make(chan struct{}, workers)
	for _, w := range ws {
		for _, info := range infos {
			w, name := w, info.Name
			wg.Add(1)
			go func() {
				defer wg.Done()
				select {
				case sem <- struct{}{}:
					defer func() { <-sem }()
				case <-ctx.Done():
					return
				}
				cfg := withAttr(fullFDP(sim.PrefStream))
				cfg.Controller = name
				cfg.Workload = w
				cfg = p.apply(cfg)
				rec := &series.Recorder{}
				cfg.Tracer = rec
				if _, err := sim.RunContext(ctx, cfg); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("seriesdiff %s/%s: %w", w, name, err)
					}
					mu.Unlock()
					return
				}
				sr := rec.Series()
				sr.Meta.Workload = w
				sr.Meta.Prefetcher = string(cfg.Prefetcher)
				mu.Lock()
				recorded[cellKey{w, name}] = sr
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Merged head-to-head: one row per controller, residuals vs. the
	// baseline aggregated across workloads (mean RMS per banded metric,
	// max |delta| for the aggressiveness level, earliest divergence).
	merged := Table{
		Title: "Trajectory residuals vs. the fdp baseline (averaged over 3 workloads)",
		Note: "RMS of the per-interval delta series; first-div is the earliest interval any metric diverges; " +
			"verdict applies the default tolerance bands (internal/series)",
		Header: []string{"controller", "ipc-rms", "bpki-rms", "acc-rms", "busutil-rms", "level-max|d|", "first-div", "verdict"},
	}
	firstDiv := Table{
		Title:  "First diverging interval vs. fdp, per workload",
		Note:   "0 means the whole aligned series matched the baseline exactly",
		Header: append([]string{"controller"}, ws...),
	}
	for _, info := range infos {
		rms := map[string]float64{}
		var levelMax float64
		earliest := 0
		verdict := series.VerdictPass
		var perWorkload []string
		for _, w := range ws {
			base, okA := recorded[cellKey{w, seriesDiffBaseline}]
			cur, okB := recorded[cellKey{w, info.Name}]
			if !okA || !okB {
				return nil, fmt.Errorf("seriesdiff: missing series for %s/%s", w, info.Name)
			}
			rep := series.Diff(base, cur, series.Options{})
			if rep.Verdict == series.VerdictFail {
				verdict = series.VerdictFail
			}
			wFirst := 0
			for _, m := range rep.Metrics {
				for _, name := range seriesDiffMetrics {
					if m.Metric != name {
						continue
					}
					if name == "dcc_level" {
						if m.MaxAbs > levelMax {
							levelMax = m.MaxAbs
						}
					} else {
						rms[name] += m.RMS
					}
					if m.FirstDivergence > 0 && (wFirst == 0 || m.FirstDivergence < wFirst) {
						wFirst = m.FirstDivergence
					}
				}
			}
			if wFirst > 0 && (earliest == 0 || wFirst < earliest) {
				earliest = wFirst
			}
			perWorkload = append(perWorkload, fmt.Sprintf("%d", wFirst))
		}
		n := float64(len(ws))
		div := "-"
		if earliest > 0 {
			div = fmt.Sprintf("%d", earliest)
		}
		merged.AddRow(info.Name,
			f3(rms["ipc"]/n), f2(rms["bpki"]/n), f3(rms["accuracy"]/n),
			f3(rms["bus_util"]/n), f1(levelMax), div, verdict)
		firstDiv.AddRow(append([]string{info.Name}, perWorkload...)...)
	}

	return []Table{merged, firstDiv}, nil
}
