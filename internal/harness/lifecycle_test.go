package harness

import (
	"context"
	"errors"
	"sync"
	"testing"

	"fdpsim/internal/prefetch"
	"fdpsim/internal/sim"
)

func TestRunAllStopsAfterFirstError(t *testing.T) {
	ResetMemo()
	good := sim.Default()
	good.MaxInsts = 10_000
	bad := good
	bad.Workload = "does-not-exist"

	specs := []RunSpec{{Workload: "bad", Config: "c", Cfg: bad}}
	for _, w := range []string{"tinyloop", "cachefit", "seqstream", "hotcold"} {
		specs = append(specs, RunSpec{Workload: w, Config: "c", Cfg: withWorkload(good, w)})
	}

	var mu sync.Mutex
	completions := 0
	p := Params{Workers: 1, Progress: &Progress{
		OnRun: func(done, total int, spec RunSpec, res sim.Result, err error) {
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				completions++
			}
		},
	}}

	_, err := RunAll(context.Background(), specs, p)
	if err == nil {
		t.Fatal("bad spec did not fail the grid")
	}
	// The first real failure is reported, not the cancellation it triggered.
	if !errors.Is(err, sim.ErrUnknownWorkload) {
		t.Errorf("err = %v, want ErrUnknownWorkload", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if completions >= len(specs)-1 {
		t.Errorf("%d of %d sibling runs completed after the first error", completions, len(specs)-1)
	}
}

func TestRunAllHonoursContext(t *testing.T) {
	ResetMemo()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := sim.Default()
	cfg.MaxInsts = 10_000
	cfg.Workload = "tinyloop"
	_, err := RunAll(ctx, []RunSpec{{Workload: "tinyloop", Config: "c", Cfg: cfg}}, Params{Workers: 1})
	if !errors.Is(err, sim.ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunAll: err = %v", err)
	}
}

func TestRunAllStreamsSnapshots(t *testing.T) {
	ResetMemo()
	cfg := sim.WithFDP(sim.PrefStream)
	cfg.Workload = "seqstream"
	cfg.MaxInsts = 30_000
	cfg.FDP.TInterval = 256

	var mu sync.Mutex
	var got []sim.Snapshot
	p := Params{Workers: 1, Progress: &Progress{
		OnSnapshot: func(spec RunSpec, s sim.Snapshot) {
			mu.Lock()
			got = append(got, s)
			mu.Unlock()
		},
	}}
	if _, err := RunAll(context.Background(), []RunSpec{{Workload: "seqstream", Config: "c", Cfg: cfg}}, p); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("no snapshots streamed through the harness")
	}
	if !got[len(got)-1].Final {
		t.Error("final snapshot not streamed")
	}
}

func TestFingerprintSemantics(t *testing.T) {
	a := sim.WithFDP(sim.PrefStream)
	a.Workload = "seqstream"
	b := a
	b.Progress = func(sim.Snapshot) {} // observability must not split memo entries
	fpA, okA := sim.Fingerprint(a)
	fpB, okB := sim.Fingerprint(b)
	if !okA || !okB {
		t.Fatal("builtin prefetcher configs must be memoizable")
	}
	if fpA != fpB {
		t.Error("configs differing only in Progress fingerprint differently")
	}

	c := a
	c.Workload = "chaserand"
	if fpC, _ := sim.Fingerprint(c); fpC == fpA {
		t.Error("different workloads share a fingerprint")
	}

	// Custom prefetcher instances carry unexported state and pointer
	// identity; memoizing them is unsound.
	d := a
	d.Prefetcher = sim.PrefCustom
	d.Custom = prefetch.NewStream(4)
	if _, ok := sim.Fingerprint(d); ok {
		t.Error("PrefCustom config reported as memoizable")
	}
}
