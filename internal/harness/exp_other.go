package harness

import (
	"context"
	"fmt"

	"fdpsim/internal/core"
	"fdpsim/internal/prefetch"
	"fdpsim/internal/sim"
	"fdpsim/internal/stats"
	"fdpsim/internal/workload"
)

// Experiments beyond the stream-prefetcher core: the prefetch-cache
// comparison (Figures 11-12), the GHB C/DC and PC-stride prefetchers
// (Figure 13, Section 5.8), sensitivity (Table 7), the low-potential
// benchmarks (Figure 14), and the static configuration tables (1, 2, 3, 6).

func init() {
	registerExperiment("fig11", "Performance of prefetch cache vs. FDP (Figure 11)", runFig11)
	registerExperiment("fig12", "Bandwidth of prefetch cache vs. FDP (Figure 12)", runFig12)
	registerExperiment("fig13", "FDP on a GHB C/DC prefetcher (Figure 13)", runFig13)
	registerExperiment("stride", "FDP on a PC-based stride prefetcher (Section 5.8)", runStride)
	registerExperiment("table7", "Sensitivity to L2 size and memory latency (Table 7)", runTable7)
	registerExperiment("fig14", "Effect on the remaining low-potential benchmarks (Figure 14)", runFig14)
	registerExperiment("table1", "Stream prefetcher configurations (Table 1)", runTable1)
	registerExperiment("table2", "Aggressiveness adjustment policy (Table 2)", runTable2)
	registerExperiment("table3", "Baseline processor configuration (Table 3)", runTable3)
	registerExperiment("table6", "Hardware cost of FDP (Table 6)", runTable6)
}

func prefCacheGrid(ctx context.Context, p Params) (*Grid, []string, []string, error) {
	order := []string{cfgNoPref, "VA(base)", "VA+pc2KB", "VA+pc8KB", "VA+pc32KB", "VA+pc64KB", "VA+pc1MB", cfgFDP}
	configs := map[string]sim.Config{
		cfgNoPref:   noPref(),
		"VA(base)":  static(sim.PrefStream, 5),
		"VA+pc2KB":  withPrefCache(sim.PrefStream, 2),
		"VA+pc8KB":  withPrefCache(sim.PrefStream, 8),
		"VA+pc32KB": withPrefCache(sim.PrefStream, 32),
		"VA+pc64KB": withPrefCache(sim.PrefStream, 64),
		"VA+pc1MB":  withPrefCache(sim.PrefStream, 1024),
		cfgFDP:      fullFDP(sim.PrefStream),
	}
	ws := workload.MemoryIntensive()
	g, err := RunAll(ctx, labeled(ws, configs, order, p), p)
	return g, ws, order, err
}

func runFig11(ctx context.Context, p Params) ([]Table, error) {
	g, ws, order, err := prefCacheGrid(ctx, p)
	if err != nil {
		return nil, err
	}
	return []Table{metricTable("Figure 11: performance of prefetch caches vs. FDP (very aggressive prefetcher)",
		"paper: small (2-8KB) prefetch caches lose to prefetching into the L2; FDP ~ a 32-64KB prefetch cache",
		ws, order, g, ipcOf, f3, true)}, nil
}

func runFig12(ctx context.Context, p Params) ([]Table, error) {
	g, ws, order, err := prefCacheGrid(ctx, p)
	if err != nil {
		return nil, err
	}
	return []Table{metricTable("Figure 12: bandwidth of prefetch caches vs. FDP (BPKI)",
		"paper: FDP uses 16%/9% less bandwidth than 32KB/64KB prefetch-cache configurations",
		ws, order, g, bpkiOf, f1, false)}, nil
}

// altPrefetcherTables runs the Figure 13 / Section 5.8 comparison for a
// non-stream prefetcher.
func altPrefetcherTables(ctx context.Context, p Params, kind sim.PrefetcherKind, title, note string) ([]Table, error) {
	order := []string{cfgNoPref, cfgVC, cfgMid, cfgVA, cfgFDP}
	configs := map[string]sim.Config{
		cfgNoPref: noPref(),
		cfgVC:     static(kind, 1),
		cfgMid:    static(kind, 3),
		cfgVA:     static(kind, 5),
		cfgFDP:    fullFDP(kind),
	}
	ws := workload.MemoryIntensive()
	g, err := RunAll(ctx, labeled(ws, configs, order, p), p)
	if err != nil {
		return nil, err
	}
	ipc := metricTable(title+" — IPC", note, ws, order, g, ipcOf, f3, true)
	bpki := metricTable(title+" — BPKI", "", ws, order, g, bpkiOf, f1, false)
	return []Table{ipc, bpki}, nil
}

func runFig13(ctx context.Context, p Params) ([]Table, error) {
	return altPrefetcherTables(ctx, p, sim.PrefGHB,
		"Figure 13: FDP on the GHB C/DC delta-correlation prefetcher",
		"paper: FDP ~ best conventional GHB config with 20.8% less bandwidth; +9.9% IPC vs. equal-bandwidth config")
}

func runStride(ctx context.Context, p Params) ([]Table, error) {
	return altPrefetcherTables(ctx, p, sim.PrefStride,
		"Section 5.8: FDP on a PC-based stride prefetcher",
		"paper: +4% IPC and -24% bandwidth vs. the best conventional stride configuration")
}

func runTable7(ctx context.Context, p Params) ([]Table, error) {
	type point struct {
		label    string
		l2Blocks int
		latency  uint64 // scales the DRAM row latencies
	}
	points := []point{
		{"L2 512KB", 8192, 0},
		{"L2 1MB (base)", 16384, 0},
		{"L2 2MB", 32768, 0},
		{"mem lat ~250", 16384, 250},
		{"mem lat ~500 (base)", 16384, 500},
		{"mem lat ~1000", 16384, 1000},
		{"mem lat ~1500", 16384, 1500},
	}
	ws := workload.MemoryIntensive()
	t := Table{
		Title: "Table 7: FDP vs. conventional (Middle, Very Aggressive) across L2 sizes and memory latencies",
		Note: "paper: FDP wins IPC and saves bandwidth at every point; IPC gains grow with memory latency. " +
			"The Middle column shows the distance-coverage crossover: beyond ~1000-cycle latency a 16-block " +
			"distance no longer hides memory latency and Very Aggressive pulls ahead",
		Header: []string{"system", "Mid IPC", "VA IPC", "FDP IPC", "FDP vs VA", "Mid BPKI", "VA BPKI", "FDP BPKI", "dBPKI"},
	}
	for _, pt := range points {
		mk := func(base sim.Config) sim.Config {
			base.L2Blocks = pt.l2Blocks
			if pt.latency != 0 {
				// Scale the bank latencies so the minimum end-to-end
				// latency tracks the requested value (baseline 500).
				scale := float64(pt.latency) / 500
				base.DRAM.RowHit = uint64(float64(base.DRAM.RowHit) * scale)
				base.DRAM.RowConflict = uint64(float64(base.DRAM.RowConflict) * scale)
			}
			// Interval length is defined as half the L2 block count.
			if base.FDP.TInterval > uint64(pt.l2Blocks)/2 {
				base.FDP.TInterval = uint64(pt.l2Blocks) / 2
			}
			return base
		}
		configs := map[string]sim.Config{
			cfgMid: mk(static(sim.PrefStream, 3)),
			cfgVA:  mk(static(sim.PrefStream, 5)),
			cfgFDP: mk(fullFDP(sim.PrefStream)),
		}
		g, err := RunAll(ctx, labeled(ws, configs, []string{cfgMid, cfgVA, cfgFDP}, p), p)
		if err != nil {
			return nil, err
		}
		var midIPC, vaIPC, fdpIPC, midBPKI, vaBPKI, fdpBPKI []float64
		for _, w := range ws {
			mid, va, fd := g.MustGet(w, cfgMid), g.MustGet(w, cfgVA), g.MustGet(w, cfgFDP)
			midIPC = append(midIPC, mid.IPC)
			vaIPC = append(vaIPC, va.IPC)
			fdpIPC = append(fdpIPC, fd.IPC)
			midBPKI = append(midBPKI, mid.BPKI)
			vaBPKI = append(vaBPKI, va.BPKI)
			fdpBPKI = append(fdpBPKI, fd.BPKI)
		}
		mi, vi, fi := stats.GeoMean(midIPC), stats.GeoMean(vaIPC), stats.GeoMean(fdpIPC)
		mb, vb, fb := stats.ArithMean(midBPKI), stats.ArithMean(vaBPKI), stats.ArithMean(fdpBPKI)
		t.AddRow(pt.label, f3(mi), f3(vi), f3(fi), deltaPct(vi, fi), f2(mb), f2(vb), f2(fb), deltaPct(vb, fb))
	}
	return []Table{t}, nil
}

func runFig14(ctx context.Context, p Params) ([]Table, error) {
	order := []string{cfgNoPref, cfgVC, cfgMid, cfgVA, cfgFDP}
	configs := map[string]sim.Config{
		cfgNoPref: noPref(),
		cfgVC:     static(sim.PrefStream, 1),
		cfgMid:    static(sim.PrefStream, 3),
		cfgVA:     static(sim.PrefStream, 5),
		cfgFDP:    fullFDP(sim.PrefStream),
	}
	ws := workload.LowPotential()
	g, err := RunAll(ctx, labeled(ws, configs, order, p), p)
	if err != nil {
		return nil, err
	}
	ipc := metricTable("Figure 14: IPC on the remaining 9 low-potential benchmarks",
		"paper: FDP +0.4% over the best conventional config; no benchmark loses performance",
		ws, order, g, ipcOf, f3, true)
	bpki := metricTable("Figure 14: BPKI on the remaining 9 low-potential benchmarks", "",
		ws, order, g, bpkiOf, f1, false)
	return []Table{ipc, bpki}, nil
}

func runTable1(context.Context, Params) ([]Table, error) {
	t := Table{
		Title:  "Table 1: stream prefetcher aggressiveness configurations",
		Header: []string{"counter", "name", "distance", "degree"},
	}
	for lvl := 1; lvl <= 5; lvl++ {
		s := prefetch.StreamLevels[lvl]
		t.AddRow(fmt.Sprintf("%d", lvl), prefetch.LevelName(lvl),
			fmt.Sprintf("%d", s.Distance), fmt.Sprintf("%d", s.Degree))
	}
	g := Table{
		Title:  "Section 5.7: GHB C/DC aggressiveness (distance = degree)",
		Header: []string{"counter", "name", "degree"},
	}
	for lvl := 1; lvl <= 5; lvl++ {
		g.AddRow(fmt.Sprintf("%d", lvl), prefetch.LevelName(lvl),
			fmt.Sprintf("%d", prefetch.GHBDegrees[lvl]))
	}
	return []Table{t, g}, nil
}

func runTable2(context.Context, Params) ([]Table, error) {
	t := Table{
		Title:  "Table 2: using accuracy, lateness and pollution to adjust aggressiveness",
		Header: []string{"case", "accuracy", "lateness", "pollution", "update", "reason"},
	}
	for _, c := range core.Table2 {
		late, poll := "Not-Late", "Not-Polluting"
		if c.Late {
			late = "Late"
		}
		if c.Polluting {
			poll = "Polluting"
		}
		t.AddRow(fmt.Sprintf("%d", c.Case), c.Accuracy.String(), late, poll, c.Update.String(), c.Reason)
	}
	return []Table{t}, nil
}

func runTable3(context.Context, Params) ([]Table, error) {
	cfg := sim.Default()
	t := Table{
		Title:  "Table 3: baseline processor configuration",
		Header: []string{"component", "value"},
	}
	t.AddRow("core", fmt.Sprintf("%d-wide out-of-order, %d-entry ROB, %d L1D load ports",
		cfg.CPU.Width, cfg.CPU.ROB, cfg.CPU.LoadPorts))
	t.AddRow("L1D", fmt.Sprintf("%d KB, %d-way, %d-cycle, 64 B blocks",
		cfg.L1Blocks*64/1024, cfg.L1Ways, cfg.L1Latency))
	t.AddRow("L2", fmt.Sprintf("%d KB, %d-way, %d-cycle, %d MSHRs",
		cfg.L2Blocks*64/1024, cfg.L2Ways, cfg.L2Latency, cfg.MSHRs))
	t.AddRow("DRAM", fmt.Sprintf("%d banks, %d-block rows, min latency %d cycles",
		cfg.DRAM.Banks, cfg.DRAM.BlocksPerRow, cfg.DRAM.CmdLatency+cfg.DRAM.RowHit+cfg.DRAM.Transfer+cfg.L2Latency))
	t.AddRow("bus", fmt.Sprintf("%d cycles/64B block (4.5 GB/s at 4 GHz)", cfg.DRAM.Transfer))
	t.AddRow("queues", fmt.Sprintf("%d-entry demand/prefetch/writeback bus queues, %d-entry prefetch request queue",
		cfg.DRAM.QueueCap, cfg.PrefQueueCap))
	return []Table{t}, nil
}

func runTable6(context.Context, Params) ([]Table, error) {
	cfg := sim.Default()
	fdp := defaultFDPConfig()
	cost := core.CostFor(cfg.L2Blocks, cfg.MSHRs, fdp.FilterBits, float64(cfg.L2Blocks*64)/1024)
	t := Table{
		Title:  "Table 6: hardware cost of feedback directed prefetching",
		Note:   "paper: 2.54 KB total, 0.24% of a 1 MB L2",
		Header: []string{"structure", "bits"},
	}
	t.AddRow("pref-bit per L2 tag entry", fmt.Sprintf("%d", cost.CachePrefBits))
	t.AddRow("pollution filter", fmt.Sprintf("%d", cost.FilterBits))
	t.AddRow("16-bit feedback counters", fmt.Sprintf("%d", cost.CounterBits))
	t.AddRow("pref-bit per MSHR entry", fmt.Sprintf("%d", cost.MSHRPrefBits))
	t.AddRow("total", fmt.Sprintf("%d bits = %.2f KB (%.2f%% of L2)", cost.TotalBits, cost.TotalKB, cost.OverheadOfL2KB))
	return []Table{t}, nil
}
