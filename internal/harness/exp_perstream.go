package harness

import (
	"context"
	"fdpsim/internal/sim"
	"fdpsim/internal/workload"
)

// Per-stream adaptation study (footnote 8): the paper adjusts prefetcher
// behaviour globally, noting that per-stream adjustment "did not find much
// benefit". Here the per-stream alternative is a POWER4-style ramp: each
// tracking entry starts Very Conservative and earns aggressiveness (up to
// the global level) as its stream keeps producing demand accesses. The
// expectation is that ramping alone trims the junk short streams emit, and
// that stacking it on global FDP changes little — the footnote's finding.

func init() {
	registerExperiment("perstream", "Extension: per-stream ramping vs. global feedback (footnote 8)", runPerStream)
}

func runPerStream(ctx context.Context, p Params) ([]Table, error) {
	order := []string{cfgVA, "VA+Ramp", cfgFDP, "FDP+Ramp"}
	ramped := func(cfg sim.Config) sim.Config {
		cfg.PerStreamRamp = true
		return cfg
	}
	configs := map[string]sim.Config{
		cfgVA:      static(sim.PrefStream, 5),
		"VA+Ramp":  ramped(static(sim.PrefStream, 5)),
		cfgFDP:     fullFDP(sim.PrefStream),
		"FDP+Ramp": ramped(fullFDP(sim.PrefStream)),
	}
	ws := workload.MemoryIntensive()
	g, err := RunAll(ctx, labeled(ws, configs, order, p), p)
	if err != nil {
		return nil, err
	}
	ipc := metricTable("Extension: per-stream ramping vs. global FDP — IPC",
		"paper footnote 8: per-stream adjustment gave no significant benefit over global adjustment",
		ws, order, g, ipcOf, f3, true)
	bpki := metricTable("Extension: per-stream ramping vs. global FDP — BPKI", "",
		ws, order, g, bpkiOf, f1, false)
	return []Table{ipc, bpki}, nil
}
