package harness

import (
	"context"

	"fdpsim/internal/sim"
	"fdpsim/internal/stats"
	"fdpsim/internal/workload"
)

// Cycle-accounting and bandwidth-attribution experiment: where do the
// cycles and the bus go under no prefetching, a very aggressive
// conventional prefetcher, and FDP? The paper argues FDP's win is
// bandwidth-efficiency, not just IPC — this experiment shows the claim
// in the telemetry: bus utilization, per-kind occupancy, and the
// top-down stall breakdown.

func init() {
	registerExperiment("cycleacct", "Cycle accounting and bandwidth attribution (DESIGN.md observability)", runCycleAcct)
}

// withAttr enables the attribution layer on a configuration.
func withAttr(cfg sim.Config) sim.Config {
	cfg.Attribution = true
	return cfg
}

// attrOf returns the result's attribution block (the experiment enables
// it on every configuration, so a missing block is a harness bug).
func attrOf(r sim.Result) *stats.Attribution {
	if r.Attribution == nil {
		panic("harness: cycleacct result has no attribution block")
	}
	return r.Attribution
}

func runCycleAcct(ctx context.Context, p Params) ([]Table, error) {
	order := []string{cfgNoPref, cfgVA, cfgFDP}
	configs := map[string]sim.Config{
		cfgNoPref: withAttr(noPref()),
		cfgVA:     withAttr(static(sim.PrefStream, 5)),
		cfgFDP:    withAttr(fullFDP(sim.PrefStream)),
	}
	ws := workload.MemoryIntensive()
	g, err := RunAll(ctx, labeled(ws, configs, order, p), p)
	if err != nil {
		return nil, err
	}

	busUtil := metricTable("Bus utilization (data-bus occupancy / cycles)",
		"FDP should sit between NoPref and VeryAggr: it spends bus cycles only where feedback says prefetching pays",
		ws, order, g, func(r sim.Result) float64 { return attrOf(r).BusUtilization() }, pct, false)

	prefShare := metricTable("Prefetch share of bus occupancy",
		"of the cycles the bus is busy, how many carry prefetch traffic",
		ws, order[1:], g, func(r sim.Result) float64 {
			a := attrOf(r)
			if occ := a.BusOccupancy(); occ > 0 {
				return float64(a.BusPrefetchCycles) / float64(occ)
			}
			return 0
		}, pct, false)

	memStall := metricTable("Memory-stall share of cycles (load-miss + ROB-full + DRAM-backpressure)",
		"the top-down \"memory bound\" fraction; effective prefetching converts these cycles to retire cycles",
		ws, order, g, func(r sim.Result) float64 {
			b := attrOf(r).Cycles
			return b.Share(b.StallLoadMiss + b.StallROBFull + b.StallDRAMBP)
		}, pct, false)

	breakdown := Table{
		Title: "Top-down stall breakdown under FDP (percent of post-warmup cycles)",
		Note:  "rows sum to 100%: every cycle lands in exactly one bucket",
		Header: []string{"workload", "retire-full", "retire-part", "load-miss",
			"rob-full", "dram-bp", "ifetch", "frontend", "bus-util", "row-hit"},
	}
	for _, w := range ws {
		a := attrOf(g.MustGet(w, cfgFDP))
		b := a.Cycles
		breakdown.AddRow(w,
			pct(b.Share(b.RetireFull)), pct(b.Share(b.RetirePartial)),
			pct(b.Share(b.StallLoadMiss)), pct(b.Share(b.StallROBFull)),
			pct(b.Share(b.StallDRAMBP)), pct(b.Share(b.StallIFetch)),
			pct(b.Share(b.StallFrontend)),
			pct(a.BusUtilization()), pct(a.RowHitRate()))
	}

	pressure := Table{
		Title: "Memory-system pressure and prefetch timeliness under FDP",
		Note:  "occupancy means are per-cycle samples; fill-to-use/late-by are log-bucket quantile upper bounds in cycles",
		Header: []string{"workload", "mshr-mean", "dramq-mean", "row-hit",
			"fill-to-use p50", "fill-to-use p90", "late-by p50", "unused-pref"},
	}
	for _, w := range ws {
		a := attrOf(g.MustGet(w, cfgFDP))
		queueMean := (float64(a.QueueDemand.Total())*a.QueueDemand.Mean() +
			float64(a.QueuePrefetch.Total())*a.QueuePrefetch.Mean() +
			float64(a.QueueWriteback.Total())*a.QueueWriteback.Mean()) /
			float64(a.QueueDemand.Total()+a.QueuePrefetch.Total()+a.QueueWriteback.Total())
		pressure.AddRow(w,
			f2(a.MSHROcc.Mean()), f2(queueMean), pct(a.RowHitRate()),
			u64(a.FillToUse.Quantile(0.5)), u64(a.FillToUse.Quantile(0.9)),
			u64(a.LateBy.Quantile(0.5)), u64(a.PrefUnused))
	}

	return []Table{busUtil, prefShare, memStall, breakdown, pressure}, nil
}
