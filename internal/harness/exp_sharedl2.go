package harness

import (
	"context"
	"fmt"

	"fdpsim/internal/sim"
)

// Shared-L2 study (Section 4.3): "In systems with higher contention for
// the L2 cache space (e.g. ... many threads sharing the same L2),
// reducing the values of T_pollution, P_high or P_low may be desirable to
// reduce the cache pollution due to prefetching." Two threads share one
// hierarchy here — a stream that loves prefetching next to a
// cache-sensitive thread its junk can hurt — comparing conventional
// prefetching, FDP with default thresholds, and FDP with the reduced
// pollution thresholds the paper recommends.

func init() {
	registerExperiment("sharedl2", "Extension: threads sharing one L2, reduced pollution thresholds (Section 4.3)", runSharedL2)
}

func runSharedL2(ctx context.Context, p Params) ([]Table, error) {
	pairs := [][2]string{
		{"seqstream", "hotcold"},
		{"seqstream", "chaserand"},
		{"multistream", "mixedphase"},
	}
	type variant struct {
		name   string
		mutate func(*sim.Config)
	}
	variants := []variant{
		{"VeryAggr", func(c *sim.Config) { *c = static(sim.PrefStream, 5) }},
		{"FDP", func(c *sim.Config) { *c = fullFDP(sim.PrefStream) }},
		{"FDP reduced-poll", func(c *sim.Config) {
			*c = fullFDP(sim.PrefStream)
			c.FDP.Thresholds.TPollution /= 2
			c.FDP.Thresholds.PLow /= 2
			c.FDP.Thresholds.PHigh /= 2
		}},
	}
	t := Table{
		Title: "Extension: two threads sharing one L2 + prefetcher + FDP engine",
		Note: "Section 4.3 advises reducing the pollution thresholds when threads share the L2; " +
			"per-thread IPC, shared-hierarchy BPKI",
		Header: []string{"threads", "config", "IPC(t0)", "IPC(t1)", "aggregate", "BPKI", "pollution"},
	}
	for _, pair := range pairs {
		for _, v := range variants {
			var base sim.Config
			v.mutate(&base)
			base = p.apply(base)
			base.WarmupInsts = 0 // unsupported in SMT mode
			base.MaxInsts = p.Insts / 2
			res, err := sim.RunSMTContext(ctx, sim.SMTConfig{Base: base, Workloads: pair[:]})
			if err != nil {
				return nil, fmt.Errorf("%v/%s: %w", pair, v.name, err)
			}
			t.AddRow(pair[0]+"+"+pair[1], v.name,
				f3(res.Threads[0].IPC), f3(res.Threads[1].IPC),
				f3(res.AggregateIPC()), f1(res.BPKI), pct(res.Pollution))
		}
	}
	return []Table{t}, nil
}
