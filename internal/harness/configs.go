package harness

import (
	"fdpsim/internal/cache"
	"fdpsim/internal/core"
	"fdpsim/internal/sim"
	"fdpsim/internal/workload/spec"
)

// Configuration labels shared across experiments (the paper's legend).
const (
	cfgNoPref  = "NoPref"
	cfgVC      = "VeryCons"
	cfgCons    = "Cons"
	cfgMid     = "Middle"
	cfgAggr    = "Aggr"
	cfgVA      = "VeryAggr"
	cfgDynAggr = "DynAggr"
	cfgDynIns  = "VA+DynIns"
	cfgFDP     = "FDP"
	cfgAccOnly = "AccuracyOnly"
)

// noPref is the Table 3 baseline without a prefetcher.
func noPref() sim.Config { return sim.Default() }

// static returns a conventional prefetcher pinned at a Table 1 level.
func static(kind sim.PrefetcherKind, level int) sim.Config {
	return sim.Conventional(kind, level)
}

// dynAggr enables only Dynamic Aggressiveness (Section 5.1): feedback
// throttling with the baseline MRU insertion.
func dynAggr(kind sim.PrefetcherKind) sim.Config {
	cfg := sim.WithFDP(kind)
	cfg.FDP.DynamicInsertion = false
	cfg.FDP.StaticInsertion = cache.PosMRU
	return cfg
}

// dynIns enables only Dynamic Insertion (Section 5.2) on a very
// aggressive conventional prefetcher.
func dynIns(kind sim.PrefetcherKind) sim.Config {
	cfg := static(kind, 5)
	cfg.FDP.DynamicInsertion = true
	return cfg
}

// staticIns pins a very aggressive prefetcher with a static insertion
// position (Figure 7's comparison points).
func staticIns(kind sim.PrefetcherKind, pos cache.InsertPos) sim.Config {
	cfg := static(kind, 5)
	cfg.FDP.StaticInsertion = pos
	return cfg
}

// fullFDP enables both mechanisms (the paper's headline configuration).
func fullFDP(kind sim.PrefetcherKind) sim.Config { return sim.WithFDP(kind) }

// accuracyOnly is the Section 5.6 ablation.
func accuracyOnly(kind sim.PrefetcherKind) sim.Config {
	cfg := sim.WithFDP(kind)
	cfg.FDP.AccuracyOnly = true
	return cfg
}

// withPrefCache adds a separate prefetch cache of the given size to a very
// aggressive conventional prefetcher (Figures 11 and 12). A size of 2 KB
// is fully associative, larger sizes are 16-way, as in the paper.
func withPrefCache(kind sim.PrefetcherKind, kbytes int) sim.Config {
	cfg := static(kind, 5)
	cfg.PrefCacheBlocks = kbytes * 1024 / 64
	if kbytes <= 2 {
		cfg.PrefCacheWays = 0 // fully associative
	} else {
		cfg.PrefCacheWays = 16
	}
	return cfg
}

// labeled builds the (workload x config) cross product.
func labeled(workloads []string, configs map[string]sim.Config, order []string, p Params) []RunSpec {
	specs := make([]RunSpec, 0, len(workloads)*len(order))
	for _, w := range workloads {
		for _, c := range order {
			cfg := p.apply(configs[c])
			cfg.Workload = w
			specs = append(specs, RunSpec{Workload: w, Config: c, Cfg: cfg})
		}
	}
	return specs
}

// SpecGrid builds the (WorkloadSpec x config) cross product: the
// declarative counterpart of labeled, so ad-hoc workload specs fan out
// over the same experiment machinery as the built-in benchmark names.
// Each cell is keyed by (spec name, config label) in the result grid.
// Only single-lane specs are runnable by the single-core worker; RunAll
// surfaces sim.RunSpecContext's error for multi-lane ones.
func SpecGrid(workloads []*spec.Spec, configs map[string]sim.Config, order []string, p Params) []RunSpec {
	specs := make([]RunSpec, 0, len(workloads)*len(order))
	for _, sp := range workloads {
		for _, c := range order {
			cfg := p.apply(configs[c])
			cfg.Workload = sp.Name
			specs = append(specs, RunSpec{Workload: sp.Name, Config: c, Cfg: cfg, Spec: sp})
		}
	}
	return specs
}

// defaultFDPConfig exposes the FDP defaults for the static tables.
func defaultFDPConfig() core.Config { return core.DefaultConfig() }
