package harness

import (
	"context"
	"sync/atomic"
	"testing"

	"fdpsim/internal/sim"
	"fdpsim/internal/store"
)

// storeSpecs builds a small grid cheap enough for a unit test.
func storeSpecs() []RunSpec {
	mk := func(w string) RunSpec {
		cfg := sim.WithFDP(sim.PrefStream)
		cfg.Workload = w
		return RunSpec{Workload: w, Config: "FDP", Cfg: cfg}
	}
	return []RunSpec{mk("seqstream"), mk("shortstream")}
}

// TestRunAllReadsThroughStore is the restart scenario: a second process
// (simulated by ResetMemo) pointed at the same store directory must serve
// every cell from disk — observable as zero streamed snapshots, since
// cached simulations replay none.
func TestRunAllReadsThroughStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ResetMemo()
	defer ResetMemo()

	p := DefaultParams()
	p.Insts = 20_000
	p.Warmup = 0
	p.TInterval = 256
	p.Store = st

	specs := storeSpecs()
	g1, err := RunAll(context.Background(), specs, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != len(specs) {
		t.Fatalf("store holds %d entries after first run, want %d", st.Len(), len(specs))
	}

	// "Process restart": wipe the in-memory layer, keep the disk.
	ResetMemo()
	var snaps atomic.Int64
	p.Progress = &Progress{OnSnapshot: func(RunSpec, sim.Snapshot) { snaps.Add(1) }}
	g2, err := RunAll(context.Background(), specs, p)
	if err != nil {
		t.Fatal(err)
	}
	if n := snaps.Load(); n != 0 {
		t.Fatalf("store-served run streamed %d snapshots; it re-simulated", n)
	}
	for _, s := range specs {
		r1 := g1.MustGet(s.Workload, s.Config)
		r2 := g2.MustGet(s.Workload, s.Config)
		if r1.IPC != r2.IPC || r1.Counters.Cycles != r2.Counters.Cycles {
			t.Fatalf("%s: store round trip changed the result: %v vs %v", s.Workload, r1.IPC, r2.IPC)
		}
	}
}
