package harness

import (
	"context"
	"testing"
)

// TestEveryExperimentRunsAtSmallScale executes every registered experiment
// end-to-end at a tiny instruction budget: a structural regression test
// that each experiment builds valid configurations, survives its sweep,
// and renders non-empty tables.
func TestEveryExperimentRunsAtSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	ResetMemo()
	p := Params{Insts: 8_000, Warmup: 2_000, TInterval: 256, Seed: 1, Workers: 2}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(context.Background(), p)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tbl := range tables {
				if tbl.Title == "" || len(tbl.Header) == 0 {
					t.Fatalf("%s produced a malformed table: %+v", e.ID, tbl)
				}
				if len(tbl.Rows) == 0 {
					t.Fatalf("%s table %q has no rows", e.ID, tbl.Title)
				}
				for _, row := range tbl.Rows {
					if len(row) > len(tbl.Header) {
						t.Fatalf("%s table %q row wider than header: %v", e.ID, tbl.Title, row)
					}
				}
			}
		})
	}
}
