package harness

import (
	"context"
	"fmt"

	"fdpsim/internal/sim"
	"fdpsim/internal/stats"
	"fdpsim/internal/workload"
)

// Experiments for the stream prefetcher: Figures 1-3 and 5-10, Tables 4
// and 5, and the Section 5.6 accuracy-only ablation.

func init() {
	registerExperiment("fig1", "IPC vs. prefetcher aggressiveness (Figure 1)", runFig1)
	registerExperiment("fig2", "IPC and prefetch accuracy (Figure 2)", runFig2)
	registerExperiment("fig3", "IPC and prefetch lateness (Figure 3)", runFig3)
	registerExperiment("fig5", "Dynamic adjustment of aggressiveness (Figure 5)", runFig5)
	registerExperiment("fig6", "Distribution of the dynamic aggressiveness level (Figure 6)", runFig6)
	registerExperiment("fig7", "Dynamic adjustment of insertion policy (Figure 7)", runFig7)
	registerExperiment("fig8", "Distribution of the insertion position (Figure 8)", runFig8)
	registerExperiment("fig9", "Overall performance of FDP (Figure 9)", runFig9)
	registerExperiment("fig10", "Effect of FDP on bandwidth, BPKI (Figure 10)", runFig10)
	registerExperiment("table4", "Prefetches sent by a very aggressive stream prefetcher (Table 4)", runTable4)
	registerExperiment("table5", "Average IPC and BPKI, conventional vs. FDP (Table 5)", runTable5)
	registerExperiment("accuracyonly", "Accuracy-only feedback ablation (Section 5.6)", runAccuracyOnly)
}

// metricTable renders one column per configuration for a per-workload
// metric, with an averaging row (geometric mean for IPC-like metrics,
// arithmetic for BPKI-like, following the paper).
func metricTable(title, note string, workloads, order []string, g *Grid,
	metric func(sim.Result) float64, format func(float64) string, geo bool) Table {

	t := Table{Title: title, Note: note, Header: append([]string{"workload"}, order...)}
	cols := make([][]float64, len(order))
	for _, w := range workloads {
		row := []string{w}
		for i, c := range order {
			v := metric(g.MustGet(w, c))
			cols[i] = append(cols[i], v)
			row = append(row, format(v))
		}
		t.AddRow(row...)
	}
	avgLabel, avg := "amean", stats.ArithMean
	if geo {
		avgLabel, avg = "gmean", stats.GeoMean
	}
	row := []string{avgLabel}
	for i := range order {
		row = append(row, format(avg(cols[i])))
	}
	t.AddRow(row...)
	return t
}

func ipcOf(r sim.Result) float64  { return r.IPC }
func bpkiOf(r sim.Result) float64 { return r.BPKI }

// aggressivenessGrid runs the 4-configuration comparison of Figures 1-3.
func aggressivenessGrid(ctx context.Context, p Params) (*Grid, []string, []string, error) {
	order := []string{cfgNoPref, cfgVC, cfgMid, cfgVA}
	configs := map[string]sim.Config{
		cfgNoPref: noPref(),
		cfgVC:     static(sim.PrefStream, 1),
		cfgMid:    static(sim.PrefStream, 3),
		cfgVA:     static(sim.PrefStream, 5),
	}
	workloads := workload.MemoryIntensive()
	g, err := RunAll(ctx, labeled(workloads, configs, order, p), p)
	return g, workloads, order, err
}

func runFig1(ctx context.Context, p Params) ([]Table, error) {
	g, ws, order, err := aggressivenessGrid(ctx, p)
	if err != nil {
		return nil, err
	}
	return []Table{
		metricTable("Figure 1: IPC vs. prefetcher aggressiveness",
			"paper: very aggressive best on average (+84% over no prefetching) but large losses on some benchmarks",
			ws, order, g, ipcOf, f3, true),
	}, nil
}

func runFig2(ctx context.Context, p Params) ([]Table, error) {
	g, ws, order, err := aggressivenessGrid(ctx, p)
	if err != nil {
		return nil, err
	}
	prefOrder := order[1:] // accuracy is undefined without a prefetcher
	return []Table{
		metricTable("Figure 2 (left): IPC", "", ws, order, g, ipcOf, f3, true),
		metricTable("Figure 2 (right): prefetch accuracy",
			"paper: accuracy < 40% => prefetching degrades performance",
			ws, prefOrder, g, func(r sim.Result) float64 { return r.Accuracy }, pct, false),
	}, nil
}

func runFig3(ctx context.Context, p Params) ([]Table, error) {
	g, ws, order, err := aggressivenessGrid(ctx, p)
	if err != nil {
		return nil, err
	}
	prefOrder := order[1:]
	return []Table{
		metricTable("Figure 3 (left): IPC", "", ws, order, g, ipcOf, f3, true),
		metricTable("Figure 3 (right): prefetch lateness",
			"paper: lateness decreases as the prefetcher becomes more aggressive",
			ws, prefOrder, g, func(r sim.Result) float64 { return r.Lateness }, pct, false),
	}, nil
}

func runFig5(ctx context.Context, p Params) ([]Table, error) {
	order := []string{cfgNoPref, cfgVC, cfgMid, cfgVA, cfgDynAggr}
	configs := map[string]sim.Config{
		cfgNoPref:  noPref(),
		cfgVC:      static(sim.PrefStream, 1),
		cfgMid:     static(sim.PrefStream, 3),
		cfgVA:      static(sim.PrefStream, 5),
		cfgDynAggr: dynAggr(sim.PrefStream),
	}
	ws := workload.MemoryIntensive()
	g, err := RunAll(ctx, labeled(ws, configs, order, p), p)
	if err != nil {
		return nil, err
	}
	return []Table{
		metricTable("Figure 5: dynamic adjustment of prefetcher aggressiveness",
			"paper: Dynamic Aggressiveness ~ per-benchmark best static configuration; +4.7% over Very Aggressive",
			ws, order, g, ipcOf, f3, true),
	}, nil
}

func runFig6(ctx context.Context, p Params) ([]Table, error) {
	ws := workload.MemoryIntensive()
	configs := map[string]sim.Config{cfgDynAggr: dynAggr(sim.PrefStream)}
	g, err := RunAll(ctx, labeled(ws, configs, []string{cfgDynAggr}, p), p)
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  "Figure 6: distribution of the dynamic aggressiveness level (percent of sampling intervals)",
		Note:   "paper: prefetch-hostile benchmarks sit at Very Conservative >98% of intervals; streaming ones at Very Aggressive",
		Header: []string{"workload", "VeryCons", "Cons", "Middle", "Aggr", "VeryAggr", "intervals"},
	}
	for _, w := range ws {
		r := g.MustGet(w, cfgDynAggr)
		row := []string{w}
		for i := 0; i < 5; i++ {
			row = append(row, pct(r.LevelDist.Fraction(i)))
		}
		row = append(row, fmt.Sprintf("%d", r.Intervals))
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

func runFig7(ctx context.Context, p Params) ([]Table, error) {
	order := []string{"LRU", "LRU-4", "MID", "MRU", "DynIns"}
	configs := map[string]sim.Config{
		"LRU":    staticIns(sim.PrefStream, 0),
		"LRU-4":  staticIns(sim.PrefStream, 1),
		"MID":    staticIns(sim.PrefStream, 2),
		"MRU":    staticIns(sim.PrefStream, 3),
		"DynIns": dynIns(sim.PrefStream),
	}
	ws := workload.MemoryIntensive()
	g, err := RunAll(ctx, labeled(ws, configs, order, p), p)
	if err != nil {
		return nil, err
	}
	return []Table{
		metricTable("Figure 7: cache insertion policy of prefetched blocks (very aggressive prefetcher)",
			"paper: LRU-4 best static (+3.2% over MRU); Dynamic Insertion beats all statics (+5.1% over MRU)",
			ws, order, g, ipcOf, f3, true),
	}, nil
}

func runFig8(ctx context.Context, p Params) ([]Table, error) {
	ws := workload.MemoryIntensive()
	configs := map[string]sim.Config{"DynIns": dynIns(sim.PrefStream)}
	g, err := RunAll(ctx, labeled(ws, configs, []string{"DynIns"}, p), p)
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  "Figure 8: distribution of the insertion position of prefetched blocks (Dynamic Insertion)",
		Note:   "paper: benchmarks best served by LRU insertion place >50% of prefetches at LRU",
		Header: []string{"workload", "LRU", "LRU-4", "MID", "MRU"},
	}
	for _, w := range ws {
		r := g.MustGet(w, "DynIns")
		t.AddRow(w,
			pct(r.InsertDist.Fraction(0)), pct(r.InsertDist.Fraction(1)),
			pct(r.InsertDist.Fraction(2)), pct(r.InsertDist.Fraction(3)))
	}
	return []Table{t}, nil
}

// overallGrid runs Figure 9/10's five configurations.
func overallGrid(ctx context.Context, p Params) (*Grid, []string, []string, error) {
	order := []string{cfgNoPref, cfgVA, cfgDynIns, cfgDynAggr, cfgFDP}
	configs := map[string]sim.Config{
		cfgNoPref:  noPref(),
		cfgVA:      static(sim.PrefStream, 5),
		cfgDynIns:  dynIns(sim.PrefStream),
		cfgDynAggr: dynAggr(sim.PrefStream),
		cfgFDP:     fullFDP(sim.PrefStream),
	}
	ws := workload.MemoryIntensive()
	g, err := RunAll(ctx, labeled(ws, configs, order, p), p)
	return g, ws, order, err
}

func runFig9(ctx context.Context, p Params) ([]Table, error) {
	g, ws, order, err := overallGrid(ctx, p)
	if err != nil {
		return nil, err
	}
	t := metricTable("Figure 9: overall performance of FDP",
		"paper: DynAggr+DynIns best overall (+6.5% over Very Aggressive); no benchmark loses vs. no prefetching",
		ws, order, g, ipcOf, f3, true)
	return []Table{t}, nil
}

func runFig10(ctx context.Context, p Params) ([]Table, error) {
	g, ws, order, err := overallGrid(ctx, p)
	if err != nil {
		return nil, err
	}
	t := metricTable("Figure 10: memory bus accesses per 1000 instructions (BPKI)",
		"paper: FDP consumes 18.7% less bandwidth than Very Aggressive while performing 6.5% better",
		ws, order, g, bpkiOf, f1, false)
	return []Table{t}, nil
}

func runTable4(ctx context.Context, p Params) ([]Table, error) {
	ws := workload.Names()
	configs := map[string]sim.Config{cfgVA: static(sim.PrefStream, 5)}
	g, err := RunAll(ctx, labeled(ws, configs, []string{cfgVA}, p), p)
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  "Table 4: prefetches sent to memory by a very aggressive stream prefetcher",
		Note:   fmt.Sprintf("per %d instructions; the memory-intensive set is defined by high prefetch counts", p.Insts),
		Header: []string{"workload", "set", "prefetches sent", "prefetches issued"},
	}
	for _, w := range ws {
		r := g.MustGet(w, cfgVA)
		set := "low-potential"
		if s, _ := workload.Lookup(w); s.MemoryIntensive {
			set = "memory-intensive"
		}
		t.AddRow(w, set, fmt.Sprintf("%d", r.Counters.PrefSent), fmt.Sprintf("%d", r.Counters.PrefIssued))
	}
	return []Table{t}, nil
}

func runTable5(ctx context.Context, p Params) ([]Table, error) {
	order := []string{cfgNoPref, cfgVC, cfgMid, cfgVA, cfgFDP}
	configs := map[string]sim.Config{
		cfgNoPref: noPref(),
		cfgVC:     static(sim.PrefStream, 1),
		cfgMid:    static(sim.PrefStream, 3),
		cfgVA:     static(sim.PrefStream, 5),
		cfgFDP:    fullFDP(sim.PrefStream),
	}
	ws := workload.MemoryIntensive()
	g, err := RunAll(ctx, labeled(ws, configs, order, p), p)
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  "Table 5: average IPC (gmean) and BPKI (amean), conventional prefetching vs. FDP",
		Note:   "paper: FDP = +6.5% IPC and -18.7% BPKI vs. Very Aggressive; +13.6% IPC vs. the equal-bandwidth Middle config",
		Header: []string{"metric", cfgNoPref, cfgVC, cfgMid, cfgVA, cfgFDP},
	}
	var ipcRow, bpkiRow []string
	var ipcs, bpkis []float64
	for _, c := range order {
		var is, bs []float64
		for _, w := range ws {
			r := g.MustGet(w, c)
			is = append(is, r.IPC)
			bs = append(bs, r.BPKI)
		}
		ipcs = append(ipcs, stats.GeoMean(is))
		bpkis = append(bpkis, stats.ArithMean(bs))
	}
	ipcRow = []string{"IPC"}
	bpkiRow = []string{"BPKI"}
	for i := range order {
		ipcRow = append(ipcRow, f3(ipcs[i]))
		bpkiRow = append(bpkiRow, f2(bpkis[i]))
	}
	t.AddRow(ipcRow...)
	t.AddRow(bpkiRow...)
	t.AddRow("IPC vs VA", deltaPct(ipcs[3], ipcs[0]), deltaPct(ipcs[3], ipcs[1]),
		deltaPct(ipcs[3], ipcs[2]), "-", deltaPct(ipcs[3], ipcs[4]))
	t.AddRow("BPKI vs VA", deltaPct(bpkis[3], bpkis[0]), deltaPct(bpkis[3], bpkis[1]),
		deltaPct(bpkis[3], bpkis[2]), "-", deltaPct(bpkis[3], bpkis[4]))
	return []Table{t}, nil
}

func runAccuracyOnly(ctx context.Context, p Params) ([]Table, error) {
	order := []string{cfgVA, cfgAccOnly, cfgFDP}
	configs := map[string]sim.Config{
		cfgVA:      static(sim.PrefStream, 5),
		cfgAccOnly: accuracyOnly(sim.PrefStream),
		cfgFDP:     fullFDP(sim.PrefStream),
	}
	ws := workload.MemoryIntensive()
	g, err := RunAll(ctx, labeled(ws, configs, order, p), p)
	if err != nil {
		return nil, err
	}
	ipc := metricTable("Section 5.6: accuracy-only feedback vs. comprehensive FDP — IPC",
		"paper: the comprehensive mechanism is +3.4% IPC and -2.5% bandwidth vs. accuracy-only throttling",
		ws, order, g, ipcOf, f3, true)
	bpki := metricTable("Section 5.6: accuracy-only feedback vs. comprehensive FDP — BPKI", "",
		ws, order, g, bpkiOf, f1, false)
	return []Table{ipc, bpki}, nil
}
