package harness

import (
	"context"
	"fmt"

	"fdpsim/internal/sim"
	"fdpsim/internal/stats"
)

// Ablation experiments for the design choices the paper fixes without
// exploring (Section 4.3 notes that tuning the thresholds, and the
// structures behind them, is out of its scope): classification-threshold
// sensitivity, sampling-interval length, pollution-filter size, and the
// bandwidth-constrained threshold adjustment the paper recommends for
// systems with higher bus contention.

func init() {
	registerExperiment("thresholds", "Ablation: sensitivity to the accuracy thresholds (Section 4.3)", runThresholds)
	registerExperiment("tinterval", "Ablation: sampling-interval length (Section 3.2)", runTInterval)
	registerExperiment("filtersize", "Ablation: pollution-filter size (Figure 4)", runFilterSize)
	registerExperiment("buswidth", "Ablation: bandwidth-constrained thresholds (Section 4.3)", runBusWidth)
}

// ablationWorkloads is a representative subset: a clean stream, the two
// prefetch losers, a phase alternator and a medium-gain irregular.
var ablationWorkloads = []string{"seqstream", "chaserand", "randsparse", "mixedphase", "spmv"}

// summarize runs FDP with a mutated configuration over the ablation
// subset and returns (gmean IPC, amean BPKI).
func summarize(ctx context.Context, p Params, mutate func(*sim.Config)) (float64, float64, error) {
	cfg := fullFDP(sim.PrefStream)
	mutate(&cfg)
	configs := map[string]sim.Config{"x": cfg}
	g, err := RunAll(ctx, labeled(ablationWorkloads, configs, []string{"x"}, p), p)
	if err != nil {
		return 0, 0, err
	}
	var ipcs, bpkis []float64
	for _, w := range ablationWorkloads {
		r := g.MustGet(w, "x")
		ipcs = append(ipcs, r.IPC)
		bpkis = append(bpkis, r.BPKI)
	}
	return stats.GeoMean(ipcs), stats.ArithMean(bpkis), nil
}

func runThresholds(ctx context.Context, p Params) ([]Table, error) {
	t := Table{
		Title: "Ablation: FDP accuracy-threshold sensitivity (gmean IPC / amean BPKI over 5 workloads)",
		Note: "the paper uses untuned static thresholds and argues the mechanism is robust; " +
			"wider or narrower accuracy bands should move results only slightly",
		Header: []string{"A_low", "A_high", "IPC", "BPKI"},
	}
	for _, th := range [][2]float64{{0.20, 0.60}, {0.40, 0.75}, {0.40, 0.90}, {0.60, 0.90}} {
		lo, hi := th[0], th[1]
		ipc, bpki, err := summarize(ctx, p, func(c *sim.Config) {
			c.FDP.Thresholds.ALow = lo
			c.FDP.Thresholds.AHigh = hi
		})
		if err != nil {
			return nil, err
		}
		row := []string{f2(lo), f2(hi), f3(ipc), f1(bpki)}
		if lo == 0.40 && hi == 0.75 {
			row[1] += " (base)"
		}
		t.AddRow(row...)
	}
	return []Table{t}, nil
}

func runTInterval(ctx context.Context, p Params) ([]Table, error) {
	t := Table{
		Title: "Ablation: FDP sampling-interval length (gmean IPC / amean BPKI over 5 workloads)",
		Note: "short intervals adapt faster but on noisier estimates; the paper's 8192 " +
			"(half the L2's blocks) assumes 250M-instruction runs",
		Header: []string{"T_interval", "IPC", "BPKI", "intervals(chaserand)"},
	}
	for _, ti := range []uint64{256, 1024, 4096, 8192} {
		ipc, bpki, err := summarize(ctx, p, func(c *sim.Config) { c.FDP.TInterval = ti })
		if err != nil {
			return nil, err
		}
		// Pull the interval count for one hostile workload for context.
		cfg := p.apply(fullFDP(sim.PrefStream))
		cfg.FDP.TInterval = ti
		cfg.Workload = "chaserand"
		g, err := RunAll(ctx, []RunSpec{{Workload: "chaserand", Config: "i", Cfg: cfg}}, p)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", ti), f3(ipc), f1(bpki),
			fmt.Sprintf("%d", g.MustGet("chaserand", "i").Intervals))
	}
	return []Table{t}, nil
}

func runFilterSize(ctx context.Context, p Params) ([]Table, error) {
	t := Table{
		Title: "Ablation: pollution-filter size (gmean IPC / amean BPKI over 5 workloads)",
		Note: "smaller filters alias more (overestimating pollution); the paper provisions " +
			"4096 bits",
		Header: []string{"filter bits", "IPC", "BPKI", "pollution(chaserand)"},
	}
	for _, bits := range []int{512, 1024, 4096, 16384} {
		ipc, bpki, err := summarize(ctx, p, func(c *sim.Config) { c.FDP.FilterBits = bits })
		if err != nil {
			return nil, err
		}
		cfg := p.apply(fullFDP(sim.PrefStream))
		cfg.FDP.FilterBits = bits
		cfg.Workload = "chaserand"
		g, err := RunAll(ctx, []RunSpec{{Workload: "chaserand", Config: "f", Cfg: cfg}}, p)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", bits), f3(ipc), f1(bpki),
			pct(g.MustGet("chaserand", "f").Pollution))
	}
	return []Table{t}, nil
}

func runBusWidth(ctx context.Context, p Params) ([]Table, error) {
	// Section 4.3: "In systems where bandwidth contention is estimated to
	// be higher, A_high and A_low thresholds can be increased to restrict
	// the prefetcher from being too aggressive." Halve the bus bandwidth
	// and compare default thresholds against raised ones.
	t := Table{
		Title:  "Ablation: raised accuracy thresholds under a half-bandwidth bus (Section 4.3)",
		Note:   "with scarcer bandwidth, stricter accuracy demands should save BPKI at little IPC cost",
		Header: []string{"bus", "thresholds", "IPC", "BPKI"},
	}
	type variant struct {
		label    string
		transfer uint64 // cycles per block
		raise    bool
	}
	for _, v := range []variant{
		{"baseline (4.5 GB/s)", 57, false},
		{"half (2.25 GB/s)", 114, false},
		{"half (2.25 GB/s)", 114, true},
	} {
		th := "default"
		ipc, bpki, err := summarize(ctx, p, func(c *sim.Config) {
			c.DRAM.Transfer = v.transfer
			if v.raise {
				c.FDP.Thresholds.ALow = 0.60
				c.FDP.Thresholds.AHigh = 0.90
			}
		})
		if err != nil {
			return nil, err
		}
		if v.raise {
			th = "raised (0.60/0.90)"
		}
		t.AddRow(v.label, th, f3(ipc), f1(bpki))
	}
	return []Table{t}, nil
}
