package harness

import (
	"context"
	"strings"
	"testing"

	"fdpsim/internal/sim"
	"fdpsim/internal/workload/spec"
)

func testParams() Params {
	return Params{Insts: 15_000, TInterval: 512, Seed: 1, Workers: 2}
}

func TestExperimentRegistry(t *testing.T) {
	want := []string{
		"accuracyonly", "buswidth", "controllers", "cycleacct", "dahlgren", "fig1", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "filtersize", "hybrid",
		"multicore", "perstream", "seriesdiff", "sharedl2", "stride", "table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"thresholds", "timeline", "tinterval",
	}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := Lookup("fig9"); !ok {
		t.Fatal("Lookup(fig9) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown id succeeded")
	}
}

func TestStaticTablesRender(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3", "table6"} {
		e, _ := Lookup(id)
		tables, err := e.Run(context.Background(), Params{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		var sb strings.Builder
		for i := range tables {
			tables[i].Render(&sb)
		}
		out := sb.String()
		if !strings.Contains(out, tables[0].Title) {
			t.Fatalf("%s render missing title", id)
		}
	}
}

func TestTable2RenderMatchesPaperRows(t *testing.T) {
	e, _ := Lookup("table2")
	tables, _ := e.Run(context.Background(), Params{})
	var sb strings.Builder
	tables[0].Render(&sb)
	for _, frag := range []string{"best case configuration", "to save bandwidth", "Increment", "Decrement"} {
		if !strings.Contains(sb.String(), frag) {
			t.Errorf("table2 render missing %q", frag)
		}
	}
}

func TestRunAllParallelAndMemoized(t *testing.T) {
	ResetMemo()
	cfg := sim.Default()
	cfg.MaxInsts = 10_000
	specs := []RunSpec{
		{Workload: "tinyloop", Config: "a", Cfg: withWorkload(cfg, "tinyloop")},
		{Workload: "cachefit", Config: "a", Cfg: withWorkload(cfg, "cachefit")},
	}
	g, err := RunAll(context.Background(), specs, Params{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	r1 := g.MustGet("tinyloop", "a")
	if r1.IPC <= 0 {
		t.Fatal("empty result")
	}
	// Second run must return the memoized result (same values).
	g2, err := RunAll(context.Background(), specs, Params{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g2.MustGet("tinyloop", "a").IPC != r1.IPC {
		t.Fatal("memoized result differs")
	}
	if _, ok := g.Get("missing", "a"); ok {
		t.Fatal("Get of missing cell succeeded")
	}
}

func withWorkload(cfg sim.Config, w string) sim.Config {
	cfg.Workload = w
	return cfg
}

func TestRunAllPropagatesErrors(t *testing.T) {
	cfg := sim.Default()
	cfg.MaxInsts = 1000
	cfg.Workload = "does-not-exist"
	_, err := RunAll(context.Background(), []RunSpec{{Workload: "x", Config: "y", Cfg: cfg}}, Params{Workers: 1})
	if err == nil {
		t.Fatal("bad workload did not error")
	}
}

func TestSmallExperimentEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	ResetMemo()
	e, _ := Lookup("fig14")
	tables, err := e.Run(context.Background(), testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("fig14 produced %d tables", len(tables))
	}
	// 9 workloads + mean row.
	if len(tables[0].Rows) != 10 {
		t.Fatalf("fig14 IPC table has %d rows", len(tables[0].Rows))
	}
}

func TestMetricTableAveraging(t *testing.T) {
	g := &Grid{results: map[string]sim.Result{
		"w1\x00c": {IPC: 1, BPKI: 10},
		"w2\x00c": {IPC: 4, BPKI: 30},
	}}
	tbl := metricTable("t", "", []string{"w1", "w2"}, []string{"c"}, g, ipcOf, f3, true)
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "gmean" || last[1] != "2.000" {
		t.Fatalf("gmean row = %v", last)
	}
	tbl = metricTable("t", "", []string{"w1", "w2"}, []string{"c"}, g, bpkiOf, f1, false)
	last = tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "amean" || last[1] != "20.0" {
		t.Fatalf("amean row = %v", last)
	}
}

func TestFormatHelpers(t *testing.T) {
	if pct(0.123) != "12.3%" || f3(1.5) != "1.500" || f2(1.25) != "1.25" || f1(3.14) != "3.1" {
		t.Fatal("format helpers wrong")
	}
	if deltaPct(2, 3) != "+50.0%" || deltaPct(0, 1) != "n/a" {
		t.Fatal("deltaPct wrong")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.Insts == 0 || p.Workers == 0 || p.TInterval == 0 {
		t.Fatalf("defaults incomplete: %+v", p)
	}
	cfg := p.apply(sim.Default())
	if cfg.MaxInsts != p.Insts || cfg.FDP.TInterval != p.TInterval {
		t.Fatal("apply did not stamp params")
	}
}

func TestConfigBuilders(t *testing.T) {
	if c := dynAggr(sim.PrefStream); !c.FDP.DynamicAggressiveness || c.FDP.DynamicInsertion {
		t.Fatal("dynAggr flags wrong")
	}
	if c := dynIns(sim.PrefStream); c.FDP.DynamicAggressiveness || !c.FDP.DynamicInsertion || c.StaticLevel != 5 {
		t.Fatal("dynIns flags wrong")
	}
	if c := fullFDP(sim.PrefStream); !c.FDP.DynamicAggressiveness || !c.FDP.DynamicInsertion {
		t.Fatal("fullFDP flags wrong")
	}
	if c := accuracyOnly(sim.PrefStream); !c.FDP.AccuracyOnly {
		t.Fatal("accuracyOnly flag missing")
	}
	if c := withPrefCache(sim.PrefStream, 2); c.PrefCacheBlocks != 32 || c.PrefCacheWays != 0 {
		t.Fatalf("2KB prefetch cache = %d blocks, %d ways", c.PrefCacheBlocks, c.PrefCacheWays)
	}
	if c := withPrefCache(sim.PrefStream, 32); c.PrefCacheBlocks != 512 || c.PrefCacheWays != 16 {
		t.Fatal("32KB prefetch cache wrong")
	}
}

// harnessSpec is a small single-lane WorkloadSpec for grid tests.
func harnessSpec(name string) *spec.Spec {
	return &spec.Spec{
		Name: name,
		Phases: []spec.Phase{
			{Ops: 4000, Clients: []spec.Client{
				{Name: "scan", Pattern: spec.Pattern{Kind: spec.KindStride, FootprintKB: 1024, Gap: 1}},
				{Name: "serve", Weight: 2, Pattern: spec.Pattern{Kind: spec.KindChase, FootprintKB: 256}},
			}},
		},
	}
}

func TestSpecGridRunAll(t *testing.T) {
	ResetMemo()
	sp := harnessSpec("grid.mix")
	configs := map[string]sim.Config{
		cfgVA:  static(sim.PrefStream, 5),
		cfgFDP: fullFDP(sim.PrefStream),
	}
	order := []string{cfgVA, cfgFDP}
	p := Params{Insts: 10_000, TInterval: 256, Seed: 3, Workers: 2}
	specs := SpecGrid([]*spec.Spec{sp}, configs, order, p)
	if len(specs) != 2 {
		t.Fatalf("SpecGrid built %d cells, want 2", len(specs))
	}
	for _, s := range specs {
		if s.Spec != sp || s.Workload != "grid.mix" || s.Cfg.Workload != "grid.mix" {
			t.Fatalf("malformed cell: %+v", s)
		}
		if s.Cfg.MaxInsts != p.Insts || s.Cfg.Seed != p.Seed {
			t.Fatal("params not stamped on spec cells")
		}
	}
	g, err := RunAll(context.Background(), specs, p)
	if err != nil {
		t.Fatal(err)
	}
	r := g.MustGet("grid.mix", cfgFDP)
	if r.IPC <= 0 || r.Workload != "grid.mix" {
		t.Fatalf("spec cell result: %+v", r)
	}
	// Spec cells memoize under FingerprintSpec: a second RunAll is a pure
	// cache hit with identical values.
	g2, err := RunAll(context.Background(), specs, p)
	if err != nil {
		t.Fatal(err)
	}
	if g2.MustGet("grid.mix", cfgFDP).Counters != r.Counters {
		t.Fatal("memoized spec result differs")
	}
	// A named cell with the same workload string must not alias the spec
	// cell's memo entry (FingerprintSpec is domain-separated).
	fpSpec, ok := sim.FingerprintSpec(specs[0].Cfg, sp)
	if !ok {
		t.Fatal("FingerprintSpec failed")
	}
	if fpNamed, ok := sim.Fingerprint(specs[0].Cfg); ok && fpNamed == fpSpec {
		t.Fatal("spec and named fingerprints alias")
	}
}

func TestSpecGridInvalidSpecPropagates(t *testing.T) {
	bad := &spec.Spec{Name: "bad"}
	p := Params{Insts: 1000, Workers: 1}
	specs := SpecGrid([]*spec.Spec{bad}, map[string]sim.Config{"a": sim.Default()}, []string{"a"}, p)
	if _, err := RunAll(context.Background(), specs, p); err == nil {
		t.Fatal("invalid spec cell did not error")
	}
}
