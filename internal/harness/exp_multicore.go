package harness

import (
	"context"
	"fmt"

	"fdpsim/internal/sim"
)

// Multi-core extension: the paper's introduction argues that bandwidth
// contention from prefetching "will become more significant as more and
// more processing cores are integrated onto the same die", making
// bandwidth-efficient prefetching more valuable. This experiment puts
// that claim to the test: cores with private hierarchies contend for one
// 4.5 GB/s bus, comparing conventional very aggressive prefetching on
// every core against per-core FDP.

func init() {
	registerExperiment("multicore", "Extension: per-core FDP on a shared memory bus (CMP motivation)", runMulticore)
	registerExperiment("dahlgren", "Extension: FDP vs. Dahlgren adaptive sequential prefetching (Section 6.1)", runDahlgren)
	registerExperiment("hybrid", "Extension: FDP on a stream+stride hybrid prefetcher", runHybrid)
}

func runMulticore(ctx context.Context, p Params) ([]Table, error) {
	type scenario struct {
		name      string
		workloads []string
	}
	scenarios := []scenario{
		{"2x seqstream", []string{"seqstream", "seqstream"}},
		{"2x multistream", []string{"multistream", "multistream"}},
		{"stream+hostile", []string{"seqstream", "chaserand"}},
		{"4-core mix", []string{"seqstream", "multistream", "chaserand", "mixedphase"}},
	}
	mkCfg := func(mode string, workload string) sim.Config {
		var cfg sim.Config
		switch mode {
		case cfgNoPref:
			cfg = noPref()
		case cfgVA:
			cfg = static(sim.PrefStream, 5)
		default:
			cfg = fullFDP(sim.PrefStream)
		}
		cfg = p.apply(cfg)
		cfg.MaxInsts = p.Insts / 2 // per-core budget
		cfg.Workload = workload
		return cfg
	}
	t := Table{
		Title: "Extension: chip multiprocessor with a shared 4.5 GB/s bus",
		Note: "per-core private L1/L2/prefetcher/FDP; aggregate IPC sums per-core IPCs; min-core IPC is the " +
			"fairness floor (a conventional very aggressive prefetcher starves the prefetch-hostile core); " +
			"bus/KI is total bus transactions per 1000 instructions across all cores",
		Header: []string{"scenario", "config", "aggregate IPC", "min-core IPC", "per-core IPC", "bus/KI"},
	}
	for _, sc := range scenarios {
		for _, mode := range []string{cfgNoPref, cfgVA, cfgFDP} {
			var mc sim.MultiConfig
			for _, w := range sc.workloads {
				mc.Cores = append(mc.Cores, mkCfg(mode, w))
			}
			res, err := sim.RunMultiContext(ctx, mc)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", sc.name, mode, err)
			}
			perCore := ""
			minIPC := res.Cores[0].IPC
			var totalInsts uint64
			for i := range res.Cores {
				if i > 0 {
					perCore += " "
				}
				perCore += f3(res.Cores[i].IPC)
				if res.Cores[i].IPC < minIPC {
					minIPC = res.Cores[i].IPC
				}
				totalInsts += res.Cores[i].Counters.Retired
			}
			busKI := 1000 * float64(res.TotalBusAccesses) / float64(totalInsts)
			t.AddRow(sc.name, mode, f3(res.AggregateIPC()), f3(minIPC), perCore, f1(busKI))
		}
	}
	return []Table{t}, nil
}

func runDahlgren(ctx context.Context, p Params) ([]Table, error) {
	order := []string{cfgNoPref, "NextLine", "Dahlgren", "Stream+FDP"}
	configs := map[string]sim.Config{
		cfgNoPref:    noPref(),
		"NextLine":   static(sim.PrefNextLine, 5),
		"Dahlgren":   static(sim.PrefDahlgren, 3),
		"Stream+FDP": fullFDP(sim.PrefStream),
	}
	ws := ablationWorkloads
	g, err := RunAll(ctx, labeled(ws, configs, order, p), p)
	if err != nil {
		return nil, err
	}
	ipc := metricTable("Extension: FDP vs. Dahlgren et al.'s adaptive sequential prefetching — IPC",
		"Dahlgren adapts a sequential prefetcher's degree by accuracy alone (the paper's closest prior work); "+
			"FDP's three-metric feedback on a stream prefetcher should dominate",
		ws, order, g, ipcOf, f3, true)
	bpki := metricTable("Extension: FDP vs. Dahlgren — BPKI", "", ws, order, g, bpkiOf, f1, false)
	return []Table{ipc, bpki}, nil
}

func runHybrid(ctx context.Context, p Params) ([]Table, error) {
	order := []string{"Stream+FDP", "Stride+FDP", "Hybrid VA", "Hybrid+FDP"}
	configs := map[string]sim.Config{
		"Stream+FDP": fullFDP(sim.PrefStream),
		"Stride+FDP": fullFDP(sim.PrefStride),
		"Hybrid VA":  static(sim.PrefHybrid, 5),
		"Hybrid+FDP": fullFDP(sim.PrefHybrid),
	}
	ws := []string{"seqstream", "transpose", "stride3", "chaserand", "mixedphase", "spmv"}
	g, err := RunAll(ctx, labeled(ws, configs, order, p), p)
	if err != nil {
		return nil, err
	}
	ipc := metricTable("Extension: stream+stride hybrid under FDP — IPC",
		"the hybrid should inherit stream's wins on unit strides and stride's wins on large strides, "+
			"with FDP containing the combined junk on hostile workloads",
		ws, order, g, ipcOf, f3, true)
	bpki := metricTable("Extension: stream+stride hybrid under FDP — BPKI", "", ws, order, g, bpkiOf, f1, false)
	return []Table{ipc, bpki}, nil
}
