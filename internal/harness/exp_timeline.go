package harness

import (
	"context"
	"fmt"

	"fdpsim/internal/sim"
)

// Adaptation timeline: the decision trace behind Figure 6. Running FDP on
// the phase-alternating workload and dumping every sampling interval shows
// the mechanism riding the phase changes: streaming phases classify as
// high-accuracy/late (Table 2 cases 1-2, ramp up), hostile phases as
// low-accuracy/polluting (cases 10/12, ramp down and insert at LRU).

func init() {
	registerExperiment("timeline", "Extension: FDP interval-by-interval adaptation trace (mixedphase)", runTimeline)
}

func runTimeline(ctx context.Context, p Params) ([]Table, error) {
	cfg := p.apply(fullFDP(sim.PrefStream))
	cfg.Workload = "mixedphase"
	cfg.KeepFDPHistory = true
	res, err := sim.RunContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	t := Table{
		Title: "Extension: FDP sampling-interval trace on mixedphase",
		Note: fmt.Sprintf("%d intervals over %d instructions; the Table 2 case column shows which rule fired",
			res.Intervals, cfg.MaxInsts),
		Header: []string{"interval", "accuracy", "lateness", "pollution", "case", "update", "level", "insertion"},
	}
	limit := len(res.History)
	if limit > 64 {
		limit = 64 // keep the table printable; the shape shows quickly
	}
	for i := 0; i < limit; i++ {
		r := res.History[i]
		t.AddRow(
			fmt.Sprintf("%d", i+1),
			pct(r.Accuracy), pct(r.Lateness), pct(r.Pollution),
			fmt.Sprintf("%d", r.Case.Case),
			r.Case.Update.String(),
			fmt.Sprintf("%d", r.Level),
			r.Insertion.String(),
		)
	}
	if limit == 0 {
		t.AddRow("(none)", "-", "-", "-", "-", "-", "-",
			"run longer or lower -tinterval: no interval completed")
	}
	if limit < len(res.History) {
		t.AddRow("...", "", "", "", "", "", "", "")
	}
	return []Table{t}, nil
}
