// Package harness defines and runs the experiments that regenerate every
// table and figure of the paper's evaluation (Section 5). Each experiment
// builds a set of simulator configurations, fans them out over a worker
// pool, and renders the paper's rows/series as text tables. DESIGN.md
// carries the experiment index; EXPERIMENTS.md records paper-vs-measured.
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"fdpsim/internal/sim"
	"fdpsim/internal/store"
	"fdpsim/internal/workload/spec"
)

// Params are the knobs shared by all experiments.
type Params struct {
	// Insts is the retire target per simulation. The paper simulates 250M
	// instructions per benchmark; the default here is sized for minutes,
	// not days, and EXPERIMENTS.md documents the scaling.
	Insts uint64
	// Warmup discards statistics from the first Warmup instructions of
	// every run (cache and predictor state stay warm), mirroring the
	// paper's fast-forward methodology.
	Warmup uint64
	// TInterval overrides the FDP sampling interval (the paper's 8192
	// useful evictions assumes 250M-instruction runs; shorter runs sample
	// proportionally faster). Zero keeps the configuration's value.
	TInterval uint64
	Seed      uint64
	Workers   int
	// Progress, when non-nil, receives live events from RunAll.
	Progress *Progress
	// Store, when non-nil, persists completed results on disk keyed by
	// sim.Fingerprint and serves identical configurations across process
	// restarts. The in-process memo acts as a read-through layer over it:
	// lookups go memo → Store → simulate, and completed runs are written
	// back to both.
	Store *store.Store
}

// Progress is RunAll's live event sink. Both callbacks are invoked from
// worker goroutines — possibly concurrently — so implementations must be
// safe for concurrent use.
type Progress struct {
	// OnRun fires when one simulation finishes (or fails): done counts
	// completed sims including this one, total the sims in the experiment.
	OnRun func(done, total int, spec RunSpec, res sim.Result, err error)
	// OnSnapshot streams every simulation's per-FDP-interval telemetry.
	// Memo-cached simulations replay no snapshots.
	OnSnapshot func(spec RunSpec, s sim.Snapshot)
}

// DefaultParams returns the standard experiment sizing.
func DefaultParams() Params {
	return Params{Insts: 1_000_000, Warmup: 250_000, TInterval: 2048, Seed: 1, Workers: runtime.GOMAXPROCS(0)}
}

// apply stamps the shared parameters onto a configuration.
func (p Params) apply(cfg sim.Config) sim.Config {
	cfg.MaxInsts = p.Insts
	cfg.WarmupInsts = p.Warmup
	cfg.Seed = p.Seed
	if p.TInterval != 0 {
		cfg.FDP.TInterval = p.TInterval
	}
	return cfg
}

// RunSpec names one simulation within an experiment.
type RunSpec struct {
	Workload string
	Config   string // configuration label, e.g. "Very Aggressive"
	Cfg      sim.Config
	// Spec, when non-nil, runs this cell from a declarative WorkloadSpec
	// instead of a registered workload name: the worker dispatches to
	// sim.RunSpecContext and memoizes under sim.FingerprintSpec, so spec
	// cells share the memo and on-disk store with named cells without ever
	// colliding with them.
	Spec *spec.Spec
}

// Key identifies the spec's cell in the result grid.
func (r RunSpec) Key() string { return r.Workload + "\x00" + r.Config }

// Grid holds an experiment's results addressable by (workload, config).
type Grid struct {
	results map[string]sim.Result
	mu      sync.Mutex
}

// Get returns the result for a (workload, config) cell.
func (g *Grid) Get(workload, config string) (sim.Result, bool) {
	r, ok := g.results[workload+"\x00"+config]
	return r, ok
}

// MustGet returns the cell or panics (experiments own their spec lists).
func (g *Grid) MustGet(workload, config string) sim.Result {
	r, ok := g.Get(workload, config)
	if !ok {
		panic(fmt.Sprintf("harness: missing result %s/%s", workload, config))
	}
	return r
}

// memo caches completed simulations by their semantic configuration
// fingerprint (sim.Fingerprint). Simulations are deterministic, so
// experiments sharing cells (e.g. Figures 1, 2 and 3 all simulate the
// same four configurations) run each configuration once per process.
// When Params.Store is set, the memo is a read-through layer over the
// on-disk store, so configurations also run once across restarts.
var memo sync.Map // config fingerprint -> sim.Result

// lookup consults the memo, then the optional on-disk store (populating
// the memo on a store hit so the disk is read once per process).
func lookup(fp string, st *store.Store) (sim.Result, bool) {
	if cached, ok := memo.Load(fp); ok {
		return cached.(sim.Result), true
	}
	if st != nil {
		if res, ok := st.Get(fp); ok {
			memo.Store(fp, res)
			return res, true
		}
	}
	return sim.Result{}, false
}

// ResetMemo clears the cross-experiment simulation cache (tests use this).
func ResetMemo() { memo = sync.Map{} }

// RunAll executes every spec across a worker pool (p.Workers wide) and
// collects the grid. The first simulation error cancels the context every
// in-flight run observes and stops new launches; the error returned is
// the first real failure (a run's own cancellation error is reported only
// when the caller's ctx itself was cancelled). Live progress streams to
// p.Progress when set.
func RunAll(ctx context.Context, specs []RunSpec, p Params) (*Grid, error) {
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	g := &Grid{results: make(map[string]sim.Result, len(specs))}
	jobs := make(chan RunSpec)
	var (
		mu       sync.Mutex
		firstErr error
		done     int
	)
	// record keeps the first real failure: a later non-cancellation error
	// replaces an earlier cancellation one, because sibling runs that were
	// cancelled *by* the first failure race with it to report.
	record := func(err error) {
		mu.Lock()
		if firstErr == nil || (errors.Is(firstErr, sim.ErrCancelled) && !errors.Is(err, sim.ErrCancelled)) {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	finished := func(spec RunSpec, res sim.Result, err error) {
		if p.Progress == nil || p.Progress.OnRun == nil {
			return
		}
		mu.Lock()
		done++
		n := done
		mu.Unlock()
		p.Progress.OnRun(n, len(specs), spec, res, err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				var fp string
				var memoizable bool
				if job.Spec != nil {
					fp, memoizable = sim.FingerprintSpec(job.Cfg, job.Spec)
				} else {
					fp, memoizable = sim.Fingerprint(job.Cfg)
				}
				if memoizable {
					if res, ok := lookup(fp, p.Store); ok {
						g.mu.Lock()
						g.results[job.Key()] = res
						g.mu.Unlock()
						finished(job, res, nil)
						continue
					}
				}
				cfg := job.Cfg
				if p.Progress != nil && p.Progress.OnSnapshot != nil {
					job := job
					cfg.Progress = func(s sim.Snapshot) { p.Progress.OnSnapshot(job, s) }
				}
				var res sim.Result
				var err error
				if job.Spec != nil {
					res, err = sim.RunSpecContext(ctx, cfg, job.Spec)
				} else {
					res, err = sim.RunContext(ctx, cfg)
				}
				if err != nil {
					record(fmt.Errorf("%s/%s: %w", job.Workload, job.Config, err))
					finished(job, res, err)
					continue
				}
				if memoizable {
					memo.Store(fp, res)
					if p.Store != nil {
						// Best-effort write-back: a full disk costs future
						// cache hits, not this experiment.
						_ = p.Store.Put(fp, res)
					}
				}
				g.mu.Lock()
				g.results[job.Key()] = res
				g.mu.Unlock()
				finished(job, res, nil)
			}
		}()
	}
feed:
	for _, s := range specs {
		select {
		case jobs <- s:
		case <-ctx.Done():
			break feed // first error or caller cancellation: launch nothing further
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return g, firstErr
	}
	if err := ctx.Err(); err != nil {
		return g, fmt.Errorf("%w: %w", sim.ErrCancelled, err)
	}
	return g, nil
}

// Experiment regenerates one (or one group of) paper tables/figures.
type Experiment struct {
	ID    string // e.g. "fig5"
	Title string
	Run   func(ctx context.Context, p Params) ([]Table, error)
}

var experiments []Experiment

func registerExperiment(id, title string, run func(ctx context.Context, p Params) ([]Table, error)) {
	experiments = append(experiments, Experiment{ID: id, Title: title, Run: run})
}

// Experiments lists all registered experiments sorted by ID.
func Experiments() []Experiment {
	out := make([]Experiment, len(experiments))
	copy(out, experiments)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
