package harness

import (
	"strings"
	"testing"
)

func TestRenderChart(t *testing.T) {
	tbl := Table{
		Title:  "demo",
		Header: []string{"workload", "NoPref", "FDP"},
		Rows: [][]string{
			{"a", "0.5", "1.0"},
			{"b", "0.25", "not-a-number"},
		},
	}
	var sb strings.Builder
	tbl.RenderChart(&sb, 40)
	out := sb.String()
	if !strings.Contains(out, "demo") {
		t.Fatal("chart missing title")
	}
	// The maximum value gets the full bar width.
	if !strings.Contains(out, strings.Repeat("#", 40)) {
		t.Fatal("max value did not render a full-width bar")
	}
	// Half the maximum gets half the bar.
	if !strings.Contains(out, "|"+strings.Repeat("#", 20)+" 0.5") {
		t.Fatalf("half value misrendered:\n%s", out)
	}
	if strings.Contains(out, "not-a-number") {
		t.Fatal("non-numeric cell charted")
	}
}

func TestRenderChartPercentValues(t *testing.T) {
	tbl := Table{
		Title:  "pct",
		Header: []string{"w", "acc"},
		Rows:   [][]string{{"x", "50.0%"}},
	}
	var sb strings.Builder
	tbl.RenderChart(&sb, 10)
	if !strings.Contains(sb.String(), "50.0%") {
		t.Fatal("percent cell not charted")
	}
}

func TestRenderChartEmpty(t *testing.T) {
	tbl := Table{Title: "empty", Header: []string{"w", "v"}, Rows: [][]string{{"x", "n/a"}}}
	var sb strings.Builder
	tbl.RenderChart(&sb, 10)
	if !strings.Contains(sb.String(), "no numeric data") {
		t.Fatal("empty chart not reported")
	}
}

func TestRenderCSV(t *testing.T) {
	tbl := Table{
		Title:  "csv demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"x", "1"}, {"y,z", "2"}},
	}
	var sb strings.Builder
	if err := tbl.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# csv demo") || !strings.Contains(out, "a,b") {
		t.Fatalf("csv header wrong:\n%s", out)
	}
	if !strings.Contains(out, `"y,z",2`) {
		t.Fatalf("csv quoting wrong:\n%s", out)
	}
}
