package stats

import "math/bits"

// This file holds the attribution subsystem's types: top-down cycle
// accounting (every core cycle classified into a retire or stall bucket),
// memory-system pressure histograms, and prefetch-timeliness
// distributions. The simulator fills them only when Config.Attribution is
// set; all types are plain values with fixed-size storage so sampling
// them on the hot path allocates nothing.

// CycleBuckets classifies every core cycle into exactly one bucket, so
// the buckets always sum to the elapsed cycle count. Classification
// precedence, evaluated per cycle after retire:
//
//	retired == width          -> RetireFull
//	retired  > 0              -> RetirePartial
//	ROB occupied, none retired:
//	    ROB full              -> StallROBFull  (window exhausted behind the miss)
//	    DRAM backpressured    -> StallDRAMBP   (memory system refusing new work)
//	    otherwise             -> StallLoadMiss (head load's data not back yet)
//	ROB empty:
//	    fetch stalled         -> StallIFetch
//	    otherwise             -> StallFrontend (dispatch produced nothing)
//
// Only loads ever occupy the ROB incomplete (stores and nops complete at
// dispatch), so the three ROB-occupied stall causes are all forms of
// waiting on a load miss — split by which structural resource is the
// bottleneck, the way top-down analysis splits "memory bound".
type CycleBuckets struct {
	RetireFull    uint64 `json:"retire_full"`     // retired a full width
	RetirePartial uint64 `json:"retire_partial"`  // retired 1..width-1
	StallLoadMiss uint64 `json:"stall_load_miss"` // head load outstanding, ROB not full
	StallROBFull  uint64 `json:"stall_rob_full"`  // head load outstanding, ROB full
	StallDRAMBP   uint64 `json:"stall_dram_bp"`   // head load outstanding, memory system backpressured
	StallIFetch   uint64 `json:"stall_ifetch"`    // ROB empty, waiting on an instruction block
	StallFrontend uint64 `json:"stall_frontend"`  // ROB empty, no fetch stall (dispatch gap)
}

// Total returns the sum of all buckets — the classified cycle count.
func (b CycleBuckets) Total() uint64 {
	return b.RetireFull + b.RetirePartial + b.StallLoadMiss +
		b.StallROBFull + b.StallDRAMBP + b.StallIFetch + b.StallFrontend
}

// Sub returns the per-bucket difference b - prev (b taken at a later
// sample point), used to turn cumulative buckets into interval deltas.
func (b CycleBuckets) Sub(prev CycleBuckets) CycleBuckets {
	return CycleBuckets{
		RetireFull:    b.RetireFull - prev.RetireFull,
		RetirePartial: b.RetirePartial - prev.RetirePartial,
		StallLoadMiss: b.StallLoadMiss - prev.StallLoadMiss,
		StallROBFull:  b.StallROBFull - prev.StallROBFull,
		StallDRAMBP:   b.StallDRAMBP - prev.StallDRAMBP,
		StallIFetch:   b.StallIFetch - prev.StallIFetch,
		StallFrontend: b.StallFrontend - prev.StallFrontend,
	}
}

// Share returns bucket/Total() in 0..1, or 0 when no cycles are recorded.
func (b CycleBuckets) Share(bucket uint64) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(bucket) / float64(t)
}

// LogHistBuckets is the fixed bucket count of LogHist: bucket i counts
// values v with bits.Len64(v) == i, i.e. bucket 0 holds v == 0 and bucket
// i >= 1 holds 2^(i-1) <= v < 2^i. 64-bit values always fit.
const LogHistBuckets = 65

// LogHist is a power-of-two-bucketed histogram with fixed storage, so
// recording a sample is one shift-class computation and one array
// increment — safe for per-cycle use on the allocation-free hot path.
type LogHist struct {
	Counts [LogHistBuckets]uint64 `json:"counts"`
}

// Add records one sample.
func (h *LogHist) Add(v uint64) { h.Counts[bits.Len64(v)]++ }

// Total returns the number of recorded samples.
func (h *LogHist) Total() uint64 {
	var t uint64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Mean returns the arithmetic mean of the bucket midpoints weighted by
// count — an estimate, exact only for 0/1-valued samples, but stable
// enough for dashboards and tables.
func (h *LogHist) Mean() float64 {
	var sum float64
	var n uint64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		n += c
		sum += float64(c) * logBucketMid(i)
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile (0 < q <= 1) of the recorded samples, or 0 when empty.
func (h *LogHist) Quantile(q float64) uint64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var acc uint64
	for i, c := range h.Counts {
		acc += c
		if acc >= target {
			return logBucketHigh(i)
		}
	}
	return logBucketHigh(LogHistBuckets - 1)
}

// MaxBucket returns the index of the highest non-empty bucket, or -1.
func (h *LogHist) MaxBucket() int {
	for i := LogHistBuckets - 1; i >= 0; i-- {
		if h.Counts[i] != 0 {
			return i
		}
	}
	return -1
}

// logBucketMid is the midpoint of bucket i's value range.
func logBucketMid(i int) float64 {
	if i == 0 {
		return 0
	}
	lo := uint64(1) << (i - 1)
	return float64(lo) * 1.5
}

// logBucketHigh is the inclusive upper bound of bucket i's value range.
func logBucketHigh(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << i) - 1
}

// LogBucketLabel names bucket i for rendering ("0", "1", "2-3", "4-7"...).
func LogBucketLabel(i int) string {
	switch {
	case i == 0:
		return "0"
	case i == 1:
		return "1"
	default:
		lo := uint64(1) << (i - 1)
		return uintRange(lo, logBucketHigh(i))
	}
}

func uintRange(lo, hi uint64) string {
	return uitoa(lo) + "-" + uitoa(hi)
}

// uitoa avoids importing strconv into this hot-path-adjacent file's API
// users; it is only called during rendering, never while sampling.
func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Attribution is a whole run's attribution block: cumulative post-warmup
// cycle accounting, memory-system pressure, and prefetch timeliness. The
// runner attaches it to Result (as a pointer, omitted when attribution is
// off) so the JSON shape of non-attribution runs is unchanged.
type Attribution struct {
	// Cycles classifies every post-warmup core cycle; Cycles.Total()
	// equals Counters.Cycles.
	Cycles CycleBuckets `json:"cycles"`

	// BusDemandCycles/BusPrefetchCycles/BusWritebackCycles are data-bus
	// occupancy cycles by transaction kind (transfers started × the
	// configured per-block transfer time). Their sum over Cycles.Total()
	// is the run's bus utilization.
	BusDemandCycles    uint64 `json:"bus_demand_cycles"`
	BusPrefetchCycles  uint64 `json:"bus_prefetch_cycles"`
	BusWritebackCycles uint64 `json:"bus_writeback_cycles"`

	// RowHits/RowMisses are DRAM row-buffer outcomes (a row miss is a
	// bank precharge/activate — the bank-conflict case).
	RowHits   uint64 `json:"row_hits"`
	RowMisses uint64 `json:"row_misses"`

	// MSHROcc and QueueDemand/QueuePrefetch/QueueWriteback sample the
	// MSHR-file occupancy and the DRAM request-queue depths once per core
	// cycle.
	MSHROcc        LogHist `json:"mshr_occupancy"`
	QueueDemand    LogHist `json:"queue_demand"`
	QueuePrefetch  LogHist `json:"queue_prefetch"`
	QueueWriteback LogHist `json:"queue_writeback"`

	// FillToUse is the prefetch-timeliness distribution: cycles from a
	// prefetch's fill to its first demand use. LateBy distributes how
	// late the late prefetches were: cycles from the demand's arrival at
	// the in-flight prefetch to the fill. PrefUnused counts prefetched
	// blocks evicted without ever being used.
	FillToUse  LogHist `json:"fill_to_use"`
	LateBy     LogHist `json:"late_by"`
	PrefUnused uint64  `json:"pref_unused"`
}

// BusOccupancy returns total data-bus occupancy cycles across all kinds.
func (a *Attribution) BusOccupancy() uint64 {
	return a.BusDemandCycles + a.BusPrefetchCycles + a.BusWritebackCycles
}

// BusUtilization returns occupancy/cycles in 0..1 (it can slightly exceed
// 1 when transfers started near the end of the run drain after it).
func (a *Attribution) BusUtilization() float64 {
	t := a.Cycles.Total()
	if t == 0 {
		return 0
	}
	return float64(a.BusOccupancy()) / float64(t)
}

// RowHitRate returns RowHits/(RowHits+RowMisses), or 0 with no accesses.
func (a *Attribution) RowHitRate() float64 {
	if a.RowHits+a.RowMisses == 0 {
		return 0
	}
	return float64(a.RowHits) / float64(a.RowHits+a.RowMisses)
}

// IntervalSample is one FDP sampling interval's attribution delta,
// embedded by value in sim.DecisionEvent and sim.Snapshot (zero, and
// omitted from trace JSON, when attribution is off). All fields are
// plain values so building and copying a sample allocates nothing.
type IntervalSample struct {
	// Cycles is this interval's cycle classification; Cycles.Total() is
	// the interval's core-cycle count.
	Cycles CycleBuckets `json:"cycles"`

	// Per-kind data-bus occupancy cycles within the interval.
	BusDemandCycles    uint64 `json:"bus_demand_cycles"`
	BusPrefetchCycles  uint64 `json:"bus_prefetch_cycles"`
	BusWritebackCycles uint64 `json:"bus_writeback_cycles"`

	// BusUtilization is occupancy/cycles for the interval, 0..1 (it can
	// exceed 1 slightly when transfers straddle the boundary).
	BusUtilization float64 `json:"bus_utilization"`

	// RowHits/RowMisses are the interval's DRAM row-buffer outcomes.
	RowHits   uint64 `json:"row_hits"`
	RowMisses uint64 `json:"row_misses"`

	// MSHRMean/QueueMean summarize the per-cycle occupancy samples taken
	// since the previous boundary (whole-run histograms keep the full
	// distributions; the per-interval view carries means to stay compact).
	MSHRMean  float64 `json:"mshr_mean"`
	QueueMean float64 `json:"queue_mean"`
}

// BusOccupancy returns the interval's total bus occupancy cycles.
func (s IntervalSample) BusOccupancy() uint64 {
	return s.BusDemandCycles + s.BusPrefetchCycles + s.BusWritebackCycles
}

// RowHitRate returns the interval's row-buffer hit rate.
func (s IntervalSample) RowHitRate() float64 {
	if s.RowHits+s.RowMisses == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.RowHits+s.RowMisses)
}
