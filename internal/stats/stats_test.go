package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDerivedMetrics(t *testing.T) {
	c := Counters{
		Cycles: 1000, Retired: 500,
		BusReads: 10, BusWritebacks: 5, BusPrefetches: 5,
		PrefSent: 100, PrefUsed: 60, PrefLate: 30,
		DemandMisses: 200, PollutionHits: 20,
	}
	if got := c.IPC(); got != 0.5 {
		t.Errorf("IPC = %v", got)
	}
	if got := c.BusAccesses(); got != 20 {
		t.Errorf("BusAccesses = %v", got)
	}
	if got := c.BPKI(); got != 40 {
		t.Errorf("BPKI = %v", got)
	}
	if got := c.Accuracy(); got != 0.6 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := c.Lateness(); got != 0.5 {
		t.Errorf("Lateness = %v", got)
	}
	if got := c.Pollution(); got != 0.1 {
		t.Errorf("Pollution = %v", got)
	}
}

func TestDerivedMetricsZeroDenominators(t *testing.T) {
	var c Counters
	if c.IPC() != 0 || c.BPKI() != 0 || c.Accuracy() != 0 || c.Lateness() != 0 || c.Pollution() != 0 {
		t.Fatal("zero counters must yield zero metrics, not NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	// Non-positive entries are skipped, not fatal.
	if got := GeoMean([]float64{0, 2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean with zero = %v", got)
	}
}

func TestArithMean(t *testing.T) {
	if got := ArithMean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("ArithMean = %v", got)
	}
	if ArithMean(nil) != 0 {
		t.Error("ArithMean(nil) != 0")
	}
}

func TestSpeedupPct(t *testing.T) {
	if got := SpeedupPct(2, 3); got != 50 {
		t.Errorf("SpeedupPct = %v", got)
	}
	if SpeedupPct(0, 3) != 0 {
		t.Error("SpeedupPct with zero base must be 0")
	}
}

func TestDistribution(t *testing.T) {
	d := NewDistribution("pos", "LRU", "MID", "MRU")
	d.Add(0)
	d.Add(0)
	d.Add(2)
	d.Add(99) // out of range: ignored
	d.Add(-1) // ignored
	if d.Total() != 3 {
		t.Fatalf("Total = %d", d.Total())
	}
	if f := d.Fraction(0); math.Abs(f-2.0/3) > 1e-12 {
		t.Fatalf("Fraction(0) = %v", f)
	}
	if d.Fraction(7) != 0 {
		t.Fatal("out-of-range fraction must be 0")
	}
	if s := d.String(); !strings.Contains(s, "LRU=66.7%") {
		t.Fatalf("String = %q", s)
	}
}

func TestEmptyDistribution(t *testing.T) {
	d := NewDistribution("x", "a")
	if d.Fraction(0) != 0 {
		t.Fatal("empty distribution fraction != 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Add(5)
	h.Add(5)
	h.Add(-3)
	if h.Get(5) != 2 || h.Get(-3) != 1 || h.Get(0) != 0 {
		t.Fatal("histogram counts wrong")
	}
	keys := h.Keys()
	if len(keys) != 2 || keys[0] != -3 || keys[1] != 5 {
		t.Fatalf("Keys = %v", keys)
	}
	if h.Total() != 3 {
		t.Fatalf("Total = %d", h.Total())
	}
}

// TestGeoMeanBounds: the geometric mean of positive values lies between
// min and max.
func TestGeoMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r%1000) + 1
			xs = append(xs, v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
