package series

import (
	"math"
	"sort"
)

// Bucket summarises one downsampling window of a column.
type Bucket struct {
	// Start is the 1-based interval index the window begins at.
	Start int     `json:"start"`
	N     int     `json:"n"`
	Min   float64 `json:"min"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
	P95   float64 `json:"p95"`
}

// Downsample reduces a column to fixed-width windows of `step` intervals
// (the last window may be shorter), reporting min/mean/max/p95 for each.
// step <= 1 returns one single-value bucket per interval.
func Downsample(col []float64, step int) []Bucket {
	if step < 1 {
		step = 1
	}
	buckets := make([]Bucket, 0, (len(col)+step-1)/step)
	scratch := make([]float64, 0, step)
	for start := 0; start < len(col); start += step {
		end := start + step
		if end > len(col) {
			end = len(col)
		}
		w := col[start:end]
		b := Bucket{Start: start + 1, N: len(w), Min: math.Inf(1), Max: math.Inf(-1)}
		sum := 0.0
		for _, v := range w {
			sum += v
			if v < b.Min {
				b.Min = v
			}
			if v > b.Max {
				b.Max = v
			}
		}
		b.Mean = sum / float64(len(w))
		scratch = append(scratch[:0], w...)
		sort.Float64s(scratch)
		// Nearest-rank p95: the ceil(0.95n)-th smallest value.
		rank := int(math.Ceil(0.95*float64(len(scratch)))) - 1
		if rank < 0 {
			rank = 0
		}
		b.P95 = scratch[rank]
		buckets = append(buckets, b)
	}
	return buckets
}
