package series

// Merge combines several runs' series into one element-wise-mean series
// over their common interval prefix — the sweep-level view: the average
// per-interval trajectory across a sweep's cells. Metrics are taken from
// the first series; inputs missing a metric are skipped for that column.
// Merge(nil...) and Merge() return an empty series.
func Merge(runs ...*Series) *Series {
	inputs := runs[:0:0]
	for _, s := range runs {
		if s != nil && s.Len() > 0 {
			inputs = append(inputs, s)
		}
	}
	if len(inputs) == 0 {
		return &Series{Meta: Meta{Version: formatVersion, Metrics: []string{}}, Columns: [][]float64{}}
	}

	n := inputs[0].Len()
	for _, s := range inputs[1:] {
		if s.Len() < n {
			n = s.Len()
		}
	}

	first := inputs[0]
	out := &Series{
		Meta: Meta{
			Version:    formatVersion,
			Workload:   first.Meta.Workload,
			Prefetcher: first.Meta.Prefetcher,
			Controller: "merged",
			Intervals:  n,
			Metrics:    append([]string(nil), first.Meta.Metrics...),
		},
		Columns: make([][]float64, len(first.Meta.Metrics)),
	}
	for ci, name := range out.Meta.Metrics {
		col := make([]float64, n)
		contributors := 0
		for _, s := range inputs {
			src, ok := s.Column(name)
			if !ok {
				continue
			}
			contributors++
			for i := 0; i < n; i++ {
				col[i] += src[i]
			}
		}
		if contributors > 1 {
			inv := 1 / float64(contributors)
			for i := range col {
				col[i] *= inv
			}
		}
		out.Columns[ci] = col
	}
	return out
}
