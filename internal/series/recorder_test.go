package series

import (
	"testing"

	"fdpsim/internal/core"
	"fdpsim/internal/sim"
	"fdpsim/internal/stats"
)

// boundaryEvent fabricates the i-th (1-based) interval boundary of a
// synthetic run: cumulative stamps grow linearly, counts are small primes.
func boundaryEvent(i int) sim.DecisionEvent {
	return sim.DecisionEvent{
		Interval:   uint64(i),
		Cycle:      uint64(i) * 1000,
		Retired:    uint64(i) * 700,
		Raw:        core.IntervalCounts{PrefSent: 13, PrefUsed: 7, PrefLate: 2, PollutionMisses: 1, DemandMisses: 5},
		Accuracy:   0.75,
		Lateness:   0.10,
		Pollution:  0.01,
		Controller: "fdp",
		BusUtil:    0.42,
		DCCAfter:   4,
		Insertion:  "MID",
		Sample: stats.IntervalSample{
			Cycles:    stats.CycleBuckets{RetireFull: 400, RetirePartial: 100, StallLoadMiss: 300, StallROBFull: 100, StallDRAMBP: 50, StallIFetch: 25, StallFrontend: 25},
			MSHRMean:  3.5,
			QueueMean: 1.25,
			RowHits:   30,
			RowMisses: 10,
		},
	}
}

func TestRecorderDerivation(t *testing.T) {
	r := &Recorder{}
	for i := 1; i <= 3; i++ {
		r.TraceDecision(boundaryEvent(i))
	}
	s := r.Series()
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	want := map[string]float64{
		"cycles":          1000, // per-interval delta of the cumulative stamp
		"retired":         700,
		"ipc":             0.7,
		"bpki":            1000 * 18 / 700.0, // (demand 5 + sent 13) per 700 retired
		"accuracy":        0.75,
		"lateness":        0.10,
		"pollution":       0.01,
		"dcc_level":       4,
		"insertion_pos":   1, // MID
		"bus_util":        0.42,
		"retire_full":     0.4,
		"stall_load_miss": 0.3,
		"mshr_mean":       3.5,
		"queue_mean":      1.25,
		"row_hit_rate":    0.75,
		"pref_sent":       13,
		"demand_misses":   5,
	}
	for name, v := range want {
		col, ok := s.Column(name)
		if !ok {
			t.Fatalf("column %q missing", name)
		}
		for i, got := range col {
			if diff := got - v; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("%s[%d] = %g, want %g", name, i, got, v)
			}
		}
	}
	if s.Meta.Controller != "fdp" {
		t.Errorf("Meta.Controller = %q, want fdp", s.Meta.Controller)
	}
}

func TestRecorderInsertionCodes(t *testing.T) {
	r := &Recorder{}
	for i, pos := range []string{"MRU", "MID", "LRU-4", "LRU", "???"} {
		ev := boundaryEvent(i + 1)
		ev.Insertion = pos
		r.TraceDecision(ev)
	}
	col, _ := r.Series().Column("insertion_pos")
	want := []float64{0, 1, 2, 3, -1}
	for i, w := range want {
		if col[i] != w {
			t.Errorf("insertion_pos[%d] = %g, want %g", i, col[i], w)
		}
	}
}

func TestRecorderCoreFilterAndLimit(t *testing.T) {
	r := &Recorder{Limit: 2}
	other := boundaryEvent(1)
	other.Core = 3
	r.TraceDecision(other) // filtered: wrong core
	for i := 1; i <= 5; i++ {
		r.TraceDecision(boundaryEvent(i))
	}
	if got := r.Len(); got != 2 {
		t.Errorf("Len = %d, want 2 (limit)", got)
	}
	if got := r.Truncated(); got != 3 {
		t.Errorf("Truncated = %d, want 3", got)
	}
	if s := r.Series(); s.Meta.Truncated != 3 {
		t.Errorf("Meta.Truncated = %d, want 3", s.Meta.Truncated)
	}
}

// TestRecorderAllocs proves the append path is allocation-free once
// capacity is reserved — the property that lets the service record every
// job without perturbing the engine's 0 allocs/op contract.
func TestRecorderAllocs(t *testing.T) {
	r := &Recorder{}
	r.Reserve(1024)
	i := 0
	allocs := testing.AllocsPerRun(512, func() {
		i++
		r.TraceDecision(boundaryEvent(i))
	})
	if allocs != 0 {
		t.Errorf("TraceDecision allocated %.1f times per op with reserved capacity, want 0", allocs)
	}
}
