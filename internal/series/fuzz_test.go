package series

import (
	"bytes"
	"math"
	"testing"
)

// FuzzDecode hammers the sidecar frame decoder: arbitrary input must
// never panic or over-allocate, and any input that decodes successfully
// must re-encode and decode to the same columns (the codec is a lossless
// bijection on its accepted set).
func FuzzDecode(f *testing.F) {
	for _, n := range []int{0, 1, 17} {
		enc, err := Encode(sampleSeries(n))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		// Seed a few broken variants so the corpus starts near the
		// interesting edges.
		f.Add(enc[:len(enc)/2])
		mut := append([]byte(nil), enc...)
		if len(mut) > 20 {
			mut[20] ^= 0x40
		}
		f.Add(mut)
	}
	f.Add([]byte(magic))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(s)
		if err != nil {
			t.Fatalf("accepted document failed to re-encode: %v", err)
		}
		s2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded document failed to decode: %v", err)
		}
		if len(s2.Columns) != len(s.Columns) {
			t.Fatal("round trip changed column count")
		}
		for i := range s.Columns {
			a := float64sToBits(s.Columns[i])
			b := float64sToBits(s2.Columns[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("round trip changed column %d", i)
			}
		}
	})
}

// float64sToBits flattens a column to raw IEEE bits so NaN payloads
// compare exactly (fuzzed floats can be any bit pattern).
func float64sToBits(col []float64) []byte {
	out := make([]byte, 0, len(col)*8)
	for _, v := range col {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			out = append(out, byte(bits>>s))
		}
	}
	return out
}
