package series

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Binary layout of a .series.bin document (all integers little-endian):
//
//	magic    8 bytes  "FDPSERS1"
//	frames   repeated:
//	           uvarint payload length (>= 1)
//	           uint32  CRC-32 (IEEE) of the payload
//	           payload bytes
//	         frame 0: Meta as JSON
//	         frames 1..K: one column each, in Meta.Metrics order:
//	           byte    kind (0 = int, 1 = float)
//	           uvarint value count (== Meta.Intervals)
//	           values  int:   zigzag(v[i] - v[i-1]) uvarints
//	                   float: uvarint(bits(v[i]) XOR bits(v[i-1]))
//	uvarint  0 (frame terminator)
//	footer   uint32 column count K, uint32 interval count
//
// Delta/XOR predecessors start at zero. Encoding is fully deterministic —
// no timestamps, no map iteration — so identical columns byte-compare
// equal, which the determinism tests rely on.

const (
	magic         = "FDPSERS1"
	formatVersion = 1
	footerLen     = 8

	kindByteInt   = 0
	kindByteFloat = 1
)

// ErrCorrupt is wrapped by every Decode failure, so callers (the store's
// sidecar loader, the fuzz target) can treat all damage uniformly.
var ErrCorrupt = errors.New("series: corrupt document")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// Encode serialises a Series into the framed binary document.
func Encode(s *Series) ([]byte, error) {
	if len(s.Meta.Metrics) != len(s.Columns) {
		return nil, fmt.Errorf("series: %d metrics but %d columns", len(s.Meta.Metrics), len(s.Columns))
	}
	for i, col := range s.Columns {
		if len(col) != s.Meta.Intervals {
			return nil, fmt.Errorf("series: column %q has %d values, want %d", s.Meta.Metrics[i], len(col), s.Meta.Intervals)
		}
	}
	meta := s.Meta
	meta.Version = formatVersion
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}

	out := make([]byte, 0, len(metaJSON)+s.Meta.Intervals*len(s.Columns)*2+64)
	out = append(out, magic...)
	out = appendFrame(out, metaJSON)

	var scratch []byte
	for i, col := range s.Columns {
		scratch = encodeColumn(scratch[:0], kindFor(s.Meta.Metrics[i]), col)
		out = appendFrame(out, scratch)
	}

	out = binary.AppendUvarint(out, 0) // terminator
	var foot [footerLen]byte
	binary.LittleEndian.PutUint32(foot[0:4], uint32(len(s.Columns)))
	binary.LittleEndian.PutUint32(foot[4:8], uint32(s.Meta.Intervals))
	out = append(out, foot[:]...)
	return out, nil
}

// kindFor resolves a column's encoding kind: catalog metrics use their
// declared kind, unknown names (future catalogs) fall back to float.
func kindFor(name string) Kind {
	if i := MetricIndex(name); i >= 0 {
		return Catalog[i].Kind
	}
	return KindFloat
}

func appendFrame(out, payload []byte) []byte {
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

func encodeColumn(out []byte, kind Kind, col []float64) []byte {
	switch kind {
	case KindInt:
		out = append(out, kindByteInt)
	default:
		out = append(out, kindByteFloat)
	}
	out = binary.AppendUvarint(out, uint64(len(col)))
	if kind == KindInt {
		prev := int64(0)
		for _, v := range col {
			cur := int64(v)
			out = binary.AppendUvarint(out, zigzag(cur-prev))
			prev = cur
		}
		return out
	}
	prev := uint64(0)
	for _, v := range col {
		bits := math.Float64bits(v)
		out = binary.AppendUvarint(out, bits^prev)
		prev = bits
	}
	return out
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Decode parses a framed document back into a Series. It is strict —
// truncation, bit damage, count mismatches, and trailing garbage all
// return an error wrapping ErrCorrupt — and never panics on arbitrary
// input (FuzzDecode's contract).
func Decode(data []byte) (*Series, error) {
	if len(data) < len(magic)+footerLen {
		return nil, corruptf("short document (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, corruptf("bad magic")
	}
	foot := data[len(data)-footerLen:]
	footCols := int(binary.LittleEndian.Uint32(foot[0:4]))
	footIntervals := int(binary.LittleEndian.Uint32(foot[4:8]))
	body := data[len(magic) : len(data)-footerLen]

	metaPayload, rest, err := readFrame(body)
	if err != nil {
		return nil, fmt.Errorf("meta frame: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(metaPayload, &meta); err != nil {
		return nil, corruptf("meta json: %v", err)
	}
	if meta.Version != formatVersion {
		return nil, fmt.Errorf("series: unsupported version %d (want %d)", meta.Version, formatVersion)
	}
	if meta.Intervals < 0 || meta.Intervals != footIntervals {
		return nil, corruptf("interval count mismatch: meta %d, footer %d", meta.Intervals, footIntervals)
	}
	if len(meta.Metrics) != footCols {
		return nil, corruptf("column count mismatch: meta %d, footer %d", len(meta.Metrics), footCols)
	}

	cols := make([][]float64, len(meta.Metrics))
	for i := range meta.Metrics {
		payload, r, err := readFrame(rest)
		if err != nil {
			return nil, fmt.Errorf("column %d: %w", i, err)
		}
		rest = r
		col, err := decodeColumn(payload, meta.Intervals)
		if err != nil {
			return nil, fmt.Errorf("column %d (%s): %w", i, meta.Metrics[i], err)
		}
		cols[i] = col
	}

	term, n := binary.Uvarint(rest)
	if n <= 0 || term != 0 {
		return nil, corruptf("missing frame terminator")
	}
	if len(rest[n:]) != 0 {
		return nil, corruptf("%d trailing bytes", len(rest[n:]))
	}
	return &Series{Meta: meta, Columns: cols}, nil
}

// readFrame pops one length+CRC+payload frame off the front of b.
func readFrame(b []byte) (payload, rest []byte, err error) {
	size, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, corruptf("bad frame length")
	}
	if size == 0 {
		return nil, nil, corruptf("unexpected terminator")
	}
	b = b[n:]
	if len(b) < 4 {
		return nil, nil, corruptf("truncated frame header")
	}
	want := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint64(len(b)) < size {
		return nil, nil, corruptf("truncated frame payload (want %d, have %d)", size, len(b))
	}
	payload = b[:size]
	if crc32.ChecksumIEEE(payload) != want {
		return nil, nil, corruptf("frame CRC mismatch")
	}
	return payload, b[size:], nil
}

func decodeColumn(payload []byte, intervals int) ([]float64, error) {
	if len(payload) < 1 {
		return nil, corruptf("empty column payload")
	}
	kind := payload[0]
	if kind != kindByteInt && kind != kindByteFloat {
		return nil, corruptf("unknown column kind %d", kind)
	}
	b := payload[1:]
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, corruptf("bad value count")
	}
	b = b[n:]
	if count != uint64(intervals) {
		return nil, corruptf("value count %d, want %d", count, intervals)
	}
	// Each value takes at least one byte, so the payload bounds the count;
	// this keeps a forged header from driving a huge allocation.
	if count > uint64(len(b)) {
		return nil, corruptf("value count %d exceeds payload", count)
	}
	col := make([]float64, count)
	if kind == kindByteInt {
		prev := int64(0)
		for i := range col {
			u, n := binary.Uvarint(b)
			if n <= 0 {
				return nil, corruptf("truncated int value %d", i)
			}
			b = b[n:]
			prev += unzigzag(u)
			col[i] = float64(prev)
		}
	} else {
		prev := uint64(0)
		for i := range col {
			u, n := binary.Uvarint(b)
			if n <= 0 {
				return nil, corruptf("truncated float value %d", i)
			}
			b = b[n:]
			prev ^= u
			col[i] = math.Float64frombits(prev)
		}
	}
	if len(b) != 0 {
		return nil, corruptf("%d trailing column bytes", len(b))
	}
	return col, nil
}
