package series

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"reflect"
	"testing"
)

// sampleSeries builds a small but fully-populated series covering both
// column kinds, negative values, and non-trivial float drift.
func sampleSeries(n int) *Series {
	s := &Series{
		Meta: Meta{
			Version:    formatVersion,
			Workload:   "chaserand",
			Prefetcher: "stream",
			Controller: "fdp",
			Intervals:  n,
			Metrics:    make([]string, NumMetrics),
		},
		Columns: make([][]float64, NumMetrics),
	}
	for i, m := range Catalog {
		s.Meta.Metrics[i] = m.Name
		col := make([]float64, n)
		for j := range col {
			if m.Kind == KindInt {
				// Include negatives (insertion_pos can be -1).
				col[j] = float64((j*7+i)%11 - 1)
			} else {
				col[j] = math.Sin(float64(j)*0.3+float64(i)) * 1.5
			}
		}
		s.Columns[i] = col
	}
	return s
}

func TestCodecRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 257} {
		s := sampleSeries(n)
		enc, err := Encode(s)
		if err != nil {
			t.Fatalf("Encode(n=%d): %v", n, err)
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(n=%d): %v", n, err)
		}
		if !reflect.DeepEqual(got.Meta, s.Meta) {
			t.Errorf("n=%d meta mismatch:\ngot  %+v\nwant %+v", n, got.Meta, s.Meta)
		}
		if !reflect.DeepEqual(got.Columns, s.Columns) {
			t.Errorf("n=%d columns mismatch", n)
		}
	}
}

func TestCodecDeterministic(t *testing.T) {
	s := sampleSeries(64)
	a, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two encodes of the same series differ")
	}
}

func TestEncodeRejectsRaggedColumns(t *testing.T) {
	s := sampleSeries(4)
	s.Columns[3] = s.Columns[3][:2]
	if _, err := Encode(s); err == nil {
		t.Error("Encode accepted a short column")
	}
	s = sampleSeries(4)
	s.Columns = s.Columns[:NumMetrics-1]
	if _, err := Encode(s); err == nil {
		t.Error("Encode accepted a metrics/columns width mismatch")
	}
}

// TestDecodeTruncation chops the document at every length: every prefix
// must fail cleanly with ErrCorrupt (a torn sidecar is never accepted).
func TestDecodeTruncation(t *testing.T) {
	enc, err := Encode(sampleSeries(16))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("Decode accepted a %d/%d-byte prefix", cut, len(enc))
		} else if !errors.Is(err, ErrCorrupt) && cut >= len(magic)+footerLen {
			// Very short prefixes also wrap ErrCorrupt; version skew is the
			// only non-corrupt failure and truncation cannot produce it
			// before the meta frame parses.
			t.Fatalf("cut %d: error does not wrap ErrCorrupt: %v", cut, err)
		}
	}
}

// TestDecodeBitFlips flips every bit of the document: no flip may be
// silently accepted as the original, and none may panic. (Almost all are
// caught by the CRC frames, the magic, or the footer; a flip inside the
// meta JSON that survives parsing may legally decode to different meta.)
func TestDecodeBitFlips(t *testing.T) {
	orig := sampleSeries(8)
	enc, err := Encode(orig)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(enc); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), enc...)
			mut[i] ^= 1 << bit
			got, err := Decode(mut)
			if err != nil {
				continue
			}
			if reflect.DeepEqual(got.Meta, orig.Meta) && reflect.DeepEqual(got.Columns, orig.Columns) {
				t.Fatalf("flip byte %d bit %d: decode silently returned the original", i, bit)
			}
		}
	}
}

// TestDecodeVersionSkew patches the meta frame to a future version (and
// repairs its CRC): the decoder must refuse it with a version error, not
// a corruption error — the store leaves such sidecars on disk.
func TestDecodeVersionSkew(t *testing.T) {
	enc, err := Encode(sampleSeries(2))
	if err != nil {
		t.Fatal(err)
	}
	body := enc[len(magic):]
	size, n := binary.Uvarint(body)
	payload := append([]byte(nil), body[n+4:n+4+int(size)]...)
	patched := bytes.Replace(payload, []byte(`"version":1`), []byte(`"version":9`), 1)
	if bytes.Equal(patched, payload) {
		t.Fatal("version field not found in meta payload")
	}
	mut := append([]byte(nil), enc[:len(magic)+n]...)
	mut = binary.LittleEndian.AppendUint32(mut, crc32.ChecksumIEEE(patched))
	mut = append(mut, patched...)
	mut = append(mut, body[n+4+int(size):]...)
	_, err = Decode(mut)
	if err == nil {
		t.Fatal("Decode accepted a future version")
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("version skew reported as corruption: %v", err)
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip: %d -> %d", v, got)
		}
	}
}
