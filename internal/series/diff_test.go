package series

import (
	"math"
	"testing"
)

func TestDiffIdentical(t *testing.T) {
	s := sampleSeries(32)
	rep := Diff(s, s, Options{})
	if rep.Verdict != VerdictPass {
		t.Fatalf("self-diff verdict = %q, want pass (failed: %v)", rep.Verdict, rep.Failed)
	}
	if rep.Intervals != 32 || rep.ExtraA != 0 || rep.ExtraB != 0 {
		t.Errorf("alignment = %d/%d/%d, want 32/0/0", rep.Intervals, rep.ExtraA, rep.ExtraB)
	}
	if len(rep.Metrics) != NumMetrics {
		t.Fatalf("got %d metric diffs, want %d", len(rep.Metrics), NumMetrics)
	}
	for _, md := range rep.Metrics {
		if md.MeanDelta != 0 || md.MeanAbs != 0 || md.MaxAbs != 0 || md.RMS != 0 || md.FirstDivergence != 0 {
			t.Errorf("%s: nonzero residual on self-diff: %+v", md.Metric, md)
		}
		if md.Verdict == VerdictFail {
			t.Errorf("%s: self-diff failed its band", md.Metric)
		}
	}
}

func TestDiffDivergence(t *testing.T) {
	a := sampleSeries(16)
	b := sampleSeries(16)
	ipc := MetricIndex("ipc")
	// Diverge ipc from interval 5 onward, well past the 0.02 band.
	for i := 4; i < 16; i++ {
		b.Columns[ipc][i] += 0.5
	}
	rep := Diff(a, b, Options{IncludeDeltas: true})
	if rep.Verdict != VerdictFail {
		t.Fatal("divergent ipc did not fail the verdict")
	}
	if len(rep.Failed) != 1 || rep.Failed[0] != "ipc" {
		t.Errorf("Failed = %v, want [ipc]", rep.Failed)
	}
	var md *MetricDiff
	for i := range rep.Metrics {
		if rep.Metrics[i].Metric == "ipc" {
			md = &rep.Metrics[i]
		}
	}
	if md == nil {
		t.Fatal("no ipc diff")
	}
	if md.FirstDivergence != 5 {
		t.Errorf("FirstDivergence = %d, want 5", md.FirstDivergence)
	}
	if math.Abs(md.MaxAbs-0.5) > 1e-12 {
		t.Errorf("MaxAbs = %g, want 0.5", md.MaxAbs)
	}
	wantMean := 0.5 * 12 / 16
	if math.Abs(md.MeanDelta-wantMean) > 1e-12 {
		t.Errorf("MeanDelta = %g, want %g", md.MeanDelta, wantMean)
	}
	wantRMS := math.Sqrt(0.25 * 12 / 16)
	if math.Abs(md.RMS-wantRMS) > 1e-12 {
		t.Errorf("RMS = %g, want %g", md.RMS, wantRMS)
	}
	if len(md.Delta) != 16 || md.Delta[4] != 0.5 || md.Delta[0] != 0 {
		t.Errorf("Delta series wrong: len %d", len(md.Delta))
	}
}

func TestDiffAlignment(t *testing.T) {
	a := sampleSeries(20)
	b := sampleSeries(12)
	rep := Diff(a, b, Options{SkipA: 8})
	// 20-8=12 vs 12 → aligned 12, no extras.
	if rep.Intervals != 12 || rep.ExtraA != 0 || rep.ExtraB != 0 {
		t.Errorf("alignment = %d/%d/%d, want 12/0/0", rep.Intervals, rep.ExtraA, rep.ExtraB)
	}
	rep = Diff(a, b, Options{})
	if rep.Intervals != 12 || rep.ExtraA != 8 || rep.ExtraB != 0 {
		t.Errorf("alignment = %d/%d/%d, want 12/8/0", rep.Intervals, rep.ExtraA, rep.ExtraB)
	}
	// Skips larger than the series clamp to empty, not negative.
	rep = Diff(a, b, Options{SkipA: 99})
	if rep.Intervals != 0 {
		t.Errorf("over-skip intervals = %d, want 0", rep.Intervals)
	}
}

func TestDiffCustomTolerances(t *testing.T) {
	a := sampleSeries(4)
	b := sampleSeries(4)
	idx := MetricIndex("pref_sent")
	b.Columns[idx][0] += 100
	// Default band for counts is informational: no failure.
	rep := Diff(a, b, Options{})
	if rep.Verdict != VerdictPass {
		t.Errorf("count drift failed under default (informational) band: %v", rep.Failed)
	}
	// An explicit band turns the same drift into a failure.
	rep = Diff(a, b, Options{Tolerances: map[string]float64{"pref_sent": 1}})
	if rep.Verdict != VerdictFail || len(rep.Failed) != 1 || rep.Failed[0] != "pref_sent" {
		t.Errorf("explicit band did not fail: verdict %q failed %v", rep.Verdict, rep.Failed)
	}
}

func TestDefaultTolerancesCoverCatalog(t *testing.T) {
	tol := DefaultTolerances()
	for _, m := range Catalog {
		if _, ok := tol[m.Name]; !ok {
			t.Errorf("no default tolerance entry for %s", m.Name)
		}
	}
}

func TestMerge(t *testing.T) {
	a := sampleSeries(6)
	b := sampleSeries(4)
	for i := range b.Columns {
		for j := range b.Columns[i] {
			b.Columns[i][j] += 2
		}
	}
	m := Merge(a, b)
	if m.Len() != 4 {
		t.Fatalf("merged length = %d, want 4 (common prefix)", m.Len())
	}
	if m.Meta.Controller != "merged" {
		t.Errorf("Meta.Controller = %q", m.Meta.Controller)
	}
	ca, _ := a.Column("ipc")
	cm, _ := m.Column("ipc")
	for i := range cm {
		want := ca[i] + 1 // mean of v and v+2
		if math.Abs(cm[i]-want) > 1e-12 {
			t.Errorf("merged ipc[%d] = %g, want %g", i, cm[i], want)
		}
	}
	if e := Merge(); e.Len() != 0 {
		t.Errorf("Merge() length = %d, want 0", e.Len())
	}
	if e := Merge(nil, &Series{}); e.Len() != 0 {
		t.Errorf("Merge(nil, empty) length = %d, want 0", e.Len())
	}
	one := Merge(a)
	co, _ := one.Column("ipc")
	for i := range co {
		if co[i] != ca[i] {
			t.Errorf("single-input merge changed values at %d", i)
		}
	}
}
