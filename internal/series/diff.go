package series

import "math"

// Diff verdict values. A metric passes when its max absolute deviation
// stays inside the tolerance band, fails when it escapes, and is
// informational when no band applies (Tolerance < 0) — raw counts, for
// example, where any fixed absolute band would be arbitrary.
const (
	VerdictPass = "pass"
	VerdictFail = "fail"
	VerdictInfo = "info"
)

// DefaultTolerances is the built-in band set: absolute max-deviation
// bounds on the rate/level metrics two equivalent runs must agree on,
// and -1 (informational) for the remaining catalog metrics. The bands
// are deliberately loose enough for sampled-vs-full comparisons (ROADMAP
// item 2) and tight enough that a diverged policy trips them.
func DefaultTolerances() map[string]float64 {
	tol := make(map[string]float64, NumMetrics)
	for _, m := range Catalog {
		tol[m.Name] = -1
	}
	tol["ipc"] = 0.02
	tol["bpki"] = 1.0
	tol["accuracy"] = 0.05
	tol["lateness"] = 0.05
	tol["pollution"] = 0.05
	tol["bus_util"] = 0.05
	tol["dcc_level"] = 0.5
	tol["insertion_pos"] = 0.5
	return tol
}

// Options configures an alignment.
type Options struct {
	// SkipA/SkipB drop leading intervals from each side before aligning —
	// the knob for warmup offsets (e.g. diffing a warmed run against one
	// whose series includes its warmup ramp).
	SkipA int
	SkipB int
	// Tolerances overrides DefaultTolerances; metrics absent from the map
	// are informational.
	Tolerances map[string]float64
	// IncludeDeltas attaches the full per-interval delta series to each
	// MetricDiff (large; off by default).
	IncludeDeltas bool
}

// MetricDiff is one catalog metric's residual summary.
type MetricDiff struct {
	Metric    string  `json:"metric"`
	N         int     `json:"n"`
	MeanDelta float64 `json:"mean_delta"`
	MeanAbs   float64 `json:"mean_abs"`
	MaxAbs    float64 `json:"max_abs"`
	RMS       float64 `json:"rms"`
	// FirstDivergence is the 1-based aligned interval of the first nonzero
	// delta; 0 means the columns never diverge.
	FirstDivergence int `json:"first_divergence"`
	// Tolerance is the band applied; negative means informational.
	Tolerance float64   `json:"tolerance"`
	Verdict   string    `json:"verdict"`
	Delta     []float64 `json:"delta,omitempty"`
}

// Report is a full run-vs-run comparison.
type Report struct {
	MetaA Meta `json:"meta_a"`
	MetaB Meta `json:"meta_b"`
	// Intervals is the aligned length; ExtraA/ExtraB count the intervals
	// each side had beyond it (after skips).
	Intervals int          `json:"intervals"`
	ExtraA    int          `json:"extra_a"`
	ExtraB    int          `json:"extra_b"`
	Metrics   []MetricDiff `json:"metrics"`
	// Verdict is "pass" when every banded metric passes, else "fail".
	Verdict string   `json:"verdict"`
	Failed  []string `json:"failed,omitempty"`
}

// Diff aligns two series interval-by-interval and summarises their
// residuals. Only metrics present in both catalogs are compared (in A's
// order); unequal lengths compare the common prefix after skips.
func Diff(a, b *Series, opts Options) *Report {
	tol := opts.Tolerances
	if tol == nil {
		tol = DefaultTolerances()
	}
	rep := &Report{MetaA: a.Meta, MetaB: b.Meta, Verdict: VerdictPass}

	skipA, skipB := opts.SkipA, opts.SkipB
	if skipA > a.Len() {
		skipA = a.Len()
	}
	if skipB > b.Len() {
		skipB = b.Len()
	}
	if skipA < 0 {
		skipA = 0
	}
	if skipB < 0 {
		skipB = 0
	}
	lenA := a.Len() - skipA
	lenB := b.Len() - skipB
	n := lenA
	if lenB < n {
		n = lenB
	}
	rep.Intervals = n
	rep.ExtraA = lenA - n
	rep.ExtraB = lenB - n

	for i, name := range a.Meta.Metrics {
		colB, ok := b.Column(name)
		if !ok {
			continue
		}
		colA := a.Columns[i]
		md := diffColumn(name, colA[skipA:skipA+n], colB[skipB:skipB+n], opts.IncludeDeltas)
		band, banded := tol[name]
		if !banded {
			band = -1
		}
		md.Tolerance = band
		switch {
		case band < 0:
			md.Verdict = VerdictInfo
		case md.MaxAbs > band:
			md.Verdict = VerdictFail
			rep.Verdict = VerdictFail
			rep.Failed = append(rep.Failed, name)
		default:
			md.Verdict = VerdictPass
		}
		rep.Metrics = append(rep.Metrics, md)
	}
	return rep
}

func diffColumn(name string, a, b []float64, keepDeltas bool) MetricDiff {
	md := MetricDiff{Metric: name, N: len(a)}
	if len(a) == 0 {
		return md
	}
	var sum, sumAbs, sumSq float64
	var deltas []float64
	if keepDeltas {
		deltas = make([]float64, len(a))
	}
	for i := range a {
		d := b[i] - a[i]
		if keepDeltas {
			deltas[i] = d
		}
		sum += d
		ad := math.Abs(d)
		sumAbs += ad
		sumSq += d * d
		if ad > md.MaxAbs {
			md.MaxAbs = ad
		}
		if d != 0 && md.FirstDivergence == 0 {
			md.FirstDivergence = i + 1
		}
	}
	nf := float64(len(a))
	md.MeanDelta = sum / nf
	md.MeanAbs = sumAbs / nf
	md.RMS = math.Sqrt(sumSq / nf)
	md.Delta = deltas
	return md
}
