package series

import (
	"bytes"
	"testing"

	"fdpsim/internal/sim"
)

// seriesTestConfig is a small full-FDP run with attribution, sized so a
// few dozen intervals close (mirrors the sim package's attribution tests).
func seriesTestConfig() sim.Config {
	cfg := sim.WithFDP(sim.PrefStream)
	cfg.Workload = "chaserand"
	cfg.MaxInsts = 150_000
	cfg.L2Blocks = 1024
	cfg.FDP.TInterval = 64
	cfg.Attribution = true
	cfg.Seed = 7
	return cfg
}

// TestSeriesDeterministic runs the same (config, seed) twice with fresh
// recorders: the encoded sidecars must be byte-identical — the property
// that makes a cache-hit replay diff to zero residual.
func TestSeriesDeterministic(t *testing.T) {
	encode := func() []byte {
		rec := &Recorder{}
		cfg := seriesTestConfig()
		cfg.Tracer = rec
		if _, err := sim.Run(cfg); err != nil {
			t.Fatalf("Run: %v", err)
		}
		s := rec.Series()
		s.Meta.Workload = cfg.Workload
		s.Meta.Prefetcher = "stream"
		enc, err := Encode(s)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		return enc
	}
	a := encode()
	b := encode()
	if !bytes.Equal(a, b) {
		t.Error("same (config, seed) produced different sidecars")
	}
	// And the self-diff of the decoded series is exactly zero everywhere.
	sa, err := Decode(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	rep := Diff(sa, sb, Options{})
	for _, md := range rep.Metrics {
		if md.RMS != 0 || md.MaxAbs != 0 || md.FirstDivergence != 0 {
			t.Errorf("%s: nonzero residual between identical runs", md.Metric)
		}
	}
}

// TestSeriesCrossCheck validates recorded columns against the run's own
// Result: interval counts match, the cumulative cycle/retire stamps
// reconstruct from the deltas, the final DCC level agrees, per-interval
// IPC is internally consistent, and the raw prefetch counts sum to (at
// most, the trailing partial interval is unsampled) the whole-run totals.
func TestSeriesCrossCheck(t *testing.T) {
	rec := &Recorder{}
	cfg := seriesTestConfig()
	cfg.Tracer = rec
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := rec.Series()
	if s.Len() == 0 {
		t.Fatal("no intervals recorded")
	}
	if uint64(s.Len()) != res.Intervals {
		t.Errorf("series has %d intervals, Result.Intervals = %d", s.Len(), res.Intervals)
	}

	level, _ := s.Column("dcc_level")
	if got := int(level[len(level)-1]); got != res.FinalLevel {
		t.Errorf("last dcc_level = %d, Result.FinalLevel = %d", got, res.FinalLevel)
	}

	cycles, _ := s.Column("cycles")
	retired, _ := s.Column("retired")
	ipc, _ := s.Column("ipc")
	var sumCycles, sumRetired uint64
	for i := range cycles {
		dc, dr := uint64(cycles[i]), uint64(retired[i])
		sumCycles += dc
		sumRetired += dr
		var want float64
		if dc > 0 {
			want = float64(dr) / float64(dc)
		}
		if ipc[i] != want {
			t.Errorf("ipc[%d] = %g, want %g from the cycle/retire columns", i, ipc[i], want)
		}
	}
	// The deltas reconstruct the last boundary's cumulative stamps, which
	// cannot exceed the whole-run (post-warmup) totals.
	if sumCycles > res.Counters.Cycles {
		t.Errorf("sum(cycles) = %d exceeds Counters.Cycles = %d", sumCycles, res.Counters.Cycles)
	}
	if sumRetired > res.Counters.Retired {
		t.Errorf("sum(retired) = %d exceeds Counters.Retired = %d", sumRetired, res.Counters.Retired)
	}
	if sumCycles == 0 || sumRetired == 0 {
		t.Error("cumulative stamps never advanced")
	}

	for name, total := range map[string]uint64{
		"pref_sent":     res.Counters.PrefSent,
		"pref_used":     res.Counters.PrefUsed,
		"pref_late":     res.Counters.PrefLate,
		"demand_misses": res.Counters.DemandMisses,
	} {
		col, _ := s.Column(name)
		var sum uint64
		for _, v := range col {
			sum += uint64(v)
		}
		if sum > total {
			t.Errorf("sum(%s) = %d exceeds whole-run total %d", name, sum, total)
		}
		if total > 0 && sum == 0 {
			t.Errorf("sum(%s) = 0 but whole-run total is %d", name, total)
		}
	}

	// Attribution shares are populated and sane (the run has it enabled).
	for _, name := range []string{"stall_load_miss", "bus_util", "row_hit_rate"} {
		col, _ := s.Column(name)
		var max float64
		for _, v := range col {
			if v < 0 || v > 1 {
				t.Errorf("%s out of [0,1]: %g", name, v)
			}
			if v > max {
				max = v
			}
		}
		if max == 0 {
			t.Errorf("%s never nonzero despite attribution", name)
		}
	}
}

// TestSeriesDoesNotPerturb re-runs the same configuration with and
// without a recorder attached: every simulation observable must be
// bit-identical (acceptance: recording series perturbs nothing).
func TestSeriesDoesNotPerturb(t *testing.T) {
	cfg := seriesTestConfig()
	bare, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("Run (no recorder): %v", err)
	}
	rec := &Recorder{}
	cfg.Tracer = rec
	traced, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("Run (recorder): %v", err)
	}
	if bare.Counters != traced.Counters {
		t.Errorf("Counters differ:\nbare:   %+v\ntraced: %+v", bare.Counters, traced.Counters)
	}
	if bare.DRAM != traced.DRAM {
		t.Errorf("DRAM stats differ:\nbare:   %+v\ntraced: %+v", bare.DRAM, traced.DRAM)
	}
	if bare.IPC != traced.IPC || bare.BPKI != traced.BPKI || bare.FinalLevel != traced.FinalLevel ||
		bare.Intervals != traced.Intervals {
		t.Errorf("derived metrics differ: IPC %g/%g BPKI %g/%g level %d/%d intervals %d/%d",
			bare.IPC, traced.IPC, bare.BPKI, traced.BPKI,
			bare.FinalLevel, traced.FinalLevel, bare.Intervals, traced.Intervals)
	}
	if rec.Len() == 0 {
		t.Error("recorder saw no events")
	}
}
