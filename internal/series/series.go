// Package series is the interval-timeseries layer: a compact columnar
// store for the per-FDP-interval metrics the paper's feedback loop is
// built on (IPC, BPKI, accuracy, lateness, pollution, the DCC level, the
// insertion position, bus utilization, and the attribution layer's stall
// and pressure signals).
//
// The Recorder is a sim.Tracer: it derives one row of the typed metric
// catalog from every DecisionEvent and appends it column-wise. Encode
// packs the columns into a delta-encoded, CRC-framed binary document
// (persisted by internal/store as a <fp>.series.bin sidecar next to the
// Result and the decision trace); Decode reads it back. On top of the
// Series sit windowed downsampling (Downsample: min/mean/max/p95 per
// step), element-wise merging across runs (Merge, the sweep-level view)
// and the run-diff engine (Diff): align two runs interval-by-interval,
// compute residuals and a verdict against tolerance bands — the
// calibration substrate the sampled-simulation error bars and the
// analytical twin (ROADMAP items 2 and 3) plug into.
package series

import (
	"sync"

	"fdpsim/internal/sim"
)

// Kind types a catalog metric's column encoding.
type Kind int

const (
	// KindInt marks integral columns (counts, levels); encoded as
	// zigzag-delta uvarints, which collapse slowly-varying counters.
	KindInt Kind = iota
	// KindFloat marks real-valued columns; encoded as XOR-of-IEEE-bits
	// deltas, which collapse repeated and slowly-drifting values.
	KindFloat
)

// Metric describes one catalog column.
type Metric struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	Unit string `json:"unit,omitempty"`
	Help string `json:"help"`
}

// Catalog is the typed metric catalog, in column order. The order is part
// of the binary format: byte-identical encoding requires a stable catalog,
// so new metrics append, never reorder.
var Catalog = []Metric{
	{Name: "cycles", Kind: KindInt, Unit: "cycles", Help: "core cycles elapsed in the interval (0 during warmup)"},
	{Name: "retired", Kind: KindInt, Unit: "insts", Help: "instructions retired in the interval (0 during warmup)"},
	{Name: "ipc", Kind: KindFloat, Help: "retired/cycles for the interval"},
	{Name: "bpki", Kind: KindFloat, Help: "estimated bus accesses per 1000 retired instructions: 1000*(demand_misses+pref_sent)/retired (excludes writebacks)"},
	{Name: "accuracy", Kind: KindFloat, Help: "prefetch accuracy (Equation 1 decayed) at the boundary"},
	{Name: "lateness", Kind: KindFloat, Help: "prefetch lateness at the boundary"},
	{Name: "pollution", Kind: KindFloat, Help: "cache-pollution metric at the boundary"},
	{Name: "dcc_level", Kind: KindInt, Unit: "level", Help: "Dynamic Configuration Counter after the boundary's update (1..5)"},
	{Name: "insertion_pos", Kind: KindInt, Help: "insertion position chosen for the next interval: 0=MRU 1=MID 2=LRU-4 3=LRU (-1 unknown)"},
	{Name: "bus_util", Kind: KindFloat, Help: "fraction of the interval's cycles the shared data bus was busy"},
	{Name: "retire_full", Kind: KindFloat, Help: "share of interval cycles retiring a full width (attribution only)"},
	{Name: "retire_partial", Kind: KindFloat, Help: "share of interval cycles retiring partially (attribution only)"},
	{Name: "stall_load_miss", Kind: KindFloat, Help: "share of interval cycles stalled on a head load miss (attribution only)"},
	{Name: "stall_rob_full", Kind: KindFloat, Help: "share of interval cycles stalled with the ROB full (attribution only)"},
	{Name: "stall_dram_bp", Kind: KindFloat, Help: "share of interval cycles stalled on DRAM backpressure (attribution only)"},
	{Name: "stall_ifetch", Kind: KindFloat, Help: "share of interval cycles stalled on instruction fetch (attribution only)"},
	{Name: "stall_frontend", Kind: KindFloat, Help: "share of interval cycles lost to dispatch gaps (attribution only)"},
	{Name: "mshr_mean", Kind: KindFloat, Help: "mean MSHR occupancy over the interval (attribution only)"},
	{Name: "queue_mean", Kind: KindFloat, Help: "mean DRAM queue depth over the interval (attribution only)"},
	{Name: "row_hit_rate", Kind: KindFloat, Help: "DRAM row-buffer hit rate over the interval (attribution only)"},
	{Name: "pref_sent", Kind: KindInt, Unit: "prefetches", Help: "prefetches sent on the bus in the interval (raw count)"},
	{Name: "pref_used", Kind: KindInt, Unit: "prefetches", Help: "prefetched blocks first used by demand in the interval (raw count)"},
	{Name: "pref_late", Kind: KindInt, Unit: "prefetches", Help: "demand hits on still-in-flight prefetches in the interval (raw count)"},
	{Name: "pollution_misses", Kind: KindInt, Unit: "misses", Help: "demand misses the pollution filter attributes to prefetching (raw count)"},
	{Name: "demand_misses", Kind: KindInt, Unit: "misses", Help: "L2 demand misses in the interval (raw count)"},
}

// NumMetrics is the catalog width.
var NumMetrics = len(Catalog)

// MetricIndex returns the catalog position of a metric name, or -1.
func MetricIndex(name string) int {
	for i, m := range Catalog {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// Meta is the series header: identity labels plus the column layout the
// payload frames follow.
type Meta struct {
	Version    int      `json:"version"`
	Workload   string   `json:"workload,omitempty"`
	Prefetcher string   `json:"prefetcher,omitempty"`
	Controller string   `json:"controller,omitempty"`
	Intervals  int      `json:"intervals"`
	Metrics    []string `json:"metrics"`
	// Truncated counts intervals dropped by the Recorder's Limit; a
	// non-zero value flags the series as a prefix of the run.
	Truncated uint64 `json:"truncated,omitempty"`
}

// Series is a decoded (or recorded) interval timeseries: one column of
// float64 values per Meta.Metrics entry, all the same length.
type Series struct {
	Meta    Meta
	Columns [][]float64 // parallel to Meta.Metrics
}

// Len returns the interval count.
func (s *Series) Len() int { return s.Meta.Intervals }

// Column returns the values for a metric name.
func (s *Series) Column(name string) ([]float64, bool) {
	for i, m := range s.Meta.Metrics {
		if m == name {
			return s.Columns[i], true
		}
	}
	return nil, false
}

// insertionIndex maps a DecisionEvent insertion label to its catalog code.
func insertionIndex(pos string) int {
	switch pos {
	case "MRU":
		return 0
	case "MID":
		return 1
	case "LRU-4":
		return 2
	case "LRU":
		return 3
	default:
		return -1
	}
}

// Recorder derives one catalog row per FDP interval boundary and appends
// it column-wise. It implements sim.Tracer and is driven synchronously
// from the simulation loop; with capacity pre-allocated via Reserve, an
// append touches no heap (guarded by TestRecorderAllocs), so recording a
// series perturbs neither the run nor the engine's 0 allocs/op contract.
type Recorder struct {
	// Core filters multi-core event streams: only events from this core
	// are recorded (0, the default, fits single-core runs).
	Core int
	// Limit, when non-zero, caps the recorded interval count; later
	// boundaries increment Meta.Truncated instead of growing the columns.
	Limit int
	// Meta seeds the encoded header's identity labels. Controller is
	// filled from the first event when left empty.
	Meta Meta

	mu        sync.Mutex
	cols      [][]float64
	n         int
	truncated uint64
	prevCycle uint64
	prevRet   uint64
}

// Reserve pre-allocates capacity for n intervals so the per-boundary
// append path stays allocation-free up to that length.
func (r *Recorder) Reserve(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensureCols()
	for i := range r.cols {
		if cap(r.cols[i]) < n {
			grown := make([]float64, len(r.cols[i]), n)
			copy(grown, r.cols[i])
			r.cols[i] = grown
		}
	}
}

// ensureCols lazily allocates the column slice headers. Caller holds mu.
func (r *Recorder) ensureCols() {
	if r.cols == nil {
		r.cols = make([][]float64, NumMetrics)
	}
}

// Len returns the recorded interval count.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Truncated reports how many boundaries the Limit discarded.
func (r *Recorder) Truncated() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.truncated
}

// TraceDecision implements sim.Tracer: derive the catalog row for the
// closed interval and append it.
func (r *Recorder) TraceDecision(ev sim.DecisionEvent) {
	if ev.Core != r.Core {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Limit > 0 && r.n >= r.Limit {
		r.truncated++
		return
	}
	r.ensureCols()

	// Cycle/Retired are cumulative post-warmup stamps (zero while warming
	// up), so consecutive-boundary deltas are the interval's own counts.
	dc := ev.Cycle - r.prevCycle
	dr := ev.Retired - r.prevRet
	r.prevCycle, r.prevRet = ev.Cycle, ev.Retired

	var ipc float64
	if dc > 0 {
		ipc = float64(dr) / float64(dc)
	}
	// Per-interval bus traffic is estimated from the event counters the
	// boundary carries: demand misses approximate bus reads and PrefSent
	// counts bus prefetches; writebacks are not sampled per interval, so
	// this runs a little under the whole-run BPKI. The catalog documents
	// the estimate; cross-checks against Result use exact invariants.
	var bpki float64
	if dr > 0 {
		bpki = 1000 * float64(ev.Raw.DemandMisses+ev.Raw.PrefSent) / float64(dr)
	}
	c := ev.Sample.Cycles
	row := [...]float64{
		float64(dc),
		float64(dr),
		ipc,
		bpki,
		ev.Accuracy,
		ev.Lateness,
		ev.Pollution,
		float64(ev.DCCAfter),
		float64(insertionIndex(ev.Insertion)),
		ev.BusUtil,
		c.Share(c.RetireFull),
		c.Share(c.RetirePartial),
		c.Share(c.StallLoadMiss),
		c.Share(c.StallROBFull),
		c.Share(c.StallDRAMBP),
		c.Share(c.StallIFetch),
		c.Share(c.StallFrontend),
		ev.Sample.MSHRMean,
		ev.Sample.QueueMean,
		ev.Sample.RowHitRate(),
		float64(ev.Raw.PrefSent),
		float64(ev.Raw.PrefUsed),
		float64(ev.Raw.PrefLate),
		float64(ev.Raw.PollutionMisses),
		float64(ev.Raw.DemandMisses),
	}
	for i, v := range row {
		r.cols[i] = append(r.cols[i], v)
	}
	r.n++
	if r.Meta.Controller == "" {
		r.Meta.Controller = ev.Controller
	}
}

// Series snapshots the recorded columns. The copy is deep, so the
// returned Series is stable even if the recorder keeps appending.
func (r *Recorder) Series() *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensureCols()
	meta := r.Meta
	meta.Version = formatVersion
	meta.Intervals = r.n
	meta.Truncated = r.truncated
	meta.Metrics = make([]string, NumMetrics)
	cols := make([][]float64, NumMetrics)
	for i, m := range Catalog {
		meta.Metrics[i] = m.Name
		cols[i] = append([]float64(nil), r.cols[i]...)
	}
	return &Series{Meta: meta, Columns: cols}
}
