package series

import "testing"

func TestDownsample(t *testing.T) {
	col := []float64{1, 2, 3, 4, 5, 6, 7}
	bs := Downsample(col, 3)
	if len(bs) != 3 {
		t.Fatalf("got %d buckets, want 3", len(bs))
	}
	b := bs[0]
	if b.Start != 1 || b.N != 3 || b.Min != 1 || b.Max != 3 || b.Mean != 2 || b.P95 != 3 {
		t.Errorf("bucket 0 = %+v", b)
	}
	last := bs[2]
	if last.Start != 7 || last.N != 1 || last.Min != 7 || last.Max != 7 || last.Mean != 7 || last.P95 != 7 {
		t.Errorf("last bucket = %+v", last)
	}
}

func TestDownsampleStepOne(t *testing.T) {
	bs := Downsample([]float64{4, 9}, 1)
	if len(bs) != 2 || bs[0].Mean != 4 || bs[1].Mean != 9 {
		t.Errorf("step-1 buckets = %+v", bs)
	}
	if got := Downsample(nil, 5); len(got) != 0 {
		t.Errorf("empty column produced %d buckets", len(got))
	}
}

func TestDownsampleP95(t *testing.T) {
	col := make([]float64, 100)
	for i := range col {
		col[i] = float64(i + 1) // 1..100
	}
	bs := Downsample(col, 100)
	// Nearest-rank p95 of 1..100 is the 95th smallest value.
	if bs[0].P95 != 95 {
		t.Errorf("P95 = %g, want 95", bs[0].P95)
	}
}
