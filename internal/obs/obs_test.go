package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"fdpsim/internal/obs"
	"fdpsim/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files from the current simulator output")

// hostileTraceConfig is the hostile-workload study (examples/hostile)
// shrunk for testing: a pointer chase that FDP throttles, with a small L2
// and TInterval=64 so sampling intervals close fast.
func hostileTraceConfig() sim.Config {
	cfg := sim.WithFDP(sim.PrefStream)
	cfg.Workload = "chaserand"
	cfg.MaxInsts = 150_000
	cfg.L2Blocks = 1024
	cfg.FDP.TInterval = 64
	return cfg
}

// runJSONL executes the config with a JSONL tracer and returns the trace
// bytes alongside the run's Result.
func runJSONL(t *testing.T, cfg sim.Config) ([]byte, sim.Result) {
	t.Helper()
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	cfg.Tracer = j
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("jsonl close: %v", err)
	}
	return buf.Bytes(), res
}

// TestGoldenHostileTrace pins the decision trace of the hostile example:
// two runs must produce byte-identical JSONL (the trace is deterministic),
// and the Table 2 case sequence and DCC trajectory must match the
// committed golden file. Regenerate with: go test ./internal/obs -update
func TestGoldenHostileTrace(t *testing.T) {
	got1, res := runJSONL(t, hostileTraceConfig())
	got2, _ := runJSONL(t, hostileTraceConfig())
	if !bytes.Equal(got1, got2) {
		t.Fatal("two identical runs produced different decision traces; the trace is nondeterministic")
	}

	events, err := obs.ReadJSONL(bytes.NewReader(got1))
	if err != nil {
		t.Fatalf("re-reading trace: %v", err)
	}
	if uint64(len(events)) != res.Intervals || res.Intervals == 0 {
		t.Fatalf("trace has %d events, run closed %d intervals", len(events), res.Intervals)
	}
	if last := events[len(events)-1]; last.DCCAfter != res.FinalLevel {
		t.Errorf("trace ends at DCC %d, Result.FinalLevel is %d", last.DCCAfter, res.FinalLevel)
	}

	golden := filepath.Join("testdata", "hostile_decision_trace.golden.jsonl")
	if *update {
		if err := os.WriteFile(golden, got1, 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got1, want) {
		// Diff on the decision sequence, which is what the golden pins.
		wantEvents, _ := obs.ReadJSONL(bytes.NewReader(want))
		for i := range events {
			if i >= len(wantEvents) {
				break
			}
			g, w := events[i], wantEvents[i]
			if g.Case != w.Case || g.DCCAfter != w.DCCAfter || g.Insertion != w.Insertion {
				t.Errorf("interval %d: got case=%d dcc=%d insert=%s, golden case=%d dcc=%d insert=%s",
					i+1, g.Case, g.DCCAfter, g.Insertion, w.Case, w.DCCAfter, w.Insertion)
			}
		}
		t.Fatalf("decision trace deviates from golden (%d vs %d events); run with -update if the change is intended",
			len(events), len(wantEvents))
	}
}

// TestJSONLRoundTrip checks Write/Read are inverses.
func TestJSONLRoundTrip(t *testing.T) {
	got, _ := runJSONL(t, hostileTraceConfig())
	events, err := obs.ReadJSONL(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf.Bytes()) {
		t.Fatal("JSONL round-trip is not byte-stable")
	}
}

// TestChromeTrace checks the exporter emits one valid trace_event
// document with the documented counter tracks, one point per interval.
func TestChromeTrace(t *testing.T) {
	raw, res := runJSONL(t, hostileTraceConfig())
	events, err := obs.ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteChrome(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	tracks := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "C" {
			tracks[ev.Name]++
		}
	}
	for _, want := range []string{"accuracy %", "lateness %", "pollution %", "DCC", "prefetch config", "insertion depth"} {
		if got := tracks[want]; got != int(res.Intervals) {
			t.Errorf("counter track %q has %d points, want one per interval (%d)", want, got, res.Intervals)
		}
	}
}

// blockingSink simulates a wedged consumer: every delivery blocks until
// the test releases it.
type blockingSink struct {
	release <-chan struct{}
	n       atomic.Uint64
}

func (b *blockingSink) TraceDecision(ev sim.DecisionEvent) {
	<-b.release
	b.n.Add(1)
}

// TestAsyncBlockingSink proves the run-stall contract under -race: with
// the drain goroutine wedged on a blocking sink, the simulation still
// completes (events are dropped and counted, the retire loop never
// blocks), and delivered + dropped accounts for every interval.
func TestAsyncBlockingSink(t *testing.T) {
	release := make(chan struct{})
	sink := &blockingSink{release: release}
	async := obs.NewAsync(sink, 2)

	cfg := hostileTraceConfig()
	cfg.Tracer = async
	start := time.Now()
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("Run with blocked sink: %v", err)
	}
	elapsed := time.Since(start)
	if res.Intervals < 8 {
		t.Fatalf("run closed only %d intervals; the scenario needs sustained interval traffic", res.Intervals)
	}
	if async.Dropped() == 0 {
		t.Fatal("no events dropped despite a wedged sink and a 2-event buffer")
	}
	t.Logf("run finished in %v with sink wedged: %d intervals, %d dropped", elapsed, res.Intervals, async.Dropped())

	close(release) // un-wedge the consumer; Close drains the buffer
	if err := async.Close(); err != nil {
		t.Fatalf("async close: %v", err)
	}
	if got := sink.n.Load() + async.Dropped(); got != res.Intervals {
		t.Errorf("delivered(%d) + dropped(%d) = %d, want every interval (%d)",
			sink.n.Load(), async.Dropped(), got, res.Intervals)
	}
}

// TestCollectorLimit checks the in-memory sink's bound.
func TestCollectorLimit(t *testing.T) {
	c := &obs.Collector{Limit: 3}
	for i := 0; i < 10; i++ {
		c.TraceDecision(sim.DecisionEvent{Interval: uint64(i + 1)})
	}
	if got := len(c.Events()); got != 3 {
		t.Fatalf("collector kept %d events, want 3", got)
	}
	if got := c.Truncated(); got != 7 {
		t.Fatalf("truncated = %d, want 7", got)
	}
	if !reflect.DeepEqual(c.Events()[2].Interval, uint64(3)) {
		t.Fatal("collector did not keep the earliest events")
	}
}
