package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"fdpsim/internal/sim"
)

// DecisionCSVHeader is the column layout of the -decision-log feature
// dump. The first eight columns are the controller feature vector in
// control.FeatureNames() order (pinned by a test); the remaining
// columns are the decision labels a trainer fits against (delta,
// insertion) plus provenance (controller, case, core, interval).
var DecisionCSVHeader = []string{
	"accuracy", "lateness", "pollution", "bus_util",
	"level", "acc_class", "late", "polluting",
	"delta", "insertion",
	"controller", "case", "core", "interval",
}

// DecisionCSV streams DecisionEvents as a CSV feature dump for offline
// controller training (scripts/train_tree.go consumes it). One row per
// interval boundary, header first; write errors are sticky and surface
// on Close, like the JSONL sink.
type DecisionCSV struct {
	bw  *bufio.Writer
	err error
	n   int
	row []byte
}

// NewDecisionCSV returns a DecisionCSV sink over w and writes the
// header. The caller owns w (Close flushes but does not close it).
func NewDecisionCSV(w io.Writer) *DecisionCSV {
	bw := bufio.NewWriter(w)
	d := &DecisionCSV{bw: bw, row: make([]byte, 0, 256)}
	if _, err := bw.WriteString(strings.Join(DecisionCSVHeader, ",") + "\n"); err != nil {
		d.err = fmt.Errorf("obs: csv header: %w", err)
	}
	return d
}

// TraceDecision implements sim.Tracer.
func (d *DecisionCSV) TraceDecision(ev sim.DecisionEvent) {
	if d.err != nil {
		return
	}
	b := d.row[:0]
	b = strconv.AppendFloat(b, ev.Accuracy, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, ev.Lateness, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, ev.Pollution, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, ev.BusUtil, 'g', -1, 64)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(ev.DCCBefore), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(accClassOrdinal(ev.AccuracyClass)), 10)
	b = append(b, ',')
	b = appendBool01(b, ev.Late)
	b = append(b, ',')
	b = appendBool01(b, ev.Polluting)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(ev.DCCAfter-ev.DCCBefore), 10)
	b = append(b, ',')
	b = append(b, strings.ToLower(ev.Insertion)...)
	b = append(b, ',')
	b = append(b, ev.Controller...)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(ev.Case), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(ev.Core), 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, ev.Interval, 10)
	b = append(b, '\n')
	d.row = b[:0]
	if _, err := d.bw.Write(b); err != nil {
		d.err = fmt.Errorf("obs: csv write: %w", err)
		return
	}
	d.n++
}

// Rows returns how many data rows were written.
func (d *DecisionCSV) Rows() int { return d.n }

// Err returns the sticky write error, if any.
func (d *DecisionCSV) Err() error { return d.err }

// Close flushes buffered output and returns the first error encountered.
func (d *DecisionCSV) Close() error {
	if err := d.bw.Flush(); err != nil && d.err == nil {
		d.err = fmt.Errorf("obs: csv flush: %w", err)
	}
	return d.err
}

func accClassOrdinal(s string) int {
	switch s {
	case "Low":
		return 0
	case "Medium":
		return 1
	default: // "High"
		return 2
	}
}

func appendBool01(b []byte, v bool) []byte {
	if v {
		return append(b, '1')
	}
	return append(b, '0')
}
