package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteSpansChrome renders fabric spans as one Chrome trace_event
// document (loadable in Perfetto / chrome://tracing), the sibling of
// WriteChrome for decision events. The lane mapping is the one the sweep
// fabric wants on a timeline:
//
//   - one trace *process* (pid) per actor — each fleet worker gets its
//     own lane group, so a two-worker sweep renders as two stacked lanes;
//   - one *thread* (tid) per (actor, lane) pair — within a worker, each
//     tenant's work is its own row;
//   - each span is a complete event ("X") whose args carry the trace,
//     span and parent IDs plus the span's attributes;
//   - span events (lease renewals, claim waits, steals) become instant
//     events ("i") at their timestamps.
//
// Timestamps are microseconds relative to the earliest span start, so
// the timeline opens at zero rather than at the Unix epoch.
func WriteSpansChrome(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}

	var epoch time.Time
	for _, s := range spans {
		if epoch.IsZero() || s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	us := func(t time.Time) float64 {
		if t.Before(epoch) {
			return 0
		}
		return float64(t.Sub(epoch).Microseconds())
	}

	// Deterministic lane numbering: sorted actor names → pids, sorted
	// (actor, lane) pairs → tids. Unattributed spans land on lane 0.
	pids := map[string]int{}
	tids := map[string]int{}
	var actors []string
	type row struct{ actor, lane string }
	var rows []row
	seenRow := map[row]bool{}
	for _, s := range spans {
		if _, ok := pids[s.Actor]; !ok {
			pids[s.Actor] = 0
			actors = append(actors, s.Actor)
		}
		r := row{s.Actor, s.Lane}
		if !seenRow[r] {
			seenRow[r] = true
			rows = append(rows, r)
		}
	}
	sort.Strings(actors)
	for i, a := range actors {
		pids[a] = i + 1
	}
	sort.Slice(rows, func(i, k int) bool {
		if rows[i].actor != rows[k].actor {
			return rows[i].actor < rows[k].actor
		}
		return rows[i].lane < rows[k].lane
	})
	for i, r := range rows {
		tids[r.actor+"\x00"+r.lane] = i + 1
	}

	n := 0
	emit := func(v any) error {
		raw, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("obs: span chrome encode: %w", err)
		}
		if n > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		n++
		_, err = bw.Write(raw)
		return err
	}

	for _, a := range actors {
		name := a
		if name == "" {
			name = "fabric"
		}
		if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: pids[a],
			Args: map[string]any{"name": name}}); err != nil {
			return err
		}
	}
	for _, r := range rows {
		name := r.lane
		if name == "" {
			name = "(default)"
		}
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M",
			Pid: pids[r.actor], Tid: tids[r.actor+"\x00"+r.lane],
			Args: map[string]any{"name": "tenant " + name}}); err != nil {
			return err
		}
	}

	for _, s := range spans {
		pid, tid := pids[s.Actor], tids[s.Actor+"\x00"+s.Lane]
		args := map[string]any{
			"trace_id": s.TraceID,
			"span_id":  s.SpanID,
		}
		if s.Parent != "" {
			args["parent_id"] = s.Parent
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		// The complete-event form needs a duration; Perfetto rejects
		// negative ones, so torn cross-process clocks clamp to zero.
		ev := struct {
			chromeEvent
			Dur float64 `json:"dur"`
		}{
			chromeEvent: chromeEvent{Name: s.Name, Ph: "X", Ts: us(s.Start), Pid: pid, Tid: tid, Args: args},
			Dur:         float64(s.Duration().Microseconds()),
		}
		if err := emit(ev); err != nil {
			return err
		}
		for _, e := range s.Events {
			eargs := map[string]any{"span_id": s.SpanID}
			for k, v := range e.Attrs {
				eargs[k] = v
			}
			if err := emit(chromeEvent{Name: e.Name, Ph: "i", Ts: us(e.Time),
				Pid: pid, Tid: tid, S: "t", Args: eargs}); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("]}"); err != nil {
		return err
	}
	return bw.Flush()
}
