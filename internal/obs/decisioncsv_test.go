package obs

import (
	"strings"
	"testing"

	"fdpsim/internal/control"
	"fdpsim/internal/sim"
)

// TestDecisionCSVHeaderMatchesFeatures pins the contract between the
// -decision-log dump and the trainer: the first columns are exactly the
// controller feature vector, in control.FeatureNames() order.
func TestDecisionCSVHeaderMatchesFeatures(t *testing.T) {
	features := control.FeatureNames()
	if len(DecisionCSVHeader) < len(features) {
		t.Fatalf("header has %d columns, need at least %d", len(DecisionCSVHeader), len(features))
	}
	for i, f := range features {
		if DecisionCSVHeader[i] != f {
			t.Errorf("column %d = %q, want feature %q", i, DecisionCSVHeader[i], f)
		}
	}
}

func TestDecisionCSV(t *testing.T) {
	var sb strings.Builder
	d := NewDecisionCSV(&sb)
	d.TraceDecision(sim.DecisionEvent{
		Core: 1, Interval: 7,
		Accuracy: 0.5, Lateness: 0.25, Pollution: 0.125, BusUtil: 0.75,
		AccuracyClass: "Medium", Late: true, Polluting: false,
		Controller: "fdp", Case: 5,
		DCCBefore: 3, DCCAfter: 4,
		Insertion: "LRU-4",
	})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if d.Rows() != 1 {
		t.Fatalf("Rows() = %d", d.Rows())
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + 1 row", len(lines))
	}
	if lines[0] != strings.Join(DecisionCSVHeader, ",") {
		t.Errorf("header = %q", lines[0])
	}
	want := "0.5,0.25,0.125,0.75,3,1,1,0,1,lru-4,fdp,5,1,7"
	if lines[1] != want {
		t.Errorf("row = %q, want %q", lines[1], want)
	}
}
