package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Spans are the fabric-side counterpart of the simulator's DecisionEvent
// stream: where a decision trace explains what the FDP controller did
// inside one run, a span trace explains what the service fabric did
// around it — where a job waited, which worker claimed its fingerprint,
// how long the simulation and the store write took, and how a sweep's
// cells spread across a fleet. One trace ID threads a job's (or a whole
// sweep's) life across processes; spans parent onto each other to form
// the submit → queue → claim → run → store tree.
//
// The same discipline as the decision tracer applies: recording a span
// must never block or stall the caller. SpanBuffer drops (and counts)
// once full; AsyncSpans decouples I/O sinks exactly like Async does for
// decision events.

// NewTraceID returns a 128-bit random trace identifier (32 hex chars).
func NewTraceID() string { return randomHex(16) }

// NewSpanID returns a 64-bit random span identifier (16 hex chars).
func NewSpanID() string { return randomHex(8) }

func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing is a broken platform; IDs only need
		// uniqueness for correlation, so degrade to a counter.
		return fallbackID(n)
	}
	return hex.EncodeToString(b)
}

var fallbackSeq struct {
	mu sync.Mutex
	n  uint64
}

// fallbackID produces a process-unique (not globally unique) identifier
// when the system entropy source is unavailable.
func fallbackID(n int) string {
	fallbackSeq.mu.Lock()
	fallbackSeq.n++
	v := fallbackSeq.n
	fallbackSeq.mu.Unlock()
	b := make([]byte, n)
	for i := len(b) - 1; i >= 0 && v > 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return hex.EncodeToString(b)
}

// SpanEvent is one timestamped point inside a span — a lease renewal, a
// claim backoff wait, a steal.
type SpanEvent struct {
	Name  string            `json:"name"`
	Time  time.Time         `json:"time"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Span is one completed operation in a fabric trace. Spans are recorded
// whole (at end time), not started/finished through a handle: every
// producer in the service knows its operation's boundaries, and a value
// type keeps recording allocation-cheap and lock-scoped.
type Span struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	Parent  string `json:"parent_id,omitempty"`
	// Name is the operation: "job", "queue", "claim", "run", "store", …
	Name string `json:"name"`
	// Actor is the process that performed the operation (the fleet worker
	// name, or a standalone daemon's identity). One Perfetto lane per actor.
	Actor string `json:"actor,omitempty"`
	// Lane sub-divides an actor's track — the tenant the work ran under.
	Lane  string            `json:"lane,omitempty"`
	Start time.Time         `json:"start"`
	End   time.Time         `json:"end"`
	Attrs map[string]string `json:"attrs,omitempty"`
	// Events are points inside the span (lease renewals, claim waits).
	Events []SpanEvent `json:"events,omitempty"`
}

// Duration returns the span's length (zero for a torn span whose end
// precedes its start — clock steps between processes).
func (s Span) Duration() time.Duration {
	if s.End.Before(s.Start) {
		return 0
	}
	return s.End.Sub(s.Start)
}

// SpanSink consumes completed spans. Implementations must not assume
// call ordering: spans arrive at completion time, so a child ("queue")
// lands before its parent ("job").
type SpanSink interface {
	RecordSpan(Span)
}

// SpanBuffer is a bounded in-memory span recorder: the service's
// flight-recorder backing store and the default sink in tests. Recording
// never blocks beyond a brief mutex; once Limit spans are held, the
// OLDEST span is evicted (ring semantics) and counted in Dropped, so the
// buffer always holds the most recent window — what a flight recorder
// wants after an incident.
type SpanBuffer struct {
	// Limit caps retained spans; 0 means 4096. Set before first use.
	Limit int

	mu      sync.Mutex
	ring    []Span
	start   int // index of the oldest span
	n       int // spans currently held
	dropped uint64
}

const defaultSpanBufferLimit = 4096

// RecordSpan implements SpanSink.
func (b *SpanBuffer) RecordSpan(s Span) {
	b.mu.Lock()
	defer b.mu.Unlock()
	limit := b.Limit
	if limit <= 0 {
		limit = defaultSpanBufferLimit
	}
	if b.ring == nil {
		b.ring = make([]Span, limit)
	}
	if b.n == len(b.ring) {
		// Overwrite the oldest: the recorder keeps the trailing window.
		b.ring[b.start] = s
		b.start = (b.start + 1) % len(b.ring)
		b.dropped++
		return
	}
	b.ring[(b.start+b.n)%len(b.ring)] = s
	b.n++
}

// Spans returns the held spans, oldest first.
func (b *SpanBuffer) Spans() []Span {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Span, b.n)
	for i := 0; i < b.n; i++ {
		out[i] = b.ring[(b.start+i)%len(b.ring)]
	}
	return out
}

// Dropped reports how many spans the ring evicted to admit newer ones.
func (b *SpanBuffer) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Len reports how many spans the buffer currently holds.
func (b *SpanBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// AsyncSpans decouples a SpanSink that does I/O (the provenance ledger,
// a network exporter) from the recording path, with the same contract as
// Async for decision events: RecordSpan NEVER blocks — a full buffer or
// a closed tracer drops the span and counts it, and a drain goroutine
// delivers in order. See TestAsyncSpansBlockingSink for the wedged-
// consumer guarantee.
type AsyncSpans struct {
	sink    SpanSink
	ch      chan Span
	done    chan struct{}
	closed  atomic.Bool
	dropped atomic.Uint64
}

// NewAsyncSpans wraps sink with a buffer-sized queue and starts the
// drain goroutine. buffer <= 0 defaults to 256 spans.
func NewAsyncSpans(sink SpanSink, buffer int) *AsyncSpans {
	if buffer <= 0 {
		buffer = 256
	}
	a := &AsyncSpans{
		sink: sink,
		ch:   make(chan Span, buffer),
		done: make(chan struct{}),
	}
	go func() {
		defer close(a.done)
		for s := range a.ch {
			a.sink.RecordSpan(s)
		}
	}()
	return a
}

// RecordSpan implements SpanSink; it never blocks.
func (a *AsyncSpans) RecordSpan(s Span) {
	if a.closed.Load() {
		a.dropped.Add(1)
		return
	}
	select {
	case a.ch <- s:
	default:
		a.dropped.Add(1)
	}
}

// Dropped reports how many spans were discarded (full buffer or a send
// after Close).
func (a *AsyncSpans) Dropped() uint64 { return a.dropped.Load() }

// Close stops intake, waits for buffered spans to drain, and closes the
// wrapped sink if it has a Close. Like Async, call Close only once
// producers have stopped recording.
func (a *AsyncSpans) Close() error {
	if a.closed.Swap(true) {
		<-a.done
	} else {
		close(a.ch)
		<-a.done
	}
	if c, ok := a.sink.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}
