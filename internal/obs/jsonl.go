package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"fdpsim/internal/sim"
)

// JSONL streams DecisionEvents as JSON Lines: one object per interval
// boundary, in arrival order, flushed on Close. Write errors are sticky —
// the first one stops further encoding and is reported by Close and Err,
// so a full disk surfaces once instead of per interval.
type JSONL struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
	n   int
}

// NewJSONL returns a JSONL sink over w. The caller owns w (Close flushes
// but does not close it).
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw)}
}

// TraceDecision implements sim.Tracer.
func (j *JSONL) TraceDecision(ev sim.DecisionEvent) {
	if j.err != nil {
		return
	}
	if err := j.enc.Encode(ev); err != nil {
		j.err = fmt.Errorf("obs: jsonl encode: %w", err)
		return
	}
	j.n++
}

// Events returns how many events were written.
func (j *JSONL) Events() int { return j.n }

// Err returns the sticky write error, if any.
func (j *JSONL) Err() error { return j.err }

// Close flushes buffered output and returns the first error encountered.
func (j *JSONL) Close() error {
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = fmt.Errorf("obs: jsonl flush: %w", err)
	}
	return j.err
}

// WriteJSONL renders a collected event slice in the same format the
// streaming JSONL sink produces.
func WriteJSONL(w io.Writer, events []sim.DecisionEvent) error {
	j := NewJSONL(w)
	for _, ev := range events {
		j.TraceDecision(ev)
	}
	return j.Close()
}

// ReadJSONL parses a JSONL decision trace back into events (the service
// uses it to re-render persisted traces in other formats).
func ReadJSONL(r io.Reader) ([]sim.DecisionEvent, error) {
	var events []sim.DecisionEvent
	dec := json.NewDecoder(r)
	for {
		var ev sim.DecisionEvent
		if err := dec.Decode(&ev); err == io.EOF {
			return events, nil
		} else if err != nil {
			return events, fmt.Errorf("obs: jsonl event %d: %w", len(events)+1, err)
		}
		events = append(events, ev)
	}
}
