// Package obs holds the observability sinks for the simulator's FDP
// decision trace: consumers of sim.DecisionEvent streams (see
// sim.Tracer) that turn per-interval feedback decisions into artifacts a
// human can read.
//
//   - JSONL streams one JSON object per interval boundary — the grep-able,
//     jq-able format the fdpsim CLI writes with -trace-out and the job
//     service serves at GET /v1/jobs/{id}/trace.
//   - Chrome exports the Chrome trace_event format with counter tracks for
//     accuracy, lateness, pollution, the DCC and the prefetch distance and
//     degree, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//   - Async wraps any sink so a slow or blocking consumer can never stall
//     the simulation: events are dropped (and counted) instead of queued
//     unboundedly or delivered synchronously.
//   - Collector retains events in memory (the job service's per-job
//     buffer, also convenient in tests).
//
// All sinks implement sim.Tracer and are driven synchronously from the
// simulation loop; only Async is safe for use when the consumer is slower
// than the producer.
package obs

import (
	"sync"

	"fdpsim/internal/sim"
)

// Collector retains every event in memory, bounded by Limit. It is
// safe for concurrent use (the job service reads while a worker
// appends).
type Collector struct {
	// Limit, when non-zero, caps the number of retained events; later
	// events increment Truncated instead of growing the buffer. Set it
	// before tracing starts.
	Limit int

	mu        sync.Mutex
	events    []sim.DecisionEvent
	truncated uint64
}

// TraceDecision implements sim.Tracer.
func (c *Collector) TraceDecision(ev sim.DecisionEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Limit > 0 && len(c.events) >= c.Limit {
		c.truncated++
		return
	}
	c.events = append(c.events, ev)
}

// Events returns a snapshot copy of the collected events.
func (c *Collector) Events() []sim.DecisionEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]sim.DecisionEvent, len(c.events))
	copy(out, c.events)
	return out
}

// Truncated reports how many events the Limit discarded.
func (c *Collector) Truncated() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.truncated
}

// tee fans one decision stream out to several sinks, in order.
type tee struct {
	sinks []sim.Tracer
}

// TraceDecision implements sim.Tracer.
func (t *tee) TraceDecision(ev sim.DecisionEvent) {
	for _, s := range t.sinks {
		s.TraceDecision(ev)
	}
}

// Tee combines tracers into one that delivers every event to each, in
// argument order. Nil entries are dropped; zero or one live sink returns
// nil or the sink itself, so callers can compose unconditionally without
// paying a fan-out wrapper for the common single-sink case.
func Tee(sinks ...sim.Tracer) sim.Tracer {
	live := make([]sim.Tracer, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &tee{sinks: live}
}
