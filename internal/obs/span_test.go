package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fdpsim/internal/obs"
)

// mkSpan builds a test span at a deterministic offset from a base time.
func mkSpan(trace, id, parent, name, actor, lane string, startMS, durMS int) obs.Span {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return obs.Span{
		TraceID: trace, SpanID: id, Parent: parent,
		Name: name, Actor: actor, Lane: lane,
		Start: base.Add(time.Duration(startMS) * time.Millisecond),
		End:   base.Add(time.Duration(startMS+durMS) * time.Millisecond),
	}
}

func TestSpanIDs(t *testing.T) {
	tr, sp := obs.NewTraceID(), obs.NewSpanID()
	if len(tr) != 32 || len(sp) != 16 {
		t.Fatalf("ID lengths = %d/%d, want 32/16 hex chars", len(tr), len(sp))
	}
	if tr == obs.NewTraceID() || sp == obs.NewSpanID() {
		t.Fatal("consecutive IDs collided")
	}
	for _, c := range tr + sp {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			t.Fatalf("non-hex character %q in ID", c)
		}
	}
}

// TestSpanBufferRing checks the flight-recorder semantics: the buffer
// keeps the most recent window, evicting and counting the oldest.
func TestSpanBufferRing(t *testing.T) {
	b := &obs.SpanBuffer{Limit: 4}
	for i := 0; i < 10; i++ {
		b.RecordSpan(mkSpan("t", string(rune('a'+i)), "", "op", "w", "", i, 1))
	}
	spans := b.Spans()
	if len(spans) != 4 {
		t.Fatalf("buffer holds %d spans, want 4", len(spans))
	}
	// Oldest-first, and the window is the last four recorded.
	for i, s := range spans {
		if want := string(rune('a' + 6 + i)); s.SpanID != want {
			t.Fatalf("span %d = %q, want %q", i, s.SpanID, want)
		}
	}
	if b.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", b.Dropped())
	}
	if b.Len() != 4 {
		t.Fatalf("len = %d, want 4", b.Len())
	}
}

// TestSpanBufferConcurrent hammers the recorder from many goroutines
// under -race; recorded + dropped must account for every span.
func TestSpanBufferConcurrent(t *testing.T) {
	b := &obs.SpanBuffer{Limit: 64}
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.RecordSpan(obs.Span{TraceID: "t", SpanID: obs.NewSpanID(), Name: "op"})
			}
		}()
	}
	wg.Wait()
	if got := uint64(b.Len()) + b.Dropped(); got != workers*per {
		t.Fatalf("held(%d) + dropped(%d) = %d, want %d", b.Len(), b.Dropped(), got, workers*per)
	}
}

// blockingSpanSink wedges until released, counting deliveries — the
// stalled-consumer stand-in.
type blockingSpanSink struct {
	release chan struct{}
	n       atomic.Uint64
}

func (s *blockingSpanSink) RecordSpan(obs.Span) {
	<-s.release
	s.n.Add(1)
}

// TestAsyncSpansBlockingSink proves the drop-not-block contract under
// -race: with the drain goroutine wedged, RecordSpan returns promptly
// for thousands of spans, drops are counted, and delivered + dropped
// accounts for every span once the sink is released.
func TestAsyncSpansBlockingSink(t *testing.T) {
	release := make(chan struct{})
	sink := &blockingSpanSink{release: release}
	async := obs.NewAsyncSpans(sink, 2)

	const total = 5000
	start := time.Now()
	for i := 0; i < total; i++ {
		async.RecordSpan(obs.Span{TraceID: "t", SpanID: obs.NewSpanID(), Name: "op"})
	}
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("recording %d spans against a wedged sink took %v; RecordSpan blocked", total, elapsed)
	}
	if async.Dropped() == 0 {
		t.Fatal("no spans dropped despite a wedged sink and a 2-span buffer")
	}

	close(release)
	if err := async.Close(); err != nil {
		t.Fatalf("async close: %v", err)
	}
	if got := sink.n.Load() + async.Dropped(); got != total {
		t.Errorf("delivered(%d) + dropped(%d) = %d, want %d", sink.n.Load(), async.Dropped(), got, total)
	}
	// Post-close records drop rather than panic or deliver.
	async.RecordSpan(obs.Span{Name: "late"})
	if sink.n.Load()+async.Dropped() != total+1 {
		t.Error("post-close span neither dropped nor counted")
	}
}

// TestWriteSpansChrome checks the exporter's document shape: valid JSON,
// one process lane per actor, one thread per (actor, lane), complete
// events carrying trace context, and instants for span events.
func TestWriteSpansChrome(t *testing.T) {
	spans := []obs.Span{
		mkSpan("trace1", "s1", "", "job", "worker-a", "default", 0, 100),
		mkSpan("trace1", "s2", "s1", "run", "worker-a", "default", 10, 80),
		mkSpan("trace1", "s3", "", "job", "worker-b", "alice", 5, 50),
	}
	spans[1].Events = []obs.SpanEvent{{
		Name: "lease-renew",
		Time: spans[1].Start.Add(20 * time.Millisecond),
	}}
	spans[1].Attrs = map[string]string{"fingerprint": "abc123"}

	var buf bytes.Buffer
	if err := obs.WriteSpansChrome(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported document is not valid JSON: %v\n%s", err, buf.String())
	}

	var complete, instants, procs, threads int
	pids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			args := ev["args"].(map[string]any)
			if args["trace_id"] != "trace1" {
				t.Fatalf("complete event without trace_id: %v", ev)
			}
			if dur, ok := ev["dur"].(float64); !ok || dur < 0 {
				t.Fatalf("complete event with bad dur: %v", ev)
			}
			pids[ev["pid"].(float64)] = true
		case "i":
			instants++
		case "M":
			switch ev["name"] {
			case "process_name":
				procs++
			case "thread_name":
				threads++
			}
		}
	}
	if complete != 3 {
		t.Fatalf("complete events = %d, want 3", complete)
	}
	if instants != 1 {
		t.Fatalf("instant events = %d, want 1", instants)
	}
	if procs != 2 || len(pids) != 2 {
		t.Fatalf("process lanes = %d (pids %v), want one per worker (2)", procs, pids)
	}
	if threads != 2 {
		t.Fatalf("thread lanes = %d, want one per (actor, tenant) (2)", threads)
	}
	// The run span's attributes ride along as args.
	if !strings.Contains(buf.String(), `"fingerprint":"abc123"`) {
		t.Fatal("span attrs missing from exported args")
	}
	// The parent link survives.
	if !strings.Contains(buf.String(), `"parent_id":"s1"`) {
		t.Fatal("parent_id missing from exported args")
	}
}

// TestSpanDuration covers the torn-clock clamp.
func TestSpanDuration(t *testing.T) {
	s := mkSpan("t", "s", "", "op", "", "", 10, 5)
	if s.Duration() != 5*time.Millisecond {
		t.Fatalf("duration = %v", s.Duration())
	}
	s.End = s.Start.Add(-time.Second)
	if s.Duration() != 0 {
		t.Fatalf("negative duration not clamped: %v", s.Duration())
	}
}
