package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"fdpsim/internal/sim"
)

// Chrome streams DecisionEvents in the Chrome trace_event format
// (the JSON object form: {"traceEvents":[...]}), loadable in Perfetto
// (ui.perfetto.dev) and chrome://tracing. Each interval boundary becomes
// one point on six counter tracks — accuracy/lateness/pollution (percent),
// the DCC, the Table 1 (distance, degree) pair and the insertion depth —
// plus one instant event carrying the Table 2 case and its rationale, so
// the feedback loop's trajectory can be scrubbed on a timeline.
//
// Timestamps are simulated cycles interpreted as microseconds (the format
// has no "cycles" unit); relative spacing is what matters. Cores map to
// trace processes, so multi-core runs get per-core track groups.
type Chrome struct {
	bw       *bufio.Writer
	err      error
	n        int
	seenCore map[int]bool
}

// chromeEvent is one trace_event record; fields beyond the five required
// ones are omitted when empty.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// NewChrome returns a Chrome trace sink over w. The caller owns w; Close
// terminates the JSON document and flushes but does not close it.
func NewChrome(w io.Writer) *Chrome {
	c := &Chrome{bw: bufio.NewWriter(w), seenCore: make(map[int]bool)}
	_, err := c.bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	c.err = err
	return c
}

// insertionDepth maps the insertion-position name to a numeric LRU-stack
// depth so the counter track is plottable (0 = LRU .. 3 = MRU).
func insertionDepth(pos string) int {
	switch pos {
	case "MRU":
		return 3
	case "MID":
		return 2
	case "LRU-4":
		return 1
	default:
		return 0
	}
}

func (c *Chrome) emit(ev chromeEvent) {
	if c.err != nil {
		return
	}
	raw, err := json.Marshal(ev)
	if err != nil {
		c.err = fmt.Errorf("obs: chrome encode: %w", err)
		return
	}
	if c.n > 0 {
		if err := c.bw.WriteByte(','); err != nil {
			c.err = err
			return
		}
	}
	if _, err := c.bw.Write(raw); err != nil {
		c.err = err
		return
	}
	c.n++
}

// TraceDecision implements sim.Tracer.
func (c *Chrome) TraceDecision(ev sim.DecisionEvent) {
	if !c.seenCore[ev.Core] {
		c.seenCore[ev.Core] = true
		c.emit(chromeEvent{Name: "process_name", Ph: "M", Pid: ev.Core,
			Args: map[string]any{"name": fmt.Sprintf("fdpsim core %d", ev.Core)}})
	}
	ts := float64(ev.Cycle)
	counters := []struct {
		track string
		args  map[string]any
	}{
		{"accuracy %", map[string]any{"accuracy": 100 * ev.Accuracy}},
		{"lateness %", map[string]any{"lateness": 100 * ev.Lateness}},
		{"pollution %", map[string]any{"pollution": 100 * ev.Pollution}},
		{"DCC", map[string]any{"level": ev.DCCAfter}},
		{"prefetch config", map[string]any{"distance": ev.Distance, "degree": ev.Degree}},
		{"insertion depth", map[string]any{"depth": insertionDepth(ev.Insertion)}},
	}
	for _, ct := range counters {
		c.emit(chromeEvent{Name: ct.track, Ph: "C", Ts: ts, Pid: ev.Core, Args: ct.args})
	}
	// Attribution runs add the cycle-accounting and memory-pressure
	// tracks. A zero sample means attribution was off for this run, and
	// emitting nothing keeps non-attribution traces unchanged.
	if s := ev.Sample; s.Cycles.Total() > 0 {
		total := float64(s.Cycles.Total())
		pct := func(v uint64) float64 { return 100 * float64(v) / total }
		attr := []struct {
			track string
			args  map[string]any
		}{
			{"stall breakdown %", map[string]any{
				"retire_full":     pct(s.Cycles.RetireFull),
				"retire_partial":  pct(s.Cycles.RetirePartial),
				"stall_load_miss": pct(s.Cycles.StallLoadMiss),
				"stall_rob_full":  pct(s.Cycles.StallROBFull),
				"stall_dram_bp":   pct(s.Cycles.StallDRAMBP),
				"stall_ifetch":    pct(s.Cycles.StallIFetch),
				"stall_frontend":  pct(s.Cycles.StallFrontend),
			}},
			{"bus utilization %", map[string]any{"utilization": 100 * s.BusUtilization}},
			{"bus occupancy cycles", map[string]any{
				"demand":    s.BusDemandCycles,
				"prefetch":  s.BusPrefetchCycles,
				"writeback": s.BusWritebackCycles,
			}},
			{"row hit rate %", map[string]any{"row_hit": 100 * s.RowHitRate()}},
			{"queue depth", map[string]any{"mshr": s.MSHRMean, "dram_queue": s.QueueMean}},
		}
		for _, ct := range attr {
			c.emit(chromeEvent{Name: ct.track, Ph: "C", Ts: ts, Pid: ev.Core, Args: ct.args})
		}
	}
	c.emit(chromeEvent{
		Name: fmt.Sprintf("case %d: %s", ev.Case, ev.Reason),
		Ph:   "i", Ts: ts, Pid: ev.Core, S: "p",
		Args: map[string]any{
			"interval":       ev.Interval,
			"retired":        ev.Retired,
			"accuracy_class": ev.AccuracyClass,
			"late":           ev.Late,
			"polluting":      ev.Polluting,
			"update":         ev.Update,
			"dcc":            fmt.Sprintf("%d→%d", ev.DCCBefore, ev.DCCAfter),
			"insertion":      ev.Insertion,
		},
	})
}

// Err returns the sticky write error, if any.
func (c *Chrome) Err() error { return c.err }

// Close terminates the trace document and flushes buffered output.
func (c *Chrome) Close() error {
	if c.err == nil {
		_, c.err = c.bw.WriteString("]}")
	}
	if err := c.bw.Flush(); err != nil && c.err == nil {
		c.err = fmt.Errorf("obs: chrome flush: %w", err)
	}
	return c.err
}

// WriteChrome renders a collected event slice as one Chrome trace
// document (the service's ?format=chrome path).
func WriteChrome(w io.Writer, events []sim.DecisionEvent) error {
	c := NewChrome(w)
	for _, ev := range events {
		c.TraceDecision(ev)
	}
	return c.Close()
}
