package obs

import (
	"sync/atomic"

	"fdpsim/internal/sim"
)

// Async decouples a sink from the simulation loop: TraceDecision enqueues
// onto a bounded channel and NEVER blocks — when the consumer falls
// behind and the buffer is full, the event is dropped and counted instead.
// A drain goroutine delivers buffered events to the wrapped sink in order.
//
// This is the contract the retire loop needs from any sink that does I/O:
// the simulation's forward progress must not depend on the consumer, even
// one that is wedged entirely (see TestAsyncBlockingSink). Lost events are
// visible via Dropped, so a truncated trace is detectable rather than
// silently complete-looking.
type Async struct {
	sink    sim.Tracer
	ch      chan sim.DecisionEvent
	done    chan struct{}
	closed  atomic.Bool
	dropped atomic.Uint64
}

// NewAsync wraps sink with a buffer-sized queue and starts the drain
// goroutine. buffer <= 0 defaults to 256 events.
func NewAsync(sink sim.Tracer, buffer int) *Async {
	if buffer <= 0 {
		buffer = 256
	}
	a := &Async{
		sink: sink,
		ch:   make(chan sim.DecisionEvent, buffer),
		done: make(chan struct{}),
	}
	go func() {
		defer close(a.done)
		for ev := range a.ch {
			a.sink.TraceDecision(ev)
		}
	}()
	return a
}

// TraceDecision implements sim.Tracer; it never blocks.
func (a *Async) TraceDecision(ev sim.DecisionEvent) {
	if a.closed.Load() {
		a.dropped.Add(1)
		return
	}
	select {
	case a.ch <- ev:
	default:
		a.dropped.Add(1)
	}
}

// Dropped reports how many events were discarded because the buffer was
// full (a slow consumer) or the tracer was already closed.
func (a *Async) Dropped() uint64 {
	return a.dropped.Load()
}

// Close stops intake, waits for the drain goroutine to deliver buffered
// events, and closes the wrapped sink if it has a Close. Events arriving
// after Close are dropped, not delivered; call Close only once the run has
// returned.
func (a *Async) Close() error {
	if a.closed.Swap(true) {
		<-a.done
	} else {
		close(a.ch)
		<-a.done
	}
	if c, ok := a.sink.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}
