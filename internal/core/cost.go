package core

import "fmt"

// HardwareCost itemizes the storage FDP adds to the baseline processor,
// reproducing Table 6 of the paper.
type HardwareCost struct {
	CachePrefBits  int // one pref-bit per L2 tag-store entry
	FilterBits     int // pollution filter bit-vector
	CounterBits    int // feedback-metric counters
	MSHRPrefBits   int // one pref-bit per L2 MSHR entry
	TotalBits      int
	TotalKB        float64
	OverheadOfL2KB float64 // percent of the L2 data-store size
}

// The paper provisions eleven 16-bit counters: the five feedback counters
// in both their decayed and in-interval halves, plus the eviction counter.
const (
	numCounters = 11
	counterBits = 16
)

// CostFor computes Table 6 for a cache with the given number of blocks and
// MSHR entries, a pollution filter of filterBits, and an L2 data store of
// l2KB kilobytes.
func CostFor(cacheBlocks, mshrEntries, filterBits int, l2KB float64) HardwareCost {
	c := HardwareCost{
		CachePrefBits: cacheBlocks,
		FilterBits:    filterBits,
		CounterBits:   numCounters * counterBits,
		MSHRPrefBits:  mshrEntries,
	}
	c.TotalBits = c.CachePrefBits + c.FilterBits + c.CounterBits + c.MSHRPrefBits
	c.TotalKB = float64(c.TotalBits) / 8 / 1024
	if l2KB > 0 {
		c.OverheadOfL2KB = 100 * c.TotalKB / l2KB
	}
	return c
}

// String renders the cost table.
func (c HardwareCost) String() string {
	return fmt.Sprintf(
		"pref-bits (L2 tags): %d bits\npollution filter: %d bits\ncounters: %d bits\npref-bits (MSHRs): %d bits\ntotal: %d bits = %.2f KB (%.2f%% of L2)",
		c.CachePrefBits, c.FilterBits, c.CounterBits, c.MSHRPrefBits,
		c.TotalBits, c.TotalKB, c.OverheadOfL2KB)
}
