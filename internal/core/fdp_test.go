package core

import (
	"testing"
	"testing/quick"

	"fdpsim/internal/cache"
)

// testConfig returns an FDP config with a tiny interval so tests can turn
// intervals over quickly.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.TInterval = 4
	return cfg
}

// endInterval forces n interval boundaries via useful-block evictions.
func endIntervals(f *FDP, n int) {
	for i := 0; i < n; i++ {
		for j := uint64(0); j < f.cfg.TInterval; j++ {
			f.OnEviction(uint64(j), true, true, false)
		}
	}
}

func TestCounterEquation(t *testing.T) {
	// Equation 1: value = valueAtBegin/2 + valueDuring.
	var c counter
	c.add(100)
	if got := c.roll(); got != 100 {
		t.Fatalf("first roll = %d, want 100", got)
	}
	c.add(60)
	if got := c.roll(); got != 110 {
		t.Fatalf("second roll = %d, want 100/2+60=110", got)
	}
	if got := c.roll(); got != 55 {
		t.Fatalf("empty-interval roll = %d, want 55", got)
	}
}

func TestCounterSaturates16Bits(t *testing.T) {
	var c counter
	c.add(1 << 20)
	if c.during != counterMax {
		t.Fatalf("during = %d, want saturation at %d", c.during, counterMax)
	}
	if got := c.roll(); got != counterMax {
		t.Fatalf("roll = %d, want %d", got, counterMax)
	}
}

// TestCounterDecayConvergence: a constant per-interval rate R converges to
// 2R (the geometric series), never exceeding it.
func TestCounterDecayConvergence(t *testing.T) {
	f := func(rate uint16) bool {
		r := uint64(rate) % 1000
		if r == 0 {
			return true
		}
		var c counter
		var prev uint64
		for i := 0; i < 64; i++ {
			c.add(r)
			prev = c.roll()
		}
		limit := 2 * r
		return prev <= limit && prev >= limit-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalTriggersOnUsefulEvictionsOnly(t *testing.T) {
	f := New(testConfig())
	for i := 0; i < 100; i++ {
		f.OnEviction(uint64(i), false, false, true) // prefetched, unused victims
	}
	if f.Intervals() != 0 {
		t.Fatal("non-useful evictions advanced the interval")
	}
	for i := 0; i < 4; i++ {
		f.OnEviction(uint64(i), true, true, false)
	}
	if f.Intervals() != 1 {
		t.Fatalf("intervals = %d, want 1", f.Intervals())
	}
}

func TestLevelIncreasesWhenAccurateAndLate(t *testing.T) {
	f := New(testConfig())
	f.KeepHistory = true
	var levels []int
	f.OnLevel = func(l int) { levels = append(levels, l) }
	// High accuracy, all late, no pollution -> Case 1 -> increment.
	for i := 0; i < 3; i++ {
		for j := 0; j < 100; j++ {
			f.OnPrefetchSent()
			f.OnPrefetchLate()
		}
		endIntervals(f, 1)
	}
	if f.Level() != 5 {
		t.Fatalf("level = %d, want saturation at 5 after 3 increments from 3", f.Level())
	}
	if len(f.History) != 3 || f.History[0].Case.Case != 1 {
		t.Fatalf("history = %+v", f.History)
	}
	if len(levels) != 3 || levels[0] != 4 || levels[2] != 5 {
		t.Fatalf("OnLevel calls = %v", levels)
	}
}

func TestLevelDecreasesOnLowAccuracy(t *testing.T) {
	f := New(testConfig())
	// Low accuracy, late, not polluting -> Case 9 -> decrement.
	for i := 0; i < 5; i++ {
		for j := 0; j < 100; j++ {
			f.OnPrefetchSent()
		}
		f.OnPrefetchLate() // 1 used, 1 late: lateness 100%, accuracy ~1%
		endIntervals(f, 1)
	}
	if f.Level() != 1 {
		t.Fatalf("level = %d, want saturation at 1", f.Level())
	}
}

func TestLevelUnchangedInBestCase(t *testing.T) {
	f := New(testConfig())
	// High accuracy, not late, not polluting -> Case 3 -> no change.
	for j := 0; j < 100; j++ {
		f.OnPrefetchSent()
		f.OnPrefetchUsed()
	}
	endIntervals(f, 1)
	if f.Level() != 3 {
		t.Fatalf("level = %d, want unchanged 3", f.Level())
	}
}

func TestPollutionThrottles(t *testing.T) {
	f := New(testConfig())
	// High accuracy, not late, polluting -> Case 4 -> decrement.
	for j := 0; j < 100; j++ {
		f.OnPrefetchSent()
		f.OnPrefetchUsed()
	}
	// Pollute: evictions by prefetch, then demand misses to those blocks.
	// Keep the eviction count below TInterval so no interval fires early.
	for b := uint64(0); b < 3; b++ {
		f.OnEviction(b, true, true, true)
	}
	for b := uint64(0); b < 3; b++ {
		f.OnDemandMiss(b)
	}
	endIntervals(f, 1)
	if f.Level() != 2 {
		t.Fatalf("level = %d, want 2 (decrement for pollution)", f.Level())
	}
}

func TestDynamicInsertionFollowsPollution(t *testing.T) {
	f := New(testConfig())
	if f.InsertionPos() != cache.PosMID {
		t.Fatal("dynamic insertion must start at MID")
	}
	// Create high pollution (every demand miss polluted). Stay under
	// TInterval evictions so only the explicit boundary fires.
	for b := uint64(0); b < 3; b++ {
		f.OnEviction(b, true, true, true)
		f.OnDemandMiss(b)
	}
	endIntervals(f, 1)
	if f.InsertionPos() != cache.PosLRU {
		t.Fatalf("insertion = %v, want LRU under high pollution", f.InsertionPos())
	}
	// A clean interval drops pollution to half (decay), still >= PHigh?
	// Keep rolling clean intervals until the decayed pollution crosses the
	// thresholds back to MID.
	for i := 0; i < 10; i++ {
		for b := uint64(1000); b < 1100; b++ {
			f.OnDemandMiss(b + uint64(i)*1000)
		}
		endIntervals(f, 1)
	}
	if f.InsertionPos() != cache.PosMID {
		t.Fatalf("insertion = %v, want MID after pollution decays", f.InsertionPos())
	}
}

func TestStaticInsertionWhenDynamicOff(t *testing.T) {
	cfg := testConfig()
	cfg.DynamicInsertion = false
	cfg.StaticInsertion = cache.PosLRU4
	f := New(cfg)
	if f.InsertionPos() != cache.PosLRU4 {
		t.Fatal("static insertion position not honored")
	}
	endIntervals(f, 3)
	if f.InsertionPos() != cache.PosLRU4 {
		t.Fatal("static insertion changed across intervals")
	}
}

func TestDynamicAggressivenessOff(t *testing.T) {
	cfg := testConfig()
	cfg.DynamicAggressiveness = false
	f := New(cfg)
	called := false
	f.OnLevel = func(int) { called = true }
	for j := 0; j < 100; j++ {
		f.OnPrefetchSent()
		f.OnPrefetchLate()
	}
	endIntervals(f, 1)
	if f.Level() != 3 || called {
		t.Fatalf("level changed with DynamicAggressiveness off: level=%d called=%v", f.Level(), called)
	}
}

func TestAccuracyOnlyAblation(t *testing.T) {
	cfg := testConfig()
	cfg.AccuracyOnly = true
	f := New(cfg)
	// High accuracy but heavily polluting: comprehensive FDP would
	// decrement (Case 4); accuracy-only increments.
	for j := 0; j < 100; j++ {
		f.OnPrefetchSent()
		f.OnPrefetchUsed()
	}
	for b := uint64(0); b < 3; b++ {
		f.OnEviction(b, true, true, true)
		f.OnDemandMiss(b)
	}
	endIntervals(f, 1)
	if f.Level() != 4 {
		t.Fatalf("accuracy-only level = %d, want 4 (increment)", f.Level())
	}
}

func TestLatePrefetchCountsAsUsed(t *testing.T) {
	f := New(testConfig())
	f.OnPrefetchSent()
	f.OnPrefetchLate()
	acc, late, _ := f.Metrics()
	if acc != 1 || late != 1 {
		t.Fatalf("metrics after one late prefetch: acc=%v late=%v, want 1,1", acc, late)
	}
}

func TestPollutionFilterClearedOnPrefetchFill(t *testing.T) {
	f := New(testConfig())
	f.OnEviction(42, true, true, true) // sets the filter bit
	f.OnPrefetchFill(42)               // prefetch fill clears it
	if f.OnDemandMiss(42) {
		t.Fatal("demand miss counted as pollution after prefetch fill cleared the bit")
	}
}

func TestLevelDistributionRecorded(t *testing.T) {
	f := New(testConfig())
	for j := 0; j < 100; j++ {
		f.OnPrefetchSent()
		f.OnPrefetchLate()
	}
	endIntervals(f, 1) // level 3 -> 4, recorded at 4
	if f.LevelDist.Total() != 1 || f.LevelDist.Fraction(3) != 1 {
		t.Fatalf("level distribution = %v", f.LevelDist)
	}
}

func TestCostForMatchesPaperTable6(t *testing.T) {
	cost := CostFor(16384, 128, 4096, 1024)
	if cost.TotalBits != 16384+4096+176+128 {
		t.Fatalf("total bits = %d", cost.TotalBits)
	}
	// The paper reports 2.54 KB and ~0.24% of the 1 MB L2.
	if cost.TotalKB < 2.53 || cost.TotalKB > 2.55 {
		t.Fatalf("total KB = %v, want ~2.54", cost.TotalKB)
	}
	if cost.OverheadOfL2KB > 0.3 {
		t.Fatalf("overhead = %v%%, want < 0.3%%", cost.OverheadOfL2KB)
	}
	if cost.String() == "" {
		t.Fatal("empty cost string")
	}
}
