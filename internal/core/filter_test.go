package core

import (
	"testing"
	"testing/quick"
)

func TestFilterIndexMatchesPaper(t *testing.T) {
	// Figure 4: index = blockAddr[11:0] XOR blockAddr[23:12] for the
	// 4096-entry filter.
	f := NewPollutionFilter(4096)
	block := uint64(0xABC123)
	want := (block & 0xFFF) ^ ((block >> 12) & 0xFFF)
	if got := f.index(block); got != want {
		t.Fatalf("index(%#x) = %#x, want %#x", block, got, want)
	}
}

func TestFilterSetTestClear(t *testing.T) {
	f := NewPollutionFilter(4096)
	if f.Test(100) {
		t.Fatal("fresh filter tested positive")
	}
	f.Set(100)
	if !f.Test(100) {
		t.Fatal("Set then Test negative")
	}
	f.Clear(100)
	if f.Test(100) {
		t.Fatal("Clear did not reset the bit")
	}
}

func TestFilterAliasing(t *testing.T) {
	// Two blocks whose low and high halves XOR to the same index alias —
	// the approximation the paper accepts for a 0.5 KB structure.
	f := NewPollutionFilter(4096)
	a := uint64(0x000001)
	b := uint64(0x001000) // low half 0, high half 1: same XOR index as a
	if f.index(a) != f.index(b) {
		t.Fatalf("expected aliasing: %#x vs %#x", f.index(a), f.index(b))
	}
	f.Set(a)
	if !f.Test(b) {
		t.Fatal("aliased block not detected")
	}
}

func TestFilterResetAndPopCount(t *testing.T) {
	f := NewPollutionFilter(4096)
	for b := uint64(0); b < 100; b++ {
		f.Set(b)
	}
	if f.PopCount() != 100 {
		t.Fatalf("PopCount = %d, want 100 (distinct low bits)", f.PopCount())
	}
	f.Reset()
	if f.PopCount() != 0 {
		t.Fatalf("PopCount after Reset = %d", f.PopCount())
	}
}

func TestFilterSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two size did not panic")
		}
	}()
	NewPollutionFilter(1000)
}

func TestFilterDefaultSize(t *testing.T) {
	if got := NewPollutionFilter(0).Size(); got != 4096 {
		t.Fatalf("default size = %d, want 4096", got)
	}
}

// TestFilterNoFalseNegatives: any block that was Set and not since Cleared
// (directly or via an alias) must test positive.
func TestFilterNoFalseNegatives(t *testing.T) {
	f := func(blocks []uint64) bool {
		pf := NewPollutionFilter(4096)
		for _, b := range blocks {
			pf.Set(b)
			if !pf.Test(b) {
				return false
			}
		}
		for _, b := range blocks {
			if !pf.Test(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
