// Package core implements Feedback Directed Prefetching (FDP), the paper's
// primary contribution (Section 3): run-time estimation of prefetch
// accuracy, lateness and prefetcher-generated cache pollution, sampled in
// eviction-defined intervals with exponential decay, driving (1) a 3-bit
// saturating Dynamic Configuration Counter that throttles the prefetcher's
// aggressiveness per Table 2, and (2) the LRU-stack position at which
// prefetched blocks are inserted into the L2.
package core

import (
	"fdpsim/internal/cache"
	"fdpsim/internal/stats"
)

// Thresholds holds the static classification thresholds of Section 4.3.
// The OCR of the paper dropped the numeric row; the defaults below are the
// published values and are flagged as reconstructions in DESIGN.md.
type Thresholds struct {
	AHigh      float64 // accuracy >= AHigh        -> High
	ALow       float64 // accuracy < ALow          -> Low
	TLateness  float64 // lateness >= TLateness    -> Late
	TPollution float64 // pollution >= TPollution  -> Polluting
	PLow       float64 // pollution < PLow         -> insert at MID
	PHigh      float64 // pollution < PHigh        -> insert at LRU-4, else LRU
}

// DefaultThresholds returns the classification thresholds. AHigh, ALow and
// TLateness are the published values. The pollution thresholds are
// recalibrated for this simulator: under its (much shorter) runs and
// bus-saturated workloads the 4096-bit filter's collision noise sits near
// 5-8% of demand misses for late-prefetch streams and 20-25% for timely
// ones (whose demand-filled training misses are displaced by prefetch
// fills), so the published 0.5% pollution cutoffs would classify pure
// streaming as polluting. The values below keep the paper's ordering
// (TPollution <= PLow < PHigh) above those noise bands; genuinely
// polluted workloads measure 40%+.
func DefaultThresholds() Thresholds {
	return Thresholds{
		AHigh:      0.75,
		ALow:       0.40,
		TLateness:  0.01,
		TPollution: 0.075,
		PLow:       0.10,
		PHigh:      0.35,
	}
}

// Config selects which FDP mechanisms are active and their parameters.
type Config struct {
	Thresholds Thresholds
	// TInterval is the number of useful-block evictions that end a
	// sampling interval (8192 = half the blocks of the 1 MB L2).
	TInterval uint64
	// FilterBits sizes the pollution filter (4096 in the paper).
	FilterBits int
	// DynamicAggressiveness enables the Table 2 throttling loop.
	DynamicAggressiveness bool
	// DynamicInsertion enables the pollution-directed insertion policy.
	DynamicInsertion bool
	// StaticInsertion is used for prefetch fills when DynamicInsertion is
	// off (the baseline inserts at MRU).
	StaticInsertion cache.InsertPos
	// InitLevel seeds the Dynamic Configuration Counter (3 in the paper).
	InitLevel int
	// AccuracyOnly reproduces the Section 5.6 ablation: the counter is
	// incremented on high accuracy and decremented on low accuracy,
	// ignoring lateness and pollution.
	AccuracyOnly bool
}

// DefaultConfig returns the paper's FDP configuration with both dynamic
// mechanisms enabled.
func DefaultConfig() Config {
	return Config{
		Thresholds:            DefaultThresholds(),
		TInterval:             8192,
		FilterBits:            4096,
		DynamicAggressiveness: true,
		DynamicInsertion:      true,
		StaticInsertion:       cache.PosMRU,
		InitLevel:             3,
	}
}

// counter implements the Equation 1 sampling counter: at each interval end
// the retained value is halved and the in-interval count is folded in.
// The paper provisions 16-bit registers; values saturate accordingly.
type counter struct {
	value  uint64 // decayed value as of the last interval boundary
	during uint64 // raw count within the current interval
}

const counterMax = 1<<16 - 1

func (c *counter) add(n uint64) {
	c.during += n
	if c.during > counterMax {
		c.during = counterMax
	}
}

// roll applies Equation 1 and resets the in-interval count, returning the
// new decayed value.
func (c *counter) roll() uint64 {
	c.value = c.value/2 + c.during
	if c.value > counterMax {
		c.value = counterMax
	}
	c.during = 0
	return c.value
}

// IntervalCounts is one reading of the five Section 3.1 event counters.
// The engine reports two of these per interval: the raw in-interval counts
// and the Equation 1 accumulated values (previous value halved plus the
// raw count) that the boundary actually classified.
type IntervalCounts struct {
	PrefSent        uint64 `json:"pref_sent"`        // prefetches sent to memory
	PrefUsed        uint64 `json:"pref_used"`        // useful prefetches
	PrefLate        uint64 `json:"pref_late"`        // late prefetches
	PollutionMisses uint64 `json:"pollution_misses"` // demand misses caused by the prefetcher
	DemandMisses    uint64 `json:"demand_misses"`    // all demand misses
}

// IntervalRecord captures one completed sampling interval for analysis:
// the inputs the boundary saw (raw and decayed counters), the metric
// values and their threshold classifications, the Table 2 case that fired,
// and the resulting counter and insertion-policy state.
type IntervalRecord struct {
	Accuracy  float64
	Lateness  float64
	Pollution float64
	Case      PolicyCase
	Level     int // level in effect for the next interval
	Insertion cache.InsertPos

	// Raw holds the in-interval event counts; Decayed holds the Equation 1
	// accumulated values after the boundary's halving fold — the numbers
	// the three metrics above were computed from.
	Raw     IntervalCounts
	Decayed IntervalCounts

	// AccClass, Late and Polluting are the threshold classifications that
	// selected Case from Table 2.
	AccClass  AccuracyClass
	Late      bool
	Polluting bool

	// BusUtilization is the fraction of the interval's cycles the shared
	// data bus was busy, as observed by the embedding simulator through
	// the OnSignals hook (zero in standalone core use).
	BusUtilization float64

	// LevelBefore is the Dynamic Configuration Counter value before this
	// boundary's update; Level is the value after (they are equal when the
	// update was NoChange, saturated, or dynamic aggressiveness is off).
	LevelBefore int
}

// FDP is the feedback engine. The memory hierarchy calls the On* hooks as
// events occur; FDP adjusts the prefetcher via the OnLevel callback and
// answers InsertionPos queries for prefetch fills.
type FDP struct {
	cfg    Config
	filter *PollutionFilter

	prefTotal      counter // prefetches sent to memory
	usedTotal      counter // useful prefetches
	lateTotal      counter // late prefetches
	pollutionTotal counter // demand misses caused by the prefetcher
	demandTotal    counter // demand misses
	evictions      uint64  // useful-block evictions this interval

	level     int
	insertion cache.InsertPos

	// Decider is the decision policy consulted at every interval boundary.
	// New installs the paper's Table 2 policy; replace it (before the
	// first interval closes) to evaluate an alternative controller. The
	// engine still owns when decisions apply: Level takes effect only
	// under DynamicAggressiveness and Insertion only under
	// DynamicInsertion, and Level is clamped to MinLevel..MaxLevel.
	Decider Decider

	// OnSignals, when set, may enrich the Signals value before it reaches
	// the Decider — the sim layer uses it to fill the bandwidth
	// observables the core cannot measure. Called synchronously from the
	// eviction path; it must be cheap and must not re-enter the engine.
	OnSignals func(s *Signals)

	// OnLevel, when set, is invoked with the new aggressiveness level at
	// each interval boundary (even if unchanged).
	OnLevel func(level int)

	// OnInterval, when set, receives every completed sampling interval's
	// record as it closes — the streaming counterpart of History. It is
	// called synchronously from the eviction path, so it must be cheap
	// and must not re-enter the engine.
	OnInterval func(rec IntervalRecord)

	// LevelDist and InsertDist feed Figures 6 and 8: the former counts
	// sampling intervals per counter value, the latter counts prefetch
	// insertions per stack position.
	LevelDist  *stats.Distribution
	InsertDist *stats.Distribution

	// History retains per-interval records when KeepHistory is set.
	KeepHistory bool
	History     []IntervalRecord

	intervals uint64

	// sig is the Signals scratch value rebuilt at each boundary; keeping
	// it on the (heap-allocated) engine lets OnSignals take its address
	// without forcing a per-interval heap escape.
	sig Signals
}

// New constructs the FDP engine.
func New(cfg Config) *FDP {
	if cfg.TInterval == 0 {
		cfg.TInterval = 8192
	}
	if cfg.InitLevel == 0 {
		cfg.InitLevel = 3
	}
	f := &FDP{
		cfg:       cfg,
		filter:    NewPollutionFilter(cfg.FilterBits),
		Decider:   paperDecider{th: cfg.Thresholds, accuracyOnly: cfg.AccuracyOnly},
		level:     cfg.InitLevel,
		insertion: cfg.StaticInsertion,
		LevelDist: stats.NewDistribution("level",
			"VeryConservative", "Conservative", "Middle", "Aggressive", "VeryAggressive"),
		InsertDist: stats.NewDistribution("insertion", "LRU", "LRU-4", "MID", "MRU"),
	}
	if cfg.DynamicInsertion {
		// The dynamic mechanism starts at MID (it never uses MRU).
		f.insertion = cache.PosMID
	}
	return f
}

// Config returns the configuration in use.
func (f *FDP) Config() Config { return f.cfg }

// Level returns the current Dynamic Configuration Counter value.
func (f *FDP) Level() int { return f.level }

// Intervals returns the number of completed sampling intervals.
func (f *FDP) Intervals() uint64 { return f.intervals }

// InsertionPos returns the LRU-stack position for the next prefetch fill
// and records it for the Figure 8 distribution.
func (f *FDP) InsertionPos() cache.InsertPos {
	f.InsertDist.Add(int(f.insertion))
	return f.insertion
}

// OnPrefetchSent counts a prefetch that went out on the memory bus.
func (f *FDP) OnPrefetchSent() { f.prefTotal.add(1) }

// OnPrefetchUsed counts a demand hit on a cached block with its pref-bit
// set (the hierarchy clears the bit).
func (f *FDP) OnPrefetchUsed() { f.usedTotal.add(1) }

// OnPrefetchLate counts a demand request that merged into an in-flight
// prefetch MSHR entry. Late prefetches are also useful — the demand wanted
// the block — so used-total is incremented as well, which keeps lateness
// bounded by 100% as in the paper's Figure 3.
func (f *FDP) OnPrefetchLate() {
	f.lateTotal.add(1)
	f.usedTotal.add(1)
}

// OnDemandMiss counts an L2 demand miss and attributes it to the
// prefetcher when the pollution filter has the block's signature set,
// reporting whether it did so.
func (f *FDP) OnDemandMiss(block uint64) bool {
	f.demandTotal.add(1)
	if f.filter.Test(block) {
		f.pollutionTotal.add(1)
		return true
	}
	return false
}

// OnPrefetchFill clears the block's pollution-filter bit when a prefetched
// block is inserted into the cache.
func (f *FDP) OnPrefetchFill(block uint64) { f.filter.Clear(block) }

// OnEviction is called for every valid block evicted from the L2. used is
// true when the victim had been referenced by a demand (its pref-bit was
// clear); demandFill is true when the victim was originally brought in by
// a demand miss rather than a prefetch; byPrefetch is true when the
// incoming fill that displaced it was a prefetch. Useful-block (used)
// evictions advance the sampling interval; only demand-filled victims
// displaced by prefetches arm the pollution filter (Section 3.1.3 — a
// used prefetch was still brought in by the prefetcher, so losing it is
// not pollution of demand-fetched data).
func (f *FDP) OnEviction(block uint64, used, demandFill, byPrefetch bool) {
	if demandFill && byPrefetch {
		f.filter.Set(block)
	}
	if used {
		f.evictions++
		if f.evictions >= f.cfg.TInterval {
			f.endInterval()
		}
	}
}

// Metrics returns the decayed accuracy, lateness and pollution as of the
// last interval boundary plus the current interval's raw counts — the
// values the next boundary would classify.
func (f *FDP) Metrics() (accuracy, lateness, pollution float64) {
	return ratio(f.usedTotal, f.prefTotal),
		ratio(f.lateTotal, f.usedTotal),
		ratio(f.pollutionTotal, f.demandTotal)
}

func ratio(num, den counter) float64 {
	n := num.value + num.during
	d := den.value + den.during
	if d == 0 {
		return 0
	}
	v := float64(n) / float64(d)
	if v > 1 {
		v = 1
	}
	return v
}

// endInterval applies Equation 1 to every counter, classifies the three
// metrics into a Signals value, consults the Decider, and applies its
// Decision to the prefetcher aggressiveness and insertion policy for the
// next interval (each gated by its Dynamic* config switch).
func (f *FDP) endInterval() {
	f.evictions = 0
	f.intervals++

	raw := IntervalCounts{
		PrefSent:        f.prefTotal.during,
		PrefUsed:        f.usedTotal.during,
		PrefLate:        f.lateTotal.during,
		PollutionMisses: f.pollutionTotal.during,
		DemandMisses:    f.demandTotal.during,
	}
	pref := f.prefTotal.roll()
	used := f.usedTotal.roll()
	late := f.lateTotal.roll()
	poll := f.pollutionTotal.roll()
	demand := f.demandTotal.roll()

	accuracy := safeDiv(used, pref)
	lateness := safeDiv(late, used)
	pollution := safeDiv(poll, demand)

	th := f.cfg.Thresholds
	var accClass AccuracyClass
	switch {
	case accuracy >= th.AHigh:
		accClass = AccHigh
	case accuracy >= th.ALow:
		accClass = AccMedium
	default:
		accClass = AccLow
	}
	isLate := lateness >= th.TLateness
	polluting := pollution >= th.TPollution

	f.sig = Signals{
		Interval:  f.intervals,
		Accuracy:  accuracy,
		Lateness:  lateness,
		Pollution: pollution,
		AccClass:  accClass,
		Late:      isLate,
		Polluting: polluting,
		Raw:       raw,
		Decayed: IntervalCounts{
			PrefSent:        pref,
			PrefUsed:        used,
			PrefLate:        late,
			PollutionMisses: poll,
			DemandMisses:    demand,
		},
		Level:     f.level,
		Insertion: f.insertion,
	}
	if f.OnSignals != nil {
		f.OnSignals(&f.sig)
	}
	d := f.Decider.Decide(f.sig)

	levelBefore := f.level
	if f.cfg.DynamicAggressiveness {
		f.level = ClampLevel(d.Level)
		if f.OnLevel != nil {
			f.OnLevel(f.level)
		}
	}
	if f.cfg.DynamicInsertion {
		f.insertion = d.Insertion
	}
	f.LevelDist.Add(f.level - 1)

	if f.KeepHistory || f.OnInterval != nil {
		rec := IntervalRecord{
			Accuracy:       accuracy,
			Lateness:       lateness,
			Pollution:      pollution,
			Case:           d.Case,
			Level:          f.level,
			Insertion:      f.insertion,
			Raw:            raw,
			Decayed:        f.sig.Decayed,
			AccClass:       accClass,
			Late:           isLate,
			Polluting:      polluting,
			BusUtilization: f.sig.BusUtilization,
			LevelBefore:    levelBefore,
		}
		if f.KeepHistory {
			f.History = append(f.History, rec)
		}
		if f.OnInterval != nil {
			f.OnInterval(rec)
		}
	}
}

// Insertion returns the stack position currently chosen for prefetch
// fills without recording it in the Figure 8 distribution.
func (f *FDP) Insertion() cache.InsertPos { return f.insertion }

func safeDiv(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	v := float64(n) / float64(d)
	if v > 1 {
		v = 1
	}
	return v
}
