package core

import "testing"

// TestAllTwelveCasesEndToEnd drives the FDP engine through counter
// patterns that produce each of Table 2's twelve classifications and
// checks the Dynamic Configuration Counter moves exactly as prescribed.
func TestAllTwelveCasesEndToEnd(t *testing.T) {
	type scenario struct {
		name      string
		acc       AccuracyClass
		late      bool
		polluting bool
	}
	var scenarios []scenario
	for _, acc := range []AccuracyClass{AccHigh, AccMedium, AccLow} {
		for _, late := range []bool{true, false} {
			for _, poll := range []bool{false, true} {
				scenarios = append(scenarios, scenario{
					name:      acc.String() + lateName(late) + pollName(poll),
					acc:       acc,
					late:      late,
					polluting: poll,
				})
			}
		}
	}

	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			f := New(testConfig())
			f.KeepHistory = true

			// Accuracy: sent=100; used per class.
			used := map[AccuracyClass]int{AccHigh: 90, AccMedium: 50, AccLow: 10}[sc.acc]
			for i := 0; i < 100; i++ {
				f.OnPrefetchSent()
			}
			lateCount := 0
			if sc.late {
				lateCount = used / 2 // lateness 50% >> TLateness
			}
			for i := 0; i < lateCount; i++ {
				f.OnPrefetchLate() // contributes to used as well
			}
			for i := 0; i < used-lateCount; i++ {
				f.OnPrefetchUsed()
			}
			// Pollution: 100 demand misses, polluted fraction per class.
			polluted := 0
			if sc.polluting {
				polluted = 50
			}
			for b := uint64(0); b < uint64(polluted); b++ {
				// Arm the filter under the interval threshold: use
				// non-useful evictions (prefetched, unused victims) so the
				// interval does not advance early.
				f.OnEviction(b, false, true, true)
			}
			for b := uint64(0); b < 100; b++ {
				f.OnDemandMiss(b)
			}
			endIntervals(f, 1)

			if len(f.History) != 1 {
				t.Fatalf("intervals recorded = %d", len(f.History))
			}
			rec := f.History[0]
			want := LookupPolicy(sc.acc, sc.late, sc.polluting)
			if rec.Case.Case != want.Case {
				t.Fatalf("classified as case %d (%+v), want case %d", rec.Case.Case, rec, want.Case)
			}
			wantLevel := 3 + int(want.Update)
			if f.Level() != wantLevel {
				t.Fatalf("level = %d, want %d (update %v)", f.Level(), wantLevel, want.Update)
			}
		})
	}
}

func lateName(b bool) string {
	if b {
		return "-Late"
	}
	return "-NotLate"
}

func pollName(b bool) string {
	if b {
		return "-Polluting"
	}
	return "-NotPolluting"
}
