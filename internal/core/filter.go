package core

// PollutionFilter is the Bloom-filter-style structure of Figure 4: a
// 4096-bit vector indexed by the XOR of the low and high halves of the
// cache-block address (blockAddr[11:0] XOR blockAddr[23:12]). A set bit
// means "a demand-fetched block with this signature was evicted by a
// prefetch"; prefetch fills clear the bit for their own address; a demand
// miss that finds its bit set is attributed to prefetcher pollution.
type PollutionFilter struct {
	bits []uint64
	mask uint64
	hi   uint
}

// NewPollutionFilter creates a filter with the given number of bits (a
// power of two; the paper uses 4096).
func NewPollutionFilter(bits int) *PollutionFilter {
	if bits <= 0 {
		bits = 4096
	}
	if bits&(bits-1) != 0 {
		panic("core: pollution filter size must be a power of two")
	}
	var shift uint
	for v := bits; v > 1; v >>= 1 {
		shift++
	}
	return &PollutionFilter{
		bits: make([]uint64, bits/64),
		mask: uint64(bits - 1),
		hi:   shift,
	}
}

// Size returns the filter size in bits.
func (f *PollutionFilter) Size() int { return len(f.bits) * 64 }

// index implements the paper's hash: low address bits XOR the next group
// of higher-order bits.
func (f *PollutionFilter) index(block uint64) uint64 {
	return (block ^ (block >> f.hi)) & f.mask
}

// Set marks the signature of an evicted demand-fetched block.
func (f *PollutionFilter) Set(block uint64) {
	i := f.index(block)
	f.bits[i>>6] |= 1 << (i & 63)
}

// Clear resets the signature when a prefetched block is inserted.
func (f *PollutionFilter) Clear(block uint64) {
	i := f.index(block)
	f.bits[i>>6] &^= 1 << (i & 63)
}

// Test reports whether the block's signature bit is set.
func (f *PollutionFilter) Test(block uint64) bool {
	i := f.index(block)
	return f.bits[i>>6]&(1<<(i&63)) != 0
}

// Reset clears the whole filter.
func (f *PollutionFilter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
}

// PopCount returns the number of set bits (for tests and debugging).
func (f *PollutionFilter) PopCount() int {
	n := 0
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
