package core
