package core

import "fdpsim/internal/cache"

// AccuracyClass buckets the measured prefetch accuracy against the A_high
// and A_low thresholds.
type AccuracyClass int

// Accuracy classes.
const (
	AccLow AccuracyClass = iota
	AccMedium
	AccHigh
)

// String names the class.
func (a AccuracyClass) String() string {
	switch a {
	case AccLow:
		return "Low"
	case AccMedium:
		return "Medium"
	}
	return "High"
}

// CounterUpdate is the Dynamic Configuration Counter adjustment a Table 2
// case prescribes.
type CounterUpdate int

// Counter updates.
const (
	Decrement CounterUpdate = -1
	NoChange  CounterUpdate = 0
	Increment CounterUpdate = +1
)

// String names the update.
func (u CounterUpdate) String() string {
	switch u {
	case Decrement:
		return "Decrement"
	case Increment:
		return "Increment"
	}
	return "No Change"
}

// PolicyCase identifies one of the twelve rows of Table 2.
type PolicyCase struct {
	Case      int // 1..12, the paper's numbering
	Accuracy  AccuracyClass
	Late      bool
	Polluting bool
	Update    CounterUpdate
	Reason    string
}

// Table2 is the paper's complete aggressiveness-adjustment policy.
var Table2 = []PolicyCase{
	{1, AccHigh, true, false, Increment, "to increase timeliness"},
	{2, AccHigh, true, true, Increment, "to increase timeliness"},
	{3, AccHigh, false, false, NoChange, "best case configuration"},
	{4, AccHigh, false, true, Decrement, "to reduce pollution"},
	{5, AccMedium, true, false, Increment, "to increase timeliness"},
	{6, AccMedium, true, true, Decrement, "to reduce pollution"},
	{7, AccMedium, false, false, NoChange, "to keep the benefits of timely prefetches"},
	{8, AccMedium, false, true, Decrement, "to reduce pollution"},
	{9, AccLow, true, false, Decrement, "to save bandwidth"},
	{10, AccLow, true, true, Decrement, "to reduce pollution"},
	{11, AccLow, false, false, NoChange, "to keep the benefits of timely prefetches"},
	{12, AccLow, false, true, Decrement, "to reduce pollution and save bandwidth"},
}

// LookupPolicy returns the Table 2 row for a classified interval.
func LookupPolicy(acc AccuracyClass, late, polluting bool) PolicyCase {
	for _, c := range Table2 {
		if c.Accuracy == acc && c.Late == late && c.Polluting == polluting {
			return c
		}
	}
	// Unreachable: Table2 is total over the 3x2x2 domain.
	panic("core: incomplete Table 2")
}

// InsertionFor maps the measured pollution to the Section 3.3.2 insertion
// policy: low pollution inserts prefetched blocks at MID, medium at LRU-4,
// high at LRU. (The paper's dynamic mechanism never uses MRU; see
// footnote 9.)
func InsertionFor(pollution, pLow, pHigh float64) cache.InsertPos {
	switch {
	case pollution < pLow:
		return cache.PosMID
	case pollution < pHigh:
		return cache.PosLRU4
	default:
		return cache.PosLRU
	}
}
