package core

import "testing"

// TestUsedPrefetchEvictionDoesNotArmFilter pins the Section 3.1.3
// distinction: a block brought in by a prefetch and later used by a demand
// is a "useful" eviction (it advances the sampling interval) but it was
// not demand-fetched, so its displacement by another prefetch must not be
// recorded as pollution.
func TestUsedPrefetchEvictionDoesNotArmFilter(t *testing.T) {
	f := New(testConfig())
	// used=true (demand touched it), demandFill=false (prefetch brought
	// it in), byPrefetch=true (a prefetch displaced it).
	f.OnEviction(7, true, false, true)
	if f.OnDemandMiss(7) {
		t.Fatal("used-prefetch eviction armed the pollution filter")
	}
	if f.evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (used victims advance the interval)", f.evictions)
	}
}

// TestUnusedDemandFillEvictionArmsFilter: the canonical pollution event.
func TestUnusedDemandFillEvictionArmsFilter(t *testing.T) {
	f := New(testConfig())
	f.OnEviction(9, true, true, true)
	if !f.OnDemandMiss(9) {
		t.Fatal("demand-filled victim displaced by prefetch not detected as pollution")
	}
}

// TestDemandEvictionByDemandIsNotPollution: ordinary capacity pressure
// between demand blocks is not the prefetcher's fault.
func TestDemandEvictionByDemandIsNotPollution(t *testing.T) {
	f := New(testConfig())
	f.OnEviction(11, true, true, false)
	if f.OnDemandMiss(11) {
		t.Fatal("demand-on-demand eviction counted as pollution")
	}
}
