package core

import "fdpsim/internal/cache"

// Aggressiveness level bounds: the Dynamic Configuration Counter is a
// 3-bit saturating counter clamped to the five Table 1 configurations.
const (
	MinLevel = 1
	MaxLevel = 5
)

// Signals is everything a feedback policy may observe at one sampling
// interval boundary: the three Section 3 metrics with their threshold
// classifications, the raw and Equation 1-decayed event counters they
// were computed from, the current aggressiveness level and insertion
// position, and — when the engine is embedded in the full simulator —
// the bandwidth observables of the attribution layer (bus occupancy by
// transaction kind over the interval). Standalone core use leaves the
// bandwidth fields zero; the sim layer fills them through FDP.OnSignals
// before the decision is taken.
//
// Signals is a plain value: building and passing one allocates nothing,
// which keeps the per-interval decision path heap-free (see
// TestDecideAllocs in internal/control).
type Signals struct {
	// Interval is the 1-based index of the sampling interval that closed.
	Interval uint64

	// The three feedback metrics of Section 3.1, computed from the
	// decayed counters, each clamped to [0, 1].
	Accuracy  float64
	Lateness  float64
	Pollution float64

	// Threshold classifications against Thresholds (Section 4.3): the
	// inputs of the paper's Table 2 lookup.
	AccClass  AccuracyClass
	Late      bool
	Polluting bool

	// Raw holds this interval's event counts alone; Decayed the
	// Equation 1 accumulations the metrics above were computed from.
	Raw     IntervalCounts
	Decayed IntervalCounts

	// Level and Insertion are the aggressiveness level and LRU-stack
	// insertion position in effect while the interval ran — the state a
	// policy adjusts.
	Level     int
	Insertion cache.InsertPos

	// Bandwidth observables, filled by the sim layer (zero in standalone
	// core use): how many cycles the interval spanned, how many of them
	// the shared data bus was occupied (split out for prefetch traffic),
	// and the resulting utilization in [0, 1]. These are the signals the
	// DSPatch-style and learned controllers key on.
	IntervalCycles    uint64
	BusBusyCycles     uint64
	BusPrefetchCycles uint64
	BusUtilization    float64
}

// Decision is a feedback policy's output for the next interval: the
// aggressiveness level (clamped by the engine to MinLevel..MaxLevel) and
// the LRU-stack position for prefetch fills, plus the PolicyCase that
// explains the choice — the Table 2 row for the paper policy, a
// synthesized rationale (Case 0) for other controllers. The engine
// applies Level only under DynamicAggressiveness and Insertion only
// under DynamicInsertion, so a policy never overrides a static
// configuration.
type Decision struct {
	Level     int
	Insertion cache.InsertPos
	Case      PolicyCase
}

// Decider is the pluggable decision-policy seam: the FDP engine calls
// Decide at every sampling interval boundary, synchronously from the
// eviction path. Implementations must be cheap, allocation-free, and
// must not re-enter the engine. internal/control implements the registry
// of named controllers (the paper's Table 2 policy, static baselines,
// and learned competitors) behind this interface.
type Decider interface {
	Decide(s Signals) Decision
}

// ClampLevel saturates a level into the MinLevel..MaxLevel range, the
// 3-bit Dynamic Configuration Counter's behavior.
func ClampLevel(level int) int {
	if level < MinLevel {
		return MinLevel
	}
	if level > MaxLevel {
		return MaxLevel
	}
	return level
}

// PaperDecision is the paper's complete feedback policy as a pure
// function: the Table 2 aggressiveness adjustment selected by the
// classified signals (or the Section 5.6 accuracy-only ablation when
// accuracyOnly is set) plus the Section 3.3.2 pollution-directed
// insertion position. This is the single source of truth for the default
// behavior: the engine's built-in decider and internal/control's "fdp"
// controller both delegate here, so the pluggable seam cannot drift from
// the hard-wired policy it replaced.
func PaperDecision(s Signals, th Thresholds, accuracyOnly bool) Decision {
	pc := LookupPolicy(s.AccClass, s.Late, s.Polluting)
	update := pc.Update
	if accuracyOnly {
		// Section 5.6 ablation: accuracy alone steers the counter.
		switch s.AccClass {
		case AccHigh:
			update = Increment
		case AccLow:
			update = Decrement
		default:
			update = NoChange
		}
	}
	return Decision{
		Level:     ClampLevel(s.Level + int(update)),
		Insertion: InsertionFor(s.Pollution, th.PLow, th.PHigh),
		Case:      pc,
	}
}

// paperDecider is the engine's built-in Decider: the paper policy over
// the engine's configured thresholds. Installed by New when no external
// controller is injected, so a bare core.FDP behaves exactly as before
// the seam existed.
type paperDecider struct {
	th           Thresholds
	accuracyOnly bool
}

func (d paperDecider) Decide(s Signals) Decision {
	return PaperDecision(s, d.th, d.accuracyOnly)
}
