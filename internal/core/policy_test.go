package core

import (
	"testing"

	"fdpsim/internal/cache"
)

// TestTable2Complete checks the policy covers the full 3x2x2 domain with
// the paper's case numbering intact.
func TestTable2Complete(t *testing.T) {
	if len(Table2) != 12 {
		t.Fatalf("Table2 has %d cases, want 12", len(Table2))
	}
	seen := make(map[int]bool)
	n := 1
	for _, acc := range []AccuracyClass{AccHigh, AccMedium, AccLow} {
		for _, late := range []bool{true, false} {
			for _, poll := range []bool{false, true} {
				c := LookupPolicy(acc, late, poll)
				if seen[c.Case] {
					t.Errorf("case %d returned twice", c.Case)
				}
				seen[c.Case] = true
				if c.Case != n {
					t.Errorf("LookupPolicy(%v,%v,%v) = case %d, want %d", acc, late, poll, c.Case, n)
				}
				n++
			}
		}
	}
}

// TestTable2Updates pins every row to the paper's prescribed update.
func TestTable2Updates(t *testing.T) {
	want := map[int]CounterUpdate{
		1: Increment, 2: Increment, 3: NoChange, 4: Decrement,
		5: Increment, 6: Decrement, 7: NoChange, 8: Decrement,
		9: Decrement, 10: Decrement, 11: NoChange, 12: Decrement,
	}
	for _, c := range Table2 {
		if c.Update != want[c.Case] {
			t.Errorf("case %d: update %v, want %v", c.Case, c.Update, want[c.Case])
		}
	}
}

// TestTable2PollutionAlwaysThrottles: every polluting case except the
// high-accuracy-late one decrements (the paper's "all even-numbered cases"
// observation).
func TestTable2PollutionAlwaysThrottles(t *testing.T) {
	for _, c := range Table2 {
		if !c.Polluting {
			continue
		}
		if c.Case == 2 {
			if c.Update != Increment {
				t.Errorf("case 2 must increment despite pollution")
			}
			continue
		}
		if c.Update != Decrement {
			t.Errorf("polluting case %d does not decrement", c.Case)
		}
	}
}

func TestInsertionFor(t *testing.T) {
	const pLow, pHigh = 0.10, 0.25
	cases := []struct {
		pollution float64
		want      cache.InsertPos
	}{
		{0.0, cache.PosMID},
		{0.09, cache.PosMID},
		{0.10, cache.PosLRU4},
		{0.24, cache.PosLRU4},
		{0.25, cache.PosLRU},
		{0.9, cache.PosLRU},
	}
	for _, tc := range cases {
		if got := InsertionFor(tc.pollution, pLow, pHigh); got != tc.want {
			t.Errorf("InsertionFor(%v) = %v, want %v", tc.pollution, got, tc.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	if AccLow.String() != "Low" || AccMedium.String() != "Medium" || AccHigh.String() != "High" {
		t.Error("AccuracyClass strings wrong")
	}
	if Increment.String() != "Increment" || Decrement.String() != "Decrement" || NoChange.String() != "No Change" {
		t.Error("CounterUpdate strings wrong")
	}
	// The default arms: values outside the enum render as the zero-ish
	// names rather than panicking or printing numbers.
	if AccuracyClass(99).String() != "High" {
		t.Errorf("out-of-range AccuracyClass = %q, want High", AccuracyClass(99).String())
	}
	if CounterUpdate(99).String() != "No Change" {
		t.Errorf("out-of-range CounterUpdate = %q, want No Change", CounterUpdate(99).String())
	}
}

// TestLookupPolicyExhaustive pins every point of the 3x2x2 input domain
// to its Table 2 row — case number, counter update, and a human-readable
// reason — written out literally so a policy edit cannot hide behind the
// table it is testing against.
func TestLookupPolicyExhaustive(t *testing.T) {
	cases := []struct {
		acc        AccuracyClass
		late, poll bool
		wantCase   int
		wantUpdate CounterUpdate
	}{
		{AccHigh, true, false, 1, Increment},
		{AccHigh, true, true, 2, Increment},
		{AccHigh, false, false, 3, NoChange},
		{AccHigh, false, true, 4, Decrement},
		{AccMedium, true, false, 5, Increment},
		{AccMedium, true, true, 6, Decrement},
		{AccMedium, false, false, 7, NoChange},
		{AccMedium, false, true, 8, Decrement},
		{AccLow, true, false, 9, Decrement},
		{AccLow, true, true, 10, Decrement},
		{AccLow, false, false, 11, NoChange},
		{AccLow, false, true, 12, Decrement},
	}
	if len(cases) != len(Table2) {
		t.Fatalf("test table has %d rows, Table2 has %d", len(cases), len(Table2))
	}
	reasons := make(map[int]string, len(cases))
	for _, tc := range cases {
		got := LookupPolicy(tc.acc, tc.late, tc.poll)
		if got.Case != tc.wantCase || got.Update != tc.wantUpdate {
			t.Errorf("LookupPolicy(%v, late=%v, poll=%v) = case %d %v, want case %d %v",
				tc.acc, tc.late, tc.poll, got.Case, got.Update, tc.wantCase, tc.wantUpdate)
		}
		if got.Accuracy != tc.acc || got.Late != tc.late || got.Polluting != tc.poll {
			t.Errorf("case %d echoes inputs %v/%v/%v, want %v/%v/%v",
				got.Case, got.Accuracy, got.Late, got.Polluting, tc.acc, tc.late, tc.poll)
		}
		if got.Reason == "" {
			t.Errorf("case %d has no reason", got.Case)
		}
		reasons[got.Case] = got.Reason
	}

	// Every row drives PaperDecision correctly at every level, including
	// clamping at the rails: the decision's level is the clamped update
	// and its Case is the row LookupPolicy returned.
	th := DefaultConfig().Thresholds
	for _, tc := range cases {
		for level := MinLevel; level <= MaxLevel; level++ {
			s := Signals{AccClass: tc.acc, Late: tc.late, Polluting: tc.poll, Level: level}
			d := PaperDecision(s, th, false)
			want := ClampLevel(level + int(tc.wantUpdate))
			if d.Level != want {
				t.Errorf("PaperDecision(case %d, level %d).Level = %d, want %d", tc.wantCase, level, d.Level, want)
			}
			if d.Case.Case != tc.wantCase {
				t.Errorf("PaperDecision(case %d, level %d).Case = %d", tc.wantCase, level, d.Case.Case)
			}
		}
	}
}
