package core

import (
	"testing"

	"fdpsim/internal/cache"
)

// TestTable2Complete checks the policy covers the full 3x2x2 domain with
// the paper's case numbering intact.
func TestTable2Complete(t *testing.T) {
	if len(Table2) != 12 {
		t.Fatalf("Table2 has %d cases, want 12", len(Table2))
	}
	seen := make(map[int]bool)
	n := 1
	for _, acc := range []AccuracyClass{AccHigh, AccMedium, AccLow} {
		for _, late := range []bool{true, false} {
			for _, poll := range []bool{false, true} {
				c := LookupPolicy(acc, late, poll)
				if seen[c.Case] {
					t.Errorf("case %d returned twice", c.Case)
				}
				seen[c.Case] = true
				if c.Case != n {
					t.Errorf("LookupPolicy(%v,%v,%v) = case %d, want %d", acc, late, poll, c.Case, n)
				}
				n++
			}
		}
	}
}

// TestTable2Updates pins every row to the paper's prescribed update.
func TestTable2Updates(t *testing.T) {
	want := map[int]CounterUpdate{
		1: Increment, 2: Increment, 3: NoChange, 4: Decrement,
		5: Increment, 6: Decrement, 7: NoChange, 8: Decrement,
		9: Decrement, 10: Decrement, 11: NoChange, 12: Decrement,
	}
	for _, c := range Table2 {
		if c.Update != want[c.Case] {
			t.Errorf("case %d: update %v, want %v", c.Case, c.Update, want[c.Case])
		}
	}
}

// TestTable2PollutionAlwaysThrottles: every polluting case except the
// high-accuracy-late one decrements (the paper's "all even-numbered cases"
// observation).
func TestTable2PollutionAlwaysThrottles(t *testing.T) {
	for _, c := range Table2 {
		if !c.Polluting {
			continue
		}
		if c.Case == 2 {
			if c.Update != Increment {
				t.Errorf("case 2 must increment despite pollution")
			}
			continue
		}
		if c.Update != Decrement {
			t.Errorf("polluting case %d does not decrement", c.Case)
		}
	}
}

func TestInsertionFor(t *testing.T) {
	const pLow, pHigh = 0.10, 0.25
	cases := []struct {
		pollution float64
		want      cache.InsertPos
	}{
		{0.0, cache.PosMID},
		{0.09, cache.PosMID},
		{0.10, cache.PosLRU4},
		{0.24, cache.PosLRU4},
		{0.25, cache.PosLRU},
		{0.9, cache.PosLRU},
	}
	for _, tc := range cases {
		if got := InsertionFor(tc.pollution, pLow, pHigh); got != tc.want {
			t.Errorf("InsertionFor(%v) = %v, want %v", tc.pollution, got, tc.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	if AccLow.String() != "Low" || AccMedium.String() != "Medium" || AccHigh.String() != "High" {
		t.Error("AccuracyClass strings wrong")
	}
	if Increment.String() != "Increment" || Decrement.String() != "Decrement" || NoChange.String() != "No Change" {
		t.Error("CounterUpdate strings wrong")
	}
}
