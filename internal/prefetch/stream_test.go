package prefetch

import (
	"testing"
	"testing/quick"
)

// missAt feeds a demand L2 miss to the prefetcher.
func missAt(p Prefetcher, block uint64) []uint64 {
	return observe(p, Event{Block: block, Miss: true})
}

func TestStreamTrainsAscending(t *testing.T) {
	s := NewStream(64)
	s.SetLevel(1) // distance 4, degree 1
	if out := missAt(s, 1000); out != nil {
		t.Fatal("allocation miss prefetched")
	}
	if out := missAt(s, 1001); out != nil {
		t.Fatal("first training miss prefetched")
	}
	out := missAt(s, 1002) // second consistent vote: Monitor and Request
	if len(out) != 1 {
		t.Fatalf("transition issued %d prefetches, want degree=1", len(out))
	}
	// End pointer = last miss + startup distance (2); prefetch = end+1.
	if out[0] != 1005 {
		t.Fatalf("prefetch at %d, want 1005", out[0])
	}
	if len(s.MonitorRegions()) != 1 {
		t.Fatal("no monitor region after training")
	}
}

func TestStreamTrainsDescending(t *testing.T) {
	s := NewStream(64)
	s.SetLevel(1)
	missAt(s, 1000)
	missAt(s, 999)
	out := missAt(s, 998)
	// end = last + dir*startup = 998 - 2 = 996; prefetch = end + dir*1 = 995.
	if len(out) != 1 || out[0] != 995 {
		t.Fatalf("descending prefetch = %v, want [995]", out)
	}
	regions := s.MonitorRegions()
	if len(regions) != 1 || regions[0][2] != -1 {
		t.Fatalf("regions = %v, want one descending", regions)
	}
}

func TestStreamInconsistentDirectionRestartsTraining(t *testing.T) {
	s := NewStream(64)
	missAt(s, 1000)
	missAt(s, 1004)        // ascending vote
	out := missAt(s, 1001) // descending vote: restart
	if out != nil || len(s.MonitorRegions()) != 0 {
		t.Fatal("inconsistent votes still trained a stream")
	}
	// Two consistent descending votes from here complete training.
	missAt(s, 1000)
	if len(s.MonitorRegions()) != 1 {
		t.Fatal("retraining after restart failed")
	}
}

func TestStreamTrainingWindow(t *testing.T) {
	s := NewStream(64)
	missAt(s, 1000)
	// A miss beyond +/-16 blocks allocates its own entry instead of
	// training the first.
	missAt(s, 1020)
	missAt(s, 1001)
	missAt(s, 1002)
	if len(s.MonitorRegions()) != 1 {
		t.Fatalf("regions = %d, want 1 (distant miss must not train)", len(s.MonitorRegions()))
	}
}

func TestStreamMonitorIssuesDegreeAndAdvances(t *testing.T) {
	s := NewStream(64)
	s.SetLevel(3) // distance 16, degree 2
	missAt(s, 100)
	missAt(s, 101)
	first := missAt(s, 102) // monitor; end=104; prefetch 105,106; end=106
	if len(first) != 2 || first[0] != 105 || first[1] != 106 {
		t.Fatalf("transition prefetches = %v, want [105 106]", first)
	}
	// Access inside the region issues the next two and slides the end.
	out := observe(s, Event{Block: 103})
	if len(out) != 2 || out[0] != 107 || out[1] != 108 {
		t.Fatalf("monitor prefetches = %v, want [107 108]", out)
	}
}

func TestStreamDistanceClampsRegion(t *testing.T) {
	s := NewStream(64)
	s.SetLevel(1) // distance 4
	missAt(s, 100)
	missAt(s, 101)
	missAt(s, 102)
	for b := uint64(103); b < 120; b++ {
		observe(s, Event{Block: b})
	}
	r := s.MonitorRegions()[0]
	if size := r[1] - r[0]; size > 4 {
		t.Fatalf("region size %d exceeds distance 4", size)
	}
}

func TestStreamShrinksWhenLevelDrops(t *testing.T) {
	s := NewStream(64)
	s.SetLevel(5)
	missAt(s, 100)
	missAt(s, 101)
	missAt(s, 102)
	for b := uint64(103); b < 140; b++ {
		observe(s, Event{Block: b})
	}
	if r := s.MonitorRegions()[0]; r[1]-r[0] <= 4 {
		t.Fatalf("very aggressive region too small: %v", r)
	}
	s.SetLevel(1)
	observe(s, Event{Block: 140})
	if r := s.MonitorRegions()[0]; r[1]-r[0] > 4 {
		t.Fatalf("region %v did not shrink after throttling", r)
	}
}

func TestStreamAccessOutsideRegionNoPrefetch(t *testing.T) {
	s := NewStream(64)
	missAt(s, 100)
	missAt(s, 101)
	missAt(s, 102)
	if out := observe(s, Event{Block: 5000}); out != nil {
		t.Fatalf("access outside any region prefetched %v", out)
	}
}

func TestStreamLRUReplacement(t *testing.T) {
	s := NewStream(2)
	// Train two streams, then allocate a third; the least recently used
	// tracking entry is replaced.
	missAt(s, 100)
	missAt(s, 101)
	missAt(s, 102)
	missAt(s, 1000)
	missAt(s, 1001)
	missAt(s, 1002)
	if len(s.MonitorRegions()) != 2 {
		t.Fatalf("regions = %d, want 2", len(s.MonitorRegions()))
	}
	observe(s, Event{Block: 103}) // keep stream 1 recently used
	missAt(s, 5000)              // replaces stream 2
	if got := len(s.MonitorRegions()); got != 1 {
		t.Fatalf("regions after replacement = %d, want 1", got)
	}
	if out := observe(s, Event{Block: 104}); out == nil {
		t.Fatal("recently used stream was replaced instead of the LRU one")
	}
}

func TestStreamSetLevelClamps(t *testing.T) {
	s := NewStream(4)
	s.SetLevel(0)
	if s.Level() != 1 {
		t.Fatalf("level = %d, want clamp to 1", s.Level())
	}
	s.SetLevel(9)
	if s.Level() != 5 {
		t.Fatalf("level = %d, want clamp to 5", s.Level())
	}
}

func TestStreamMultipleConcurrentStreams(t *testing.T) {
	s := NewStream(64)
	s.SetLevel(3)
	// Interleave 8 streams; all must reach monitor state.
	bases := make([]uint64, 8)
	for i := range bases {
		bases[i] = uint64(i+1) * 10000
	}
	for step := uint64(0); step < 3; step++ {
		for _, b := range bases {
			missAt(s, b+step)
		}
	}
	if got := len(s.MonitorRegions()); got != 8 {
		t.Fatalf("monitor regions = %d, want 8", got)
	}
}

// TestStreamNeverPrefetchesBackwards: for an ascending stream every issued
// prefetch address is beyond the triggering access.
func TestStreamPrefetchesAhead(t *testing.T) {
	f := func(startRaw uint16, steps uint8) bool {
		start := uint64(startRaw) + 100
		s := NewStream(16)
		s.SetLevel(4)
		missAt(s, start)
		missAt(s, start+1)
		missAt(s, start+2)
		cur := start + 2
		for i := 0; i < int(steps%40); i++ {
			cur++
			for _, p := range observe(s, Event{Block: cur}) {
				if p <= cur {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelNames(t *testing.T) {
	if LevelName(1) != "Very Conservative" || LevelName(5) != "Very Aggressive" {
		t.Fatal("level names wrong")
	}
	if LevelName(0) == "" {
		t.Fatal("out-of-range level name empty")
	}
}

func TestStreamLevelsTable(t *testing.T) {
	// Table 1 of the paper.
	want := [][2]int{{4, 1}, {8, 1}, {16, 2}, {32, 4}, {64, 4}}
	for lvl := 1; lvl <= 5; lvl++ {
		s := StreamLevels[lvl]
		if s.Distance != want[lvl-1][0] || s.Degree != want[lvl-1][1] {
			t.Errorf("level %d = %+v, want %v", lvl, s, want[lvl-1])
		}
	}
}
