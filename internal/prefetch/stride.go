package prefetch

// PC-based stride prefetcher (Section 5.8), after Baer & Chen's reference
// prediction table (RPT). Each load/store PC owns a table entry recording
// its last block address, its current stride, and a two-bit-equivalent
// confidence state machine. Once a PC reaches the Steady state its next
// accesses issue up to Degree prefetches, kept at most Distance strides
// ahead of the demand stream (the same Table 1 ladder as the stream
// prefetcher).

// Stride entry states.
const (
	strideInitial = iota
	strideTransient
	strideSteady
	strideNoPred
)

type strideEntry struct {
	pcTag    uint64
	lastAddr int64
	stride   int64
	state    int
	// ahead is the block address of the furthest prefetch issued for this
	// PC, used to enforce the Distance limit without re-prefetching.
	ahead int64
	valid bool
}

// StridePrefetcher implements Prefetcher.
type StridePrefetcher struct {
	table    []strideEntry
	mask     uint64
	level    int
	maxBlock int64
}

// NewStride creates a PC-indexed stride prefetcher with the given number
// of direct-mapped table entries (power of two; 512 by default).
func NewStride(entries int) *StridePrefetcher {
	if entries <= 0 {
		entries = 512
	}
	if entries&(entries-1) != 0 {
		panic("prefetch: stride table size must be a power of two")
	}
	return &StridePrefetcher{
		table:    make([]strideEntry, entries),
		mask:     uint64(entries - 1),
		level:    3,
		maxBlock: 1 << 58,
	}
}

// Name implements Prefetcher.
func (p *StridePrefetcher) Name() string { return "pc-stride" }

// SetLevel implements Prefetcher.
func (p *StridePrefetcher) SetLevel(level int) { p.level = clampLevel(level) }

// Level implements Prefetcher.
func (p *StridePrefetcher) Level() int { return p.level }

// Distance returns the current lookahead limit in strides.
func (p *StridePrefetcher) Distance() int64 { return int64(StreamLevels[p.level].Distance) }

// Degree returns the prefetches issued per triggering access.
func (p *StridePrefetcher) Degree() int64 { return int64(StreamLevels[p.level].Degree) }

// Observe implements Prefetcher: every demand L2 access with a valid PC
// trains the table; Steady entries generate prefetches.
func (p *StridePrefetcher) Observe(ev *Event, out []uint64) []uint64 {
	if ev.PC == 0 {
		return out
	}
	e := &p.table[(ev.PC>>2)&p.mask]
	addr := int64(ev.Block)
	if !e.valid || e.pcTag != ev.PC {
		*e = strideEntry{pcTag: ev.PC, lastAddr: addr, state: strideInitial, ahead: addr, valid: true}
		return out
	}
	newStride := addr - e.lastAddr
	match := newStride == e.stride
	switch e.state {
	case strideInitial:
		if match {
			e.state = strideSteady
		} else {
			e.stride = newStride
			e.state = strideTransient
		}
	case strideTransient:
		if match {
			e.state = strideSteady
		} else {
			e.stride = newStride
			e.state = strideNoPred
		}
	case strideSteady:
		if !match {
			e.state = strideInitial
			e.stride = newStride
			e.ahead = addr
		}
	case strideNoPred:
		if match {
			e.state = strideTransient
		} else {
			e.stride = newStride
		}
	}
	e.lastAddr = addr
	if e.state != strideSteady || e.stride == 0 {
		return out
	}
	return p.issue(e, addr, out)
}

// issue emits up to Degree prefetches for a Steady entry, never more than
// Distance strides ahead of the current demand address.
func (p *StridePrefetcher) issue(e *strideEntry, addr int64, out []uint64) []uint64 {
	// Re-anchor if the demand stream overtook the prefetch frontier or the
	// frontier belongs to a stale run.
	if (e.ahead-addr)*sign(e.stride) < 0 {
		e.ahead = addr
	}
	limit := addr + e.stride*p.Distance()
	degree := p.Degree()
	for n := int64(0); n < degree; n++ {
		next := e.ahead + e.stride
		if (limit-next)*sign(e.stride) < 0 {
			break // would exceed the Distance window
		}
		if next < 0 || next > p.maxBlock {
			break
		}
		out = append(out, uint64(next))
		e.ahead = next
	}
	return out
}

func sign(v int64) int64 {
	if v < 0 {
		return -1
	}
	return 1
}
