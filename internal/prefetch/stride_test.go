package prefetch

import (
	"testing"
	"testing/quick"
)

// access drives the stride prefetcher with a PC-tagged demand access.
func access(p Prefetcher, pc, block uint64) []uint64 {
	return observe(p, Event{Block: block, PC: pc, Miss: true})
}

func TestStrideReachesSteady(t *testing.T) {
	s := NewStride(512)
	s.SetLevel(1) // distance 4, degree 1
	const pc = 0x400100
	if out := access(s, pc, 100); out != nil {
		t.Fatal("prefetched on first access")
	}
	if out := access(s, pc, 110); out != nil {
		t.Fatal("prefetched while transient")
	}
	out := access(s, pc, 120) // stride 10 confirmed: steady
	if len(out) != 1 || out[0] != 130 {
		t.Fatalf("steady prefetch = %v, want [130]", out)
	}
}

func TestStrideInitialMatchFastPath(t *testing.T) {
	// Initial with a zero stride matching zero delta must not prefetch
	// (stride 0), but a first repeat of a nonzero implicit stride does:
	// Initial(stride=0) -> delta==0 matches -> Steady with stride 0 -> no
	// prefetches.
	s := NewStride(512)
	const pc = 0x400100
	access(s, pc, 100)
	if out := access(s, pc, 100); out != nil {
		t.Fatalf("zero stride prefetched %v", out)
	}
}

func TestStrideDescending(t *testing.T) {
	s := NewStride(512)
	s.SetLevel(1)
	const pc = 0x400200
	access(s, pc, 1000)
	access(s, pc, 995)
	out := access(s, pc, 990)
	if len(out) != 1 || out[0] != 985 {
		t.Fatalf("descending prefetch = %v, want [985]", out)
	}
}

func TestStrideDistanceCap(t *testing.T) {
	s := NewStride(512)
	s.SetLevel(1) // distance 4, degree 1
	const pc = 0x400300
	access(s, pc, 0)
	access(s, pc, 1)
	// Repeated steady accesses: the frontier may never exceed addr+4.
	cur := uint64(1)
	for i := 0; i < 20; i++ {
		cur++
		for _, p := range access(s, pc, cur) {
			if p > cur+4 {
				t.Fatalf("prefetch %d beyond distance window of %d", p, cur)
			}
		}
	}
}

func TestStrideDegreeAndDistance(t *testing.T) {
	s := NewStride(512)
	s.SetLevel(3) // distance 16, degree 2
	const pc = 0x400400
	access(s, pc, 0)
	access(s, pc, 2)
	out := access(s, pc, 4)
	if len(out) != 2 || out[0] != 6 || out[1] != 8 {
		t.Fatalf("prefetches = %v, want [6 8]", out)
	}
}

func TestStrideBrokenPatternRecovers(t *testing.T) {
	s := NewStride(512)
	s.SetLevel(1)
	const pc = 0x400500
	access(s, pc, 0)
	access(s, pc, 10)
	access(s, pc, 20) // steady, stride 10
	if out := access(s, pc, 500); out != nil {
		t.Fatalf("prefetched %v right after the pattern broke", out)
	}
	// Re-establish a new stride from the break point.
	access(s, pc, 510)
	out := access(s, pc, 520)
	if len(out) != 1 || out[0] != 530 {
		t.Fatalf("recovered prefetch = %v, want [530]", out)
	}
}

func TestStrideNoPredState(t *testing.T) {
	s := NewStride(512)
	const pc = 0x400600
	// Two consecutive mismatches reach NoPred; a single match only gets
	// back to Transient (no prefetch).
	access(s, pc, 0)
	access(s, pc, 7)   // initial -> transient (stride 7)
	access(s, pc, 100) // transient mismatch -> nopred
	access(s, pc, 110) // nopred match (stride 10)? stride was updated to 93...
	// Regardless of the intermediate strides, nothing may prefetch until
	// steady is re-reached; drive a clean run and expect recovery.
	access(s, pc, 120)
	access(s, pc, 130)
	out := access(s, pc, 140)
	if len(out) == 0 {
		t.Fatal("never recovered to steady from NoPred")
	}
}

func TestStridePCCollisionResets(t *testing.T) {
	s := NewStride(8) // tiny table: pc and pc+8*4 collide
	a := uint64(0x1000)
	b := a + 8*4
	access(s, a, 0)
	access(s, a, 10)
	access(s, b, 999) // evicts a's entry
	if out := access(s, a, 20); out != nil {
		t.Fatalf("prefetched %v from a stale entry after collision", out)
	}
}

func TestStrideIgnoresZeroPC(t *testing.T) {
	s := NewStride(512)
	for i := uint64(0); i < 5; i++ {
		if out := observe(s, Event{Block: 100 + i*2, PC: 0, Miss: true}); out != nil {
			t.Fatal("trained on PC 0")
		}
	}
}

func TestStrideTableSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two table did not panic")
		}
	}()
	NewStride(100)
}

// TestStrideProperty: a steady constant-stride PC always prefetches
// multiples of its stride ahead of the access.
func TestStrideProperty(t *testing.T) {
	f := func(strideRaw uint8, n uint8) bool {
		stride := int64(strideRaw%30) + 1
		s := NewStride(512)
		s.SetLevel(4)
		const pc = 0x400700
		cur := int64(1000)
		for i := 0; i < int(n%50)+4; i++ {
			for _, p := range access(s, pc, uint64(cur)) {
				d := int64(p) - cur
				if d <= 0 || d%stride != 0 {
					return false
				}
			}
			cur += stride
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNextLineOnMissAndTag(t *testing.T) {
	p := NewNextLine()
	p.SetLevel(1) // degree 2*1
	out := observe(p, Event{Block: 50, Miss: true})
	if len(out) != 2 || out[0] != 51 || out[1] != 52 {
		t.Fatalf("miss prefetches = %v, want [51 52]", out)
	}
	out = observe(p, Event{Block: 60, Miss: false, PrefHit: true})
	if len(out) != 2 || out[0] != 61 {
		t.Fatalf("tag prefetches = %v", out)
	}
	if out := observe(p, Event{Block: 70}); out != nil {
		t.Fatal("plain hit prefetched")
	}
}

func TestNextLineName(t *testing.T) {
	if NewNextLine().Name() != "nextline" || NewStride(8).Name() != "pc-stride" ||
		NewGHB(8, 8, 8).Name() != "ghb-cdc" || NewStream(1).Name() != "stream" {
		t.Fatal("prefetcher names wrong")
	}
}
