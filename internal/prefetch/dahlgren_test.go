package prefetch

import "testing"

func TestDahlgrenSequentialDegree(t *testing.T) {
	p := NewDahlgren(0.75, 0.40)
	out := observe(p, Event{Block: 100, Miss: true})
	if len(out) != 2 || out[0] != 101 || out[1] != 102 {
		t.Fatalf("initial degree-2 prefetches = %v", out)
	}
	if observe(p, Event{Block: 200}) != nil {
		t.Fatal("hit without PrefHit triggered prefetches")
	}
}

func TestDahlgrenGrowsOnHighAccuracy(t *testing.T) {
	p := NewDahlgren(0.75, 0.40)
	start := p.Degree()
	// Every prefetch is used: degree must double at the window boundary.
	for i := 0; p.Adaptations() == 0 && i < 10000; i++ {
		for _, blk := range observe(p, Event{Block: uint64(i * 100), Miss: true}) {
			observe(p, Event{Block: blk, PrefHit: true})
		}
	}
	if p.Degree() != start*2 {
		t.Fatalf("degree = %d after accurate window, want %d", p.Degree(), start*2)
	}
}

func TestDahlgrenShrinksOnLowAccuracy(t *testing.T) {
	p := NewDahlgren(0.75, 0.40)
	// No prefetch is ever used: degree must halve to the floor of 1.
	for i := 0; p.Degree() > 1 && i < 10000; i++ {
		observe(p, Event{Block: uint64(i * 1000), Miss: true})
	}
	if p.Degree() != 1 {
		t.Fatalf("degree = %d after useless windows, want 1", p.Degree())
	}
	if p.Adaptations() == 0 {
		t.Fatal("no adaptations recorded")
	}
}

func TestDahlgrenDegreeCap(t *testing.T) {
	p := NewDahlgren(0.75, 0.40)
	for i := 0; i < 50000 && p.Degree() < dahlgrenMaxDegree; i++ {
		for _, blk := range observe(p, Event{Block: uint64(i * 100), Miss: true}) {
			observe(p, Event{Block: blk, PrefHit: true})
		}
	}
	if p.Degree() != dahlgrenMaxDegree {
		t.Fatalf("degree = %d, want cap %d", p.Degree(), dahlgrenMaxDegree)
	}
	// Further accurate windows must not exceed the cap.
	for i := 0; i < 1000; i++ {
		for _, blk := range observe(p, Event{Block: uint64(1<<30 + i*100), Miss: true}) {
			observe(p, Event{Block: blk, PrefHit: true})
		}
	}
	if p.Degree() > dahlgrenMaxDegree {
		t.Fatalf("degree %d exceeded cap", p.Degree())
	}
}

func TestDahlgrenSetLevelSeedsDegree(t *testing.T) {
	p := NewDahlgren(0, 0)
	p.SetLevel(5)
	if p.Degree() != StreamLevels[5].Degree {
		t.Fatalf("degree = %d", p.Degree())
	}
	if p.Level() != 5 && p.Level() != 3 && p.Level() != 1 {
		t.Fatalf("level = %d out of domain", p.Level())
	}
	if p.Name() != "dahlgren" {
		t.Fatal("name wrong")
	}
}

func TestHybridMergesEngines(t *testing.T) {
	p := NewHybrid(16, 64)
	p.SetLevel(3)
	if p.Name() != "hybrid" || p.Level() != 3 {
		t.Fatal("hybrid identity wrong")
	}
	// Train the stream engine with PC-less misses.
	missAt(p, 1000)
	missAt(p, 1001)
	if out := missAt(p, 1002); len(out) == 0 {
		t.Fatal("hybrid stream engine silent after training")
	}
	// Train the stride engine on a large stride the stream engine rejects.
	const pc = 0x7000
	observe(p, Event{Block: 50000, PC: pc, Miss: true})
	observe(p, Event{Block: 50100, PC: pc, Miss: true})
	out := observe(p, Event{Block: 50200, PC: pc, Miss: true})
	found := false
	for _, b := range out {
		if b == 50300 {
			found = true
		}
	}
	if !found {
		t.Fatalf("hybrid stride engine missing from merged output %v", out)
	}
}

func TestHybridDeduplicates(t *testing.T) {
	p := NewHybrid(16, 64)
	p.SetLevel(5)
	// Unit-stride with a PC trains both engines on the same addresses.
	const pc = 0x8000
	var out []uint64
	for i := uint64(0); i < 6; i++ {
		out = observe(p, Event{Block: 9000 + i, PC: pc, Miss: true})
	}
	seen := make(map[uint64]bool)
	for _, b := range out {
		if seen[b] {
			t.Fatalf("duplicate prefetch %d in %v", b, out)
		}
		seen[b] = true
	}
}

func TestHybridThrottlesBothEngines(t *testing.T) {
	p := NewHybrid(16, 64)
	p.SetLevel(1)
	if p.stream.Level() != 1 || p.stride.Level() != 1 {
		t.Fatal("SetLevel did not reach both engines")
	}
	p.SetLevel(9)
	if p.Level() != 5 {
		t.Fatal("clamp failed")
	}
}
