// Package prefetch implements the hardware data prefetchers studied in the
// paper: the IBM POWER4-style stream prefetcher (Section 2.1), the GHB
// C/DC delta-correlation prefetcher (Section 5.7), the PC-based stride
// prefetcher (Section 5.8) and a tagged next-sequential prefetcher used as
// a related-work baseline. All prefetchers expose the five-level
// aggressiveness scale of Table 1 so FDP can throttle them uniformly.
package prefetch

import "fmt"

// Event describes one demand access observed at the L2 cache. Prefetchers
// receive every demand access; each decides which events train it.
type Event struct {
	Block uint64 // cache-block address
	PC    uint64 // program counter of the load/store
	Miss  bool   // the access missed in the L2
	// PrefHit is true when the access hit a block whose pref-bit was still
	// set — the first demand use of a prefetched block (used by tagged
	// next-sequential prefetching).
	PrefHit bool
}

// Prefetcher is the interface the memory hierarchy drives. Observe appends
// the block addresses to prefetch, in issue order, to out and returns the
// extended slice (append-style, like strconv.AppendInt); the owner applies
// queue limits and cache/MSHR filtering. The hierarchy calls Observe once
// per demand L2 access with a reused event and a reused scratch slice, so
// implementations must not retain either across calls — this contract is
// what keeps the simulator's hot path allocation-free.
type Prefetcher interface {
	Name() string
	Observe(ev *Event, out []uint64) []uint64
	// SetLevel selects an aggressiveness level 1 (very conservative) to 5
	// (very aggressive); out-of-range values are clamped.
	SetLevel(level int)
	Level() int
}

// AggressivenessLevel bounds.
const (
	MinLevel = 1
	MaxLevel = 5
)

// LevelName returns the paper's name for a Dynamic Configuration Counter
// value (Table 1).
func LevelName(level int) string {
	switch level {
	case 1:
		return "Very Conservative"
	case 2:
		return "Conservative"
	case 3:
		return "Middle-of-the-Road"
	case 4:
		return "Aggressive"
	case 5:
		return "Very Aggressive"
	}
	return fmt.Sprintf("Level%d", level)
}

// StreamLevel is one row of Table 1: the (Prefetch Distance, Prefetch
// Degree) pair a Dynamic Configuration Counter value selects for the
// stream prefetcher.
type StreamLevel struct {
	Distance int
	Degree   int
}

// StreamLevels is Table 1 of the paper. Index 0 is unused so the table is
// addressed directly by counter value 1..5.
var StreamLevels = [MaxLevel + 1]StreamLevel{
	1: {Distance: 4, Degree: 1},
	2: {Distance: 8, Degree: 1},
	3: {Distance: 16, Degree: 2},
	4: {Distance: 32, Degree: 4},
	5: {Distance: 64, Degree: 4},
}

// GHBDegrees is the Section 5.7 aggressiveness table for the GHB C/DC
// prefetcher, where distance and degree are the same parameter. The OCR of
// the paper lost the numeric column; this doubling ladder ending in a
// deeply aggressive degree mirrors the stream table's range and is flagged
// as a reconstruction in DESIGN.md.
var GHBDegrees = [MaxLevel + 1]int{1: 2, 2: 4, 3: 8, 4: 16, 5: 32}

func clampLevel(level int) int {
	if level < MinLevel {
		return MinLevel
	}
	if level > MaxLevel {
		return MaxLevel
	}
	return level
}
