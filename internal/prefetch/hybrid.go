package prefetch

// HybridPrefetcher composes a stream and a PC-stride prefetcher, the kind
// of multi-engine arrangement the paper's Section 6 cites as "hybrid
// prefetching systems". Both engines observe every demand access; their
// requests are merged with duplicates removed (stream first, since its
// requests carry run-ahead distance). FDP throttles both engines through
// the shared five-level scale.
type HybridPrefetcher struct {
	stream *StreamPrefetcher
	stride *StridePrefetcher
	level  int
}

// NewHybrid creates a stream+stride hybrid with the given stream tracker
// and stride table sizes.
func NewHybrid(streams, strideEntries int) *HybridPrefetcher {
	return &HybridPrefetcher{
		stream: NewStream(streams),
		stride: NewStride(strideEntries),
		level:  3,
	}
}

// Name implements Prefetcher.
func (p *HybridPrefetcher) Name() string { return "hybrid" }

// SetLevel implements Prefetcher, throttling both engines.
func (p *HybridPrefetcher) SetLevel(level int) {
	p.level = clampLevel(level)
	p.stream.SetLevel(p.level)
	p.stride.SetLevel(p.level)
}

// Level implements Prefetcher.
func (p *HybridPrefetcher) Level() int { return p.level }

// Observe implements Prefetcher.
func (p *HybridPrefetcher) Observe(ev Event) []uint64 {
	a := p.stream.Observe(ev)
	b := p.stride.Observe(ev)
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	seen := make(map[uint64]bool, len(a)+len(b))
	out := make([]uint64, 0, len(a)+len(b))
	for _, blocks := range [2][]uint64{a, b} {
		for _, blk := range blocks {
			if !seen[blk] {
				seen[blk] = true
				out = append(out, blk)
			}
		}
	}
	return out
}
