package prefetch

// HybridPrefetcher composes a stream and a PC-stride prefetcher, the kind
// of multi-engine arrangement the paper's Section 6 cites as "hybrid
// prefetching systems". Both engines observe every demand access; their
// requests are merged with duplicates removed (stream first, since its
// requests carry run-ahead distance). FDP throttles both engines through
// the shared five-level scale.
type HybridPrefetcher struct {
	stream *StreamPrefetcher
	stride *StridePrefetcher
	level  int
	// sa/sb hold each engine's raw output between Observe calls so the
	// merge allocates nothing in steady state.
	sa, sb []uint64
}

// NewHybrid creates a stream+stride hybrid with the given stream tracker
// and stride table sizes.
func NewHybrid(streams, strideEntries int) *HybridPrefetcher {
	return &HybridPrefetcher{
		stream: NewStream(streams),
		stride: NewStride(strideEntries),
		level:  3,
	}
}

// Name implements Prefetcher.
func (p *HybridPrefetcher) Name() string { return "hybrid" }

// SetLevel implements Prefetcher, throttling both engines.
func (p *HybridPrefetcher) SetLevel(level int) {
	p.level = clampLevel(level)
	p.stream.SetLevel(p.level)
	p.stride.SetLevel(p.level)
}

// Level implements Prefetcher.
func (p *HybridPrefetcher) Level() int { return p.level }

// Observe implements Prefetcher. Requests are merged stream-first with
// duplicates removed; the nested containment scan replaces a map because
// the combined degree is at most eight addresses.
func (p *HybridPrefetcher) Observe(ev *Event, out []uint64) []uint64 {
	p.sa = p.stream.Observe(ev, p.sa[:0])
	p.sb = p.stride.Observe(ev, p.sb[:0])
	if len(p.sb) == 0 {
		return append(out, p.sa...)
	}
	if len(p.sa) == 0 {
		return append(out, p.sb...)
	}
	start := len(out)
	for _, blocks := range [2][]uint64{p.sa, p.sb} {
	next:
		for _, blk := range blocks {
			for _, have := range out[start:] {
				if have == blk {
					continue next
				}
			}
			out = append(out, blk)
		}
	}
	return out
}
