package prefetch

// Stream prefetcher modeled on the IBM POWER4 design as described in
// Section 2.1 of the paper. It tracks up to 64 concurrent access streams.
// Each tracking entry walks a four-state machine:
//
//	Invalid -> Allocated (on a demand L2 miss with no covering entry)
//	Allocated -> Training (direction votes from subsequent nearby misses)
//	Training -> Monitor and Request (two consistent direction votes)
//
// In Monitor and Request, a demand access anywhere in the monitored region
// [start..end] issues Degree prefetches past the end pointer and slides the
// region forward, keeping the prefetcher Distance blocks ahead of the
// demand stream.

// Stream tracking entry states.
const (
	streamInvalid = iota
	streamAllocated
	streamTraining
	streamMonitor
)

// trainWindow is the paper's +/-16-block window for associating misses
// with a training entry.
const trainWindow = 16

// startupDistance is how far past the last training miss the end pointer
// is initialized ("plus an initial start-up distance", footnote 5).
const startupDistance = 2

type streamEntry struct {
	state    int
	dir      int64 // +1 ascending, -1 descending
	first    int64 // miss address that allocated the entry
	last     int64 // most recent training miss
	votes    int   // consecutive consistent direction votes
	start    int64 // monitored region start pointer (address A)
	end      int64 // monitored region end pointer (address P)
	lastUsed uint64
	// accesses counts demand accesses serviced by this entry's monitored
	// region, the per-stream confidence used by the ramping mode.
	accesses uint64
}

// StreamPrefetcher implements Prefetcher.
type StreamPrefetcher struct {
	entries []streamEntry
	level   int
	tick    uint64
	// ramp enables per-stream adaptation (the paper's footnote 8
	// alternative to global feedback): each tracking entry starts at the
	// most conservative configuration and earns aggressiveness — up to
	// the global level — as its stream proves itself, in the spirit of
	// the IBM POWER4's stream ramp-up.
	ramp bool
	// MaxBlock bounds generated prefetch addresses (wrap protection).
	maxBlock int64
}

// NewStream creates a stream prefetcher with the given number of tracking
// entries (the paper's baseline uses 64) at Middle-of-the-Road
// aggressiveness.
func NewStream(streams int) *StreamPrefetcher {
	if streams <= 0 {
		streams = 64
	}
	return &StreamPrefetcher{
		entries:  make([]streamEntry, streams),
		level:    3,
		maxBlock: 1 << 58,
	}
}

// Name implements Prefetcher.
func (s *StreamPrefetcher) Name() string { return "stream" }

// SetLevel implements Prefetcher.
func (s *StreamPrefetcher) SetLevel(level int) { s.level = clampLevel(level) }

// Level implements Prefetcher.
func (s *StreamPrefetcher) Level() int { return s.level }

// Distance returns the current Prefetch Distance (Table 1).
func (s *StreamPrefetcher) Distance() int64 { return int64(StreamLevels[s.level].Distance) }

// Degree returns the current Prefetch Degree (Table 1).
func (s *StreamPrefetcher) Degree() int64 { return int64(StreamLevels[s.level].Degree) }

// SetPerStreamRamp toggles per-stream adaptation (footnote 8).
func (s *StreamPrefetcher) SetPerStreamRamp(on bool) { s.ramp = on }

// entryLevel returns the Table 1 level an entry operates at: the global
// level, clamped by the entry's earned confidence when ramping.
func (s *StreamPrefetcher) entryLevel(e *streamEntry) int {
	if !s.ramp {
		return s.level
	}
	earned := 1 + int(e.accesses/8)
	if earned > s.level {
		return s.level
	}
	return earned
}

// Observe implements Prefetcher. Demand misses allocate and train entries;
// any demand access inside a monitored region triggers prefetches.
func (s *StreamPrefetcher) Observe(ev *Event, out []uint64) []uint64 {
	s.tick++
	addr := int64(ev.Block)

	// Monitor match takes priority: an access within a monitored region
	// issues prefetches and advances the region.
	if e := s.findMonitor(addr); e != nil {
		e.lastUsed = s.tick
		e.accesses++
		return s.issue(e, out)
	}

	if !ev.Miss {
		return out
	}

	// A miss near a training/allocated entry contributes a direction vote.
	if e := s.findTraining(addr); e != nil {
		e.lastUsed = s.tick
		s.train(e, addr)
		if e.state == streamMonitor {
			// Treat the trained miss as the first access to the region.
			return s.issue(e, out)
		}
		return out
	}

	// Otherwise the miss allocates a new tracking entry.
	e := s.victim()
	*e = streamEntry{state: streamAllocated, first: addr, last: addr, lastUsed: s.tick}
	return out
}

func (s *StreamPrefetcher) findMonitor(addr int64) *streamEntry {
	for i := range s.entries {
		e := &s.entries[i]
		if e.state != streamMonitor {
			continue
		}
		if e.dir > 0 && addr >= e.start && addr <= e.end {
			return e
		}
		if e.dir < 0 && addr <= e.start && addr >= e.end {
			return e
		}
	}
	return nil
}

func (s *StreamPrefetcher) findTraining(addr int64) *streamEntry {
	for i := range s.entries {
		e := &s.entries[i]
		if e.state != streamAllocated && e.state != streamTraining {
			continue
		}
		if delta := addr - e.first; delta >= -trainWindow && delta <= trainWindow {
			return e
		}
	}
	return nil
}

func (s *StreamPrefetcher) victim() *streamEntry {
	v := &s.entries[0]
	for i := range s.entries {
		e := &s.entries[i]
		if e.state == streamInvalid {
			return e
		}
		if e.lastUsed < v.lastUsed {
			v = e
		}
	}
	return v
}

// train processes one direction vote from a miss at addr.
func (s *StreamPrefetcher) train(e *streamEntry, addr int64) {
	if addr == e.last {
		return // duplicate miss address carries no direction information
	}
	var vote int64 = 1
	if addr < e.last {
		vote = -1
	}
	switch e.state {
	case streamAllocated:
		e.dir = vote
		e.votes = 1
		e.state = streamTraining
	case streamTraining:
		if vote == e.dir {
			e.votes++
		} else {
			// Inconsistent direction: restart training from this miss.
			e.dir = vote
			e.votes = 1
			e.first = e.last
		}
	}
	e.last = addr
	if e.state == streamTraining && e.votes >= 2 {
		e.state = streamMonitor
		e.start = e.first
		e.end = addr + e.dir*startupDistance
	}
}

// issue generates the prefetch addresses [P+1 .. P+N] (direction-adjusted)
// for a monitored entry and slides the region per footnote 5: the start
// pointer begins advancing only once the region has grown to Distance.
func (s *StreamPrefetcher) issue(e *streamEntry, out []uint64) []uint64 {
	lvl := s.entryLevel(e)
	n := int64(StreamLevels[lvl].Degree)
	dist := int64(StreamLevels[lvl].Distance)
	for i := int64(1); i <= n; i++ {
		a := e.end + e.dir*i
		if a < 0 || a > s.maxBlock {
			break
		}
		out = append(out, uint64(a))
	}
	e.end += e.dir * n
	if size := (e.end - e.start) * e.dir; size > dist {
		// Keep the monitored region at most Distance blocks long; this also
		// shrinks the region when FDP lowers the distance dynamically.
		e.start = e.end - e.dir*dist
	}
	return out
}

// MonitorRegions returns, for tests, the (start, end, dir) triples of all
// entries in Monitor and Request state.
func (s *StreamPrefetcher) MonitorRegions() [][3]int64 {
	var out [][3]int64
	for i := range s.entries {
		e := &s.entries[i]
		if e.state == streamMonitor {
			out = append(out, [3]int64{e.start, e.end, e.dir})
		}
	}
	return out
}
