package prefetch

// Adaptive sequential prefetching after Dahlgren, Dubois & Stenström, the
// closest prior work the paper discusses (Section 6.1): a sequential
// prefetcher whose degree is adapted by accuracy alone. Two counters track
// prefetches sent and prefetches used; when the sent counter saturates,
// the useful fraction is compared against static thresholds to double or
// halve the prefetch degree. The paper's critique — and the Section 5.6
// ablation — is that accuracy-only feedback ignores timeliness and
// pollution; this implementation exists to reproduce that comparison.

// Dahlgren counter window and degree bounds.
const (
	dahlgrenWindow    = 256
	dahlgrenMaxDegree = 16
)

// DahlgrenPrefetcher implements Prefetcher. SetLevel seeds the starting
// degree; afterwards the prefetcher self-adapts, so FDP-style external
// throttling is intentionally a no-op once running (Level reports the
// equivalent Table 1 level for observability).
type DahlgrenPrefetcher struct {
	degree   int
	sent     int
	used     int
	high     float64
	low      float64
	maxBlock uint64
	adapted  uint64 // adaptation events, for tests/stats
}

// NewDahlgren creates the adaptive sequential prefetcher with the given
// accuracy thresholds (0.75/0.40 mirror the FDP accuracy bands).
func NewDahlgren(high, low float64) *DahlgrenPrefetcher {
	if high <= 0 {
		high = 0.75
	}
	if low <= 0 {
		low = 0.40
	}
	return &DahlgrenPrefetcher{degree: 2, high: high, low: low, maxBlock: 1 << 58}
}

// Name implements Prefetcher.
func (p *DahlgrenPrefetcher) Name() string { return "dahlgren" }

// SetLevel seeds the degree from the Table 1 ladder.
func (p *DahlgrenPrefetcher) SetLevel(level int) {
	p.degree = StreamLevels[clampLevel(level)].Degree
}

// Level reports the closest Table 1 level for the current degree.
func (p *DahlgrenPrefetcher) Level() int {
	switch {
	case p.degree <= 1:
		return 1
	case p.degree <= 2:
		return 3
	default:
		return 5
	}
}

// Degree returns the current adaptive degree.
func (p *DahlgrenPrefetcher) Degree() int { return p.degree }

// Adaptations returns how many times the degree was re-evaluated.
func (p *DahlgrenPrefetcher) Adaptations() uint64 { return p.adapted }

// Observe implements Prefetcher: misses trigger sequential prefetches;
// first demand uses of prefetched blocks (PrefHit) count as useful.
func (p *DahlgrenPrefetcher) Observe(ev *Event, out []uint64) []uint64 {
	if ev.PrefHit {
		p.used++
	}
	if !ev.Miss {
		return out
	}
	start := len(out)
	for i := 1; i <= p.degree; i++ {
		a := ev.Block + uint64(i)
		if a > p.maxBlock {
			break
		}
		out = append(out, a)
	}
	p.sent += len(out) - start
	if p.sent >= dahlgrenWindow {
		p.adapt()
	}
	return out
}

// adapt applies the counter-saturation rule: double the degree when the
// useful fraction is high, halve it when low.
func (p *DahlgrenPrefetcher) adapt() {
	frac := float64(p.used) / float64(p.sent)
	switch {
	case frac >= p.high && p.degree < dahlgrenMaxDegree:
		p.degree *= 2
	case frac < p.low && p.degree > 1:
		p.degree /= 2
	}
	p.sent = 0
	p.used = 0
	p.adapted++
}
