package prefetch

import "testing"

func TestRampStartsConservative(t *testing.T) {
	s := NewStream(16)
	s.SetLevel(5)
	s.SetPerStreamRamp(true)
	missAt(s, 100)
	missAt(s, 101)
	out := missAt(s, 102) // training completes; entry has earned nothing yet
	if len(out) != 1 {
		t.Fatalf("ramping entry issued %d prefetches at birth, want degree 1", len(out))
	}
}

func TestRampEarnsAggressiveness(t *testing.T) {
	s := NewStream(16)
	s.SetLevel(5)
	s.SetPerStreamRamp(true)
	missAt(s, 100)
	missAt(s, 101)
	missAt(s, 102)
	var last []uint64
	for b := uint64(103); b < 160; b++ {
		if out := observe(s, Event{Block: b}); len(out) > 0 {
			last = out
		}
	}
	// After 32+ region accesses the entry reaches the global level
	// (degree 4 at Very Aggressive).
	if len(last) != 4 {
		t.Fatalf("ramped entry issues %d prefetches, want the global degree 4", len(last))
	}
}

func TestRampCappedByGlobalLevel(t *testing.T) {
	s := NewStream(16)
	s.SetLevel(1) // global cap: Very Conservative
	s.SetPerStreamRamp(true)
	missAt(s, 100)
	missAt(s, 101)
	missAt(s, 102)
	for b := uint64(103); b < 200; b++ {
		if out := observe(s, Event{Block: b}); len(out) > 1 {
			t.Fatalf("entry exceeded the global degree cap: %v", out)
		}
	}
}

func TestRampOffMatchesGlobal(t *testing.T) {
	mk := func(ramp bool) []uint64 {
		s := NewStream(16)
		s.SetLevel(4)
		s.SetPerStreamRamp(ramp)
		missAt(s, 100)
		missAt(s, 101)
		var out []uint64
		out = missAt(s, 102)
		return out
	}
	if got := mk(false); len(got) != 4 {
		t.Fatalf("non-ramped fresh entry degree = %d, want 4", len(got))
	}
	if got := mk(true); len(got) != 1 {
		t.Fatalf("ramped fresh entry degree = %d, want 1", len(got))
	}
}
