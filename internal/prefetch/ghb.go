package prefetch

// GHB C/DC (C-Zone Delta Correlation) prefetcher, the Section 5.7 target
// of FDP, after Nesbit & Smith's Global History Buffer design. L2 miss
// addresses are recorded in a circular global history buffer (GHB); an
// index table maps each C-Zone (a fixed-size region of the address space)
// to the most recent GHB entry for that zone, and entries in the same zone
// are chained with backward links. On each miss the chain yields the
// zone's recent miss-address history; the last two deltas form a
// correlation key that is searched in the older delta stream, and the
// deltas that followed the match are replayed to generate prefetches. For
// this prefetcher, Prefetch Distance and Prefetch Degree are the same
// parameter (the paper's footnote 14).

const (
	ghbMaxHistory = 64 // deepest zone history walked for delta correlation
)

type ghbEntry struct {
	block uint64
	prev  int // index of the previous entry in the same zone, -1 if none
	seq   uint64
}

type ghbIndexEntry struct {
	idx  int    // GHB index of the newest entry for this zone
	seq  uint64 // sequence number of that entry, to detect overwrites
	used uint64 // LRU tick for index-table replacement
}

// GHBPrefetcher implements Prefetcher.
type GHBPrefetcher struct {
	buf        []ghbEntry
	head       int
	seq        uint64
	index      map[uint64]*ghbIndexEntry
	freeIndex  []*ghbIndexEntry // recycled index entries (bounded by indexCap)
	indexCap   int
	czoneShift uint
	level      int
	tick       uint64
	maxBlock   uint64
	// hist/x/d are per-Observe scratch, reused so the steady-state miss
	// path performs no heap allocation.
	hist []uint64
	x    []int64
	d    []int64
}

// NewGHB creates a GHB C/DC prefetcher. bufSize is the history-buffer
// depth (256 in Nesbit & Smith's evaluation), indexEntries bounds the
// C-Zone index table, and czoneBlocks is the zone size in cache blocks
// (1024 blocks = 64 KB zones of 64 B lines).
func NewGHB(bufSize, indexEntries, czoneBlocks int) *GHBPrefetcher {
	if bufSize <= 0 {
		bufSize = 256
	}
	if indexEntries <= 0 {
		indexEntries = 256
	}
	if czoneBlocks <= 0 {
		czoneBlocks = 1024
	}
	var shift uint
	for v := czoneBlocks; v > 1; v >>= 1 {
		shift++
	}
	g := &GHBPrefetcher{
		buf:        make([]ghbEntry, bufSize),
		index:      make(map[uint64]*ghbIndexEntry, indexEntries),
		indexCap:   indexEntries,
		czoneShift: shift,
		level:      3,
		maxBlock:   1 << 58,
		hist:       make([]uint64, 0, ghbMaxHistory),
		x:          make([]int64, 0, ghbMaxHistory),
		d:          make([]int64, 0, ghbMaxHistory),
	}
	for i := range g.buf {
		g.buf[i].prev = -1
	}
	return g
}

// Name implements Prefetcher.
func (g *GHBPrefetcher) Name() string { return "ghb-cdc" }

// SetLevel implements Prefetcher.
func (g *GHBPrefetcher) SetLevel(level int) { g.level = clampLevel(level) }

// Level implements Prefetcher.
func (g *GHBPrefetcher) Level() int { return g.level }

// Degree returns the current prefetch degree (= distance for GHB C/DC).
func (g *GHBPrefetcher) Degree() int { return GHBDegrees[g.level] }

// Observe implements Prefetcher: the GHB trains on L2 demand misses only.
func (g *GHBPrefetcher) Observe(ev *Event, out []uint64) []uint64 {
	if !ev.Miss {
		return out
	}
	g.tick++
	zone := ev.Block >> g.czoneShift
	g.push(zone, ev.Block)
	hist := g.history(zone)
	if len(hist) < 3 {
		return out
	}
	return g.correlate(hist, out)
}

// push records a miss in the GHB, linking it to the zone's previous entry.
func (g *GHBPrefetcher) push(zone, block uint64) {
	ie := g.index[zone]
	prev := -1
	if ie != nil && g.valid(ie.idx, ie.seq) {
		prev = ie.idx
	}
	g.seq++
	g.buf[g.head] = ghbEntry{block: block, prev: prev, seq: g.seq}
	if ie == nil {
		if len(g.index) >= g.indexCap {
			g.evictIndex()
		}
		if n := len(g.freeIndex); n > 0 {
			ie = g.freeIndex[n-1]
			g.freeIndex = g.freeIndex[:n-1]
			*ie = ghbIndexEntry{}
		} else {
			ie = &ghbIndexEntry{}
		}
		g.index[zone] = ie
	}
	ie.idx = g.head
	ie.seq = g.seq
	ie.used = g.tick
	g.head = (g.head + 1) % len(g.buf)
}

// valid reports whether GHB slot idx still holds the entry with sequence
// number seq (circular overwrites invalidate stale links).
func (g *GHBPrefetcher) valid(idx int, seq uint64) bool {
	return idx >= 0 && idx < len(g.buf) && g.buf[idx].seq == seq
}

func (g *GHBPrefetcher) evictIndex() {
	var victim uint64
	var oldest uint64 = ^uint64(0)
	for z, ie := range g.index {
		if ie.used < oldest {
			oldest = ie.used
			victim = z
		}
	}
	if ie, ok := g.index[victim]; ok {
		g.freeIndex = append(g.freeIndex, ie)
	}
	delete(g.index, victim)
}

// history walks the zone's chain and returns miss addresses newest-first.
// The returned slice is g.hist, valid until the next call.
func (g *GHBPrefetcher) history(zone uint64) []uint64 {
	ie := g.index[zone]
	if ie == nil || !g.valid(ie.idx, ie.seq) {
		return nil
	}
	out := g.hist[:0]
	idx := ie.idx
	for len(out) < ghbMaxHistory {
		e := &g.buf[idx]
		out = append(out, e.block)
		p := e.prev
		// A backward link is valid iff the pointed slot has not been
		// rewritten since this entry was pushed, i.e. its sequence number
		// is still older than ours.
		if p < 0 || g.buf[p].seq == 0 || g.buf[p].seq >= e.seq {
			break
		}
		idx = p
	}
	g.hist = out
	return out
}

// correlate applies delta correlation to a newest-first address history:
// find an earlier occurrence of the two most recent deltas, then replay the
// deltas that followed it (cyclically) to produce up to Degree prefetches.
func (g *GHBPrefetcher) correlate(hist []uint64, out []uint64) []uint64 {
	// Chronological addresses: x[0] oldest .. x[n-1] newest. n is at most
	// ghbMaxHistory, so the preallocated scratch never regrows.
	n := len(hist)
	x := g.x[:n]
	for i, b := range hist {
		x[n-1-i] = int64(b)
	}
	// Delta stream d[i] = x[i+1]-x[i], length n-1; key is the last pair.
	d := g.d[:n-1]
	for i := 0; i+1 < n; i++ {
		d[i] = x[i+1] - x[i]
	}
	k1, k2 := d[len(d)-2], d[len(d)-1]
	match := -1
	for j := len(d) - 3; j >= 1; j-- {
		if d[j-1] == k1 && d[j] == k2 {
			match = j
			break
		}
	}
	if match < 0 {
		return out
	}
	// Replay deltas d[match+1..], wrapping back to d[match-1]'s successor
	// region (the C/DC "delta replay" loop), until Degree prefetches.
	replay := d[match+1:]
	if len(replay) == 0 {
		return out
	}
	degree := g.Degree()
	addr := x[n-1]
	for i, emitted := 0, 0; emitted < degree; i, emitted = i+1, emitted+1 {
		addr += replay[i%len(replay)]
		if addr < 0 || uint64(addr) > g.maxBlock {
			break
		}
		out = append(out, uint64(addr))
	}
	return out
}
