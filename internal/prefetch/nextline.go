package prefetch

// Tagged next-sequential prefetcher, the classic design the paper cites as
// already employing pref-bits ([5, 21], Section 3.1.1) and the substrate
// of Dahlgren et al.'s adaptive sequential prefetching discussed in the
// related work. A demand miss, or the first demand use of a prefetched
// block (the "tag" event), prefetches the next Degree sequential blocks.

// NextLinePrefetcher implements Prefetcher.
type NextLinePrefetcher struct {
	level    int
	maxBlock uint64
}

// NewNextLine creates a tagged next-sequential prefetcher.
func NewNextLine() *NextLinePrefetcher {
	return &NextLinePrefetcher{level: 3, maxBlock: 1 << 58}
}

// Name implements Prefetcher.
func (p *NextLinePrefetcher) Name() string { return "nextline" }

// SetLevel implements Prefetcher.
func (p *NextLinePrefetcher) SetLevel(level int) { p.level = clampLevel(level) }

// Level implements Prefetcher.
func (p *NextLinePrefetcher) Level() int { return p.level }

// Degree returns the sequential depth at the current level.
func (p *NextLinePrefetcher) Degree() int { return StreamLevels[p.level].Degree * 2 }

// Observe implements Prefetcher.
func (p *NextLinePrefetcher) Observe(ev *Event, out []uint64) []uint64 {
	if !ev.Miss && !ev.PrefHit {
		return out
	}
	degree := p.Degree()
	for i := 1; i <= degree; i++ {
		a := ev.Block + uint64(i)
		if a > p.maxBlock {
			break
		}
		out = append(out, a)
	}
	return out
}
