package prefetch

// observe adapts the append-style Observe contract for tests written
// against per-call slices: nil in, the engine's appended output out.
func observe(p Prefetcher, ev Event) []uint64 {
	return p.Observe(&ev, nil)
}
