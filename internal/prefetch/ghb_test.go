package prefetch

import (
	"testing"
	"testing/quick"
)

func TestGHBConstantStride(t *testing.T) {
	g := NewGHB(256, 256, 1024)
	g.SetLevel(3) // degree 8
	var out []uint64
	for i := uint64(0); i < 8; i++ {
		out = missAt(g, 100+i*4)
	}
	if len(out) != 8 {
		t.Fatalf("prefetches = %d, want degree 8", len(out))
	}
	last := 100 + 7*4
	for k, p := range out {
		if want := uint64(last) + uint64(k+1)*4; p != want {
			t.Fatalf("prefetch[%d] = %d, want %d", k, p, want)
		}
	}
}

func TestGHBRepeatingDeltaPattern(t *testing.T) {
	g := NewGHB(256, 256, 1024)
	g.SetLevel(2) // degree 4
	// Delta pattern +1,+3 repeating: 0,1,4,5,8,9,12 ...
	addrs := []uint64{0, 1, 4, 5, 8, 9, 12}
	var out []uint64
	for _, a := range addrs {
		out = missAt(g, a)
	}
	// After ...,9(+1?),12: last two deltas (3,1)? compute: deltas:
	// 1,3,1,3,1,3 — key (1,3); earlier occurrence found; replay 1,3,...
	want := []uint64{13, 16, 17, 20}
	if len(out) != len(want) {
		t.Fatalf("prefetches = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("prefetches = %v, want %v", out, want)
		}
	}
}

func TestGHBNoMatchNoPrefetch(t *testing.T) {
	g := NewGHB(256, 256, 1024)
	// Distinct deltas with no repeating pair.
	for _, a := range []uint64{0, 1, 5, 20, 22, 90} {
		if out := missAt(g, a); out != nil {
			t.Fatalf("prefetched %v without a delta-pair match", out)
		}
	}
}

func TestGHBZoneIsolation(t *testing.T) {
	g := NewGHB(256, 256, 64) // 64-block zones
	// A stride in zone 0 must not be polluted by interleaved misses in a
	// far zone.
	var out []uint64
	for i := uint64(0); i < 6; i++ {
		out = missAt(g, i*2)
		missAt(g, 100000+i*17)
	}
	if len(out) == 0 {
		t.Fatal("zone-0 stride not detected amid interleaved other-zone misses")
	}
	for _, p := range out {
		if p >= 64 {
			t.Fatalf("prefetch %d crossed out of the training zone's region unreasonably", p)
		}
	}
}

func TestGHBHitsDoNotTrain(t *testing.T) {
	g := NewGHB(256, 256, 1024)
	for i := uint64(0); i < 8; i++ {
		if out := observe(g, Event{Block: 100 + i, Miss: false}); out != nil {
			t.Fatal("GHB trained on an L2 hit")
		}
	}
}

func TestGHBBufferWrapInvalidatesLinks(t *testing.T) {
	g := NewGHB(8, 256, 1024) // tiny buffer
	// Fill with zone A, then overflow with zone B; zone A's chain must be
	// truncated, not corrupted.
	for i := uint64(0); i < 4; i++ {
		missAt(g, i)
	}
	for i := uint64(0); i < 16; i++ {
		missAt(g, 100000+i*3)
	}
	// Returning to zone A allocates fresh history without panicking.
	for i := uint64(4); i < 8; i++ {
		missAt(g, i)
	}
	if h := g.history(0); len(h) > 8 {
		t.Fatalf("history longer than buffer: %d", len(h))
	}
}

func TestGHBIndexTableEviction(t *testing.T) {
	g := NewGHB(1024, 4, 64) // only 4 index entries
	for z := uint64(0); z < 10; z++ {
		missAt(g, z*64)
	}
	if len(g.index) > 4 {
		t.Fatalf("index table grew to %d entries, cap 4", len(g.index))
	}
}

func TestGHBDegreeFollowsLevel(t *testing.T) {
	for lvl := 1; lvl <= 5; lvl++ {
		g := NewGHB(256, 256, 1024)
		g.SetLevel(lvl)
		var out []uint64
		for i := uint64(0); i < 8; i++ {
			out = missAt(g, 1000+i)
		}
		if len(out) != GHBDegrees[lvl] {
			t.Errorf("level %d issued %d, want %d", lvl, len(out), GHBDegrees[lvl])
		}
	}
}

// TestGHBPrefetchesFollowRecordedDeltas: for any small positive stride the
// prefetch stream continues that stride exactly.
func TestGHBStrideProperty(t *testing.T) {
	f := func(strideRaw uint8, startRaw uint16) bool {
		stride := uint64(strideRaw%32) + 1
		start := uint64(startRaw)
		g := NewGHB(256, 256, 1<<20)
		g.SetLevel(3)
		var out []uint64
		for i := uint64(0); i < 6; i++ {
			out = missAt(g, start+i*stride)
		}
		if len(out) == 0 {
			return false
		}
		last := start + 5*stride
		for k, p := range out {
			if p != last+uint64(k+1)*stride {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
