package sim

// The event engine replaces the seed engine's closure-based continuation
// passing: instead of heap-allocating a `func()` per load, per fill and
// per wheel slot, every deferred action is a 24-byte event struct drawn
// from a free-list pool and threaded through intrusive linked lists (the
// timing wheel's buckets, the L1 miss table's waiter lists). Events are
// addressed by pool index, never by pointer, so the pool's backing slab
// can grow without invalidating anything. See DESIGN.md, "The event
// engine".

// evKind tags what an event does when it fires.
type evKind uint8

const (
	// evLoadDone resumes a client CPU's load: CompleteLoad(idx, arg).
	evLoadDone evKind = iota + 1
	// evFetchDone unblocks a client CPU's instruction fetch.
	evFetchDone
	// evFillL1 completes an outstanding L1 miss for block `arg`.
	evFillL1
)

// nilEvent is the null pool index (list terminator, empty bucket).
const nilEvent = int32(-1)

// event is one pooled continuation. kind selects the action; client/idx/
// arg are its packed operands (arg holds the load sequence number for
// evLoadDone and the block address for evFillL1).
type event struct {
	next   int32 // intrusive list link (wheel bucket or waiter list)
	kind   evKind
	client int32
	idx    int32
	arg    uint64
}

// eventPool is a slab allocator for events with a LIFO free list. alloc
// may grow the slab, so callers must not hold *event pointers across an
// alloc; all long-lived references are pool indices.
type eventPool struct {
	nodes []event
	free  []int32
}

func newEventPool(capHint int) *eventPool {
	if capHint < 64 {
		capHint = 64
	}
	return &eventPool{
		nodes: make([]event, 0, capHint),
		free:  make([]int32, 0, capHint),
	}
}

// alloc returns the index of a fresh event node.
func (p *eventPool) alloc(kind evKind, client, idx int32, arg uint64) int32 {
	var id int32
	if n := len(p.free); n > 0 {
		id = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		id = int32(len(p.nodes))
		p.nodes = append(p.nodes, event{})
	}
	p.nodes[id] = event{next: nilEvent, kind: kind, client: client, idx: idx, arg: arg}
	return id
}

// release returns a node to the free list.
func (p *eventPool) release(id int32) {
	p.free = append(p.free, id)
}

// at returns the node for an index; the pointer is invalidated by the next
// alloc and must not be retained.
func (p *eventPool) at(id int32) *event { return &p.nodes[id] }

// evList is an intrusive FIFO list of pooled events (a wheel bucket or a
// miss table's waiter list). The zero value is not ready; call init or use
// newEvList.
type evList struct {
	head, tail int32
}

func newEvList() evList { return evList{head: nilEvent, tail: nilEvent} }

func (l *evList) empty() bool { return l.head == nilEvent }

// push appends a node to the tail, preserving FIFO dispatch order.
func (l *evList) push(p *eventPool, id int32) {
	p.nodes[id].next = nilEvent
	if l.tail == nilEvent {
		l.head = id
	} else {
		p.nodes[l.tail].next = id
	}
	l.tail = id
}

// take detaches and returns the whole chain's head, emptying the list.
func (l *evList) take() int32 {
	id := l.head
	l.head, l.tail = nilEvent, nilEvent
	return id
}
