package sim

import (
	"testing"

	"fdpsim/internal/cpu"
	"fdpsim/internal/stats"
	"fdpsim/internal/workload"
)

// newEngine builds a hierarchy+CPU pair over a small, interval-heavy
// configuration (tiny L2 and TInterval so FDP decisions fire constantly —
// the hardest case for the allocation guarantee).
func newEngine(tb testing.TB, wl string, kind PrefetcherKind, attr bool) (*hierarchy, *cpu.CPU) {
	tb.Helper()
	cfg := WithFDP(kind)
	cfg.Workload = wl
	cfg.L1Blocks, cfg.L1Ways = 256, 4
	cfg.L2Blocks, cfg.L2Ways = 1024, 16
	cfg.MSHRs = 32
	cfg.PrefQueueCap = 32
	cfg.FDP.TInterval = 64
	cfg.Attribution = attr
	src, err := workload.New(wl, 1)
	if err != nil {
		tb.Fatal(err)
	}
	var ctr stats.Counters
	h := newHierarchy(&cfg, &ctr)
	return h, h.attach(&cfg, src)
}

// TestPerInstructionAllocs is the event engine's core guarantee: after
// warmup (pools grown, maps sized, queues at working depth) the cycle loop
// performs zero heap allocations — no closures, no events, no requests, no
// prefetcher scratch. Guarded here so a regression fails CI, not a profile.
func TestPerInstructionAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-hundred-thousand-cycle warmups")
	}
	for _, tc := range []struct {
		wl   string
		kind PrefetcherKind
		attr bool
	}{
		{"mixedphase", PrefStream, false},
		{"mixedphase", PrefGHB, false},
		{"mixedphase", PrefHybrid, false},
		{"chaserand", PrefStream, false},
		{"scanmod", PrefDahlgren, false},
		// Attribution on: per-cycle classification + occupancy sampling and
		// the timeliness maps must stay allocation-free once warmed.
		{"mixedphase", PrefStream, true},
		{"chaserand", PrefStream, true},
	} {
		name := tc.wl + "/" + string(tc.kind)
		if tc.attr {
			name += "/attribution"
		}
		t.Run(name, func(t *testing.T) {
			h, c := newEngine(t, tc.wl, tc.kind, tc.attr)
			var cycle uint64
			for cycle < 300_000 {
				cycle++
				h.Tick(cycle)
				c.Tick()
			}
			allocs := testing.AllocsPerRun(5, func() {
				for i := 0; i < 20_000; i++ {
					cycle++
					h.Tick(cycle)
					c.Tick()
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state heap allocations: %.1f per 20k cycles, want 0", allocs)
			}
		})
	}
}

// BenchmarkPerInstruction measures the warmed cycle loop per retired
// instruction; allocs/op is the per-instruction allocation count the CI
// gate keeps at zero.
func BenchmarkPerInstruction(b *testing.B) {
	for _, tc := range []struct {
		name string
		attr bool
	}{
		{"base", false},
		{"attribution", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			h, c := newEngine(b, "mixedphase", PrefStream, tc.attr)
			var cycle uint64
			for cycle < 200_000 {
				cycle++
				h.Tick(cycle)
				c.Tick()
			}
			b.ReportAllocs()
			b.ResetTimer()
			start := c.Retired()
			for c.Retired()-start < uint64(b.N) {
				cycle++
				h.Tick(cycle)
				c.Tick()
			}
		})
	}
}
