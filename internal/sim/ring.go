package sim

// ring is a growable FIFO queue over a circular buffer. The seed engine's
// queues advanced by reslicing (`q = q[1:]` + append), which re-allocates
// the backing array forever; a ring reuses its buffer, so steady-state
// push/pop touches no heap memory. Capacity is always a power of two.
type ring[T any] struct {
	buf  []T
	head int
	n    int
}

func (r *ring[T]) len() int { return r.n }

// push appends v, growing the buffer (in FIFO order) when full.
func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// pop removes and returns the front element; the queue must be non-empty.
func (r *ring[T]) pop() T {
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // release references for GC
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// peek returns the front element without removing it.
func (r *ring[T]) peek() T { return r.buf[r.head] }

func (r *ring[T]) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]T, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}
