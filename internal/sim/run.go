package sim

import (
	"fmt"

	"fdpsim/internal/core"
	"fdpsim/internal/cpu"
	"fdpsim/internal/mem"
	"fdpsim/internal/stats"
	"fdpsim/internal/workload"
)

// Result is one simulation's output: raw counters plus the derived metrics
// the paper reports.
type Result struct {
	Workload   string
	Prefetcher string
	Level      int // static level, or 0 for dynamic

	Counters stats.Counters
	DRAM     mem.Stats

	IPC       float64
	BPKI      float64
	Accuracy  float64 // whole-run used/sent, as in Figure 2
	Lateness  float64 // whole-run late/used, as in Figure 3
	Pollution float64 // whole-run pollution estimate

	// LevelDist and InsertDist reproduce Figures 6 and 8 for FDP runs.
	LevelDist  *stats.Distribution
	InsertDist *stats.Distribution
	Intervals  uint64

	// History holds per-interval FDP records when Config.KeepFDPHistory
	// is set: the decision trace behind the distributions.
	History []core.IntervalRecord

	FinalLevel int
}

// Run executes one simulation to completion.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	src, err := workload.New(cfg.Workload, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	return runWith(cfg, src)
}

// RunSource executes one simulation over a caller-provided micro-op source
// (used for trace replay and custom workloads).
func RunSource(cfg Config, src cpu.Source) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	return runWith(cfg, src)
}

func runWith(cfg Config, src cpu.Source) (Result, error) {
	var ctr stats.Counters
	h := newHierarchy(&cfg, &ctr)
	h.fdp.KeepHistory = cfg.KeepFDPHistory
	c := cpu.New(cfg.CPU, src, h.Access)
	if cfg.ModelIFetch {
		c.SetFetch(h.Fetch)
	}

	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		// Generous default: even an IPC of 0.002 finishes.
		maxCycles = (cfg.MaxInsts + cfg.WarmupInsts) * 500
		if maxCycles < 10_000_000 {
			maxCycles = 10_000_000
		}
	}

	var cycle uint64
	lastRetired := uint64(0)
	lastProgress := uint64(0)
	var warmCycle, warmRetired, warmLoads, warmStores uint64
	warmed := cfg.WarmupInsts == 0
	target := cfg.WarmupInsts + cfg.MaxInsts
	for c.Retired() < target {
		cycle++
		h.Tick(cycle)
		c.Tick()
		if !warmed && c.Retired() >= cfg.WarmupInsts {
			// Discard warm-up statistics; keep all microarchitectural state.
			warmed = true
			warmCycle = cycle
			warmRetired = c.Retired()
			warmLoads = c.RetiredLoads()
			warmStores = c.RetiredStores()
			*h.ctr = stats.Counters{}
		}
		if r := c.Retired(); r != lastRetired {
			lastRetired = r
			lastProgress = cycle
		} else if cycle-lastProgress > 2_000_000 {
			return Result{}, fmt.Errorf("sim: no retirement progress for 2M cycles at cycle %d (workload %s, retired %d)",
				cycle, src.Name(), c.Retired())
		}
		if cycle >= maxCycles {
			return Result{}, fmt.Errorf("sim: exceeded cycle budget %d (workload %s, retired %d of %d)",
				maxCycles, src.Name(), c.Retired(), cfg.MaxInsts)
		}
	}

	ctr.Cycles = cycle - warmCycle
	ctr.Retired = c.Retired() - warmRetired
	ctr.RetiredLoads = c.RetiredLoads() - warmLoads
	ctr.RetiredStores = c.RetiredStores() - warmStores
	ctr.StallFetch = c.StallFetch()
	ctr.Intervals = h.fdp.Intervals()

	res := Result{
		Workload:   cfg.Workload,
		Prefetcher: string(cfg.Prefetcher),
		Level:      cfg.StaticLevel,
		Counters:   ctr,
		DRAM:       h.dram.Stats(),
		IPC:        ctr.IPC(),
		BPKI:       ctr.BPKI(),
		Accuracy:   ctr.Accuracy(),
		Lateness:   ctr.Lateness(),
		Pollution:  ctr.Pollution(),
		LevelDist:  h.fdp.LevelDist,
		InsertDist: h.fdp.InsertDist,
		Intervals:  h.fdp.Intervals(),
		History:    h.fdp.History,
		FinalLevel: h.fdp.Level(),
	}
	if h.pf != nil {
		res.FinalLevel = h.pf.Level()
	}
	return res, nil
}
