package sim

import (
	"context"
	"fmt"
	"time"

	"fdpsim/internal/core"
	"fdpsim/internal/cpu"
	"fdpsim/internal/mem"
	"fdpsim/internal/stats"
	"fdpsim/internal/workload"
)

// Result is one simulation's output: raw counters plus the derived metrics
// the paper reports.
type Result struct {
	Workload   string
	Prefetcher string
	Level      int // static level, or 0 for dynamic

	Counters stats.Counters
	DRAM     mem.Stats

	IPC       float64
	BPKI      float64
	Accuracy  float64 // whole-run used/sent, as in Figure 2
	Lateness  float64 // whole-run late/used, as in Figure 3
	Pollution float64 // whole-run pollution estimate

	// LevelDist and InsertDist reproduce Figures 6 and 8 for FDP runs.
	LevelDist  *stats.Distribution
	InsertDist *stats.Distribution
	Intervals  uint64

	// History holds per-interval FDP records when Config.KeepFDPHistory
	// is set: the decision trace behind the distributions.
	History []core.IntervalRecord

	FinalLevel int

	// Partial marks a result whose run was cancelled before the retire
	// target; all metrics are valid up to the stop point.
	Partial bool
	// Elapsed is the run's wall-clock duration.
	Elapsed time.Duration

	// Attribution holds the cycle-accounting and bandwidth-attribution
	// block when Config.Attribution is set; nil (and omitted from JSON)
	// otherwise, keeping the Result shape of non-attribution runs — and
	// their golden fingerprints — unchanged.
	Attribution *stats.Attribution `json:",omitempty"`

	// Controller echoes Config.Controller: the feedback policy that drove
	// the run ("" = the built-in paper policy, identical to "fdp").
	// Omitted from JSON when empty, keeping default-run Results — and
	// their golden fingerprints — unchanged.
	Controller string `json:",omitempty"`
}

// cancelCheckStride bounds cancellation latency for runs that close no
// FDP sampling intervals (cache-resident loops evict nothing): the cycle
// loop polls ctx at least this often. Must be a power of two.
const cancelCheckStride = 4096

// drainBudget bounds the extra cycles spent retiring in-flight
// instructions after cancellation, so a wedged memory system cannot turn
// a cancel into a hang.
const drainBudget = 50_000

// Run executes one simulation to completion.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes one simulation under a context. Cancellation and
// deadlines are observed at every FDP sampling-interval boundary (and at
// least every cancelCheckStride cycles); on cancellation the core stops
// dispatch, drains in-flight instructions to a retire boundary, and the
// partial Result is returned together with a *CancelError that wraps both
// ErrCancelled and the context's cause.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	src, err := workload.New(cfg.Workload, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	return runWith(ctx, cfg, src)
}

// RunSource executes one simulation over a caller-provided micro-op source
// (used for trace replay and custom workloads).
func RunSource(cfg Config, src cpu.Source) (Result, error) {
	return RunSourceContext(context.Background(), cfg, src)
}

// RunSourceContext is RunSource under a context, with RunContext's
// cancellation, deadline and progress-streaming semantics.
func RunSourceContext(ctx context.Context, cfg Config, src cpu.Source) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	return runWith(ctx, cfg, src)
}

func runWith(ctx context.Context, cfg Config, src cpu.Source) (Result, error) {
	start := time.Now()
	var ctr stats.Counters
	h := newHierarchy(&cfg, &ctr)
	h.fdp.KeepHistory = cfg.KeepFDPHistory
	c := h.attach(&cfg, src)

	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		// Generous default: even an IPC of 0.002 finishes.
		maxCycles = (cfg.MaxInsts + cfg.WarmupInsts) * 500
		if maxCycles < 10_000_000 {
			maxCycles = 10_000_000
		}
	}

	var cycle uint64
	lastRetired := uint64(0)
	lastProgress := uint64(0)
	var warmCycle, warmRetired, warmLoads, warmStores uint64
	warmed := cfg.WarmupInsts == 0
	target := cfg.WarmupInsts + cfg.MaxInsts

	// Interval streaming: the FDP engine reports each closed sampling
	// interval; the flag gates the cycle loop's cancellation poll so
	// cancellation latency is bounded by one interval. The same boundary
	// feeds the decision tracer and the progress sink; with neither
	// configured the callback only sets the flag.
	intervalClosed := false
	h.fdp.OnInterval = func(rec core.IntervalRecord) {
		intervalClosed = true
		if cfg.Tracer == nil && cfg.Progress == nil {
			return
		}
		var pcyc, pret uint64
		if warmed {
			pcyc = cycle - warmCycle
			pret = c.Retired() - warmRetired
		}
		var sample stats.IntervalSample
		if h.attr != nil && warmed {
			sample = h.attrIntervalSample()
		}
		h.traceDecision(rec, pcyc, pret, sample)
		if cfg.Progress == nil {
			return
		}
		s := Snapshot{
			Cycle:     pcyc,
			Retired:   pret,
			Target:    cfg.MaxInsts,
			Interval:  h.fdp.Intervals(),
			Accuracy:  rec.Accuracy,
			Lateness:  rec.Lateness,
			Pollution: rec.Pollution,
			Case:      rec.Case,
			Level:     rec.Level,
			Insertion: rec.Insertion,
			Elapsed:   time.Since(start),
			Sample:    sample,
		}
		if pcyc > 0 {
			s.IPC = float64(pret) / float64(pcyc)
		}
		if pret > 0 {
			// Counters.Retired is only set at finalize; derive BPKI from
			// the live bus counters and the post-warmup retire count.
			s.BPKI = 1000 * float64(ctr.BusAccesses()) / float64(pret)
		}
		if h.pf != nil {
			s.Level = h.pf.Level()
		}
		cfg.Progress(s)
	}

	// finalize snapshots the counters at the current cycle, builds the
	// Result and emits the Final progress snapshot. Shared by the normal
	// completion path and the cancellation path.
	finalize := func(partial bool) Result {
		ctr.Cycles = cycle - warmCycle
		ctr.Retired = c.Retired() - warmRetired
		ctr.RetiredLoads = c.RetiredLoads() - warmLoads
		ctr.RetiredStores = c.RetiredStores() - warmStores
		ctr.StallFetch = c.StallFetch()
		ctr.Intervals = h.fdp.Intervals()

		res := Result{
			Workload:   cfg.Workload,
			Prefetcher: string(cfg.Prefetcher),
			Level:      cfg.StaticLevel,
			Counters:   ctr,
			DRAM:       h.dram.Stats(),
			IPC:        ctr.IPC(),
			BPKI:       ctr.BPKI(),
			Accuracy:   ctr.Accuracy(),
			Lateness:   ctr.Lateness(),
			Pollution:  ctr.Pollution(),
			LevelDist:  h.fdp.LevelDist,
			InsertDist: h.fdp.InsertDist,
			Intervals:  h.fdp.Intervals(),
			History:    h.fdp.History,
			FinalLevel: h.fdp.Level(),
			Partial:    partial,
			Elapsed:    time.Since(start),
			Controller: cfg.Controller,
		}
		res.Attribution = h.attrFinalize()
		if h.pf != nil {
			res.FinalLevel = h.pf.Level()
		}
		if cfg.Progress != nil {
			acc, late, poll := h.fdp.Metrics()
			cfg.Progress(Snapshot{
				Cycle:     ctr.Cycles,
				Retired:   ctr.Retired,
				Target:    cfg.MaxInsts,
				IPC:       res.IPC,
				BPKI:      res.BPKI,
				Interval:  res.Intervals,
				Accuracy:  acc,
				Lateness:  late,
				Pollution: poll,
				Level:     res.FinalLevel,
				Insertion: h.fdp.Insertion(),
				Elapsed:   res.Elapsed,
				Final:     true,
			})
		}
		return res
	}

	// cancelled performs the clean stop: dispatch halts, in-flight
	// instructions drain to a retire boundary (bounded), and the partial
	// result travels with the typed error.
	cancelled := func(cause error) (Result, error) {
		c.Halt()
		for extra := 0; extra < drainBudget && c.InFlight() > 0; extra++ {
			cycle++
			h.Tick(cycle)
			c.Tick()
		}
		res := finalize(true)
		return res, &CancelError{Cause: cause, Cycle: cycle, Retired: res.Counters.Retired, Target: cfg.MaxInsts}
	}

	cancellable := ctx.Done() != nil
	for c.Retired() < target {
		cycle++
		h.Tick(cycle)
		c.Tick()
		if !warmed && c.Retired() >= cfg.WarmupInsts {
			// Discard warm-up statistics; keep all microarchitectural state.
			warmed = true
			warmCycle = cycle
			warmRetired = c.Retired()
			warmLoads = c.RetiredLoads()
			warmStores = c.RetiredStores()
			*h.ctr = stats.Counters{}
			if h.attr != nil {
				h.attrWarmupReset()
			}
		}
		if intervalClosed || cycle&(cancelCheckStride-1) == 0 {
			intervalClosed = false
			if cancellable {
				if err := ctx.Err(); err != nil {
					return cancelled(err)
				}
			}
		}
		if r := c.Retired(); r != lastRetired {
			lastRetired = r
			lastProgress = cycle
		} else if cycle-lastProgress > 2_000_000 {
			return Result{}, fmt.Errorf("sim: no retirement progress for 2M cycles at cycle %d (workload %s, retired %d)",
				cycle, src.Name(), c.Retired())
		}
		if cycle >= maxCycles {
			return Result{}, fmt.Errorf("sim: exceeded cycle budget %d (workload %s, retired %d of %d)",
				maxCycles, src.Name(), c.Retired(), cfg.MaxInsts)
		}
	}

	return finalize(false), nil
}
