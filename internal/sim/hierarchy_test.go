package sim

import (
	"testing"

	"fdpsim/internal/cache"
	"fdpsim/internal/prefetch"
	"fdpsim/internal/stats"
)

// rig wires a hierarchy with manual clock control for white-box tests. It
// registers itself as the hierarchy's client, tracking load completions by
// sequence number.
type rig struct {
	h    *hierarchy
	ctr  *stats.Counters
	cyc  uint64
	id   int32
	seq  uint64
	done map[uint64]*bool
}

func newRig(mutate func(*Config)) *rig {
	cfg := Default()
	cfg.Workload = "seqstream" // unused: we drive Access directly
	if mutate != nil {
		mutate(&cfg)
	}
	ctr := &stats.Counters{}
	r := &rig{h: newHierarchy(&cfg, ctr), ctr: ctr, done: map[uint64]*bool{}}
	r.id = r.h.addClient(r)
	return r
}

// CompleteLoad implements memClient.
func (r *rig) CompleteLoad(robIdx int32, seq uint64) {
	if d, ok := r.done[seq]; ok {
		*d = true
	}
}

// CompleteFetch implements memClient.
func (r *rig) CompleteFetch() {}

// step advances n cycles.
func (r *rig) step(n int) {
	for i := 0; i < n; i++ {
		r.cyc++
		r.h.Tick(r.cyc)
	}
}

// load issues a demand load for a byte address, returning a *bool that
// flips when the data arrives.
func (r *rig) load(addr uint64) *bool {
	done := new(bool)
	r.seq++
	r.done[r.seq] = done
	r.h.Access(r.id, addr, 0x400000, false, 0, r.seq)
	return done
}

func TestHierarchyL1Hit(t *testing.T) {
	r := newRig(nil)
	r.step(1)
	d1 := r.load(64)
	r.step(3000) // let the miss complete
	if !*d1 {
		t.Fatal("first access never completed")
	}
	d2 := r.load(64)
	r.step(3) // L1 latency is 2
	if !*d2 {
		t.Fatal("L1 hit not completed within latency")
	}
	if r.ctr.L1Misses != 1 {
		t.Fatalf("L1 misses = %d, want 1", r.ctr.L1Misses)
	}
}

func TestHierarchyL1MergesSameBlock(t *testing.T) {
	r := newRig(nil)
	r.step(1)
	d1 := r.load(64)
	d2 := r.load(72) // same block
	r.step(3000)
	if !*d1 || !*d2 {
		t.Fatal("merged requesters not both completed")
	}
	if r.ctr.L2DemandAccesses != 1 {
		t.Fatalf("L2 accesses = %d, want 1 (merged at L1)", r.ctr.L2DemandAccesses)
	}
	if r.ctr.BusReads != 1 {
		t.Fatalf("bus reads = %d, want 1", r.ctr.BusReads)
	}
}

func TestHierarchyLatePrefetchProtocol(t *testing.T) {
	// Inject a prefetch, then demand the same block while it is in
	// flight: late-total and used-total must both increment, and the
	// request must be promoted to demand priority.
	r := newRig(nil)
	r.step(1)
	r.h.enqueuePrefetch(100)
	r.step(5) // drain into MSHR + bus queue
	if r.h.mshr.Lookup(100) == nil {
		t.Fatal("prefetch did not allocate an MSHR")
	}
	done := r.load(100 << 6)
	r.step(1)
	if r.ctr.PrefLate != 1 || r.ctr.PrefUsed != 1 {
		t.Fatalf("late=%d used=%d, want 1,1", r.ctr.PrefLate, r.ctr.PrefUsed)
	}
	r.step(3000)
	if !*done {
		t.Fatal("merged demand never completed")
	}
	// The block was consumed at fill: it must not carry a pref bit.
	if b := r.h.l2.Lookup(100); b == nil || b.Pref {
		t.Fatalf("late-prefetched block state wrong: %+v", b)
	}
}

func TestHierarchyTimelyPrefetchHit(t *testing.T) {
	r := newRig(nil)
	r.step(1)
	r.h.enqueuePrefetch(200)
	r.step(3000) // prefetch fills the L2
	if r.ctr.PrefetchFilled != 1 {
		t.Fatalf("prefetch filled = %d", r.ctr.PrefetchFilled)
	}
	if b := r.h.l2.Lookup(200); b == nil || !b.Pref {
		t.Fatal("prefetched block missing or unmarked")
	}
	done := r.load(200 << 6)
	r.step(20)
	if !*done {
		t.Fatal("demand on prefetched block did not complete at L2-hit latency")
	}
	if r.ctr.PrefUsed != 1 || r.ctr.PrefLate != 0 {
		t.Fatalf("used=%d late=%d, want 1,0", r.ctr.PrefUsed, r.ctr.PrefLate)
	}
	if b := r.h.l2.Lookup(200); b.Pref {
		t.Fatal("pref bit not cleared on first demand use")
	}
}

func TestHierarchyPrefetchDedup(t *testing.T) {
	r := newRig(nil)
	r.step(1)
	r.h.enqueuePrefetch(300)
	r.h.enqueuePrefetch(300) // duplicate in queue
	if r.h.prefQ.len() != 1 {
		t.Fatalf("queue holds %d entries, want 1", r.h.prefQ.len())
	}
	r.step(5)
	r.h.enqueuePrefetch(300) // already in MSHR
	if r.h.prefQ.len() != 0 {
		t.Fatal("in-flight block re-queued")
	}
	r.step(3000)
	r.h.enqueuePrefetch(300) // already in L2
	r.step(5)
	if r.ctr.PrefSent != 1 {
		t.Fatalf("sent = %d, want 1", r.ctr.PrefSent)
	}
}

func TestHierarchyStoreDirtiesAndWritesBack(t *testing.T) {
	r := newRig(func(c *Config) {
		c.L1Blocks = 8
		c.L1Ways = 2
		c.L2Blocks = 16
		c.L2Ways = 2
	})
	r.step(1)
	r.h.Access(r.id, 0, 1, true, -1, 0) // store to block 0
	r.step(3000)
	// Evict block 0 from L1 by filling its set (set count = 4).
	for i := uint64(1); i <= 2; i++ {
		r.load(i * 4 * 64) // same L1 set as block 0
		r.step(3000)
	}
	// Block 0's dirty data must now be in the L2 (or written back).
	b := r.h.l2.Lookup(0)
	if b == nil || !b.Dirty {
		t.Fatalf("dirty L1 victim not recorded in L2: %+v", b)
	}
	// Now force it out of the tiny L2 and expect bus writeback traffic.
	for i := uint64(1); i <= 4; i++ {
		r.load(i * 8 * 64) // same L2 set as block 0
		r.step(3000)
	}
	if r.ctr.BusWritebacks == 0 {
		t.Fatal("no writeback traffic after evicting a dirty L2 block")
	}
}

func TestHierarchyPollutionEndToEnd(t *testing.T) {
	r := newRig(func(c *Config) {
		c.L2Blocks = 16
		c.L2Ways = 2
	})
	r.step(1)
	// Fill both ways of L2 set 0 with demand blocks.
	d1 := r.load(0)
	r.step(3000)
	d2 := r.load(8 << 6)
	r.step(3000)
	if !*d1 || !*d2 {
		t.Fatal("setup loads incomplete")
	}
	// A prefetch into the same set evicts the LRU demand block (block 0).
	r.h.enqueuePrefetch(16)
	r.step(3000)
	if r.h.l2.Lookup(0) != nil {
		t.Fatal("prefetch did not evict the demand block")
	}
	// Re-demanding block 0 is a pollution miss (drop the L1 copy so the
	// demand reaches the L2).
	r.h.l1.Invalidate(0)
	r.load(0)
	r.step(1)
	if r.ctr.PollutionHits != 1 {
		t.Fatalf("pollution hits = %d, want 1", r.ctr.PollutionHits)
	}
}

func TestHierarchyObserveSeesHitsAndMisses(t *testing.T) {
	var events []prefetch.Event
	rec := &recordingPrefetcher{sink: &events}
	r := newRig(func(c *Config) {
		c.Prefetcher = PrefCustom
		c.Custom = rec
		c.StaticLevel = 5
	})
	r.step(1)
	r.load(64)
	r.step(3000)
	r.load(64) // L1 hit: no L2 event
	r.step(10)
	r.h.l1.Invalidate(1)
	r.load(64) // L1 miss, L2 hit
	r.step(10)
	if len(events) != 2 {
		t.Fatalf("prefetcher saw %d events, want 2", len(events))
	}
	if !events[0].Miss || events[1].Miss {
		t.Fatalf("event miss flags wrong: %+v", events)
	}
}

type recordingPrefetcher struct {
	sink  *[]prefetch.Event
	level int
}

func (p *recordingPrefetcher) Name() string       { return "recorder" }
func (p *recordingPrefetcher) SetLevel(level int) { p.level = level }
func (p *recordingPrefetcher) Level() int         { return p.level }
func (p *recordingPrefetcher) Observe(ev *prefetch.Event, out []uint64) []uint64 {
	*p.sink = append(*p.sink, *ev)
	return out
}

func TestHierarchyPrefetchCacheMigration(t *testing.T) {
	r := newRig(func(c *Config) {
		c.PrefCacheBlocks = 32
		c.PrefCacheWays = 0
	})
	r.step(1)
	r.h.enqueuePrefetch(500)
	r.step(3000)
	if !r.h.pc.Contains(500) {
		t.Fatal("prefetch did not fill the prefetch cache")
	}
	if r.h.l2.Contains(500) {
		t.Fatal("prefetch leaked into the L2 despite the prefetch cache")
	}
	done := r.load(500 << 6)
	r.step(20)
	if !*done {
		t.Fatal("prefetch-cache hit did not complete quickly")
	}
	if r.h.pc.Contains(500) || !r.h.l2.Contains(500) {
		t.Fatal("demand hit did not migrate the block to the L2")
	}
	if r.ctr.PrefCacheHits != 1 || r.ctr.PrefUsed != 1 {
		t.Fatalf("hits=%d used=%d", r.ctr.PrefCacheHits, r.ctr.PrefUsed)
	}
}

func TestHierarchyUsefulEvictionCounting(t *testing.T) {
	r := newRig(func(c *Config) {
		c.L2Blocks = 4
		c.L2Ways = 2
	})
	r.step(1)
	for i := uint64(0); i < 4; i++ {
		r.load(i * 2 * 64) // all map to set 0
		r.step(3000)
	}
	// Two of the four demand fills evicted earlier demand blocks.
	if r.ctr.UsefulEvicted != 2 {
		t.Fatalf("useful evictions = %d, want 2", r.ctr.UsefulEvicted)
	}
}

func TestInsertPosPlumbing(t *testing.T) {
	// A static LRU insertion policy must place prefetch fills at the LRU
	// position of the set.
	r := newRig(func(c *Config) {
		c.L2Blocks = 16
		c.L2Ways = 4
		c.FDP.StaticInsertion = cache.PosLRU
	})
	r.step(1)
	for i := uint64(0); i < 3; i++ {
		r.load(i * 4 * 64)
		r.step(3000)
	}
	r.h.enqueuePrefetch(12)
	r.step(3000)
	got := r.h.l2.StackPositions(0)
	if len(got) != 4 || got[0] != 12 {
		t.Fatalf("stack = %v, want prefetched block 12 at LRU", got)
	}
}
