package sim

import "testing"

func TestWheelRunsAtScheduledCycle(t *testing.T) {
	w := newWheel(16)
	fired := -1
	w.tick(0)
	w.schedule(3, func() { fired = 3 })
	w.tick(1)
	w.tick(2)
	if fired != -1 {
		t.Fatal("event fired early")
	}
	w.tick(3)
	if fired != 3 {
		t.Fatal("event did not fire at its cycle")
	}
}

func TestWheelZeroDelayBecomesOne(t *testing.T) {
	w := newWheel(16)
	fired := false
	w.tick(5)
	w.schedule(0, func() { fired = true })
	w.tick(6)
	if !fired {
		t.Fatal("zero-delay event not coerced to next cycle")
	}
}

func TestWheelChainedScheduling(t *testing.T) {
	w := newWheel(16)
	var order []int
	w.tick(0)
	w.schedule(1, func() {
		order = append(order, 1)
		w.schedule(2, func() { order = append(order, 2) })
	})
	for c := uint64(1); c <= 4; c++ {
		w.tick(c)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestWheelHorizonPanics(t *testing.T) {
	w := newWheel(16)
	defer func() {
		if recover() == nil {
			t.Fatal("beyond-horizon schedule did not panic")
		}
	}()
	w.schedule(16, func() {})
}

func TestWheelSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two wheel did not panic")
		}
	}()
	newWheel(10)
}

func TestWheelManyEventsSameCycle(t *testing.T) {
	w := newWheel(8)
	n := 0
	w.tick(0)
	for i := 0; i < 100; i++ {
		w.schedule(2, func() { n++ })
	}
	w.tick(1)
	w.tick(2)
	if n != 100 {
		t.Fatalf("fired %d of 100", n)
	}
	// Bucket is cleared: wrapping around must not re-fire.
	for c := uint64(3); c < 20; c++ {
		w.tick(c)
	}
	if n != 100 {
		t.Fatalf("events re-fired after wrap: %d", n)
	}
}
