package sim

import "testing"

// testWheel builds a wheel over a fresh pool whose fired events append
// their arg to the returned log.
func testWheel(size int) (*wheel, *[]uint64) {
	pool := newEventPool(16)
	w := newWheel(size, pool)
	log := &[]uint64{}
	w.run = func(ev event) { *log = append(*log, ev.arg) }
	return w, log
}

func TestWheelRunsAtScheduledCycle(t *testing.T) {
	w, log := testWheel(16)
	w.tick(0)
	w.schedule(3, w.pool.alloc(evFillL1, 0, 0, 3))
	w.tick(1)
	w.tick(2)
	if len(*log) != 0 {
		t.Fatal("event fired early")
	}
	w.tick(3)
	if len(*log) != 1 || (*log)[0] != 3 {
		t.Fatalf("fired %v, want [3] at cycle 3", *log)
	}
}

func TestWheelZeroDelayBecomesOne(t *testing.T) {
	w, log := testWheel(16)
	w.tick(5)
	w.schedule(0, w.pool.alloc(evFillL1, 0, 0, 1))
	w.tick(6)
	if len(*log) != 1 {
		t.Fatal("zero-delay event not coerced to next cycle")
	}
}

func TestWheelChainedScheduling(t *testing.T) {
	pool := newEventPool(16)
	w := newWheel(16, pool)
	var order []uint64
	w.run = func(ev event) {
		order = append(order, ev.arg)
		if ev.arg == 1 {
			w.schedule(2, pool.alloc(evFillL1, 0, 0, 2))
		}
	}
	w.tick(0)
	w.schedule(1, pool.alloc(evFillL1, 0, 0, 1))
	for c := uint64(1); c <= 4; c++ {
		w.tick(c)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestWheelFarFutureSpillsAndFires(t *testing.T) {
	// Delays beyond the horizon park in the far list (the seed engine
	// panicked here) and still fire exactly at their due cycle.
	w, log := testWheel(16)
	w.tick(0)
	w.schedule(100, w.pool.alloc(evFillL1, 0, 0, 100))
	w.schedule(40, w.pool.alloc(evFillL1, 0, 0, 40))
	if w.pendingFar() != 2 {
		t.Fatalf("far list holds %d, want 2", w.pendingFar())
	}
	for c := uint64(1); c <= 99; c++ {
		w.tick(c)
		switch {
		case c < 40 && len(*log) != 0:
			t.Fatalf("cycle %d: early fire %v", c, *log)
		case c >= 40 && (len(*log) != 1 || (*log)[0] != 40):
			t.Fatalf("cycle %d: log %v, want [40]", c, *log)
		}
	}
	w.tick(100)
	if len(*log) != 2 || (*log)[1] != 100 {
		t.Fatalf("log = %v, want [40 100]", *log)
	}
	if w.pendingFar() != 0 {
		t.Fatalf("far list not drained: %d", w.pendingFar())
	}
}

func TestWheelFarFutureKeepsFIFOOnEqualDue(t *testing.T) {
	w, log := testWheel(8)
	w.tick(0)
	for i := uint64(0); i < 5; i++ {
		w.schedule(50, w.pool.alloc(evFillL1, 0, 0, i))
	}
	for c := uint64(1); c <= 50; c++ {
		w.tick(c)
	}
	if len(*log) != 5 {
		t.Fatalf("fired %d of 5", len(*log))
	}
	for i, v := range *log {
		if v != uint64(i) {
			t.Fatalf("order = %v, want FIFO", *log)
		}
	}
}

func TestWheelSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two wheel did not panic")
		}
	}()
	newWheel(10, newEventPool(16))
}

func TestWheelManyEventsSameCycle(t *testing.T) {
	w, log := testWheel(8)
	w.tick(0)
	for i := 0; i < 100; i++ {
		w.schedule(2, w.pool.alloc(evFillL1, 0, 0, uint64(i)))
	}
	w.tick(1)
	w.tick(2)
	if len(*log) != 100 {
		t.Fatalf("fired %d of 100", len(*log))
	}
	// Bucket is cleared: wrapping around must not re-fire.
	for c := uint64(3); c < 20; c++ {
		w.tick(c)
	}
	if len(*log) != 100 {
		t.Fatalf("events re-fired after wrap: %d", len(*log))
	}
	// Every node went back to the pool: the free list covers the slab.
	if got, want := len(w.pool.free), len(w.pool.nodes); got != want {
		t.Fatalf("pool leak: %d free of %d nodes", got, want)
	}
}
