package sim

import (
	"testing"

	"fdpsim/internal/cache"
	"fdpsim/internal/cpu"
	"fdpsim/internal/workload"
)

// quickCfg returns a small, fast configuration for integration tests.
func quickCfg(w string) Config {
	cfg := Default()
	cfg.Workload = w
	cfg.MaxInsts = 30_000
	return cfg
}

func TestConfigValidate(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.MaxInsts = 0 },
		func(c *Config) { c.L1Blocks = 0 },
		func(c *Config) { c.StaticLevel = 6 },
		func(c *Config) { c.Prefetcher = "bogus" },
		func(c *Config) { c.Prefetcher = PrefNone; c.StaticLevel = 3 },
	}
	for i, mutate := range cases {
		cfg := Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	cfg := Default()
	cfg.Workload = "nope"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunBasicCountersConsistent(t *testing.T) {
	res, err := Run(quickCfg("seqstream"))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.Retired < 30_000 {
		t.Fatalf("retired %d < target", c.Retired)
	}
	if c.Cycles == 0 || res.IPC <= 0 || res.IPC > 8 {
		t.Fatalf("IPC = %v over %d cycles", res.IPC, c.Cycles)
	}
	if c.L1Misses > c.L1Accesses {
		t.Fatal("more L1 misses than accesses")
	}
	if c.L2DemandMisses > c.L2DemandAccesses {
		t.Fatal("more L2 misses than accesses")
	}
	if c.BusReads == 0 {
		t.Fatal("streaming workload produced no bus reads")
	}
	if res.BPKI <= 0 {
		t.Fatal("BPKI must be positive for a streaming workload")
	}
}

func TestEveryWorkloadRunsUnderEveryPrefetcher(t *testing.T) {
	kinds := []PrefetcherKind{PrefNone, PrefStream, PrefGHB, PrefStride, PrefNextLine}
	for _, w := range workload.Names() {
		for _, k := range kinds {
			cfg := quickCfg(w)
			cfg.MaxInsts = 15_000
			cfg.Prefetcher = k
			if k != PrefNone {
				cfg.StaticLevel = 5
			}
			if _, err := Run(cfg); err != nil {
				t.Errorf("%s under %s: %v", w, k, err)
			}
		}
	}
}

func TestFDPRunsOnAllPrefetchers(t *testing.T) {
	for _, k := range []PrefetcherKind{PrefStream, PrefGHB, PrefStride, PrefNextLine} {
		cfg := WithFDP(k)
		cfg.Workload = "chaserand"
		cfg.MaxInsts = 90_000
		cfg.FDP.TInterval = 256
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if res.Intervals == 0 {
			t.Errorf("%s: no FDP intervals completed", k)
		}
	}
}

func TestPrefetchCountersConsistent(t *testing.T) {
	cfg := Conventional(PrefStream, 5)
	cfg.Workload = "seqstream"
	cfg.MaxInsts = 100_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.PrefSent == 0 {
		t.Fatal("very aggressive prefetcher sent nothing on seqstream")
	}
	if c.PrefUsed > c.PrefSent+c.PrefetchFilled {
		t.Fatalf("used %d exceeds sent %d", c.PrefUsed, c.PrefSent)
	}
	if c.PrefLate > c.PrefUsed {
		t.Fatalf("late %d exceeds used %d", c.PrefLate, c.PrefUsed)
	}
	if res.Accuracy < 0 || res.Accuracy > 1 || res.Lateness < 0 || res.Lateness > 1 {
		t.Fatalf("metrics out of range: acc=%v late=%v", res.Accuracy, res.Lateness)
	}
	if c.PrefIssued < c.PrefSent {
		t.Fatalf("issued %d < sent %d", c.PrefIssued, c.PrefSent)
	}
	if c.BusPrefetches != c.PrefSent {
		t.Fatalf("bus prefetches %d != sent %d", c.BusPrefetches, c.PrefSent)
	}
}

func TestPrefetchingHelpsStreaming(t *testing.T) {
	base, err := Run(quickCfg("seqstream"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg("seqstream")
	cfg.Prefetcher = PrefStream
	cfg.StaticLevel = 5
	pf, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pf.IPC < base.IPC*1.3 {
		t.Fatalf("prefetching IPC %.3f vs %.3f: expected a clear win on seqstream", pf.IPC, base.IPC)
	}
	if pf.Accuracy < 0.9 {
		t.Fatalf("seqstream accuracy %.2f, want > 0.9", pf.Accuracy)
	}
}

func TestAggressivePrefetchingHurtsHostile(t *testing.T) {
	base, err := Run(quickCfg("chaserand"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg("chaserand")
	cfg.Prefetcher = PrefStream
	cfg.StaticLevel = 5
	pf, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pf.IPC > base.IPC*0.9 {
		t.Fatalf("VA IPC %.3f vs no-pf %.3f: chaserand must lose clearly", pf.IPC, base.IPC)
	}
	if pf.Accuracy > 0.4 {
		t.Fatalf("chaserand accuracy %.2f, want < 0.4 (the paper's hurt threshold)", pf.Accuracy)
	}
}

func TestFDPRecoversHostile(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run invariant")
	}
	mk := func(f func(*Config)) Result {
		cfg := Default()
		cfg.Workload = "chaserand"
		cfg.MaxInsts = 200_000
		cfg.FDP.TInterval = 1024
		f(&cfg)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	va := mk(func(c *Config) { c.Prefetcher = PrefStream; c.StaticLevel = 5 })
	fdp := mk(func(c *Config) {
		c.Prefetcher = PrefStream
		c.FDP.DynamicAggressiveness = true
		c.FDP.DynamicInsertion = true
	})
	if fdp.IPC < va.IPC*1.2 {
		t.Fatalf("FDP %.3f vs VA %.3f: FDP must clearly recover chaserand", fdp.IPC, va.IPC)
	}
	if fdp.BPKI > va.BPKI*0.8 {
		t.Fatalf("FDP BPKI %.1f vs VA %.1f: FDP must save bandwidth", fdp.BPKI, va.BPKI)
	}
	if fdp.FinalLevel > 2 {
		t.Fatalf("FDP settled at level %d on chaserand, want throttled", fdp.FinalLevel)
	}
}

func TestWritebackTraffic(t *testing.T) {
	cfg := quickCfg("scanmod")
	cfg.MaxInsts = 120_000
	cfg.L2Blocks = 1024 // small L2 so dirty blocks are evicted in-run
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.BusWritebacks == 0 {
		t.Fatal("store-heavy sweep produced no writebacks")
	}
	if res.Counters.RetiredStores == 0 {
		t.Fatal("scanmod retired no stores")
	}
}

func TestPrefetchCachePath(t *testing.T) {
	cfg := Conventional(PrefStream, 5)
	cfg.Workload = "seqstream"
	cfg.MaxInsts = 100_000
	cfg.PrefCacheBlocks = 512 // 32 KB
	cfg.PrefCacheWays = 16
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.PrefCacheHits == 0 {
		t.Fatal("prefetch cache never hit on seqstream")
	}
}

func TestTinyMSHRStillCompletes(t *testing.T) {
	cfg := quickCfg("multistream")
	cfg.Prefetcher = PrefStream
	cfg.StaticLevel = 5
	cfg.MSHRs = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatal("starved MSHR run produced no progress")
	}
}

func TestTinyQueuesStillComplete(t *testing.T) {
	cfg := quickCfg("multistream")
	cfg.Prefetcher = PrefStream
	cfg.StaticLevel = 5
	cfg.DRAM.QueueCap = 4
	cfg.PrefQueueCap = 2
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCycleBudgetAborts(t *testing.T) {
	cfg := quickCfg("chaseseq")
	cfg.MaxCycles = 1000 // far too few
	if _, err := Run(cfg); err == nil {
		t.Fatal("cycle budget not enforced")
	}
}

func TestRunSourceCustomWorkload(t *testing.T) {
	cfg := Default()
	cfg.MaxInsts = 10_000
	src := &countingSource{}
	res, err := RunSource(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.RetiredLoads == 0 {
		t.Fatal("custom source loads not retired")
	}
}

type countingSource struct{ n uint64 }

func (s *countingSource) Name() string { return "counting" }
func (s *countingSource) Next() cpu.MicroOp {
	s.n++
	if s.n%5 == 0 {
		return cpu.MicroOp{Kind: cpu.Load, Addr: s.n * 8, PC: 0x400000}
	}
	return cpu.MicroOp{Kind: cpu.Nop}
}

func TestDeterministicResults(t *testing.T) {
	cfg := quickCfg("spmv")
	cfg.Prefetcher = PrefStream
	cfg.StaticLevel = 3
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.IPC != b.IPC || a.Counters != b.Counters {
		t.Fatal("identical configs produced different results")
	}
}

func TestStaticInsertionPositionsRun(t *testing.T) {
	for _, pos := range []cache.InsertPos{cache.PosLRU, cache.PosLRU4, cache.PosMID, cache.PosMRU} {
		cfg := quickCfg("seqstream")
		cfg.Prefetcher = PrefStream
		cfg.StaticLevel = 5
		cfg.FDP.StaticInsertion = pos
		if _, err := Run(cfg); err != nil {
			t.Errorf("insertion %v: %v", pos, err)
		}
	}
}

func TestLowPotentialMostlyQuiet(t *testing.T) {
	cfg := quickCfg("tinyloop")
	cfg.Prefetcher = PrefStream
	cfg.StaticLevel = 5
	cfg.MaxInsts = 100_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BPKI > 5 {
		t.Fatalf("tinyloop BPKI = %.1f, want near zero", res.BPKI)
	}
	if res.IPC < 3 {
		t.Fatalf("tinyloop IPC = %.2f, want cache-resident speed", res.IPC)
	}
}
