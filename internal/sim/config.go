// Package sim wires the simulator together: the out-of-order core, the
// L1/L2 cache hierarchy with MSHRs and bounded queues, the DRAM/bus model,
// the prefetcher, and the FDP feedback engine, reproducing the baseline
// processor of Table 3.
package sim

import (
	"fmt"

	"fdpsim/internal/cache"
	"fdpsim/internal/control"
	"fdpsim/internal/core"
	"fdpsim/internal/cpu"
	"fdpsim/internal/mem"
	"fdpsim/internal/prefetch"
)

// PrefetcherKind selects the hardware prefetcher.
type PrefetcherKind string

// Available prefetchers.
const (
	PrefNone     PrefetcherKind = "none"
	PrefStream   PrefetcherKind = "stream"
	PrefGHB      PrefetcherKind = "ghb"
	PrefStride   PrefetcherKind = "stride"
	PrefNextLine PrefetcherKind = "nextline"
	// PrefDahlgren is the related-work baseline: adaptive sequential
	// prefetching throttled by accuracy alone (Section 6.1).
	PrefDahlgren PrefetcherKind = "dahlgren"
	// PrefHybrid composes the stream and PC-stride engines.
	PrefHybrid PrefetcherKind = "hybrid"
	// PrefCustom selects the prefetcher supplied in Config.Custom,
	// letting users study their own designs under FDP control.
	PrefCustom PrefetcherKind = "custom"
)

// Config is one simulation's full parameter set.
type Config struct {
	Workload string
	Seed     uint64
	MaxInsts uint64 // retire target; the run stops when reached
	// WarmupInsts, when non-zero, discards all statistics gathered before
	// that many instructions have retired (the caches, prefetcher and FDP
	// state stay warm), mirroring the paper's fast-forward methodology.
	// MaxInsts counts only post-warmup instructions.
	WarmupInsts uint64

	CPU cpu.Config

	BlockShift uint // log2 of the cache-block size (6 = 64 B)

	L1Blocks  int
	L1Ways    int
	L1Latency uint64

	// ModelIFetch enables the L1 instruction cache and fetch-stall
	// modeling (Table 3's 64 KB I-cache): dispatch stalls when the next
	// instruction block misses the L1I, and instruction blocks contend
	// for the unified L2 — the mechanism behind the paper's Section 5.9
	// gcc observation.
	ModelIFetch bool
	L1IBlocks   int
	L1IWays     int

	L2Blocks  int
	L2Ways    int
	L2Latency uint64
	MSHRs     int

	PrefQueueCap     int // Prefetch Request Queue entries
	PrefDrainPerTick int // prefetch requests moved into the L2 per cycle

	DRAM mem.Config

	Prefetcher PrefetcherKind
	// Custom is the prefetcher instance used when Prefetcher is
	// PrefCustom. A custom prefetcher must not be shared across runs.
	Custom prefetch.Prefetcher
	// StaticLevel pins the prefetcher at a Table 1 aggressiveness (1..5).
	// Zero defers to FDP's Dynamic Configuration Counter.
	StaticLevel int
	// StreamEntries sizes the stream prefetcher (64 in the baseline).
	StreamEntries int
	// PerStreamRamp enables the stream prefetcher's per-stream
	// adaptation (footnote 8's alternative to global feedback): each
	// tracking entry ramps from Very Conservative toward the global
	// level as its stream proves itself.
	PerStreamRamp bool

	FDP core.Config

	// Controller names the feedback decision policy from the
	// internal/control registry ("fdp", "static-1".."static-5",
	// "dspatch-dual", "tree"; see `fdpsim -list`). Empty selects the
	// paper's Table 2 policy — the engine's built-in default — and is
	// bit-identical to "fdp". The controller only has effect where the
	// FDP Dynamic* switches allow: Level under DynamicAggressiveness,
	// insertion under DynamicInsertion.
	Controller string
	// ControllerModel is the serialized decision-tree model for the
	// "tree" controller (JSON; see docs/CONTROLLERS.md). Nil selects the
	// embedded default model.
	ControllerModel []byte

	// PrefCacheBlocks, when non-zero, adds a separate prefetch cache
	// (Section 5.7 comparison): prefetches fill it instead of the L2 and
	// demand hits migrate blocks into the L2.
	PrefCacheBlocks int
	PrefCacheWays   int // 0 = fully associative

	// KeepFDPHistory records every sampling interval's metrics and
	// decisions in Result.History (for adaptation-timeline analysis).
	KeepFDPHistory bool

	// Attribution enables the cycle-accounting and bandwidth-attribution
	// layer: top-down per-cycle stall classification, bus-occupancy and
	// DRAM-pressure telemetry, and prefetch-timeliness histograms. Results
	// land in Result.Attribution and in the per-interval Sample of
	// DecisionEvent/Snapshot. Purely observational — simulation timing and
	// all other counters are bit-identical with it on or off.
	Attribution bool

	// Progress, when set, streams one Snapshot per completed FDP sampling
	// interval plus a Final snapshot at run end to the caller-supplied
	// sink. Excluded from JSON round-trips (functions do not serialize)
	// and from the harness memo fingerprint (it does not affect results).
	Progress ProgressFunc `json:"-"`

	// Tracer, when set, receives one DecisionEvent per FDP interval
	// boundary — the feedback loop's full decision trace (see trace.go and
	// internal/obs for sinks). Like Progress it is observation-only:
	// excluded from JSON round-trips and from the fingerprint, and a nil
	// tracer adds no work to the simulation loop.
	Tracer Tracer `json:"-"`

	// MaxCycles aborts a run that stops making progress (safety valve).
	MaxCycles uint64
}

// Default returns the paper's baseline: Table 3 processor, very
// aggressive conventional stream prefetching disabled by default (choose
// with Prefetcher/StaticLevel), FDP mechanisms off.
func Default() Config {
	fdp := core.DefaultConfig()
	fdp.DynamicAggressiveness = false
	fdp.DynamicInsertion = false
	fdp.StaticInsertion = cache.PosMRU
	return Config{
		Workload:         "seqstream",
		Seed:             1,
		MaxInsts:         1_000_000,
		CPU:              cpu.DefaultConfig(),
		BlockShift:       6,
		L1Blocks:         1024, // 64 KB
		L1Ways:           4,
		L1Latency:        2,
		ModelIFetch:      true,
		L1IBlocks:        1024, // 64 KB
		L1IWays:          4,
		L2Blocks:         16384, // 1 MB
		L2Ways:           16,
		L2Latency:        10,
		MSHRs:            128,
		PrefQueueCap:     128,
		PrefDrainPerTick: 2,
		DRAM:             mem.DefaultConfig(),
		Prefetcher:       PrefNone,
		StaticLevel:      0,
		StreamEntries:    64,
		FDP:              fdp,
		MaxCycles:        0,
	}
}

// Conventional returns a baseline configuration with a conventional
// (static) prefetcher at the given Table 1 level.
func Conventional(kind PrefetcherKind, level int) Config {
	cfg := Default()
	cfg.Prefetcher = kind
	cfg.StaticLevel = level
	return cfg
}

// WithFDP returns a configuration running the given prefetcher under full
// FDP control (Dynamic Aggressiveness + Dynamic Insertion).
func WithFDP(kind PrefetcherKind) Config {
	cfg := Default()
	cfg.Prefetcher = kind
	cfg.StaticLevel = 0
	cfg.FDP = core.DefaultConfig()
	return cfg
}

// Validate sanity-checks structural parameters. Every failure wraps
// ErrInvalidConfig, so callers can branch with errors.Is.
func (c *Config) Validate() error {
	if c.MaxInsts == 0 {
		return fmt.Errorf("%w: MaxInsts must be positive", ErrInvalidConfig)
	}
	if c.L1Blocks <= 0 || c.L2Blocks <= 0 {
		return fmt.Errorf("%w: cache sizes must be positive", ErrInvalidConfig)
	}
	if c.StaticLevel < 0 || c.StaticLevel > 5 {
		return fmt.Errorf("%w: StaticLevel %d out of range 0..5", ErrInvalidConfig, c.StaticLevel)
	}
	switch c.Prefetcher {
	case PrefNone, PrefStream, PrefGHB, PrefStride, PrefNextLine, PrefDahlgren, PrefHybrid:
	case PrefCustom:
		if c.Custom == nil {
			return fmt.Errorf("%w: PrefCustom requires Config.Custom", ErrInvalidConfig)
		}
	default:
		return fmt.Errorf("%w: unknown prefetcher %q", ErrInvalidConfig, c.Prefetcher)
	}
	if c.Prefetcher == PrefNone && c.StaticLevel != 0 {
		return fmt.Errorf("%w: StaticLevel set without a prefetcher", ErrInvalidConfig)
	}
	if !control.Known(c.Controller) {
		return fmt.Errorf("%w: unknown controller %q (have %v)", ErrInvalidConfig, c.Controller, control.Names())
	}
	if len(c.ControllerModel) > 0 {
		if c.Controller != "tree" {
			return fmt.Errorf("%w: ControllerModel set but Controller is %q, want \"tree\"", ErrInvalidConfig, c.Controller)
		}
		if _, err := control.LoadTree(c.ControllerModel, c.FDP.Thresholds); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
	}
	return nil
}
