package sim

// wheel is a fixed-horizon timing wheel used to schedule the hierarchy's
// short, fixed-latency completions (L1 hits, L2 hits, fill hand-offs).
// Long, variable latencies live inside the DRAM model, so the horizon
// stays small.
//
// Buckets are intrusive FIFO lists over the shared event pool — scheduling
// links a pooled node, so the per-event cost is two index writes and no
// heap allocation. Events beyond the horizon (delay > mask) spill into a
// sorted far-future list and are folded back into buckets as the wheel
// wraps toward their due cycle, instead of panicking as the seed engine
// did.
type wheel struct {
	pool    *eventPool
	buckets []evList
	mask    uint64
	now     uint64
	// far holds over-horizon events ordered by due cycle (ties keep
	// insertion order, preserving scheduling FIFO fairness).
	far []farEvent
	// run dispatches one fired event; set once by the owning hierarchy.
	run func(ev event)
}

type farEvent struct {
	due uint64
	id  int32
}

func newWheel(size int, pool *eventPool) *wheel {
	if size&(size-1) != 0 || size <= 0 {
		panic("sim: wheel size must be a positive power of two")
	}
	w := &wheel{pool: pool, buckets: make([]evList, size), mask: uint64(size - 1)}
	for i := range w.buckets {
		w.buckets[i] = newEvList()
	}
	return w
}

// schedule fires the event node delay cycles from now; a delay of 0 is
// promoted to 1 (events never fire in the cycle that schedules them).
// Delays beyond the wheel horizon park in the far-future list.
func (w *wheel) schedule(delay uint64, id int32) {
	if delay == 0 {
		delay = 1
	}
	if delay > w.mask {
		w.scheduleFar(w.now+delay, id)
		return
	}
	w.buckets[(w.now+delay)&w.mask].push(w.pool, id)
}

// scheduleFar inserts an over-horizon event keeping far sorted by due
// cycle; equal due cycles keep arrival order.
func (w *wheel) scheduleFar(due uint64, id int32) {
	w.far = append(w.far, farEvent{due: due, id: id})
	for i := len(w.far) - 1; i > 0 && w.far[i-1].due > due; i-- {
		w.far[i], w.far[i-1] = w.far[i-1], w.far[i]
	}
}

// tick advances to the given cycle: far-future events whose due cycle has
// rotated inside the horizon drop into their buckets, then the cycle's
// bucket drains in FIFO order. Dispatched callbacks may schedule new
// events (at a minimum delay of 1, so never into the chain being walked);
// each node is copied and released before dispatch, so the pool may even
// grow mid-drain without invalidating the walk.
func (w *wheel) tick(cycle uint64) {
	w.now = cycle
	for len(w.far) > 0 && w.far[0].due <= cycle+w.mask {
		fe := w.far[0]
		copy(w.far, w.far[1:])
		w.far = w.far[:len(w.far)-1]
		slot := fe.due & w.mask
		if fe.due <= cycle {
			// Defensive: an already-due event joins the current bucket,
			// which drains below in this same tick.
			slot = cycle & w.mask
		}
		w.buckets[slot].push(w.pool, fe.id)
	}
	id := w.buckets[cycle&w.mask].take()
	for id != nilEvent {
		ev := *w.pool.at(id)
		w.pool.release(id)
		w.run(ev)
		id = ev.next
	}
}

// pendingFar returns the number of parked over-horizon events (tests).
func (w *wheel) pendingFar() int { return len(w.far) }
