package sim

// wheel is a fixed-horizon timing wheel used to schedule the hierarchy's
// short, fixed-latency completions (L1 hits, L2 hits, fill hand-offs).
// Long, variable latencies live inside the DRAM model, so the horizon
// stays small.
type wheel struct {
	buckets [][]func()
	mask    uint64
	now     uint64
}

func newWheel(size int) *wheel {
	if size&(size-1) != 0 || size <= 0 {
		panic("sim: wheel size must be a positive power of two")
	}
	return &wheel{buckets: make([][]func(), size), mask: uint64(size - 1)}
}

// schedule runs fn delay cycles from now; delay must be at least 1 and
// less than the wheel size.
func (w *wheel) schedule(delay uint64, fn func()) {
	if delay == 0 {
		delay = 1
	}
	if delay > w.mask {
		panic("sim: event beyond wheel horizon")
	}
	i := (w.now + delay) & w.mask
	w.buckets[i] = append(w.buckets[i], fn)
}

// tick advances to the given cycle and runs its bucket. Callbacks may
// schedule new events (at a minimum delay of 1, so never into the bucket
// being drained).
func (w *wheel) tick(cycle uint64) {
	w.now = cycle
	i := cycle & w.mask
	bucket := w.buckets[i]
	w.buckets[i] = nil
	for _, fn := range bucket {
		fn()
	}
}
