package sim

import (
	"errors"
	"testing"

	"fdpsim/internal/prefetch"
)

func TestFingerprintStableAndSemantic(t *testing.T) {
	a := WithFDP(PrefStream)
	b := WithFDP(PrefStream)
	fa, ok := Fingerprint(a)
	if !ok || fa == "" {
		t.Fatalf("Fingerprint(a) = %q, %v", fa, ok)
	}
	fb, _ := Fingerprint(b)
	if fa != fb {
		t.Fatalf("identical configs fingerprint differently: %s vs %s", fa, fb)
	}

	// Result-irrelevant fields must not change the fingerprint.
	b.Progress = func(Snapshot) {}
	if fb2, _ := Fingerprint(b); fb2 != fa {
		t.Fatalf("Progress sink changed the fingerprint")
	}

	// Semantic fields must.
	b.MaxInsts++
	if fb3, _ := Fingerprint(b); fb3 == fa {
		t.Fatalf("MaxInsts change did not change the fingerprint")
	}
}

func TestFingerprintRejectsCustom(t *testing.T) {
	cfg := Default()
	cfg.Prefetcher = PrefCustom
	cfg.Custom = prefetch.NewStream(4)
	if fp, ok := Fingerprint(cfg); ok {
		t.Fatalf("custom prefetcher fingerprinted as %q", fp)
	}
}

func TestValidateJob(t *testing.T) {
	cfg := WithFDP(PrefStream)
	if err := cfg.ValidateJob(); err != nil {
		t.Fatalf("valid job config rejected: %v", err)
	}

	bad := cfg
	bad.Workload = "no-such-workload"
	if err := bad.ValidateJob(); !errors.Is(err, ErrUnknownWorkload) {
		t.Fatalf("unknown workload: got %v, want ErrUnknownWorkload", err)
	}
	// Plain Validate accepts it (workloads resolve at run time)…
	if err := bad.Validate(); err != nil {
		t.Fatalf("Validate should not check workload names: %v", err)
	}

	cust := Default()
	cust.Prefetcher = PrefCustom
	cust.Custom = prefetch.NewStream(4)
	if err := cust.ValidateJob(); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("custom prefetcher job: got %v, want ErrInvalidConfig", err)
	}
}

func TestPrefetcherKindsValidate(t *testing.T) {
	for _, k := range PrefetcherKinds() {
		cfg := Default()
		cfg.Prefetcher = k
		if k != PrefNone {
			cfg.StaticLevel = 3
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("kind %q rejected by Validate: %v", k, err)
		}
	}
}
