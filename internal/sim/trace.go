package sim

import (
	"fdpsim/internal/core"
	"fdpsim/internal/prefetch"
	"fdpsim/internal/stats"
)

// DecisionEvent is one FDP interval boundary, fully explained: the event
// counters the boundary read (raw in-interval counts and the Equation 1
// decayed accumulations), the three metrics computed from them and their
// threshold classifications, the Table 2 case that fired, the Dynamic
// Configuration Counter before and after, the (distance, degree) pair the
// new counter value selects from Table 1, and the LRU-stack position
// chosen for the next interval's prefetch fills.
//
// Every field is a value (the two strings point at static data), so
// building and delivering an event allocates nothing; field names are
// stable JSON identifiers for the JSONL trace format (see internal/obs).
type DecisionEvent struct {
	// Core identifies the emitting core in multi-core runs (0 otherwise).
	Core int `json:"core"`
	// Interval is the 1-based index of the sampling interval that closed.
	Interval uint64 `json:"interval"`
	// Cycle and Retired stamp the boundary in simulated time (post-warmup,
	// matching Result and Snapshot; zero while warming up).
	Cycle   uint64 `json:"cycle"`
	Retired uint64 `json:"retired"`

	// Raw holds the event counts of this interval alone; Decayed holds the
	// Equation 1 accumulations (previous value halved plus Raw) that the
	// metrics below were computed from.
	Raw     core.IntervalCounts `json:"raw"`
	Decayed core.IntervalCounts `json:"decayed"`

	// The three feedback metrics at this boundary.
	Accuracy  float64 `json:"accuracy"`
	Lateness  float64 `json:"lateness"`
	Pollution float64 `json:"pollution"`

	// Threshold classifications: AccuracyClass is "Low", "Medium" or
	// "High"; Late and Polluting are the lateness/pollution cutoffs.
	AccuracyClass string `json:"accuracy_class"`
	Late          bool   `json:"late"`
	Polluting     bool   `json:"polluting"`

	// Controller names the feedback policy that took this decision
	// ("fdp" unless Config.Controller selected a competitor); BusUtil is
	// the fraction of the interval's cycles the shared data bus was busy
	// — the bandwidth signal controllers such as dspatch-dual key on.
	Controller string  `json:"controller"`
	BusUtil    float64 `json:"bus_util"`

	// Case is the Table 2 row (1..12) selected by the classifications (0
	// for decisions taken by a non-paper controller), Update its counter
	// adjustment (-1, 0, +1) and Reason the controller's rationale.
	Case   int    `json:"case"`
	Update int    `json:"update"`
	Reason string `json:"reason"`

	// DCCBefore and DCCAfter are the Dynamic Configuration Counter around
	// the update (equal when the update was NoChange, saturated, or
	// dynamic aggressiveness is off).
	DCCBefore int `json:"dcc_before"`
	DCCAfter  int `json:"dcc_after"`
	// Distance and Degree are the aggressiveness parameters DCCAfter
	// selects (Table 1 for stream-style prefetchers; the GHB ladder uses
	// one value for both).
	Distance int `json:"distance"`
	Degree   int `json:"degree"`

	// Insertion is the LRU-stack position chosen for prefetch fills until
	// the next boundary: "MRU", "MID", "LRU-4" or "LRU".
	Insertion string `json:"insertion"`

	// Sample is the interval's cycle-accounting and bandwidth-attribution
	// delta, populated when Config.Attribution is set. Zero — and omitted
	// from the JSONL encoding, keeping non-attribution traces byte-
	// identical — otherwise.
	Sample stats.IntervalSample `json:"sample,omitzero"`
}

// Tracer receives one DecisionEvent per FDP interval boundary. It is
// called synchronously from the simulation loop (never concurrently for
// one core), so implementations must be cheap or hand off — internal/obs
// provides file sinks and a non-blocking Async wrapper. A nil tracer
// costs nothing on the hot path (guarded by BenchmarkTraceDecision and
// TestTraceDecisionAllocs).
type Tracer interface {
	TraceDecision(ev DecisionEvent)
}

// levelParams maps a Dynamic Configuration Counter value to the prefetch
// (distance, degree) it configures for the given prefetcher kind.
func levelParams(kind PrefetcherKind, level int) (distance, degree int) {
	if level < prefetch.MinLevel {
		level = prefetch.MinLevel
	}
	if level > prefetch.MaxLevel {
		level = prefetch.MaxLevel
	}
	if kind == PrefGHB {
		d := prefetch.GHBDegrees[level]
		return d, d
	}
	sl := prefetch.StreamLevels[level]
	return sl.Distance, sl.Degree
}

// traceDecision builds one DecisionEvent from a closed interval's record
// and delivers it to the configured tracer. cycle and retired are the
// post-warmup stamps (zero during warmup); sample is the interval's
// attribution delta (zero when attribution is off). No-op without a
// tracer; the event is stack-built and passed by value, so the call is
// allocation-free either way.
func (h *hierarchy) traceDecision(rec core.IntervalRecord, cycle, retired uint64, sample stats.IntervalSample) {
	t := h.cfg.Tracer
	if t == nil {
		return
	}
	distance, degree := levelParams(h.cfg.Prefetcher, rec.Level)
	t.TraceDecision(DecisionEvent{
		Core:          h.coreID,
		Interval:      h.fdp.Intervals(),
		Cycle:         cycle,
		Retired:       retired,
		Raw:           rec.Raw,
		Decayed:       rec.Decayed,
		Accuracy:      rec.Accuracy,
		Lateness:      rec.Lateness,
		Pollution:     rec.Pollution,
		AccuracyClass: rec.AccClass.String(),
		Late:          rec.Late,
		Polluting:     rec.Polluting,
		Controller:    h.ctrlName,
		BusUtil:       rec.BusUtilization,
		Case:          rec.Case.Case,
		Update:        int(rec.Case.Update),
		Reason:        rec.Case.Reason,
		DCCBefore:     rec.LevelBefore,
		DCCAfter:      rec.Level,
		Distance:      distance,
		Degree:        degree,
		Insertion:     rec.Insertion.String(),
		Sample:        sample,
	})
}
