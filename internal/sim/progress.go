package sim

import (
	"time"

	"fdpsim/internal/cache"
	"fdpsim/internal/core"
	"fdpsim/internal/stats"
)

// Snapshot is one streaming progress record. The runner emits one
// snapshot per completed FDP sampling interval (the paper's feedback
// cadence) and a last one, with Final set, when the run completes or is
// cancelled. Instruction and cycle counts are post-warmup, matching the
// final Result; during warmup they read zero.
type Snapshot struct {
	// Core identifies the emitting core in multi-core runs (0 otherwise).
	Core int
	// Cycle is the current simulated cycle (post-warmup).
	Cycle uint64
	// Retired counts post-warmup retired instructions so far.
	Retired uint64
	// Target is the post-warmup retire target.
	Target uint64
	// IPC is retired/cycles so far (0 until warmup completes).
	IPC float64
	// BPKI is bus accesses per kilo-instruction so far (0 until warmup
	// completes) — the paper's bandwidth cost metric, live.
	BPKI float64
	// Interval is the number of completed FDP sampling intervals.
	Interval uint64
	// Accuracy, Lateness and Pollution are the interval's classified
	// metrics (Equation 1 decayed values at the boundary).
	Accuracy  float64
	Lateness  float64
	Pollution float64
	// Case is the Table 2 rule that fired at this boundary (zero in the
	// Final snapshot, which closes no interval).
	Case core.PolicyCase
	// Level is the aggressiveness level in effect for the next interval.
	Level int
	// Insertion is the LRU-stack position chosen for prefetch fills.
	Insertion cache.InsertPos
	// Sample is the interval's cycle-accounting and bandwidth-attribution
	// delta (zero unless Config.Attribution is set).
	Sample stats.IntervalSample
	// Elapsed is wall-clock time since the run started.
	Elapsed time.Duration
	// Final marks the completion snapshot: its Retired/IPC match the
	// returned Result (including a partial Result after cancellation).
	Final bool
}

// ProgressFunc receives streaming Snapshots. It is called synchronously
// from the simulation goroutine (never concurrently for one run), so it
// must be cheap or hand off to a channel; it must not call back into the
// running simulation.
type ProgressFunc func(Snapshot)
