package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"fdpsim/internal/workload"
)

// fingerprintVersion is folded into every fingerprint so that cached
// results written by an incompatible simulator revision never alias a
// current configuration. Bump it whenever a change makes old results
// wrong for the same Config (new semantic field, changed defaults, a
// modelling fix that shifts metrics).
// v2: Config gained Controller/ControllerModel (the pluggable feedback
// controller seam); the new fields are folded into the hash, so a cached
// "fdp" result can never alias a "tree" run of the same base config.
const fingerprintVersion = "fdpsim-fp-v2"

// Fingerprint returns a stable content hash of the configuration's
// semantic fields: two configurations share a fingerprint exactly when a
// completed run of one is a valid result for the other. Result-irrelevant
// fields (the Progress sink and the Tracer) are excluded. Custom-prefetcher runs are not
// fingerprintable (ok=false): the prefetcher instance is opaque, stateful,
// and a pointer's address can alias a different instance after reuse.
//
// The returned string is lowercase hex, safe for use as a file name; the
// harness memo and the service result store both key on it.
func Fingerprint(cfg Config) (fp string, ok bool) {
	if cfg.Prefetcher == PrefCustom {
		return "", false
	}
	cfg.Custom = nil
	cfg.Progress = nil
	cfg.Tracer = nil
	sum := sha256.Sum256([]byte(fingerprintVersion + "\x00" + fmt.Sprintf("%+v", cfg)))
	return hex.EncodeToString(sum[:]), true
}

// PrefetcherKinds lists the prefetchers selectable by name. PrefCustom is
// excluded: it requires a caller-supplied Config.Custom instance and so
// cannot be chosen from a CLI flag or a job request.
func PrefetcherKinds() []PrefetcherKind {
	return []PrefetcherKind{
		PrefNone, PrefStream, PrefGHB, PrefStride, PrefNextLine, PrefDahlgren, PrefHybrid,
	}
}

// ValidateJob extends Validate with the checks a job service needs before
// queueing work it did not construct itself: the workload name must
// resolve now (Run would only discover a typo after the job waited in the
// queue), and the configuration must be fingerprintable so the result is
// cacheable and the submission deduplicatable.
func (c *Config) ValidateJob() error {
	if err := c.Validate(); err != nil {
		return err
	}
	if !workload.Exists(c.Workload) {
		return fmt.Errorf("%w %q (have %v)", ErrUnknownWorkload, c.Workload, workload.Names())
	}
	if c.Prefetcher == PrefCustom {
		return fmt.Errorf("%w: custom prefetchers cannot run as jobs (no stable fingerprint)", ErrInvalidConfig)
	}
	return nil
}
