package sim

import "testing"

func mcCfg(w string, fdp bool) Config {
	var cfg Config
	if fdp {
		cfg = WithFDP(PrefStream)
		cfg.FDP.TInterval = 1024
	} else {
		cfg = Conventional(PrefStream, 5)
	}
	cfg.Workload = w
	cfg.MaxInsts = 40_000
	return cfg
}

func TestRunMultiValidation(t *testing.T) {
	if _, err := RunMulti(MultiConfig{}); err == nil {
		t.Fatal("empty multi-core config accepted")
	}
	bad := mcCfg("seqstream", false)
	bad.MaxInsts = 0
	if _, err := RunMulti(MultiConfig{Cores: []Config{bad}}); err == nil {
		t.Fatal("invalid core config accepted")
	}
}

func TestRunMultiSingleCoreMatchesShape(t *testing.T) {
	res, err := RunMulti(MultiConfig{Cores: []Config{mcCfg("seqstream", false)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 1 {
		t.Fatalf("cores = %d", len(res.Cores))
	}
	c := res.Cores[0]
	if c.IPC <= 0 || c.Counters.Retired < 40_000 {
		t.Fatalf("core result: %+v", c.Result)
	}
	if c.Accuracy < 0.9 {
		t.Fatalf("single-core multi run accuracy %.2f", c.Accuracy)
	}
}

func TestRunMultiContentionSlowsCores(t *testing.T) {
	solo, err := RunMulti(MultiConfig{Cores: []Config{mcCfg("multistream", false)}})
	if err != nil {
		t.Fatal(err)
	}
	duo, err := RunMulti(MultiConfig{Cores: []Config{
		mcCfg("multistream", false), mcCfg("multistream", false),
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range duo.Cores {
		if c.IPC >= solo.Cores[0].IPC {
			t.Fatalf("core %d IPC %.3f not slowed by bus sharing (solo %.3f)",
				i, c.IPC, solo.Cores[0].IPC)
		}
	}
}

func TestRunMultiPerCoreAttribution(t *testing.T) {
	quietCfg := mcCfg("tinyloop", false)
	quietCfg.MaxInsts = 80_000 // long enough that cold misses amortize away
	res, err := RunMulti(MultiConfig{Cores: []Config{
		mcCfg("seqstream", false), quietCfg,
	}})
	if err != nil {
		t.Fatal(err)
	}
	stream, quiet := res.Cores[0], res.Cores[1]
	if stream.Counters.BusReads == 0 {
		t.Fatal("stream core has no attributed bus reads")
	}
	if quiet.BPKI > stream.BPKI/4 {
		t.Fatalf("cache-resident core BPKI %.1f not far below stream core %.1f",
			quiet.BPKI, stream.BPKI)
	}
	if res.TotalBusAccesses == 0 || res.Cycles == 0 {
		t.Fatal("aggregate counters empty")
	}
}

func TestRunMultiFDPThrottlesHostileCore(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run invariant")
	}
	mk := func(fdp bool) MultiResult {
		cfgA := mcCfg("seqstream", fdp)
		cfgB := mcCfg("chaserand", fdp)
		cfgA.MaxInsts, cfgB.MaxInsts = 60_000, 60_000
		res, err := RunMulti(MultiConfig{Cores: []Config{cfgA, cfgB}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	va := mk(false)
	fdp := mk(true)
	if fdp.Cores[1].FinalLevel > 2 {
		t.Fatalf("hostile core not throttled: level %d", fdp.Cores[1].FinalLevel)
	}
	if fdp.Cores[1].BPKI >= va.Cores[1].BPKI {
		t.Fatalf("FDP hostile-core BPKI %.1f not below VA %.1f",
			fdp.Cores[1].BPKI, va.Cores[1].BPKI)
	}
	if fdp.Cores[1].IPC <= va.Cores[1].IPC {
		t.Fatalf("FDP hostile-core IPC %.4f not above VA %.4f",
			fdp.Cores[1].IPC, va.Cores[1].IPC)
	}
}

func TestWarmupDiscardsColdStats(t *testing.T) {
	cold := Default()
	cold.Workload = "cachefit"
	cold.MaxInsts = 60_000
	rc, err := Run(cold)
	if err != nil {
		t.Fatal(err)
	}
	warm := cold
	warm.WarmupInsts = 300_000 // one full pass over the 512 KB array is 256K insts
	rw, err := Run(warm)
	if err != nil {
		t.Fatal(err)
	}
	if rw.Counters.Retired != 60_000 {
		t.Fatalf("post-warmup retired = %d", rw.Counters.Retired)
	}
	if rw.BPKI >= rc.BPKI/10 {
		t.Fatalf("warmed BPKI %.2f not far below cold %.2f (compulsory misses not discarded)",
			rw.BPKI, rc.BPKI)
	}
	if rw.IPC <= rc.IPC {
		t.Fatalf("warmed IPC %.3f not above cold %.3f", rw.IPC, rc.IPC)
	}
}

func TestDahlgrenAndHybridKindsRun(t *testing.T) {
	for _, k := range []PrefetcherKind{PrefDahlgren, PrefHybrid} {
		cfg := Conventional(k, 3)
		cfg.Workload = "seqstream"
		cfg.MaxInsts = 40_000
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if res.Counters.PrefSent == 0 {
			t.Errorf("%s sent no prefetches on seqstream", k)
		}
	}
}
