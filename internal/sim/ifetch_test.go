package sim

import (
	"testing"

	"fdpsim/internal/cpu"
)

// codeSource emits nops across a large code footprint: every op carries an
// explicit PC advancing 4 bytes, wrapping over `blocks` instruction blocks.
type codeSource struct {
	pc     uint64
	blocks uint64
	n      uint64
}

func (s *codeSource) Name() string { return "code" }
func (s *codeSource) Next() cpu.MicroOp {
	fpc := 0x10000000 + (s.pc % (s.blocks * 64))
	s.pc += 4
	s.n++
	return cpu.MicroOp{Kind: cpu.Nop, PC: fpc}
}

func TestIFetchMissesStallDispatch(t *testing.T) {
	cfg := Default()
	cfg.MaxInsts = 50_000
	// Code footprint of 4096 blocks (256 KB): four times the L1I.
	res, err := RunSource(cfg, &codeSource{blocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.IFetchBlocks == 0 {
		t.Fatal("no instruction-block fetches recorded")
	}
	if c.IFetchL1Misses == 0 {
		t.Fatal("an L1I-exceeding code footprint produced no fetch misses")
	}
	if c.StallFetch == 0 {
		t.Fatal("fetch misses did not stall dispatch")
	}
	if res.IPC >= 7 {
		t.Fatalf("IPC %.2f unaffected by fetch stalls", res.IPC)
	}
	if c.BusReads == 0 {
		t.Fatal("code blocks never fetched from memory")
	}
}

func TestIFetchSmallCodeStaysResident(t *testing.T) {
	cfg := Default()
	// Long enough that the 128 compulsory code misses (each a full
	// serial front-end stall) amortize away.
	cfg.MaxInsts = 600_000
	// 128 blocks (8 KB) of code: fits the L1I after one pass.
	res, err := RunSource(cfg, &codeSource{blocks: 128})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.IFetchL1Misses > 200 {
		t.Fatalf("resident code suffered %d L1I misses", c.IFetchL1Misses)
	}
	if res.IPC < 4 {
		t.Fatalf("IPC %.2f too low for L1I-resident nops", res.IPC)
	}
}

func TestIFetchDisabled(t *testing.T) {
	cfg := Default()
	cfg.ModelIFetch = false
	cfg.MaxInsts = 50_000
	res, err := RunSource(cfg, &codeSource{blocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.IFetchBlocks != 0 || res.Counters.StallFetch != 0 {
		t.Fatal("disabled fetch model still recorded activity")
	}
	if res.IPC < 7 {
		t.Fatalf("IPC %.2f: fetch stalls applied despite ModelIFetch=false", res.IPC)
	}
}

func TestIFetchSharesL2WithData(t *testing.T) {
	// Instruction blocks live in the unified L2: after the L1I misses, a
	// second pass must hit the L2, not memory.
	cfg := Default()
	cfg.MaxInsts = 400_000
	res, err := RunSource(cfg, &codeSource{blocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	// 4096 compulsory block fetches; repeated passes must be L2 hits.
	if c.BusReads > 4200 {
		t.Fatalf("bus reads %d: code not retained in the unified L2", c.BusReads)
	}
	if c.L2DemandHits == 0 {
		t.Fatal("no L2 hits for recycled code blocks")
	}
}

func TestCodewalkGCCShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run invariant")
	}
	// Section 5.9's gcc observation, scaled: FDP must not lose to the
	// best conventional configuration on the code-footprint workload, and
	// must use less bandwidth than Very Aggressive.
	run := func(mut func(*Config)) Result {
		cfg := Default()
		cfg.Workload = "codewalk"
		cfg.MaxInsts = 300_000
		cfg.FDP.TInterval = 1024
		mut(&cfg)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	va := run(func(c *Config) { c.Prefetcher = PrefStream; c.StaticLevel = 5 })
	fdp := run(func(c *Config) {
		c.Prefetcher = PrefStream
		c.FDP.DynamicAggressiveness = true
		c.FDP.DynamicInsertion = true
	})
	if fdp.IPC < va.IPC*0.97 {
		t.Fatalf("FDP %.3f loses to VA %.3f on codewalk", fdp.IPC, va.IPC)
	}
	if fdp.BPKI > va.BPKI {
		t.Fatalf("FDP BPKI %.1f above VA %.1f on codewalk", fdp.BPKI, va.BPKI)
	}
}
