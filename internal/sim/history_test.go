package sim

import "testing"

func TestKeepFDPHistory(t *testing.T) {
	cfg := WithFDP(PrefStream)
	cfg.Workload = "chaserand"
	cfg.MaxInsts = 150_000
	cfg.FDP.TInterval = 1024
	cfg.KeepFDPHistory = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(res.History)) != res.Intervals {
		t.Fatalf("history has %d records, intervals = %d", len(res.History), res.Intervals)
	}
	if len(res.History) == 0 {
		t.Fatal("no intervals recorded")
	}
	for i, r := range res.History {
		if r.Case.Case < 1 || r.Case.Case > 12 {
			t.Fatalf("record %d: invalid Table 2 case %d", i, r.Case.Case)
		}
		if r.Level < 1 || r.Level > 5 {
			t.Fatalf("record %d: level %d out of range", i, r.Level)
		}
		if r.Accuracy < 0 || r.Accuracy > 1 || r.Lateness < 0 || r.Lateness > 1 || r.Pollution < 0 || r.Pollution > 1 {
			t.Fatalf("record %d: metrics out of range: %+v", i, r)
		}
	}
	// The hostile chase must end throttled with Decrement-dominated history.
	decrements := 0
	for _, r := range res.History {
		if r.Case.Update < 0 {
			decrements++
		}
	}
	if decrements*2 < len(res.History) {
		t.Fatalf("only %d of %d intervals decremented on a hostile workload", decrements, len(res.History))
	}

	// History is off by default.
	cfg.KeepFDPHistory = false
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.History) != 0 {
		t.Fatal("history recorded without KeepFDPHistory")
	}
}
